(* Runtime invariants, the dynamic counterpart of dynlint (see
   DESIGN.md "Static analysis and runtime checks").

   Checks are doubly gated: [Check_mode.release] is generated from the
   dune build profile, so release builds can never evaluate a
   predicate; in dev builds the checks still cost one boolean until
   [set_enabled true] (the CLI's [--check] flag, or a test) turns them
   on.  The flag is an [Atomic.t] because runs execute inside Sweep
   workers on separate domains. *)

exception Check_failed of string

let static_enabled = not Check_mode.release
let enabled_flag = Atomic.make false
let evals = Atomic.make 0

let set_enabled b = Atomic.set enabled_flag (b && static_enabled)
let enabled () = static_enabled && Atomic.get enabled_flag
let eval_count () = Atomic.get evals
let reset_eval_count () = Atomic.set evals 0

let require ~what pred =
  if enabled () then begin
    Atomic.incr evals;
    if not (pred ()) then raise (Check_failed what)
  end

(* {2 Domain-specific invariants} *)

let bitset_cached ~what ~cached bs =
  require ~what (fun () -> Int.equal (Dynet.Bitset.cardinal bs) cached)

let connected ~what g = require ~what (fun () -> Dynet.Graph.is_connected g)

let conserved ~created ~consumed ~dropped ~in_flight =
  Int.equal created (consumed + dropped + in_flight)
