(** Runtime invariants — the dynamic counterpart of dynlint.

    The simulation engines and protocols carry redundant state for
    speed (cached popcounts, a message ledger next to the physical
    delivery path).  This module asserts, per round, that the
    redundant copies agree:

    - {e ledger conservation}: the ledger's message total equals the
      sends the engine physically performed, and every message copy is
      accounted for as consumed, fault-dropped, or still in flight;
    - {e cached bitset counts}: a protocol's cached token count equals
      the popcount of its token bitset;
    - {e adversary connectivity}: the per-round graph is connected
      (the paper's standing assumption, Section 1.2).

    Checks are off by default and enabled with {!set_enabled} (the
    CLI's [--check] flag).  In [--profile release] builds the layer is
    compiled out: {!static_enabled} is [false], {!set_enabled} is
    ignored, and {!require} never evaluates its predicate. *)

exception Check_failed of string
(** Raised by {!require} when an invariant does not hold; the payload
    names the invariant. *)

val static_enabled : bool
(** [false] in [--profile release] builds, [true] otherwise. *)

val set_enabled : bool -> unit
(** Turn the layer on or off process-wide (no-op in release builds).
    Safe to call from any domain. *)

val enabled : unit -> bool

val require : what:string -> (unit -> bool) -> unit
(** [require ~what pred] evaluates [pred] only when the layer is
    enabled, and raises {!Check_failed} [what] if it returns [false].
    When disabled the predicate is never evaluated, so it may be
    arbitrarily expensive. *)

val eval_count : unit -> int
(** Predicates evaluated since start (or {!reset_eval_count}) — lets
    tests assert the disabled layer really evaluates nothing. *)

val reset_eval_count : unit -> unit

(** {2 Domain-specific invariants} *)

val bitset_cached : what:string -> cached:int -> Dynet.Bitset.t -> unit
(** The cached count agrees with the bitset's popcount. *)

val connected : what:string -> Dynet.Graph.t -> unit
(** The graph is connected. *)

val conserved :
  created:int -> consumed:int -> dropped:int -> in_flight:int -> bool
(** Message-copy conservation: every copy the delivery layer created
    was consumed at a receive, destroyed by a fault, or is still
    delayed in flight.  Pure arithmetic so engines can embed it in a
    {!require} thunk. *)
