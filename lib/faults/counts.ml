type t = {
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable retransmits : int;
}

let create () =
  { drops = 0; dups = 0; delays = 0; crashes = 0; restarts = 0;
    retransmits = 0 }

let is_zero t =
  t.drops = 0 && t.dups = 0 && t.delays = 0 && t.crashes = 0
  && t.restarts = 0 && t.retransmits = 0

let to_fields t =
  [
    ("drops", t.drops); ("dups", t.dups); ("delays", t.delays);
    ("crashes", t.crashes); ("restarts", t.restarts);
    ("retransmits", t.retransmits);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (name, v) -> Format.fprintf ppf "%s=%d" name v))
    (to_fields t)
