(** Per-class fault tallies for one execution.

    A mutable record so the engines and the reliable-delivery wrapper
    can bump counters on the hot path without threading state; the
    fields mirror the fault classes of {!Plan} plus the
    [retransmits] the {!Gossip.Reliable} wrapper performs to mask
    them.  All-zero counts mean the run saw no fault activity. *)

type t = {
  mutable drops : int;
      (** Messages lost in transit, including whole inboxes discarded
          when their owner was crashed at delivery time. *)
  mutable dups : int;  (** Messages duplicated on the wire. *)
  mutable delays : int;  (** Message copies delivered late. *)
  mutable crashes : int;  (** Node crash events. *)
  mutable restarts : int;  (** Node restart (state-loss) events. *)
  mutable retransmits : int;
      (** Retransmissions performed by a reliability wrapper (zero
          unless one was in use). *)
}

val create : unit -> t
val is_zero : t -> bool

val to_fields : t -> (string * int) list
(** [("drops", d); ...] in declaration order, for JSON assembly. *)

val pp : Format.formatter -> t -> unit
