type spec = {
  loss : float;
  dup : float;
  crash : float;
  restart : float;
  max_delay : int;
  seed : int;
}

type t =
  | None_
  | Random of spec
  | Script of { crashes : (int * int) list; restarts : (int * int) list }

let none = None_

let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Fault plan: %s = %g outside [0, 1]" name p)

let make ?(loss = 0.) ?(dup = 0.) ?(crash = 0.) ?(restart = 0.25)
    ?(max_delay = 0) ~seed () =
  check_prob "loss" loss;
  check_prob "dup" dup;
  check_prob "crash" crash;
  check_prob "restart" restart;
  if max_delay < 0 then
    invalid_arg (Printf.sprintf "Fault plan: max_delay = %d < 0" max_delay);
  if loss = 0. && dup = 0. && crash = 0. && max_delay = 0 then None_
  else Random { loss; dup; crash; restart; max_delay; seed }

let scripted ?(crashes = []) ?(restarts = []) () =
  Script { crashes; restarts }

let is_none = function None_ -> true | Random _ | Script _ -> false

type run = {
  plan : t;
  node_rng : Dynet.Rng.t;
  msg_rng : Dynet.Rng.t;
  alive : bool array;
  counts : Counts.t;
  mutable cur_round : int;
}

let start plan ~n =
  (match plan with
  | None_ -> ()
  | Random _ | Script _ ->
      if n <= 0 then invalid_arg "Fault plan: n <= 0");
  let seed = match plan with Random s -> s.seed | None_ | Script _ -> 0 in
  let master = Dynet.Rng.make ~seed in
  {
    plan;
    node_rng = Dynet.Rng.split master;
    msg_rng = Dynet.Rng.split master;
    alive = (match plan with None_ -> [||] | _ -> Array.make n true);
    counts = Counts.create ();
    cur_round = 0;
  }

let active run = not (is_none run.plan)
let counts run = run.counts

let begin_round run ~round ~on_crash ~on_restart =
  run.cur_round <- round;
  match run.plan with
  | None_ -> ()
  | Random { crash; restart; _ } ->
      Array.iteri
        (fun v up ->
          if up then begin
            if Dynet.Rng.bernoulli run.node_rng crash then begin
              run.alive.(v) <- false;
              run.counts.Counts.crashes <- run.counts.Counts.crashes + 1;
              on_crash v
            end
          end
          else if Dynet.Rng.bernoulli run.node_rng restart then begin
            run.alive.(v) <- true;
            run.counts.Counts.restarts <- run.counts.Counts.restarts + 1;
            on_restart v
          end)
        run.alive
  | Script { crashes; restarts } ->
      List.iter
        (fun (r, v) ->
          if r = round && v >= 0 && v < Array.length run.alive
             && run.alive.(v)
          then begin
            run.alive.(v) <- false;
            run.counts.Counts.crashes <- run.counts.Counts.crashes + 1;
            on_crash v
          end)
        crashes;
      List.iter
        (fun (r, v) ->
          if r = round && v >= 0 && v < Array.length run.alive
             && not run.alive.(v)
          then begin
            run.alive.(v) <- true;
            run.counts.Counts.restarts <- run.counts.Counts.restarts + 1;
            on_restart v
          end)
        restarts

let alive run v =
  match run.plan with None_ -> true | Random _ | Script _ -> run.alive.(v)

let doomed run =
  match run.plan with
  | None_ -> false
  | Random { restart; _ } ->
      restart <= 0. && Array.for_all not run.alive
  | Script { restarts; _ } ->
      Array.for_all not run.alive
      && List.for_all (fun (r, _) -> r <= run.cur_round) restarts

let deliveries run =
  match run.plan with
  | None_ | Script _ -> Some [ 0 ]
  | Random { loss; dup; max_delay; _ } ->
      if Dynet.Rng.bernoulli run.msg_rng loss then begin
        run.counts.Counts.drops <- run.counts.Counts.drops + 1;
        None
      end
      else begin
        let copies =
          if Dynet.Rng.bernoulli run.msg_rng dup then begin
            run.counts.Counts.dups <- run.counts.Counts.dups + 1;
            2
          end
          else 1
        in
        let delay () =
          if max_delay = 0 then 0
          else begin
            let d = Dynet.Rng.int run.msg_rng (max_delay + 1) in
            if d > 0 then
              run.counts.Counts.delays <- run.counts.Counts.delays + 1;
            d
          end
        in
        Some (List.init copies (fun _ -> delay ()))
      end
