(** Composable, deterministic fault plans.

    A plan sits between a protocol and an engine and decides, from an
    explicit {!Dynet.Rng} seed, which faults to inject into an
    execution:

    - {e message loss} — each transmitted message is dropped in
      transit with probability [loss], independently per message (and
      therefore per directed edge for unicast sends);
    - {e message duplication} — a surviving message is delivered twice
      with probability [dup];
    - {e node crash / restart} — each live node crashes at the start
      of a round with probability [crash]; a crashed node sends
      nothing and its inbox is discarded, and it re-enters with
      probability [restart] per round, {e restarting from its initial
      state} (full state loss);
    - {e bounded delivery delay} — each surviving message copy is
      delayed by a uniform number of rounds in [0 .. max_delay]
      (0 = on time).

    {!none} is the identity plan: engines test {!active} once per run
    and take their pre-existing code paths, so the clean model stays
    bit-for-bit identical to a build without the fault layer (the same
    null-object pattern as [Obs.Sink.null]).

    Two independent random streams are derived from the seed — one for
    node fates, one for message verdicts — so the crash/restart
    trajectory of a plan depends only on the round count, not on how
    many messages the protocol happened to send. *)

type t

val none : t
(** Inject nothing; compiles to the identity in the engines. *)

val make :
  ?loss:float ->
  ?dup:float ->
  ?crash:float ->
  ?restart:float ->
  ?max_delay:int ->
  seed:int ->
  unit ->
  t
(** A randomized plan ([loss], [dup], [crash], [restart] default 0,
    except [restart] which defaults to [0.25] so crash faults are
    transient unless asked otherwise; [max_delay] defaults 0).  If no
    fault can ever fire ([loss = dup = crash = 0] and [max_delay = 0])
    the result {e is} {!none}.
    @raise Invalid_argument if a probability is outside [0, 1] or
    [max_delay < 0]. *)

val scripted :
  ?crashes:(int * int) list -> ?restarts:(int * int) list -> unit -> t
(** A deterministic plan that crashes / restarts exactly the given
    [(round, node)] pairs and injects no message faults — test
    instrumentation for crash-round semantics. *)

val is_none : t -> bool

(** {2 Per-execution state}

    A [run] instantiates a plan for one execution: it owns the random
    streams, the liveness array, and the fault tallies.  Engines call
    {!begin_round} once per round and {!deliveries} once per
    transmitted message, in deterministic (node-, then send-) order —
    which is what makes fault runs exactly reproducible from the
    seed. *)

type run

val start : t -> n:int -> run
(** @raise Invalid_argument if [n <= 0] for an active plan. *)

val active : run -> bool
(** False only for {!none}: engines hoist this test and skip all fault
    bookkeeping when it is false. *)

val counts : run -> Counts.t
(** The tallies, shared and live (updated as the run progresses). *)

val begin_round :
  run -> round:int -> on_crash:(int -> unit) -> on_restart:(int -> unit) ->
  unit
(** Advance node fates to [round]: each live node may crash, each
    crashed node may restart, in node order.  The callbacks fire once
    per transition (engines use them to reset state and emit trace
    events); {!Counts.crashes}/[restarts] are bumped here. *)

val alive : run -> int -> bool
(** Whether the node participates in the current round. *)

val doomed : run -> bool
(** Every node is crashed and the plan can never restart one — the
    execution cannot make progress and should abort. *)

val deliveries : run -> int list option
(** The fate of one transmitted message: [None] if dropped, otherwise
    one per-copy delivery delay (in rounds, [0] = this round; a
    duplicated message yields two entries).  Bumps the run's
    {!Counts}. *)
