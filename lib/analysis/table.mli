(** Aligned ASCII tables (and CSV) for the experiment harness.

    Every experiment renders one of these: a title, a header row, data
    rows, and optional footnotes — mirroring how the paper reports its
    results (its Table 1 and the per-theorem bounds). *)

type t

val make :
  title:string -> columns:string list -> ?notes:string list ->
  string list list -> t
(** @raise Invalid_argument if any row's width differs from the
    header's. *)

val title : t -> string
val columns : t -> string list
val rows : t -> string list list

val render : t -> string
(** Fixed-width ASCII rendering: title, rule, aligned columns (numbers
    right-aligned heuristically), rule, notes. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes fields containing commas/quotes), header
    row first; title and notes are not included. *)

(* {2 Cell formatting helpers} *)

val fint : int -> string
(** Grouped thousands: [12_345] -> ["12345"] stays plain below 10^5,
    then switches to scientific-ish ["1.23e7"] to keep columns narrow. *)

val ffloat : float -> string
(** Compact float: 3 significant digits, scientific for big/small. *)

val fratio : float -> string
(** A ratio like measured/bound, rendered as ["0.42x"]. *)
