(** The paper's evaluation artifacts, regenerated.

    One function per experiment in DESIGN.md's index (E1–E9); each runs
    the relevant protocol × adversary sweeps and renders a {!Table.t}
    whose rows mirror what the paper states.  Absolute numbers are
    simulator-scale; the {e shape} — who wins, growth exponents,
    crossovers, bound ratios — is the reproduction target, and each
    table's notes state the shape check and whether the data passes it.

    All experiments are deterministic in [seed].

    Every experiment accepts an optional [?metrics] registry: its
    wall-clock is then recorded as an ["experiment/<id>"] histogram
    sample (via {!Obs.Timer.observe_span}), so callers — the bench
    harness, the CLI's [experiments --timings] — can report where
    simulator time goes.

    The grid-shaped sweeps (E1, E4, E7) additionally accept [?jobs]
    and fan their points out over OCaml 5 domains via {!Sweep.map};
    every point derives its RNG streams from the seed and the point
    coordinates alone and results merge in input order, so the tables
    (message counts included) are bit-identical for every [jobs]
    value.  With [?metrics], each point's wall-clock also lands in a
    ["sweep/<id>-point"] histogram. *)

val table1 :
  ?ns:int list -> ?jobs:int -> ?metrics:Obs.Metrics.t -> ?prof:Obs.Span.t ->
  seed:int -> unit -> Table.t
(** E1 — Table 1: amortized message complexity of Algorithm 2 across
    the paper's four k-regimes, vs. plain Multi-Source-Unicast and the
    paper's closed-form bound.  Sources: every node ([s = n], the
    many-source regime Table 1 assumes). *)

val lower_bound : ?ns:int list -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E2 — Theorem 2.3: amortized local broadcasts of flooding and the
    greedy heuristics against the strongly adaptive adversary, between
    the [n²/log²n] floor and the [n²] flooding ceiling. *)

val free_edges : ?n:int -> ?trials:int -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E3 — Figure 1 / Lemmas 2.1–2.2: structure of the free-edge graph
    as a function of the number of broadcasting nodes. *)

val single_source :
  ?ns:int list -> ?jobs:int -> ?metrics:Obs.Metrics.t -> ?prof:Obs.Span.t ->
  seed:int -> unit -> Table.t
(** E4+E5 — Theorems 3.1/3.4: Single-Source-Unicast messages vs the
    O(n² + nk) + TC budget and rounds vs the O(nk) bound, across
    environments including the adaptive request-cutter. *)

val multi_source : ?n:int -> ?k:int -> ?ss:int list -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E6 — Theorems 3.5/3.6: Multi-Source-Unicast vs the O(n²s + nk) +
    TC budget as the source count grows. *)

val rw_scaling :
  ?n:int -> ?ks:int list -> ?jobs:int -> ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Span.t -> seed:int -> unit -> Table.t
(** E7 — Theorem 3.8: total and amortized messages of Algorithm 2 as k
    grows at fixed n; reports the measured log-log growth exponents
    against the paper's 1/4 (total) and −3/4 (amortized). *)

val static_baseline : ?ns:int list -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E8 — the intro's static-network yardstick: spanning-tree
    dissemination at O(n²/k + n) amortized. *)

val time_vs_messages : ?n:int -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E9 — the Section 1.2 contrast: on identical instances, the
    time-optimal strategy (flooding) is not message-optimal and vice
    versa. *)

val ablation : ?n:int -> ?k:int -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E10 — ablation of Algorithm 1's design choices: the paper's
    new > idle > contributive request priority (Lemmas 3.2/3.3) and its
    pending-request deduplication, plus the unstructured random-push
    baseline, all on identical instances and environments. *)

val rw_tradeoff : ?n:int -> ?k:int -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E11 — the optimization step inside Theorem 3.8: sweeping the
    center density f trades walk cost (fewer centers, longer walks, the
    kL term) against scatter cost (more centers, more per-source
    announcements, the f n^2 term); the paper picks f to balance them. *)

val coding_gap : ?ns:int list -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E12 — the token-forwarding barrier (Section 1.2): on identical
    n-gossip instances, network-coding gossip completes in ~O(n + k)
    rounds where phased flooding needs ~nk — the round gap that
    motivates restricting the lower bounds to token-forwarding
    algorithms (coded packets carry k-bit coefficient vectors, far
    beyond the O(log n)-bit token-forwarding message budget). *)

val environments : ?n:int -> ?rounds:int -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E0 — not a paper artifact but the context for reading all the
    others: structural and churn characteristics of every oblivious
    adversary family (density, clustering, distances, TC per round,
    turnover), measured over a committed prefix. *)

val leader_election : ?ns:int list -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E13 — beyond the paper (its Section-4 program): leader election
    under the adversary-competitive measure.  Sends decompose into
    champion improvements (bounded regardless of churn) and per-edge
    catch-ups (bounded by 2·TC), so the competitive cost stays small
    however hard the topology churns. *)

val adaptivity : ?n:int -> ?budget:int -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Table.t
(** E14 — the adversary hierarchy of Section 1.3 (and footnote 4):
    oblivious vs weakly adaptive vs strongly adaptive, measured as the
    progress (token learnings) each allows an unstructured broadcaster
    within a fixed round budget.  More adaptivity, less progress. *)

val robustness_loss :
  ?n:int -> ?k:int -> ?rates:float list -> ?metrics:Obs.Metrics.t ->
  seed:int -> unit -> Table.t
(** E15 — beyond the paper (robustness): the message-loss tax.
    Single-Source-Unicast on a 3-edge-stable rotator under a
    {!Faults.Plan} loss sweep, bare vs wrapped in {!Gossip.Reliable}.
    The bare protocol degrades to a [Partial] coverage report; the
    wrapper completes at every swept rate, paying a message inflation
    (acks + retransmissions) that grows with the loss rate. *)

val robustness_crash :
  ?n:int -> ?k:int -> ?rates:float list -> ?metrics:Obs.Metrics.t ->
  seed:int -> unit -> Table.t
(** E16 — beyond the paper (robustness): the crash-restart tax.
    Phased flooding under node crash faults with full state loss
    (restart p = 0.25): restarted nodes are re-taught, so crashes buy
    round/message inflation — and at worst a graceful [Partial] or
    [Aborted] verdict — never wrong answers. *)

val mega :
  ?ns:int list -> ?k:int -> ?shards:int -> ?metrics:Obs.Metrics.t ->
  seed:int -> unit -> Table.t
(** E18 — beyond the paper (scale): phased flooding on the
    struct-of-arrays engine ({!Engine.Soa}) at n up to 10^5, on a
    sparse regular-ish schedule re-drawn every 16 rounds.  Each row
    runs the same committed environment on [soa], [soa-<shards>] and
    the fastpath engine and requires byte-identical run reports — the
    determinism contract at scale — alongside amortized messages per
    token and wall-clock per round.  Defaults keep CI fast; the 10^5
    invocation is in EXPERIMENTS.md. *)

val all :
  ?jobs:int -> ?metrics:Obs.Metrics.t -> ?prof:Obs.Span.t -> seed:int ->
  unit -> Table.t list
(** Every experiment at its default size, in index order ([mega] at a
    reduced [ns] so the full sweep stays laptop-fast); [?jobs] and
    [?prof] are forwarded to the sweep-parallel ones (E1, E4, E7). *)
