let pass_fail ok = if ok then "PASS" else "FAIL"

(* A dense oblivious environment: random connected graphs, fresh every
   round (heavy churn but good expansion — the regime Algorithm 2's
   random walks are analyzed in). *)
let dense_schedule ~seed ~n = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.25

let stable sched = Adversary.Schedule.stabilized ~sigma:3 sched

(* Every experiment runs inside a named Obs.Timer span; with ?metrics
   supplied, its wall-clock lands in an "experiment/<id>" histogram so
   the harness can report where simulator time goes. *)
let timed ?metrics id body = Obs.Timer.observe_span ?metrics ~name:id body

(* {2 E1 — Table 1} *)

let table1 ?(ns = [ 24; 32 ]) ?jobs ?metrics ?prof ~seed () =
  timed ?metrics "experiment/e1-table1" @@ fun () ->
  (* Each (n, regime) cell of Table 1 is a self-contained point: all
     its RNG streams derive from (seed, n, k), so points can run on
     any domain in any order and the sequential merge below still
     reproduces the jobs = 1 table bit-for-bit. *)
  let points =
    List.concat_map
      (fun n ->
        List.map
          (fun (row : Gossip.Bounds.table1_row) -> (n, row))
          Gossip.Bounds.table1)
      ns
    |> Array.of_list
  in
  let run_point ~prof (n, (row : Gossip.Bounds.table1_row)) =
    let k = row.k_of_n ~n in
    let s = min n k in
    let rng = Dynet.Rng.make ~seed:(seed + n + k) in
    let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s in
    let schedule = dense_schedule ~seed:(seed + (3 * n) + k) ~n in
    let rw =
      Gossip.Runners.oblivious_rw ~instance ~schedule
        ~seed:(seed + (7 * n) + k) ~const_f:0.02 ~force_rw:true ~prof ()
    in
    let ms_result, _ =
      Gossip.Runners.multi_source ~instance
        ~env:
          (Gossip.Runners.Oblivious
             (dense_schedule ~seed:(seed + (11 * n) + k) ~n))
        ~prof ()
    in
    let rw_amortized =
      float_of_int rw.Gossip.Oblivious_rw.paper_messages /. float_of_int k
    in
    let ms_amortized =
      Engine.Ledger.amortized ms_result.Engine.Run_result.ledger ~k
    in
    ( rw_amortized < ms_amortized,
      [
        string_of_int n;
        row.label;
        string_of_int k;
        string_of_int s;
        Table.ffloat rw_amortized;
        Table.ffloat ms_amortized;
        row.paper_bound;
        (if rw.Gossip.Oblivious_rw.completed then "yes" else "NO");
      ] )
  in
  let results =
    Sweep.map_span ?jobs ?metrics ?prof ~name:"sweep/e1-point" run_point
      points
  in
  let wins = ref 0 and cases = ref 0 in
  let rows = ref [] in
  Array.iter
    (fun (win, cells) ->
      incr cases;
      if win then incr wins;
      rows := cells :: !rows)
    results;
  let shape =
    Printf.sprintf
      "shape check (%s): Algorithm 2 beats Multi-Source-Unicast on %d/%d \
       many-source cases"
      (pass_fail (!wins * 3 >= !cases * 2))
      !wins !cases
  in
  Table.make ~title:"E1 (Table 1): amortized messages per token, oblivious adversary"
    ~columns:
      [ "n"; "k regime"; "k"; "s"; "Alg2 amortized"; "MultiSrc amortized";
        "paper bound"; "done" ]
    ~notes:
      [
        shape;
        "Alg2 amortized = paper messages / k (center announcements excluded, \
         as in Theorem 3.8);";
        "many sources (s = n) is the regime where plain Multi-Source pays \
         Omega(n^2 s / k) and loses.";
      ]
    (List.rev !rows)

(* {2 E2 — local-broadcast lower bound} *)

let per_token_cost (result : Engine.Run_result.t) ~n =
  let learnings = Engine.Ledger.learnings result.ledger in
  if learnings = 0 then Float.infinity
  else
    float_of_int (Engine.Ledger.total result.ledger)
    /. float_of_int learnings
    *. float_of_int (n - 1)

let lower_bound ?(ns = [ 16; 24; 32 ]) ?metrics ~seed () =
  timed ?metrics "experiment/e2-lower-bound" @@ fun () ->
  let rows = ref [] in
  let all_above_floor = ref true in
  let flooding_below_ceiling = ref true in
  List.iter
    (fun n ->
      let instance = Gossip.Instance.one_per_node ~n in
      let k = n in
      let floor = Gossip.Bounds.lb_amortized ~n in
      let ceiling = Gossip.Bounds.flooding_amortized ~n in
      let add name result =
        let cost = per_token_cost result ~n in
        if cost < floor then all_above_floor := false;
        rows :=
          [
            string_of_int n;
            name;
            (if result.Engine.Run_result.completed then "yes" else "capped");
            Table.fint (Engine.Ledger.total result.Engine.Run_result.ledger);
            Table.fint (Engine.Ledger.learnings result.Engine.Run_result.ledger);
            Table.ffloat cost;
            Table.ffloat floor;
            Table.ffloat ceiling;
          ]
          :: !rows
      in
      let result, _, _ =
        Gossip.Runners.flooding_vs_lower_bound ~instance ~seed:(seed + n) ()
      in
      if per_token_cost result ~n > ceiling *. 1.05 then
        flooding_below_ceiling := false;
      add "flooding" result;
      List.iter
        (fun (name, policy) ->
          let result, _, _ =
            Gossip.Runners.greedy_vs_lower_bound ~instance ~policy
              ~seed:(seed + (2 * n)) ~max_rounds:(n * k) ()
          in
          add name result)
        [
          ("round-robin", Gossip.Greedy_bcast.Round_robin);
          ("random-token", Gossip.Greedy_bcast.Random_token);
          ("lazy p=0.2", Gossip.Greedy_bcast.Lazy 0.2);
        ])
    ns;
  Table.make
    ~title:
      "E2 (Theorem 2.3): amortized broadcasts per token vs the strongly \
       adaptive adversary (k = n, one token per node)"
    ~columns:
      [ "n"; "algorithm"; "done"; "messages"; "learnings"; "per-token";
        "floor n^2/log^2 n"; "ceiling n^2" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): every strategy pays at least the n^2/log^2 n \
           floor per token delivered"
          (pass_fail !all_above_floor);
        Printf.sprintf
          "shape check (%s): flooding stays within the n^2 ceiling (its \
           upper bound is tight)"
          (pass_fail !flooding_below_ceiling);
        "per-token = messages / learnings * (n-1): the cost of a full \
         dissemination equivalent.";
      ]
    (List.rev !rows)

(* {2 E3 — free-edge structure (Figure 1, Lemmas 2.1/2.2)} *)

let free_edges ?(n = 64) ?(trials = 25) ?metrics ~seed () =
  timed ?metrics "experiment/e3-free-edges" @@ fun () ->
  let k = n in
  (* Lemma 2.2 holds for a sufficiently large constant c; c = 2 is
     already enough at simulator sizes (c = 1 is marginal at n < 32). *)
  let threshold = Gossip.Bounds.sparse_broadcaster_threshold ~c:2. ~n () in
  let rows = ref [] in
  let sparse_always_one = ref true in
  let log_bound_holds = ref true in
  let broadcaster_counts =
    let rec doubling b acc = if b > n then List.rev acc else doubling (2 * b) (b :: acc) in
    doubling 1 []
  in
  List.iter
    (fun b ->
      let components = ref [] in
      for trial = 1 to trials do
        let rng = Dynet.Rng.make ~seed:(seed + (trial * 131) + b) in
        let lb = Adversary.Broadcast_lb.create ~rng ~n ~k in
        (* The hardest view for the adversary: the n-gossip start, where
           node v knows only its own token and every broadcaster
           announces it — coverage then rests on K'_v alone. *)
        let knows v i = i = v mod k in
        let chosen = Array.make n None in
        let picked = Dynet.Rng.sample_without_replacement rng b n in
        List.iter (fun v -> chosen.(v) <- Some (v mod k)) picked;
        ignore
          (Adversary.Broadcast_lb.next_graph lb
             { Adversary.Broadcast_lb.knows; chosen });
        match Adversary.Broadcast_lb.history lb with
        | [ (_, c) ] -> components := float_of_int c :: !components
        | _ -> ()
      done;
      let mean = Engine.Stats.mean !components in
      let max_c = Engine.Stats.maximum !components in
      if float_of_int b <= threshold && max_c > 1. then
        sparse_always_one := false;
      if max_c > 4. *. Gossip.Bounds.logn n then log_bound_holds := false;
      rows :=
        [
          string_of_int b;
          (if float_of_int b <= threshold then "sparse" else "dense");
          Table.ffloat mean;
          Table.ffloat max_c;
        ]
        :: !rows)
    broadcaster_counts;
  Table.make
    ~title:
      (Printf.sprintf
         "E3 (Fig. 1 / Lemmas 2.1-2.2): free-edge components vs broadcasters \
          (n = %d, %d trials each, sparse threshold n/(2 log n) = %.1f)"
         n trials threshold)
    ~columns:[ "broadcasters"; "regime"; "mean components"; "max components" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): sparse rounds always leave a single free \
           component - zero progress possible (Lemma 2.2)"
          (pass_fail !sparse_always_one);
        Printf.sprintf
          "shape check (%s): components stay O(log n) at every density \
           (Lemma 2.1)"
          (pass_fail !log_bound_holds);
      ]
    (List.rev !rows)

(* {2 E4 + E5 — single source} *)

(* E4's environment grid for one node count; every entry's schedule is
   derived from (seed, n) alone, so a point can rebuild it on whatever
   domain it lands on. *)
let single_source_envs ~seed ~n =
  [
    ( "static",
      Gossip.Runners.Oblivious
        (Adversary.Oblivious.static
           (Dynet.Graph_gen.random_connected
              (Dynet.Rng.make ~seed:(seed + n)) ~n ~p:0.15)),
      true );
    ( "rotator-3st",
      Gossip.Runners.Oblivious
        (stable (Adversary.Oblivious.tree_rotator ~seed:(seed + n + 1) ~n)),
      true );
    ( "rewiring-3st",
      Gossip.Runners.Oblivious
        (stable
           (Adversary.Oblivious.rewiring ~seed:(seed + n + 2) ~n ~extra:n
              ~rate:0.3)),
      true );
    ( "cutter-80",
      Gossip.Runners.Request_cutting { seed = seed + n + 3; cut_prob = 0.8 },
      false );
  ]

let single_source ?(ns = [ 16; 24; 32 ]) ?jobs ?metrics ?prof ~seed () =
  timed ?metrics "experiment/e4-single-source" @@ fun () ->
  let env_count = List.length (single_source_envs ~seed ~n:2) in
  let points =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun k -> List.init env_count (fun i -> (n, k, i)))
          [ n / 2; n; 4 * n ])
      ns
    |> Array.of_list
  in
  let run_point ~prof (n, k, i) =
    let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
    let budget = Gossip.Bounds.single_source_budget ~n ~k in
    let env_name, env, is_stable = List.nth (single_source_envs ~seed ~n) i in
    let result, _ = Gossip.Runners.single_source ~instance ~env ~prof () in
    let ledger = result.Engine.Run_result.ledger in
    let competitive = Engine.Ledger.competitive_cost ledger ~alpha:1. in
    let ratio = competitive /. budget in
    let rounds_ok =
      (not is_stable) || result.Engine.Run_result.rounds <= (2 * n * k) + (2 * n)
    in
    ( ratio <= 2.,
      rounds_ok,
      [
        string_of_int n;
        string_of_int k;
        env_name;
        Table.fint (Engine.Ledger.total ledger);
        Table.fint (Engine.Ledger.tc ledger);
        Table.ffloat competitive;
        Table.fratio ratio;
        string_of_int result.Engine.Run_result.rounds;
        Table.ffloat (Engine.Ledger.amortized_competitive ledger ~alpha:1. ~k);
      ] )
  in
  let results =
    Sweep.map_span ?jobs ?metrics ?prof ~name:"sweep/e4-point" run_point
      points
  in
  let rows = ref [] in
  let within_budget = ref true and within_rounds = ref true in
  Array.iter
    (fun (budget_ok, rounds_ok, cells) ->
      if not budget_ok then within_budget := false;
      if not rounds_ok then within_rounds := false;
      rows := cells :: !rows)
    results;
  Table.make
    ~title:
      "E4/E5 (Theorems 3.1/3.4): Single-Source-Unicast, 1-adversary-\
       competitive cost vs the O(n^2 + nk) budget"
    ~columns:
      [ "n"; "k"; "environment"; "messages"; "TC"; "msgs - TC"; "vs budget";
        "rounds"; "amort (comp.)" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): (messages - TC) <= 2 (n^2 + nk) in every \
           environment, including the adaptive cutter"
          (pass_fail !within_budget);
        Printf.sprintf
          "shape check (%s): rounds <= 2nk + 2n on every 3-edge-stable \
           environment (Theorem 3.4)"
          (pass_fail !within_rounds);
        "amort (comp.) -> O(n) as k grows past n: the optimal amortized \
         complexity of Section 3.1;";
        "KT0 variant (Section 1.3 remark): without free neighbor-ID \
         knowledge, add <= 2 TC hello messages - also chargeable to the \
         adversary.";
      ]
    (List.rev !rows)

(* {2 E6 — multi source} *)

let multi_source ?(n = 24) ?(k = 96) ?(ss = [ 1; 2; 4; 8; 16; 24 ]) ?metrics
    ~seed () =
  timed ?metrics "experiment/e6-multi-source" @@ fun () ->
  let rows = ref [] in
  let within_budget = ref true in
  List.iter
    (fun s ->
      let s = min s (min n k) in
      let rng = Dynet.Rng.make ~seed:(seed + s) in
      let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s in
      let env =
        Gossip.Runners.Oblivious
          (stable (Adversary.Oblivious.tree_rotator ~seed:(seed + (2 * s)) ~n))
      in
      let result, _ = Gossip.Runners.multi_source ~instance ~env () in
      let ledger = result.Engine.Run_result.ledger in
      let budget = Gossip.Bounds.multi_source_budget ~n ~k ~s in
      let competitive = Engine.Ledger.competitive_cost ledger ~alpha:1. in
      if competitive > 2. *. budget then within_budget := false;
      rows :=
        [
          string_of_int s;
          Table.fint (Engine.Ledger.total ledger);
          Table.fint (Engine.Ledger.count ledger Engine.Msg_class.Completeness);
          Table.fint (Engine.Ledger.count ledger Engine.Msg_class.Token);
          Table.ffloat competitive;
          Table.ffloat budget;
          Table.fratio (competitive /. budget);
          string_of_int result.Engine.Run_result.rounds;
        ]
        :: !rows)
    ss;
  Table.make
    ~title:
      (Printf.sprintf
         "E6 (Theorems 3.5/3.6): Multi-Source-Unicast vs the O(n^2 s + nk) \
          budget (n = %d, k = %d, 3-edge-stable rotator)"
         n k)
    ~columns:
      [ "s"; "messages"; "announcements"; "tokens"; "msgs - TC"; "budget";
        "ratio"; "rounds" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): competitive cost <= 2 (n^2 s + nk) at every \
           source count"
          (pass_fail !within_budget);
        "announcements grow with s (each node announces completeness per \
         source) - the n^2 s term;";
        "token messages stay ~ nk regardless of s.";
      ]
    (List.rev !rows)

(* {2 E7 — Theorem 3.8 scaling} *)

let rw_scaling ?(n = 32) ?(ks = [ 32; 64; 128; 256; 512 ]) ?jobs ?metrics
    ?prof ~seed () =
  timed ?metrics "experiment/e7-rw-scaling" @@ fun () ->
  let replicates = 4 in
  (* Points are (k, replicate): each Algorithm-2 run seeds from its own
     salt, so replicates parallelize as freely as the k sweep. *)
  let points =
    List.concat_map
      (fun k -> List.init replicates (fun i -> (k, i + 1)))
      ks
    |> Array.of_list
  in
  let run_point ~prof (k, rep) =
    let s = min n k in
    let salt = (rep * 7919) + k in
    let rng = Dynet.Rng.make ~seed:(seed + salt) in
    let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s in
    let schedule = dense_schedule ~seed:(seed + (2 * salt)) ~n in
    let r =
      Gossip.Runners.oblivious_rw ~instance ~schedule ~seed:(seed + (3 * salt))
        ~const_f:0.02 ~force_rw:true ~prof ()
    in
    let ledger = r.Gossip.Oblivious_rw.ledger in
    let count cls = float_of_int (Engine.Ledger.count ledger cls) in
    ( float_of_int r.Gossip.Oblivious_rw.paper_messages,
      float_of_int r.Gossip.Oblivious_rw.centers,
      count Engine.Msg_class.Completeness,
      count Engine.Msg_class.Token +. count Engine.Msg_class.Request,
      count Engine.Msg_class.Walk )
  in
  let results =
    Sweep.map_span ?jobs ?metrics ?prof ~name:"sweep/e7-point" run_point
      points
  in
  let rows = ref [] in
  let announce_pts = ref []
  and deliver_pts = ref []
  and amort_pts = ref [] in
  let amort_means = ref [] in
  let next = ref 0 in
  List.iter
    (fun k ->
      let acc_total = ref [] and acc_centers = ref [] in
      let acc_announce = ref [] and acc_deliver = ref [] and acc_walk = ref [] in
      (* Consume this k's replicates in rep order, prepending like the
         sequential loop did, so the mean folds over the same list and
         rounds identically. *)
      for _rep = 1 to replicates do
        let total, centers, announce, deliver, walk = results.(!next) in
        incr next;
        acc_total := total :: !acc_total;
        acc_centers := centers :: !acc_centers;
        acc_announce := announce :: !acc_announce;
        acc_deliver := deliver :: !acc_deliver;
        acc_walk := walk :: !acc_walk
      done;
      let mean = Engine.Stats.mean in
      let kf = float_of_int k in
      let total = mean !acc_total in
      let amort = total /. kf in
      announce_pts := (kf, mean !acc_announce) :: !announce_pts;
      deliver_pts := (kf, mean !acc_deliver) :: !deliver_pts;
      amort_pts := (kf, amort) :: !amort_pts;
      amort_means := amort :: !amort_means;
      rows :=
        [
          string_of_int k;
          Table.ffloat (mean !acc_centers);
          Table.ffloat (Gossip.Bounds.centers_f ~c:0.02 ~n ~k ());
          Table.ffloat (mean !acc_walk);
          Table.ffloat (mean !acc_announce);
          Table.ffloat (mean !acc_deliver);
          Table.ffloat total;
          Table.ffloat amort;
        ]
        :: !rows)
    ks;
  let announce_slope = Engine.Stats.loglog_slope (List.rev !announce_pts) in
  let deliver_slope = Engine.Stats.loglog_slope (List.rev !deliver_pts) in
  let amort_slope = Engine.Stats.loglog_slope (List.rev !amort_pts) in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | [ _ ] | [] -> true
  in
  let amort_decreasing = strictly_decreasing (List.rev !amort_means) in
  Table.make
    ~title:
      (Printf.sprintf
         "E7 (Theorem 3.8): Algorithm 2 scaling in k at fixed n = %d \
          (oblivious adversary, s = min(n, k) sources, mean of %d runs)"
         n replicates)
    ~columns:
      [ "k"; "centers"; "f formula"; "walk msgs"; "announce msgs";
        "deliver msgs"; "total"; "amortized" ]
    ~notes:
      [
        Printf.sprintf
          "measured log-log slopes in k: announcements %.2f (paper: the f \
           n^2 term, f ~ k^(1/4) -> slope 1/4), delivery %.2f (the nk term \
           -> slope 1), amortized %.2f (negative: subquadratic headline)"
          announce_slope deliver_slope amort_slope;
        Printf.sprintf
          "shape check (%s): announcements grow ~k^(1/4) (slope in (0, \
           0.6)), delivery ~k (slope in (0.8, 1.2)), amortized strictly \
           decreasing"
          (pass_fail
             (announce_slope > 0. && announce_slope < 0.6
             && deliver_slope > 0.8 && deliver_slope < 1.2
             && amort_decreasing));
        "the paper's total O(n^(5/2) k^(1/4) log^(5/4) n) uses the whp \
         worst-case walk length L; measured walks settle early, so the \
         delivery term dominates at simulator scale.";
      ]
    (List.rev !rows)

(* {2 E8 — static baseline} *)

let static_baseline ?(ns = [ 16; 32; 64 ]) ?metrics ~seed () =
  timed ?metrics "experiment/e8-static-baseline" @@ fun () ->
  let rows = ref [] in
  let amortized_optimal = ref true in
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          let graph =
            Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed:(seed + n))
              ~n ~p:0.2
          in
          let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
          let r = Gossip.Spanning_tree_static.run ~graph ~instance ~root:0 in
          let formula =
            (float_of_int (n * n) /. float_of_int k) +. float_of_int n
          in
          if k >= n && r.Gossip.Spanning_tree_static.amortized > 3. *. float_of_int n
          then amortized_optimal := false;
          rows :=
            [
              string_of_int n;
              string_of_int k;
              Table.fint r.Gossip.Spanning_tree_static.total_messages;
              Table.ffloat r.Gossip.Spanning_tree_static.amortized;
              Table.ffloat formula;
              string_of_int r.Gossip.Spanning_tree_static.rounds;
            ]
            :: !rows)
        [ n / 4; n; 4 * n; 16 * n ])
    ns;
  Table.make
    ~title:
      "E8 (Section 1 baseline): static spanning-tree dissemination, \
       O(n^2/k + n) amortized"
    ~columns:[ "n"; "k"; "messages"; "amortized"; "n^2/k + n"; "rounds" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): for k >= n the amortized cost is within 3x of \
           the optimal n"
          (pass_fail !amortized_optimal);
      ]
    (List.rev !rows)

(* {2 E9 — time vs messages} *)

let time_vs_messages ?(n = 24) ?metrics ~seed () =
  timed ?metrics "experiment/e9-time-vs-messages" @@ fun () ->
  let instance = Gossip.Instance.one_per_node ~n in
  let k = n in
  let flood_result, _ =
    Gossip.Runners.flooding ~instance
      ~schedule:(dense_schedule ~seed:(seed + 1) ~n)
      ()
  in
  let ms_result, _ =
    Gossip.Runners.multi_source ~instance
      ~env:(Gossip.Runners.Oblivious (dense_schedule ~seed:(seed + 1) ~n))
      ()
  in
  let rw =
    Gossip.Runners.oblivious_rw ~instance
      ~schedule:(dense_schedule ~seed:(seed + 1) ~n)
      ~seed:(seed + 2) ~const_f:0.05 ~force_rw:true ()
  in
  let flood_msgs = Engine.Ledger.total flood_result.Engine.Run_result.ledger in
  let ms_msgs = Engine.Ledger.total ms_result.Engine.Run_result.ledger in
  let rows =
    [
      [
        "flooding (local bcast)";
        string_of_int flood_result.Engine.Run_result.rounds;
        Table.fint flood_msgs;
        Table.ffloat (float_of_int flood_msgs /. float_of_int k);
      ];
      [
        "multi-source (unicast)";
        string_of_int ms_result.Engine.Run_result.rounds;
        Table.fint ms_msgs;
        Table.ffloat (float_of_int ms_msgs /. float_of_int k);
      ];
      [
        "algorithm 2 (unicast)";
        string_of_int
          (rw.Gossip.Oblivious_rw.phase1_rounds
          + rw.Gossip.Oblivious_rw.phase2_rounds);
        Table.fint rw.Gossip.Oblivious_rw.paper_messages;
        Table.ffloat
          (float_of_int rw.Gossip.Oblivious_rw.paper_messages /. float_of_int k);
      ];
    ]
  in
  Table.make
    ~title:
      (Printf.sprintf
         "E9 (Section 1.2): time- vs message-efficiency on one instance \
          (n-gossip, n = %d, same oblivious schedule)"
         n)
    ~columns:[ "algorithm"; "rounds"; "messages"; "amortized" ]
    ~notes:
      [
        "the round-efficient strategy is not the message-efficient one: \
         message-frugal algorithms trade silence for time.";
      ]
    rows

(* {2 E10 — Algorithm 1 ablation} *)

let ablation ?(n = 20) ?(k = 40) ?metrics ~seed () =
  timed ?metrics "experiment/e10-ablation" @@ fun () ->
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let replicates = 3 in
  let environments =
    [
      ( "rotator-3st",
        fun i ->
          Gossip.Runners.Oblivious
            (stable (Adversary.Oblivious.tree_rotator ~seed:(seed + i) ~n)) );
      ( "cutter-70",
        fun i ->
          Gossip.Runners.Request_cutting { seed = seed + i; cut_prob = 0.7 }
      );
    ]
  in
  let variants =
    [
      ("paper", `Single Gossip.Single_source.default_config);
      ( "no-dedup",
        `Single
          {
            Gossip.Single_source.priority = Gossip.Single_source.Paper_priority;
            dedup_pending = false;
          } );
      ( "reversed-prio",
        `Single
          {
            Gossip.Single_source.priority =
              Gossip.Single_source.Reversed_priority;
            dedup_pending = true;
          } );
      ( "no-prio",
        `Single
          {
            Gossip.Single_source.priority = Gossip.Single_source.No_priority;
            dedup_pending = true;
          } );
      ("random-push", `Push);
    ]
  in
  let rows = ref [] in
  (* per (environment, variant): mean messages/tokens/rounds *)
  let summary = Hashtbl.create 16 in
  List.iter
    (fun (env_name, env_of) ->
      List.iter
        (fun (variant_name, variant) ->
          let msgs = ref [] and tokens = ref [] and rounds = ref [] in
          let completed = ref true in
          for rep = 1 to replicates do
            let result =
              match variant with
              | `Single config ->
                  fst
                    (Gossip.Runners.single_source ~instance
                       ~env:(env_of (rep * 37)) ~config ())
              | `Push ->
                  fst
                    (Gossip.Runners.random_push ~instance
                       ~env:(env_of (rep * 37)) ~seed:(seed + rep) ())
            in
            if not result.Engine.Run_result.completed then completed := false;
            let ledger = result.Engine.Run_result.ledger in
            msgs := float_of_int (Engine.Ledger.total ledger) :: !msgs;
            tokens :=
              float_of_int (Engine.Ledger.count ledger Engine.Msg_class.Token)
              :: !tokens;
            rounds :=
              float_of_int result.Engine.Run_result.rounds :: !rounds
          done;
          let mean = Engine.Stats.mean in
          Hashtbl.replace summary (env_name, variant_name)
            (mean !msgs, mean !tokens, mean !rounds);
          rows :=
            [
              env_name;
              variant_name;
              Table.ffloat (mean !msgs);
              Table.ffloat (mean !tokens);
              Table.ffloat (mean !rounds);
              (if !completed then "yes" else "CAPPED");
            ]
            :: !rows)
        variants)
    environments;
  (* Multi-source source-order ablation on the same environments. *)
  let ms_instance =
    Gossip.Instance.multi_source
      ~rng:(Dynet.Rng.make ~seed:(seed + 999))
      ~n ~k ~s:(min n (k / 2))
  in
  List.iter
    (fun (env_name, env_of) ->
      List.iter
        (fun (variant_name, source_order) ->
          let msgs = ref [] and tokens = ref [] and rounds = ref [] in
          let completed = ref true in
          for rep = 1 to replicates do
            let result, _ =
              Gossip.Runners.multi_source ~instance:ms_instance
                ~env:(env_of ((rep * 53) + 7)) ~source_order
                ~seed:(seed + rep) ()
            in
            if not result.Engine.Run_result.completed then completed := false;
            let ledger = result.Engine.Run_result.ledger in
            msgs := float_of_int (Engine.Ledger.total ledger) :: !msgs;
            tokens :=
              float_of_int (Engine.Ledger.count ledger Engine.Msg_class.Token)
              :: !tokens;
            rounds := float_of_int result.Engine.Run_result.rounds :: !rounds
          done;
          let mean = Engine.Stats.mean in
          rows :=
            [
              env_name;
              variant_name;
              Table.ffloat (mean !msgs);
              Table.ffloat (mean !tokens);
              Table.ffloat (mean !rounds);
              (if !completed then "yes" else "CAPPED");
            ]
            :: !rows)
        [
          ("ms-min-source", Gossip.Multi_source.Min_source);
          ("ms-random-source", Gossip.Multi_source.Random_source);
        ])
    environments;
  let get env v = Hashtbl.find summary (env, v) in
  let msgs_of (m, _, _) = m and tokens_of (_, t, _) = t in
  let dedup_matters =
    (* Without dedup, duplicate deliveries appear under the cutter. *)
    tokens_of (get "cutter-70" "no-dedup")
    > tokens_of (get "cutter-70" "paper") +. 0.5
  in
  let push_pays =
    List.for_all
      (fun (env, _) -> msgs_of (get env "random-push") > 2. *. msgs_of (get env "paper"))
      environments
  in
  Table.make
    ~title:
      (Printf.sprintf
         "E10 (ablation): Algorithm 1's design choices (n = %d, k = %d, \
          mean of %d runs)"
         n k replicates)
    ~columns:[ "environment"; "variant"; "messages"; "tokens"; "rounds"; "done" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): disabling pending-request dedup causes \
           duplicate token deliveries under the request cutter (paper \
           delivers each token exactly once)"
          (pass_fail dedup_matters);
        Printf.sprintf
          "shape check (%s): the unstructured random-push baseline costs \
           >2x the paper's request/response design in every environment"
          (pass_fail push_pays);
        "the priority-order variants stay correct but lose the futile-round \
         accounting behind Theorem 3.4's proof (Lemmas 3.2/3.3);";
        "ms-* rows ablate Multi-Source's min-source rule (Theorem 3.6's \
         sequencing argument): random source order stays correct too.";
      ]
    (List.rev !rows)

(* {2 E11 — the f trade-off inside Theorem 3.8} *)

let rw_tradeoff ?(n = 32) ?(k = 128) ?metrics ~seed () =
  timed ?metrics "experiment/e11-rw-tradeoff" @@ fun () ->
  let s = min n k in
  let replicates = 3 in
  let rows = ref [] in
  let walks = ref [] and announces = ref [] in
  List.iter
    (fun const_f ->
      let acc_walk = ref [] and acc_announce = ref [] and acc_total = ref [] in
      let acc_centers = ref [] and acc_ph1 = ref [] in
      for rep = 1 to replicates do
        let salt = (rep * 613) + int_of_float (const_f *. 1000.) in
        let rng = Dynet.Rng.make ~seed:(seed + salt) in
        let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s in
        let schedule = dense_schedule ~seed:(seed + (2 * salt)) ~n in
        let r =
          Gossip.Runners.oblivious_rw ~instance ~schedule
            ~seed:(seed + (3 * salt)) ~const_f ~force_rw:true ()
        in
        let ledger = r.Gossip.Oblivious_rw.ledger in
        let count cls = float_of_int (Engine.Ledger.count ledger cls) in
        acc_walk := count Engine.Msg_class.Walk :: !acc_walk;
        acc_announce := count Engine.Msg_class.Completeness :: !acc_announce;
        acc_total :=
          float_of_int r.Gossip.Oblivious_rw.paper_messages :: !acc_total;
        acc_centers := float_of_int r.Gossip.Oblivious_rw.centers :: !acc_centers;
        acc_ph1 := float_of_int r.Gossip.Oblivious_rw.phase1_rounds :: !acc_ph1
      done;
      let mean = Engine.Stats.mean in
      walks := mean !acc_walk :: !walks;
      announces := mean !acc_announce :: !announces;
      rows :=
        [
          Printf.sprintf "%.2f" const_f;
          Table.ffloat (mean !acc_centers);
          Table.ffloat (mean !acc_ph1);
          Table.ffloat (mean !acc_walk);
          Table.ffloat (mean !acc_announce);
          Table.ffloat (mean !acc_total);
        ]
        :: !rows)
    [ 0.01; 0.03; 0.1; 0.3; 1.0 ];
  let first xs = List.nth xs (List.length xs - 1) in
  let last xs = List.hd xs in
  (* !walks/!announces are in reverse sweep order. *)
  let walks_decrease = first !walks > last !walks in
  let announces_increase = first !announces < last !announces in
  Table.make
    ~title:
      (Printf.sprintf
         "E11 (Theorem 3.8's optimization): center density vs cost split \
          (n = %d, k = %d, mean of %d runs; f scales with the constant)"
         n k replicates)
    ~columns:
      [ "f constant"; "centers"; "ph1 rounds"; "walk msgs"; "announce msgs";
        "total" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): more centers shorten the gather (walk msgs and \
           phase-1 rounds fall) but inflate the scatter (announce msgs \
           rise) - the kL vs f n^2 trade-off the paper optimizes"
          (pass_fail (walks_decrease && announces_increase));
        "the paper balances kL = f n^2 at f = n^(1/2) k^(1/4) log^(5/4) n.";
      ]
    (List.rev !rows)

(* {2 E12 — coding vs token forwarding} *)

let coding_gap ?(ns = [ 12; 16; 24; 32 ]) ?metrics ~seed () =
  timed ?metrics "experiment/e12-coding-gap" @@ fun () ->
  let rows = ref [] in
  let flood_pts = ref [] and coded_pts = ref [] in
  let coding_always_faster = ref true in
  List.iter
    (fun n ->
      let instance = Gossip.Instance.one_per_node ~n in
      let k = n in
      let schedule = dense_schedule ~seed:(seed + n) ~n in
      let flood, _ = Gossip.Runners.flooding ~instance ~schedule () in
      let coded, _ =
        Gossip.Runners.coded_broadcast ~instance
          ~schedule:(dense_schedule ~seed:(seed + n) ~n)
          ~seed:(seed + (2 * n)) ()
      in
      let fr = flood.Engine.Run_result.rounds in
      let cr = coded.Engine.Run_result.rounds in
      if cr * 2 > fr then coding_always_faster := false;
      flood_pts := (float_of_int n, float_of_int fr) :: !flood_pts;
      coded_pts := (float_of_int n, float_of_int cr) :: !coded_pts;
      (* Bit complexity: a flooding broadcast carries one token message
         (Section 1.3's small-message budget); a coded packet carries a
         k-bit coefficient vector plus the payload word. *)
      let token_msg_bits =
        Gossip.Payload.bits ~n ~k
          (Gossip.Payload.Token_msg (Gossip.Token.make ~src:0 ~idx:0 ~uid:0))
      in
      let coded_msg_bits = k + Gossip.Payload.token_bits in
      let flood_msgs = Engine.Ledger.total flood.Engine.Run_result.ledger in
      let coded_msgs = Engine.Ledger.total coded.Engine.Run_result.ledger in
      rows :=
        [
          string_of_int n;
          string_of_int k;
          string_of_int fr;
          string_of_int cr;
          Table.fratio (float_of_int fr /. float_of_int cr);
          Table.fint flood_msgs;
          Table.fint coded_msgs;
          Table.fint (flood_msgs * token_msg_bits);
          Table.fint (coded_msgs * coded_msg_bits);
        ]
        :: !rows)
    ns;
  let flood_slope = Engine.Stats.loglog_slope (List.rev !flood_pts) in
  let coded_slope = Engine.Stats.loglog_slope (List.rev !coded_pts) in
  Table.make
    ~title:
      "E12 (Section 1.2): the token-forwarding barrier - phased flooding \
       vs network-coding gossip (n-gossip, identical oblivious schedules)"
    ~columns:
      [ "n"; "k"; "flooding rounds"; "coding rounds"; "speedup";
        "flood bcasts"; "coded bcasts"; "flood bits"; "coded bits" ]
    ~notes:
      [
        Printf.sprintf
          "measured round slopes in n (k = n): flooding %.2f (paper: nk -> \
           2), coding %.2f (paper: n + k -> 1)"
          flood_slope coded_slope;
        Printf.sprintf
          "shape check (%s): coding at least halves the rounds at every n \
           and grows at least a full exponent slower"
          (pass_fail (!coding_always_faster && coded_slope +. 0.5 < flood_slope));
        "coded packets carry k-bit coefficient vectors - outside the \
         O(log n)-bit token-forwarding model, which is why Theorem 2.3 \
         does not apply to them.";
      ]
    (List.rev !rows)

(* {2 E0 — environment characterization} *)

let environments ?(n = 32) ?(rounds = 40) ?metrics ~seed () =
  timed ?metrics "experiment/e0-environments" @@ fun () ->
  let rows =
    Adversary.Oblivious.all_named ~n ~seed
    |> List.map (fun (name, sched) ->
           let seq = Adversary.Schedule.prefix sched rounds in
           let churn = Dynet.Graph_metrics.churn_stats seq in
           let mid = Dynet.Dyn_seq.get seq (rounds / 2) in
           let deg = Dynet.Graph_metrics.degree_stats mid in
           let stable3 = Dynet.Dyn_seq.is_sigma_stable seq ~sigma:3 in
           [
             name;
             Table.ffloat churn.Dynet.Graph_metrics.mean_edges;
             Table.ffloat deg.Dynet.Graph_metrics.mean_degree;
             Table.ffloat (Dynet.Graph_metrics.clustering_coefficient mid);
             Table.ffloat (Dynet.Graph_metrics.mean_distance mid);
             Table.ffloat churn.Dynet.Graph_metrics.insertions_per_round;
             Printf.sprintf "%.2f" churn.Dynet.Graph_metrics.turnover;
             (if stable3 then "yes" else "no");
           ])
  in
  Table.make
    ~title:
      (Printf.sprintf
         "E0 (context): oblivious environment families over %d rounds (n = %d)"
         rounds n)
    ~columns:
      [ "family"; "edges"; "mean deg"; "clustering"; "mean dist";
        "ins/round"; "turnover"; "3-stable" ]
    ~notes:
      [
        "turnover = steady-state insertions per round / mean edges: 0 is \
         static, ~1 replaces the whole graph every round;";
        "families are used raw here; the unicast experiments wrap them in \
         the sigma = 3 stability hold-down when Theorems 3.4/3.6 need it.";
      ]
    rows

(* {2 E13 — leader election under the competitive measure} *)

let leader_election ?(ns = [ 16; 32; 64 ]) ?metrics ~seed () =
  timed ?metrics "experiment/e13-leader-election" @@ fun () ->
  let rows = ref [] in
  let within = ref true in
  List.iter
    (fun n ->
      List.iter
        (fun (env_name, env) ->
          let result, states = Gossip.Runners.leader_election ~n ~env () in
          let ledger = result.Engine.Run_result.ledger in
          let improvements =
            Array.fold_left
              (fun acc st -> acc + Gossip.Leader_election.improvements st)
              0 states
          in
          let competitive = Engine.Ledger.competitive_cost ledger ~alpha:2. in
          (* Each send is chargeable to an improvement (times degree) or
             to an insertion; 2 n log^2 n covers the improvement side
             with slack at these sizes. *)
          let budget =
            2. *. float_of_int n *. Gossip.Bounds.logn n *. Gossip.Bounds.logn n
          in
          if competitive > budget then within := false;
          rows :=
            [
              string_of_int n;
              env_name;
              (if result.Engine.Run_result.completed then "yes" else "NO");
              string_of_int result.Engine.Run_result.rounds;
              Table.fint (Engine.Ledger.total ledger);
              Table.fint (Engine.Ledger.tc ledger);
              Table.ffloat competitive;
              string_of_int improvements;
            ]
            :: !rows)
        [
          ( "static",
            Gossip.Runners.Oblivious
              (Adversary.Oblivious.static
                 (Dynet.Graph_gen.random_connected
                    (Dynet.Rng.make ~seed:(seed + n)) ~n ~p:0.1)) );
          ( "rewiring",
            Gossip.Runners.Oblivious
              (Adversary.Oblivious.rewiring ~seed:(seed + n + 1) ~n ~extra:n
                 ~rate:0.3) );
          ( "tree-rotator",
            Gossip.Runners.Oblivious
              (Adversary.Oblivious.tree_rotator ~seed:(seed + n + 2) ~n) );
        ])
    ns;
  Table.make
    ~title:
      "E13 (beyond the paper, its Section-4 program): max-id leader \
       election under the adversary-competitive measure"
    ~columns:
      [ "n"; "environment"; "elected"; "rounds"; "messages"; "TC";
        "msgs - 2TC"; "improvements" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): the 2-competitive cost stays within 2 n log^2 n \
           in every environment - churn-driven resends are fully charged to \
           the adversary"
          (pass_fail !within);
        "each send pays for either a champion improvement at the sender or \
         a fresh edge insertion (<= 2 TC): the Algorithm-1 accounting \
         pattern transferred to a new problem.";
      ]
    (List.rev !rows)

(* {2 E14 — the adversary hierarchy} *)

let adaptivity ?(n = 32) ?budget ?metrics ~seed () =
  timed ?metrics "experiment/e14-adaptivity" @@ fun () ->
  let budget = Option.value budget ~default:n in
  let instance = Gossip.Instance.one_per_node ~n in
  let k = n in
  let run_policy policy_name policy =
    let run_against adv_name make_adversary =
      let states = Gossip.Greedy_bcast.init ~instance ~policy ~seed:(seed + 5) () in
      let result, _ =
        Engine.Runner_broadcast.run Gossip.Greedy_bcast.protocol ~states
          ~adversary:(make_adversary ()) ~max_rounds:budget
          ~stop:(Gossip.Greedy_bcast.all_complete ~k)
          ()
      in
      let ledger = result.Engine.Run_result.ledger in
      let learnings = Engine.Ledger.learnings ledger in
      let messages = Engine.Ledger.total ledger in
      ( [
          policy_name;
          adv_name;
          string_of_int messages;
          string_of_int learnings;
          Table.ffloat
            (if messages = 0 then 0.
             else float_of_int learnings /. float_of_int messages);
        ],
        learnings )
    in
    let token_of = function
      | Gossip.Payload.Token_msg tok -> Some tok.Gossip.Token.uid
      | Gossip.Payload.Completeness _ | Gossip.Payload.Request _
      | Gossip.Payload.Walk_msg _ | Gossip.Payload.Center_announce ->
          None
    in
    let oblivious_row, oblivious_learned =
      run_against "oblivious" (fun () ->
          Adversary.Schedule.broadcast
            (Adversary.Oblivious.tree_rotator ~seed:(seed + 1) ~n))
    in
    let weak_row, weak_learned =
      run_against "weakly adaptive" (fun () ->
          Adversary.Weak_bcast.make ~seed:(seed + 2) ~n)
    in
    let strong_row, strong_learned =
      run_against "strongly adaptive" (fun () ->
          let lb =
            Adversary.Broadcast_lb.create
              ~rng:(Dynet.Rng.make ~seed:(seed + 3))
              ~n ~k
          in
          Adversary.Broadcast_lb.to_engine lb ~knows:Gossip.Greedy_bcast.knows
            ~token_of)
    in
    ( [ oblivious_row; weak_row; strong_row ],
      oblivious_learned >= weak_learned && weak_learned >= strong_learned )
  in
  let rows_a, ordered_a =
    run_policy "random-token" Gossip.Greedy_bcast.Random_token
  in
  let rows_b, ordered_b = run_policy "lazy p=0.3" (Gossip.Greedy_bcast.Lazy 0.3) in
  Table.make
    ~title:
      (Printf.sprintf
         "E14 (Section 1.3 hierarchy): progress allowed per adversary class \
          (n = k = %d, %d-round budget, unstructured broadcasters)"
         n budget)
    ~columns:[ "policy"; "adversary"; "messages"; "learnings"; "learn/msg" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): for each policy, learnings(oblivious) >= \
           learnings(weak) >= learnings(strong) - each step of adaptivity \
           costs the algorithm progress"
          (pass_fail (ordered_a && ordered_b));
        "the weak adversary reacts to the previous round's broadcasters \
         (footnote 4); the strong one sees the current round's choices \
         (Section 2).";
      ]
    (rows_a @ rows_b)

(* {2 E15 — robustness tax: message loss} *)

let outcome_cell (result : Engine.Run_result.t) =
  match result.Engine.Run_result.outcome with
  | Engine.Run_result.Completed -> "completed"
  | Engine.Run_result.Partial _ as o -> (
      match Engine.Run_result.coverage o with
      | Some c -> Printf.sprintf "partial %.0f%%" (100. *. c)
      | None -> "partial")
  | Engine.Run_result.Stalled _ -> "stalled"
  | Engine.Run_result.Cancelled _ as o -> (
      match Engine.Run_result.coverage o with
      | Some c -> Printf.sprintf "cancelled %.0f%%" (100. *. c)
      | None -> "cancelled")
  | Engine.Run_result.Aborted _ -> "aborted"

let fault_count (result : Engine.Run_result.t) field =
  match result.Engine.Run_result.fault_counts with
  | None -> 0
  | Some c -> (
      match List.assoc_opt field (Faults.Counts.to_fields c) with
      | Some v -> v
      | None -> 0)

let inflation ~baseline v =
  if baseline = 0 then Float.nan else float_of_int v /. float_of_int baseline

let robustness_loss ?(n = 16) ?(k = 16)
    ?(rates = [ 0.; 0.05; 0.1; 0.2; 0.5; 0.8 ]) ?metrics ~seed () =
  timed ?metrics "experiment/e15-robustness-loss" @@ fun () ->
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  (* The same 3-edge-stable environment for every run: the sweep
     varies only the fault plan, so cost deltas are the robustness
     tax and nothing else. *)
  let env () =
    Gossip.Runners.Oblivious
      (stable (Adversary.Oblivious.tree_rotator ~seed:(seed + 1) ~n))
  in
  let plan loss =
    Faults.Plan.make ~loss ~seed:(seed + int_of_float (1000. *. loss)) ()
  in
  let baseline_msgs = ref 0 in
  let reliable_all_complete = ref true in
  let coverage_dominates = ref true in
  let bare_degrades = ref false in
  let cov (r : Engine.Run_result.t) =
    Option.value
      (Engine.Run_result.coverage r.Engine.Run_result.outcome)
      ~default:0.
  in
  let rows = ref [] in
  List.iter
    (fun loss ->
      let faults = plan loss in
      let bare, _ =
        Gossip.Runners.single_source ~instance ~env:(env ()) ~faults ()
      in
      let reliable, _, retransmits =
        Gossip.Runners.reliable_single_source ~instance ~env:(env ()) ~faults
          ()
      in
      if loss = 0. then baseline_msgs := Engine.Run_result.messages bare;
      if loss <= 0.2 && not reliable.Engine.Run_result.completed then
        reliable_all_complete := false;
      if cov reliable < cov bare -. 1e-9 then coverage_dominates := false;
      if not bare.Engine.Run_result.completed then bare_degrades := true;
      let row variant (result : Engine.Run_result.t) retransmits =
        [
          Printf.sprintf "%.2f" loss;
          variant;
          outcome_cell result;
          Table.fint (Engine.Run_result.messages result);
          string_of_int result.Engine.Run_result.rounds;
          string_of_int (fault_count result "drops");
          string_of_int retransmits;
          Table.fratio
            (inflation ~baseline:!baseline_msgs
               (Engine.Run_result.messages result));
        ]
      in
      rows :=
        row "reliable" reliable retransmits :: row "bare" bare 0 :: !rows)
    rates;
  Table.make
    ~title:
      (Printf.sprintf
         "E15 (robustness tax): Single-Source-Unicast under message loss, \
          bare vs Reliable wrapper (n = %d, k = %d, 3-edge-stable rotator)"
         n k)
    ~columns:
      [ "loss"; "variant"; "outcome"; "messages"; "rounds"; "drops";
        "retransmits"; "msg inflation" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): the wrapper completes at every loss rate <= \
           0.2, never covers less than bare, and keeps making progress at \
           the extreme rate where bare collapses"
          (pass_fail
             (!reliable_all_complete && !coverage_dominates && !bare_degrades));
        "msg inflation = messages / clean-run bare messages: the price of \
         masking loss is acks + retransmissions, growing with the loss rate;";
        "bare Single-Source survives moderate loss by re-requesting (its \
         pending-request dedup resets on topology change) but deadlocks \
         under extreme loss - and then reports a Partial outcome with \
         coverage, not a bare failure bit.";
      ]
    (List.rev !rows)

(* {2 E16 — robustness tax: crash-restart} *)

let robustness_crash ?(n = 16) ?(k = 16)
    ?(rates = [ 0.; 0.005; 0.01; 0.02 ]) ?metrics ~seed () =
  timed ?metrics "experiment/e16-robustness-crash" @@ fun () ->
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let schedule () =
    stable (Adversary.Oblivious.tree_rotator ~seed:(seed + 2) ~n)
  in
  let baseline_msgs = ref 0 and baseline_rounds = ref 0 in
  let clean_completes = ref true in
  let all_graceful = ref true in
  let crashes_seen = ref true in
  let rows = ref [] in
  List.iter
    (fun crash ->
      let faults =
        Faults.Plan.make ~crash
          ~seed:(seed + 17 + int_of_float (10000. *. crash))
          ()
      in
      let result, _ =
        Gossip.Runners.flooding ~instance ~schedule:(schedule ()) ~faults ()
      in
      if crash = 0. then begin
        baseline_msgs := Engine.Run_result.messages result;
        baseline_rounds := result.Engine.Run_result.rounds;
        if not result.Engine.Run_result.completed then clean_completes := false
      end
      else if fault_count result "crashes" = 0 then crashes_seen := false;
      (match Engine.Run_result.coverage result.Engine.Run_result.outcome with
      | Some c when c > 0. -> ()
      | _ -> all_graceful := false);
      rows :=
        [
          Printf.sprintf "%.3f" crash;
          outcome_cell result;
          Table.fint (Engine.Run_result.messages result);
          string_of_int result.Engine.Run_result.rounds;
          string_of_int (fault_count result "crashes");
          string_of_int (fault_count result "restarts");
          Table.fratio
            (inflation ~baseline:!baseline_msgs
               (Engine.Run_result.messages result));
          Table.fratio
            (inflation ~baseline:!baseline_rounds
               result.Engine.Run_result.rounds);
        ]
        :: !rows)
    rates;
  Table.make
    ~title:
      (Printf.sprintf
         "E16 (robustness tax): phased flooding under crash-restart with \
          state loss (n = %d, k = %d, 3-edge-stable rotator, restart p = \
          0.25)"
         n k)
    ~columns:
      [ "crash rate"; "outcome"; "messages"; "rounds"; "crashes"; "restarts";
        "msg inflation"; "round inflation" ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): the clean run completes, every faulty run \
           reports a positive coverage (no silent failure), and every \
           positive crash rate injects crashes"
          (pass_fail (!clean_completes && !all_graceful && !crashes_seen));
        "a restarted node re-enters with its initial state, so flooding \
         re-teaches it every token it forgot: crash faults buy round and \
         message inflation rather than wrong answers.";
      ]
    (List.rev !rows)

(* {2 E18 — mega-scale SoA engine} *)

let mega ?(ns = [ 1_000; 10_000 ]) ?(k = 32) ?(shards = 4) ?metrics ~seed ()
    =
  timed ?metrics "experiment/e18-mega" @@ fun () ->
  let report r =
    Obs.Json.to_string (Obs.Report.to_json (Engine.Run_result.to_report r))
  in
  let d = 8 and sigma = 16 in
  (* Default [phase_len] is the worst-case n (a token may need n - 1
     rounds against an adversarial connected sequence), which at n=10^5
     means nk total rounds.  These schedules are random regular-ish
     expanders — a token saturates in O(log n) rounds — so a short
     fixed phase suffices and keeps the experiment at k*phase_len
     rounds regardless of n.  Completion is still checked, not
     assumed: the shape check fails if the truncation ever bites. *)
  let phase_len = 4 * sigma in
  let all_completed = ref true and all_identical = ref true in
  let rows =
    List.map
      (fun n ->
        (* A sparse churning environment that scales: a fresh
           degree-[d] regular-ish connected graph every [sigma] rounds,
           physically held between epochs so the engines' stability
           gates (CSR repack, connectivity check) see real stable
           runs.  Committed by (seed, n, epoch) — still oblivious. *)
        let epochs = Hashtbl.create 32 in
        let schedule () =
          Adversary.Schedule.of_fun ~n (fun r ->
              let e = (r - 1) / sigma in
              match Hashtbl.find_opt epochs e with
              | Some g -> g
              | None ->
                  let g =
                    Dynet.Graph_gen.random_regularish
                      (Dynet.Rng.make ~seed:(seed + (31 * n) + e))
                      ~n ~d
                  in
                  Hashtbl.add epochs e g;
                  g)
        in
        let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
        let run engine =
          Obs.Timer.time (fun () ->
              fst
                (Gossip.Runners.flooding ~instance ~schedule:(schedule ())
                   ~engine ~phase_len ()))
        in
        let base, base_s = run (Engine.Soa.engine ()) in
        let sharded, sharded_s = run (Engine.Soa.engine ~shards ()) in
        let fast, _ = run Engine.Default.engine in
        let identical =
          String.equal (report base) (report sharded)
          && String.equal (report base) (report fast)
        in
        if not base.Engine.Run_result.completed then all_completed := false;
        if not identical then all_identical := false;
        let rounds = base.Engine.Run_result.rounds in
        let per_round s =
          if rounds = 0 then 0. else 1000. *. s /. float_of_int rounds
        in
        [
          string_of_int n; string_of_int k; string_of_int rounds;
          Table.fint (Engine.Run_result.messages base);
          Table.ffloat (Engine.Ledger.amortized base.Engine.Run_result.ledger ~k);
          Printf.sprintf "%.3f" (per_round base_s);
          Printf.sprintf "%.3f" (per_round sharded_s);
          (if identical then "yes" else "NO");
        ])
      ns
  in
  Table.make
    ~title:
      (Printf.sprintf
         "E18 (mega-scale): phased flooding on the SoA engine, %d-regular-ish \
          schedule re-drawn every %d rounds (k = %d, shards %d)"
         d sigma k shards)
    ~columns:
      [
        "n"; "k"; "rounds"; "messages"; "amortized/token"; "ms/round soa";
        Printf.sprintf "ms/round soa-%d" shards; "reports identical";
      ]
    ~notes:
      [
        Printf.sprintf
          "shape check (%s): every run completes and the soa, soa-%d and \
           fastpath engines produce byte-identical run reports"
          (pass_fail (!all_completed && !all_identical))
          shards;
        "amortized/token stays O(n) under phased flooding (its nk message \
         guarantee split over k tokens); ms/round is wall-clock over the \
         whole run, so it includes the stable rounds the delta gates serve \
         for free.";
      ]
    rows

let all ?jobs ?metrics ?prof ~seed () =
  [
    environments ?metrics ~seed ();
    table1 ?jobs ?metrics ?prof ~seed ();
    lower_bound ?metrics ~seed ();
    free_edges ?metrics ~seed ();
    single_source ?jobs ?metrics ?prof ~seed ();
    multi_source ?metrics ~seed ();
    rw_scaling ?jobs ?metrics ?prof ~seed ();
    static_baseline ?metrics ~seed ();
    time_vs_messages ?metrics ~seed ();
    ablation ?metrics ~seed ();
    rw_tradeoff ?metrics ~seed ();
    coding_gap ?metrics ~seed ();
    leader_election ?metrics ~seed ();
    adaptivity ?metrics ~seed ();
    robustness_loss ?metrics ~seed ();
    robustness_crash ?metrics ~seed ();
    mega ~ns:[ 500; 2_000 ] ?metrics ~seed ();
  ]
