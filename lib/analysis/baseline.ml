(* Perf-baseline compare: parse the bench harness's
   dynspread-bench/v1 summary and diff two of them under a percentage
   tolerance.  Lives in the library (not bench/main.ml) so the parsing
   and the regression rule are unit-testable without running Bechamel. *)

let schema_name = "dynspread-bench/v1"

type entry = { name : string; value : float }

type t = {
  seed : int;
  shards : int;
  benchmarks : entry list;
  experiments : entry list;
}
type kind = Benchmark | Experiment

let kind_name = function
  | Benchmark -> "benchmark"
  | Experiment -> "experiment"

type delta = {
  kind : kind;
  entry_name : string;
  baseline : float;
  current : float;
  pct : float;
}

type comparison = {
  tolerance_pct : float;
  regressions : delta list;
  improvements : delta list;
  within : int;
  missing : (kind * string) list;
}

(* {2 Parsing} *)

let entries_of ~value_field json =
  match json with
  | Obs.Json.List items ->
      let entry j =
        match (Obs.Json.member "name" j, Obs.Json.member value_field j) with
        | Some (Obs.Json.String name), Some v -> (
            match Obs.Json.to_float_opt v with
            | Some value when Float.is_finite value -> Ok (Some { name; value })
            (* ns_per_run is null when Bechamel produced no estimate —
               an entry we can neither baseline nor regress against. *)
            | Some _ | None -> Ok None)
        | _ -> Error ("malformed entry (needs name + " ^ value_field ^ ")")
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match entry j with
            | Error e -> Error e
            | Ok None -> collect acc rest
            | Ok (Some e) -> collect (e :: acc) rest)
      in
      collect [] items
  | _ -> Error "expected a JSON array"

let of_json json =
  match Obs.Json.member "schema" json with
  | Some (Obs.Json.String s) when String.equal s schema_name -> (
      let int_field name ~default =
        match Obs.Json.member name json with
        | Some j -> Option.value (Obs.Json.to_int j) ~default
        | None -> default
      in
      let seed = int_field "seed" ~default:0 in
      (* Summaries written before the SoA engine carry no shard count;
         they were all sequential, so 1 is the faithful reading. *)
      let shards = int_field "shards" ~default:1 in
      let field name =
        Option.value (Obs.Json.member name json) ~default:(Obs.Json.List [])
      in
      match
        ( entries_of ~value_field:"ns_per_run" (field "benchmarks"),
          entries_of ~value_field:"seconds" (field "experiments") )
      with
      | Ok benchmarks, Ok experiments ->
          Ok { seed; shards; benchmarks; experiments }
      | Error e, _ -> Error ("benchmarks: " ^ e)
      | _, Error e -> Error ("experiments: " ^ e))
  | Some (Obs.Json.String s) ->
      Error (Printf.sprintf "schema %S is not %S" s schema_name)
  | Some _ | None -> Error ("missing schema field (expected " ^ schema_name ^ ")")

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic -> (
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.of_string content with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok json -> (
          match of_json json with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok t -> Ok t))

(* {2 Diffing} *)

let find name entries =
  List.find_opt (fun e -> String.equal e.name name) entries

(* Time-like metrics in both sections: bigger is worse.  Baseline
   entries missing from the current run are reported (a silently
   vanished benchmark must not read as "no regression"); entries only
   in the current run are new coverage and compare against nothing.
   [floor] is a per-kind noise band: when both sides sit under it the
   entry is within tolerance regardless of percentage — a 9 ms
   experiment can swing 3x from scheduler noise alone, and a
   percentage rule on it would make the CI gate flaky. *)
let diff ?(floor = fun _ -> 0.) ~tolerance_pct ~baseline ~current () =
  let one kind base cur (regs, imps, within, missing) =
    List.fold_left
      (fun (regs, imps, within, missing) b ->
        match find b.name cur with
        | None -> (regs, imps, within, (kind, b.name) :: missing)
        | Some c ->
            let noise = b.value < floor kind && c.value < floor kind in
            let pct =
              if noise || b.value <= 0. then 0.
              else (c.value -. b.value) /. b.value *. 100.
            in
            let d =
              {
                kind;
                entry_name = b.name;
                baseline = b.value;
                current = c.value;
                pct;
              }
            in
            if pct > tolerance_pct then (d :: regs, imps, within, missing)
            else if pct < -.tolerance_pct then
              (regs, d :: imps, within, missing)
            else (regs, imps, within + 1, missing))
      (regs, imps, within, missing)
      base
  in
  let regs, imps, within, missing =
    one Experiment baseline.experiments current.experiments
      (one Benchmark baseline.benchmarks current.benchmarks ([], [], 0, []))
  in
  {
    tolerance_pct;
    regressions = List.rev regs;
    improvements = List.rev imps;
    within;
    missing = List.rev missing;
  }

let regressed c = c.regressions <> [] || c.missing <> []

let render_delta d =
  Printf.sprintf "%s %s: %+.1f%% (%.4g -> %.4g)" (kind_name d.kind)
    d.entry_name d.pct d.baseline d.current

let render c =
  let header =
    Printf.sprintf
      "baseline compare (tolerance %.0f%%): %d regressed, %d improved, %d \
       within tolerance, %d missing"
      c.tolerance_pct
      (List.length c.regressions)
      (List.length c.improvements)
      c.within
      (List.length c.missing)
  in
  header
  :: List.map (fun d -> "  REGRESSED " ^ render_delta d) c.regressions
  @ List.map (fun d -> "  improved  " ^ render_delta d) c.improvements
  @ List.map
      (fun (k, n) ->
        Printf.sprintf "  MISSING   %s %s (in baseline, not in this run)"
          (kind_name k) n)
      c.missing
