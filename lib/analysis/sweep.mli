(** Deterministic parallel map over independent experiment points.

    The experiment sweeps (E1's n × k-regime grid, E4's n × k ×
    environment grid, E7's k × replicate grid) are embarrassingly
    parallel: every point derives its own RNG streams from [(seed, n,
    k, …)] alone and shares no state with its siblings.  [map] runs
    such points across OCaml 5 domains and returns the results {e in
    input order}, so the caller's sequential merge — row building,
    win counting, slope fitting — sees exactly what a [jobs = 1] run
    would see.  Fixed seed in, bit-identical tables out, whatever
    [jobs] is.

    Scheduling is dynamic (an [Atomic] cursor over the point array, so
    a slow point does not stall a whole stripe) but the output array is
    indexed by input position, making the schedule unobservable.  If a
    point raises, the exception of the {e lowest-indexed} failing
    point is re-raised after all domains join — again independent of
    scheduling.

    Points must be self-contained: they must not mutate shared
    structures (in particular they must not write to a shared
    {!Obs.Metrics.t} — the registry is single-domain by design; see
    {!map_timed} and {!Obs.Metrics.merge} for the sanctioned
    patterns). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI's and bench
    harness's default for [--jobs]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f points] applies [f] to every point and returns the
    results in input order.  [jobs <= 1] (the default) or fewer than
    two points runs sequentially in the calling domain with no domain
    spawned at all; otherwise [min jobs (Array.length points)] domains
    (the caller included) pull points off a shared cursor. *)

val map_timed :
  ?jobs:int -> ?metrics:Obs.Metrics.t -> name:string ->
  ('a -> 'b) -> 'a array -> 'b array
(** [map] plus per-point wall-clock: each point's elapsed seconds is
    measured inside its worker ({!Obs.Timer.time}) but recorded into
    [metrics] under histogram [name] only after the domains have
    joined, in input order — the registry is touched by the calling
    domain alone, and the sample order is schedule-independent. *)

val map_span :
  ?jobs:int -> ?metrics:Obs.Metrics.t -> ?prof:Obs.Span.t -> name:string ->
  (prof:Obs.Span.t -> 'a -> 'b) -> 'a array -> 'b array
(** [map_timed] plus hierarchical profiling: the whole sweep runs
    inside a [sweep:<name>] span on [prof], each point runs inside a
    [point]-category span named [name], and each point receives the
    profiler lane of the domain executing it as [~prof] (so engine
    round/phase spans recorded inside the point land in the right
    lane).  Helper domains get fresh {!Obs.Span.worker} lanes
    ([sweep-w1], [sweep-w2], …) absorbed back after the join; the
    calling domain records into [prof] itself.  The sweep span carries
    per-worker busy-seconds counters ([busy_s_w0], …) and an
    [imbalance] counter ([(max - min) / max] of worker busy times).
    With the default null profiler this is exactly [map_timed].
    Results, error propagation, and metrics recording keep the [map]
    contract: input order, lowest-index failure, registry touched only
    by the calling domain after the join. *)
