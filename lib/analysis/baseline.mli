(** Perf-regression baseline: parse and diff the bench harness's
    [dynspread-bench/v1] JSON summaries.

    The bench harness ([bench/main.exe]) writes a summary with one
    [ns_per_run] row per micro-benchmark and one [seconds] row per
    experiment; the repository commits one such file
    ([BENCH_results.json]) as the perf baseline.  [diff] compares a
    fresh summary against it under a symmetric percentage tolerance —
    both sections are time-like, so {e bigger is worse} — and
    [regressed] is the CI gate: any entry above tolerance, or any
    baseline entry missing from the current run (a vanished benchmark
    must not read as a pass), fails the build.  Entries whose
    [ns_per_run] is [null] (Bechamel produced no estimate) are skipped
    on both sides. *)

val schema_name : string
(** ["dynspread-bench/v1"]. *)

type entry = { name : string; value : float }
(** One row: [ns_per_run] for benchmarks, [seconds] for experiments. *)

type t = {
  seed : int;
  shards : int;
      (** Intra-run shard count the sharded benchmarks ran with
          (["shards"] in the JSON; 1 when the field is absent —
          pre-SoA summaries were all sequential).  The bench harness
          refuses to diff summaries taken at different shard counts:
          the sharded entries measure different parallelism, so the
          comparison would be meaningless. *)
  benchmarks : entry list;
  experiments : entry list;
}

type kind = Benchmark | Experiment

val kind_name : kind -> string

type delta = {
  kind : kind;
  entry_name : string;
  baseline : float;
  current : float;
  pct : float;  (** [(current - baseline) / baseline * 100]. *)
}

type comparison = {
  tolerance_pct : float;
  regressions : delta list;  (** Slower than baseline beyond tolerance. *)
  improvements : delta list;  (** Faster than baseline beyond tolerance. *)
  within : int;  (** Entries inside the tolerance band. *)
  missing : (kind * string) list;
      (** In the baseline but absent from the current run. *)
}

val of_json : Obs.Json.t -> (t, string) result
val load : string -> (t, string) result

val diff :
  ?floor:(kind -> float) ->
  tolerance_pct:float ->
  baseline:t ->
  current:t ->
  unit ->
  comparison
(** Match entries by name within each section; a zero-valued baseline
    entry counts as within tolerance (no meaningful percentage).
    [floor] (default: constant 0) gives a per-kind noise band: entries
    whose baseline {e and} current values are both under the floor are
    within tolerance no matter the percentage — millisecond-scale
    experiments swing severalfold from scheduler noise, and a pure
    percentage rule on them makes the gate flaky. *)

val regressed : comparison -> bool
(** True if anything regressed or went missing — the nonzero-exit
    condition. *)

val render : comparison -> string list
(** Human-readable report, one line per finding after a summary
    header. *)
