let recommended_jobs () = Domain.recommended_domain_count ()

(* Shared-cursor work sharing: slot [i] of [results] only ever belongs
   to point [i], so the only cross-domain contention is the Atomic
   cursor itself, and the join gives the caller a happens-before edge
   over every slot. *)
let run ~jobs f points =
  let n = Array.length points in
  let results = Array.make n None in
  let job i = results.(i) <- Some (try Ok (f points.(i)) with e -> Error e) in
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      job i
    done
  else begin
    let cursor = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        job i;
        worker ()
      end
    in
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers
  end;
  (* First failure by input index, not by completion order. *)
  Array.map
    (function
      | Some (Ok r) -> r
      | Some (Error e) -> raise e
      | None -> assert false)
    results

let map ?(jobs = 1) f points = run ~jobs f points

let map_timed ?(jobs = 1) ?metrics ~name f points =
  let timed = run ~jobs (fun x -> Obs.Timer.time (fun () -> f x)) points in
  Array.map
    (fun (r, dt) ->
      (match metrics with
      | Some m -> Obs.Metrics.observe m name dt
      | None -> ());
      r)
    timed
