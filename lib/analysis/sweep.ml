let recommended_jobs () = Domain.recommended_domain_count ()

(* Shared-cursor work sharing: slot [i] of [results] only ever belongs
   to point [i], so the only cross-domain contention is the Atomic
   cursor itself, and the join gives the caller a happens-before edge
   over every slot. *)
let run ~jobs f points =
  let n = Array.length points in
  let results = Array.make n None in
  let job i = results.(i) <- Some (try Ok (f points.(i)) with e -> Error e) in
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      job i
    done
  else begin
    let cursor = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        job i;
        worker ()
      end
    in
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers
  end;
  (* First failure by input index, not by completion order. *)
  Array.map
    (function
      | Some (Ok r) -> r
      | Some (Error e) -> raise e
      | None -> assert false)
    results

let map ?(jobs = 1) f points = run ~jobs f points

let map_timed ?(jobs = 1) ?metrics ~name f points =
  let timed = run ~jobs (fun x -> Obs.Timer.time (fun () -> f x)) points in
  Array.map
    (fun (r, dt) ->
      (match metrics with
      | Some m -> Obs.Metrics.observe m name dt
      | None -> ());
      r)
    timed

(* Profiled variant: same cursor scheme as [run], but each domain owns
   a {!Obs.Span.worker} lane (one mutable profiler per domain — the
   lanes are absorbed back by the calling domain only after the join,
   like the metrics merge), and the wrapping sweep span carries
   per-worker busy seconds and a finish-time imbalance counter. *)
let map_span ?(jobs = 1) ?metrics ?(prof = Obs.Span.null) ~name
    (f : prof:Obs.Span.t -> 'a -> 'b) points =
  let n = Array.length points in
  let results = Array.make n None in
  let job wp i =
    results.(i) <-
      Some
        (try
           Ok
             (Obs.Span.with_span wp ~cat:"point" name (fun () ->
                  Obs.Timer.time (fun () -> f ~prof:wp points.(i))))
         with e -> Error e)
  in
  Obs.Span.with_span prof ~cat:"sweep" ("sweep:" ^ name) (fun () ->
      if jobs <= 1 || n <= 1 then
        for i = 0 to n - 1 do
          job prof i
        done
      else begin
        let workers = min jobs n in
        let cursor = Atomic.make 0 in
        let busy = Array.make workers 0. in
        (* Worker 0 is the calling domain and records into the caller's
           own lane; helpers get fresh lanes sharing the epoch. *)
        let lanes =
          Array.init workers (fun w ->
              if w = 0 then prof
              else
                Obs.Span.worker prof ~tid:(w + 1)
                  ~lane:(Printf.sprintf "sweep-w%d" w))
        in
        let worker w () =
          let wp = lanes.(w) in
          let t0 = Obs.Timer.now_s () in
          let rec loop () =
            let i = Atomic.fetch_and_add cursor 1 in
            if i < n then begin
              job wp i;
              loop ()
            end
          in
          loop ();
          busy.(w) <- Obs.Timer.now_s () -. t0
        in
        let helpers =
          List.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1)))
        in
        worker 0 ();
        List.iter Domain.join helpers;
        Array.iteri
          (fun w lane -> if w > 0 then Obs.Span.absorb prof ~from:lane)
          lanes;
        let bmax = Array.fold_left Float.max 0. busy in
        let bmin = Array.fold_left Float.min busy.(0) busy in
        Array.iteri
          (fun w b ->
            Obs.Span.add_counter prof (Printf.sprintf "busy_s_w%d" w) b)
          busy;
        Obs.Span.add_counter prof "imbalance"
          (if bmax > 0. then (bmax -. bmin) /. bmax else 0.)
      end);
  (* First failure by input index, before any metrics are recorded —
     the same contract as [run]/[map_timed]. *)
  Array.iter
    (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
    results;
  Array.map
    (function
      | Some (Ok (r, dt)) ->
          (match metrics with
          | Some m -> Obs.Metrics.observe m name dt
          | None -> ());
          r
      | Some (Error _) | None -> assert false)
    results
