type t = {
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~columns ?(notes = []) rows =
  let width = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table.make: row %d has %d cells, expected %d" i
             (List.length row) width))
    rows;
  { title; columns; rows; notes }

let title t = t.title
let columns t = t.columns
let rows t = t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'x' || c = '%')
       s

let render t =
  let all_rows = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all_rows;
  let pad i cell =
    let w = widths.(i) in
    let pad_len = w - String.length cell in
    if looks_numeric cell then String.make pad_len ' ' ^ cell
    else cell ^ String.make pad_len ' '
  in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule = String.make (max total_width (String.length t.title)) '-' in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun note ->
      Buffer.add_string buf ("  " ^ note);
      Buffer.add_char buf '\n')
    t.notes;
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  (t.columns :: t.rows)
  |> List.map (fun row -> String.concat "," (List.map csv_escape row))
  |> String.concat "\n"

let fint i =
  if abs i < 100_000 then string_of_int i
  else Printf.sprintf "%.2e" (float_of_int i)

let ffloat x =
  if Float.is_integer x && Float.abs x < 100_000. then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 100_000. || (Float.abs x < 0.01 && x <> 0.) then
    Printf.sprintf "%.2e" x
  else Printf.sprintf "%.3g" x

let fratio x = Printf.sprintf "%.2fx" x
