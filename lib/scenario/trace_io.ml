open Dynet.Ops

type header = {
  version : int;
  n : int;
  seed : int option;
  provenance : string;
}

type delta = { round : int; add : (int * int) list; del : (int * int) list }
type t = { header : header; deltas : delta array }

let version = 1
let schema_name = Printf.sprintf "dynspread-trace/v%d" version
let rounds t = Array.length t.deltas

let make ?seed ?(provenance = "unknown") ~n deltas =
  { header = { version; n; seed; provenance }; deltas = Array.of_list deltas }

(* Canonical delta between consecutive round graphs: Edge_set diffs,
   rendered as sorted (u, v) pairs (Edge.compare order). *)
let pairs set =
  List.map
    (fun e ->
      let u, v = Dynet.Edge.endpoints e in
      (u, v))
    (Dynet.Edge_set.to_list set)

let delta_of_graphs ~round ~prev ~cur =
  let ep = Dynet.Graph.edges prev and ec = Dynet.Graph.edges cur in
  {
    round;
    add = pairs (Dynet.Edge_set.diff ec ep);
    del = pairs (Dynet.Edge_set.diff ep ec);
  }

let of_graphs ?seed ?(provenance = "unknown") ~n graphs =
  let prev = ref (Dynet.Graph.empty ~n) in
  let deltas =
    List.mapi
      (fun i g ->
        if Dynet.Graph.n g <> n then
          invalid_arg
            (Printf.sprintf
               "Trace_io.of_graphs: round %d has %d nodes, expected %d"
               (i + 1) (Dynet.Graph.n g) n);
        let d = delta_of_graphs ~round:(i + 1) ~prev:!prev ~cur:g in
        prev := g;
        d)
      graphs
  in
  make ?seed ~provenance ~n deltas

(* {2 Encoding} *)

let json_of_pairs ps =
  Obs.Json.List
    (List.map (fun (u, v) -> Obs.Json.List [ Obs.Json.Int u; Obs.Json.Int v ]) ps)

(* The header's [rounds] field is advisory (readers recount), but
   emitting the true value keeps files self-describing. *)
let header_to_json h ~rounds =
  Obs.Json.Obj
    (("schema", Obs.Json.String schema_name)
     :: ("n", Obs.Json.Int h.n)
     :: (match h.seed with
        | None -> []
        | Some s -> [ ("seed", Obs.Json.Int s) ])
    @ [ ("provenance", Obs.Json.String h.provenance);
        ("rounds", Obs.Json.Int rounds) ])

let delta_to_json d =
  Obs.Json.Obj
    [
      ("round", Obs.Json.Int d.round);
      ("add", json_of_pairs d.add);
      ("del", json_of_pairs d.del);
    ]

let to_buffer buf t =
  Obs.Json.to_buffer buf (header_to_json t.header ~rounds:(rounds t));
  Buffer.add_char buf '\n';
  Array.iter
    (fun d ->
      Obs.Json.to_buffer buf (delta_to_json d);
      Buffer.add_char buf '\n')
    t.deltas

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let write oc t = output_string oc (to_string t)

(* {2 Decoding} *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e
let errf fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let member_int ~line name j =
  match Obs.Json.member name j with
  | Some v -> (
      match Obs.Json.to_int v with
      | Some i -> Ok i
      | None -> errf "line %d: field %S is not an integer" line name)
  | None -> errf "line %d: missing field %S" line name

let member_string ~line name j =
  match Obs.Json.member name j with
  | Some (Obs.Json.String s) -> Ok s
  | Some _ -> errf "line %d: field %S is not a string" line name
  | None -> errf "line %d: missing field %S" line name

let pairs_of_json ~line name j =
  match Obs.Json.member name j with
  | None -> errf "line %d: missing field %S" line name
  | Some (Obs.Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Obs.Json.List [ Obs.Json.Int u; Obs.Json.Int v ] :: rest ->
            go ((u, v) :: acc) rest
        | _ :: _ ->
            errf "line %d: field %S must be a list of [u, v] integer pairs"
              line name
      in
      go [] items
  | Some _ -> errf "line %d: field %S is not a list" line name

let header_of_json ~line j =
  let* schema = member_string ~line "schema" j in
  if not (String.equal schema schema_name) then
    errf "line %d: schema is %S, this reader expects %S" line schema
      schema_name
  else
    let* n = member_int ~line "n" j in
    if n < 2 then errf "line %d: n = %d, need at least 2 nodes" line n
    else
      let* seed =
        match Obs.Json.member "seed" j with
        | None | Some Obs.Json.Null -> Ok None
        | Some v -> (
            match Obs.Json.to_int v with
            | Some s -> Ok (Some s)
            | None -> errf "line %d: field \"seed\" is not an integer" line)
      in
      let* provenance = member_string ~line "provenance" j in
      Ok { version; n; seed; provenance }

let delta_of_json ~line ~expect_round j =
  let* round = member_int ~line "round" j in
  if round <> expect_round then
    errf "line %d: round %d out of order (expected %d: rounds are \
          contiguous from 1)"
      line round expect_round
  else
    let* add = pairs_of_json ~line "add" j in
    let* del = pairs_of_json ~line "del" j in
    Ok { round; add; del }

let of_string content =
  let lines = String.split_on_char '\n' content in
  (* Keep 1-based line numbers; drop blank lines (the trailing newline
     yields one) but keep counting them. *)
  let numbered =
    List.mapi (fun i l -> (i + 1, String.trim l)) lines
    |> List.filter (fun (_, l) -> not (String.equal l ""))
  in
  match numbered with
  | [] -> Error "line 1: empty trace file (expected a header line)"
  | (hline, htext) :: rest ->
      let* hjson =
        match Obs.Json.of_string htext with
        | Ok j -> Ok j
        | Error e -> errf "line %d: %s" hline e
      in
      let* header = header_of_json ~line:hline hjson in
      let rec go acc expect = function
        | [] -> Ok (List.rev acc)
        | (line, text) :: rest ->
            let* j =
              match Obs.Json.of_string text with
              | Ok j -> Ok j
              | Error e -> errf "line %d: %s" line e
            in
            let* d = delta_of_json ~line ~expect_round:expect j in
            go (d :: acc) (expect + 1) rest
      in
      let* deltas = go [] 1 rest in
      Ok { header; deltas = Array.of_list deltas }

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let load path =
  let* content = read_file path in
  match of_string content with
  | Ok t -> Ok t
  | Error e -> errf "%s: %s" path e

let save path t =
  match open_out_bin path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          write oc t;
          Ok ())

(* {2 Replay / validation} *)

let apply_delta ~n ~round edges d =
  let check (u, v) =
    if u < 0 || v < 0 || u >= n || v >= n then
      invalid_arg
        (Printf.sprintf "trace round %d: endpoint out of range in (%d, %d)"
           round u v);
    if u = v then
      invalid_arg (Printf.sprintf "trace round %d: self-loop on %d" round u)
  in
  let edges =
    List.fold_left
      (fun acc (u, v) ->
        check (u, v);
        if Dynet.Edge_set.mem_pair u v acc then
          invalid_arg
            (Printf.sprintf "trace round %d: adding present edge (%d, %d)"
               round u v);
        Dynet.Edge_set.add_pair u v acc)
      edges d.add
  in
  List.fold_left
    (fun acc (u, v) ->
      check (u, v);
      if not (Dynet.Edge_set.mem_pair u v acc) then
        invalid_arg
          (Printf.sprintf "trace round %d: deleting absent edge (%d, %d)"
             round u v);
      Dynet.Edge_set.remove (Dynet.Edge.make u v) acc)
    edges d.del

let fold_graphs t ~init ~f =
  let n = t.header.n in
  let edges = ref Dynet.Edge_set.empty in
  let acc = ref init in
  Array.iteri
    (fun i d ->
      let round = i + 1 in
      edges := apply_delta ~n ~round !edges d;
      acc := f !acc ~round (Dynet.Graph.make ~n !edges))
    t.deltas;
  !acc

type stats = {
  stat_rounds : int;
  stat_tc : int;
  stat_max_edges : int;
  first_disconnected : int option;
}

let canonical_sorted ps =
  let rec go prev = function
    | [] -> true
    | (u, v) :: rest ->
        u < v
        && (match prev with
           | None -> true
           | Some (pu, pv) -> pu < u || (pu = u && pv < v))
        && go (Some (u, v)) rest
  in
  go None ps

let validate t =
  let check_pairs ~round name ps =
    if canonical_sorted ps then Ok ()
    else
      errf
        "round %d: %s pairs must be canonical (u < v), strictly sorted, \
         duplicate-free"
        round name
  in
  let rec check_deltas i =
    if i >= Array.length t.deltas then Ok ()
    else
      let d = t.deltas.(i) in
      let* () = check_pairs ~round:d.round "add" d.add in
      let* () = check_pairs ~round:d.round "del" d.del in
      check_deltas (i + 1)
  in
  let* () = check_deltas 0 in
  match
    fold_graphs t
      ~init:{ stat_rounds = 0; stat_tc = 0; stat_max_edges = 0;
              first_disconnected = None }
      ~f:(fun acc ~round g ->
        {
          stat_rounds = round;
          stat_tc = acc.stat_tc + List.length t.deltas.(round - 1).add;
          stat_max_edges = max acc.stat_max_edges (Dynet.Graph.edge_count g);
          first_disconnected =
            (match acc.first_disconnected with
            | Some _ as d -> d
            | None -> if Dynet.Graph.is_connected g then None else Some round);
        })
  with
  | stats -> Ok stats
  | exception Invalid_argument msg -> Error msg
