open Dynet.Ops

type algorithm = Flooding | Single_source | Multi_source | Oblivious_rw

type env =
  | Trace of { path : string }
  | Static of { p : float }
  | Tree_rotator
  | Rewiring of { extra : int option; rate : float }
  | Edge_markovian of { p_up : float option; p_down : float }
  | Fresh_random of { p : float }
  | Request_cutter of { cut_prob : float }

type faults = {
  loss : float;
  dup : float;
  crash : float;
  restart : float;
  max_delay : int;
  fault_seed : int option;
}

type t = {
  name : string;
  algorithm : algorithm;
  env : env;
  sigma : int;
  n : int option;
  k : int;
  s : int;
  seed : int;
  repeats : int;
  faults : faults option;
  max_rounds : int option;
}

let schema_name = "dynspread-scenario/v1"

let algorithms =
  [
    ("flooding", Flooding);
    ("single-source", Single_source);
    ("multi-source", Multi_source);
    ("oblivious-rw", Oblivious_rw);
  ]

let algorithm_name = function
  | Flooding -> "flooding"
  | Single_source -> "single-source"
  | Multi_source -> "multi-source"
  | Oblivious_rw -> "oblivious-rw"

let env_family = function
  | Trace _ -> "trace"
  | Static _ -> "static"
  | Tree_rotator -> "tree-rotator"
  | Rewiring _ -> "rewiring"
  | Edge_markovian _ -> "edge-markovian"
  | Fresh_random _ -> "fresh-random"
  | Request_cutter _ -> "request-cutter"

let env_families =
  [ "trace"; "static"; "tree-rotator"; "rewiring"; "edge-markovian";
    "fresh-random"; "request-cutter" ]

(* {2 Error-accumulating field readers}

   Each reader appends to a shared error list; validation reports every
   problem at once, not just the first. *)

type ctx = { mutable errors : string list }

let err ctx fmt = Printf.ksprintf (fun m -> ctx.errors <- m :: ctx.errors) fmt

let check_unknown ctx ~where ~allowed = function
  | Obs.Json.Obj fields ->
      List.iter
        (fun (key, _) ->
          if not (List.exists (String.equal key) allowed) then
            err ctx "%s: unknown field %S (allowed: %s)" where key
              (String.concat ", " allowed))
        fields
  | _ -> ()

let get_string ctx ~where name default j =
  match Obs.Json.member name j with
  | None -> default
  | Some (Obs.Json.String s) -> Some s
  | Some _ ->
      err ctx "%s: field %S must be a string" where name;
      default

let get_int ctx ~where name default j =
  match Obs.Json.member name j with
  | None -> default
  | Some v -> (
      match Obs.Json.to_int v with
      | Some i -> Some i
      | None ->
          err ctx "%s: field %S must be an integer" where name;
          default)

let get_float ctx ~where name default j =
  match Obs.Json.member name j with
  | None -> default
  | Some v -> (
      match Obs.Json.to_float_opt v with
      | Some f -> Some f
      | None ->
          err ctx "%s: field %S must be a number" where name;
          default)

let check_prob ctx ~where name v =
  if not (Float.is_finite v && v >= 0. && v <= 1.) then
    err ctx "%s: field %S = %g is not a probability in [0, 1]" where name v

let check_min ctx ~where name v ~min_v =
  if v < min_v then err ctx "%s: field %S = %d must be >= %d" where name v min_v

(* {2 Sub-objects} *)

let env_of_json ctx j =
  let where = "env" in
  match Obs.Json.member "env" j with
  | None ->
      err ctx "missing field \"env\" (an object with a \"family\")";
      Tree_rotator
  | Some (Obs.Json.Obj _ as e) -> (
      let family =
        Option.value
          (get_string ctx ~where "family" None e)
          ~default:"(missing)"
      in
      let prob name default =
        let v = Option.value (get_float ctx ~where name None e) ~default in
        check_prob ctx ~where name v;
        v
      in
      let base = [ "family" ] in
      match family with
      | "trace" -> (
          check_unknown ctx ~where ~allowed:(base @ [ "path" ]) e;
          match get_string ctx ~where "path" None e with
          | Some path when not (String.equal path "") -> Trace { path }
          | Some _ | None ->
              err ctx "env: family \"trace\" needs a non-empty \"path\"";
              Tree_rotator)
      | "static" ->
          check_unknown ctx ~where ~allowed:(base @ [ "p" ]) e;
          Static { p = prob "p" 0.15 }
      | "tree-rotator" ->
          check_unknown ctx ~where ~allowed:base e;
          Tree_rotator
      | "rewiring" ->
          check_unknown ctx ~where ~allowed:(base @ [ "extra"; "rate" ]) e;
          let extra = get_int ctx ~where "extra" None e in
          Option.iter
            (fun x -> check_min ctx ~where "extra" x ~min_v:0)
            extra;
          Rewiring { extra; rate = prob "rate" 0.25 }
      | "edge-markovian" ->
          check_unknown ctx ~where ~allowed:(base @ [ "p_up"; "p_down" ]) e;
          let p_up = get_float ctx ~where "p_up" None e in
          Option.iter (check_prob ctx ~where "p_up") p_up;
          Edge_markovian { p_up; p_down = prob "p_down" 0.3 }
      | "fresh-random" ->
          check_unknown ctx ~where ~allowed:(base @ [ "p" ]) e;
          Fresh_random { p = prob "p" 0.25 }
      | "request-cutter" ->
          check_unknown ctx ~where ~allowed:(base @ [ "cut_prob" ]) e;
          Request_cutter { cut_prob = prob "cut_prob" 0.7 }
      | other ->
          err ctx "env: unknown family %S (one of: %s)" other
            (String.concat ", " env_families);
          Tree_rotator)
  | Some _ ->
      err ctx "field \"env\" must be an object with a \"family\"";
      Tree_rotator

let faults_of_json ctx j =
  let where = "faults" in
  match Obs.Json.member "faults" j with
  | None -> None
  | Some (Obs.Json.Obj _ as f) ->
      check_unknown ctx ~where
        ~allowed:[ "loss"; "dup"; "crash"; "restart"; "max_delay"; "seed" ]
        f;
      let prob name default =
        let v = Option.value (get_float ctx ~where name None f) ~default in
        check_prob ctx ~where name v;
        v
      in
      let max_delay = Option.value (get_int ctx ~where "max_delay" None f) ~default:0 in
      check_min ctx ~where "max_delay" max_delay ~min_v:0;
      let fault_seed = get_int ctx ~where "seed" None f in
      Option.iter (fun s -> check_min ctx ~where "seed" s ~min_v:0) fault_seed;
      Some
        {
          loss = prob "loss" 0.;
          dup = prob "dup" 0.;
          crash = prob "crash" 0.;
          restart = prob "restart" 0.25;
          max_delay;
          fault_seed;
        }
  | Some _ ->
      err ctx "field \"faults\" must be an object";
      None

let faults_active = function
  | None -> false
  | Some f ->
      f.loss > 0. || f.dup > 0. || f.crash > 0. || f.max_delay > 0

(* {2 Top level} *)

let top_fields =
  [ "schema"; "name"; "algorithm"; "env"; "sigma"; "n"; "k"; "s"; "seed";
    "repeats"; "faults"; "max_rounds" ]

let of_json j =
  let ctx = { errors = [] } in
  let where = "spec" in
  (match j with
  | Obs.Json.Obj _ -> ()
  | _ -> err ctx "a scenario spec must be a JSON object");
  check_unknown ctx ~where ~allowed:top_fields j;
  (match get_string ctx ~where "schema" None j with
  | Some s when String.equal s schema_name -> ()
  | Some s -> err ctx "schema is %S, expected %S" s schema_name
  | None -> err ctx "missing field \"schema\" (expected %S)" schema_name);
  let name =
    match get_string ctx ~where "name" None j with
    | Some s when not (String.equal s "") -> s
    | Some _ | None ->
        err ctx "missing or empty field \"name\" (labels the run reports)";
        "unnamed"
  in
  let algorithm =
    match get_string ctx ~where "algorithm" None j with
    | Some s -> (
        match List.assoc_opt s algorithms with
        | Some a -> a
        | None ->
            err ctx "unknown algorithm %S (one of: %s)" s
              (String.concat ", " (List.map fst algorithms));
            Flooding)
    | None ->
        err ctx "missing field \"algorithm\" (one of: %s)"
          (String.concat ", " (List.map fst algorithms));
        Flooding
  in
  let env = env_of_json ctx j in
  let sigma = Option.value (get_int ctx ~where "sigma" None j) ~default:1 in
  check_min ctx ~where "sigma" sigma ~min_v:1;
  let n = get_int ctx ~where "n" None j in
  Option.iter (fun v -> check_min ctx ~where "n" v ~min_v:2) n;
  let k =
    match get_int ctx ~where "k" None j with
    | Some k -> k
    | None ->
        err ctx "missing field \"k\" (token count, >= 1)";
        1
  in
  check_min ctx ~where "k" k ~min_v:1;
  let s = Option.value (get_int ctx ~where "s" None j) ~default:1 in
  check_min ctx ~where "s" s ~min_v:1;
  let seed = Option.value (get_int ctx ~where "seed" None j) ~default:42 in
  check_min ctx ~where "seed" seed ~min_v:0;
  let repeats = Option.value (get_int ctx ~where "repeats" None j) ~default:1 in
  check_min ctx ~where "repeats" repeats ~min_v:1;
  let faults = faults_of_json ctx j in
  let max_rounds = get_int ctx ~where "max_rounds" None j in
  Option.iter (fun v -> check_min ctx ~where "max_rounds" v ~min_v:1) max_rounds;
  (* Cross-field consistency. *)
  (match (env, n) with
  | Trace _, _ -> ()
  | _, Some _ -> ()
  | _, None ->
      err ctx
        "missing field \"n\": required unless env is a trace (traces carry \
         their node count)");
  (match (algorithm, env) with
  | (Flooding | Oblivious_rw), Request_cutter _ ->
      err ctx
        "algorithm %S cannot face the request-cutter (an adaptive unicast \
         adversary): use single-source or multi-source"
        (algorithm_name algorithm)
  | _, _ -> ());
  (match env with
  | Request_cutter _ when sigma > 1 ->
      err ctx
        "sigma only applies to committed schedules; the request-cutter is \
         adaptive"
  | _ -> ());
  if
    (match algorithm with Oblivious_rw -> true | _ -> false)
    && faults_active faults
  then
    err ctx
      "oblivious-rw does not take a fault plan yet; drop the \"faults\" \
       fields";
  match ctx.errors with
  | [] ->
      Ok
        { name; algorithm; env; sigma; n; k; s; seed; repeats; faults;
          max_rounds }
  | errors -> Error (List.rev errors)

let of_string content =
  match Obs.Json.of_string content with
  | Ok j -> of_json j
  | Error e -> Error [ "invalid JSON: " ^ e ]

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error [ msg ]
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match of_string content with
      | Ok _ as ok -> ok
      | Error errs -> Error (List.map (fun e -> path ^ ": " ^ e) errs))

(* {2 Rendering} *)

let env_to_json env =
  let family = ("family", Obs.Json.String (env_family env)) in
  Obs.Json.Obj
    (match env with
    | Trace { path } -> [ family; ("path", Obs.Json.String path) ]
    | Static { p } -> [ family; ("p", Obs.Json.Float p) ]
    | Tree_rotator -> [ family ]
    | Rewiring { extra; rate } ->
        (family
         :: (match extra with
            | None -> []
            | Some x -> [ ("extra", Obs.Json.Int x) ]))
        @ [ ("rate", Obs.Json.Float rate) ]
    | Edge_markovian { p_up; p_down } ->
        (family
         :: (match p_up with
            | None -> []
            | Some p -> [ ("p_up", Obs.Json.Float p) ]))
        @ [ ("p_down", Obs.Json.Float p_down) ]
    | Fresh_random { p } -> [ family; ("p", Obs.Json.Float p) ]
    | Request_cutter { cut_prob } ->
        [ family; ("cut_prob", Obs.Json.Float cut_prob) ])

let to_json t =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Obs.Json.Obj
    ([
       ("schema", Obs.Json.String schema_name);
       ("name", Obs.Json.String t.name);
       ("algorithm", Obs.Json.String (algorithm_name t.algorithm));
       ("env", env_to_json t.env);
     ]
    @ (if t.sigma = 1 then [] else [ ("sigma", Obs.Json.Int t.sigma) ])
    @ opt "n" (fun v -> Obs.Json.Int v) t.n
    @ [ ("k", Obs.Json.Int t.k) ]
    @ (if t.s = 1 then [] else [ ("s", Obs.Json.Int t.s) ])
    @ [ ("seed", Obs.Json.Int t.seed) ]
    @ (if t.repeats = 1 then [] else [ ("repeats", Obs.Json.Int t.repeats) ])
    @ (match t.faults with
      | None -> []
      | Some f ->
          [
            ( "faults",
              Obs.Json.Obj
                ([
                   ("loss", Obs.Json.Float f.loss);
                   ("dup", Obs.Json.Float f.dup);
                   ("crash", Obs.Json.Float f.crash);
                   ("restart", Obs.Json.Float f.restart);
                   ("max_delay", Obs.Json.Int f.max_delay);
                 ]
                @ opt "seed" (fun v -> Obs.Json.Int v) f.fault_seed) );
          ])
    @ opt "max_rounds" (fun v -> Obs.Json.Int v) t.max_rounds)
