(** Loading a trace back into a committed schedule.

    The inverse of {!Record}: a {!Trace_io.t} becomes an
    {!Adversary.Schedule.t} whose round-[r] graph is reconstructed by
    applying the recorded edge deltas.  The result is a pre-committed
    sequence (the strictest adversary class of Definition 1.2), so it
    plugs into every engine and runner exactly like the built-in
    oblivious families — and a recorded run replays bit-for-bit:
    identical graphs, identical [TC], identical run report.

    Graphs are built lazily in round order and memoized by the
    schedule (the trace's deltas are the only data resident up front),
    so replaying pays only for the rounds actually executed. *)

type past_end =
  | Hold  (** Rounds past the trace repeat its last graph. *)
  | Loop
      (** The graph sequence repeats from round 1 ([g(R + i) = g(i)]):
          the natural reading of periodic contact data.  The wrap-around
          is an ordinary topology change, charged to [TC] as usual. *)
  | Fail
      (** Asking past the trace raises
          {!Engine.Engine_error.Schedule_exhausted} (carrying the
          requested round and the recorded length) — for callers that
          require exact reproduction and want extrapolation to be an
          error, not a guess.  The CLI maps it to exit 2. *)

val schedule : ?past_end:past_end -> Trace_io.t -> Adversary.Schedule.t
(** [past_end] (default {!Hold}) picks the semantics for rounds beyond
    the recorded length — every engine needs {e some} graph each round,
    and a trace is finite.  For exact reproduction of a recorded run,
    record at least as many rounds as the run executed; the [Hold] and
    [Loop] tails are honest extrapolations, not recordings.
    @raise Invalid_argument if the trace has zero rounds. *)
