open Dynet.Ops

let builtin_schedule ~env ~sigma ~n ~seed =
  let stable s =
    if sigma <= 1 then s else Adversary.Schedule.stabilized ~sigma s
  in
  match (env : Spec.env) with
  | Trace _ | Request_cutter _ -> None
  | Static { p } ->
      Some
        (Adversary.Oblivious.static
           (Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed) ~n ~p))
  | Tree_rotator -> Some (stable (Adversary.Oblivious.tree_rotator ~seed ~n))
  | Rewiring { extra; rate } ->
      Some
        (stable
           (Adversary.Oblivious.rewiring ~seed ~n
              ~extra:(Option.value extra ~default:n)
              ~rate))
  | Edge_markovian { p_up; p_down } ->
      Some
        (stable
           (Adversary.Oblivious.edge_markovian ~seed ~n
              ~p_up:(Option.value p_up ~default:(2. /. float_of_int n))
              ~p_down))
  | Fresh_random { p } -> Some (Adversary.Oblivious.fresh_random ~seed ~n ~p)

let resolve_trace ?(base_dir = ".") (spec : Spec.t) =
  match spec.env with
  | Spec.Trace { path } -> (
      let full =
        if Filename.is_relative path then Filename.concat base_dir path
        else path
      in
      match Trace_io.load full with
      | Error e -> Error e
      | Ok trace -> (
          match spec.n with
          | Some n when n <> trace.Trace_io.header.n ->
              Error
                (Printf.sprintf
                   "%s: spec says n = %d but the trace carries n = %d" full n
                   trace.Trace_io.header.n)
          | Some _ | None -> Ok (Some trace)))
  | _ -> Ok None

(* Livelock window for looped-trace replays: long enough that no
   live protocol can trip it — two full schedule periods AND two full
   flooding phase cycles (phase_len defaults to n, k phases, and
   flooding provably progresses at least once per phase cycle on
   connected rounds), with a small floor for degenerate instances —
   yet far below the unicast round cap of [4nk + 4n² + 64], so a
   deterministic protocol limit-cycling against the periodic schedule
   (the E17 [s >= 6] corner) stops with [Stalled] instead of spinning
   to the cap. *)
let stall_window ~period ~n ~k = max 64 (max (2 * period) (2 * n * k))

let fault_plan (spec : Spec.t) ~seed =
  match spec.faults with
  | None -> Faults.Plan.none
  | Some f ->
      Faults.Plan.make ~loss:f.loss ~dup:f.dup ~crash:f.crash
        ~restart:f.restart ~max_delay:f.max_delay
        ~seed:(Option.value f.fault_seed ~default:seed)
        ()

(* Instance construction mirrors the [dynspread run] command: source 0
   for the single-source shape, a seeded random assignment otherwise. *)
let instance_of (spec : Spec.t) ~n ~seed =
  match spec.algorithm with
  | Spec.Single_source -> Gossip.Instance.single_source ~n ~k:spec.k ~source:0
  | Spec.Flooding | Spec.Multi_source | Spec.Oblivious_rw ->
      if spec.s <= 1 then
        Gossip.Instance.single_source ~n ~k:spec.k ~source:0
      else
        Gossip.Instance.multi_source
          ~rng:(Dynet.Rng.make ~seed:(seed + 1))
          ~n ~k:spec.k
          ~s:(min spec.s (min n spec.k))

let base_extra (spec : Spec.t) ~n ~seed =
  [
    ("n", Obs.Json.Int n);
    ("k", Obs.Json.Int spec.k);
    ("s", Obs.Json.Int spec.s);
    ("seed", Obs.Json.Int seed);
  ]

let engine_report (spec : Spec.t) ~name ~n ~seed
    (result : Engine.Run_result.t) =
  Engine.Run_result.to_report ~name
    ~extra:
      (base_extra spec ~n ~seed
      @ [
          ( "amortized_per_token",
            Obs.Json.Float (Engine.Ledger.amortized result.ledger ~k:spec.k)
          );
        ])
    result

(* Algorithm 2 returns its own result record; wrap its merged ledger so
   the report path is uniform (same shape as the CLI's rw report). *)
let rw_report (spec : Spec.t) ~name ~n ~seed (r : Gossip.Oblivious_rw.result)
    =
  let as_run_result =
    Engine.Run_result.make
      ~rounds:
        (r.Gossip.Oblivious_rw.phase1_rounds
        + r.Gossip.Oblivious_rw.phase2_rounds)
      ~completed:r.Gossip.Oblivious_rw.completed
      ~ledger:r.Gossip.Oblivious_rw.ledger ~timeline:[] ()
  in
  Engine.Run_result.to_report ~name
    ~extra:
      (base_extra spec ~n ~seed
      @ [
          ("centers", Obs.Json.Int r.Gossip.Oblivious_rw.centers);
          ( "skipped_phase1",
            Obs.Json.Bool r.Gossip.Oblivious_rw.skipped_phase1 );
          ("phase1_rounds", Obs.Json.Int r.Gossip.Oblivious_rw.phase1_rounds);
          ( "phase1_settled",
            Obs.Json.Bool r.Gossip.Oblivious_rw.phase1_settled );
          ("phase2_rounds", Obs.Json.Int r.Gossip.Oblivious_rw.phase2_rounds);
          ( "paper_messages",
            Obs.Json.Int r.Gossip.Oblivious_rw.paper_messages );
          ( "amortized_per_token",
            Obs.Json.Float
              (float_of_int r.Gossip.Oblivious_rw.paper_messages
              /. float_of_int spec.k) );
        ])
    as_run_result

let run_point (spec : Spec.t) ?engine ?obs ?cancel ~trace ~n ~prof ~seed () =
  let name =
    spec.name ^ "/" ^ Spec.algorithm_name spec.algorithm ^ "/seed="
    ^ string_of_int seed
  in
  let faults = fault_plan spec ~seed in
  let instance = instance_of spec ~n ~seed in
  (* Trace envs replay with [Loop]: the schedule is periodic, so the
     engines' livelock detector has a sound window to watch. *)
  let stall_after =
    Option.map
      (fun t -> stall_window ~period:(Trace_io.rounds t) ~n ~k:spec.k)
      trace
  in
  let schedule () =
    match trace with
    | Some t -> Replay.schedule ~past_end:Replay.Loop t
    | None -> (
        match builtin_schedule ~env:spec.env ~sigma:spec.sigma ~n ~seed with
        | Some s -> s
        | None ->
            (* Validation rejects flooding/rw × request-cutter, and the
               unicast algorithms route the cutter below. *)
            invalid_arg "Scenario.Runner: no committed schedule for this env")
  in
  let unicast_env () =
    match spec.env with
    | Spec.Request_cutter { cut_prob } ->
        Gossip.Runners.Request_cutting { seed; cut_prob }
    | _ -> Gossip.Runners.Oblivious (schedule ())
  in
  match spec.algorithm with
  | Spec.Flooding ->
      let result, _ =
        Gossip.Runners.flooding ~instance ~schedule:(schedule ()) ?engine
          ~faults ?obs ?cancel ~prof ?max_rounds:spec.max_rounds ?stall_after
          ()
      in
      engine_report spec ~name ~n ~seed result
  | Spec.Single_source ->
      let result, _ =
        Gossip.Runners.single_source ~instance ~env:(unicast_env ()) ?engine
          ~faults ?obs ?cancel ~prof ?max_rounds:spec.max_rounds ?stall_after
          ()
      in
      engine_report spec ~name ~n ~seed result
  | Spec.Multi_source ->
      let result, _ =
        Gossip.Runners.multi_source ~instance ~env:(unicast_env ()) ?engine
          ~faults ?obs ?cancel ~prof ?max_rounds:spec.max_rounds ?stall_after
          ()
      in
      engine_report spec ~name ~n ~seed result
  | Spec.Oblivious_rw ->
      (* Algorithm 2 is not engine-parametric, so it has no round-
         boundary cancel hook: a cancel observed before the repeat
         starts yields a zero-round [Cancelled] report, one arriving
         mid-run takes effect at the next repeat boundary. *)
      let pre_cancelled =
        match cancel with None -> false | Some c -> c ()
      in
      if pre_cancelled then
        engine_report spec ~name ~n ~seed
          (Engine.Run_result.make
             ~outcome:
               (Engine.Run_result.Cancelled { achieved = 0; target = None })
             ~rounds:0 ~completed:false
             ~ledger:(Engine.Ledger.create ())
             ~timeline:[] ())
      else
        let r =
          Gossip.Runners.oblivious_rw ~instance ~schedule:(schedule ()) ~seed
            ~const_f:0.05 ~force_rw:true ?obs ~prof ()
        in
        rw_report spec ~name ~n ~seed r

(* A spec with its environment materialized: the trace (if any) loaded
   and checked, [n] resolved, the per-repeat seeds laid out.  This is
   the resumable unit the serve scheduler works in — prepare once,
   then run repeats one at a time, checking for cancellation in
   between. *)
type prepared = {
  spec : Spec.t;
  trace : Trace_io.t option;
  n : int;
  seeds : int array;
}

let prepare ?base_dir (spec : Spec.t) =
  match resolve_trace ?base_dir spec with
  | Error e -> Error e
  | Ok trace -> (
      let n =
        match (spec.n, trace) with
        | Some n, _ -> Some n
        | None, Some t -> Some t.Trace_io.header.n
        | None, None -> None
      in
      match n with
      | None -> Error "spec has no n and no trace to take it from"
      | Some n ->
          let seeds = Array.init spec.repeats (fun i -> spec.seed + i) in
          Ok { spec; trace; n; seeds })

let run_repeat ?(prof = Obs.Span.null) ?engine ?obs ?cancel prepared ~seed =
  run_point prepared.spec ?engine ?obs ?cancel ~trace:prepared.trace
    ~n:prepared.n ~prof ~seed ()

let run_prepared ?jobs ?prof ?engine ?cancel prepared =
  Analysis.Sweep.map_span ?jobs ?prof
    ~name:("scenario/" ^ prepared.spec.Spec.name)
    (fun ~prof seed -> run_repeat ~prof ?engine ?cancel prepared ~seed)
    prepared.seeds

let run ?jobs ?base_dir ?prof ?engine ?cancel (spec : Spec.t) =
  match prepare ?base_dir spec with
  | Error e -> Error e
  | Ok prepared -> Ok (run_prepared ?jobs ?prof ?engine ?cancel prepared)
