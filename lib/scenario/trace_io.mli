(** The versioned NDJSON trace format — the at-rest form of a workload.

    The paper's oblivious adversaries (Definition 1.2) are
    pre-committed round-by-round edge sequences, so every workload this
    library studies is, semantically, a {e trace}.  This module gives
    that semantics a file format, so workloads can be saved, diffed,
    shipped to CI, and sourced from real dynamic-network data instead
    of living only as in-process {!Adversary.Schedule.t} closures.

    A trace file is NDJSON ({!Obs.Json} documents, one per line):

    - line 1, the {e header}:
      [{"schema":"dynspread-trace/v1","n":N,"seed":S,"provenance":"..."}]
      ([seed] is optional — imported real-world traces have none);
    - one {e edge-delta record} per round, in round order starting at
      round 1: [{"round":r,"add":[[u,v],...],"del":[[u,v],...]}].

    Round [r]'s graph is the previous round's graph plus [add] minus
    [del]; round 1 is relative to the empty graph [G_0], so the [add]
    lists summed over a trace are exactly the paper's [TC(E)]
    (Definition 1.2).  Edge pairs are canonical ([u < v]) and sorted,
    and every field is emitted in a fixed order, so encoding is
    byte-deterministic: two traces of the same schedule diff clean.

    Only the {e deltas} are resident after a load (a few ints per
    changed edge); graphs are reconstructed on demand by {!fold_graphs}
    and {!Replay.schedule}, which memoize per round — large traces
    never need all their round graphs in memory at once.

    {b Versioning policy}: the schema name is
    [dynspread-trace/v<version>].  Readers reject any other version;
    additive, compatible header fields may appear within a version and
    are ignored by older readers of the same version.  A breaking
    change (new record kinds, changed delta semantics) bumps the
    version. *)

type header = {
  version : int;
  n : int;  (** Node count; all endpoints are in [0 .. n-1]. *)
  seed : int option;
      (** The generating schedule's seed, when there was one. *)
  provenance : string;
      (** Where the trace came from, e.g. ["oblivious:tree-rotator"] or
          ["import:office_contacts.csv"].  Free-form, but must be
          deterministic (no timestamps) so recordings diff clean. *)
}

type delta = {
  round : int;
  add : (int * int) list;  (** Canonical [u < v] pairs, sorted. *)
  del : (int * int) list;  (** Canonical [u < v] pairs, sorted. *)
}

type t = { header : header; deltas : delta array }

val version : int
(** The schema version this build writes and reads (1). *)

val schema_name : string
(** ["dynspread-trace/v1"]. *)

val rounds : t -> int
(** Number of recorded rounds. *)

val make : ?seed:int -> ?provenance:string -> n:int -> delta list -> t
(** Assemble a trace from already-canonical deltas (provenance defaults
    to ["unknown"]).  Use {!Record} to build deltas from graphs. *)

val delta_of_graphs :
  round:int -> prev:Dynet.Graph.t -> cur:Dynet.Graph.t -> delta
(** The canonical (sorted, [u < v]) edge delta between two consecutive
    round graphs — what {!Record} accumulates incrementally. *)

val of_graphs : ?seed:int -> ?provenance:string -> n:int ->
  Dynet.Graph.t list -> t
(** The trace whose round-[r] graph is the [r]-th list element
    (round 1 first): each delta is computed against the previous graph
    (round 1 against the empty graph).
    @raise Invalid_argument if a graph's node count is not [n]. *)

val apply_delta :
  n:int -> round:int -> Dynet.Edge_set.t -> delta -> Dynet.Edge_set.t
(** One replay step: the edge set after applying a round's delta.
    @raise Invalid_argument on an inconsistent delta (endpoint out of
    range, self-loop, adding a present edge, deleting an absent one) —
    the error names the round. *)

val fold_graphs :
  t -> init:'a -> f:('a -> round:int -> Dynet.Graph.t -> 'a) -> 'a
(** Replay the deltas, calling [f] with each round's reconstructed
    graph in round order.  One graph is live at a time.
    @raise Invalid_argument on an inconsistent trace (adding a present
    edge, deleting an absent one, endpoint out of range) — run
    {!validate} first for a [result]-typed answer. *)

(** {2 Encoding / decoding} *)

val to_string : t -> string
(** The NDJSON document, trailing newline included.
    Byte-deterministic. *)

val write : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse.  [Error] messages carry the 1-based line number and
    what was expected — schema mismatches, missing fields, non-array
    pairs, non-contiguous round numbers all name their line. *)

val load : string -> (t, string) result
(** [of_string] on a file's contents; [Error] on IO failure too. *)

val save : string -> t -> (unit, string) result

(** {2 Validation} *)

type stats = {
  stat_rounds : int;
  stat_tc : int;  (** Sum of [add] lengths — [TC(E)] of the trace. *)
  stat_max_edges : int;  (** Densest round's edge count. *)
  first_disconnected : int option;
      (** Lowest round whose graph is disconnected, if any.  The
          engines enforce per-round connectivity (the paper's model
          assumption), so a trace with a disconnected round will abort
          a run; {!Contacts.import}'s repair pass exists to prevent
          this for real-world data. *)
}

val validate : t -> (stats, string) result
(** Structural and semantic checks beyond what parsing enforces: every
    endpoint in range, no self-loops, no duplicate pairs within a
    record, pairs canonical and sorted, rounds contiguous from 1, no
    add of a present edge, no del of an absent edge.  On success the
    returned stats summarize the replayed trace. *)
