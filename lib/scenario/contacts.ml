open Dynet.Ops

type stats = {
  contacts : int;
  self_loops : int;
  duplicates : int;
  out_of_order : int;
  nodes : int;
  imported_rounds : int;
  empty_buckets : int;
  repaired_rounds : int;
  repaired_edges : int;
}

let errf fmt = Printf.ksprintf (fun msg -> Error msg) fmt
let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* One parsed data row: timestamp and the two (string) endpoint
   labels.  Self-loops are filtered by the caller so the row type
   stays total. *)
let parse_row ~line fields =
  match fields with
  | [ t; u; v ] | [ t; u; v; _ ] -> (
      let* ts =
        match float_of_string_opt t with
        | Some ts when Float.is_finite ts -> Ok ts
        | Some _ | None ->
            errf "line %d: timestamp %S is not a finite number" line t
      in
      let* () =
        match fields with
        | [ _; _; _; dur ] -> (
            match float_of_string_opt dur with
            | Some d when Float.is_finite d && d >= 0. -> Ok ()
            | Some _ | None ->
                errf "line %d: duration %S is not a non-negative number" line
                  dur)
        | _ -> Ok ()
      in
      if String.equal u "" || String.equal v "" then
        errf "line %d: empty node label" line
      else Ok (ts, u, v))
  | _ ->
      errf "line %d: expected t,u,v[,duration], got %d field(s)" line
        (List.length fields)

let parse content =
  let lines = String.split_on_char '\n' content in
  let rec go acc line_no out_of_order self_loops t_max = function
    | [] -> Ok (List.rev acc, out_of_order, self_loops)
    | raw :: rest ->
        let line = String.trim raw in
        if String.equal line "" || Char.equal line.[0] '#'
        then go acc (line_no + 1) out_of_order self_loops t_max rest
        else
          let fields = List.map String.trim (String.split_on_char ',' line) in
          let* (ts, u, v) = parse_row ~line:line_no fields in
          let out_of_order =
            match t_max with
            | Some m when ts < m -> out_of_order + 1
            | Some _ | None -> out_of_order
          in
          let t_max =
            match t_max with
            | Some m -> Some (Float.max m ts)
            | None -> Some ts
          in
          if String.equal u v then
            go acc (line_no + 1) out_of_order (self_loops + 1) t_max rest
          else
            go ((ts, u, v) :: acc) (line_no + 1) out_of_order self_loops t_max
              rest
  in
  go [] 1 0 0 None lines

let import ?(bucket = 20.) ?(repair = true) ?(provenance = "import:inline")
    content =
  if not (Float.is_finite bucket && bucket > 0.) then
    errf "bucket %g is not a positive time-window length" bucket
  else
    let* rows, out_of_order, self_loops = parse content in
    if List.length rows = 0 then
      Error "no usable contacts (every line was blank, a comment, or a \
             self-loop)"
    else begin
      (* Node-ID compaction: labels to dense ints, first-seen order. *)
      let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let intern label =
        match Hashtbl.find_opt ids label with
        | Some i -> i
        | None ->
            let i = Hashtbl.length ids in
            Hashtbl.add ids label i;
            i
      in
      let t_min =
        List.fold_left (fun acc (ts, _, _) -> Float.min acc ts) infinity rows
      in
      (* Bucket index per contact; buckets collect canonical edges. *)
      let buckets : (int, Dynet.Edge_set.t ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let duplicates = ref 0 in
      List.iter
        (fun (ts, ul, vl) ->
          let u = intern ul and v = intern vl in
          let b = int_of_float (Float.floor ((ts -. t_min) /. bucket)) in
          let set =
            match Hashtbl.find_opt buckets b with
            | Some s -> s
            | None ->
                let s = ref Dynet.Edge_set.empty in
                Hashtbl.add buckets b s;
                s
          in
          if Dynet.Edge_set.mem_pair u v !set then incr duplicates
          else set := Dynet.Edge_set.add_pair u v !set)
        rows;
      let n = Hashtbl.length ids in
      if n < 2 then
        errf "only %d distinct node(s): a dynamic network needs at least 2" n
      else begin
        let indexes =
          Hashtbl.fold (fun b _ acc -> b :: acc) buckets []
          |> List.sort compare
        in
        let span =
          match (indexes, List.rev indexes) with
          | first :: _, last :: _ -> last - first + 1
          | _, _ -> 0
        in
        let repaired_rounds = ref 0 and repaired_edges = ref 0 in
        let graphs =
          List.map
            (fun b ->
              let g = Dynet.Graph.make ~n !(Hashtbl.find buckets b) in
              if repair && not (Dynet.Graph.is_connected g) then begin
                let patch = Dynet.Graph.connect_components g in
                incr repaired_rounds;
                repaired_edges :=
                  !repaired_edges + Dynet.Edge_set.cardinal patch;
                Dynet.Graph.make ~n
                  (Dynet.Edge_set.union (Dynet.Graph.edges g) patch)
              end
              else g)
            indexes
        in
        let trace = Trace_io.of_graphs ~provenance ~n graphs in
        let stats =
          {
            contacts = List.length rows + self_loops;
            self_loops;
            duplicates = !duplicates;
            out_of_order;
            nodes = n;
            imported_rounds = List.length indexes;
            empty_buckets = span - List.length indexes;
            repaired_rounds = !repaired_rounds;
            repaired_edges = !repaired_edges;
          }
        in
        Ok (trace, stats)
      end
    end

let import_file ?bucket ?repair path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let provenance = "import:" ^ Filename.basename path in
      (match import ?bucket ?repair ~provenance content with
      | Ok _ as ok -> ok
      | Error e -> errf "%s: %s" path e)
