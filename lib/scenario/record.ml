open Dynet.Ops

type t = {
  n : int;
  seed : int option;
  provenance : string;
  mutable prev : Dynet.Graph.t;  (* last observed graph *)
  mutable filled : int;  (* rounds observed so far *)
  mutable deltas : Trace_io.delta list;  (* reverse round order *)
}

let create ~n ?seed ?(provenance = "recorded") () =
  {
    n;
    seed;
    provenance;
    prev = Dynet.Graph.empty ~n;
    filled = 0;
    deltas = [];
  }

let observe t ~round g =
  if Dynet.Graph.n g <> t.n then
    invalid_arg
      (Printf.sprintf "Record.observe: graph has %d nodes, recorder expects %d"
         (Dynet.Graph.n g) t.n);
  if round = t.filled && Dynet.Graph.same_edges g t.prev then
    (* Hook + wrapper both firing on the same round: tolerate the
       duplicate observation instead of forcing callers to pick one. *)
    ()
  else if round <> t.filled + 1 then
    invalid_arg
      (Printf.sprintf
         "Record.observe: round %d out of order (recorded %d rounds; rounds \
          are contiguous from 1)"
         round t.filled)
  else begin
    t.deltas <-
      Trace_io.delta_of_graphs ~round ~prev:t.prev ~cur:g :: t.deltas;
    t.prev <- g;
    t.filled <- round
  end

let hook t ~round g = observe t ~round g
let recorded_rounds t = t.filled

let to_trace t =
  Trace_io.make ?seed:t.seed ~provenance:t.provenance ~n:t.n
    (List.rev t.deltas)

let of_schedule ?seed ?(provenance = "oblivious") ~rounds schedule =
  if rounds < 1 then invalid_arg "Record.of_schedule: rounds < 1";
  let n = Adversary.Schedule.n schedule in
  let t = create ~n ?seed ~provenance () in
  for r = 1 to rounds do
    observe t ~round:r (Adversary.Schedule.get schedule r)
  done;
  to_trace t

let unicast t adv ~round ~prev ~states ~traffic =
  let g = adv ~round ~prev ~states ~traffic in
  observe t ~round g;
  g

let broadcast t adv ~round ~prev ~states ~intents =
  let g = adv ~round ~prev ~states ~intents in
  observe t ~round g;
  g
