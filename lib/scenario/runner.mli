(** Executing a validated {!Spec} — the scenario subsystem's engine room.

    [run] turns one spec into one {!Obs.Report.t} per repeat:

    - the environment is materialized once ([trace] envs load their
      {!Trace_io.t} up front, relative paths resolving against
      [base_dir]);
    - repeat [i] derives every random stream from [spec.seed + i]
      alone and builds its own fresh {!Adversary.Schedule.t}, so the
      repeats are independent points and run through
      {!Analysis.Sweep.map} ([?jobs]) with bit-identical output
      whatever the parallelism;
    - instance construction, fault-plan wiring, and per-algorithm
      round caps mirror the [dynspread run] command exactly, so a
      scenario file is a faithful replacement for a CLI invocation;
    - each report is named [<name>/<algorithm>/seed=<seed+i>] — the
      label depends only on the spec's name, algorithm, and seed,
      never on how the environment is represented, so a run against a
      built-in oblivious family and a run against its {!Record}ed
      trace produce byte-identical JSON.

    Trace environments replay with {!Replay.Loop} semantics: real
    contact data is finite and bursty, and looping it is the standard
    periodic-workload reading.  A recording that covers the full run
    never reaches the loop, which is what the record→replay
    reproducibility guarantee relies on.

    Because a looped trace is periodic, trace runs also arm the
    engines' livelock detector with {!stall_window}: a deterministic
    protocol limit-cycling against the period (the E17 [s >= 6]
    min-source corner) ends with a [Stalled] outcome after the window
    instead of spinning to its round cap. *)

val stall_window : period:int -> n:int -> k:int -> int
(** [max 64 (max (2 * period) (2 * n * k))] — the [stall_after]
    window used for looped-trace runs: at least two full schedule
    periods and two full flooding phase cycles, so no live protocol
    can trip it, while staying far below the unicast round cap. *)

val builtin_schedule :
  env:Spec.env -> sigma:int -> n:int -> seed:int ->
  Adversary.Schedule.t option
(** The committed schedule for a built-in oblivious env, with the same
    family parameters and defaults as the CLI ([extra] defaults to
    [n], [p_up] to [2/n]; [sigma > 1] wraps the family in
    {!Adversary.Schedule.stabilized}).  [None] for the two
    non-committed envs ([trace] — use {!Replay.schedule} — and the
    adaptive [request-cutter]). *)

val resolve_trace :
  ?base_dir:string -> Spec.t -> (Trace_io.t option, string) result
(** Load the spec's trace, if its env is one ([Ok None] otherwise).
    Relative paths resolve against [base_dir] (default ["."] — pass
    the spec file's directory).  Checks the trace against [spec.n]
    when both are present. *)

type prepared = {
  spec : Spec.t;
  trace : Trace_io.t option;
  n : int;  (** Resolved node count (from the spec or its trace). *)
  seeds : int array;  (** [spec.seed + i] for repeat [i], in order. *)
}
(** A spec with its environment materialized — the resumable,
    cancellable unit the serve scheduler works in.  Preparing is the
    only fallible step; every repeat after that is a pure function of
    [(prepared, seed)]. *)

val prepare : ?base_dir:string -> Spec.t -> (prepared, string) result
(** Materialize the environment: load and check the trace (if the env
    is one; relative paths resolve against [base_dir], default ["."]),
    resolve [n], and lay out the per-repeat seeds.  [Error] covers
    exactly the materialization failures [run] reports. *)

val run_repeat :
  ?prof:Obs.Span.t ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  ?obs:Obs.Sink.t ->
  ?cancel:(unit -> bool) ->
  prepared ->
  seed:int ->
  Obs.Report.t
(** One repeat of a prepared spec — the report depends only on
    [(prepared, seed)], never on which domain ran it or what ran
    before, which is what makes the daemon's reports byte-identical to
    [dynspread scenario run]'s.  [?obs] (default {!Obs.Sink.null})
    receives the repeat's trace events (the serve daemon's [subscribe]
    stream).  [?cancel] is the engines' round-boundary
    cooperative-cancellation poll: a repeat cancelled before its first
    round reports [Cancelled] with zero rounds; [oblivious-rw] (not
    engine-parametric) checks only at repeat entry. *)

val run_prepared :
  ?jobs:int ->
  ?prof:Obs.Span.t ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  ?cancel:(unit -> bool) ->
  prepared ->
  Obs.Report.t array
(** Every repeat of a prepared spec through one
    {!Analysis.Sweep.map_span} sweep named [scenario/<name>], in
    repeat order — the second half of [run]. *)

val run :
  ?jobs:int ->
  ?base_dir:string ->
  ?prof:Obs.Span.t ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  ?cancel:(unit -> bool) ->
  Spec.t ->
  (Obs.Report.t array, string) result
(** [prepare] then [run_prepared]: execute every repeat and return the
    run reports in repeat order.
    [?engine] (default {!Engine.Default.engine}) selects the execution
    engine for the engine-parametric algorithms (flooding,
    single-source, multi-source); reports are engine-independent, so
    passing {!Engine.Soa.engine} changes only the wall-clock.
    [?prof] (default {!Obs.Span.null}) profiles the whole run as one
    {!Analysis.Sweep.map_span} sweep named [scenario/<name>]: each
    repeat is a [point] span, and the engine round/phase spans of the
    repeat nest beneath it in the lane of the domain that executed it.
    [?cancel] (default: off) is polled at round boundaries; cancelled
    repeats report a [Cancelled] outcome with their partial coverage.
    [Error] covers environment problems surfaced at materialization
    time (unreadable or invalid trace, node-count mismatch); protocol
    or adversary violations during a run propagate as the engines'
    usual exceptions. *)
