(** Executing a validated {!Spec} — the scenario subsystem's engine room.

    [run] turns one spec into one {!Obs.Report.t} per repeat:

    - the environment is materialized once ([trace] envs load their
      {!Trace_io.t} up front, relative paths resolving against
      [base_dir]);
    - repeat [i] derives every random stream from [spec.seed + i]
      alone and builds its own fresh {!Adversary.Schedule.t}, so the
      repeats are independent points and run through
      {!Analysis.Sweep.map} ([?jobs]) with bit-identical output
      whatever the parallelism;
    - instance construction, fault-plan wiring, and per-algorithm
      round caps mirror the [dynspread run] command exactly, so a
      scenario file is a faithful replacement for a CLI invocation;
    - each report is named [<name>/<algorithm>/seed=<seed+i>] — the
      label depends only on the spec's name, algorithm, and seed,
      never on how the environment is represented, so a run against a
      built-in oblivious family and a run against its {!Record}ed
      trace produce byte-identical JSON.

    Trace environments replay with {!Replay.Loop} semantics: real
    contact data is finite and bursty, and looping it is the standard
    periodic-workload reading.  A recording that covers the full run
    never reaches the loop, which is what the record→replay
    reproducibility guarantee relies on.

    Because a looped trace is periodic, trace runs also arm the
    engines' livelock detector with {!stall_window}: a deterministic
    protocol limit-cycling against the period (the E17 [s >= 6]
    min-source corner) ends with a [Stalled] outcome after the window
    instead of spinning to its round cap. *)

val stall_window : period:int -> n:int -> k:int -> int
(** [max 64 (max (2 * period) (2 * n * k))] — the [stall_after]
    window used for looped-trace runs: at least two full schedule
    periods and two full flooding phase cycles, so no live protocol
    can trip it, while staying far below the unicast round cap. *)

val builtin_schedule :
  env:Spec.env -> sigma:int -> n:int -> seed:int ->
  Adversary.Schedule.t option
(** The committed schedule for a built-in oblivious env, with the same
    family parameters and defaults as the CLI ([extra] defaults to
    [n], [p_up] to [2/n]; [sigma > 1] wraps the family in
    {!Adversary.Schedule.stabilized}).  [None] for the two
    non-committed envs ([trace] — use {!Replay.schedule} — and the
    adaptive [request-cutter]). *)

val resolve_trace :
  ?base_dir:string -> Spec.t -> (Trace_io.t option, string) result
(** Load the spec's trace, if its env is one ([Ok None] otherwise).
    Relative paths resolve against [base_dir] (default ["."] — pass
    the spec file's directory).  Checks the trace against [spec.n]
    when both are present. *)

val run :
  ?jobs:int ->
  ?base_dir:string ->
  ?prof:Obs.Span.t ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  Spec.t ->
  (Obs.Report.t array, string) result
(** Execute every repeat and return the run reports in repeat order.
    [?engine] (default {!Engine.Default.engine}) selects the execution
    engine for the engine-parametric algorithms (flooding,
    single-source, multi-source); reports are engine-independent, so
    passing {!Engine.Soa.engine} changes only the wall-clock.
    [?prof] (default {!Obs.Span.null}) profiles the whole run as one
    {!Analysis.Sweep.map_span} sweep named [scenario/<name>]: each
    repeat is a [point] span, and the engine round/phase spans of the
    repeat nest beneath it in the lane of the domain that executed it.
    [Error] covers environment problems surfaced at materialization
    time (unreadable or invalid trace, node-count mismatch); protocol
    or adversary violations during a run propagate as the engines'
    usual exceptions. *)
