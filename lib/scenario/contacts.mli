(** Importing timestamped contact-sequence edge lists.

    The common interchange format of real dynamic-network datasets
    (Haggle, SocioPatterns and kin) is a contact sequence: one line per
    observed contact, [t,u,v[,duration]] — a timestamp, two node
    labels, and an optional contact duration.  This module parses that
    CSV shape into a round-bucketed {!Trace_io.t}, so real workloads
    run through the same engines as the synthetic adversaries.

    {b Normalizations} (each counted in {!stats}, so the substitution
    is honest):

    - {e node-ID compaction}: labels are arbitrary non-empty strings
      (numeric IDs with gaps included) and are mapped to dense
      [0 .. n-1] in first-appearance order — deterministic for a given
      file;
    - {e time bucketing}: contacts are grouped into rounds of [bucket]
      time units, measured from the earliest timestamp; buckets with no
      contacts are skipped (a round of the dynamic-network model is a
      communication opportunity, and real contact data is bursty), and
      surviving buckets are numbered consecutively from round 1;
    - {e duplicate contacts} within one bucket collapse to a single
      edge; {e self-loops} are dropped (the model's graphs are simple);
      {e out-of-order timestamps} are accepted (bucketing sorts) but
      counted, as heavy disorder may indicate a malformed file;
    - {e connectivity repair} (on by default): the paper assumes every
      round's graph is connected, so each disconnected round gets the
      minimal chain of extra edges from
      {!Dynet.Graph.connect_components}; [repaired_edges] reports
      exactly how much the workload was altered.  With [~repair:false]
      the trace is imported verbatim — {!Trace_io.validate} will then
      report the first disconnected round, and the engines will reject
      it at run time (the model's connectivity assumption is enforced,
      not assumed).

    {b Errors} are deterministic and carry the 1-based line number:
    wrong field counts, non-numeric timestamps or durations, empty
    labels, and non-positive buckets all fail parsing (no silent
    skips beyond the documented normalizations). *)

type stats = {
  contacts : int;  (** Data rows parsed (comments/blanks excluded). *)
  self_loops : int;  (** Dropped [u = u] contacts. *)
  duplicates : int;  (** Same-bucket repeated contacts, collapsed. *)
  out_of_order : int;  (** Rows with a timestamp below the running max. *)
  nodes : int;  (** Distinct labels after compaction ([n]). *)
  imported_rounds : int;  (** Non-empty buckets = trace rounds. *)
  empty_buckets : int;  (** Skipped empty buckets inside the span. *)
  repaired_rounds : int;  (** Rounds that needed connectivity repair. *)
  repaired_edges : int;  (** Total edges the repair pass added. *)
}

val import :
  ?bucket:float -> ?repair:bool -> ?provenance:string -> string ->
  (Trace_io.t * stats, string) result
(** Parse CSV content ([bucket] defaults to [20.], the SocioPatterns
    sampling resolution; [provenance] defaults to
    ["import:inline"]).  Lines that are blank or start with [#] are
    comments.  Needs at least one usable contact and two distinct
    nodes. *)

val import_file :
  ?bucket:float -> ?repair:bool -> string ->
  (Trace_io.t * stats, string) result
(** {!import} on a file, with provenance ["import:<basename>"] and the
    path prefixed to errors. *)
