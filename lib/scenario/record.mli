(** Recording schedules — committed or realized — into traces.

    Two entry points:

    - {!of_schedule} snapshots a prefix of any pre-committed
      {!Adversary.Schedule.t} (every built-in {!Adversary.Oblivious}
      family, plus [stabilized]/[overlay] compositions) into a
      {!Trace_io.t}, making the workload reproducible bit-for-bit
      across machines and CI;
    - a {!t} recorder accumulates round graphs one at a time as a run
      executes.  Feed it through the engines' [?on_graph] hook (see
      {!Engine.Runner_unicast.run}) or the {!unicast}/{!broadcast}
      adversary wrappers to capture the {e realized} schedule of an
      adaptive adversary — the sequence it actually played against this
      execution, which is then replayable as an oblivious workload.

    Deltas are computed incrementally against the previously observed
    graph, so a recorder never retains more than one graph. *)

type t

val create : n:int -> ?seed:int -> ?provenance:string -> unit -> t
(** A fresh recorder for an [n]-node run ([provenance] defaults to
    ["recorded"]). *)

val observe : t -> round:int -> Dynet.Graph.t -> unit
(** Record round [round]'s graph.  Rounds must arrive in order
    [1, 2, ...] with no gaps; re-observing the current round with the
    same graph is a no-op (so a wrapper and a hook can coexist).
    @raise Invalid_argument on out-of-order rounds or a node-count
    mismatch. *)

val hook : t -> round:int -> Dynet.Graph.t -> unit
(** [observe] shaped for the engines' [?on_graph] parameter:
    [~on_graph:(Record.hook recorder)]. *)

val recorded_rounds : t -> int

val to_trace : t -> Trace_io.t
(** The trace of everything observed so far (the recorder stays
    usable; later observations extend later snapshots). *)

val of_schedule :
  ?seed:int -> ?provenance:string -> rounds:int ->
  Adversary.Schedule.t -> Trace_io.t
(** The first [rounds] rounds of a committed schedule as a trace.
    @raise Invalid_argument if [rounds < 1]. *)

val unicast :
  t -> 'state Engine.Runner_unicast.adversary ->
  'state Engine.Runner_unicast.adversary
(** Wrap a unicast adversary so every graph it commits is recorded —
    for call sites that own the adversary rather than the engine
    invocation. *)

val broadcast :
  t -> ('state, 'msg) Engine.Runner_broadcast.adversary ->
  ('state, 'msg) Engine.Runner_broadcast.adversary
