(** Declarative scenario specifications.

    A scenario spec is one JSON object that names everything a run
    needs — algorithm, environment (a built-in adversary family or a
    recorded trace), instance shape [(n, k, s)], fault plan, seed and
    repeat count — so experiments are files that can be versioned,
    validated, and executed by {!Runner} (or
    [dynspread scenario run]) instead of code in
    [lib/analysis/experiments.ml].

    Schema ([dynspread-scenario/v1]):
    {v
    { "schema": "dynspread-scenario/v1",
      "name": "p2p-churn",                  // labels the run reports
      "algorithm": "multi-source",          // flooding | single-source
                                            // | multi-source | oblivious-rw
      "env": { "family": "rewiring",        // or: static, tree-rotator,
               "rate": 0.1 },               //   edge-markovian, fresh-random,
                                            //   request-cutter,
                                            //   trace (+ "path")
      "sigma": 3,                           // edge-stability (default 1)
      "n": 24, "k": 48, "s": 6,             // instance (s defaults 1;
                                            // n comes from the trace when
                                            // env is a trace)
      "seed": 7, "repeats": 2,              // repeat i runs with seed + i
      "faults": { "loss": 0.1 },            // optional Faults.Plan fields
      "max_rounds": 10000 }                 // optional cap override
    v}

    Validation is strict and actionable: unknown fields, out-of-range
    values, and inconsistent combinations (a broadcast algorithm with
    the unicast-only request-cutter, a fault plan on Algorithm 2) are
    each reported with the field name and the accepted values — the
    CLI turns the error list into its exit-2 usage discipline. *)

type algorithm = Flooding | Single_source | Multi_source | Oblivious_rw

type env =
  | Trace of { path : string }
      (** A recorded/imported {!Trace_io} file; relative paths resolve
          against the spec file's directory. *)
  | Static of { p : float }
  | Tree_rotator
  | Rewiring of { extra : int option; rate : float }
      (** [extra] defaults to [n] at run time. *)
  | Edge_markovian of { p_up : float option; p_down : float }
      (** [p_up] defaults to [2/n] at run time. *)
  | Fresh_random of { p : float }
  | Request_cutter of { cut_prob : float }

type faults = {
  loss : float;
  dup : float;
  crash : float;
  restart : float;
  max_delay : int;
  fault_seed : int option;  (** Default: the repeat's seed. *)
}

type t = {
  name : string;
  algorithm : algorithm;
  env : env;
  sigma : int;
  n : int option;
  k : int;
  s : int;
  seed : int;
  repeats : int;
  faults : faults option;
  max_rounds : int option;
}

val schema_name : string
(** ["dynspread-scenario/v1"]. *)

val algorithm_name : algorithm -> string
val env_family : env -> string

val of_json : Obs.Json.t -> (t, string list) result
(** Validate one parsed document; [Error] carries {e every} problem
    found, each message naming its field. *)

val of_string : string -> (t, string list) result

val load : string -> (t, string list) result
(** Read and validate a spec file (IO and JSON-syntax problems come
    back as a single-element error list). *)

val to_json : t -> Obs.Json.t
(** Round-trips through {!of_json}; optional fields at their defaults
    are omitted. *)
