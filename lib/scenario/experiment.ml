let sample_contacts =
  {csv|# office badge-proximity contacts, one working morning
# t,u,v,duration  (seconds; 20 s sampling resolution)
28800,101,110,20
28801,102,101,20
28801,102,105,20
28803,110,102,20
28804,105,102,20
28809,103,108,60
28810,120,124,60
28811,110,103,20
28811,124,112,40
28815,117,107,60
28817,107,121,20
28817,112,117,20
28818,101,117,60
28818,105,120,40
28818,115,102,20
28818,121,115,60
28819,115,110,20
28822,103,105,40
28822,110,120,20
28822,115,110,20
28824,101,115,60
28828,112,107,60
28829,117,101,60
28829,120,108,60
28830,103,108,40
28831,121,112,20
28833,102,124,20
28834,124,103,40
28838,108,121,60
28839,107,102,60
28840,107,120,60
28840,112,102,20
28844,102,117,20
28844,115,108,20
28845,103,110,20
28847,105,101,20
28848,110,105,40
28852,102,103,20
28852,120,124,60
28852,121,107,20
28853,101,112,40
28853,112,110,40
28854,117,103,60
28855,124,110,60
28858,108,121,20
28859,115,107,40
28862,112,121,20
28863,107,115,60
28863,115,102,40
28864,102,105,40
28864,121,102,20
28865,117,110,20
28866,101,102,60
28866,120,108,40
28868,115,124,60
28871,103,112,40
28874,108,117,60
28875,105,101,20
28875,110,107,40
28876,124,103,40
28880,103,108,40
28882,124,121,20
28886,101,105,60
28886,107,102,40
28886,115,107,40
28886,117,101,60
28887,110,124,20
28887,112,103,60
28891,102,120,20
28891,110,121,20
28894,108,115,40
28895,105,110,40
28895,124,105,40
28899,121,112,20
28902,115,108,20
28905,120,102,20
28914,107,101,60
28920,103,101,40
28924,110,124,20
28926,102,115,20
28926,103,110,40
28928,108,120,60
28931,112,117,60
28934,121,112,20
28936,105,110,20
28936,115,121,20
28936,120,121,20
28937,117,103,20
28938,107,102,40
28938,115,108,60
28939,124,107,20
28942,101,107,60
28942,120,121,20
28947,117,101,60
28948,103,124,60
28949,121,103,20
28950,102,112,20
28950,115,112,20
28952,115,110,60
28953,112,120,20
28954,110,108,20
28956,105,107,60
28956,105,117,20
28956,107,102,40
28957,101,102,20
28957,108,105,20
28960,105,102,40
28961,120,105,20
28962,103,124,40
28963,115,112,20
28963,117,115,20
28968,120,103,40
28968,121,108,20
28971,103,121,40
28972,101,110,40
28972,110,105,40
28973,102,107,20
28974,108,120,20
28976,110,115,40
28976,112,101,20
28977,107,121,60
28980,120,110,40
28980,124,107,20
28981,102,117,20
28981,121,117,20
28983,103,124,20
28985,105,121,20
28988,101,115,20
28988,102,107,20
28988,105,102,20
28988,117,101,40
28989,107,120,40
28989,112,103,60
28990,102,105,60
28994,101,120,20
28996,108,112,20
28996,115,108,20
29001,105,121,20
29002,105,108,40
29004,101,124,60
29004,103,117,20
29005,117,107,40
29007,124,103,20
29008,121,105,40
29009,110,102,20
29010,121,120,40
29011,102,121,20
29012,107,120,40
29013,105,112,20
29014,112,115,20
29014,120,108,20
29019,108,110,20
29022,110,115,40
29022,124,117,20
29027,102,112,20
29040,120,103,20
29040,121,112,60
29041,101,117,60
29041,108,103,20
29042,107,120,20
29042,121,115,20
29042,124,108,40
29051,112,105,20
29052,115,102,60
29055,120,124,40
29055,124,101,40
29056,102,108,20
29056,103,107,20
29056,121,117,20
29057,117,110,20
29058,105,121,20
29060,107,102,60
29061,108,101,60
29062,101,117,20
29066,112,120,60
29068,110,115,20
29069,103,108,20
29069,115,112,40
29069,120,124,20
29069,124,121,60
29070,102,103,40
29074,117,110,60
29074,117,120,20
29075,121,105,20
29077,120,105,20
29080,103,121,20
29080,105,110,60
29080,115,102,40
29080,120,115,40
29082,121,120,60
29083,112,115,40
29083,120,108,20
29087,101,124,60
29088,121,108,40
29089,107,112,20
29090,117,101,60
29092,110,107,40
29092,124,105,20
29093,108,117,40
29094,107,102,60
29095,103,117,60
29101,105,121,20
29102,101,120,20
29103,120,101,20
29105,107,110,60
29105,121,112,20
29106,124,110,60
29108,112,103,40
29109,105,108,60
29109,110,115,40
29109,115,108,60
29112,115,105,20
29113,102,120,60
29113,110,108,40
29117,101,107,20
29117,117,102,60
29117,124,117,20
29119,103,124,20
28803,103,103,20
28800,101,110,20
|csv}

let timed ?metrics id body = Obs.Timer.observe_span ?metrics ~name:id body

let real_trace ?jobs ?metrics ~seed () =
  timed ?metrics "experiment/e17-real-trace" @@ fun () ->
  let trace, stats =
    match Contacts.import ~provenance:"import:office_contacts.csv" sample_contacts with
    | Ok r -> r
    | Error e -> invalid_arg ("E17: embedded contacts failed to import: " ^ e)
  in
  let n = trace.Trace_io.header.n in
  let k = n in
  let s_sources = 4 in
  let instance =
    Gossip.Instance.multi_source
      ~rng:(Dynet.Rng.make ~seed:(seed + 1))
      ~n ~k ~s:s_sources
  in
  let schedule () = Replay.schedule ~past_end:Replay.Loop trace in
  let algorithms = [| `Flooding; `Multi_source; `Oblivious_rw |] in
  let results =
    Analysis.Sweep.map ?jobs
      (fun algo ->
        match algo with
        | `Flooding ->
            let result, _ =
              Gossip.Runners.flooding ~instance ~schedule:(schedule ()) ()
            in
            ("flooding", result.Engine.Run_result.rounds,
             result.Engine.Run_result.completed, result.Engine.Run_result.ledger)
        | `Multi_source ->
            let result, _ =
              Gossip.Runners.multi_source ~instance
                ~env:(Gossip.Runners.Oblivious (schedule ()))
                ()
            in
            ("multi-source", result.Engine.Run_result.rounds,
             result.Engine.Run_result.completed, result.Engine.Run_result.ledger)
        | `Oblivious_rw ->
            let r =
              Gossip.Runners.oblivious_rw ~instance ~schedule:(schedule ())
                ~seed ~const_f:0.05 ~force_rw:true ()
            in
            ( "oblivious-rw",
              r.Gossip.Oblivious_rw.phase1_rounds
              + r.Gossip.Oblivious_rw.phase2_rounds,
              r.Gossip.Oblivious_rw.completed,
              r.Gossip.Oblivious_rw.ledger ))
      algorithms
  in
  let rows =
    Array.to_list results
    |> List.map (fun (name, rounds, completed, ledger) ->
           [
             name;
             string_of_int rounds;
             Analysis.Table.fint (Engine.Ledger.total ledger);
             Analysis.Table.ffloat (Engine.Ledger.amortized ledger ~k);
             (if completed then "yes" else "no");
           ])
  in
  let all_completed =
    Array.for_all (fun (_, _, completed, _) -> completed) results
  in
  let messages_of i =
    let _, _, _, ledger = results.(i) in
    Engine.Ledger.total ledger
  in
  let rounds_of i =
    let _, rounds, _, _ = results.(i) in
    rounds
  in
  let flooding_fastest =
    rounds_of 0 <= rounds_of 1 && rounds_of 0 <= rounds_of 2
  in
  let rw_cheaper = messages_of 2 < messages_of 1 in
  Analysis.Table.make
    ~title:
      (Printf.sprintf
         "E17: real-format contact trace (n=%d, k=%d, s=%d, %d imported rounds, looped)"
         n k s_sources (Trace_io.rounds trace))
    ~columns:[ "algorithm"; "rounds"; "messages"; "amortized/token"; "completed" ]
    ~notes:
      [
        Printf.sprintf
          "import: %d contacts, %d self-loops dropped, %d duplicates collapsed, %d out-of-order"
          stats.Contacts.contacts stats.Contacts.self_loops
          stats.Contacts.duplicates stats.Contacts.out_of_order;
        Printf.sprintf
          "repair: %d of %d rounds disconnected, %d edges added (workload altered by that much)"
          stats.Contacts.repaired_rounds stats.Contacts.imported_rounds
          stats.Contacts.repaired_edges;
        Printf.sprintf
          "shape check: all complete (%b), flooding fastest (%b), Algorithm 2 cheaper than plain multi-source (%b) -> %s"
          all_completed flooding_fastest rw_cheaper
          (if all_completed && flooding_fastest && rw_cheaper then "PASS"
           else "FAIL");
      ]
    rows
