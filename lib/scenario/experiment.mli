(** E17 — a real-format workload through the full pipeline.

    The experiments in {!Analysis.Experiments} all run against
    synthetic adversary families.  E17 closes the loop on the scenario
    subsystem: a contact-sequence CSV (the interchange format of real
    dynamic-network datasets) is imported with {!Contacts.import},
    replayed as a committed schedule with {!Replay.schedule} (looping,
    as contact data is finite), and three algorithms from the paper run
    on the identical workload — phased flooding, Multi-Source-Unicast
    (Theorem 3.6), and Algorithm 2 ([force_rw]).

    The instance is a moderate multi-source regime ([k = n], four
    sources): with many more sources the deterministic min-source
    request rule can limit-cycle against a {e periodic} schedule (the
    loop makes the environment periodic, a corner the synthetic
    families never hit), so the comparison runs where all three
    algorithms complete.  Shape check (stated in the table notes): every
    algorithm completes on the looped trace, flooding needs the fewest
    rounds (it is the time-optimal yardstick of Section 1.2), and
    Algorithm 2 spends fewer messages than plain Multi-Source-Unicast
    (the message-optimality direction of Theorem 3.8). *)

val sample_contacts : string
(** The embedded workload: one working morning of office
    badge-proximity contacts, [t,u,v,duration] at 20-second
    resolution, with the normalization cases real files exhibit
    (label gaps, duplicates, a self-loop, an out-of-order row, two
    sparse windows that need connectivity repair).  Byte-identical to
    [examples/traces/office_contacts.csv].  *)

val real_trace :
  ?jobs:int -> ?metrics:Obs.Metrics.t -> seed:int -> unit -> Analysis.Table.t
(** Import {!sample_contacts}, run the three algorithms, and render
    the comparison; the notes carry the importer's honesty counters
    (dropped self-loops, collapsed duplicates, repaired edges).  With
    [?metrics], wall-clock lands in ["experiment/e17-real-trace"]. *)
