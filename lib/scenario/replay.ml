open Dynet.Ops

type past_end = Hold | Loop | Fail

let schedule ?(past_end = Hold) (trace : Trace_io.t) =
  let r_max = Trace_io.rounds trace in
  if r_max = 0 then invalid_arg "Replay.schedule: trace has zero rounds";
  let n = trace.Trace_io.header.Trace_io.n in
  (* The schedule's Markov rule reconstructs round r from round r - 1's
     graph and delta r; the base cycle is kept so Loop can wrap without
     replaying (Schedule memoizes every produced graph anyway). *)
  let cycle = Array.make r_max None in
  let build r prev =
    let edges =
      Trace_io.apply_delta ~n ~round:r
        (Dynet.Graph.edges prev)
        trace.Trace_io.deltas.(r - 1)
    in
    let g = Dynet.Graph.make ~n edges in
    cycle.(r - 1) <- Some g;
    g
  in
  let get_cycle r =
    match cycle.(r - 1) with
    | Some g -> g
    | None ->
        (* Unreachable through Schedule (rounds are produced in order),
           kept total for safety. *)
        invalid_arg (Printf.sprintf "Replay: round %d not yet built" r)
  in
  Adversary.Schedule.iterate ~n
    ~init:(fun () -> build 1 (Dynet.Graph.empty ~n))
    (fun r prev ->
      if r <= r_max then build r prev
      else
        match past_end with
        | Hold -> prev
        | Loop -> get_cycle (((r - 1) mod r_max) + 1)
        | Fail ->
            raise
              (Engine.Engine_error.Schedule_exhausted
                 { round = r; available = r_max }))
