(** NDJSON framing for [dynspread-rpc/v1]: one JSON object per line,
    LF terminated (a single trailing CR is tolerated and stripped).
    The splitter is incremental and bounded — the first frame longer
    than [max_frame] bytes poisons the splitter and every later [feed]
    fails, so a session streaming garbage is torn down instead of
    growing an unbounded buffer. *)

type splitter

val default_max_frame : int
(** 4 MiB — far above any spec or rpc frame the protocol produces. *)

val splitter : ?max_frame:int -> unit -> splitter
(** A fresh splitter ([max_frame] defaults to {!default_max_frame}).
    @raise Invalid_argument when [max_frame < 1]. *)

val feed : splitter -> string -> (string list, string) result
(** Append a chunk of bytes and return the complete frames it closed,
    in arrival order, with empty lines dropped.  [Error] is terminal:
    the splitter saw an overlong frame (or was already poisoned) and
    the session should be closed with the message as diagnostic. *)

val pending : splitter -> int
(** Bytes buffered towards an unterminated frame (diagnostics). *)
