open Dynet.Ops

(* The serve daemon's job scheduler: a bounded admission queue, fair
   round-robin across clients, and a persistent pool of worker domains
   (spawned once at [create], parked on a condition variable between
   jobs — the Shard_pool discipline at job rather than barrier
   granularity).

   Ownership: every mutable field of [t] and of a [job] except its
   [cancel] flag is guarded by [t.m].  The [cancel] flag is an Atomic
   because the engines poll it from the worker domain mid-run while
   sessions set it from the server's event loop.  The [notify]
   callback runs on worker domains and must therefore be thread-safe
   (the server's is: it appends to per-session outboxes under their
   own locks and tickles a self-pipe).

   Determinism: a job's reports are produced by running
   [Scenario.Runner.run_repeat] over the prepared seeds sequentially
   on one worker.  [run_repeat] depends only on [(prepared, seed)], so
   the report bytes are independent of pool size, queue order, and
   which worker ran the job — the jobs-independence property the
   tests pin down. *)

type outcome = Completed | Cancelled | Failed of string

let outcome_name = function
  | Completed -> "completed"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

type notification =
  | Started of { job : int }
  | Event of { job : int; line : string }
  | Report of { job : int; index : int; line : string }
  | Finished of { job : int; outcome : outcome; reports : int }

type state = Queued | Running | Finished_ of outcome

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Finished_ o -> outcome_name o

type job = {
  jid : int;
  client : int;
  name : string;
  prepared : Scenario.Runner.prepared;
  engine : (module Engine.Engine_sig.ENGINE) option;
  events : bool;
  cancel : bool Atomic.t;
  mutable state : state;
  mutable reports : int;
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* new work, or stopping *)
  idle : Condition.t;  (* a job finished, or stopping *)
  queue_cap : int;
  notify : notification -> unit;
  queues : (int, job Queue.t) Hashtbl.t;  (* client -> pending, nonempty *)
  rr : int Queue.t;  (* round-robin rotation: the keys of [queues] *)
  jobs : (int, job) Hashtbl.t;  (* every job ever admitted *)
  busy : float array;  (* per-worker busy seconds *)
  mutable queued_total : int;
  mutable running : int;
  mutable stopping : bool;
  mutable next_jid : int;
  mutable submitted : int;
  mutable completed : int;
  mutable cancelled : int;
  mutable failed : int;
  mutable rejected : int;
  mutable workers : unit Domain.t array;
}

type stats = {
  workers : int;
  queue_depth : int;
  running_jobs : int;
  submitted : int;
  completed : int;
  cancelled : int;
  failed : int;
  rejected : int;
  busy_seconds : float array;
}

type admission =
  | Admitted of { job : int; queue_depth : int }
  | Refused of { reason : string; queue_depth : int }

(* Callers hold [t.m]. *)
let rec take_next t =
  if Queue.is_empty t.rr then None
  else
    let c = Queue.pop t.rr in
    match Hashtbl.find_opt t.queues c with
    | None -> take_next t
    | Some q ->
        let job = Queue.pop q in
        if Queue.is_empty q then Hashtbl.remove t.queues c
        else Queue.push c t.rr;
        t.queued_total <- t.queued_total - 1;
        Some job

let execute t job =
  let obs =
    if job.events then
      Obs.Sink.Custom
        (fun ev ->
          t.notify
            (Event
               {
                 job = job.jid;
                 line = Obs.Json.to_string (Obs.Trace.to_json ev);
               }))
    else Obs.Sink.null
  in
  let cancel () = Atomic.get job.cancel in
  let streamed = ref 0 in
  match
    Array.iter
      (fun seed ->
        (* A cancel lands once: the repeat it interrupts still streams
           its partial-coverage report, but no later repeat starts —
           without this check every remaining seed would produce an
           instant zero-round stub and a cancelled 500-repeat job
           would still stream 500 reports. *)
        if Atomic.get job.cancel then raise Stdlib.Exit;
        let r =
          Scenario.Runner.run_repeat ?engine:job.engine ~obs ~cancel
            job.prepared ~seed
        in
        let line = Obs.Json.to_string (Obs.Report.to_json r) in
        let index = !streamed in
        incr streamed;
        Mutex.lock t.m;
        job.reports <- !streamed;
        Mutex.unlock t.m;
        t.notify (Report { job = job.jid; index; line }))
      job.prepared.Scenario.Runner.seeds
  with
  | () | (exception Stdlib.Exit) ->
      ((if Atomic.get job.cancel then Cancelled else Completed), !streamed)
  | exception e ->
      (* Engine violations (protocol/adversary/check) and anything
         else a run throws turn into a Failed outcome on this job —
         the daemon keeps serving. *)
      (Failed (Printexc.to_string e), !streamed)

let finish t job outcome ~reports ~was_running =
  Mutex.lock t.m;
  if was_running then t.running <- t.running - 1;
  job.state <- Finished_ outcome;
  (match outcome with
  | Completed -> t.completed <- t.completed + 1
  | Cancelled -> t.cancelled <- t.cancelled + 1
  | Failed _ -> t.failed <- t.failed + 1);
  Condition.broadcast t.idle;
  Mutex.unlock t.m;
  t.notify (Finished { job = job.jid; outcome; reports })

let rec worker_loop t ~w =
  Mutex.lock t.m;
  let rec await () =
    match take_next t with
    | Some job -> Some job
    | None ->
        if t.stopping then None
        else begin
          Condition.wait t.work t.m;
          await ()
        end
  in
  match await () with
  | None -> Mutex.unlock t.m
  | Some job ->
      if Atomic.get job.cancel then begin
        (* Cancelled while still queued: never ran, zero reports. *)
        Mutex.unlock t.m;
        finish t job Cancelled ~reports:0 ~was_running:false;
        worker_loop t ~w
      end
      else begin
        job.state <- Running;
        t.running <- t.running + 1;
        Mutex.unlock t.m;
        t.notify (Started { job = job.jid });
        let t0 = Obs.Timer.now_s () in
        let outcome, reports = execute t job in
        let dt = Obs.Timer.now_s () -. t0 in
        Mutex.lock t.m;
        t.busy.(w) <- t.busy.(w) +. dt;
        Mutex.unlock t.m;
        finish t job outcome ~reports ~was_running:true;
        worker_loop t ~w
      end

let create ?(workers = 2) ?(queue_cap = 128) ~notify () =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be >= 1";
  if queue_cap < 1 then
    invalid_arg "Scheduler.create: queue_cap must be >= 1";
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue_cap;
      notify;
      queues = Hashtbl.create 16;
      rr = Queue.create ();
      jobs = Hashtbl.create 64;
      busy = Array.make workers 0.;
      queued_total = 0;
      running = 0;
      stopping = false;
      next_jid = 1;
      submitted = 0;
      completed = 0;
      cancelled = 0;
      failed = 0;
      rejected = 0;
      workers = [||];
    }
  in
  t.workers <-
    Array.init workers (fun w -> Domain.spawn (fun () -> worker_loop t ~w));
  t

let submit t ~client ~name ~prepared ?engine ~events () =
  Mutex.lock t.m;
  if t.stopping then begin
    t.rejected <- t.rejected + 1;
    let depth = t.queued_total in
    Mutex.unlock t.m;
    Refused { reason = "daemon is shutting down"; queue_depth = depth }
  end
  else if t.queued_total >= t.queue_cap then begin
    t.rejected <- t.rejected + 1;
    let depth = t.queued_total in
    Mutex.unlock t.m;
    Refused
      {
        reason = Printf.sprintf "queue full (cap %d)" t.queue_cap;
        queue_depth = depth;
      }
  end
  else begin
    let jid = t.next_jid in
    t.next_jid <- jid + 1;
    let job =
      {
        jid;
        client;
        name;
        prepared;
        engine;
        events;
        cancel = Atomic.make false;
        state = Queued;
        reports = 0;
      }
    in
    Hashtbl.replace t.jobs jid job;
    (match Hashtbl.find_opt t.queues client with
    | Some q -> Queue.push job q
    | None ->
        let q = Queue.create () in
        Queue.push job q;
        Hashtbl.replace t.queues client q;
        Queue.push client t.rr);
    t.queued_total <- t.queued_total + 1;
    t.submitted <- t.submitted + 1;
    let depth = t.queued_total in
    Condition.signal t.work;
    Mutex.unlock t.m;
    Admitted { job = jid; queue_depth = depth }
  end

let cancel t jid =
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.jobs jid with
    | None -> None
    | Some job ->
        let was = state_name job.state in
        (match job.state with
        | Queued | Running -> Atomic.set job.cancel true
        | Finished_ _ -> ());
        Some was
  in
  Mutex.unlock t.m;
  r

let job_state t jid =
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.jobs jid with
    | None -> None
    | Some job -> Some (state_name job.state, job.reports)
  in
  Mutex.unlock t.m;
  r

let job_views t ?job () =
  Mutex.lock t.m;
  let views =
    match job with
    | Some jid -> (
        match Hashtbl.find_opt t.jobs jid with
        | None -> []
        | Some j ->
            [
              {
                Rpc.job = j.jid;
                name = j.name;
                state = state_name j.state;
                reports = j.reports;
              };
            ])
    | None ->
        Hashtbl.fold
          (fun _ j acc ->
            {
              Rpc.job = j.jid;
              name = j.name;
              state = state_name j.state;
              reports = j.reports;
            }
            :: acc)
          t.jobs []
        |> List.sort (fun a b -> Int.compare a.Rpc.job b.Rpc.job)
  in
  let depth = t.queued_total and running = t.running in
  Mutex.unlock t.m;
  (views, depth, running)

let stats t =
  Mutex.lock t.m;
  let s =
    {
      workers = Array.length t.workers;
      queue_depth = t.queued_total;
      running_jobs = t.running;
      submitted = t.submitted;
      completed = t.completed;
      cancelled = t.cancelled;
      failed = t.failed;
      rejected = t.rejected;
      busy_seconds = Array.copy t.busy;
    }
  in
  Mutex.unlock t.m;
  s

let idle t =
  Mutex.lock t.m;
  let r = t.queued_total = 0 && t.running = 0 in
  Mutex.unlock t.m;
  r

let wait_idle t =
  Mutex.lock t.m;
  while t.queued_total > 0 || t.running > 0 do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m

let shutdown ?(mode = `Drain) t =
  Mutex.lock t.m;
  t.stopping <- true;
  (match mode with
  | `Drain -> ()
  | `Cancel ->
      (* Signal-driven teardown: stop everything at the next round
         boundary instead of running the backlog out. *)
      Hashtbl.iter
        (fun _ job ->
          match job.state with
          | Queued | Running -> Atomic.set job.cancel true
          | Finished_ _ -> ())
        t.jobs);
  Condition.broadcast t.work;
  Condition.broadcast t.idle;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers
