(** The serve daemon's job scheduler: bounded admission, fair
    round-robin across clients, a persistent Domain pool.

    Admitted jobs wait in per-client FIFO queues; workers take the
    next job from the next client in rotation, so one chatty client
    cannot starve the rest however deep its backlog.  Total queued
    work is capped at [queue_cap] — admission beyond it is {!Refused},
    the protocol's explicit backpressure.

    A job's repeats run sequentially on one worker via
    {!Scenario.Runner.run_repeat}, whose output depends only on the
    prepared spec and the seed — report bytes are independent of pool
    size, queue order, and worker identity, and therefore
    byte-identical to [dynspread scenario run] on the same spec.

    The [notify] callback fires on {e worker domains} (job started,
    trace event, report line, job finished) and must be thread-safe;
    everything else is guarded internally. *)

type outcome = Completed | Cancelled | Failed of string

val outcome_name : outcome -> string
(** ["completed"] | ["cancelled"] | ["failed"] — the wire tags. *)

type notification =
  | Started of { job : int }
  | Event of { job : int; line : string }
      (** A dynspread-trace/v1 event of a job submitted with
          [events = true], pre-serialized. *)
  | Report of { job : int; index : int; line : string }
      (** Repeat [index]'s report line, pre-serialized with
          [Obs.Json.to_string] — forward verbatim. *)
  | Finished of { job : int; outcome : outcome; reports : int }

type t

type stats = {
  workers : int;
  queue_depth : int;
  running_jobs : int;
  submitted : int;
  completed : int;
  cancelled : int;
  failed : int;
  rejected : int;
  busy_seconds : float array;  (** Per-worker, accumulated. *)
}

type admission =
  | Admitted of { job : int; queue_depth : int }
  | Refused of { reason : string; queue_depth : int }
      (** Backpressure: queue at cap, or the scheduler is stopping. *)

val create :
  ?workers:int -> ?queue_cap:int -> notify:(notification -> unit) -> unit -> t
(** Spawn the pool ([workers] domains, default 2; [queue_cap] default
    128).  Workers park on a condition variable between jobs.
    @raise Invalid_argument when either is [< 1]. *)

val submit :
  t ->
  client:int ->
  name:string ->
  prepared:Scenario.Runner.prepared ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  events:bool ->
  unit ->
  admission
(** Admit a prepared spec for [client] (an opaque fairness key — the
    server uses the session id).  O(1); never blocks on workers. *)

val cancel : t -> int -> string option
(** Request cancellation: [Some was] is the state the job was found
    in ([None]: unknown job).  A queued job finishes [Cancelled] with
    zero reports when a worker reaches it; a running job stops at the
    next round boundary with [Cancelled] partial reports; a finished
    job is left untouched (cancel-after-completion is a no-op). *)

val job_state : t -> int -> (string * int) option
(** [(state name, reports streamed)] for one job id. *)

val job_views : t -> ?job:int -> unit -> Rpc.job_view list * int * int
(** Status snapshot: the views (one job, or all jobs sorted by id),
    the queue depth, and the running count. *)

val stats : t -> stats
(** Counter snapshot for the /metrics endpoint. *)

val idle : t -> bool
(** No job queued or running right now. *)

val wait_idle : t -> unit
(** Block until {!idle} (used by drains and tests). *)

val shutdown : ?mode:[ `Drain | `Cancel ] -> t -> unit
(** Stop admission and join the pool.  [`Drain] (default, the rpc
    [shutdown] path) runs the backlog out first; [`Cancel] (the
    signal path) also flags every queued and running job cancelled so
    the pool winds down at the next round boundaries.  Idempotent
    admission-wise; must be called exactly once to join the pool. *)
