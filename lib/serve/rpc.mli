(** [dynspread-rpc/v1] frame types and codecs.

    Every frame (either direction) is one NDJSON line: a JSON object
    with ["rpc"] (the {!version} string) and ["op"] (the frame kind).
    Frames with a missing or unknown version or op decode to [Error]
    so the peer can answer with a protocol error instead of guessing.

    Run reports and trace events cross the wire {e pre-serialized}:
    the ["line"] field of [Report]/[Event] is the exact NDJSON line
    the daemon produced with [Obs.Json.to_string].  Clients print it
    verbatim, which is what makes daemon reports byte-identical to
    [dynspread scenario run] output — no re-encode, no float drift. *)

val version : string
(** ["dynspread-rpc/v1"]. *)

type submit = {
  tag : string option;
      (** Client correlation label, echoed on [Accepted]/[Rejected]. *)
  spec : Obs.Json.t;
      (** The dynspread-scenario/v1 object, passed through unparsed —
          the daemon validates it with [Scenario.Spec.of_json]. *)
  base_dir : string option;
      (** Directory the spec's relative trace paths resolve against
          (the daemon's working directory when omitted). *)
  engine : string option;  (** ["fastpath"] | ["reference"] | ["soa"]. *)
  shards : int option;  (** SoA shard count (engine ["soa"] only). *)
  events : bool;
      (** Stream the run's dynspread-trace/v1 events as [Event]
          frames. *)
}

type request =
  | Submit of submit
  | Status of { job : int option }  (** One job, or the whole table. *)
  | Cancel of { job : int }
  | Subscribe of { job : int; events : bool }
      (** Attach this session to a job's [Report]/[Done] (and with
          [events], [Event]) stream from now on. *)
  | Shutdown  (** Graceful: drain, then exit. *)
  | Ping

type job_view = {
  job : int;
  name : string;  (** The spec's [name]. *)
  state : string;
      (** ["queued"] | ["running"] | ["completed"] | ["cancelled"] |
          ["failed"]. *)
  reports : int;  (** Reports streamed so far. *)
}

type response =
  | Accepted of { job : int; tag : string option; queue_depth : int }
  | Rejected of { tag : string option; reason : string; queue_depth : int }
      (** Backpressure: the bounded queue is full (or the daemon is
          draining).  The spec was not enqueued; resubmit later. *)
  | Error of { reason : string }
      (** Protocol-level failure: malformed frame, unknown op, invalid
          spec, unknown job. *)
  | Status_view of { jobs : job_view list; queue_depth : int; running : int }
  | Cancel_ok of { job : int; was : string }
      (** [was] is the state the job was found in; cancelling an
          already-finished job is a no-op and reports that state. *)
  | Subscribed of { job : int; events : bool }
  | Event of { job : int; line : string }
      (** One dynspread-trace/v1 event line, pre-serialized. *)
  | Report of { job : int; index : int; line : string }
      (** Repeat [index]'s dynspread-report/v1 line, pre-serialized. *)
  | Done of { job : int; outcome : string; reports : int;
              reason : string option }
      (** Terminal: [outcome] is ["completed"] | ["cancelled"] |
          ["failed"] ([reason] only for failures). *)
  | Shutting_down
  | Pong

val request_to_json : request -> Obs.Json.t
val request_to_line : request -> string
val request_of_line : string -> (request, string) result

val response_to_json : response -> Obs.Json.t
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
