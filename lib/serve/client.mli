(** Blocking rpc client for the serve daemon.

    One connection, one request in flight; the streaming [submit]
    exchange surfaces [event] and [report] frames through callbacks as
    they arrive.  All IO and protocol failures raise {!Io_error} with
    a one-line diagnostic — `dynspread submit` maps it to exit code
    2. *)

exception Io_error of string

type target =
  | Unix_path of string  (** the daemon's unix socket path *)
  | Tcp of string * int  (** host, port *)

type t

val connect : target -> t
(** Raises {!Io_error} — connection refused and a missing socket path
    both say "is the daemon running?". *)

val close : t -> unit

val send : t -> Rpc.request -> unit

val recv : t -> Rpc.response
(** Blocks for the next frame.  EOF, unparsable frames, and version
    mismatches raise {!Io_error}. *)

val request : t -> Rpc.request -> Rpc.response
(** [send] then [recv]. *)

val ping : t -> unit

val shutdown : t -> unit
(** Ask the daemon to drain and exit; returns once acknowledged. *)

val status : t -> ?job:int -> unit -> Rpc.job_view list * int * int
(** Jobs (all, or just [job]), queue depth, running count. *)

val cancel : t -> job:int -> (string, string) result
(** [Ok was_state] on acknowledgment, [Error reason] for an unknown
    job. *)

type finished = {
  job : int;
  outcome : string;  (** "completed" | "cancelled" | "failed" *)
  reports : int;
  reason : string option;  (** the Failed diagnostic *)
}

val submit_await :
  t ->
  Rpc.submit ->
  on_event:(string -> unit) ->
  on_report:(int -> string -> unit) ->
  (finished, string) result
(** Submit a spec and follow its stream to the terminal [done] frame.
    [on_report index line] receives each report's pre-serialized JSON
    exactly as `dynspread scenario run` would have printed it;
    [on_event] likewise for dynspread-trace/v1 events when
    [sub.events] is set.  [Error _] carries a rejection or validation
    reason. *)
