(* The serve daemon: a single-threaded [Unix.select] event loop
   fronting the {!Scheduler}'s Domain pool.

   Threading model.  The event loop owns every socket: it accepts,
   reads, frames, dispatches rpc requests, and writes.  Worker domains
   never touch a file descriptor — the scheduler's [notify] callback
   appends pre-serialized frames to per-session outboxes (each under
   its own small mutex) and tickles a self-pipe so a parked [select]
   wakes up and writes them out.  The sessions and subscription tables
   are guarded by one more mutex ([sub_m]) because [notify] reads them
   from worker domains.  Lock order: [sub_m] before a session's
   [out_m]; the scheduler's internal lock is never held while taking
   either (workers release it before notifying).

   Byte identity.  Reports enter a session outbox as the exact
   [Obs.Json.to_string] line the Runner produced — the scheduler
   serialized each exactly once — wrapped as a JSON string in the
   [Report] frame.  Clients print the carried string verbatim, so the
   daemon's output for a spec is byte-identical to
   [dynspread scenario run] on the same spec. *)

exception Startup_error of string

type config = {
  socket : string option;  (* unix-domain rpc listener *)
  listen : (string * int) option;  (* tcp rpc listener *)
  metrics : (string * int) option;  (* http/1.0 GET /metrics *)
  workers : int;
  queue_cap : int;
  stop : int Atomic.t;  (* signal handlers bump this *)
}

let default_config =
  (* dynlint: domain-safe — every config field is immutable; the scan
     matches field names (workers) that other types declare mutable *)
  {
    socket = Some "dynspread.sock";
    listen = None;
    metrics = None;
    workers = 2;
    queue_cap = 128;
    stop = Atomic.make 0;
  }

type session_kind = Rpc_session | Metrics_session

type session = {
  sid : int;
  fd : Unix.file_descr;
  kind : session_kind;
  splitter : Frame.splitter;
  out_m : Mutex.t;
  out : Buffer.t;  (* frames queued by the loop and by [notify] *)
  mutable pending : string;  (* bytes in flight to the wire *)
  mutable pos : int;
  mutable closing : bool;  (* close once the outbox drains *)
}

(* What a ready file descriptor means — select hands back bare fds, so
   the loop dispatches through one table instead of comparing
   descriptors (an abstract type) by hand. *)
type endpoint = Pipe | Listener of session_kind | Conn of session

type t = {
  sched : Scheduler.t;
  sub_m : Mutex.t;
  sessions : (int, session) Hashtbl.t;  (* sid -> session (under sub_m) *)
  subs : (int, (int * bool) list) Hashtbl.t;
      (* job -> (sid, events) subscribers (under sub_m) *)
  endpoints : (Unix.file_descr, endpoint) Hashtbl.t;  (* loop-only *)
  pipe_w : Unix.file_descr;
  mutable next_sid : int;
  mutable draining : bool;
  mutable drain_mode : [ `Drain | `Cancel ];
}

(* {2 Outboxes} *)

let wake t =
  (* A full pipe already means a wakeup is pending, so a failed write
     is success. *)
  let b = Bytes.make 1 'w' in
  match Unix.write t.pipe_w b 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()

let push t session line =
  Mutex.lock session.out_m;
  Buffer.add_string session.out line;
  Buffer.add_char session.out '\n';
  Mutex.unlock session.out_m;
  wake t

let reply t session resp = push t session (Rpc.response_to_line resp)

let has_output session =
  String.length session.pending > session.pos
  ||
  (Mutex.lock session.out_m;
   let n = Buffer.length session.out in
   Mutex.unlock session.out_m;
   n > 0)

(* {2 Subscriptions and worker notifications} *)

let forward t ~job ~events_only line =
  Mutex.lock t.sub_m;
  let targets =
    match Hashtbl.find_opt t.subs job with
    | None -> []
    | Some subs ->
        List.filter_map
          (fun (sid, ev) ->
            if events_only && not ev then None
            else Hashtbl.find_opt t.sessions sid)
          subs
  in
  Mutex.unlock t.sub_m;
  List.iter (fun s -> push t s line) targets

let notify t = function
  | Scheduler.Started _ -> ()
  | Scheduler.Event { job; line } ->
      forward t ~job ~events_only:true
        (Rpc.response_to_line (Rpc.Event { job; line }))
  | Scheduler.Report { job; index; line } ->
      forward t ~job ~events_only:false
        (Rpc.response_to_line (Rpc.Report { job; index; line }))
  | Scheduler.Finished { job; outcome; reports } ->
      let reason =
        match outcome with
        | Scheduler.Failed r -> Some r
        | Scheduler.Completed | Scheduler.Cancelled -> None
      in
      forward t ~job ~events_only:false
        (Rpc.response_to_line
           (Rpc.Done
              { job; outcome = Scheduler.outcome_name outcome; reports;
                reason }));
      Mutex.lock t.sub_m;
      Hashtbl.remove t.subs job;
      Mutex.unlock t.sub_m

(* {2 Request handling} *)

let resolve_engine name shards =
  let shards = Option.value shards ~default:1 in
  if shards < 1 then Result.Error "shards must be >= 1"
  else
    match name with
    | None -> Ok None
    | Some "fastpath" ->
        if shards > 1 then
          Result.Error "\"shards\" applies to the soa engine only"
        else Ok None
    | Some "reference" ->
        if shards > 1 then
          Result.Error "\"shards\" applies to the soa engine only"
        else Ok (Some Engine.Reference.engine)
    | Some "soa" -> Ok (Some (Engine.Soa.engine ~shards ()))
    | Some other -> Result.Error (Printf.sprintf "unknown engine %S" other)

let handle_submit t session (sub : Rpc.submit) =
  if t.draining then
    let s = Scheduler.stats t.sched in
    reply t session
      (Rpc.Rejected
         {
           tag = sub.Rpc.tag;
           reason = "daemon is shutting down";
           queue_depth = s.Scheduler.queue_depth;
         })
  else
    match Scenario.Spec.of_json sub.Rpc.spec with
    | Result.Error errs ->
        reply t session
          (Rpc.Error { reason = "invalid spec: " ^ String.concat "; " errs })
    | Ok spec -> (
        match resolve_engine sub.Rpc.engine sub.Rpc.shards with
        | Result.Error reason -> reply t session (Rpc.Error { reason })
        | Ok engine -> (
            match Scenario.Runner.prepare ?base_dir:sub.Rpc.base_dir spec with
            | Result.Error reason -> reply t session (Rpc.Error { reason })
            | Ok prepared ->
                (* Register the submitter's subscription under [sub_m]
                   *around* the admission so a fast worker's first
                   notification cannot slip out before the subscriber
                   exists. *)
                Mutex.lock t.sub_m;
                let admission =
                  Scheduler.submit t.sched ~client:session.sid
                    ~name:spec.Scenario.Spec.name ~prepared ?engine
                    ~events:sub.Rpc.events ()
                in
                (match admission with
                | Scheduler.Admitted { job; _ } ->
                    Hashtbl.replace t.subs job [ (session.sid, sub.Rpc.events) ]
                | Scheduler.Refused _ -> ());
                Mutex.unlock t.sub_m;
                (match admission with
                | Scheduler.Admitted { job; queue_depth } ->
                    reply t session
                      (Rpc.Accepted { job; tag = sub.Rpc.tag; queue_depth })
                | Scheduler.Refused { reason; queue_depth } ->
                    reply t session
                      (Rpc.Rejected { tag = sub.Rpc.tag; reason; queue_depth }))
            ))

let handle_request t session (req : Rpc.request) =
  match req with
  | Rpc.Ping -> reply t session Rpc.Pong
  | Rpc.Shutdown ->
      t.draining <- true;
      reply t session Rpc.Shutting_down
  | Rpc.Status { job } ->
      let jobs, queue_depth, running = Scheduler.job_views t.sched ?job () in
      reply t session (Rpc.Status_view { jobs; queue_depth; running })
  | Rpc.Cancel { job } -> (
      match Scheduler.cancel t.sched job with
      | Some was -> reply t session (Rpc.Cancel_ok { job; was })
      | None ->
          reply t session
            (Rpc.Error { reason = Printf.sprintf "unknown job %d" job }))
  | Rpc.Subscribe { job; events } -> (
      match Scheduler.job_state t.sched job with
      | None ->
          reply t session
            (Rpc.Error { reason = Printf.sprintf "unknown job %d" job })
      | Some (state, reports) -> (
          Mutex.lock t.sub_m;
          let prev = Option.value (Hashtbl.find_opt t.subs job) ~default:[] in
          Hashtbl.replace t.subs job ((session.sid, events) :: prev);
          Mutex.unlock t.sub_m;
          reply t session (Rpc.Subscribed { job; events });
          (* A subscriber attaching after the fact would wait forever
             for a [Done] that already went out — replay the terminal
             frame (stream lines are live-only; the report count says
             what was missed). *)
          match state with
          | "completed" | "cancelled" | "failed" ->
              reply t session
                (Rpc.Done { job; outcome = state; reports; reason = None })
          | _ -> ()))
  | Rpc.Submit sub -> handle_submit t session sub

(* {2 The /metrics responder} *)

let metrics_registry t =
  let m = Obs.Metrics.create () in
  let s = Scheduler.stats t.sched in
  Obs.Metrics.set_gauge m "queue_depth" (float_of_int s.Scheduler.queue_depth);
  Obs.Metrics.set_gauge m "running_jobs"
    (float_of_int s.Scheduler.running_jobs);
  Obs.Metrics.set_gauge m "workers" (float_of_int s.Scheduler.workers);
  Obs.Metrics.incr m ~by:s.Scheduler.submitted "jobs_submitted";
  Obs.Metrics.incr m ~by:s.Scheduler.completed "jobs_completed";
  Obs.Metrics.incr m ~by:s.Scheduler.cancelled "jobs_cancelled";
  Obs.Metrics.incr m ~by:s.Scheduler.failed "jobs_failed";
  Obs.Metrics.incr m ~by:s.Scheduler.rejected "jobs_rejected";
  Array.iteri
    (fun i b ->
      Obs.Metrics.set_gauge m (Printf.sprintf "domain%d_busy_seconds" i) b)
    s.Scheduler.busy_seconds;
  m

let not_found =
  "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"

let handle_http_line t session line =
  (* "GET /metrics HTTP/1.0" — the one endpoint.  Whatever headers
     follow are irrelevant to an HTTP/1.0 close-delimited exchange. *)
  let response =
    match String.split_on_char ' ' line with
    | "GET" :: path :: _ when String.equal path "/metrics" ->
        Obs.Expo.http_response ~namespace:"dynspread_serve"
          (metrics_registry t)
    | _ -> not_found
  in
  Mutex.lock session.out_m;
  Buffer.add_string session.out response;
  Mutex.unlock session.out_m;
  session.closing <- true

(* {2 Sessions} *)

let add_session t fd kind =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let session =
    {
      sid;
      fd;
      kind;
      splitter = Frame.splitter ();
      out_m = Mutex.create ();
      out = Buffer.create 256;
      pending = "";
      pos = 0;
      closing = false;
    }
  in
  Mutex.lock t.sub_m;
  Hashtbl.replace t.sessions sid session;
  Mutex.unlock t.sub_m;
  Hashtbl.replace t.endpoints fd (Conn session)

let close_session t session =
  Mutex.lock t.sub_m;
  Hashtbl.remove t.sessions session.sid;
  Mutex.unlock t.sub_m;
  Hashtbl.remove t.endpoints session.fd;
  match Unix.close session.fd with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let handle_readable t session buf =
  match Unix.read session.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_session t session
  | 0 -> close_session t session
  | n -> (
      let chunk = Bytes.sub_string buf 0 n in
      match Frame.feed session.splitter chunk with
      | Result.Error reason ->
          (match session.kind with
          | Rpc_session -> reply t session (Rpc.Error { reason })
          | Metrics_session -> ());
          session.closing <- true
      | Ok lines -> (
          match session.kind with
          | Metrics_session -> (
              match lines with
              | [] -> ()
              | line :: _ ->
                  if not session.closing then handle_http_line t session line)
          | Rpc_session ->
              List.iter
                (fun line ->
                  match Rpc.request_of_line line with
                  | Result.Error reason ->
                      reply t session (Rpc.Error { reason })
                  | Ok req -> handle_request t session req)
                lines))

let handle_writable t session =
  if session.pos >= String.length session.pending then begin
    Mutex.lock session.out_m;
    session.pending <- Buffer.contents session.out;
    Buffer.clear session.out;
    session.pos <- 0;
    Mutex.unlock session.out_m
  end;
  let len = String.length session.pending - session.pos in
  if len > 0 then
    match Unix.write_substring session.fd session.pending session.pos len with
    | written -> session.pos <- session.pos + written
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_session t session

(* {2 Listeners} *)

let bind_unix path =
  if Sys.file_exists path then begin
    (* Stale-socket etiquette: probe it.  A live daemon answers the
       connect — refuse to fight it; a dead one left ECONNREFUSED
       behind — reclaim the path. *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
        Unix.close probe;
        raise
          (Startup_error
             (Printf.sprintf "%s: a daemon is already listening" path))
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> (
        Unix.close probe;
        match Unix.unlink path with
        | () -> ()
        | exception Unix.Unix_error _ ->
            raise
              (Startup_error
                 (Printf.sprintf "%s: cannot remove stale socket" path)))
    | exception Unix.Unix_error _ ->
        Unix.close probe;
        raise
          (Startup_error
             (Printf.sprintf "%s: exists and is not a listening socket" path))
  end;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      raise
        (Startup_error
           (Printf.sprintf "%s: bind failed (%s)" path (Unix.error_message e)))
  );
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let inet_addr host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          raise (Startup_error ("cannot resolve " ^ host))
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> raise (Startup_error ("cannot resolve " ^ host))
      )

let bind_tcp (host, port) =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (match Unix.bind fd (Unix.ADDR_INET (inet_addr host, port)) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      raise
        (Startup_error
           (Printf.sprintf "%s:%d: bind failed (%s)" host port
              (Unix.error_message e))));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let rec accept_all t fd kind =
  match Unix.accept ~cloexec:true fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> ()
  | cfd, _ ->
      Unix.set_nonblock cfd;
      add_session t cfd kind;
      accept_all t fd kind

(* {2 The loop} *)

let conns_snapshot t =
  Hashtbl.fold
    (fun _ ep acc ->
      match ep with Conn s -> s :: acc | Pipe | Listener _ -> acc)
    t.endpoints []

let drain_pipe fd buf =
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | 0 -> ()
    | _ -> go ()
  in
  go ()

(* Push out whatever the outboxes still hold — the terminal [Done]
   frames of a cancel-mode teardown — without waiting on slow peers
   past [deadline] seconds. *)
let final_flush t ~deadline =
  let until = Obs.Timer.now_s () +. deadline in
  let rec go () =
    let waiting = List.filter has_output (conns_snapshot t) in
    match waiting with
    | [] -> ()
    | _ when Obs.Timer.now_s () >= until -> ()
    | _ ->
        (match Unix.select [] (List.map (fun s -> s.fd) waiting) [] 0.1 with
        | _, writable, _ ->
            List.iter
              (fun fd ->
                match Hashtbl.find_opt t.endpoints fd with
                | Some (Conn s) -> handle_writable t s
                | Some Pipe | Some (Listener _) | None -> ())
              writable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
  in
  go ()

let run config =
  let sub_m = Mutex.create () in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  (* [notify] runs on worker domains and needs the server record; the
     scheduler needs [notify] at creation.  Tie the knot through an
     Atomic the workers read — it is written before any job can be
     submitted, hence before any notification. *)
  let tie = Atomic.make None in
  let notify_cb n =
    match Atomic.get tie with Some t -> notify t n | None -> ()
  in
  let sched =
    Scheduler.create ~workers:config.workers ~queue_cap:config.queue_cap
      ~notify:notify_cb ()
  in
  let t =
    {
      sched;
      sub_m;
      sessions = Hashtbl.create 64;
      subs = Hashtbl.create 64;
      endpoints = Hashtbl.create 64;
      pipe_w;
      next_sid = 1;
      draining = false;
      drain_mode = `Drain;
    }
  in
  Atomic.set tie (Some t);
  Hashtbl.replace t.endpoints pipe_r Pipe;
  let unix_path = config.socket in
  let listeners = ref [] in
  (match unix_path with
  | Some path ->
      let fd = bind_unix path in
      Hashtbl.replace t.endpoints fd (Listener Rpc_session);
      listeners := fd :: !listeners
  | None -> ());
  (match config.listen with
  | Some hp ->
      let fd = bind_tcp hp in
      Hashtbl.replace t.endpoints fd (Listener Rpc_session);
      listeners := fd :: !listeners
  | None -> ());
  (match config.metrics with
  | Some hp ->
      let fd = bind_tcp hp in
      Hashtbl.replace t.endpoints fd (Listener Metrics_session);
      listeners := fd :: !listeners
  | None -> ());
  (match (unix_path, config.listen) with
  | None, None ->
      List.iter Unix.close !listeners;
      raise (Startup_error "serve needs a unix socket path or --listen")
  | Some _, _ | _, Some _ -> ());
  let buf = Bytes.create 4096 in
  let cleanup () =
    List.iter (fun s -> close_session t s) (conns_snapshot t);
    List.iter
      (fun fd ->
        Hashtbl.remove t.endpoints fd;
        match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
      !listeners;
    (match unix_path with
    | Some path -> (
        match Unix.unlink path with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
    | None -> ());
    Unix.close pipe_r;
    Unix.close pipe_w
  in
  let rec loop () =
    if Atomic.get config.stop > 0 then begin
      t.draining <- true;
      t.drain_mode <- `Cancel
    end;
    let finish_now =
      t.draining
      &&
      match t.drain_mode with
      | `Cancel -> true
      | `Drain -> Scheduler.idle t.sched
    in
    if finish_now then begin
      (* Cancel mode flags every live job and joins the workers — the
         engines notice at the next round boundary, the terminal
         frames land in the outboxes, and the flush below delivers
         them. *)
      Scheduler.shutdown ~mode:t.drain_mode t.sched;
      final_flush t ~deadline:2.0;
      cleanup ();
      match t.drain_mode with `Cancel -> `Signalled | `Drain -> `Completed
    end
    else begin
      let conns = conns_snapshot t in
      let reads =
        (pipe_r :: !listeners)
        @ List.filter_map
            (fun s -> if s.closing then None else Some s.fd)
            conns
      in
      let writes =
        List.filter_map
          (fun s -> if has_output s then Some s.fd else None)
          conns
      in
      (match Unix.select reads writes [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.endpoints fd with
              | Some Pipe -> drain_pipe fd buf
              | Some (Listener kind) -> accept_all t fd kind
              | Some (Conn s) -> handle_readable t s buf
              | None -> ())
            readable;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.endpoints fd with
              | Some (Conn s) -> handle_writable t s
              | Some Pipe | Some (Listener _) | None -> ())
            writable;
          (* Retire sessions whose goodbyes have drained. *)
          List.iter
            (fun s ->
              if
                s.closing
                && (not (has_output s))
                && Hashtbl.mem t.sessions s.sid
              then close_session t s)
            (conns_snapshot t));
      loop ()
    end
  in
  loop ()
