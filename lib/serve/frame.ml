open Dynet.Ops

(* NDJSON framing for dynspread-rpc/v1: one JSON object per line, LF
   terminated.  The splitter is incremental — sessions feed whatever
   the socket handed them and get back the complete lines — and
   bounded, so a peer streaming an endless line cannot grow a session
   buffer without limit: the first frame to exceed [max_frame] is a
   protocol error and the session is torn down. *)

let default_max_frame = 4 * 1024 * 1024

type splitter = {
  buf : Buffer.t;
  max_frame : int;
  mutable poisoned : bool;
}

let splitter ?(max_frame = default_max_frame) () =
  if max_frame < 1 then invalid_arg "Frame.splitter: max_frame must be >= 1";
  { buf = Buffer.create 256; max_frame; poisoned = false }

(* Strip one optional trailing CR so a telnet/CRLF peer still frames
   correctly; embedded CRs are the frame's own business. *)
let chop_cr line =
  let len = String.length line in
  if len > 0 && Char.equal line.[len - 1] '\r' then String.sub line 0 (len - 1)
  else line

let feed t chunk =
  if t.poisoned then Error "frame splitter already failed"
  else begin
    let lines = ref [] in
    let error = ref None in
    let start = ref 0 in
    let n = String.length chunk in
    (try
       for i = 0 to n - 1 do
         if Char.equal chunk.[i] '\n' then begin
           let tail = String.sub chunk !start (i - !start) in
           let line =
             if Buffer.length t.buf = 0 then tail
             else begin
               Buffer.add_string t.buf tail;
               let l = Buffer.contents t.buf in
               Buffer.clear t.buf;
               l
             end
           in
           if String.length line > t.max_frame then begin
             error :=
               Some
                 (Printf.sprintf "frame exceeds %d bytes" t.max_frame);
             raise Exit
           end;
           let line = chop_cr line in
           if String.length line > 0 then lines := line :: !lines;
           start := i + 1
         end
       done
     with Exit -> ());
    match !error with
    | Some e ->
        t.poisoned <- true;
        Error e
    | None ->
        if !start < n then
          Buffer.add_substring t.buf chunk !start (n - !start);
        if Buffer.length t.buf > t.max_frame then begin
          t.poisoned <- true;
          Error (Printf.sprintf "frame exceeds %d bytes" t.max_frame)
        end
        else Ok (List.rev !lines)
  end

let pending t = Buffer.length t.buf
