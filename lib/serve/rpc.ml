(* dynspread-rpc/v1: the NDJSON wire protocol between `dynspread
   submit` (and any other client) and the serve daemon.  Every frame
   in either direction is one JSON object carrying ["rpc"] (the
   version string) and ["op"] (the frame kind); unknown versions and
   ops are rejected with an [Error] frame rather than guessed at.

   Reports and trace events cross the wire as *pre-serialized* JSON
   lines (the ["line"] field, a JSON string): the daemon serializes
   each report exactly once with [Obs.Json.to_string] and the client
   prints the carried string verbatim, so daemon output is
   byte-identical to `dynspread scenario run` by construction — float
   formatting never gets a second chance to drift. *)

let version = "dynspread-rpc/v1"

type submit = {
  tag : string option;  (* client-chosen correlation label *)
  spec : Obs.Json.t;  (* dynspread-scenario/v1 object, unparsed *)
  base_dir : string option;  (* trace paths resolve against this *)
  engine : string option;  (* "fastpath" | "reference" | "soa" *)
  shards : int option;  (* soa shard count *)
  events : bool;  (* stream dynspread-trace/v1 events *)
}

type request =
  | Submit of submit
  | Status of { job : int option }
  | Cancel of { job : int }
  | Subscribe of { job : int; events : bool }
  | Shutdown
  | Ping

type job_view = {
  job : int;
  name : string;
  state : string;  (* "queued" | "running" | "completed" | ... *)
  reports : int;  (* reports streamed so far *)
}

type response =
  | Accepted of { job : int; tag : string option; queue_depth : int }
  | Rejected of { tag : string option; reason : string; queue_depth : int }
  | Error of { reason : string }
  | Status_view of { jobs : job_view list; queue_depth : int; running : int }
  | Cancel_ok of { job : int; was : string }
  | Subscribed of { job : int; events : bool }
  | Event of { job : int; line : string }
  | Report of { job : int; index : int; line : string }
  | Done of { job : int; outcome : string; reports : int;
              reason : string option }
  | Shutting_down
  | Pong

(* {2 Field plumbing} *)

let str_field j name =
  match Obs.Json.member name j with
  | Some (Obs.Json.String s) -> Some s
  | Some _ | None -> None

let int_field j name =
  match Obs.Json.member name j with
  | Some v -> Obs.Json.to_int v
  | None -> None

let bool_field j name =
  match Obs.Json.member name j with
  | Some (Obs.Json.Bool b) -> Some b
  | Some _ | None -> None

let frame op fields =
  Obs.Json.Obj
    (("rpc", Obs.Json.String version) :: ("op", Obs.Json.String op) :: fields)

let opt_str name = function
  | None -> []
  | Some s -> [ (name, Obs.Json.String s) ]

let opt_int name = function
  | None -> []
  | Some i -> [ (name, Obs.Json.Int i) ]

(* {2 Requests} *)

let request_to_json = function
  | Submit { tag; spec; base_dir; engine; shards; events } ->
      frame "submit"
        (opt_str "tag" tag
        @ [ ("spec", spec) ]
        @ opt_str "base_dir" base_dir
        @ opt_str "engine" engine
        @ opt_int "shards" shards
        @ if events then [ ("events", Obs.Json.Bool true) ] else [])
  | Status { job } -> frame "status" (opt_int "job" job)
  | Cancel { job } -> frame "cancel" [ ("job", Obs.Json.Int job) ]
  | Subscribe { job; events } ->
      frame "subscribe"
        (("job", Obs.Json.Int job)
        :: (if events then [ ("events", Obs.Json.Bool true) ] else []))
  | Shutdown -> frame "shutdown" []
  | Ping -> frame "ping" []

let request_to_line r = Obs.Json.to_string (request_to_json r)

let checked_frame line k =
  match Obs.Json.of_string line with
  | Error e -> Result.Error ("malformed frame: " ^ e)
  | Ok j -> (
      match str_field j "rpc" with
      | Some v when String.equal v version -> (
          match str_field j "op" with
          | Some op -> k j op
          | None -> Result.Error "frame has no \"op\"")
      | Some v -> Result.Error ("unsupported rpc version " ^ v)
      | None -> Result.Error "frame has no \"rpc\" version")

let request_of_line line =
  checked_frame line @@ fun j -> function
  | "submit" -> (
      match Obs.Json.member "spec" j with
      | Some (Obs.Json.Obj _ as spec) ->
          Ok
            (Submit
               {
                 tag = str_field j "tag";
                 spec;
                 base_dir = str_field j "base_dir";
                 engine = str_field j "engine";
                 shards = int_field j "shards";
                 events = Option.value (bool_field j "events") ~default:false;
               })
      | Some _ -> Result.Error "submit: \"spec\" must be an object"
      | None -> Result.Error "submit: missing \"spec\"")
  | "status" -> Ok (Status { job = int_field j "job" })
  | "cancel" -> (
      match int_field j "job" with
      | Some job -> Ok (Cancel { job })
      | None -> Result.Error "cancel: missing integer \"job\"")
  | "subscribe" -> (
      match int_field j "job" with
      | Some job ->
          Ok
            (Subscribe
               {
                 job;
                 events = Option.value (bool_field j "events") ~default:false;
               })
      | None -> Result.Error "subscribe: missing integer \"job\"")
  | "shutdown" -> Ok Shutdown
  | "ping" -> Ok Ping
  | op -> Result.Error ("unknown op \"" ^ op ^ "\"")

(* {2 Responses} *)

let job_view_to_json { job; name; state; reports } =
  Obs.Json.Obj
    [
      ("job", Obs.Json.Int job);
      ("name", Obs.Json.String name);
      ("state", Obs.Json.String state);
      ("reports", Obs.Json.Int reports);
    ]

let response_to_json = function
  | Accepted { job; tag; queue_depth } ->
      frame "accepted"
        (("job", Obs.Json.Int job)
        :: (opt_str "tag" tag @ [ ("queue_depth", Obs.Json.Int queue_depth) ]))
  | Rejected { tag; reason; queue_depth } ->
      frame "rejected"
        (opt_str "tag" tag
        @ [
            ("reason", Obs.Json.String reason);
            ("queue_depth", Obs.Json.Int queue_depth);
          ])
  | Error { reason } -> frame "error" [ ("reason", Obs.Json.String reason) ]
  | Status_view { jobs; queue_depth; running } ->
      frame "status"
        [
          ("jobs", Obs.Json.List (List.map job_view_to_json jobs));
          ("queue_depth", Obs.Json.Int queue_depth);
          ("running", Obs.Json.Int running);
        ]
  | Cancel_ok { job; was } ->
      frame "cancel-ok"
        [ ("job", Obs.Json.Int job); ("was", Obs.Json.String was) ]
  | Subscribed { job; events } ->
      frame "subscribed"
        [ ("job", Obs.Json.Int job); ("events", Obs.Json.Bool events) ]
  | Event { job; line } ->
      frame "event"
        [ ("job", Obs.Json.Int job); ("line", Obs.Json.String line) ]
  | Report { job; index; line } ->
      frame "report"
        [
          ("job", Obs.Json.Int job);
          ("index", Obs.Json.Int index);
          ("line", Obs.Json.String line);
        ]
  | Done { job; outcome; reports; reason } ->
      frame "done"
        ([
           ("job", Obs.Json.Int job);
           ("outcome", Obs.Json.String outcome);
           ("reports", Obs.Json.Int reports);
         ]
        @ opt_str "reason" reason)
  | Shutting_down -> frame "shutting-down" []
  | Pong -> frame "pong" []

let response_to_line r = Obs.Json.to_string (response_to_json r)

let req_int j name k =
  match int_field j name with
  | Some v -> k v
  | None ->
      Result.Error
        (Printf.sprintf "frame missing integer \"%s\"" name)

let req_str j name k =
  match str_field j name with
  | Some v -> k v
  | None ->
      Result.Error (Printf.sprintf "frame missing string \"%s\"" name)

let response_of_line line =
  checked_frame line @@ fun j -> function
  | "accepted" ->
      req_int j "job" @@ fun job ->
      req_int j "queue_depth" @@ fun queue_depth ->
      Ok (Accepted { job; tag = str_field j "tag"; queue_depth })
  | "rejected" ->
      req_str j "reason" @@ fun reason ->
      req_int j "queue_depth" @@ fun queue_depth ->
      Ok (Rejected { tag = str_field j "tag"; reason; queue_depth })
  | "error" -> req_str j "reason" @@ fun reason -> Ok (Error { reason })
  | "status" ->
      let jobs =
        match Obs.Json.member "jobs" j with
        | Some (Obs.Json.List l) ->
            List.filter_map
              (fun v ->
                match
                  ( int_field v "job",
                    str_field v "name",
                    str_field v "state",
                    int_field v "reports" )
                with
                | Some job, Some name, Some state, Some reports ->
                    Some { job; name; state; reports }
                | _ -> None)
              l
        | Some _ | None -> []
      in
      req_int j "queue_depth" @@ fun queue_depth ->
      req_int j "running" @@ fun running ->
      Ok (Status_view { jobs; queue_depth; running })
  | "cancel-ok" ->
      req_int j "job" @@ fun job ->
      req_str j "was" @@ fun was -> Ok (Cancel_ok { job; was })
  | "subscribed" ->
      req_int j "job" @@ fun job ->
      Ok
        (Subscribed
           { job; events = Option.value (bool_field j "events") ~default:false })
  | "event" ->
      req_int j "job" @@ fun job ->
      req_str j "line" @@ fun line -> Ok (Event { job; line })
  | "report" ->
      req_int j "job" @@ fun job ->
      req_int j "index" @@ fun index ->
      req_str j "line" @@ fun line -> Ok (Report { job; index; line })
  | "done" ->
      req_int j "job" @@ fun job ->
      req_str j "outcome" @@ fun outcome ->
      req_int j "reports" @@ fun reports ->
      Ok (Done { job; outcome; reports; reason = str_field j "reason" })
  | "shutting-down" -> Ok Shutting_down
  | "pong" -> Ok Pong
  | op -> Result.Error ("unknown op \"" ^ op ^ "\"")
