(* Blocking rpc client for the serve daemon — what `dynspread submit`
   is built from.  One socket, one request in flight at a time; stream
   frames are surfaced through callbacks as they arrive.  Every IO or
   protocol failure is funneled into [Io_error] with a one-line
   diagnostic so the CLI can map it straight to exit code 2. *)

exception Io_error of string

type target = Unix_path of string | Tcp of string * int

type t = { ic : in_channel; oc : out_channel }

let io_error fmt = Printf.ksprintf (fun s -> raise (Io_error s)) fmt

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> io_error "cannot resolve %s" host
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> io_error "cannot resolve %s" host)

let connect target =
  let addr, what =
    match target with
    | Unix_path path -> (Unix.ADDR_UNIX path, path)
    | Tcp (host, port) ->
        (Unix.ADDR_INET (resolve host, port), Printf.sprintf "%s:%d" host port)
  in
  match Unix.open_connection addr with
  | ic, oc -> { ic; oc }
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      io_error "%s: connection refused (is the daemon running?)" what
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      io_error "%s: no such socket (is the daemon running?)" what
  | exception Unix.Unix_error (e, _, _) ->
      io_error "%s: %s" what (Unix.error_message e)

let close t =
  match Unix.shutdown_connection t.ic with
  | () -> close_in_noerr t.ic
  | exception Unix.Unix_error _ -> close_in_noerr t.ic
  | exception Sys_error _ -> close_in_noerr t.ic

let send t req =
  match
    output_string t.oc (Rpc.request_to_line req);
    output_char t.oc '\n';
    flush t.oc
  with
  | () -> ()
  | exception Sys_error e -> io_error "send failed: %s" e
  | exception Unix.Unix_error (e, _, _) ->
      io_error "send failed: %s" (Unix.error_message e)

let recv t =
  match input_line t.ic with
  | exception End_of_file -> io_error "connection closed by daemon"
  | exception Sys_error e -> io_error "recv failed: %s" e
  | line -> (
      match Rpc.response_of_line line with
      | Ok r -> r
      | Error e -> io_error "protocol error: %s" e)

let request t req =
  send t req;
  recv t

(* {2 Conveniences over the request/response pairs} *)

let ping t =
  match request t Rpc.Ping with
  | Rpc.Pong -> ()
  | _ -> io_error "protocol error: expected pong"

let shutdown t =
  match request t Rpc.Shutdown with
  | Rpc.Shutting_down -> ()
  | _ -> io_error "protocol error: expected shutting-down"

let status t ?job () =
  match request t (Rpc.Status { job }) with
  | Rpc.Status_view { jobs; queue_depth; running } ->
      (jobs, queue_depth, running)
  | Rpc.Error { reason } -> io_error "%s" reason
  | _ -> io_error "protocol error: expected status"

let cancel t ~job =
  match request t (Rpc.Cancel { job }) with
  | Rpc.Cancel_ok { was; _ } -> Ok was
  | Rpc.Error { reason } -> Error reason
  | _ -> io_error "protocol error: expected cancel-ok"

type finished = {
  job : int;
  outcome : string;  (* "completed" | "cancelled" | "failed" *)
  reports : int;
  reason : string option;  (* the Failed diagnostic *)
}

let submit_await t sub ~on_event ~on_report =
  send t (Rpc.Submit sub);
  let rec await job =
    match recv t with
    | Rpc.Accepted { job; _ } -> await (Some job)
    | Rpc.Rejected { reason; _ } -> Error ("submission rejected: " ^ reason)
    | Rpc.Error { reason } -> Error reason
    | Rpc.Event { line; _ } ->
        on_event line;
        await job
    | Rpc.Report { index; line; _ } ->
        on_report index line;
        await job
    | Rpc.Done { job; outcome; reports; reason } ->
        Ok { job; outcome; reports; reason }
    | Rpc.Shutting_down ->
        (* The daemon is draining: our accepted job still runs to its
           terminal frame, so keep reading. *)
        await job
    | Rpc.Status_view _ | Rpc.Cancel_ok _ | Rpc.Subscribed _ | Rpc.Pong ->
        await job
  in
  await None
