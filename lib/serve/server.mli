(** The serve daemon: listeners, sessions, and the select event loop.

    A server is one {!Scheduler} (a persistent Domain pool with a
    bounded, client-fair admission queue) fronted by a single-threaded
    [Unix.select] loop speaking {!Rpc} over NDJSON.  It listens on a
    unix-domain socket and/or a TCP endpoint for rpc sessions, and
    optionally on a second TCP endpoint answering HTTP/1.0
    [GET /metrics] with the Prometheus exposition of the scheduler's
    live stats (namespace [dynspread_serve]: queue depth, running
    jobs, per-domain busy seconds, submitted/completed/cancelled/
    failed/rejected counters).

    Shutdown has two shapes.  An rpc [shutdown] frame starts a
    {e drain}: new submissions are rejected, the backlog runs out,
    streams complete, and [run] returns [`Completed].  A signal
    (the handler bumps [config.stop]) starts a {e cancel}: every
    queued and running job's cancel flag is set, the engines stop at
    the next round boundary, terminal [done] frames are flushed, and
    [run] returns [`Signalled].  Either way the unix socket path is
    unlinked and every descriptor closed before returning. *)

exception Startup_error of string
(** Raised by {!run} before the loop starts — bind failures, an
    already-listening daemon on the socket path, unresolvable hosts.
    The message is a one-line diagnostic fit for exit code 2. *)

type config = {
  socket : string option;  (** unix-domain rpc listener path *)
  listen : (string * int) option;  (** tcp rpc listener *)
  metrics : (string * int) option;  (** http/1.0 [GET /metrics] *)
  workers : int;  (** scheduler pool size *)
  queue_cap : int;  (** bounded admission queue *)
  stop : int Atomic.t;  (** signal handlers bump this to request cancel *)
}

val default_config : config
(** [socket = Some "dynspread.sock"], no tcp listeners, 2 workers,
    queue cap 128, a fresh [stop] cell. *)

val run : config -> [ `Completed | `Signalled ]
(** Bind the listeners and serve until shutdown.  At least one of
    [socket]/[listen] must be set.  Blocks the calling thread; worker
    domains are spawned and joined internally.  [`Completed] after an
    rpc-driven drain, [`Signalled] after a [stop]-driven cancel —
    callers map these to exit codes 0 and 130. *)

(**/**)

(* Exposed for the test suite: a stale unix socket path is reclaimed,
   a live one refused. *)
val bind_unix : string -> Unix.file_descr
