let placeholder () = ()
