(** Placeholder component kept so the build graph has a stable root
    library; real shared primitives live in [Dynet]. *)

val placeholder : unit -> unit
