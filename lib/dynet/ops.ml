(* Monomorphic comparison prelude.

   Opening this module shadows [=], [<>] and [compare] with [int]-only
   versions, so any structural comparison of a non-int value becomes a
   type error instead of a silent polymorphic walk (slow on packed
   bitset words, wrong on floats/functional values, and a footgun as
   records grow fields).  dynlint's poly-compare rule enforces that
   every module in the strict libraries either opens this prelude or
   carries a waiver; see DESIGN.md "Static analysis".

   Built on [Int.equal]/[Int.compare] so the file itself contains no
   polymorphic-comparison reference. *)

let ( = ) = Int.equal
let ( <> ) a b = not (Int.equal a b)
let compare = Int.compare

let int_array_equal (a : int array) (b : int array) =
  let n = Array.length a in
  Int.equal n (Array.length b)
  &&
  let rec go i = i >= n || (Int.equal a.(i) b.(i) && go (i + 1)) in
  go 0
