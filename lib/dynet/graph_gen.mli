(** Connected-graph generators.

    All generators return graphs on the node set [{0, ..., n-1}] that
    are {e connected}, because the dynamic network model requires every
    round's graph to be connected.  Randomized generators take an
    explicit {!Rng.t} so oblivious adversaries can pre-commit whole
    sequences reproducibly.

    These are both the building blocks of the oblivious adversaries and
    the initial topologies of the static baseline (Section 1's
    spanning-tree dissemination). *)

val path : n:int -> Graph.t
(** [0 - 1 - 2 - ... - (n-1)]; diameter [n-1] — the worst case that
    makes amortized time Ω(D) but message cost still Ω(n). *)

val cycle : n:int -> Graph.t
(** Ring; requires [n >= 3] to stay simple (falls back to {!path} for
    smaller [n]). *)

val star : n:int -> Graph.t
(** Node 0 is the hub. *)

val clique : n:int -> Graph.t
(** Complete graph: Θ(n²) edges — the topology the paper uses to show
    total message complexity can reach Ω(n³) for unicast. *)

val barbell : n:int -> Graph.t
(** Two cliques of ⌊n/2⌋ and ⌈n/2⌉ nodes joined by one bridge edge; a
    classic bottleneck topology for dissemination. *)

val lollipop : n:int -> Graph.t
(** A clique on ⌈n/2⌉ nodes with a path of the remaining nodes hanging
    off it; slow random-walk escape, fast flooding. *)

val grid : n:int -> Graph.t
(** The densest square-ish 2D mesh on exactly [n] nodes (⌈√n⌉ columns,
    row-major, last row possibly short): diameter Θ(√n), the classic
    middle ground between the path and the expander families. *)

val hypercube : n:int -> Graph.t
(** The hypercube on the largest power of two ≤ [n], with any leftover
    nodes attached to their index modulo the cube size (so the node set
    is always exactly [{0..n-1}] and connected): log-diameter,
    log-degree. *)

val random_tree : Rng.t -> n:int -> Graph.t
(** Random spanning tree by the random-attachment process: a uniform
    permutation π is drawn and node [π(i)] attaches to a uniformly
    random earlier node [π(j)], [j < i].  (Not the uniform distribution
    over spanning trees — random attachment favours low diameters — but
    cheap, connected, and exactly [n-1] edges, which is all the
    adversaries need.) *)

val random_connected : Rng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi [G(n, p)] patched to connectivity by adding the edges of
    a {!random_tree} on top.  Expected ~[p·n(n-1)/2 + n] edges. *)

val random_regularish : Rng.t -> n:int -> d:int -> Graph.t
(** Connected graph with degrees concentrated around [d]: union of a
    random Hamiltonian cycle and [⌈(d-2)/2⌉] random perfect-matching-ish
    edge batches, deduplicated.  Degrees are in [[2, d+2]]. *)

val all_named : (string * (Rng.t -> n:int -> Graph.t)) list
(** Every generator above under a stable name (deterministic ones
    ignore the rng), for table-driven tests. *)
