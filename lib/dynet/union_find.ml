open Ops

type t = {
  parent : int array;
  rank : int array;
  mutable components : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; components = n }

let n t = Array.length t.parent

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ka = t.rank.(ra) and kb = t.rank.(rb) in
    if ka < kb then t.parent.(ra) <- rb
    else if kb < ka then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- ka + 1
    end;
    t.components <- t.components - 1;
    true
  end

let same t a b = find t a = find t b
let count t = t.components

let representatives t =
  let acc = ref [] in
  for i = Array.length t.parent - 1 downto 0 do
    if find t i = i then acc := i :: !acc
  done;
  !acc

let components t =
  let size = Array.length t.parent in
  let buckets = Hashtbl.create 16 in
  for i = size - 1 downto 0 do
    let r = find t i in
    let old = try Hashtbl.find buckets r with Not_found -> [] in
    Hashtbl.replace buckets r (i :: old)
  done;
  representatives t |> List.map (fun r -> Hashtbl.find buckets r)

let copy t =
  {
    parent = Array.copy t.parent;
    rank = Array.copy t.rank;
    components = t.components;
  }
