type t = int

let compare = Int.compare
let equal = Int.equal
let hash (v : t) = v
let pp ppf v = Format.fprintf ppf "v%d" v
let to_int (v : t) = v

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative identifier" else i

let all ~n = List.init n (fun i -> i)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
