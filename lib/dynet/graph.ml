open Ops

(* The snapshot is stored as a sorted array of packed edge keys
   (key = u*n + v for the canonical u < v; see Edge_table) plus the
   precomputed adjacency.  The Edge_set view is materialised lazily:
   the per-round hot paths (engines, ledger deltas, stability) only
   need keys and adjacency, while reporting/tests can still ask for
   the set. *)
type t = {
  n : int;
  keys : int array;
  adj : Node_id.t array array;
  mutable eset : Edge_set.t option;
}

(* Packed keys sort in the same order as Edge.compare (lexicographic
   on canonical endpoints), so a single ascending scan sees each
   row's smaller-side neighbors in order, and a second one the
   larger-side neighbors in order: concatenating the two passes gives
   sorted adjacency without any per-row sort. *)
let adjacency_of_keys n keys =
  let deg = Array.make n 0 in
  Array.iter
    (fun key ->
      let u = key / n and v = key mod n in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    keys;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let next = Array.make n 0 in
  Array.iter
    (fun key ->
      let u = key / n and v = key mod n in
      adj.(v).(next.(v)) <- u;
      next.(v) <- next.(v) + 1)
    keys;
  Array.iter
    (fun key ->
      let u = key / n and v = key mod n in
      adj.(u).(next.(u)) <- v;
      next.(u) <- next.(u) + 1)
    keys;
  adj

let of_sorted_keys ~n ~eset keys =
  { n; keys; adj = adjacency_of_keys n keys; eset }

let make ~n edges =
  if n < 0 then invalid_arg "Graph.make: negative n";
  let keys = Array.make (Edge_set.cardinal edges) 0 in
  let i = ref 0 in
  Edge_set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if v >= n then
        invalid_arg
          (Printf.sprintf "Graph.make: edge endpoint %d out of range (n=%d)" v
             n);
      keys.(!i) <- (u * n) + v;
      incr i)
    edges;
  (* Edge_set iterates in Edge.compare order, so [keys] is sorted. *)
  of_sorted_keys ~n ~eset:(Some edges) keys

let of_table table =
  of_sorted_keys ~n:(Edge_table.n table) ~eset:None
    (Edge_table.sorted_keys table)

let empty ~n = make ~n Edge_set.empty
let n t = t.n

let edges t =
  match t.eset with
  | Some s -> s
  | None ->
      let s =
        Array.fold_left
          (fun acc key -> Edge_set.add_pair (key / t.n) (key mod t.n) acc)
          Edge_set.empty t.keys
      in
      t.eset <- Some s;
      s

let edge_count t = Array.length t.keys

let mem_key keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length keys && keys.(!lo) = key

let mem_edge t u v =
  u <> v
  && u >= 0 && v >= 0 && u < t.n && v < t.n
  &&
  let u, v = if u < v then (u, v) else (v, u) in
  mem_key t.keys ((u * t.n) + v)

let neighbors t v = t.adj.(v)
let degree t v = Array.length t.adj.(v)

let incident_edges t v =
  (* O(degree) via the adjacency row, replacing the O(m) fold over the
     full edge set. *)
  Array.fold_left (fun acc w -> Edge.make v w :: acc) [] t.adj.(v)
  |> List.rev

let max_degree t =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.adj

let fold_nodes f t acc =
  let rec loop v acc = if v >= t.n then acc else loop (v + 1) (f v acc) in
  loop 0 acc

let iter_pairs f t =
  Array.iter (fun key -> f (key / t.n) (key mod t.n)) t.keys

let iter_edges f t = iter_pairs (fun u v -> f (Edge.make u v)) t

let delta_counts ~prev ~cur =
  if prev.n <> cur.n then invalid_arg "Graph.delta_counts: node counts differ";
  if prev == cur || prev.keys == cur.keys then (0, 0)
  else begin
    (* Merge walk over two sorted key arrays. *)
    let a = prev.keys and b = cur.keys in
    let la = Array.length a and lb = Array.length b in
    let i = ref 0 and j = ref 0 in
    let removed = ref 0 and inserted = ref 0 in
    while !i < la && !j < lb do
      let ka = a.(!i) and kb = b.(!j) in
      if ka = kb then begin incr i; incr j end
      else if ka < kb then begin incr removed; incr i end
      else begin incr inserted; incr j end
    done;
    removed := !removed + (la - !i);
    inserted := !inserted + (lb - !j);
    (!inserted, !removed)
  end

let same_edges a b =
  a == b || (a.n = b.n && (a.keys == b.keys || int_array_equal a.keys b.keys))

let bfs t root =
  let dist = Array.make t.n max_int in
  let parent = Array.make t.n None in
  let order = ref [] in
  let q = Queue.create () in
  dist.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order := (v, dist.(v)) :: !order;
    Array.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          parent.(w) <- Some v;
          Queue.add w q
        end)
      t.adj.(v)
  done;
  (List.rev !order, parent, dist)

let bfs_order t root =
  let order, _, _ = bfs t root in
  order

let bfs_tree t root =
  let _, parent, _ = bfs t root in
  parent

let distances t root =
  let _, _, dist = bfs t root in
  dist

let components t =
  let uf = Union_find.create t.n in
  iter_pairs (fun u v -> ignore (Union_find.union uf u v)) t;
  uf

let component_count t = Union_find.count (components t)
let is_connected t = t.n <= 1 || component_count t = 1

let eccentricity t v =
  if not (is_connected t) then
    invalid_arg "Graph.eccentricity: disconnected graph";
  Array.fold_left max 0 (distances t v)

let diameter t =
  if not (is_connected t) then invalid_arg "Graph.diameter: disconnected graph";
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (eccentricity t v)
  done;
  !best

let spanning_forest t =
  let uf = Union_find.create t.n in
  let acc = ref Edge_set.empty in
  iter_pairs
    (fun u v -> if Union_find.union uf u v then acc := Edge_set.add_pair u v !acc)
    t;
  !acc

let connect_components t =
  let uf = components t in
  match Union_find.representatives uf with
  | [] | [ _ ] -> Edge_set.empty
  | first :: rest ->
      let extra, _ =
        List.fold_left
          (fun (acc, prev) rep -> (Edge_set.add_pair prev rep acc, rep))
          (Edge_set.empty, first) rest
      in
      extra

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: node counts differ";
  (* Merge of two sorted key arrays, deduplicated. *)
  let ka = a.keys and kb = b.keys in
  let la = Array.length ka and lb = Array.length kb in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and m = ref 0 in
  while !i < la || !j < lb do
    let take_a =
      !j >= lb || (!i < la && ka.(!i) <= kb.(!j))
    in
    let key = if take_a then ka.(!i) else kb.(!j) in
    if take_a then begin
      incr i;
      if !j < lb && kb.(!j) = key then incr j
    end
    else incr j;
    out.(!m) <- key;
    incr m
  done;
  of_sorted_keys ~n:a.n ~eset:None (Array.sub out 0 !m)

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@ %a@]" t.n (edge_count t)
    Edge_set.pp (edges t)
