type t = {
  n : int;
  edges : Edge_set.t;
  adj : Node_id.t array array;
}

let build_adjacency n edges =
  let deg = Array.make n 0 in
  let bump v = deg.(v) <- deg.(v) + 1 in
  Edge_set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      if v >= n then
        invalid_arg
          (Printf.sprintf "Graph.make: edge endpoint %d out of range (n=%d)" v
             n);
      bump u;
      bump v)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let next = Array.make n 0 in
  (* Edge_set iterates in increasing canonical order, so each adjacency
     array ends up sorted without an extra pass. *)
  Edge_set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      adj.(u).(next.(u)) <- v;
      next.(u) <- next.(u) + 1)
    edges;
  Edge_set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      adj.(v).(next.(v)) <- u;
      next.(v) <- next.(v) + 1)
    edges;
  Array.iter (fun row -> Array.sort Node_id.compare row) adj;
  adj

let make ~n edges =
  if n < 0 then invalid_arg "Graph.make: negative n";
  { n; edges; adj = build_adjacency n edges }

let empty ~n = make ~n Edge_set.empty
let n t = t.n
let edges t = t.edges
let edge_count t = Edge_set.cardinal t.edges
let mem_edge t u v = u <> v && Edge_set.mem_pair u v t.edges
let neighbors t v = t.adj.(v)
let degree t v = Array.length t.adj.(v)

let max_degree t =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.adj

let fold_nodes f t acc =
  let rec loop v acc = if v >= t.n then acc else loop (v + 1) (f v acc) in
  loop 0 acc

let iter_edges f t = Edge_set.iter f t.edges

let bfs t root =
  let dist = Array.make t.n max_int in
  let parent = Array.make t.n None in
  let order = ref [] in
  let q = Queue.create () in
  dist.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order := (v, dist.(v)) :: !order;
    Array.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          parent.(w) <- Some v;
          Queue.add w q
        end)
      t.adj.(v)
  done;
  (List.rev !order, parent, dist)

let bfs_order t root =
  let order, _, _ = bfs t root in
  order

let bfs_tree t root =
  let _, parent, _ = bfs t root in
  parent

let distances t root =
  let _, _, dist = bfs t root in
  dist

let components t =
  let uf = Union_find.create t.n in
  Edge_set.iter
    (fun e ->
      let u, v = Edge.endpoints e in
      ignore (Union_find.union uf u v))
    t.edges;
  uf

let component_count t = Union_find.count (components t)
let is_connected t = t.n <= 1 || component_count t = 1

let eccentricity t v =
  if not (is_connected t) then
    invalid_arg "Graph.eccentricity: disconnected graph";
  Array.fold_left max 0 (distances t v)

let diameter t =
  if not (is_connected t) then invalid_arg "Graph.diameter: disconnected graph";
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (eccentricity t v)
  done;
  !best

let spanning_forest t =
  let uf = Union_find.create t.n in
  Edge_set.fold
    (fun e acc ->
      let u, v = Edge.endpoints e in
      if Union_find.union uf u v then Edge_set.add e acc else acc)
    t.edges Edge_set.empty

let connect_components t =
  let uf = components t in
  match Union_find.representatives uf with
  | [] | [ _ ] -> Edge_set.empty
  | first :: rest ->
      let extra, _ =
        List.fold_left
          (fun (acc, prev) rep -> (Edge_set.add_pair prev rep acc, rep))
          (Edge_set.empty, first) rest
      in
      extra

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: node counts differ";
  make ~n:a.n (Edge_set.union a.edges b.edges)

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@ %a@]" t.n (edge_count t)
    Edge_set.pp t.edges
