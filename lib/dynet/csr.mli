(** Incrementally maintained compressed-sparse-row adjacency.

    The mega-scale engine walks every edge of the round graph each
    round; this flattens {!Graph}'s per-node rows into one contiguous
    [offsets]/[neighbors] pair, reusing the buffers across rounds.
    {!update} is delta-gated: the same physical graph (what
    {!Stability} returns on stable rounds) and structurally unchanged
    edge sets (an empty {!Graph.delta_counts} walk) skip the repack
    entirely, so only rounds with real churn pay O(n + m). *)

type t

val create : n:int -> t

val update : t -> Graph.t -> bool
(** Point the CSR at a round graph; [true] iff a repack happened.
    Allocation-free on the no-repack path, and a repack itself only
    allocates when the edge count outgrew the reused buffer.
    @raise Invalid_argument if the graph's node count differs. *)

val n : t -> int

val entries : t -> int
(** Directed adjacency entries currently packed (2 × edges). *)

val rebuilds : t -> int
(** Number of repacks since creation — the delta-compression
    effectiveness counter (rounds − rebuilds were served for free). *)

val row_start : t -> int -> int
val row_stop : t -> int -> int
(** Row [v]'s neighbors live at indices
    [row_start t v .. row_stop t v - 1], in increasing order. *)

val degree : t -> int -> int

val neighbor : t -> int -> int
(** Flat-index access into the neighbor array (unchecked beyond the
    array bound; callers iterate within a row's start/stop). *)

val iter_row : t -> int -> (int -> unit) -> unit
