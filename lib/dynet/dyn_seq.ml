open Ops

type t = { n : int; rounds : Graph.t array }

let of_graphs = function
  | [] -> invalid_arg "Dyn_seq.of_graphs: empty sequence"
  | g :: _ as gs ->
      let n = Graph.n g in
      List.iter
        (fun g' ->
          if Graph.n g' <> n then
            invalid_arg "Dyn_seq.of_graphs: node counts disagree")
        gs;
      { n; rounds = Array.of_list gs }

let length t = Array.length t.rounds
let n t = t.n

let get t r =
  if r = 0 then Graph.empty ~n:t.n
  else if r >= 1 && r <= length t then t.rounds.(r - 1)
  else invalid_arg "Dyn_seq.get: round out of range"

let insertions t r = Edge_set.diff (Graph.edges (get t r)) (Graph.edges (get t (r - 1)))
let removals t r = Edge_set.diff (Graph.edges (get t (r - 1))) (Graph.edges (get t r))

let sum_over_rounds t f =
  let total = ref 0 in
  for r = 1 to length t do
    total := !total + f t r
  done;
  !total

let tc t = sum_over_rounds t (fun t r -> Edge_set.cardinal (insertions t r))

let total_removals t =
  sum_over_rounds t (fun t r -> Edge_set.cardinal (removals t r))

let all_connected t =
  let ok = ref true in
  for r = 1 to length t do
    if not (Graph.is_connected (get t r)) then ok := false
  done;
  !ok

let is_sigma_stable t ~sigma =
  if sigma < 1 then invalid_arg "Dyn_seq.is_sigma_stable: sigma must be >= 1";
  let x = length t in
  (* Collect every edge ever present, then check its presence runs. *)
  let all_edges =
    Array.fold_left
      (fun acc g -> Edge_set.union acc (Graph.edges g))
      Edge_set.empty t.rounds
  in
  let run_ok e =
    let ok = ref true in
    let run_start = ref 0 in
    (* run_start = 0 means "not currently in a run". *)
    for r = 1 to x do
      let present = Edge_set.mem e (Graph.edges (get t r)) in
      if present && !run_start = 0 then run_start := r;
      if (not present) && !run_start > 0 then begin
        if r - !run_start < sigma then ok := false;
        run_start := 0
      end
    done;
    (* A run still open at round x is accepted regardless of length. *)
    !ok
  in
  Edge_set.for_all run_ok all_edges
