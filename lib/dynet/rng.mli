(** Deterministic, splittable randomness for reproducible experiments.

    Every randomized component of the reproduction — graph generators,
    oblivious adversaries (which must commit to their whole topology
    sequence up front), center self-election and random walks of
    Algorithm 2, and the [K'_v] sampling of the Section-2 lower-bound
    adversary — draws from an explicit [Rng.t].  Runs are therefore
    exactly reproducible from a seed, which the test-suite relies on.

    Splitting derives an independent child stream; the oblivious
    adversary splits once per round so that changing how many random
    bits one round consumes cannot perturb later rounds. *)

type t

val make : seed:int -> t
val split : t -> t
(** A child generator independent of future draws from the parent. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [min 1 (max 0 p)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** A uniform permutation of [0 .. n-1]. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t m n] draws [m] distinct values from
    [0 .. n-1], in increasing order.
    @raise Invalid_argument if [m > n] or [m < 0]. *)
