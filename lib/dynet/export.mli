(** Exports for external tooling: Graphviz DOT for snapshots and CSV
    for dynamic sequences (one row per round with size/delta columns —
    handy for plotting churn profiles). *)

val to_dot : ?name:string -> Graph.t -> string
(** An undirected Graphviz graph; node ids as labels. *)

val seq_to_csv : Dyn_seq.t -> string
(** Columns: [round,edges,insertions,removals,connected]. *)
