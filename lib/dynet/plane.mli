(** Contiguous word planes: [rows] packed bitsets of [width] bits in
    one flat Bigarray of native ints, node-major — the struct-of-arrays
    token storage for the mega-scale engine.

    The packing is {!Bitset}'s (62 usable bits per word), so plane rows
    and [Bitset] values exchange whole words without re-shifting.  Rows
    occupy whole words and never share a word with a neighboring row:
    Domains writing to disjoint row ranges never touch the same memory
    word, which is what makes contiguous node-range sharding sound.

    Bigarray int elements are unboxed, so every accessor here is
    allocation-free; only {!create}, {!extract_row} and {!Pool.alloc}
    allocate. *)

type t

val create : rows:int -> width:int -> t
(** A zeroed plane.  @raise Invalid_argument on negative dimensions. *)

val rows : t -> int
val width : t -> int

val words_per_row : t -> int
(** [ceil (width / Bitset.bpw)] — the row stride in words. *)

val clear : t -> unit
(** Zero every row. *)

val mem : t -> int -> int -> bool
(** [mem t row bit].  Row and bit are range-checked — on a borrowed
    {!sub} slice the row check fences every access inside the slice. *)

val set : t -> int -> int -> unit
(** In-place insert, range-checked like {!mem}. *)

val unsafe_mem : t -> int -> int -> bool
(** Unchecked {!mem} for innermost loops whose row is already bounded
    by a shard range.  Only meaningful on root planes. *)

val unsafe_set : t -> int -> int -> unit
(** Unchecked {!set}, same contract as {!unsafe_mem}. *)

val row_popcount : t -> int -> int
val row_clear : t -> int -> unit

val load_row : t -> int -> Bitset.t -> unit
(** [load_row t row bs] overwrites row [row] with [bs]'s words.  The
    bitset capacity must equal the plane width.  Copies; retains no
    reference to [bs]. *)

val extract_row : t -> int -> Bitset.t
(** A {e detached} copy of a row as a fresh bitset.  Never a view:
    aliasing a mutable plane row into a copy-on-write [Bitset] (as the
    protocols' persistent state masks) would let later in-place round
    updates rewrite supposedly immutable values — the word-plane
    boundary is always crossed by copying. *)

val union_row_into : t -> src:int -> dst:int -> unit
(** In-place word-wide union of row [src] into row [dst]. *)

val union_row_from : t -> int -> Bitset.t -> unit
(** In-place union of a bitset into a row (capacity must equal the
    plane width). *)

val sub : t -> row:int -> rows:int -> t
(** A borrowed slice sharing the backing storage: rows
    [row .. row+rows-1] renumbered from 0.  The slice's own bounds
    checks make it impossible to reach a sibling's rows through it —
    the per-shard write window of the sharded engine. *)

module Pool : sig
  (** A bump allocator carving sibling planes out of one backing
      buffer — the layout under which a leak across a run's plane
      boundary would corrupt a {e different} run's state, which the
      regression tests pin down. *)

  type plane := t
  type t

  val create : ?capacity_words:int -> unit -> t

  val alloc : t -> rows:int -> width:int -> plane
  (** A zeroed plane carved from the pool (grown if needed).  Planes
      allocated from one pool are siblings in the same backing
      buffer. *)

  val reset : t -> unit
  (** Forget all allocations; previously returned planes must no
      longer be used (their storage will be handed out again). *)
end
