module S = Set.Make (Edge)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let cardinal = S.cardinal
let mem = S.mem
let add = S.add
let remove = S.remove
let singleton = S.singleton
let union = S.union
let inter = S.inter
let diff = S.diff
let equal = S.equal
let subset = S.subset
let of_list = S.of_list
let to_list = S.elements
let iter = S.iter
let fold = S.fold
let filter = S.filter
let for_all = S.for_all
let exists = S.exists
let choose_opt = S.choose_opt
let add_pair u v s = S.add (Edge.make u v) s
let mem_pair u v s = S.mem (Edge.make u v) s

let incident_to x s =
  S.fold (fun e acc -> if Edge.incident e x then e :: acc else acc) s []

let pp ppf s =
  Format.fprintf ppf "@[<hov 1>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Edge.pp)
    (to_list s)
