open Ops

type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
}

let degree_stats g =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Graph_metrics.degree_stats: empty node set";
  let mn = ref max_int and mx = ref 0 and total = ref 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    if d < !mn then mn := d;
    if d > !mx then mx := d;
    total := !total + d
  done;
  {
    min_degree = !mn;
    max_degree = !mx;
    mean_degree = float_of_int !total /. float_of_int n;
  }

let clustering_coefficient g =
  let n = Graph.n g in
  if n = 0 then 0.
  else begin
    let total = ref 0. in
    for v = 0 to n - 1 do
      let neighbors = Graph.neighbors g v in
      let d = Array.length neighbors in
      if d >= 2 then begin
        let links = ref 0 in
        for i = 0 to d - 1 do
          for j = i + 1 to d - 1 do
            if Graph.mem_edge g neighbors.(i) neighbors.(j) then incr links
          done
        done;
        total := !total +. (2. *. float_of_int !links /. float_of_int (d * (d - 1)))
      end
    done;
    !total /. float_of_int n
  end

let mean_distance g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Graph_metrics.mean_distance: need n >= 2";
  if not (Graph.is_connected g) then
    invalid_arg "Graph_metrics.mean_distance: disconnected graph";
  let total = ref 0 in
  for v = 0 to n - 1 do
    Array.iter (fun d -> total := !total + d) (Graph.distances g v)
  done;
  float_of_int !total /. float_of_int (n * (n - 1))

type churn_stats = {
  rounds : int;
  tc : int;
  removals : int;
  mean_edges : float;
  insertions_per_round : float;
  turnover : float;
}

let churn_stats seq =
  let rounds = Dyn_seq.length seq in
  let tc = Dyn_seq.tc seq in
  let removals = Dyn_seq.total_removals seq in
  let total_edges = ref 0 in
  for r = 1 to rounds do
    total_edges := !total_edges + Graph.edge_count (Dyn_seq.get seq r)
  done;
  let mean_edges = float_of_int !total_edges /. float_of_int (max 1 rounds) in
  (* The first round inserts the whole graph; exclude it so a static
     schedule reads as zero turnover. *)
  let steady_insertions =
    float_of_int (tc - Graph.edge_count (Dyn_seq.get seq 1))
    /. float_of_int (max 1 (rounds - 1))
  in
  {
    rounds;
    tc;
    removals;
    mean_edges;
    insertions_per_round = steady_insertions;
    turnover = (if mean_edges > 0. then steady_insertions /. mean_edges else 0.);
  }
