let path ~n =
  let edges = ref Edge_set.empty in
  for i = 0 to n - 2 do
    edges := Edge_set.add_pair i (i + 1) !edges
  done;
  Graph.make ~n !edges

let cycle ~n =
  if n < 3 then path ~n
  else begin
    let edges = ref Edge_set.empty in
    for i = 0 to n - 2 do
      edges := Edge_set.add_pair i (i + 1) !edges
    done;
    edges := Edge_set.add_pair (n - 1) 0 !edges;
    Graph.make ~n !edges
  end

let star ~n =
  let edges = ref Edge_set.empty in
  for i = 1 to n - 1 do
    edges := Edge_set.add_pair 0 i !edges
  done;
  Graph.make ~n !edges

let clique ~n =
  let edges = ref Edge_set.empty in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := Edge_set.add_pair i j !edges
    done
  done;
  Graph.make ~n !edges

let clique_edges lo hi acc =
  let acc = ref acc in
  for i = lo to hi do
    for j = i + 1 to hi do
      acc := Edge_set.add_pair i j !acc
    done
  done;
  !acc

let barbell ~n =
  if n < 2 then path ~n
  else begin
    let half = n / 2 in
    let edges = clique_edges 0 (half - 1) Edge_set.empty in
    let edges = clique_edges half (n - 1) edges in
    let edges = Edge_set.add_pair (half - 1) half edges in
    Graph.make ~n edges
  end

let lollipop ~n =
  if n < 2 then path ~n
  else begin
    let head = (n + 1) / 2 in
    let edges = clique_edges 0 (head - 1) Edge_set.empty in
    let edges = ref edges in
    for i = head - 1 to n - 2 do
      edges := Edge_set.add_pair i (i + 1) !edges
    done;
    Graph.make ~n !edges
  end

let grid ~n =
  if n < 2 then path ~n
  else begin
    let cols = int_of_float (ceil (sqrt (float_of_int n))) in
    let edges = ref Edge_set.empty in
    for v = 0 to n - 1 do
      let r = v / cols and c = v mod cols in
      if c + 1 < cols && v + 1 < n then
        edges := Edge_set.add_pair v (v + 1) !edges;
      if (r + 1) * cols + c < n then
        edges := Edge_set.add_pair v (v + cols) !edges
    done;
    Graph.make ~n !edges
  end

let hypercube ~n =
  if n < 2 then path ~n
  else begin
    let dim =
      let rec loop d = if 1 lsl (d + 1) <= n then loop (d + 1) else d in
      loop 0
    in
    let cube = 1 lsl dim in
    let edges = ref Edge_set.empty in
    for v = 0 to cube - 1 do
      for b = 0 to dim - 1 do
        let w = v lxor (1 lsl b) in
        if w > v then edges := Edge_set.add_pair v w !edges
      done
    done;
    for v = cube to n - 1 do
      edges := Edge_set.add_pair v (v mod cube) !edges
    done;
    Graph.make ~n !edges
  end

let random_tree rng ~n =
  if n <= 1 then Graph.empty ~n
  else begin
    let order = Rng.permutation rng n in
    let edges = ref Edge_set.empty in
    for i = 1 to n - 1 do
      let attach_to = order.(Rng.int rng i) in
      edges := Edge_set.add_pair order.(i) attach_to !edges
    done;
    Graph.make ~n !edges
  end

let random_connected rng ~n ~p =
  let edges = ref (Graph.edges (random_tree rng ~n)) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := Edge_set.add_pair i j !edges
    done
  done;
  Graph.make ~n !edges

let random_regularish rng ~n ~d =
  if n <= 2 then path ~n
  else begin
    let edges = ref (Graph.edges (cycle ~n)) in
    (* Renumber a random Hamiltonian cycle instead of the canonical one,
       then overlay matching batches built from random permutations. *)
    let perm = Rng.permutation rng n in
    let cyc = ref Edge_set.empty in
    for i = 0 to n - 1 do
      cyc := Edge_set.add_pair perm.(i) perm.((i + 1) mod n) !cyc
    done;
    edges := !cyc;
    let batches = max 0 ((d - 2 + 1) / 2) in
    for _ = 1 to batches do
      let m = Rng.permutation rng n in
      let i = ref 0 in
      while !i + 1 < n do
        if m.(!i) <> m.(!i + 1) then
          edges := Edge_set.add_pair m.(!i) m.(!i + 1) !edges;
        i := !i + 2
      done
    done;
    Graph.make ~n !edges
  end

let all_named =
  [
    ("path", fun (_ : Rng.t) ~n -> path ~n);
    ("cycle", fun (_ : Rng.t) ~n -> cycle ~n);
    ("star", fun (_ : Rng.t) ~n -> star ~n);
    ("clique", fun (_ : Rng.t) ~n -> clique ~n);
    ("barbell", fun (_ : Rng.t) ~n -> barbell ~n);
    ("lollipop", fun (_ : Rng.t) ~n -> lollipop ~n);
    ("grid", fun (_ : Rng.t) ~n -> grid ~n);
    ("hypercube", fun (_ : Rng.t) ~n -> hypercube ~n);
    ("random-tree", fun rng ~n -> random_tree rng ~n);
    ("random-connected", fun rng ~n -> random_connected rng ~n ~p:0.1);
    ("random-regularish", fun rng ~n -> random_regularish rng ~n ~d:4);
  ]
