open Ops

(* All builders accumulate into an int-keyed Edge_table and construct
   the snapshot through Graph.of_table: O(1) amortised inserts and no
   balanced-tree churn.  RNG draw sequences are identical to the
   Edge_set-based versions, so fixed-seed runs reproduce bit-for-bit. *)

let table ~n ?size_hint () = Edge_table.create ~n ?size_hint ()

let path ~n =
  let t = table ~n ~size_hint:n () in
  for i = 0 to n - 2 do
    Edge_table.add_pair t i (i + 1)
  done;
  Graph.of_table t

let cycle ~n =
  if n < 3 then path ~n
  else begin
    let t = table ~n ~size_hint:n () in
    for i = 0 to n - 2 do
      Edge_table.add_pair t i (i + 1)
    done;
    Edge_table.add_pair t (n - 1) 0;
    Graph.of_table t
  end

let star ~n =
  let t = table ~n ~size_hint:n () in
  for i = 1 to n - 1 do
    Edge_table.add_pair t 0 i
  done;
  Graph.of_table t

let add_clique t lo hi =
  for i = lo to hi do
    for j = i + 1 to hi do
      Edge_table.add_pair t i j
    done
  done

let clique ~n =
  let t = table ~n ~size_hint:(n * n) () in
  add_clique t 0 (n - 1);
  Graph.of_table t

let barbell ~n =
  if n < 2 then path ~n
  else begin
    let half = n / 2 in
    let t = table ~n ~size_hint:((n * n / 2) + 1) () in
    add_clique t 0 (half - 1);
    add_clique t half (n - 1);
    Edge_table.add_pair t (half - 1) half;
    Graph.of_table t
  end

let lollipop ~n =
  if n < 2 then path ~n
  else begin
    let head = (n + 1) / 2 in
    let t = table ~n ~size_hint:((n * n / 2) + 1) () in
    add_clique t 0 (head - 1);
    for i = head - 1 to n - 2 do
      Edge_table.add_pair t i (i + 1)
    done;
    Graph.of_table t
  end

let grid ~n =
  if n < 2 then path ~n
  else begin
    let cols = int_of_float (ceil (sqrt (float_of_int n))) in
    let t = table ~n ~size_hint:(2 * n) () in
    for v = 0 to n - 1 do
      let r = v / cols and c = v mod cols in
      if c + 1 < cols && v + 1 < n then Edge_table.add_pair t v (v + 1);
      if (r + 1) * cols + c < n then Edge_table.add_pair t v (v + cols)
    done;
    Graph.of_table t
  end

let hypercube ~n =
  if n < 2 then path ~n
  else begin
    let dim =
      let rec loop d = if 1 lsl (d + 1) <= n then loop (d + 1) else d in
      loop 0
    in
    let cube = 1 lsl dim in
    let t = table ~n ~size_hint:(n * (dim + 1)) () in
    for v = 0 to cube - 1 do
      for b = 0 to dim - 1 do
        let w = v lxor (1 lsl b) in
        if w > v then Edge_table.add_pair t v w
      done
    done;
    for v = cube to n - 1 do
      Edge_table.add_pair t v (v mod cube)
    done;
    Graph.of_table t
  end

(* Random-tree edges into an existing table; same draws as the old
   Edge_set-based builder. *)
let add_random_tree t rng ~n =
  let order = Rng.permutation rng n in
  for i = 1 to n - 1 do
    let attach_to = order.(Rng.int rng i) in
    Edge_table.add_pair t order.(i) attach_to
  done

let random_tree rng ~n =
  if n <= 1 then Graph.empty ~n
  else begin
    let t = table ~n ~size_hint:n () in
    add_random_tree t rng ~n;
    Graph.of_table t
  end

let random_connected rng ~n ~p =
  if n <= 1 then Graph.empty ~n
  else begin
    let t = table ~n ~size_hint:(2 * n) () in
    add_random_tree t rng ~n;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rng.bernoulli rng p then Edge_table.add_pair t i j
      done
    done;
    Graph.of_table t
  end

let random_regularish rng ~n ~d =
  if n <= 2 then path ~n
  else begin
    (* Renumber a random Hamiltonian cycle instead of the canonical one,
       then overlay matching batches built from random permutations. *)
    let t = table ~n ~size_hint:(n * (d + 1)) () in
    let perm = Rng.permutation rng n in
    for i = 0 to n - 1 do
      Edge_table.add_pair t perm.(i) perm.((i + 1) mod n)
    done;
    let batches = max 0 ((d - 2 + 1) / 2) in
    for _ = 1 to batches do
      let m = Rng.permutation rng n in
      let i = ref 0 in
      while !i + 1 < n do
        if m.(!i) <> m.(!i + 1) then Edge_table.add_pair t m.(!i) m.(!i + 1);
        i := !i + 2
      done
    done;
    Graph.of_table t
  end

let all_named =
  [
    ("path", fun (_ : Rng.t) ~n -> path ~n);
    ("cycle", fun (_ : Rng.t) ~n -> cycle ~n);
    ("star", fun (_ : Rng.t) ~n -> star ~n);
    ("clique", fun (_ : Rng.t) ~n -> clique ~n);
    ("barbell", fun (_ : Rng.t) ~n -> barbell ~n);
    ("lollipop", fun (_ : Rng.t) ~n -> lollipop ~n);
    ("grid", fun (_ : Rng.t) ~n -> grid ~n);
    ("hypercube", fun (_ : Rng.t) ~n -> hypercube ~n);
    ("random-tree", fun rng ~n -> random_tree rng ~n);
    ("random-connected", fun rng ~n -> random_connected rng ~n ~p:0.1);
    ("random-regularish", fun rng ~n -> random_regularish rng ~n ~d:4);
  ]
