(** Monomorphic comparison prelude.

    [open Ops] (or [open Dynet.Ops] outside dynet) shadows the
    polymorphic [=], [<>] and [compare] with [int]-only versions:
    comparing anything but ints then fails to typecheck, and the
    comparisons that remain compile to direct integer instructions
    rather than [caml_compare] calls.  Node ids, rounds, token uids and
    packed bitset words are all ints, so this covers the hot paths.

    For the few structural comparisons the code genuinely needs, use a
    typed equality ([String.equal], [Option.is_none], pattern matches)
    or {!int_array_equal} below.  dynlint's poly-compare rule keeps the
    discipline honest. *)

val ( = ) : int -> int -> bool
val ( <> ) : int -> int -> bool
val compare : int -> int -> int

val int_array_equal : int array -> int array -> bool
(** Length and element-wise equality, short-circuiting.  Replaces
    polymorphic [=] on [int array] (bitset words, adjacency offsets)
    with a loop the compiler unboxes. *)
