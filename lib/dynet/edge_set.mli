(** Persistent sets of undirected edges.

    The dynamic-network model of the paper works with per-round edge
    sets [E_r] and their deltas [E⁺_r = E_r \ E_{r-1}] (insertions) and
    [E⁻_r = E_{r-1} \ E_r] (removals).  This module provides the set
    algebra those definitions need, plus helpers used by graph
    construction and the adversaries. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val mem : Edge.t -> t -> bool
val add : Edge.t -> t -> t
val remove : Edge.t -> t -> t
val singleton : Edge.t -> t
val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a \ b]; [diff e_r e_{r-1}] is the paper's [E⁺_r]. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
val of_list : Edge.t list -> t
val to_list : t -> Edge.t list
(** Edges in increasing {!Edge.compare} order. *)

val iter : (Edge.t -> unit) -> t -> unit
val fold : (Edge.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Edge.t -> bool) -> t -> t
val for_all : (Edge.t -> bool) -> t -> bool
val exists : (Edge.t -> bool) -> t -> bool
val choose_opt : t -> Edge.t option

val add_pair : Node_id.t -> Node_id.t -> t -> t
(** [add_pair u v s] adds the canonical edge [{u, v}]. *)

val mem_pair : Node_id.t -> Node_id.t -> t -> bool

val incident_to : Node_id.t -> t -> Edge.t list
(** All edges of the set incident to the given node (linear scan;
    intended for tests and small adversary bookkeeping — use
    {!Graph.neighbors} for hot paths). *)

val pp : Format.formatter -> t -> unit
