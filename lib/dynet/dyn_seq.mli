(** Recorded dynamic graphs: a finite round-indexed sequence
    [G_1, ..., G_x] over a fixed node set, with [G_0 = (V, ∅)] implicit
    as in the paper.

    Provides the quantities of Section 1.3:
    - the per-round deltas [E⁺_r = E_r \ E_{r-1}] and
      [E⁻_r = E_{r-1} \ E_r];
    - the number of topological changes [TC(E) = Σ_r |E⁺_r|] that the
      adversary-competitive measure (Definition 1.3) charges to the
      adversary;
    - the σ-edge-stability predicate.

    The simulation engines account these quantities incrementally; this
    module is the reference implementation the tests compare against,
    and the carrier for pre-committed oblivious adversary schedules. *)

type t

val of_graphs : Graph.t list -> t
(** [of_graphs [g1; ...; gx]] records the rounds in order.
    @raise Invalid_argument if the list is empty or node counts
    disagree. *)

val length : t -> int
(** Number of recorded rounds [x]. *)

val n : t -> int
(** Number of nodes. *)

val get : t -> int -> Graph.t
(** [get t r] is [G_r] for [1 <= r <= length t]; [get t 0] is the empty
    graph [G_0].
    @raise Invalid_argument outside [0 .. length t]. *)

val insertions : t -> int -> Edge_set.t
(** [insertions t r = E⁺_r]; defined for [1 <= r <= length t]. *)

val removals : t -> int -> Edge_set.t
(** [removals t r = E⁻_r]. *)

val tc : t -> int
(** [TC(E) = Σ_{r=1..x} |E⁺_r|]. *)

val total_removals : t -> int
(** [Σ_r |E⁻_r|]; always [<= tc t] because the execution starts from
    the empty graph. *)

val all_connected : t -> bool
(** Whether every recorded round is connected (the model's standing
    assumption for [r >= 1]). *)

val is_sigma_stable : t -> sigma:int -> bool
(** Whether the recorded sequence is σ-edge-stable: every maximal run
    of consecutive presence of an edge lasts at least [sigma] rounds.
    A run truncated by the end of the recording is accepted (the
    execution could have continued).  Every sequence is 1-edge
    stable. *)
