(** Immutable snapshot of a single round's communication graph [G_r].

    A graph is a simple undirected graph over the fixed node set
    [{0, ..., n-1}].  Construction validates that all endpoints are in
    range; adjacency is precomputed so that [neighbors] — the hot call
    of the simulation engines — is O(1).

    The dynamic network model requires every [G_r] (r ≥ 1) to be
    connected; {!is_connected} is the check the adversaries and the
    test-suite use to enforce it. *)

type t

val make : n:int -> Edge_set.t -> t
(** [make ~n edges] builds the snapshot.
    @raise Invalid_argument if [n < 0] or an endpoint is ≥ [n]. *)

val of_table : Edge_table.t -> t
(** Fast-path constructor from an int-keyed edge table (the graph
    generators and the stability wrapper accumulate into one).  The
    sorted packed keys are used directly, so adjacency is built without
    ever materialising an [Edge_set]; the set view is created lazily on
    the first call to {!edges}. *)

val empty : n:int -> t
(** The empty graph [(V, ∅)] — the paper's [G_0]. *)

val n : t -> int
(** Number of nodes. *)

val edges : t -> Edge_set.t
(** The edge set view.  Materialised lazily (and memoised) when the
    graph was built through {!of_table}; O(1) otherwise. *)

val edge_count : t -> int

val mem_edge : t -> Node_id.t -> Node_id.t -> bool
(** Binary search over the packed edge keys: O(log m), allocation
    free. *)

val delta_counts : prev:t -> cur:t -> int * int
(** [(inserted, removed)] edge counts between two snapshots on the same
    node set — a single merge walk over the sorted key arrays, with a
    physical-equality fast path returning [(0, 0)] when the adversary
    reused the previous round's graph.
    @raise Invalid_argument if node counts differ. *)

val same_edges : t -> t -> bool
(** Structural edge-set equality (with a physical-equality fast
    path). *)

val neighbors : t -> Node_id.t -> Node_id.t array
(** Neighbors in increasing order.  The returned array is owned by the
    graph: callers must not mutate it. *)

val degree : t -> Node_id.t -> int
val max_degree : t -> int

val incident_edges : t -> Node_id.t -> Edge.t list
(** Edges incident to the node, in increasing neighbor order — O(deg)
    via the adjacency row.  Prefer this over
    [Edge_set.incident_to (edges g) v], which folds over all m
    edges. *)

val fold_nodes : (Node_id.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter_pairs : (Node_id.t -> Node_id.t -> unit) -> t -> unit
(** Canonical endpoint pairs ([u < v]) in {!Edge.compare} order,
    without allocating [Edge.t] values — the fast-path iteration. *)

val iter_edges : (Edge.t -> unit) -> t -> unit

val bfs_order : t -> Node_id.t -> (Node_id.t * int) list
(** [(node, dist)] pairs reachable from the root, in BFS order
    (root first, distance 0). *)

val bfs_tree : t -> Node_id.t -> Node_id.t option array
(** Parent pointers of a BFS tree rooted at the given node; [None] for
    the root and for unreachable nodes. *)

val distances : t -> Node_id.t -> int array
(** Single-source shortest-path distances; [max_int] if unreachable. *)

val components : t -> Union_find.t
(** Union-find structure of the graph's connected components. *)

val component_count : t -> int
val is_connected : t -> bool
(** [true] iff the graph has exactly one connected component.  The
    empty node set and the single node are connected. *)

val eccentricity : t -> Node_id.t -> int
(** Max finite distance from the node.
    @raise Invalid_argument if the graph is disconnected. *)

val diameter : t -> int
(** Exact diameter (max over all BFS roots).
    @raise Invalid_argument if the graph is disconnected. *)

val spanning_forest : t -> Edge_set.t
(** Edges of an arbitrary spanning forest (spanning tree per
    component). *)

val connect_components : t -> Edge_set.t
(** A minimal set of extra edges ([component_count - 1] of them,
    chaining component representatives) whose addition makes the graph
    connected.  Empty if already connected. *)

val union : t -> t -> t
(** Edge-union of two graphs on the same node set.
    @raise Invalid_argument if node counts differ. *)

val pp : Format.formatter -> t -> unit
