(** Immutable snapshot of a single round's communication graph [G_r].

    A graph is a simple undirected graph over the fixed node set
    [{0, ..., n-1}].  Construction validates that all endpoints are in
    range; adjacency is precomputed so that [neighbors] — the hot call
    of the simulation engines — is O(1).

    The dynamic network model requires every [G_r] (r ≥ 1) to be
    connected; {!is_connected} is the check the adversaries and the
    test-suite use to enforce it. *)

type t

val make : n:int -> Edge_set.t -> t
(** [make ~n edges] builds the snapshot.
    @raise Invalid_argument if [n < 0] or an endpoint is ≥ [n]. *)

val empty : n:int -> t
(** The empty graph [(V, ∅)] — the paper's [G_0]. *)

val n : t -> int
(** Number of nodes. *)

val edges : t -> Edge_set.t
val edge_count : t -> int
val mem_edge : t -> Node_id.t -> Node_id.t -> bool

val neighbors : t -> Node_id.t -> Node_id.t array
(** Neighbors in increasing order.  The returned array is owned by the
    graph: callers must not mutate it. *)

val degree : t -> Node_id.t -> int
val max_degree : t -> int

val fold_nodes : (Node_id.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (Edge.t -> unit) -> t -> unit

val bfs_order : t -> Node_id.t -> (Node_id.t * int) list
(** [(node, dist)] pairs reachable from the root, in BFS order
    (root first, distance 0). *)

val bfs_tree : t -> Node_id.t -> Node_id.t option array
(** Parent pointers of a BFS tree rooted at the given node; [None] for
    the root and for unreachable nodes. *)

val distances : t -> Node_id.t -> int array
(** Single-source shortest-path distances; [max_int] if unreachable. *)

val components : t -> Union_find.t
(** Union-find structure of the graph's connected components. *)

val component_count : t -> int
val is_connected : t -> bool
(** [true] iff the graph has exactly one connected component.  The
    empty node set and the single node are connected. *)

val eccentricity : t -> Node_id.t -> int
(** Max finite distance from the node.
    @raise Invalid_argument if the graph is disconnected. *)

val diameter : t -> int
(** Exact diameter (max over all BFS roots).
    @raise Invalid_argument if the graph is disconnected. *)

val spanning_forest : t -> Edge_set.t
(** Edges of an arbitrary spanning forest (spanning tree per
    component). *)

val connect_components : t -> Edge_set.t
(** A minimal set of extra edges ([component_count - 1] of them,
    chaining component representatives) whose addition makes the graph
    connected.  Empty if already connected. *)

val union : t -> t -> t
(** Edge-union of two graphs on the same node set.
    @raise Invalid_argument if node counts differ. *)

val pp : Format.formatter -> t -> unit
