open Ops

(* Compressed sparse rows over a round graph's adjacency: one flat
   [neighbors] array indexed by [offsets], rebuilt only when the round
   graph actually changed.  [Graph] already keeps per-node rows; the
   CSR flattens them into one allocation-stable buffer so the engine's
   per-edge loop walks contiguous memory with no per-node array loads
   and no per-round allocation on stable rounds.

   The rebuild gate is delta-driven: [Stability] hands back the same
   physical graph on stable rounds, [Graph.delta_counts]' merge walk
   covers adversaries that rebuilt an identical edge set, and only a
   round whose delta is non-empty pays the O(n + m) repack (into
   buffers reused across rounds, grown geometrically). *)

type t = {
  n : int;
  offsets : int array;
  (* n + 1 entries; row v is neighbors.(offsets.(v)) .. exclusive end. *)
  mutable neighbors : int array;
  mutable m2 : int;
  (* directed entry count currently packed = 2 * edges *)
  mutable last : Graph.t option;
  mutable rebuilds : int;
}

let create ~n =
  if n < 0 then invalid_arg "Csr.create: negative n";
  {
    n;
    offsets = Array.make (n + 1) 0;
    neighbors = [||];
    m2 = 0;
    last = None;
    rebuilds = 0;
  }

let n t = t.n
let entries t = t.m2
let rebuilds t = t.rebuilds

let rebuild t g =
  let m2 = 2 * Graph.edge_count g in
  if Array.length t.neighbors < m2 then
    t.neighbors <- Array.make (max m2 (2 * Array.length t.neighbors)) 0;
  let off = ref 0 in
  for v = 0 to t.n - 1 do
    t.offsets.(v) <- !off;
    let row = Graph.neighbors g v in
    let d = Array.length row in
    Array.blit row 0 t.neighbors !off d;
    off := !off + d
  done;
  t.offsets.(t.n) <- !off;
  t.m2 <- m2;
  t.rebuilds <- t.rebuilds + 1

let update t g =
  if Graph.n g <> t.n then
    invalid_arg
      (Printf.sprintf "Csr.update: graph has n = %d, csr has n = %d"
         (Graph.n g) t.n);
  let changed =
    match t.last with
    | None -> true
    | Some prev ->
        (not (prev == g))
        &&
        let inserted, removed = Graph.delta_counts ~prev ~cur:g in
        inserted <> 0 || removed <> 0
  in
  if changed then rebuild t g;
  (* Re-wrap only when the graph is actually new: the stable-round
     path must not allocate, and [Some g] is a fresh block. *)
  (match t.last with
  | Some prev when prev == g -> ()
  | Some _ | None -> t.last <- Some g);
  changed

let row_start t v = t.offsets.(v) [@@dynlint.hot]
let row_stop t v = t.offsets.(v + 1) [@@dynlint.hot]
let degree t v = t.offsets.(v + 1) - t.offsets.(v) [@@dynlint.hot]

let neighbor t i = Array.unsafe_get t.neighbors i
[@@dynlint.hot]
[@@dynlint.unsafe_ok "caller contract: i lies in [row_start v, row_stop v) \
                      of the same rebuild, and offsets end at the length \
                      of neighbors"]

let iter_row t v f =
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f (Array.unsafe_get t.neighbors i)
  done
[@@dynlint.hot]
