(** Disjoint-set forest (union–find) over dense node identifiers.

    Used wherever the reproduction needs connected components fast:
    the strongly adaptive lower-bound adversary of Section 2 must, every
    round, compute the components of the graph induced by the free edges
    (Lemma 2.1/2.2) and then connect them with the minimum number of
    non-free edges.  Path compression + union by rank give effectively
    constant-time operations. *)

type t

val create : int -> t
(** [create n] makes [n] singleton components [{0} ... {n-1}]. *)

val n : t -> int
(** Number of elements (not components). *)

val find : t -> Node_id.t -> Node_id.t
(** Canonical representative of the element's component. *)

val union : t -> Node_id.t -> Node_id.t -> bool
(** Merge the two components; returns [true] iff they were distinct
    (i.e. the union reduced the component count). *)

val same : t -> Node_id.t -> Node_id.t -> bool

val count : t -> int
(** Current number of components. *)

val representatives : t -> Node_id.t list
(** One canonical representative per component, in increasing order. *)

val components : t -> Node_id.t list list
(** All components as lists of members; components ordered by their
    representative, members in increasing order. *)

val copy : t -> t
