open Ops

(* 62 bits per word keeps every word a non-negative OCaml immediate,
   so shifts and masks never touch the tag or sign bit. *)
let bpw = 62

type t = { cap : int; words : int array }

let words_for cap = (cap + bpw - 1) / bpw

let create cap =
  if cap < 0 then invalid_arg "Bitset.create: negative capacity";
  { cap; words = Array.make (words_for cap) 0 }

let capacity t = t.cap
let copy t = { t with words = Array.copy t.words }

let mem t i =
  i >= 0 && i < t.cap && t.words.(i / bpw) land (1 lsl (i mod bpw)) <> 0
[@@dynlint.hot]

let check t i op =
  if i < 0 || i >= t.cap then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of range (cap=%d)" op i t.cap)

let set t i =
  check t i "set";
  t.words.(i / bpw) <- t.words.(i / bpw) lor (1 lsl (i mod bpw))
[@@dynlint.hot]

let unset t i =
  check t i "unset";
  t.words.(i / bpw) <- t.words.(i / bpw) land lnot (1 lsl (i mod bpw))

let clear t = Array.fill t.words 0 (Array.length t.words) 0 [@@dynlint.hot]

let add i t =
  check t i "add";
  if mem t i then t
  else begin
    let t' = copy t in
    set t' i;
    t'
  end

let remove i t =
  check t i "remove";
  if not (mem t i) then t
  else begin
    let t' = copy t in
    unset t' i;
    t'
  end

(* Kernighan's loop: one iteration per set bit.  Words are sparse in
   most protocol states, and there is no portable popcount in the
   stdlib, so this beats a table without unsafe tricks. *)
let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0
[@@dynlint.hot]

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let check_caps a b op =
  if a.cap <> b.cap then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch (%d vs %d)" op a.cap b.cap)

let equal a b =
  check_caps a b "equal";
  int_array_equal a.words b.words

let subset a b =
  check_caps a b "subset";
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let map2 op name a b =
  check_caps a b name;
  let words = Array.mapi (fun i w -> op w b.words.(i)) a.words in
  { cap = a.cap; words }

let union a b = map2 ( lor ) "union" a b
let inter a b = map2 ( land ) "inter" a b
let diff a b = map2 (fun x y -> x land lnot y) "diff" a b

(* Bits of the last word at positions >= cap.  In-place word-wide
   operations must never set them: a bitset whose words were loaded
   from (or will be stored into) a word plane shares its word
   granularity with the plane rows, and junk above [cap] would
   round-trip into the plane and from there into whatever borrows the
   same words next (see Plane).  [set]/[unset] can't reach them, so
   masking at the word-wide entry points keeps the invariant global. *)
let pad_mask t =
  let r = t.cap mod bpw in
  if r = 0 then -1 else (1 lsl r) - 1

let union_into ~into b =
  check_caps into b "union_into";
  let words = into.words and src = b.words in
  for i = 0 to Array.length words - 1 do
    words.(i) <- words.(i) lor src.(i)
  done;
  let last = Array.length words - 1 in
  if last >= 0 then words.(last) <- words.(last) land pad_mask into

let blit ~src ~dst =
  check_caps src dst "blit";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let load_word t i = t.words.(i) [@@dynlint.hot]

let store_word t i w =
  let nw = Array.length t.words in
  if i < 0 || i >= nw then
    invalid_arg (Printf.sprintf "Bitset.store_word: word %d out of range" i);
  let m = if i = nw - 1 then pad_mask t else -1 in
  t.words.(i) <- w land m

let word_count t = Array.length t.words

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    let base = wi * bpw in
    while !w <> 0 do
      let low = !w land -(!w) in
      (* log2 of a single set bit via linear scan over its word offset
         would be O(bpw); instead peel bits lowest-first. *)
      let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1) in
      f (base + bit_index low 0);
      w := !w land (!w - 1)
    done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list cap l =
  let t = create cap in
  List.iter (set t) l;
  t

let of_array cap a =
  let t = create cap in
  Array.iter (set t) a;
  t

let next_set t i =
  let i = max i 0 in
  if i >= t.cap then t.cap
  else begin
    let r = ref t.cap in
    let wi = ref (i / bpw) in
    let nwords = Array.length t.words in
    (* Mask off bits below [i] in the first word, then scan whole words. *)
    let w = ref (t.words.(!wi) land lnot ((1 lsl (i mod bpw)) - 1)) in
    let continue = ref true in
    while !continue do
      if !w <> 0 then begin
        let low = !w land - !w in
        let rec bit_index b j = if b = 1 then j else bit_index (b lsr 1) (j + 1) in
        r := (!wi * bpw) + bit_index low 0;
        continue := false
      end
      else begin
        incr wi;
        if !wi >= nwords then continue := false else w := t.words.(!wi)
      end
    done;
    min !r t.cap
  end
[@@dynlint.hot]

let next_clear t i =
  let i = max i 0 in
  if i >= t.cap then t.cap
  else begin
    let r = ref t.cap in
    let wi = ref (i / bpw) in
    let nwords = Array.length t.words in
    let full = (1 lsl bpw) - 1 in
    (* Force bits below [i] to look set so they are skipped. *)
    let w = ref (t.words.(!wi) lor ((1 lsl (i mod bpw)) - 1)) in
    let continue = ref true in
    while !continue do
      if !w <> full then begin
        let inv = lnot !w land full in
        let low = inv land -inv in
        let rec bit_index b j = if b = 1 then j else bit_index (b lsr 1) (j + 1) in
        r := (!wi * bpw) + bit_index low 0;
        continue := false
      end
      else begin
        incr wi;
        if !wi >= nwords then continue := false else w := t.words.(!wi)
      end
    done;
    min !r t.cap
  end
[@@dynlint.hot]

let pp ppf t =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list t)
