(** Structural metrics of graph snapshots and dynamic sequences.

    Used to characterize the oblivious adversary families (the
    environment table in the analysis layer): how dense, how clustered,
    how far apart, and how churny each environment actually is — the
    context needed to read the protocol measurements. *)

type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
}

val degree_stats : Graph.t -> degree_stats
(** @raise Invalid_argument on the empty node set. *)

val clustering_coefficient : Graph.t -> float
(** Mean local clustering coefficient (nodes of degree < 2 contribute
    0); 1.0 on a clique, 0.0 on any triangle-free graph. *)

val mean_distance : Graph.t -> float
(** Average shortest-path distance over all ordered pairs.
    @raise Invalid_argument if disconnected or [n < 2]. *)

type churn_stats = {
  rounds : int;
  tc : int;  (** Total insertions, [TC(E)]. *)
  removals : int;
  mean_edges : float;
  insertions_per_round : float;
  turnover : float;
      (** Insertions per round divided by mean edge count: 0 = static,
          ~1 = the whole graph replaced every round. *)
}

val churn_stats : Dyn_seq.t -> churn_stats
