(** Canonical undirected edges.

    An edge is a pair of distinct node identifiers stored in canonical
    order (smaller endpoint first), so that [{u, v}] and [{v, u}]
    compare equal.  Self-loops are rejected: the dynamic graphs of the
    paper are simple graphs (the virtual self-loops of Algorithm 2 are a
    modelling device handled inside the random-walk protocol, never
    materialized as graph edges). *)

type t = private { u : Node_id.t; v : Node_id.t }
(** Invariant: [u < v]. *)

val make : Node_id.t -> Node_id.t -> t
(** [make a b] is the canonical edge [{a, b}].
    @raise Invalid_argument if [a = b] (self-loop) or either is
    negative. *)

val endpoints : t -> Node_id.t * Node_id.t
(** [(u, v)] with [u < v]. *)

val other : t -> Node_id.t -> Node_id.t
(** [other e x] is the endpoint of [e] that is not [x].
    @raise Invalid_argument if [x] is not an endpoint of [e]. *)

val incident : t -> Node_id.t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
