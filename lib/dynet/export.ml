let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let seq_to_csv seq =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "round,edges,insertions,removals,connected\n";
  for r = 1 to Dyn_seq.length seq do
    let g = Dyn_seq.get seq r in
    Buffer.add_string buf
      (Printf.sprintf "%d,%d,%d,%d,%b\n" r (Graph.edge_count g)
         (Edge_set.cardinal (Dyn_seq.insertions seq r))
         (Edge_set.cardinal (Dyn_seq.removals seq r))
         (Graph.is_connected g))
  done;
  Buffer.contents buf
