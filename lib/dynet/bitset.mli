(** Packed bitsets over the index range [0 .. capacity-1].

    The representation is a flat [int array] with 62 usable bits per
    word, so membership, insertion, union, difference and population
    count all run word-at-a-time — this is the fast-path replacement
    for the [Set.Make]-based structures in the per-round hot loops of
    the engines and protocols.

    Two usage styles are supported:

    - {b mutable}: [set]/[unset]/[clear] update in place.  Used for
      transient per-round scratch state owned by a single loop.
    - {b persistent (copy-on-write)}: [add]/[remove] return a new
      bitset sharing nothing with the input (or the input itself when
      the operation is a no-op).  Used inside the protocols' functional
      state records, which the engines snapshot with [Array.copy] for
      crash-restart — shared mutation there would corrupt snapshots. *)

type t

val create : int -> t
(** [create cap] is the empty bitset with capacity [cap] (indices
    [0 .. cap-1]).  @raise Invalid_argument if [cap < 0]. *)

val capacity : t -> int
val copy : t -> t

val mem : t -> int -> bool
(** O(1).  Indices outside [0 .. capacity-1] are never members. *)

val set : t -> int -> unit
(** In-place insert.  @raise Invalid_argument if out of range. *)

val unset : t -> int -> unit
(** In-place remove. *)

val clear : t -> unit
(** In-place removal of every element. *)

val add : int -> t -> t
(** Persistent insert: returns the input unchanged when the bit is
    already set, otherwise a fresh copy with the bit set. *)

val remove : int -> t -> t
(** Persistent remove, same sharing contract as {!add}. *)

val cardinal : t -> int
(** Population count, word-at-a-time. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b].
    Capacities must match for {!equal}, {!subset} and the binary
    operations below. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val union_into : into:t -> t -> unit
(** In-place union: [union_into ~into b] ORs [b] into [into],
    word-at-a-time, allocating nothing.  Padding bits of the final
    word (positions [>= capacity]) are kept clear even if the operand
    words carry junk there, so a bitset that shares word granularity
    with a {!Plane} row never smuggles out-of-range bits across the
    word-plane boundary.  Capacities must match. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst]'s contents with [src]'s, in place.  Capacities
    must match. *)

val bpw : int
(** Usable bits per word (62: every word is a non-negative OCaml
    immediate). *)

val word_count : t -> int
(** Number of backing words, [ceil (capacity / bpw)]. *)

val load_word : t -> int -> int
(** [load_word t i] is backing word [i] — the memberships of indices
    [i*bpw .. i*bpw+bpw-1] as a packed non-negative int.  Raw word
    access exists for bulk transfer to and from {!Plane} rows; indices
    are unchecked beyond the array bound. *)

val store_word : t -> int -> int -> unit
(** [store_word t i w] overwrites backing word [i].  Bits of the last
    word at positions [>= capacity] are masked off, preserving the
    global invariant that padding stays clear (see {!union_into}). *)

val iter : (int -> unit) -> t -> unit
(** Elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val of_array : int -> int array -> t
(** [of_array cap a] builds a bitset of capacity [cap] containing the
    elements of [a]. *)

val next_set : t -> int -> int
(** [next_set t i] is the least [j >= i] with [mem t j], or
    [capacity t] if none. *)

val next_clear : t -> int -> int
(** [next_clear t i] is the least [j >= i] with [not (mem t j)], or
    [capacity t] if every index from [i] up is set. *)

val pp : Format.formatter -> t -> unit
