type t = {
  sigma : int;
  n : int;
  (* Edges currently present, mapped to the round index (1-based, counted
     internally) at which their current run started. *)
  mutable active : (Edge.t * int) list;
  mutable round : int;
}

let create ~sigma ~n =
  if sigma < 1 then invalid_arg "Stability.create: sigma must be >= 1";
  if n < 0 then invalid_arg "Stability.create: negative n";
  { sigma; n; active = []; round = 0 }

let sigma t = t.sigma

let step t proposal =
  if Graph.n proposal <> t.n then
    invalid_arg "Stability.step: node count mismatch";
  t.round <- t.round + 1;
  let proposed = Graph.edges proposal in
  (* Keep an active edge if it is still proposed (its run continues) or
     if it is too young to drop. *)
  let kept =
    List.filter
      (fun (e, born) ->
        Edge_set.mem e proposed || t.round - born < t.sigma)
      t.active
  in
  let kept_edges =
    List.fold_left (fun acc (e, _) -> Edge_set.add e acc) Edge_set.empty kept
  in
  let inserted = Edge_set.diff proposed kept_edges in
  let active =
    Edge_set.fold (fun e acc -> (e, t.round) :: acc) inserted kept
  in
  t.active <- active;
  Graph.make ~n:t.n (Edge_set.union proposed kept_edges)

let transform ~sigma = function
  | [] -> []
  | g :: _ as gs ->
      let t = create ~sigma ~n:(Graph.n g) in
      List.map (step t) gs
