open Ops

(* Active edges live in a hash table keyed by the packed edge key
   (u*n + v, as in Edge_table), mapped to the round their current run
   started.  When a step changes nothing — the common case in the
   paper's 3-edge-stable environments, where most proposals repeat the
   previous round — the previously built graph is returned as-is, so
   its adjacency arrays (and lazily built edge set) are reused instead
   of being rebuilt O(m) every round. *)
type t = {
  sigma : int;
  n : int;
  born : (int, int) Hashtbl.t;
  mutable round : int;
  mutable last : Graph.t;
}

let create ~sigma ~n =
  if sigma < 1 then invalid_arg "Stability.create: sigma must be >= 1";
  if n < 0 then invalid_arg "Stability.create: negative n";
  { sigma; n; born = Hashtbl.create 64; round = 0; last = Graph.empty ~n }

let sigma t = t.sigma

let step t proposal =
  if Graph.n proposal <> t.n then
    invalid_arg "Stability.step: node count mismatch";
  t.round <- t.round + 1;
  let changed = ref false in
  (* Drop an active edge once it is no longer proposed and its run is
     at least sigma rounds old; a still-proposed edge keeps the round
     its run started. *)
  let removals = ref [] in
  Hashtbl.iter
    (fun key born ->
      if
        (not (Graph.mem_edge proposal (key / t.n) (key mod t.n)))
        && t.round - born >= t.sigma
      then removals := key :: !removals)
    t.born;
  List.iter
    (fun key ->
      Hashtbl.remove t.born key;
      changed := true)
    !removals;
  Graph.iter_pairs
    (fun u v ->
      let key = (u * t.n) + v in
      if not (Hashtbl.mem t.born key) then begin
        Hashtbl.replace t.born key t.round;
        changed := true
      end)
    proposal;
  if !changed then begin
    let table =
      Edge_table.create ~n:t.n ~size_hint:(max 64 (Hashtbl.length t.born)) ()
    in
    Hashtbl.iter
      (fun key _ -> Edge_table.add_pair table (key / t.n) (key mod t.n))
      t.born;
    t.last <- Graph.of_table table
  end;
  t.last

let transform ~sigma = function
  | [] -> []
  | g :: _ as gs ->
      let t = create ~sigma ~n:(Graph.n g) in
      List.map (step t) gs
