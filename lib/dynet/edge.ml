open Ops

type t = { u : Node_id.t; v : Node_id.t }

let make a b =
  if a < 0 || b < 0 then invalid_arg "Edge.make: negative node id";
  if a = b then invalid_arg "Edge.make: self-loop";
  if a < b then { u = a; v = b } else { u = b; v = a }

let endpoints e = (e.u, e.v)

let other e x =
  if x = e.u then e.v
  else if x = e.v then e.u
  else invalid_arg "Edge.other: node not incident to edge"

let incident e x = x = e.u || x = e.v

let compare a b =
  let c = Node_id.compare a.u b.u in
  if c <> 0 then c else Node_id.compare a.v b.v

let equal a b = compare a b = 0
let pp ppf e = Format.fprintf ppf "{%a,%a}" Node_id.pp e.u Node_id.pp e.v
