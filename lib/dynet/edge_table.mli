(** Mutable hashed edge set keyed by a single packed int.

    The canonical edge [(u, v)] with [u < v < n] maps to the key
    [u * n + v].  Because {!Edge.compare} is lexicographic on the
    canonical endpoints, sorting keys numerically reproduces exactly
    the iteration order of {!Edge_set} — which is what lets
    {!Graph.of_table} build sorted adjacency without re-sorting.

    This is the accumulation structure for graph generators and the
    stability wrapper: O(1) amortised insert/membership instead of the
    O(log m) of the balanced-tree [Edge_set], with zero per-edge boxing
    (the key is an immediate). *)

type t

val create : n:int -> ?size_hint:int -> unit -> t
(** Empty table for graphs on [n] nodes.
    @raise Invalid_argument if [n < 0]. *)

val n : t -> int
val cardinal : t -> int

val key : n:int -> Node_id.t -> Node_id.t -> int
(** Packed key of the canonical form of [(u, v)].
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)

val add_pair : t -> Node_id.t -> Node_id.t -> unit
(** Insert the edge [{u, v}] (idempotent).
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)

val add_edge : t -> Edge.t -> unit
val mem_pair : t -> Node_id.t -> Node_id.t -> bool
val remove_pair : t -> Node_id.t -> Node_id.t -> unit

val iter_pairs : (Node_id.t -> Node_id.t -> unit) -> t -> unit
(** Unordered iteration (hash order). *)

val sorted_keys : t -> int array
(** All packed keys in increasing order — i.e. in {!Edge.compare}
    order of the corresponding edges. *)

val of_edge_set : n:int -> Edge_set.t -> t
val to_edge_set : t -> Edge_set.t
