(** Dense integer node identifiers.

    Nodes of an [n]-node network are identified by the integers
    [0 .. n-1].  Using dense identifiers lets the simulation engine and
    the algorithms index per-node state with plain arrays, which is the
    dominant access pattern in a synchronous round simulator.

    The paper assumes each node has a unique [O(log n)]-bit identifier;
    dense integers satisfy that assumption.  Where the paper orders
    source nodes ([a_1 < a_2 < ... < a_s], Section 3.2), the order used
    is the natural integer order exposed by {!compare}. *)

type t = int
(** A node identifier.  Valid identifiers are non-negative; a network of
    [n] nodes uses exactly [0 .. n-1]. *)

val compare : t -> t -> int
(** Total order on identifiers (natural integer order). *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [v<id>], e.g. [v17]. *)

val to_int : t -> int

val of_int : int -> t
(** [of_int i] validates [i >= 0].
    @raise Invalid_argument on negative input. *)

val all : n:int -> t list
(** [all ~n] is the list [[0; 1; ...; n-1]]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
