(** σ-edge-stability enforcement.

    Theorems 3.4 and 3.6 of the paper assume 3-edge-stable dynamic
    graphs: once inserted, an edge stays for at least 3 consecutive
    rounds.  This module turns any stream of proposed round graphs into
    a σ-stable stream by holding down young edges: an edge inserted at
    round [r] is forced to remain present through round [r + σ - 1],
    whatever the proposal says.

    Holding edges down only ever {e adds} edges to a proposal, so
    connectivity of each round is preserved, and the resulting recorded
    sequence satisfies {!Dyn_seq.is_sigma_stable}. *)

type t

val create : sigma:int -> n:int -> t
(** @raise Invalid_argument if [sigma < 1] or [n < 0]. *)

val sigma : t -> int

val step : t -> Graph.t -> Graph.t
(** [step t proposal] is the actual graph for the next round: the
    proposal plus all held-down edges.  Updates internal ages.
    @raise Invalid_argument if the proposal's node count differs from
    [n]. *)

val transform : sigma:int -> Graph.t list -> Graph.t list
(** Whole-sequence convenience wrapper around {!step}. *)
