open Ops

type t = { n : int; tbl : (int, unit) Hashtbl.t }

let create ~n ?(size_hint = 64) () =
  if n < 0 then invalid_arg "Edge_table.create: negative n";
  { n; tbl = Hashtbl.create size_hint }

let n t = t.n
let cardinal t = Hashtbl.length t.tbl

let key ~n u v =
  if u = v then invalid_arg "Edge_table.key: self-loop";
  let u, v = if u < v then (u, v) else (v, u) in
  if u < 0 || v >= n then
    invalid_arg
      (Printf.sprintf "Edge_table.key: endpoint out of range (%d,%d) n=%d" u v n);
  (u * n) + v

let add_pair t u v = Hashtbl.replace t.tbl (key ~n:t.n u v) ()

let add_edge t e =
  let u, v = Edge.endpoints e in
  add_pair t u v

let mem_pair t u v =
  u <> v
  && u >= 0 && v >= 0 && u < t.n && v < t.n
  && Hashtbl.mem t.tbl (key ~n:t.n u v)

let remove_pair t u v =
  if u <> v && u >= 0 && v >= 0 && u < t.n && v < t.n then
    Hashtbl.remove t.tbl (key ~n:t.n u v)

let iter_pairs f t =
  Hashtbl.iter (fun k () -> f (k / t.n) (k mod t.n)) t.tbl

let sorted_keys t =
  let a = Array.make (Hashtbl.length t.tbl) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun k () ->
      a.(!i) <- k;
      incr i)
    t.tbl;
  Array.sort compare a;
  a

let of_edge_set ~n set =
  let t = create ~n ~size_hint:(max 64 (Edge_set.cardinal set)) () in
  Edge_set.iter (fun e -> add_edge t e) set;
  t

let to_edge_set t =
  let acc = ref Edge_set.empty in
  iter_pairs (fun u v -> acc := Edge_set.add_pair u v !acc) t;
  !acc
