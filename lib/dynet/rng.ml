open Ops

type t = Random.State.t

let make ~seed = Random.State.make [| seed; 0x6f5d; seed lxor 0x2c1b7a |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 7) |]

let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else Random.State.float t 1. < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr

let sample_without_replacement t m n =
  if m < 0 || m > n then
    invalid_arg "Rng.sample_without_replacement: need 0 <= m <= n";
  (* Floyd's algorithm: O(m) expected draws, no O(n) allocation. *)
  let chosen = Hashtbl.create (2 * m) in
  for j = n - m to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) chosen []
  |> List.sort Int.compare
