open Ops

(* Word planes: [rows] packed bitsets of [width] bits each, stored in
   one contiguous Bigarray of native ints, node-major.  The packing is
   Bitset's (62 usable bits per word, every word a non-negative
   immediate), so rows and Bitset values exchange whole words with
   [Bitset.load_word]/[Bitset.store_word] and no re-shifting.

   Bigarray int elements are unboxed native words: reads and writes in
   the accessors below allocate nothing, which is what lets an engine
   round loop over a plane run allocation-free.  Rows occupy whole
   words and never share a word with a neighboring row, so two Domains
   writing to different rows never touch the same memory word. *)

let bpw = Bitset.bpw

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { data : buf; rows : int; width : int; wpr : int }

let words_for width = (width + bpw - 1) / bpw

let make_buf len : buf =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill b 0;
  b

let create ~rows ~width =
  if rows < 0 then invalid_arg "Plane.create: negative rows";
  if width < 0 then invalid_arg "Plane.create: negative width";
  let wpr = words_for width in
  { data = make_buf (max 1 (rows * wpr)); rows; width; wpr }

let rows t = t.rows
let width t = t.width
let words_per_row t = t.wpr

let clear t =
  Bigarray.Array1.fill t.data 0

let check_row t r op =
  if r < 0 || r >= t.rows then
    invalid_arg
      (Printf.sprintf "Plane.%s: row %d out of range (rows=%d)" op r t.rows)

let check_bit t i op =
  if i < 0 || i >= t.width then
    invalid_arg
      (Printf.sprintf "Plane.%s: bit %d out of range (width=%d)" op i t.width)

(* Hot-path accessors: row/bit arithmetic is explicit and the Bigarray
   access is unsafe once our own range check has passed — a borrowed
   slice (see [sub]) carries its own extent, so the check also fences
   every operation inside the slice. *)

let mem t r i =
  check_row t r "mem";
  check_bit t i "mem";
  Bigarray.Array1.unsafe_get t.data ((r * t.wpr) + (i / bpw))
  land (1 lsl (i mod bpw))
  <> 0
[@@dynlint.hot]

let set t r i =
  check_row t r "set";
  check_bit t i "set";
  let w = (r * t.wpr) + (i / bpw) in
  Bigarray.Array1.unsafe_set t.data w
    (Bigarray.Array1.unsafe_get t.data w lor (1 lsl (i mod bpw)))
[@@dynlint.hot]

(* Unchecked variants for the innermost engine loops, where the row is
   a loop counter already bounded by the shard range.  Only meaningful
   on root planes; slices should use the checked entry points. *)

let unsafe_mem t r i =
  Bigarray.Array1.unsafe_get t.data ((r * t.wpr) + (i / bpw))
  land (1 lsl (i mod bpw))
  <> 0
[@@dynlint.hot]
[@@dynlint.unsafe_ok "caller contract: r is a loop counter bounded by the \
                      shard range (see Soa's row loops)"]

let unsafe_set t r i =
  let w = (r * t.wpr) + (i / bpw) in
  Bigarray.Array1.unsafe_set t.data w
    (Bigarray.Array1.unsafe_get t.data w lor (1 lsl (i mod bpw)))
[@@dynlint.hot]
[@@dynlint.unsafe_ok "caller contract: r is a loop counter bounded by the \
                      shard range (see Soa's row loops)"]

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let row_popcount t r =
  check_row t r "row_popcount";
  let base = r * t.wpr in
  let acc = ref 0 in
  for i = 0 to t.wpr - 1 do
    acc := !acc + popcount (Bigarray.Array1.unsafe_get t.data (base + i))
  done;
  !acc
[@@dynlint.hot]

let row_clear t r =
  check_row t r "row_clear";
  let base = r * t.wpr in
  for i = 0 to t.wpr - 1 do
    Bigarray.Array1.unsafe_set t.data (base + i) 0
  done
[@@dynlint.hot]

(* {2 Bitset exchange}

   Both directions copy whole words; neither side retains a reference
   to the other's storage.  [extract_row] in particular must detach:
   handing out a view of the plane words would alias a protocol
   state's copy-on-write mask onto a mutable plane row, and the next
   in-place round update (or the next run reusing the plane) would
   rewrite history inside a supposedly persistent value. *)

let load_row t r bs =
  check_row t r "load_row";
  if Bitset.capacity bs <> t.width then
    invalid_arg
      (Printf.sprintf "Plane.load_row: bitset capacity %d <> plane width %d"
         (Bitset.capacity bs) t.width);
  let base = r * t.wpr in
  for i = 0 to t.wpr - 1 do
    Bigarray.Array1.unsafe_set t.data (base + i) (Bitset.load_word bs i)
  done
[@@dynlint.hot]

let extract_row t r =
  check_row t r "extract_row";
  let bs = Bitset.create t.width in
  let base = r * t.wpr in
  for i = 0 to t.wpr - 1 do
    Bitset.store_word bs i (Bigarray.Array1.unsafe_get t.data (base + i))
  done;
  bs
[@@dynlint.alloc_ok "the one sanctioned allocation on the learning path: \
                     extraction must detach into a fresh Bitset (aliasing \
                     plane words would let in-place updates rewrite \
                     persistent state history)"]

let union_row_into t ~src ~dst =
  check_row t src "union_row_into";
  check_row t dst "union_row_into";
  let sb = src * t.wpr and db = dst * t.wpr in
  for i = 0 to t.wpr - 1 do
    Bigarray.Array1.unsafe_set t.data (db + i)
      (Bigarray.Array1.unsafe_get t.data (db + i)
      lor Bigarray.Array1.unsafe_get t.data (sb + i))
  done
[@@dynlint.hot]

let union_row_from t r bs =
  check_row t r "union_row_from";
  if Bitset.capacity bs <> t.width then
    invalid_arg "Plane.union_row_from: bitset capacity <> plane width";
  let base = r * t.wpr in
  for i = 0 to t.wpr - 1 do
    Bigarray.Array1.unsafe_set t.data (base + i)
      (Bigarray.Array1.unsafe_get t.data (base + i) lor Bitset.load_word bs i)
  done
[@@dynlint.hot]

(* {2 Borrowed slices} *)

let sub t ~row ~rows:nrows =
  check_row t row "sub";
  if nrows < 0 || row + nrows > t.rows then
    invalid_arg
      (Printf.sprintf "Plane.sub: rows [%d, %d) exceed plane rows %d" row
         (row + nrows) t.rows);
  {
    data = Bigarray.Array1.sub t.data (row * t.wpr) (nrows * t.wpr);
    rows = nrows;
    width = t.width;
    wpr = t.wpr;
  }

(* {2 Pool} *)

module Pool = struct
  type t = { mutable backing : buf; mutable used : int }

  let create ?(capacity_words = 1024) () =
    { backing = make_buf (max 1 capacity_words); used = 0 }

  let alloc p ~rows ~width =
    if rows < 0 || width < 0 then invalid_arg "Plane.Pool.alloc";
    let wpr = words_for width in
    let need = max 1 (rows * wpr) in
    let cap = Bigarray.Array1.dim p.backing in
    if p.used + need > cap then begin
      let cap' = max (p.used + need) (2 * cap) in
      let backing' = make_buf cap' in
      Bigarray.Array1.blit
        (Bigarray.Array1.sub p.backing 0 p.used)
        (Bigarray.Array1.sub backing' 0 p.used);
      p.backing <- backing'
    end;
    let data = Bigarray.Array1.sub p.backing p.used need in
    Bigarray.Array1.fill data 0;
    p.used <- p.used + need;
    { data; rows; width; wpr }

  let reset p = p.used <- 0
end
