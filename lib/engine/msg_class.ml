open Dynet.Ops

type t = Token | Completeness | Request | Walk | Center | Control

let all = [ Token; Completeness; Request; Walk; Center; Control ]
let count = List.length all

let index = function
  | Token -> 0
  | Completeness -> 1
  | Request -> 2
  | Walk -> 3
  | Center -> 4
  | Control -> 5

let of_index = function
  | 0 -> Token
  | 1 -> Completeness
  | 2 -> Request
  | 3 -> Walk
  | 4 -> Center
  | 5 -> Control
  | i -> invalid_arg (Printf.sprintf "Msg_class.of_index: %d" i)

let to_string = function
  | Token -> "token"
  | Completeness -> "completeness"
  | Request -> "request"
  | Walk -> "walk"
  | Center -> "center"
  | Control -> "control"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = index a = index b
