open Dynet.Ops

(* The pseudocode-faithful engine: every round is executed the way the
   paper writes it — recompute, scan, allocate — with none of the
   fast path's bitsets, cached counts, or binary searches.  What it
   MUST share with [Default] is observable behaviour: the same fault
   stream is drawn in the same order, the same ledger entries are
   recorded, the same trace events are emitted, [?on_graph] sees the
   same committed graphs, and the returned [Run_result.t] is
   bit-identical.  The differential fuzzer ([lib/fuzz]) holds the two
   engines to exactly that contract. *)

let name = "reference"

(* Naive delayed-delivery queue: an association list from due round to
   the messages (dst, src, msg) pushed for it, newest first — the
   pseudocode's "in-flight" bag, no hashing. *)
module Delay_queue = struct
  type 'm t = (int * (Dynet.Node_id.t * Dynet.Node_id.t * 'm) list) list ref

  let create () : 'm t = ref []

  let push (t : 'm t) ~due entry =
    let rec go = function
      | [] -> [ (due, [ entry ]) ]
      | (r, cell) :: rest ->
          if r = due then (r, entry :: cell) :: rest else (r, cell) :: go rest
    in
    t := go !t

  (* Everything due this round, oldest push first (the fast engine's
     [List.rev !cell] order), removed from the bag. *)
  let take (t : 'm t) ~round =
    let due, rest = List.partition (fun (r, _) -> r = round) !t in
    t := rest;
    match due with [] -> [] | (_, cell) :: _ -> List.rev cell
end

let sum_progress progress states =
  List.fold_left (fun acc st -> acc + progress st) 0 (Array.to_list states)

module Broadcast = struct
  let run (type s m) (module P : Runner_broadcast.PROTOCOL
             with type state = s
              and type msg = m) ?init_prev ?(obs = Obs.Sink.null)
      ?(faults = Faults.Plan.none) ?(prof = Obs.Span.null) ?on_graph
      ?target_progress ?stall_after ?cancel ~(states : s array)
      ~(adversary : (s, m) Runner_broadcast.adversary) ~max_rounds ~stop () =
    let n = Array.length states in
    let ledger = Ledger.create () in
    let timeline = ref [] in
    let tracing = not (Obs.Sink.is_null obs) in
    let profiling = not (Obs.Span.is_null prof) in
    let frun = Faults.Plan.start faults ~n in
    let faulty = Faults.Plan.active frun in
    let fcounts = Faults.Plan.counts frun in
    let checking = Check.enabled () in
    let c_sent = ref 0 and c_created = ref 0 and c_consumed = ref 0 in
    let c_dropped = ref 0 and c_inflight = ref 0 in
    let initial = if faulty then Array.copy states else [||] in
    let delayed : m Delay_queue.t = Delay_queue.create () in
    let emit_fault ~round ~kind ~node ?dst ?cls () =
      if tracing then
        Obs.Sink.emit obs (Obs.Trace.Fault { round; kind; node; dst; cls })
    in
    let p0 = sum_progress P.progress states in
    Ledger.note_progress ledger p0;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Progress { round = 0; progress = p0; learnings = 0 });
    let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
    let best_progress = ref p0 in
    let stagnant = ref 0 in
    let stalled = ref false in
    let completed = ref (stop states) in
    let aborted = ref None in
    (* Cooperative cancellation, polled once per round boundary; see
       Runner_broadcast for the latching scheme. *)
    let cancelled = ref false in
    let cancel_requested () =
      (match cancel with
      | None -> ()
      | Some c -> if not !cancelled then cancelled := c ());
      !cancelled
    in
    let round = ref 0 in
    while
      (not !completed) && (not !stalled) && Option.is_none !aborted
      && (not (cancel_requested ()))
      && !round < max_rounds
    do
      incr round;
      let r = !round in
      if tracing then Obs.Sink.emit obs (Obs.Trace.Round_start { round = r });
      if profiling then begin
        Obs.Span.enter prof ~cat:"round" "round";
        Obs.Span.add_counter prof "round" (float_of_int r)
      end;
      if faulty then begin
        if profiling then Obs.Span.enter prof ~cat:"phase" "faults";
        Faults.Plan.begin_round frun ~round:r
          ~on_crash:(fun v -> emit_fault ~round:r ~kind:"crash" ~node:v ())
          ~on_restart:(fun v ->
            states.(v) <- initial.(v);
            emit_fault ~round:r ~kind:"restart" ~node:v ());
        if Faults.Plan.doomed frun then
          aborted := Some "all nodes crashed with no possible restart";
        if profiling then Obs.Span.leave prof
      end;
      if Option.is_none !aborted then begin
        if profiling then Obs.Span.enter prof ~cat:"phase" "intent";
        (* "Each node picks at most one message to broadcast, before
           seeing the round's topology." *)
        let intents = Array.make n (None : m option) in
        for v = 0 to n - 1 do
          if (not faulty) || Faults.Plan.alive frun v then begin
            let st, m = P.intent states.(v) ~round:r in
            states.(v) <- st;
            intents.(v) <- m
          end
        done;
        if profiling then begin
          Obs.Span.leave prof;
          Obs.Span.enter prof ~cat:"phase" "adversary"
        end;
        let g = adversary ~round:r ~prev:!prev ~states ~intents in
        if profiling then begin
          Obs.Span.leave prof;
          Obs.Span.enter prof ~cat:"phase" "graph"
        end;
        Engine_error.check_graph ~round:r ~n g;
        (match on_graph with None -> () | Some f -> f ~round:r g);
        let tc0 = Ledger.tc ledger and rm0 = Ledger.removals ledger in
        Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
        if tracing then
          Obs.Sink.emit obs
            (Obs.Trace.Graph_change
               {
                 round = r;
                 added = Ledger.tc ledger - tc0;
                 removed = Ledger.removals ledger - rm0;
               });
        Ledger.note_round ledger;
        if profiling then begin
          Obs.Span.leave prof;
          Obs.Span.enter prof ~cat:"phase" "send"
        end;
        (* A broadcast is charged once, whatever the degree. *)
        for v = 0 to n - 1 do
          match intents.(v) with
          | None -> ()
          | Some m ->
              let cls = P.classify m in
              Ledger.record ledger cls 1;
              Ledger.record_sender ledger v 1;
              if checking then incr c_sent;
              if tracing then
                Obs.Sink.emit obs
                  (Obs.Trace.Send
                     {
                       round = r;
                       src = v;
                       dst = None;
                       cls = Msg_class.to_string cls;
                     })
        done;
        if profiling then begin
          Obs.Span.leave prof;
          Obs.Span.enter prof ~cat:"phase" "deliver"
        end;
        let inboxes =
          if not faulty then
            (* "Every broadcast reaches all the sender's neighbors":
               for each node, collect the broadcasting neighbors in
               increasing id order — a fresh list pass per node, no
               reverse-accumulation tricks. *)
            Array.init n (fun v ->
                Dynet.Graph.neighbors g v |> Array.to_list
                |> List.filter_map (fun u ->
                       match intents.(u) with
                       | None -> None
                       | Some m ->
                           if checking then incr c_created;
                           Some (u, m)))
          else begin
            let inboxes = Array.make n [] in
            for v = 0 to n - 1 do
              Array.iter
                (fun u ->
                  match intents.(u) with
                  | None -> ()
                  | Some m -> (
                      let cls_name = Msg_class.to_string (P.classify m) in
                      match Faults.Plan.deliveries frun with
                      | None ->
                          if checking then begin
                            incr c_created;
                            incr c_dropped
                          end;
                          emit_fault ~round:r ~kind:"drop" ~node:u ~dst:v
                            ~cls:cls_name ()
                      | Some delays ->
                          if checking then
                            c_created := !c_created + List.length delays;
                          if List.length delays > 1 then
                            emit_fault ~round:r ~kind:"dup" ~node:u ~dst:v
                              ~cls:cls_name ();
                          List.iter
                            (fun d ->
                              if d = 0 then
                                inboxes.(v) <- (u, m) :: inboxes.(v)
                              else begin
                                if checking then incr c_inflight;
                                emit_fault ~round:r ~kind:"delay" ~node:u
                                  ~dst:v ~cls:cls_name ();
                                Delay_queue.push delayed ~due:(r + d) (v, u, m)
                              end)
                            delays))
                (Dynet.Graph.neighbors g v)
            done;
            let due = Delay_queue.take delayed ~round:r in
            if checking then c_inflight := !c_inflight - List.length due;
            List.iter
              (fun (dst, src, m) -> inboxes.(dst) <- (src, m) :: inboxes.(dst))
              due;
            for v = 0 to n - 1 do
              if not (Faults.Plan.alive frun v) then begin
                if checking then
                  c_dropped := !c_dropped + List.length inboxes.(v);
                List.iter
                  (fun (src, m) ->
                    fcounts.Faults.Counts.drops <-
                      fcounts.Faults.Counts.drops + 1;
                    emit_fault ~round:r ~kind:"drop" ~node:src ~dst:v
                      ~cls:(Msg_class.to_string (P.classify m)) ())
                  (List.rev inboxes.(v));
                inboxes.(v) <- []
              end
              else inboxes.(v) <- List.rev inboxes.(v)
            done;
            inboxes
          end
        in
        if profiling then begin
          Obs.Span.leave prof;
          Obs.Span.enter prof ~cat:"phase" "receive"
        end;
        for v = 0 to n - 1 do
          if (not faulty) || Faults.Plan.alive frun v then begin
            if checking then
              c_consumed := !c_consumed + List.length inboxes.(v);
            states.(v) <- P.receive states.(v) ~round:r ~inbox:inboxes.(v)
          end
        done;
        if profiling then Obs.Span.leave prof;
        if checking then begin
          if profiling then Obs.Span.enter prof ~cat:"phase" "check";
          Check.connected
            ~what:(Printf.sprintf "round %d: adversary graph connectivity" r)
            g;
          Check.require ~what:"ledger total equals broadcasts performed"
            (fun () -> Ledger.total ledger = !c_sent);
          Check.require ~what:"message-copy conservation" (fun () ->
              Check.conserved ~created:!c_created ~consumed:!c_consumed
                ~dropped:!c_dropped ~in_flight:!c_inflight);
          if profiling then Obs.Span.leave prof
        end;
        let p = sum_progress P.progress states in
        Ledger.note_progress ledger p;
        if tracing then
          Obs.Sink.emit obs
            (Obs.Trace.Progress
               { round = r; progress = p; learnings = Ledger.learnings ledger });
        if p > !best_progress then begin
          best_progress := p;
          stagnant := 0
        end
        else begin
          incr stagnant;
          match stall_after with
          | Some w when !stagnant >= w -> stalled := true
          | Some _ | None -> ()
        end;
        (* Naive timeline: append at the back each round. *)
        timeline :=
          !timeline @ [ (r, Ledger.total ledger, Ledger.learnings ledger) ];
        prev := g;
        completed := stop states
      end;
      if profiling then Obs.Span.leave prof
    done;
    if tracing then begin
      Obs.Sink.emit obs
        (Obs.Trace.Run_end
           {
             rounds = !round;
             completed = !completed;
             messages = Ledger.total ledger;
           });
      Obs.Sink.flush obs
    end;
    let outcome =
      match !aborted with
      | Some reason -> Run_result.Aborted reason
      | None ->
          if !completed then Run_result.Completed
          else if !stalled then
            Run_result.Stalled { rounds_without_progress = !stagnant }
          else if !cancelled then
            Run_result.Cancelled
              {
                achieved = sum_progress P.progress states;
                target = target_progress;
              }
          else
            Run_result.Partial
              {
                achieved = sum_progress P.progress states;
                target = target_progress;
              }
    in
    ( Run_result.make ~outcome
        ?fault_counts:(if faulty then Some fcounts else None)
        ~rounds:!round ~completed:!completed ~ledger ~timeline:!timeline (),
      states )
end

module Unicast = struct
  let run (type s m) (module P : Runner_unicast.PROTOCOL
             with type state = s
              and type msg = m) ?init_prev ?(obs = Obs.Sink.null)
      ?(faults = Faults.Plan.none) ?(prof = Obs.Span.null) ?on_graph
      ?target_progress ?stall_after ?cancel ~(states : s array)
      ~(adversary : s Runner_unicast.adversary) ~max_rounds ~stop () =
    let n = Array.length states in
    let ledger = Ledger.create () in
    let timeline = ref [] in
    let tracing = not (Obs.Sink.is_null obs) in
    let profiling = not (Obs.Span.is_null prof) in
    let frun = Faults.Plan.start faults ~n in
    let faulty = Faults.Plan.active frun in
    let fcounts = Faults.Plan.counts frun in
    let checking = Check.enabled () in
    let c_sent = ref 0 and c_created = ref 0 and c_consumed = ref 0 in
    let c_dropped = ref 0 and c_inflight = ref 0 in
    let initial = if faulty then Array.copy states else [||] in
    let delayed : m Delay_queue.t = Delay_queue.create () in
    let emit_fault ~round ~kind ~node ?dst ?cls () =
      if tracing then
        Obs.Sink.emit obs (Obs.Trace.Fault { round; kind; node; dst; cls })
    in
    let p0 = sum_progress P.progress states in
    Ledger.note_progress ledger p0;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Progress { round = 0; progress = p0; learnings = 0 });
    let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
    let traffic = ref ([] : Runner_unicast.traffic) in
    let best_progress = ref p0 in
    let stagnant = ref 0 in
    let stalled = ref false in
    let completed = ref (stop states) in
    let aborted = ref None in
    (* Cooperative cancellation, polled once per round boundary; see
       Runner_broadcast for the latching scheme. *)
    let cancelled = ref false in
    let cancel_requested () =
      (match cancel with
      | None -> ()
      | Some c -> if not !cancelled then cancelled := c ());
      !cancelled
    in
    let round = ref 0 in
    while
      (not !completed) && (not !stalled) && Option.is_none !aborted
      && (not (cancel_requested ()))
      && !round < max_rounds
    do
      incr round;
      let r = !round in
      if tracing then Obs.Sink.emit obs (Obs.Trace.Round_start { round = r });
      if profiling then begin
        Obs.Span.enter prof ~cat:"round" "round";
        Obs.Span.add_counter prof "round" (float_of_int r)
      end;
      if faulty then begin
        if profiling then Obs.Span.enter prof ~cat:"phase" "faults";
        Faults.Plan.begin_round frun ~round:r
          ~on_crash:(fun v -> emit_fault ~round:r ~kind:"crash" ~node:v ())
          ~on_restart:(fun v ->
            states.(v) <- initial.(v);
            emit_fault ~round:r ~kind:"restart" ~node:v ());
        if Faults.Plan.doomed frun then
          aborted := Some "all nodes crashed with no possible restart";
        if profiling then Obs.Span.leave prof
      end;
      if Option.is_none !aborted then begin
        if profiling then Obs.Span.enter prof ~cat:"phase" "adversary";
        let g = adversary ~round:r ~prev:!prev ~states ~traffic:!traffic in
        if profiling then begin
          Obs.Span.leave prof;
          Obs.Span.enter prof ~cat:"phase" "graph"
        end;
        Engine_error.check_graph ~round:r ~n g;
        (match on_graph with None -> () | Some f -> f ~round:r g);
        let tc0 = Ledger.tc ledger and rm0 = Ledger.removals ledger in
        Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
        if tracing then
          Obs.Sink.emit obs
            (Obs.Trace.Graph_change
               {
                 round = r;
                 added = Ledger.tc ledger - tc0;
                 removed = Ledger.removals ledger - rm0;
               });
        Ledger.note_round ledger;
        if profiling then begin
          Obs.Span.leave prof;
          Obs.Span.enter prof ~cat:"phase" "send"
        end;
        let inboxes = Array.make n [] in
        let round_traffic = ref [] in
        (* The per-round bandwidth bookkeeping of Section 1.3, kept the
           way the paper states it: the set of directed edges a token
           has crossed this round, as a plain list scanned linearly. *)
        let tokens_crossed = ref ([] : (int * int) list) in
        for v = 0 to n - 1 do
          if (not faulty) || Faults.Plan.alive frun v then begin
            let neighbors = Dynet.Graph.neighbors g v in
            let st, out = P.send states.(v) ~round:r ~neighbors in
            states.(v) <- st;
            List.iter
              (fun (dst, m) ->
                (* Linear scan over the neighbor row — no binary
                   search. *)
                if not (Array.exists (fun u -> u = dst) neighbors) then
                  raise
                    (Engine_error.Protocol_violation
                       (Printf.sprintf
                          "round %d: node %d sent to non-neighbor %d" r v dst));
                let cls = P.classify m in
                (match cls with
                | Msg_class.Token | Msg_class.Walk ->
                    if
                      List.exists
                        (fun (a, b) -> a = v && b = dst)
                        !tokens_crossed
                    then
                      raise
                        (Engine_error.Protocol_violation
                           (Printf.sprintf
                              "round %d: node %d sent two tokens to %d in \
                               one round"
                              r v dst));
                    tokens_crossed := (v, dst) :: !tokens_crossed
                | Msg_class.Completeness | Msg_class.Request
                | Msg_class.Center | Msg_class.Control ->
                    ());
                Ledger.record ledger cls 1;
                Ledger.record_sender ledger v 1;
                if checking then incr c_sent;
                if tracing then
                  Obs.Sink.emit obs
                    (Obs.Trace.Send
                       {
                         round = r;
                         src = v;
                         dst = Some dst;
                         cls = Msg_class.to_string cls;
                       });
                round_traffic := (v, dst, cls) :: !round_traffic;
                if not faulty then begin
                  if checking then incr c_created;
                  inboxes.(dst) <- (v, m) :: inboxes.(dst)
                end
                else
                  let cls_name = Msg_class.to_string cls in
                  match Faults.Plan.deliveries frun with
                  | None ->
                      if checking then begin
                        incr c_created;
                        incr c_dropped
                      end;
                      emit_fault ~round:r ~kind:"drop" ~node:v ~dst
                        ~cls:cls_name ()
                  | Some delays ->
                      if checking then
                        c_created := !c_created + List.length delays;
                      if List.length delays > 1 then
                        emit_fault ~round:r ~kind:"dup" ~node:v ~dst
                          ~cls:cls_name ();
                      List.iter
                        (fun d ->
                          if d = 0 then
                            inboxes.(dst) <- (v, m) :: inboxes.(dst)
                          else begin
                            if checking then incr c_inflight;
                            emit_fault ~round:r ~kind:"delay" ~node:v ~dst
                              ~cls:cls_name ();
                            Delay_queue.push delayed ~due:(r + d) (dst, v, m)
                          end)
                        delays)
              out
          end
        done;
        if profiling then Obs.Span.leave prof;
        if faulty then begin
          if profiling then Obs.Span.enter prof ~cat:"phase" "deliver";
          let due = Delay_queue.take delayed ~round:r in
          if checking then c_inflight := !c_inflight - List.length due;
          List.iter
            (fun (dst, src, m) -> inboxes.(dst) <- (src, m) :: inboxes.(dst))
            due;
          for v = 0 to n - 1 do
            if not (Faults.Plan.alive frun v) then begin
              if checking then
                c_dropped := !c_dropped + List.length inboxes.(v);
              List.iter
                (fun (src, m) ->
                  fcounts.Faults.Counts.drops <-
                    fcounts.Faults.Counts.drops + 1;
                  emit_fault ~round:r ~kind:"drop" ~node:src ~dst:v
                    ~cls:(Msg_class.to_string (P.classify m)) ())
                (List.rev inboxes.(v));
              inboxes.(v) <- []
            end
          done;
          if profiling then Obs.Span.leave prof
        end;
        if profiling then Obs.Span.enter prof ~cat:"phase" "receive";
        for v = 0 to n - 1 do
          if (not faulty) || Faults.Plan.alive frun v then begin
            let inbox =
              List.stable_sort
                (fun (a, _) (b, _) -> Dynet.Node_id.compare a b)
                (List.rev inboxes.(v))
            in
            if checking then c_consumed := !c_consumed + List.length inbox;
            states.(v) <-
              P.receive states.(v) ~round:r
                ~neighbors:(Dynet.Graph.neighbors g v) ~inbox
          end
        done;
        if profiling then Obs.Span.leave prof;
        if checking then begin
          if profiling then Obs.Span.enter prof ~cat:"phase" "check";
          Check.connected
            ~what:(Printf.sprintf "round %d: adversary graph connectivity" r)
            g;
          Check.require ~what:"ledger total equals physical sends" (fun () ->
              Ledger.total ledger = !c_sent);
          Check.require ~what:"message-copy conservation" (fun () ->
              Check.conserved ~created:!c_created ~consumed:!c_consumed
                ~dropped:!c_dropped ~in_flight:!c_inflight);
          if profiling then Obs.Span.leave prof
        end;
        let p = sum_progress P.progress states in
        Ledger.note_progress ledger p;
        if tracing then
          Obs.Sink.emit obs
            (Obs.Trace.Progress
               { round = r; progress = p; learnings = Ledger.learnings ledger });
        if p > !best_progress then begin
          best_progress := p;
          stagnant := 0
        end
        else begin
          incr stagnant;
          match stall_after with
          | Some w when !stagnant >= w -> stalled := true
          | Some _ | None -> ()
        end;
        timeline :=
          !timeline @ [ (r, Ledger.total ledger, Ledger.learnings ledger) ];
        prev := g;
        traffic := List.rev !round_traffic;
        completed := stop states
      end;
      if profiling then Obs.Span.leave prof
    done;
    if tracing then begin
      Obs.Sink.emit obs
        (Obs.Trace.Run_end
           {
             rounds = !round;
             completed = !completed;
             messages = Ledger.total ledger;
           });
      Obs.Sink.flush obs
    end;
    let outcome =
      match !aborted with
      | Some reason -> Run_result.Aborted reason
      | None ->
          if !completed then Run_result.Completed
          else if !stalled then
            Run_result.Stalled { rounds_without_progress = !stagnant }
          else if !cancelled then
            Run_result.Cancelled
              {
                achieved = sum_progress P.progress states;
                target = target_progress;
              }
          else
            Run_result.Partial
              {
                achieved = sum_progress P.progress states;
                target = target_progress;
              }
    in
    ( Run_result.make ~outcome
        ?fault_counts:(if faulty then Some fcounts else None)
        ~rounds:!round ~completed:!completed ~ledger ~timeline:!timeline (),
      states )
end

module E = struct
  let name = name

  module Broadcast = Broadcast
  module Unicast = Unicast
end

let engine = (module E : Engine_sig.ENGINE)
