(** Persistent Domain pool for intra-run node-space sharding.

    {!Analysis.Sweep} parallelizes at run granularity; this pool is
    the intra-run analogue used by the {!Soa} engine: node space is
    split into contiguous spans, one long-lived worker domain per
    extra shard, and every engine phase is one {!run} call — a
    broadcast-wakeup / counted-barrier round trip over a single mutex,
    cheap enough to fire twice per simulated round.

    Determinism contract, mirrored from [Sweep]: a job may write only
    state owned by its span (its rows of a {!Dynet.Plane}, its indices
    of per-node arrays, its own staging buffers), so phase outcomes
    are independent of worker interleaving; cross-shard merging
    happens in the caller between phases, in ascending shard order.
    Worker exceptions are re-raised on the caller after the barrier,
    lowest shard first — also interleaving-independent.

    With one shard the pool owns no domains and {!run} is a direct
    call, so the sequential engine pays nothing for the seam. *)

type t

type job = shard:int -> lo:int -> hi:int -> unit

val ranges : n:int -> shards:int -> ?align:int -> unit -> (int * int) array
(** Contiguous spans [[lo, hi)] covering [0 .. n-1], one per shard.
    [align] (default 1) rounds the span length up to a multiple — the
    plane engine aligns to {!Dynet.Bitset.bpw} so no two shards ever
    write the same word of a shared bit plane.  Trailing shards may be
    empty. *)

val create : spans:(int * int) array -> t
(** Spawn [Array.length spans - 1] worker domains (none for a single
    span).  Shard 0 always runs on the calling domain. *)

val shards : t -> int
val span : t -> int -> int * int

val run : t -> job -> unit
(** Execute the job on every shard and wait for all of them (the
    barrier).  Callers should hoist the closure: the round loop passes
    the same preallocated job each time, keeping the barrier
    allocation-free.  Re-raises the lowest-shard worker exception, if
    any, after all shards finish. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent only for single-shard
    pools; call exactly once otherwise. *)

val with_pool : spans:(int * int) array -> (t -> 'a) -> 'a
(** [create], run the callback, and always [shutdown] (also on
    exceptions). *)
