(** Communication-cost accounting for one execution.

    Implements the cost model of Section 1.3:

    - {e message complexity} (Definition 1.1): total messages sent; a
      local broadcast counts as one message, unicast messages to
      different neighbors count separately.  The engines record every
      message here, tagged with its {!Msg_class.t}.
    - {e topological changes} [TC(E) = Σ_r |E⁺_r|] and total edge
      removals, updated from consecutive round graphs.
    - {e token learnings} (Definition 1.4), updated from the protocols'
      progress counters.
    - the {e α-adversary-competitive} report (Definition 1.3): an
      algorithm has α-competitive complexity [M] iff
      [total ≤ M + α·TC(E)] on every execution; {!competitive_cost}
      returns [total − α·TC(E)] so callers can compare it against a
      candidate [M]. *)

type t

val create : unit -> t
val copy : t -> t

val merge : t -> t -> t
(** Sum of two ledgers (counts, rounds, TC, removals, learnings):
    the accounting of an execution made of two consecutive phases
    (e.g. Algorithm 2's random-walk phase followed by its
    Multi-Source phase). *)

val record : t -> Msg_class.t -> int -> unit
(** [record t cls m] adds [m] messages of class [cls].
    @raise Invalid_argument if [m < 0]. *)

val record_sender : t -> Dynet.Node_id.t -> int -> unit
(** Attribute [m] sent messages to a node, for the per-node load
    report (the paper motivates message complexity by per-node energy;
    this exposes the distribution behind the total). *)

val sender_load : t -> Dynet.Node_id.t -> int
(** Messages attributed to the node so far (0 if none). *)

val max_load : t -> int
(** The busiest node's message count. *)

val mean_load : t -> float
(** Total attributed messages divided by the number of nodes that ever
    sent (0 if none sent). *)

val load_list : t -> int list
(** The per-sender message loads, one entry per node that ever sent,
    in unspecified order — feed to {!Obs.Metrics.summarize} for the
    load-distribution report. *)

val count : t -> Msg_class.t -> int
val total : t -> int
(** Sum over all classes. *)

val total_excluding : t -> Msg_class.t list -> int
(** Total without the given classes (e.g. excluding [Center]
    announcements to match the paper's accounting of Algorithm 2). *)

val note_round : t -> unit
val rounds : t -> int

val note_graph_change : t -> prev:Dynet.Graph.t -> cur:Dynet.Graph.t -> unit
(** Accumulates [|E⁺|] into {!tc} and [|E⁻|] into {!removals}. *)

val tc : t -> int
val removals : t -> int

val note_progress : t -> int -> unit
(** Record the current global progress (sum over nodes of tokens
    known); learnings are computed as the increase over the initial
    progress. *)

val learnings : t -> int

val competitive_cost : t -> alpha:float -> float
(** [total − α·TC(E)] (may be negative if the adversary churned more
    than the algorithm talked). *)

val amortized : t -> k:int -> float
(** [total / k]: average messages per disseminated token.
    @raise Invalid_argument if [k <= 0]. *)

val amortized_competitive : t -> alpha:float -> k:int -> float
(** [(total − α·TC)/k]. *)

val pp : Format.formatter -> t -> unit
