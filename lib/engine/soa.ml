open Dynet.Ops

(* The mega-scale struct-of-arrays engine.

   Three execution strategies behind the one ENGINE seam, chosen per
   run:

   - {b plane kernel} (broadcast, protocol advertises
     [Runner_broadcast.plane_spec], no faults): token masks live in
     one contiguous Bigarray word plane ([Dynet.Plane], node-major),
     adjacency in a delta-gated CSR ([Dynet.Csr]), and a round is two
     sharded passes over flat memory with no intents array, no inbox
     lists, and no per-round state records — allocation only happens
     when a node actually learns a token (to keep [states] live for
     [stop] and adaptive adversaries).
   - {b sharded unicast}: [P.send]/[P.receive] fan out across the
     Domain pool; per-(src,dst)-shard staging buffers are merged at
     the barrier in ascending shard order, and all accounting (ledger,
     checks, trace, traffic) replays sequentially in node order, so
     reports and violation behaviour are bit-identical to
     [Runner_unicast].
   - {b delegation}: fault-injected runs, and broadcast protocols
     without the plane capability, run on the sequential fast path
     ([Runner_broadcast]/[Runner_unicast]) unchanged.  Fault
     scheduling is inherently sequential (per-edge delivery draws in
     node order), so sharding it would only re-serialize.

   Determinism: each worker owns a contiguous node range and writes
   only its own plane rows, array slots, and staging buffers; every
   cross-shard combination (bit-plane OR, counter sums, staging
   drains) happens in ascending shard order, either in the coordinator
   or in a phase whose reads are frozen by the barrier.  Reports are
   therefore bit-identical at any shard count, which the differential
   fuzz harness enforces against [Default]. *)

let kernel_name = "soa"

(* Growable int log for the timeline: the round loop appends two ints
   per round with amortized-doubling growth, and the [(round, total,
   learnings)] list the result needs is materialised once at the end,
   outside the hot loop. *)
module Ilog = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 256 0; len = 0 }

  let push t x =
    if t.len = Array.length t.a then begin
      let a' = Array.make (2 * t.len) 0 in
      Array.blit t.a 0 a' 0 t.len;
      t.a <- a'
    end;
    t.a.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.a.(i)
  let len t = t.len
end

(* {2 The plane kernel} *)

let run_plane (type s m)
    (module P : Runner_broadcast.PROTOCOL with type state = s and type msg = m)
    (spec : (s, m) Runner_broadcast.plane_spec) ~spans ?init_prev ~obs ~prof
    ?on_graph ?target_progress ?stall_after ?cancel ~(states : s array)
    ~(adversary : (s, m) Runner_broadcast.adversary) ~max_rounds ~stop () =
  let n = Array.length states in
  let shards = Array.length spans in
  let k = spec.Runner_broadcast.width states.(0) in
  let ledger = Ledger.create () in
  let tracing = not (Obs.Sink.is_null obs) in
  let profiling = not (Obs.Span.is_null prof) in
  let checking = Check.enabled () in
  let c_sent = ref 0 and c_created = ref 0 and c_consumed = ref 0 in
  (* One contiguous plane per run: row v is node v's known-token mask. *)
  let plane = Dynet.Plane.create ~rows:n ~width:k in
  for v = 0 to n - 1 do
    Dynet.Plane.load_row plane v (spec.mask states.(v))
  done;
  (* Broadcaster bit-plane: rows [0 .. shards-1] are per-shard staging
     rows (each worker writes only its own row, and rows never share a
     word), row [shards] is the merged round view.  Staging means spans
     need no word alignment, so tiny fuzz instances still exercise
     real multi-shard execution. *)
  let bplane = Dynet.Plane.create ~rows:(shards + 1) ~width:n in
  let merged = shards in
  let known = Array.make n 0 in
  let total_known = ref 0 in
  for v = 0 to n - 1 do
    known.(v) <- Dynet.Plane.row_popcount plane v;
    total_known := !total_known + known.(v)
  done;
  (* Per-node send counts, flushed into the ledger's load table once at
     run end (the aggregates reported are insertion-order independent;
     flushing avoids a hash probe per broadcaster per round). *)
  let loads = Array.make n 0 in
  let shard_sends = Array.make shards 0 in
  let shard_learned = Array.make shards 0 in
  let shard_copies = Array.make shards 0 in
  let csr = Dynet.Csr.create ~n in
  (* Per-phase caches so the adversary-visible intents array can be
     filled without allocating: one [Some msg] cell per catalog token,
     shared by every broadcaster of that phase ([plane_spec.message]
     depends only on run constants, so node 0's state may build it). *)
  let phase_msgs : m option array = Array.make k None in
  let phase_cls = Array.make k Msg_class.Token in
  let intents : m option array = Array.make n None in
  (* Broadcaster index lists, alongside the bit rows: each worker
     appends its span's broadcasters to its own slice of [active]
     (slices are span-disjoint, so no races), and the publish step
     walks last round's list to blank stale intents and this round's
     to set fresh ones.  Rewriting all n option cells per round costs
     n write-barrier hits; touching only the ~b changed cells is what
     keeps the intents array off the round-loop profile. *)
  let active = Array.make (max 1 n) 0 in
  let cur_phase = ref 0 in
  let b = ref 0 in
  let timeline_totals = Ilog.create () in
  let timeline_learnings = Ilog.create () in
  let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
  (* Validity gate, delta-gated like the CSR: a graph physically equal
     to the last validated one (what Stability returns on stable
     rounds) cannot have changed its node count or connectivity, so
     stable rounds skip the O(n + m) union-find walk — and its
     allocation.  Seeded with a fresh sentinel no adversary graph can
     alias. *)
  let last_valid = ref (Dynet.Graph.empty ~n) in
  let validate ~round g =
    if g != !last_valid then begin
      Engine_error.check_graph ~round ~n g;
      last_valid := g
    end
  in
  Ledger.note_progress ledger !total_known;
  if tracing then
    Obs.Sink.emit obs
      (Obs.Trace.Progress { round = 0; progress = !total_known; learnings = 0 });
  let best_progress = ref !total_known in
  let stagnant = ref 0 in
  let stalled = ref false in
  let completed = ref (stop states) in
  (* Cooperative cancellation, polled once per round boundary; see
     Runner_broadcast for the latching scheme. *)
  let cancelled = ref false in
  let cancel_requested () =
    (match cancel with
    | None -> ()
    | Some c -> if not !cancelled then cancelled := c ());
    !cancelled
  in
  let round = ref 0 in
  (* Hoisted phase jobs: the same two closures fire every round, so the
     barrier machinery allocates nothing inside the loop. *)
  let intent_job ~shard ~lo ~hi =
    Dynet.Plane.row_clear bplane shard;
    let p = !cur_phase in
    let len = ref 0 in
    for v = lo to hi - 1 do
      if Dynet.Plane.unsafe_mem plane v p then begin
        Dynet.Plane.unsafe_set bplane shard v;
        active.(lo + !len) <- v;
        incr len;
        loads.(v) <- loads.(v) + 1
      end
    done;
    shard_sends.(shard) <- !len
  [@@dynlint.hot]
  in
  (* Tail-recursive row scans, allocated once: [row_any] stops at the
     first broadcasting neighbor, [row_count] counts them all for the
     conservation counters when invariants are on. *)
  let rec row_any i stop =
    if i >= stop then false
    else if Dynet.Plane.unsafe_mem bplane merged (Dynet.Csr.neighbor csr i)
    then true
    else row_any (i + 1) stop
  [@@dynlint.hot]
  in
  let rec row_count i stop acc =
    if i >= stop then acc
    else
      row_count (i + 1) stop
        (if Dynet.Plane.unsafe_mem bplane merged (Dynet.Csr.neighbor csr i)
         then acc + 1
         else acc)
  [@@dynlint.hot]
  in
  let receive_job ~shard ~lo ~hi =
    let p = !cur_phase in
    for v = lo to hi - 1 do
      let start = Dynet.Csr.row_start csr v and stop = Dynet.Csr.row_stop csr v in
      let got =
        if checking then begin
          let copies = row_count start stop 0 in
          shard_copies.(shard) <- shard_copies.(shard) + copies;
          copies > 0
        end
        else row_any start stop
      in
      if got && not (Dynet.Plane.unsafe_mem plane v p) then begin
        Dynet.Plane.unsafe_set plane v p;
        known.(v) <- known.(v) + 1;
        shard_learned.(shard) <- shard_learned.(shard) + 1;
        states.(v) <-
          spec.restate states.(v)
            ~mask:(Dynet.Plane.extract_row plane v)
            ~known:known.(v)
      end
    done
  [@@dynlint.hot]
  in
  (* Push-side delivery for sparse rounds.  [receive_job] pulls: every
     node scans its neighbors until one broadcasts, which costs O(m)
     when broadcasters are rare (every scan runs to the end) but ~O(n)
     when they are dense (scans stop almost immediately).  With [b]
     broadcasters the push side costs O(n + sum of their degrees), so
     it wins exactly where pull loses; each round picks by density.
     Same staging discipline as [bplane]: a worker writes only its own
     row of [gplane] (bits indexed by the *receiving* node), rows are
     merged in ascending shard order, so delivery stays race-free and
     bit-identical to the pull path. *)
  let gplane = Dynet.Plane.create ~rows:(shards + 1) ~width:n in
  let push_job ~shard ~lo ~hi:_ =
    Dynet.Plane.row_clear gplane shard;
    (* A span's broadcasters are exactly its slice of [active], so the
       push side never rescans the span — it costs the sum of the
       broadcasters' degrees, which is what made it worth picking. *)
    for j = 0 to shard_sends.(shard) - 1 do
      let u = active.(lo + j) in
      let start = Dynet.Csr.row_start csr u
      and stop = Dynet.Csr.row_stop csr u in
      for i = start to stop - 1 do
        Dynet.Plane.unsafe_set gplane shard (Dynet.Csr.neighbor csr i)
      done
    done
  [@@dynlint.hot]
  in
  let apply_job ~shard ~lo ~hi =
    let p = !cur_phase in
    for v = lo to hi - 1 do
      if
        Dynet.Plane.unsafe_mem gplane merged v
        && not (Dynet.Plane.unsafe_mem plane v p)
      then begin
        Dynet.Plane.unsafe_set plane v p;
        known.(v) <- known.(v) + 1;
        shard_learned.(shard) <- shard_learned.(shard) + 1;
        states.(v) <-
          spec.restate states.(v)
            ~mask:(Dynet.Plane.extract_row plane v)
            ~known:known.(v)
      end
    done
  [@@dynlint.hot]
  in
  Shard_pool.with_pool ~spans @@ fun pool ->
  while
    (not !completed) && (not !stalled)
    && (not (cancel_requested ()))
    && !round < max_rounds
  do
    incr round;
    let r = !round in
    if tracing then Obs.Sink.emit obs (Obs.Trace.Round_start { round = r });
    if profiling then begin
      Obs.Span.enter prof ~cat:"round" "round";
      Obs.Span.add_counter prof "round" (float_of_int r)
    end;
    if profiling then Obs.Span.enter prof ~cat:"phase" "intent";
    let p = spec.phase_of states.(0) ~round:r in
    cur_phase := p;
    (match phase_msgs.(p) with
    | Some _ -> ()
    | None ->
        let msg = spec.message states.(0) p in
        phase_msgs.(p) <- Some msg;
        phase_cls.(p) <- P.classify msg);
    (* Blank last round's intents before the workers overwrite the
       index lists; the publish loop below then touches only this
       round's cells.  ([shard_sends] still holds last round's counts
       here — it is reassigned, not reset, by [intent_job].) *)
    for s = 0 to shards - 1 do
      let lo, _ = spans.(s) in
      for j = 0 to shard_sends.(s) - 1 do
        intents.(active.(lo + j)) <- None
      done
    done;
    Shard_pool.run pool intent_job;
    (* Merge the staging rows and publish the round's intents, in
       ascending shard order. *)
    b := 0;
    Dynet.Plane.row_clear bplane merged;
    let msg_cell = phase_msgs.(p) in
    for s = 0 to shards - 1 do
      Dynet.Plane.union_row_into bplane ~src:s ~dst:merged;
      let lo, _ = spans.(s) in
      for j = 0 to shard_sends.(s) - 1 do
        intents.(active.(lo + j)) <- msg_cell
      done;
      b := !b + shard_sends.(s)
    done;
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "adversary"
    end;
    let g = adversary ~round:r ~prev:!prev ~states ~intents in
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "graph"
    end;
    validate ~round:r g;
    (match on_graph with None -> () | Some f -> f ~round:r g);
    let tc0 = Ledger.tc ledger and rm0 = Ledger.removals ledger in
    Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Graph_change
           {
             round = r;
             added = Ledger.tc ledger - tc0;
             removed = Ledger.removals ledger - rm0;
           });
    Ledger.note_round ledger;
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "send"
    end;
    if !b > 0 then Ledger.record ledger phase_cls.(p) !b;
    if checking then c_sent := !c_sent + !b;
    if tracing then begin
      let cls_name = Msg_class.to_string phase_cls.(p) in
      for v = 0 to n - 1 do
        if Dynet.Plane.unsafe_mem bplane merged v then
          Obs.Sink.emit obs
            (Obs.Trace.Send { round = r; src = v; dst = None; cls = cls_name })
      done
    end;
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "deliver"
    end;
    ignore (Dynet.Csr.update csr g : bool);
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "receive"
    end;
    (* Conservation checking needs the pull path (it counts every
       delivered copy per receiver); otherwise pick by density — pull
       when broadcasters are dense (scans stop early), push when they
       are sparse (pull would scan every edge and mostly miss), and
       nothing on silent rounds.  The crossover is where pull's
       expected ~n²/b probes meet push's b·avg-degree writes. *)
    (if checking || 4 * !b >= n then Shard_pool.run pool receive_job
     else if !b > 0 then begin
       Shard_pool.run pool push_job;
       Dynet.Plane.row_clear gplane merged;
       for s = 0 to shards - 1 do
         Dynet.Plane.union_row_into gplane ~src:s ~dst:merged
       done;
       Shard_pool.run pool apply_job
     end);
    for s = 0 to shards - 1 do
      total_known := !total_known + shard_learned.(s);
      shard_learned.(s) <- 0;
      if checking then begin
        c_created := !c_created + shard_copies.(s);
        c_consumed := !c_consumed + shard_copies.(s);
        shard_copies.(s) <- 0
      end
    done;
    if profiling then Obs.Span.leave prof;
    if checking then begin
      if profiling then Obs.Span.enter prof ~cat:"phase" "check";
      Check.connected
        ~what:(Printf.sprintf "round %d: adversary graph connectivity" r)
        g;
      Check.require ~what:"ledger total equals broadcasts performed" (fun () ->
          Ledger.total ledger = !c_sent);
      Check.require ~what:"message-copy conservation" (fun () ->
          Check.conserved ~created:!c_created ~consumed:!c_consumed ~dropped:0
            ~in_flight:0);
      if profiling then Obs.Span.leave prof
    end;
    let pnow = !total_known in
    Ledger.note_progress ledger pnow;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Progress
           { round = r; progress = pnow; learnings = Ledger.learnings ledger });
    if pnow > !best_progress then begin
      best_progress := pnow;
      stagnant := 0
    end
    else begin
      incr stagnant;
      match stall_after with
      | Some w when !stagnant >= w -> stalled := true
      | Some _ | None -> ()
    end;
    Ilog.push timeline_totals (Ledger.total ledger);
    Ilog.push timeline_learnings (Ledger.learnings ledger);
    prev := g;
    completed := stop states;
    if profiling then Obs.Span.leave prof
  done;
  if tracing then begin
    Obs.Sink.emit obs
      (Obs.Trace.Run_end
         {
           rounds = !round;
           completed = !completed;
           messages = Ledger.total ledger;
         });
    Obs.Sink.flush obs
  end;
  for v = 0 to n - 1 do
    if loads.(v) > 0 then Ledger.record_sender ledger v loads.(v)
  done;
  let timeline =
    List.init (Ilog.len timeline_totals) (fun i ->
        (i + 1, Ilog.get timeline_totals i, Ilog.get timeline_learnings i))
  in
  let outcome =
    if !completed then Run_result.Completed
    else if !stalled then
      Run_result.Stalled { rounds_without_progress = !stagnant }
    else if !cancelled then
      Run_result.Cancelled { achieved = !total_known; target = target_progress }
    else Run_result.Partial { achieved = !total_known; target = target_progress }
  in
  ( Run_result.make ~outcome ~rounds:!round ~completed:!completed ~ledger
      ~timeline (),
    states )

(* {2 The sharded unicast path} *)

let run_unicast_sharded (type s m)
    (module P : Runner_unicast.PROTOCOL with type state = s and type msg = m)
    ~spans ?init_prev ~obs ~prof ?on_graph ?target_progress ?stall_after
    ?cancel ~(states : s array) ~(adversary : s Runner_unicast.adversary)
    ~max_rounds
    ~stop () =
  let n = Array.length states in
  let shards = Array.length spans in
  let shard_of = Array.make (max n 1) 0 in
  Array.iteri
    (fun s (lo, hi) ->
      for v = lo to hi - 1 do
        shard_of.(v) <- s
      done)
    spans;
  let ledger = Ledger.create () in
  let timeline = ref [] in
  let tracing = not (Obs.Sink.is_null obs) in
  let profiling = not (Obs.Span.is_null prof) in
  let checking = Check.enabled () in
  let c_sent = ref 0 and c_created = ref 0 and c_consumed = ref 0 in
  let sum_progress () =
    Array.fold_left (fun acc st -> acc + P.progress st) 0 states
  in
  let p0 = sum_progress () in
  Ledger.note_progress ledger p0;
  if tracing then
    Obs.Sink.emit obs
      (Obs.Trace.Progress { round = 0; progress = p0; learnings = 0 });
  let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
  let token_sent = Dynet.Bitset.create (n * n) in
  let traffic = ref ([] : Runner_unicast.traffic) in
  let best_progress = ref p0 in
  let stagnant = ref 0 in
  let stalled = ref false in
  let completed = ref (stop states) in
  (* Cooperative cancellation, polled once per round boundary; see
     Runner_broadcast for the latching scheme. *)
  let cancelled = ref false in
  let cancel_requested () =
    (match cancel with
    | None -> ()
    | Some c -> if not !cancelled then cancelled := c ());
    !cancelled
  in
  let round = ref 0 in
  (* Send phase scratch: workers park the new state and raw send list
     per node (committed by the coordinator in node order, so a
     protocol violation aborts with exactly the sequential engine's
     states), and stage each message into the (src shard, dst shard)
     buffer for the parallel delivery pass. *)
  let new_states = Array.copy states in
  let outs : (Dynet.Node_id.t * m) list array = Array.make (max n 1) [] in
  let stage : (int * int * m) list ref array array =
    Array.init shards (fun _ -> Array.init shards (fun _ -> ref []))
  in
  let inboxes : (Dynet.Node_id.t * m) list array = Array.make (max n 1) [] in
  let shard_consumed = Array.make shards 0 in
  let cur_graph = ref (Dynet.Graph.empty ~n) in
  let cur_round = ref 0 in
  let send_job ~shard ~lo ~hi =
    let g = !cur_graph and r = !cur_round in
    for v = lo to hi - 1 do
      let neighbors = Dynet.Graph.neighbors g v in
      let st, out = P.send states.(v) ~round:r ~neighbors in
      new_states.(v) <- st;
      outs.(v) <- out;
      List.iter
        (fun (dst, msg) ->
          (* Out-of-range destinations are protocol violations; the
             coordinator's replay raises them in node order, so here
             they are simply not staged. *)
          if dst >= 0 && dst < n then begin
            let cell = stage.(shard).(shard_of.(dst)) in
            cell := (v, dst, msg) :: !cell
          end)
        out
    done
  in
  let receive_job ~shard ~lo ~hi =
    let g = !cur_graph and r = !cur_round in
    (* Drain the staging buffers addressed to this shard, in ascending
       source-shard order; each buffer was built by conses, so its
       reversal is send order, and the concatenation over source
       shards is exactly the sequential engine's global send order. *)
    for src_shard = 0 to shards - 1 do
      List.iter
        (fun (src, dst, msg) ->
          if shard_of.(dst) = shard then
            inboxes.(dst) <- (src, msg) :: inboxes.(dst))
        (List.rev !(stage.(src_shard).(shard)))
    done;
    for v = lo to hi - 1 do
      let inbox =
        List.stable_sort
          (fun (a, _) (b, _) -> Dynet.Node_id.compare a b)
          (List.rev inboxes.(v))
      in
      inboxes.(v) <- [];
      if checking then
        shard_consumed.(shard) <- shard_consumed.(shard) + List.length inbox;
      states.(v) <-
        P.receive states.(v) ~round:r ~neighbors:(Dynet.Graph.neighbors g v)
          ~inbox
    done
  in
  Shard_pool.with_pool ~spans @@ fun pool ->
  while
    (not !completed) && (not !stalled)
    && (not (cancel_requested ()))
    && !round < max_rounds
  do
    incr round;
    let r = !round in
    if tracing then Obs.Sink.emit obs (Obs.Trace.Round_start { round = r });
    if profiling then begin
      Obs.Span.enter prof ~cat:"round" "round";
      Obs.Span.add_counter prof "round" (float_of_int r)
    end;
    if profiling then Obs.Span.enter prof ~cat:"phase" "adversary";
    let g = adversary ~round:r ~prev:!prev ~states ~traffic:!traffic in
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "graph"
    end;
    Engine_error.check_graph ~round:r ~n g;
    (match on_graph with None -> () | Some f -> f ~round:r g);
    let tc0 = Ledger.tc ledger and rm0 = Ledger.removals ledger in
    Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Graph_change
           {
             round = r;
             added = Ledger.tc ledger - tc0;
             removed = Ledger.removals ledger - rm0;
           });
    Ledger.note_round ledger;
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "send"
    end;
    cur_graph := g;
    cur_round := r;
    Array.iter (fun row -> Array.iter (fun cell -> cell := []) row) stage;
    Shard_pool.run pool send_job;
    (* Sequential replay in node order: state commits, neighbor and
       duplicate-token checks, ledger, trace, and the traffic fed to
       the next round's adversary — bit-identical to Runner_unicast,
       including which states a violation leaves untouched. *)
    let round_traffic = ref [] in
    Dynet.Bitset.clear token_sent;
    for v = 0 to n - 1 do
      states.(v) <- new_states.(v);
      let neighbors = Dynet.Graph.neighbors g v in
      List.iter
        (fun (dst, msg) ->
          if not (Runner_unicast.mem_sorted neighbors dst) then
            raise
              (Engine_error.Protocol_violation
                 (Printf.sprintf "round %d: node %d sent to non-neighbor %d" r
                    v dst));
          let cls = P.classify msg in
          (match cls with
          | Msg_class.Token | Msg_class.Walk ->
              let pair = (v * n) + dst in
              if Dynet.Bitset.mem token_sent pair then
                raise
                  (Engine_error.Protocol_violation
                     (Printf.sprintf
                        "round %d: node %d sent two tokens to %d in one round"
                        r v dst));
              Dynet.Bitset.set token_sent pair
          | Msg_class.Completeness | Msg_class.Request | Msg_class.Center
          | Msg_class.Control ->
              ());
          Ledger.record ledger cls 1;
          Ledger.record_sender ledger v 1;
          if checking then begin
            incr c_sent;
            incr c_created
          end;
          if tracing then
            Obs.Sink.emit obs
              (Obs.Trace.Send
                 {
                   round = r;
                   src = v;
                   dst = Some dst;
                   cls = Msg_class.to_string cls;
                 });
          round_traffic := (v, dst, cls) :: !round_traffic)
        outs.(v);
      outs.(v) <- []
    done;
    if profiling then begin
      Obs.Span.leave prof;
      Obs.Span.enter prof ~cat:"phase" "receive"
    end;
    Shard_pool.run pool receive_job;
    if checking then
      for s = 0 to shards - 1 do
        c_consumed := !c_consumed + shard_consumed.(s);
        shard_consumed.(s) <- 0
      done;
    if profiling then Obs.Span.leave prof;
    if checking then begin
      if profiling then Obs.Span.enter prof ~cat:"phase" "check";
      Check.connected
        ~what:(Printf.sprintf "round %d: adversary graph connectivity" r)
        g;
      Check.require ~what:"ledger total equals physical sends" (fun () ->
          Ledger.total ledger = !c_sent);
      Check.require ~what:"message-copy conservation" (fun () ->
          Check.conserved ~created:!c_created ~consumed:!c_consumed ~dropped:0
            ~in_flight:0);
      if profiling then Obs.Span.leave prof
    end;
    let p = sum_progress () in
    Ledger.note_progress ledger p;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Progress
           { round = r; progress = p; learnings = Ledger.learnings ledger });
    if p > !best_progress then begin
      best_progress := p;
      stagnant := 0
    end
    else begin
      incr stagnant;
      match stall_after with
      | Some w when !stagnant >= w -> stalled := true
      | Some _ | None -> ()
    end;
    timeline :=
      (r, Ledger.total ledger, Ledger.learnings ledger) :: !timeline;
    prev := g;
    traffic := List.rev !round_traffic;
    completed := stop states;
    if profiling then Obs.Span.leave prof
  done;
  if tracing then begin
    Obs.Sink.emit obs
      (Obs.Trace.Run_end
         {
           rounds = !round;
           completed = !completed;
           messages = Ledger.total ledger;
         });
    Obs.Sink.flush obs
  end;
  let outcome =
    if !completed then Run_result.Completed
    else if !stalled then
      Run_result.Stalled { rounds_without_progress = !stagnant }
    else if !cancelled then
      Run_result.Cancelled
        { achieved = sum_progress (); target = target_progress }
    else
      Run_result.Partial { achieved = sum_progress (); target = target_progress }
  in
  ( Run_result.make ~outcome ~rounds:!round ~completed:!completed ~ledger
      ~timeline:(List.rev !timeline) (),
    states )

(* {2 Engine packaging} *)

let spans_for ~n ~shards ~boundary_bug =
  let spans = Shard_pool.ranges ~n ~shards () in
  if boundary_bug && Array.length spans > 1 then begin
    (* The seeded mutant for the fuzz harness's smoke test: shard 1
       starts one node late, so the node on the 0/1 boundary is owned
       by nobody — the classic off-by-one in a range partition. *)
    let lo, hi = spans.(1) in
    if lo < hi then spans.(1) <- (min (lo + 1) hi, hi)
  end;
  spans

let make ?(shards = 1) ?(boundary_bug = false) () =
  if shards < 1 then invalid_arg "Soa.make: shards must be >= 1";
  let module E = struct
    let name =
      if shards = 1 then kernel_name
      else Printf.sprintf "%s-%d" kernel_name shards

    module Broadcast = struct
      let run (type s m)
          (module P : Runner_broadcast.PROTOCOL
            with type state = s
             and type msg = m) ?init_prev ?(obs = Obs.Sink.null)
          ?(faults = Faults.Plan.none) ?(prof = Obs.Span.null) ?on_graph
          ?target_progress ?stall_after ?cancel ~states ~adversary
          ~max_rounds ~stop () =
        let n = Array.length states in
        match P.plane with
        | Some spec
          when Faults.Plan.is_none faults
               && n > 0
               && spec.Runner_broadcast.width states.(0) > 0 ->
            run_plane
              (module P)
              spec
              ~spans:(spans_for ~n ~shards ~boundary_bug)
              ?init_prev ~obs ~prof ?on_graph ?target_progress ?stall_after
              ?cancel ~states ~adversary ~max_rounds ~stop ()
        | Some _ | None ->
            Runner_broadcast.run
              (module P)
              ?init_prev ~obs ~faults ~prof ?on_graph ?target_progress
              ?stall_after ?cancel ~states ~adversary ~max_rounds ~stop ()
    end

    module Unicast = struct
      let run (type s m)
          (module P : Runner_unicast.PROTOCOL
            with type state = s
             and type msg = m) ?init_prev ?(obs = Obs.Sink.null)
          ?(faults = Faults.Plan.none) ?(prof = Obs.Span.null) ?on_graph
          ?target_progress ?stall_after ?cancel ~states ~adversary
          ~max_rounds ~stop () =
        let n = Array.length states in
        if Faults.Plan.is_none faults && n > 0 then
          run_unicast_sharded
            (module P)
            ~spans:(spans_for ~n ~shards ~boundary_bug)
            ?init_prev ~obs ~prof ?on_graph ?target_progress ?stall_after
            ?cancel ~states ~adversary ~max_rounds ~stop ()
        else
          Runner_unicast.run
            (module P)
            ?init_prev ~obs ~faults ~prof ?on_graph ?target_progress
            ?stall_after ?cancel ~states ~adversary ~max_rounds ~stop ()
    end
  end in
  (module E : Engine_sig.ENGINE)

let engine ?shards () = make ?shards ()
let default_engine = make ()
let name = kernel_name
