open Dynet.Ops

type t = {
  counts : int array;
  mutable rounds : int;
  mutable tc : int;
  mutable removals : int;
  mutable first_progress : int option;
  mutable last_progress : int;
  loads : (Dynet.Node_id.t, int) Hashtbl.t;
}

let create () =
  {
    counts = Array.make Msg_class.count 0;
    rounds = 0;
    tc = 0;
    removals = 0;
    first_progress = None;
    last_progress = 0;
    loads = Hashtbl.create 32;
  }

let copy t =
  {
    counts = Array.copy t.counts;
    rounds = t.rounds;
    tc = t.tc;
    removals = t.removals;
    first_progress = t.first_progress;
    last_progress = t.last_progress;
    loads = Hashtbl.copy t.loads;
  }

let record_sender t v m =
  if m < 0 then invalid_arg "Ledger.record_sender: negative message count";
  let old = Option.value (Hashtbl.find_opt t.loads v) ~default:0 in
  Hashtbl.replace t.loads v (old + m)

let sender_load t v = Option.value (Hashtbl.find_opt t.loads v) ~default:0
let max_load t = Hashtbl.fold (fun _ m acc -> max m acc) t.loads 0
let load_list t = Hashtbl.fold (fun _ m acc -> m :: acc) t.loads []

let mean_load t =
  let total, senders =
    Hashtbl.fold (fun _ m (total, n) -> (total + m, n + 1)) t.loads (0, 0)
  in
  if senders = 0 then 0. else float_of_int total /. float_of_int senders

let merge a b =
  let learn_span t =
    match t.first_progress with
    | None -> 0
    | Some first -> t.last_progress - first
  in
  let loads = Hashtbl.copy a.loads in
  Hashtbl.iter
    (fun v m ->
      let old = Option.value (Hashtbl.find_opt loads v) ~default:0 in
      Hashtbl.replace loads v (old + m))
    b.loads;
  {
    counts = Array.init Msg_class.count (fun i -> a.counts.(i) + b.counts.(i));
    rounds = a.rounds + b.rounds;
    tc = a.tc + b.tc;
    removals = a.removals + b.removals;
    first_progress = Some 0;
    last_progress = learn_span a + learn_span b;
    loads;
  }

let record t cls m =
  if m < 0 then invalid_arg "Ledger.record: negative message count";
  let i = Msg_class.index cls in
  t.counts.(i) <- t.counts.(i) + m

let count t cls = t.counts.(Msg_class.index cls)
let total t = Array.fold_left ( + ) 0 t.counts

let total_excluding t excluded =
  List.fold_left
    (fun acc cls ->
      if List.exists (Msg_class.equal cls) excluded then acc
      else acc + count t cls)
    0 Msg_class.all

let note_round t = t.rounds <- t.rounds + 1 [@@dynlint.hot]
let rounds t = t.rounds

let note_graph_change t ~prev ~cur =
  (* Single merge walk over the graphs' sorted edge keys instead of two
     Edge_set.diff set constructions per round. *)
  let inserted, removed = Dynet.Graph.delta_counts ~prev ~cur in
  t.tc <- t.tc + inserted;
  t.removals <- t.removals + removed

let tc t = t.tc
let removals t = t.removals

let note_progress t p =
  (match t.first_progress with None -> t.first_progress <- Some p | Some _ -> ());
  t.last_progress <- p

let learnings t =
  match t.first_progress with
  | None -> 0
  | Some first -> t.last_progress - first

let competitive_cost t ~alpha = float_of_int (total t) -. (alpha *. float_of_int t.tc)

let amortized t ~k =
  if k <= 0 then invalid_arg "Ledger.amortized: k must be positive";
  float_of_int (total t) /. float_of_int k

let amortized_competitive t ~alpha ~k =
  if k <= 0 then invalid_arg "Ledger.amortized_competitive: k must be positive";
  competitive_cost t ~alpha /. float_of_int k

let pp ppf t =
  Format.fprintf ppf
    "@[<v>rounds=%d total=%d tc=%d removals=%d learnings=%d@ %a@]" t.rounds
    (total t) t.tc t.removals (learnings t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf cls ->
         Format.fprintf ppf "%a=%d" Msg_class.pp cls (count t cls)))
    Msg_class.all
