(* The implementation lives in Obs.Stats so the observability layer
   (Obs.Metrics summaries) can use it without depending on the engine;
   this alias keeps the historical Engine.Stats path working. *)
include Obs.Stats
