(** Outcome of one simulated execution. *)

type t = {
  rounds : int;  (** Rounds actually executed. *)
  completed : bool;
      (** Whether the stop predicate fired before the round cap. *)
  ledger : Ledger.t;  (** Full communication-cost accounting. *)
  timeline : (int * int * int) list;
      (** Per-round samples [(round, cumulative messages, cumulative
          progress)] in round order; used for learning-curve plots and
          the potential-growth experiments. *)
}

val make :
  rounds:int -> completed:bool -> ledger:Ledger.t ->
  timeline:(int * int * int) list -> t

val messages : t -> int
(** Shorthand for [Ledger.total t.ledger]. *)

val pp : Format.formatter -> t -> unit
