(** Outcome of one simulated execution. *)

type t = {
  rounds : int;  (** Rounds actually executed. *)
  completed : bool;
      (** Whether the stop predicate fired before the round cap. *)
  ledger : Ledger.t;  (** Full communication-cost accounting. *)
  timeline : (int * int * int) list;
      (** Per-round samples [(round, cumulative messages, cumulative
          progress)] in round order; used for learning-curve plots and
          the potential-growth experiments. *)
}

val make :
  rounds:int -> completed:bool -> ledger:Ledger.t ->
  timeline:(int * int * int) list -> t

val messages : t -> int
(** Shorthand for [Ledger.total t.ledger]. *)

val to_report :
  ?name:string -> ?alpha:float -> ?extra:(string * Obs.Json.t) list -> t ->
  Obs.Report.t
(** The machine-readable counterpart of {!pp}: everything the ledger
    accounted for — totals, per-class counts, [TC], removals,
    learnings, the [alpha]-competitive cost (default [alpha = 1]),
    per-node load statistics, and the timeline — as an {!Obs.Report.t}
    ready for JSON output.  [name] (default ["run"]) labels the run;
    [extra] fields are appended to the JSON object verbatim. *)

val pp : Format.formatter -> t -> unit
