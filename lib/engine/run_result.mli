(** Outcome of one simulated execution. *)

(** Graceful-degradation verdict.  [Completed] — the stop predicate
    fired.  [Partial] — the round cap was hit; [achieved] is the final
    global progress (sum over nodes of tokens known) and [target] the
    progress a fully successful run would have reached (when the
    caller declared one), so [achieved/target] is the run's coverage.
    [Stalled] — the engine's opt-in non-progress detector fired: global
    progress did not increase for [rounds_without_progress] consecutive
    rounds (at least the caller's [stall_after] window, typically a
    full schedule period), so the run was cut short instead of spinning
    to the round cap — the outcome a protocol livelocking against a
    periodic schedule reports.  [Cancelled] — the caller's cooperative
    [?cancel] poll fired at a round boundary and the run stopped there;
    like [Partial] it carries the progress achieved so far and the
    declared target, so a cancelled run still reports its coverage.  A
    run whose stop predicate fired before the cancel poll was observed
    reports [Completed] — cancellation after completion is a no-op.
    [Aborted] — the engine detected the run could never make further
    progress (e.g. every node crashed under a fault plan with no
    restarts) and stopped early. *)
type outcome =
  | Completed
  | Partial of { achieved : int; target : int option }
  | Stalled of { rounds_without_progress : int }
  | Cancelled of { achieved : int; target : int option }
  | Aborted of string

type t = {
  rounds : int;  (** Rounds actually executed. *)
  completed : bool;
      (** Whether the stop predicate fired before the round cap
          (i.e. [outcome = Completed]). *)
  outcome : outcome;  (** The graceful-degradation verdict. *)
  ledger : Ledger.t;  (** Full communication-cost accounting. *)
  fault_counts : Faults.Counts.t option;
      (** Per-class fault tallies — [None] when the run used
          {!Faults.Plan.none} (the clean model). *)
  timeline : (int * int * int) list;
      (** Per-round samples [(round, cumulative messages, cumulative
          progress)] in round order; used for learning-curve plots and
          the potential-growth experiments. *)
}

val coverage : outcome -> float option
(** Fraction of the declared target achieved: [Some 1.] for
    [Completed], [Some (achieved/target)] (clamped to 1) for a
    [Partial] or [Cancelled] with a known positive target, [None]
    otherwise. *)

val make :
  ?outcome:outcome ->
  ?fault_counts:Faults.Counts.t ->
  rounds:int ->
  completed:bool ->
  ledger:Ledger.t ->
  timeline:(int * int * int) list ->
  unit ->
  t
(** [outcome] defaults to [Completed] when [completed], else to a
    [Partial] with the ledger's learnings and no target (legacy
    callers that predate degradation reporting). *)

val messages : t -> int
(** Shorthand for [Ledger.total t.ledger]. *)

val to_report :
  ?name:string -> ?alpha:float -> ?extra:(string * Obs.Json.t) list -> t ->
  Obs.Report.t
(** The machine-readable counterpart of {!pp}: everything the ledger
    accounted for — totals, per-class counts, [TC], removals,
    learnings, the [alpha]-competitive cost (default [alpha = 1]),
    per-node load statistics, and the timeline — as an {!Obs.Report.t}
    ready for JSON output.  [name] (default ["run"]) labels the run;
    [extra] fields are appended to the JSON object verbatim.  The
    degradation outcome is always included (an ["outcome"] field, plus
    ["achieved"]/["target"]/["coverage"] for partial and cancelled runs
    and ["abort_reason"] for aborted ones); when a fault plan was
    active a ["faults"] object carries the per-class fault counts. *)

val pp : Format.formatter -> t -> unit
