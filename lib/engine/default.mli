(** The production engine pair, packaged behind the {!Engine_sig}
    seam: {!Runner_broadcast} and {!Runner_unicast} with their
    hoisted-boolean zero-cost layers, bitset bookkeeping, and
    binary-search neighbor validation.  Differentially checked against
    {!Reference} by the [lib/fuzz] harness. *)

val name : string
(** ["fastpath"]. *)

module Broadcast : Engine_sig.BROADCAST
module Unicast : Engine_sig.UNICAST

val engine : (module Engine_sig.ENGINE)
(** First-class packaging for engine-parametric call sites
    ([Gossip.Runners]' [?engine], the fuzz harness). *)
