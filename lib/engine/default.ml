module E = struct
  let name = "fastpath"

  module Broadcast = Runner_broadcast
  module Unicast = Runner_unicast
end

include E

let engine = (module E : Engine_sig.ENGINE)
