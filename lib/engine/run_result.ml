type outcome =
  | Completed
  | Partial of { achieved : int; target : int option }
  | Stalled of { rounds_without_progress : int }
  | Cancelled of { achieved : int; target : int option }
  | Aborted of string

type t = {
  rounds : int;
  completed : bool;
  outcome : outcome;
  ledger : Ledger.t;
  fault_counts : Faults.Counts.t option;
  timeline : (int * int * int) list;
}

let coverage = function
  | Completed -> Some 1.
  | Partial { achieved; target = Some target }
  | Cancelled { achieved; target = Some target }
    when target > 0 ->
      Some (Float.min 1. (float_of_int achieved /. float_of_int target))
  | Partial _ | Cancelled _ | Stalled _ | Aborted _ -> None

let make ?outcome ?fault_counts ~rounds ~completed ~ledger ~timeline () =
  let outcome =
    match outcome with
    | Some o -> o
    | None ->
        if completed then Completed
        else Partial { achieved = Ledger.learnings ledger; target = None }
  in
  { rounds; completed; outcome; ledger; fault_counts; timeline }

let messages t = Ledger.total t.ledger

let outcome_fields t =
  let tag =
    match t.outcome with
    | Completed -> "completed"
    | Partial _ -> "partial"
    | Stalled _ -> "stalled"
    | Cancelled _ -> "cancelled"
    | Aborted _ -> "aborted"
  in
  let base = [ ("outcome", Obs.Json.String tag) ] in
  let detail =
    match t.outcome with
    | Completed -> []
    | Partial { achieved; target } | Cancelled { achieved; target } ->
        [ ("achieved", Obs.Json.Int achieved) ]
        @ (match target with
          | None -> []
          | Some tgt -> [ ("target", Obs.Json.Int tgt) ])
        @ (match coverage t.outcome with
          | None -> []
          | Some c -> [ ("coverage", Obs.Json.Float c) ])
    | Stalled { rounds_without_progress } ->
        [ ("stalled_for", Obs.Json.Int rounds_without_progress) ]
    | Aborted reason -> [ ("abort_reason", Obs.Json.String reason) ]
  in
  let faults =
    match t.fault_counts with
    | None -> []
    | Some c ->
        [
          ( "faults",
            Obs.Json.Obj
              (List.map
                 (fun (name, v) -> (name, Obs.Json.Int v))
                 (Faults.Counts.to_fields c)) );
        ]
  in
  base @ detail @ faults

let to_report ?(name = "run") ?(alpha = 1.) ?(extra = []) t =
  Obs.Report.make ~name ~completed:t.completed ~rounds:t.rounds
    ~messages:(Ledger.total t.ledger)
    ~class_counts:
      (List.map
         (fun cls -> (Msg_class.to_string cls, Ledger.count t.ledger cls))
         Msg_class.all)
    ~tc:(Ledger.tc t.ledger) ~removals:(Ledger.removals t.ledger)
    ~learnings:(Ledger.learnings t.ledger) ~alpha
    ~competitive_cost:(Ledger.competitive_cost t.ledger ~alpha)
    ~max_load:(Ledger.max_load t.ledger)
    ~mean_load:(Ledger.mean_load t.ledger)
    ?load_summary:
      (Obs.Metrics.summarize (List.map float_of_int (Ledger.load_list t.ledger)))
    ~timeline:t.timeline
    ~extra:(outcome_fields t @ extra)
    ()

let pp ppf t =
  let status =
    match t.outcome with
    | Completed -> "completed"
    | Aborted reason -> "ABORTED (" ^ reason ^ ")"
    | Partial { achieved; target = Some target } when target > 0 ->
        Printf.sprintf "PARTIAL %d/%d (%.0f%% coverage)" achieved target
          (100. *. float_of_int achieved /. float_of_int target)
    | Partial _ -> "HIT ROUND CAP"
    | Cancelled { achieved; target = Some target } when target > 0 ->
        Printf.sprintf "CANCELLED %d/%d (%.0f%% coverage)" achieved target
          (100. *. float_of_int achieved /. float_of_int target)
    | Cancelled _ -> "CANCELLED"
    | Stalled { rounds_without_progress } ->
        Printf.sprintf "STALLED (no progress for %d rounds)"
          rounds_without_progress
  in
  Format.fprintf ppf "@[<v>%s after %d rounds@ %a@]" status t.rounds Ledger.pp
    t.ledger;
  match t.fault_counts with
  | None -> ()
  | Some c -> Format.fprintf ppf "@ faults: %a" Faults.Counts.pp c
