type t = {
  rounds : int;
  completed : bool;
  ledger : Ledger.t;
  timeline : (int * int * int) list;
}

let make ~rounds ~completed ~ledger ~timeline =
  { rounds; completed; ledger; timeline }

let messages t = Ledger.total t.ledger

let pp ppf t =
  Format.fprintf ppf "@[<v>%s after %d rounds@ %a@]"
    (if t.completed then "completed" else "HIT ROUND CAP")
    t.rounds Ledger.pp t.ledger
