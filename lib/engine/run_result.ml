type t = {
  rounds : int;
  completed : bool;
  ledger : Ledger.t;
  timeline : (int * int * int) list;
}

let make ~rounds ~completed ~ledger ~timeline =
  { rounds; completed; ledger; timeline }

let messages t = Ledger.total t.ledger

let to_report ?(name = "run") ?(alpha = 1.) ?(extra = []) t =
  Obs.Report.make ~name ~completed:t.completed ~rounds:t.rounds
    ~messages:(Ledger.total t.ledger)
    ~class_counts:
      (List.map
         (fun cls -> (Msg_class.to_string cls, Ledger.count t.ledger cls))
         Msg_class.all)
    ~tc:(Ledger.tc t.ledger) ~removals:(Ledger.removals t.ledger)
    ~learnings:(Ledger.learnings t.ledger) ~alpha
    ~competitive_cost:(Ledger.competitive_cost t.ledger ~alpha)
    ~max_load:(Ledger.max_load t.ledger)
    ~mean_load:(Ledger.mean_load t.ledger)
    ?load_summary:
      (Obs.Metrics.summarize (List.map float_of_int (Ledger.load_list t.ledger)))
    ~timeline:t.timeline ~extra ()

let pp ppf t =
  Format.fprintf ppf "@[<v>%s after %d rounds@ %a@]"
    (if t.completed then "completed" else "HIT ROUND CAP")
    t.rounds Ledger.pp t.ledger
