(* The common engine seam: module types shared by the fast-path
   runners ([Default]), the pseudocode-faithful [Reference] engine, and
   any future engine (the sharded mega-scale engine, the serve
   daemon's workers).  The PROTOCOL and adversary types stay owned by
   Runner_broadcast / Runner_unicast so every implementation runs the
   exact same protocols against the exact same adversaries. *)

module type BROADCAST = sig
  val run :
    (module Runner_broadcast.PROTOCOL with type state = 's and type msg = 'm) ->
    ?init_prev:Dynet.Graph.t ->
    ?obs:Obs.Sink.t ->
    ?faults:Faults.Plan.t ->
    ?prof:Obs.Span.t ->
    ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
    ?target_progress:int ->
    ?stall_after:int ->
    ?cancel:(unit -> bool) ->
    states:'s array ->
    adversary:('s, 'm) Runner_broadcast.adversary ->
    max_rounds:int ->
    stop:('s array -> bool) ->
    unit ->
    Run_result.t * 's array
end

module type UNICAST = sig
  val run :
    (module Runner_unicast.PROTOCOL with type state = 's and type msg = 'm) ->
    ?init_prev:Dynet.Graph.t ->
    ?obs:Obs.Sink.t ->
    ?faults:Faults.Plan.t ->
    ?prof:Obs.Span.t ->
    ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
    ?target_progress:int ->
    ?stall_after:int ->
    ?cancel:(unit -> bool) ->
    states:'s array ->
    adversary:'s Runner_unicast.adversary ->
    max_rounds:int ->
    stop:('s array -> bool) ->
    unit ->
    Run_result.t * 's array
end

module type ENGINE = sig
  val name : string

  module Broadcast : BROADCAST
  module Unicast : UNICAST
end
