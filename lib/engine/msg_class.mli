(** Message categories for cost accounting.

    The analyses in the paper bound each kind of message separately:
    Theorem 3.1 counts (1) token messages, (2) completeness
    announcements and (3) token requests; Algorithm 2 additionally moves
    tokens along random walks and needs center identities.  The ledger
    keeps one counter per category so every per-type bound in the paper
    can be checked individually. *)

type t =
  | Token  (** A token payload (type 1 in Theorem 3.1's proof). *)
  | Completeness  (** Completeness announcement (type 2). *)
  | Request  (** Token request (type 3). *)
  | Walk  (** A token taking a random-walk step (Algorithm 2 phase 1). *)
  | Center
      (** Center identity announcement (Algorithm 2; not charged by the
          paper — bounded by [TC] under the adversary-competitive
          measure, reported separately here). *)
  | Control  (** Anything else (setup, baselines' tree construction). *)

val all : t list
val count : int
val index : t -> int
val of_index : int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
