open Dynet.Ops

(* A persistent Domain pool for intra-run node-space sharding: the
   round loop fires the same preallocated job closures thousands of
   times, so workers are spawned once per run and parked on a
   condition variable between phases instead of paying a Domain spawn
   per barrier.  Shard 0 always executes on the calling domain — with
   [shards = 1] the pool degenerates to a plain call and owns no
   domains, locks, or state at all.

   Determinism contract (the same one Analysis.Sweep makes at run
   granularity): a job writes only state owned by its shard's node
   range [lo, hi), so the outcome of a phase is independent of worker
   interleaving, and any cross-shard combination happens in the
   caller's sequential code between phases, in ascending shard order.
   Worker exceptions are captured and re-raised on the caller after
   the barrier, lowest shard first — again interleaving-independent. *)

type job = shard:int -> lo:int -> hi:int -> unit

let ranges ~n ~shards ?(align = 1) () =
  if shards < 1 then invalid_arg "Shard_pool.ranges: shards must be >= 1";
  if align < 1 then invalid_arg "Shard_pool.ranges: align must be >= 1";
  let per = (n + shards - 1) / shards in
  let per = (per + align - 1) / align * align in
  Array.init shards (fun i ->
      let lo = min n (i * per) in
      let hi = min n (lo + per) in
      (lo, hi))

let no_job : job = fun ~shard:_ ~lo:_ ~hi:_ -> ()

type shared = {
  mutable job : job;
  mutable epoch : int;
  mutable done_count : int;
  mutable failures : (int * exn) list;
  mutable stopping : bool;
  m : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
}

type t = {
  shards : int;
  spans : (int * int) array;
  shared : shared option;
  workers : unit Domain.t array;
}

let shards t = t.shards
let span t i = t.spans.(i)

let worker_loop shared ~shard ~lo ~hi =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock shared.m;
    while shared.epoch = !my_epoch && not shared.stopping do
      Condition.wait shared.work shared.m
    done;
    if shared.stopping then begin
      Mutex.unlock shared.m;
      running := false
    end
    else begin
      my_epoch := shared.epoch;
      let job = shared.job in
      Mutex.unlock shared.m;
      let failure =
        match job ~shard ~lo ~hi with () -> None | exception e -> Some e
      in
      Mutex.lock shared.m;
      (match failure with
      | None -> ()
      | Some e -> shared.failures <- (shard, e) :: shared.failures);
      shared.done_count <- shared.done_count + 1;
      Condition.signal shared.finished;
      Mutex.unlock shared.m
    end
  done

let create ~spans =
  let shards = Array.length spans in
  if shards < 1 then invalid_arg "Shard_pool.create: need at least one shard";
  if shards = 1 then { shards; spans; shared = None; workers = [||] }
  else begin
    let shared =
      {
        job = no_job;
        epoch = 0;
        done_count = 0;
        failures = [];
        stopping = false;
        m = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
      }
    in
    let workers =
      Array.init (shards - 1) (fun i ->
          let shard = i + 1 in
          let lo, hi = spans.(shard) in
          Domain.spawn (fun () -> worker_loop shared ~shard ~lo ~hi))
    in
    { shards; spans; shared = Some shared; workers }
  end

let run t (job : job) =
  match t.shared with
  | None ->
      let lo, hi = t.spans.(0) in
      job ~shard:0 ~lo ~hi
  | Some shared ->
      Mutex.lock shared.m;
      shared.job <- job;
      shared.epoch <- shared.epoch + 1;
      shared.done_count <- 0;
      shared.failures <- [];
      Condition.broadcast shared.work;
      Mutex.unlock shared.m;
      let lo, hi = t.spans.(0) in
      let own_failure =
        match job ~shard:0 ~lo ~hi with () -> None | exception e -> Some e
      in
      Mutex.lock shared.m;
      while shared.done_count < t.shards - 1 do
        Condition.wait shared.finished shared.m
      done;
      let failures = shared.failures in
      shared.job <- no_job;
      Mutex.unlock shared.m;
      let failures =
        match own_failure with
        | None -> failures
        | Some e -> (0, e) :: failures
      in
      (* Re-raise the lowest failing shard's exception.  Not a sort:
         [List.sort] allocates its merge closures even on an empty
         list, and this runs once per barrier, so the no-failure path
         must stay allocation-free. *)
      (match failures with
      | [] -> ()
      | (s0, e0) :: rest ->
          let _, e =
            List.fold_left
              (fun ((sa, _) as a) ((sb, _) as b) -> if sb < sa then b else a)
              (s0, e0) rest
          in
          raise e)

let shutdown t =
  match t.shared with
  | None -> ()
  | Some shared ->
      Mutex.lock shared.m;
      shared.stopping <- true;
      Condition.broadcast shared.work;
      Mutex.unlock shared.m;
      Array.iter Domain.join t.workers

let with_pool ~spans f =
  let t = create ~spans in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
