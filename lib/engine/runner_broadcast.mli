(** Synchronous local-broadcast engine.

    Models the paper's local-broadcast communication (Section 1.3):
    each round, every node chooses at most one message to broadcast
    {e before} knowing that round's topology; the adversary — which in
    the strongly adaptive case sees all node states and the chosen
    broadcasts, exactly the power used by the Section-2 lower bound —
    then fixes the round graph; every broadcast is delivered to all the
    sender's neighbors and counts as {e one} message regardless of the
    neighbor count.  A node learns (a subset of) its neighbors only
    from the messages it receives: silent neighbors stay invisible. *)

type ('s, 'm) plane_spec = {
  width : 's -> int;  (** Token-catalog size [k], constant over a run. *)
  phase_of : 's -> round:int -> int;
      (** The single token index flooded in the given round; a pure
          function of run constants in the state and the round. *)
  message : 's -> int -> 'm;
      (** The broadcast payload carrying token [p].  Must depend only
          on run constants, so any node's state may evaluate it. *)
  mask : 's -> Dynet.Bitset.t;
      (** Read-only view of the node's known-token bitset (capacity
          [width]). *)
  restate : 's -> mask:Dynet.Bitset.t -> known:int -> 's;
      (** Rebuild a node state around a new mask with
          [known = cardinal mask].  The state takes ownership of
          [mask]. *)
}
(** The struct-of-arrays capability: a protocol provides it to assert
    that its behaviour is {e exactly} the phased flooding induced by
    the record —

    - [intent st ~round] returns
      [(st, Some (message st (phase_of st ~round)))] iff
      [mask st] contains [phase_of st ~round], and [(st, None)]
      otherwise ([intent] never changes the state);
    - [receive] folds the inbox learning only the carried token of
      each message into the mask;
    - [progress st = Bitset.cardinal (mask st)];
    - states share no mutable structure across nodes.

    Under these laws an engine may keep the masks in a flat word plane
    and reproduce runs bit-identically without materialising intents,
    inboxes, or per-round state records ({!Soa} does).  The laws are
    differentially enforced: the fuzz harness runs the SoA kernel
    against this generic runner on the same cases. *)

module type PROTOCOL = sig
  type state
  type msg

  val classify : msg -> Msg_class.t

  val intent : state -> round:int -> state * msg option
  (** The node's broadcast decision for the round, made topology-blind.
      [None] means the node stays silent (costs nothing). *)

  val receive :
    state -> round:int -> inbox:(Dynet.Node_id.t * msg) list -> state
  (** End-of-round delivery: one entry per {e broadcasting} neighbor,
      in increasing sender order. *)

  val progress : state -> int
  (** Number of tokens this node currently knows (drives the
      token-learning accounting of Definition 1.4). *)

  val plane : (state, msg) plane_spec option
  (** The SoA capability, or [None] to always run generically. *)
end

type ('state, 'msg) adversary =
  round:int ->
  prev:Dynet.Graph.t ->
  states:'state array ->
  intents:'msg option array ->
  Dynet.Graph.t
(** A strongly adaptive adversary sees everything, including the
    current round's announced broadcasts; oblivious adversaries simply
    ignore [states] and [intents]. *)

val run :
  (module PROTOCOL with type state = 's and type msg = 'm) ->
  ?init_prev:Dynet.Graph.t ->
  ?obs:Obs.Sink.t ->
  ?faults:Faults.Plan.t ->
  ?prof:Obs.Span.t ->
  ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
  ?target_progress:int ->
  ?stall_after:int ->
  ?cancel:(unit -> bool) ->
  states:'s array ->
  adversary:('s, 'm) adversary ->
  max_rounds:int ->
  stop:('s array -> bool) ->
  unit ->
  Run_result.t * 's array
(** Runs until [stop] holds (checked after each round, and once before
    round 1 for already-solved instances) or [max_rounds] is reached.

    [stall_after] (default: off) arms the livelock detector: if the
    global progress sum does not increase for [stall_after] consecutive
    executed rounds the run stops with a {!Run_result.Stalled} outcome
    instead of spinning to the cap.  Pass a window covering a full
    schedule period (and a full protocol phase cycle) — see
    {!Scenario.Runner} for the window used on looped traces.  Leave it
    off against adaptive adversaries, which starve progress
    legitimately.

    [cancel] (default: off) is the cooperative cancellation poll of
    the serve scheduler: it is consulted once per round boundary —
    including before round 1, so a pre-cancelled run executes zero
    rounds — and a [true] latches, ending the run with a
    {!Run_result.Cancelled} outcome carrying the progress achieved.
    Completion observed at the same boundary wins (cancelling a
    finished run is a no-op).

    [init_prev] (default: the empty graph [G_0]) seeds the
    topological-change accounting when chaining runs.

    [on_graph] (default: nothing) is the recorder hook of
    {!Runner_unicast.run}: called once per executed round with the
    validated round graph, enabling realized-schedule capture of
    adaptive adversaries (e.g. the Section-2 lower-bound adversary).

    [obs] (default {!Obs.Sink.null}: zero overhead, nothing emitted)
    receives the {!Obs.Trace} event stream: an initial round-0
    [Progress], then per executed round [Round_start], [Graph_change],
    one [Send] per charged broadcast ([dst = None]), and [Progress];
    finally [Run_end] and a sink flush.  Summing [Send] events gives
    [Ledger.total]; summing [Graph_change.added] gives [Ledger.tc].

    [prof] (default {!Obs.Span.null}: one hoisted boolean test per
    site) records hierarchical profiling spans: one [round] span per
    executed round with nested phase children — [faults] (when a plan
    is active), [intent], [adversary], [graph] (validation, recorder
    hook, and change accounting), [send], [deliver], [receive], and
    [check] (when invariants are on) — each carrying wall-clock and
    allocation; see {!Obs.Span}.

    [faults] (default {!Faults.Plan.none}, bit-identical to the
    pre-fault-layer engine) injects faults as in
    {!Runner_unicast.run}, with the broadcast-specific reading that a
    local broadcast is still {e charged once} but its per-edge
    deliveries drop / duplicate / lag independently — and a crashed
    node broadcasts nothing and loses its inbox.  [target_progress]
    enables [Partial] coverage reporting on capped runs; an execution
    whose nodes are all permanently crashed returns [Aborted].
    @raise Engine_error.Adversary_violation on invalid round graphs. *)
