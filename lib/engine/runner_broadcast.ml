module type PROTOCOL = sig
  type state
  type msg

  val classify : msg -> Msg_class.t
  val intent : state -> round:int -> state * msg option

  val receive :
    state -> round:int -> inbox:(Dynet.Node_id.t * msg) list -> state

  val progress : state -> int
end

type ('state, 'msg) adversary =
  round:int ->
  prev:Dynet.Graph.t ->
  states:'state array ->
  intents:'msg option array ->
  Dynet.Graph.t

let run (type s m) (module P : PROTOCOL with type state = s and type msg = m)
    ?init_prev ~(states : s array) ~(adversary : (s, m) adversary) ~max_rounds
    ~stop () =
  let n = Array.length states in
  let ledger = Ledger.create () in
  let timeline = ref [] in
  let sum_progress () =
    Array.fold_left (fun acc st -> acc + P.progress st) 0 states
  in
  Ledger.note_progress ledger (sum_progress ());
  let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
  let completed = ref (stop states) in
  let round = ref 0 in
  while (not !completed) && !round < max_rounds do
    incr round;
    let r = !round in
    let intents =
      Array.map
        (fun _ -> (None : m option))
        states
    in
    for v = 0 to n - 1 do
      let st, m = P.intent states.(v) ~round:r in
      states.(v) <- st;
      intents.(v) <- m
    done;
    let g = adversary ~round:r ~prev:!prev ~states ~intents in
    Engine_error.check_graph ~round:r ~n g;
    Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
    Ledger.note_round ledger;
    Array.iteri
      (fun v intent ->
        match intent with
        | None -> ()
        | Some m ->
            Ledger.record ledger (P.classify m) 1;
            Ledger.record_sender ledger v 1)
      intents;
    let inboxes =
      Array.init n (fun v ->
          Dynet.Graph.neighbors g v |> Array.to_list
          |> List.filter_map (fun u ->
                 match intents.(u) with
                 | None -> None
                 | Some m -> Some (u, m)))
    in
    for v = 0 to n - 1 do
      states.(v) <- P.receive states.(v) ~round:r ~inbox:inboxes.(v)
    done;
    Ledger.note_progress ledger (sum_progress ());
    timeline :=
      (r, Ledger.total ledger, Ledger.learnings ledger) :: !timeline;
    prev := g;
    completed := stop states
  done;
  ( Run_result.make ~rounds:!round ~completed:!completed ~ledger
      ~timeline:(List.rev !timeline),
    states )
