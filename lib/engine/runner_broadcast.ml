module type PROTOCOL = sig
  type state
  type msg

  val classify : msg -> Msg_class.t
  val intent : state -> round:int -> state * msg option

  val receive :
    state -> round:int -> inbox:(Dynet.Node_id.t * msg) list -> state

  val progress : state -> int
end

type ('state, 'msg) adversary =
  round:int ->
  prev:Dynet.Graph.t ->
  states:'state array ->
  intents:'msg option array ->
  Dynet.Graph.t

let run (type s m) (module P : PROTOCOL with type state = s and type msg = m)
    ?init_prev ?(obs = Obs.Sink.null) ~(states : s array)
    ~(adversary : (s, m) adversary) ~max_rounds ~stop () =
  let n = Array.length states in
  let ledger = Ledger.create () in
  let timeline = ref [] in
  (* Hoisted so the default Null sink costs one boolean test per
     emission site and never allocates an event. *)
  let tracing = not (Obs.Sink.is_null obs) in
  let sum_progress () =
    Array.fold_left (fun acc st -> acc + P.progress st) 0 states
  in
  let p0 = sum_progress () in
  Ledger.note_progress ledger p0;
  if tracing then
    Obs.Sink.emit obs
      (Obs.Trace.Progress { round = 0; progress = p0; learnings = 0 });
  let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
  let completed = ref (stop states) in
  let round = ref 0 in
  while (not !completed) && !round < max_rounds do
    incr round;
    let r = !round in
    if tracing then Obs.Sink.emit obs (Obs.Trace.Round_start { round = r });
    let intents =
      Array.map
        (fun _ -> (None : m option))
        states
    in
    for v = 0 to n - 1 do
      let st, m = P.intent states.(v) ~round:r in
      states.(v) <- st;
      intents.(v) <- m
    done;
    let g = adversary ~round:r ~prev:!prev ~states ~intents in
    Engine_error.check_graph ~round:r ~n g;
    let tc0 = Ledger.tc ledger and rm0 = Ledger.removals ledger in
    Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Graph_change
           {
             round = r;
             added = Ledger.tc ledger - tc0;
             removed = Ledger.removals ledger - rm0;
           });
    Ledger.note_round ledger;
    Array.iteri
      (fun v intent ->
        match intent with
        | None -> ()
        | Some m ->
            let cls = P.classify m in
            Ledger.record ledger cls 1;
            Ledger.record_sender ledger v 1;
            if tracing then
              Obs.Sink.emit obs
                (Obs.Trace.Send
                   {
                     round = r;
                     src = v;
                     dst = None;
                     cls = Msg_class.to_string cls;
                   }))
      intents;
    let inboxes =
      Array.init n (fun v ->
          Dynet.Graph.neighbors g v |> Array.to_list
          |> List.filter_map (fun u ->
                 match intents.(u) with
                 | None -> None
                 | Some m -> Some (u, m)))
    in
    for v = 0 to n - 1 do
      states.(v) <- P.receive states.(v) ~round:r ~inbox:inboxes.(v)
    done;
    let p = sum_progress () in
    Ledger.note_progress ledger p;
    if tracing then
      Obs.Sink.emit obs
        (Obs.Trace.Progress
           { round = r; progress = p; learnings = Ledger.learnings ledger });
    timeline :=
      (r, Ledger.total ledger, Ledger.learnings ledger) :: !timeline;
    prev := g;
    completed := stop states
  done;
  if tracing then begin
    Obs.Sink.emit obs
      (Obs.Trace.Run_end
         {
           rounds = !round;
           completed = !completed;
           messages = Ledger.total ledger;
         });
    Obs.Sink.flush obs
  end;
  ( Run_result.make ~rounds:!round ~completed:!completed ~ledger
      ~timeline:(List.rev !timeline),
    states )
