open Dynet.Ops

(* Optional struct-of-arrays capability (see the mli for the laws a
   provider must satisfy): a protocol whose per-node state is exactly
   "a bitset of known tokens" under a phased single-token broadcast
   discipline describes itself here, and the SoA engine specializes
   its whole round loop onto flat word planes.  Protocols leave it
   [None] to run on the generic paths of every engine. *)
type ('s, 'm) plane_spec = {
  width : 's -> int;
  phase_of : 's -> round:int -> int;
  message : 's -> int -> 'm;
  mask : 's -> Dynet.Bitset.t;
  restate : 's -> mask:Dynet.Bitset.t -> known:int -> 's;
}

module type PROTOCOL = sig
  type state
  type msg

  val classify : msg -> Msg_class.t
  val intent : state -> round:int -> state * msg option

  val receive :
    state -> round:int -> inbox:(Dynet.Node_id.t * msg) list -> state

  val progress : state -> int
  val plane : (state, msg) plane_spec option
end

type ('state, 'msg) adversary =
  round:int ->
  prev:Dynet.Graph.t ->
  states:'state array ->
  intents:'msg option array ->
  Dynet.Graph.t

let run (type s m) (module P : PROTOCOL with type state = s and type msg = m)
    ?init_prev ?(obs = Obs.Sink.null) ?(faults = Faults.Plan.none)
    ?(prof = Obs.Span.null) ?on_graph ?target_progress ?stall_after ?cancel
    ~(states : s array)
    ~(adversary : (s, m) adversary)
    ~max_rounds ~stop () =
  let n = Array.length states in
  let ledger = Ledger.create () in
  let timeline = ref [] in
  (* Hoisted so the default Null sink costs one boolean test per
     emission site and never allocates an event. *)
  let tracing = not (Obs.Sink.is_null obs) in
  (* Hoisted like [tracing]: with the default null profiler every
     span site below is one boolean test, nothing more. *)
  let profiling = not (Obs.Span.is_null prof) in
  (* Hoisted fault-layer activity test: with [Faults.Plan.none] the
     round loop below is the pre-fault-layer code path. *)
  let frun = Faults.Plan.start faults ~n in
  let faulty = Faults.Plan.active frun in
  let fcounts = Faults.Plan.counts frun in
  (* Invariant layer, hoisted like [tracing]/[faulty].  A local
     broadcast is charged once in the ledger but delivered per edge, so
     [c_sent] counts broadcasts while the conservation counters track
     per-edge message copies (see Runner_unicast for the scheme). *)
  let checking = Check.enabled () in
  let c_sent = ref 0 and c_created = ref 0 and c_consumed = ref 0 in
  let c_dropped = ref 0 and c_inflight = ref 0 in
  let initial = if faulty then Array.copy states else [||] in
  (* Delayed per-edge deliveries: due round -> (dst, src, msg). *)
  let delayed : (int, (Dynet.Node_id.t * Dynet.Node_id.t * m) list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let emit_fault ~round ~kind ~node ?dst ?cls () =
    if tracing then
      Obs.Sink.emit obs (Obs.Trace.Fault { round; kind; node; dst; cls })
  in
  let sum_progress () =
    Array.fold_left (fun acc st -> acc + P.progress st) 0 states
  in
  let p0 = sum_progress () in
  Ledger.note_progress ledger p0;
  if tracing then
    Obs.Sink.emit obs
      (Obs.Trace.Progress { round = 0; progress = p0; learnings = 0 });
  let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
  (* Opt-in livelock detector: [stall_after = Some w] stops the run
     once global progress has not increased for [w] consecutive rounds
     (callers pass a full schedule period, so a protocol limit-cycling
     against a periodic schedule is cut short instead of spinning to
     the round cap).  Off by default: the Section-2 lower-bound
     adversary legitimately starves progress for long stretches. *)
  let best_progress = ref p0 in
  let stagnant = ref 0 in
  let stalled = ref false in
  let completed = ref (stop states) in
  let aborted = ref None in
  (* Cooperative cancellation, polled once per round boundary (the
     first poll happens before round 1, so a pre-cancelled run
     executes zero rounds).  Latched: once the caller's poll returns
     true the run is cancelled for good and the poll never fires
     again. *)
  let cancelled = ref false in
  let cancel_requested () =
    (match cancel with
    | None -> ()
    | Some c -> if not !cancelled then cancelled := c ());
    !cancelled
  in
  let round = ref 0 in
  while
    (not !completed) && (not !stalled) && Option.is_none !aborted
    && (not (cancel_requested ()))
    && !round < max_rounds
  do
    incr round;
    let r = !round in
    if tracing then Obs.Sink.emit obs (Obs.Trace.Round_start { round = r });
    if profiling then begin
      Obs.Span.enter prof ~cat:"round" "round";
      Obs.Span.add_counter prof "round" (float_of_int r)
    end;
    if faulty then begin
      if profiling then Obs.Span.enter prof ~cat:"phase" "faults";
      Faults.Plan.begin_round frun ~round:r
        ~on_crash:(fun v -> emit_fault ~round:r ~kind:"crash" ~node:v ())
        ~on_restart:(fun v ->
          states.(v) <- initial.(v);
          emit_fault ~round:r ~kind:"restart" ~node:v ());
      if Faults.Plan.doomed frun then
        aborted := Some "all nodes crashed with no possible restart";
      if profiling then Obs.Span.leave prof
    end;
    if Option.is_none !aborted then begin
      if profiling then Obs.Span.enter prof ~cat:"phase" "intent";
      let intents =
        Array.map
          (fun _ -> (None : m option))
          states
      in
      for v = 0 to n - 1 do
        (* A crashed node broadcasts nothing this round. *)
        if (not faulty) || Faults.Plan.alive frun v then begin
          let st, m = P.intent states.(v) ~round:r in
          states.(v) <- st;
          intents.(v) <- m
        end
      done;
      if profiling then begin
        Obs.Span.leave prof;
        Obs.Span.enter prof ~cat:"phase" "adversary"
      end;
      let g = adversary ~round:r ~prev:!prev ~states ~intents in
      if profiling then begin
        Obs.Span.leave prof;
        Obs.Span.enter prof ~cat:"phase" "graph"
      end;
      Engine_error.check_graph ~round:r ~n g;
      (* Recorder hook: see Runner_unicast — the committed round graph,
         once per round, for realized-schedule capture. *)
      (match on_graph with None -> () | Some f -> f ~round:r g);
      let tc0 = Ledger.tc ledger and rm0 = Ledger.removals ledger in
      Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
      if tracing then
        Obs.Sink.emit obs
          (Obs.Trace.Graph_change
             {
               round = r;
               added = Ledger.tc ledger - tc0;
               removed = Ledger.removals ledger - rm0;
             });
      Ledger.note_round ledger;
      if profiling then begin
        Obs.Span.leave prof;
        Obs.Span.enter prof ~cat:"phase" "send"
      end;
      Array.iteri
        (fun v intent ->
          match intent with
          | None -> ()
          | Some m ->
              let cls = P.classify m in
              Ledger.record ledger cls 1;
              Ledger.record_sender ledger v 1;
              if checking then incr c_sent;
              if tracing then
                Obs.Sink.emit obs
                  (Obs.Trace.Send
                     {
                       round = r;
                       src = v;
                       dst = None;
                       cls = Msg_class.to_string cls;
                     }))
        intents;
      if profiling then begin
        Obs.Span.leave prof;
        Obs.Span.enter prof ~cat:"phase" "deliver"
      end;
      let inboxes =
        if not faulty then
          Array.init n (fun v ->
              (* Walk the sorted neighbor row backwards, prepending, so
                 the inbox comes out in ascending sender order without
                 the Array.to_list / filter_map intermediates. *)
              let row = Dynet.Graph.neighbors g v in
              let acc = ref [] in
              for i = Array.length row - 1 downto 0 do
                let u = row.(i) in
                match intents.(u) with
                | None -> ()
                | Some m ->
                    if checking then incr c_created;
                    acc := (u, m) :: !acc
              done;
              !acc)
        else begin
          (* A local broadcast is charged once but delivered per edge;
             the per-edge deliveries fail (or duplicate, or lag)
             independently. *)
          let inboxes = Array.make n [] in
          for v = 0 to n - 1 do
            Array.iter
              (fun u ->
                match intents.(u) with
                | None -> ()
                | Some m -> (
                    let cls_name = Msg_class.to_string (P.classify m) in
                    match Faults.Plan.deliveries frun with
                    | None ->
                        if checking then begin
                          incr c_created;
                          incr c_dropped
                        end;
                        emit_fault ~round:r ~kind:"drop" ~node:u ~dst:v
                          ~cls:cls_name ()
                    | Some delays ->
                        if checking then
                          c_created := !c_created + List.length delays;
                        if List.length delays > 1 then
                          emit_fault ~round:r ~kind:"dup" ~node:u ~dst:v
                            ~cls:cls_name ();
                        List.iter
                          (fun d ->
                            if d = 0 then inboxes.(v) <- (u, m) :: inboxes.(v)
                            else begin
                              if checking then incr c_inflight;
                              emit_fault ~round:r ~kind:"delay" ~node:u ~dst:v
                                ~cls:cls_name ();
                              let due = r + d in
                              let cell =
                                match Hashtbl.find_opt delayed due with
                                | Some cell -> cell
                                | None ->
                                    let cell = ref [] in
                                    Hashtbl.add delayed due cell;
                                    cell
                              in
                              cell := (v, u, m) :: !cell
                            end)
                          delays))
              (Dynet.Graph.neighbors g v)
          done;
          (match Hashtbl.find_opt delayed r with
          | None -> ()
          | Some cell ->
              if checking then
                c_inflight := !c_inflight - List.length !cell;
              List.iter
                (fun (dst, src, m) ->
                  inboxes.(dst) <- (src, m) :: inboxes.(dst))
                (List.rev !cell);
              Hashtbl.remove delayed r);
          for v = 0 to n - 1 do
            if not (Faults.Plan.alive frun v) then begin
              if checking then
                c_dropped := !c_dropped + List.length inboxes.(v);
              List.iter
                (fun (src, m) ->
                  fcounts.Faults.Counts.drops <-
                    fcounts.Faults.Counts.drops + 1;
                  emit_fault ~round:r ~kind:"drop" ~node:src ~dst:v
                    ~cls:(Msg_class.to_string (P.classify m)) ())
                (List.rev inboxes.(v));
              inboxes.(v) <- []
            end
            else inboxes.(v) <- List.rev inboxes.(v)
          done;
          inboxes
        end
      in
      if profiling then begin
        Obs.Span.leave prof;
        Obs.Span.enter prof ~cat:"phase" "receive"
      end;
      for v = 0 to n - 1 do
        if (not faulty) || Faults.Plan.alive frun v then begin
          if checking then
            c_consumed := !c_consumed + List.length inboxes.(v);
          states.(v) <- P.receive states.(v) ~round:r ~inbox:inboxes.(v)
        end
      done;
      if profiling then Obs.Span.leave prof;
      if checking then begin
        if profiling then Obs.Span.enter prof ~cat:"phase" "check";
        Check.connected
          ~what:(Printf.sprintf "round %d: adversary graph connectivity" r)
          g;
        Check.require ~what:"ledger total equals broadcasts performed"
          (fun () -> Ledger.total ledger = !c_sent);
        Check.require ~what:"message-copy conservation" (fun () ->
            Check.conserved ~created:!c_created ~consumed:!c_consumed
              ~dropped:!c_dropped ~in_flight:!c_inflight);
        if profiling then Obs.Span.leave prof
      end;
      let p = sum_progress () in
      Ledger.note_progress ledger p;
      if tracing then
        Obs.Sink.emit obs
          (Obs.Trace.Progress
             { round = r; progress = p; learnings = Ledger.learnings ledger });
      if p > !best_progress then begin
        best_progress := p;
        stagnant := 0
      end
      else begin
        incr stagnant;
        match stall_after with
        | Some w when !stagnant >= w -> stalled := true
        | Some _ | None -> ()
      end;
      timeline :=
        (r, Ledger.total ledger, Ledger.learnings ledger) :: !timeline;
      prev := g;
      completed := stop states
    end;
    if profiling then Obs.Span.leave prof
  done;
  if tracing then begin
    Obs.Sink.emit obs
      (Obs.Trace.Run_end
         {
           rounds = !round;
           completed = !completed;
           messages = Ledger.total ledger;
         });
    Obs.Sink.flush obs
  end;
  let outcome =
    match !aborted with
    | Some reason -> Run_result.Aborted reason
    | None ->
        if !completed then Run_result.Completed
        else if !stalled then
          Run_result.Stalled { rounds_without_progress = !stagnant }
        else if !cancelled then
          Run_result.Cancelled
            { achieved = sum_progress (); target = target_progress }
        else
          Run_result.Partial
            { achieved = sum_progress (); target = target_progress }
  in
  ( Run_result.make ~outcome
      ?fault_counts:(if faulty then Some fcounts else None)
      ~rounds:!round ~completed:!completed ~ledger
      ~timeline:(List.rev !timeline) (),
    states )
