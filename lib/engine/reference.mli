(** The pseudocode-faithful reference engine.

    A deliberately naive, allocation-happy implementation of both
    engines, written the way the paper's Section-1.3 model and
    algorithm pseudocode read: per-round structures are fresh lists,
    neighbor membership is a linear scan, the one-token-per-directed-
    edge bandwidth constraint is a scanned list of crossed edges, the
    global progress sum is recomputed from scratch, and the timeline is
    appended at the back — no bitsets, no cached counts, no
    binary searches, no reverse-accumulation tricks.

    Its value is as the semantic baseline of the differential fuzzer
    ([lib/fuzz]): on every generated case, {!Default} (the optimized
    fast path) and this engine must produce {e bit-identical} run
    reports and drive [?on_graph] with identical committed round-graph
    sequences.  An optimization that drifts from the model shows up as
    a mismatch with a shrunk counterexample, not as silent skew in
    experiment data.

    What is intentionally shared with {!Default}, because it is
    observable contract rather than implementation: the order in which
    the fault plan's random stream is consumed, the ledger entries and
    their order, the {!Obs.Trace} event stream, the profiling span
    tree, and the {!Check} invariants. *)

val name : string
(** ["reference"]. *)

module Broadcast : Engine_sig.BROADCAST
module Unicast : Engine_sig.UNICAST

val engine : (module Engine_sig.ENGINE)
(** First-class packaging for engine-parametric call sites. *)
