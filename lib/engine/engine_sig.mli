(** The common [ENGINE] seam.

    Both simulation engines — the fast-path {!Default} and the
    pseudocode-faithful {!Reference} — implement the same pair of
    [run] signatures, packaged as a first-class {!module-type-ENGINE}
    value.  Anything that executes a protocol against an adversary can
    be parameterized over the engine (see [Gossip.Runners]' [?engine]
    and the [lib/fuzz] differential harness), and future engines (the
    sharded mega-scale engine, the serve daemon's workers) plug into
    the same seam.

    The [PROTOCOL] module types and adversary types are {e owned} by
    {!Runner_broadcast} / {!Runner_unicast}: every engine runs the
    exact same protocol modules against the exact same adversaries,
    which is what makes bit-identical differential comparison
    meaningful.

    The contract an implementation must honour (the differential
    fuzzer enforces it): given identical protocols, initial states,
    adversaries, fault plans, and caps, produce an identical
    {!Run_result.t} — same outcome, ledger counts, per-sender loads,
    and timeline — and drive [?on_graph] with the identical committed
    round-graph sequence.  Trace-event streams and profiling spans
    must match the engine docs but are not part of the bit-identity
    contract.

    Cooperative cancellation: engines poll [?cancel] once per round
    boundary (including before the first round, so a pre-cancelled run
    executes zero rounds).  A poll returning [true] ends the run with
    a {!Run_result.Cancelled} outcome carrying the progress achieved
    so far; once it has returned [true] the engine treats the run as
    cancelled without polling again.  Completion observed at the same
    boundary wins over cancellation (cancel-after-completion is a
    no-op), and the default ([None]) costs one option test per
    round. *)

module type BROADCAST = sig
  val run :
    (module Runner_broadcast.PROTOCOL with type state = 's and type msg = 'm) ->
    ?init_prev:Dynet.Graph.t ->
    ?obs:Obs.Sink.t ->
    ?faults:Faults.Plan.t ->
    ?prof:Obs.Span.t ->
    ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
    ?target_progress:int ->
    ?stall_after:int ->
    ?cancel:(unit -> bool) ->
    states:'s array ->
    adversary:('s, 'm) Runner_broadcast.adversary ->
    max_rounds:int ->
    stop:('s array -> bool) ->
    unit ->
    Run_result.t * 's array
  (** See {!Runner_broadcast.run} for the full parameter contract. *)
end

module type UNICAST = sig
  val run :
    (module Runner_unicast.PROTOCOL with type state = 's and type msg = 'm) ->
    ?init_prev:Dynet.Graph.t ->
    ?obs:Obs.Sink.t ->
    ?faults:Faults.Plan.t ->
    ?prof:Obs.Span.t ->
    ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
    ?target_progress:int ->
    ?stall_after:int ->
    ?cancel:(unit -> bool) ->
    states:'s array ->
    adversary:'s Runner_unicast.adversary ->
    max_rounds:int ->
    stop:('s array -> bool) ->
    unit ->
    Run_result.t * 's array
  (** See {!Runner_unicast.run} for the full parameter contract. *)
end

module type ENGINE = sig
  val name : string
  (** Stable identifier for reports and diagnostics (["fastpath"],
      ["reference"]). *)

  module Broadcast : BROADCAST
  module Unicast : UNICAST
end
