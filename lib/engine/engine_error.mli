(** Failures raised by the simulation engines.

    Both exceptions indicate a bug in the component named, never in the
    engine itself; the test-suite asserts they are raised on
    deliberately ill-behaved protocols/adversaries. *)

exception Protocol_violation of string
(** A protocol broke the communication model: sent to a non-neighbor,
    or sent more than one token over a directed edge in one round
    (Section 1.3's bandwidth constraint). *)

exception Adversary_violation of string
(** An adversary produced an invalid round graph: wrong node count or a
    disconnected graph (the model requires every [G_r], r ≥ 1, to be
    connected). *)

exception Schedule_exhausted of { round : int; available : int }
(** A finite committed schedule was asked for a round beyond its
    recorded length and its past-end policy forbids extrapolation
    ({!Scenario.Replay} with [past_end = Fail]): the run needs round
    [round] but only [available] rounds exist.  Unlike the two
    violations above this is an {e invocation} problem — the workload
    is too short for the requested run — so the CLI maps it to its
    usage exit code (2), not the model-violation code (3). *)

val check_graph : round:int -> n:int -> Dynet.Graph.t -> unit
(** Validates a round graph, raising {!Adversary_violation}. *)
