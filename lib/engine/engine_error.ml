open Dynet.Ops

exception Protocol_violation of string
exception Adversary_violation of string
exception Schedule_exhausted of { round : int; available : int }

let () =
  Printexc.register_printer (function
    | Schedule_exhausted { round; available } ->
        Some
          (Printf.sprintf
             "Engine_error.Schedule_exhausted: round %d is beyond the %d \
              recorded rounds"
             round available)
    | _ -> None)

let check_graph ~round ~n g =
  if Dynet.Graph.n g <> n then
    raise
      (Adversary_violation
         (Printf.sprintf "round %d: graph has %d nodes, expected %d" round
            (Dynet.Graph.n g) n));
  if not (Dynet.Graph.is_connected g) then
    raise
      (Adversary_violation
         (Printf.sprintf "round %d: disconnected graph" round))
