open Dynet.Ops

module type PROTOCOL = sig
  type state
  type msg

  val classify : msg -> Msg_class.t

  val send :
    state ->
    round:int ->
    neighbors:Dynet.Node_id.t array ->
    state * (Dynet.Node_id.t * msg) list

  val receive :
    state ->
    round:int ->
    neighbors:Dynet.Node_id.t array ->
    inbox:(Dynet.Node_id.t * msg) list ->
    state

  val progress : state -> int
end

type traffic = (Dynet.Node_id.t * Dynet.Node_id.t * Msg_class.t) list

type 'state adversary =
  round:int ->
  prev:Dynet.Graph.t ->
  states:'state array ->
  traffic:traffic ->
  Dynet.Graph.t

(* [search] threads [arr]/[x] explicitly so it stays a constant
   closure: capturing them would allocate one closure per call, and
   this probe runs once per delivered message. *)
let mem_sorted arr x =
  let rec search arr x lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c = compare x arr.(mid) in
      if c = 0 then true
      else if c < 0 then search arr x lo mid
      else search arr x (mid + 1) hi
  in
  search arr x 0 (Array.length arr)
[@@dynlint.hot]

let run (type s m) (module P : PROTOCOL with type state = s and type msg = m)
    ?init_prev ?(obs = Obs.Sink.null) ?(faults = Faults.Plan.none)
    ?(prof = Obs.Span.null) ?on_graph ?target_progress ?stall_after ?cancel
    ~(states : s array)
    ~(adversary : s adversary)
    ~max_rounds ~stop () =
  let n = Array.length states in
  let ledger = Ledger.create () in
  let timeline = ref [] in
  (* Hoisted so the default Null sink costs one boolean test per
     emission site and never allocates an event. *)
  let tracing = not (Obs.Sink.is_null obs) in
  (* Hoisted like [tracing]: with the default null profiler every
     span site below is one boolean test, nothing more. *)
  let profiling = not (Obs.Span.is_null prof) in
  (* Same null-object pattern for the fault layer: with
     [Faults.Plan.none] every fault hook below is behind one hoisted
     boolean and the round loop is the pre-fault-layer code path. *)
  let frun = Faults.Plan.start faults ~n in
  let faulty = Faults.Plan.active frun in
  let fcounts = Faults.Plan.counts frun in
  (* Invariant layer, hoisted like [tracing]/[faulty]: with --check off
     the counters below are never touched and no predicate runs.  The
     counters track message *copies* through the delivery layer —
     created at send (duplication creates extras, a send-time drop
     destroys the copy), consumed at receive, destroyed with a dead
     node's inbox, or delayed in flight — so the round-end conservation
     check catches any accounting drift between the ledger and the
     physical delivery path. *)
  let checking = Check.enabled () in
  let c_sent = ref 0 and c_created = ref 0 and c_consumed = ref 0 in
  let c_dropped = ref 0 and c_inflight = ref 0 in
  (* Initial states, snapshotted for crash-restart state loss. *)
  let initial = if faulty then Array.copy states else [||] in
  (* Delayed deliveries: due round -> (dst, src, msg) in send order. *)
  let delayed : (int, (Dynet.Node_id.t * Dynet.Node_id.t * m) list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let emit_fault ~round ~kind ~node ?dst ?cls () =
    if tracing then
      Obs.Sink.emit obs (Obs.Trace.Fault { round; kind; node; dst; cls })
  in
  let sum_progress () =
    Array.fold_left (fun acc st -> acc + P.progress st) 0 states
  in
  let p0 = sum_progress () in
  Ledger.note_progress ledger p0;
  if tracing then
    Obs.Sink.emit obs
      (Obs.Trace.Progress { round = 0; progress = p0; learnings = 0 });
  let prev = ref (Option.value init_prev ~default:(Dynet.Graph.empty ~n)) in
  (* One bit per ordered (src, dst) pair, allocated once and cleared
     per round — replaces a fresh per-round Hashtbl keyed by tuples. *)
  let token_sent = Dynet.Bitset.create (n * n) in
  let traffic = ref ([] : traffic) in
  (* Opt-in livelock detector, identical to Runner_broadcast: stop
     once global progress has not increased for [stall_after]
     consecutive rounds.  Off by default — adaptive adversaries starve
     progress legitimately. *)
  let best_progress = ref p0 in
  let stagnant = ref 0 in
  let stalled = ref false in
  let completed = ref (stop states) in
  let aborted = ref None in
  (* Cooperative cancellation, polled once per round boundary; see
     Runner_broadcast for the latching scheme. *)
  let cancelled = ref false in
  let cancel_requested () =
    (match cancel with
    | None -> ()
    | Some c -> if not !cancelled then cancelled := c ());
    !cancelled
  in
  let round = ref 0 in
  while
    (not !completed) && (not !stalled) && Option.is_none !aborted
    && (not (cancel_requested ()))
    && !round < max_rounds
  do
    incr round;
    let r = !round in
    if tracing then Obs.Sink.emit obs (Obs.Trace.Round_start { round = r });
    if profiling then begin
      Obs.Span.enter prof ~cat:"round" "round";
      Obs.Span.add_counter prof "round" (float_of_int r)
    end;
    if faulty then begin
      if profiling then Obs.Span.enter prof ~cat:"phase" "faults";
      Faults.Plan.begin_round frun ~round:r
        ~on_crash:(fun v -> emit_fault ~round:r ~kind:"crash" ~node:v ())
        ~on_restart:(fun v ->
          states.(v) <- initial.(v);
          emit_fault ~round:r ~kind:"restart" ~node:v ());
      if Faults.Plan.doomed frun then
        aborted := Some "all nodes crashed with no possible restart";
      if profiling then Obs.Span.leave prof
    end;
    if Option.is_none !aborted then begin
      if profiling then Obs.Span.enter prof ~cat:"phase" "adversary";
      let g = adversary ~round:r ~prev:!prev ~states ~traffic:!traffic in
      if profiling then begin
        Obs.Span.leave prof;
        Obs.Span.enter prof ~cat:"phase" "graph"
      end;
      Engine_error.check_graph ~round:r ~n g;
      (* Recorder hook: the committed (validated) round graph, once per
         round — what a trace of this execution's realized schedule
         must contain, whether the adversary was oblivious or not. *)
      (match on_graph with None -> () | Some f -> f ~round:r g);
      let tc0 = Ledger.tc ledger and rm0 = Ledger.removals ledger in
      Ledger.note_graph_change ledger ~prev:!prev ~cur:g;
      if tracing then
        Obs.Sink.emit obs
          (Obs.Trace.Graph_change
             {
               round = r;
               added = Ledger.tc ledger - tc0;
               removed = Ledger.removals ledger - rm0;
             });
      Ledger.note_round ledger;
      if profiling then begin
        Obs.Span.leave prof;
        Obs.Span.enter prof ~cat:"phase" "send"
      end;
      let inboxes = Array.make n [] in
      let round_traffic = ref [] in
      Dynet.Bitset.clear token_sent;
      for v = 0 to n - 1 do
        if (not faulty) || Faults.Plan.alive frun v then begin
          let neighbors = Dynet.Graph.neighbors g v in
          let st, out = P.send states.(v) ~round:r ~neighbors in
          states.(v) <- st;
          List.iter
            (fun (dst, m) ->
              if not (mem_sorted neighbors dst) then
                raise
                  (Engine_error.Protocol_violation
                     (Printf.sprintf "round %d: node %d sent to non-neighbor %d"
                        r v dst));
              let cls = P.classify m in
              (match cls with
              | Msg_class.Token | Msg_class.Walk ->
                  let pair = (v * n) + dst in
                  if Dynet.Bitset.mem token_sent pair then
                    raise
                      (Engine_error.Protocol_violation
                         (Printf.sprintf
                            "round %d: node %d sent two tokens to %d in one round"
                            r v dst));
                  Dynet.Bitset.set token_sent pair
              | Msg_class.Completeness | Msg_class.Request | Msg_class.Center
              | Msg_class.Control ->
                  ());
              Ledger.record ledger cls 1;
              Ledger.record_sender ledger v 1;
              if checking then incr c_sent;
              if tracing then
                Obs.Sink.emit obs
                  (Obs.Trace.Send
                     {
                       round = r;
                       src = v;
                       dst = Some dst;
                       cls = Msg_class.to_string cls;
                     });
              round_traffic := (v, dst, cls) :: !round_traffic;
              (* Collect in reverse, fix sender order below. *)
              if not faulty then begin
                if checking then incr c_created;
                inboxes.(dst) <- (v, m) :: inboxes.(dst)
              end
              else
                let cls_name = Msg_class.to_string cls in
                match Faults.Plan.deliveries frun with
                | None ->
                    if checking then begin
                      incr c_created;
                      incr c_dropped
                    end;
                    emit_fault ~round:r ~kind:"drop" ~node:v ~dst
                      ~cls:cls_name ()
                | Some delays ->
                    if checking then
                      c_created := !c_created + List.length delays;
                    if List.length delays > 1 then
                      emit_fault ~round:r ~kind:"dup" ~node:v ~dst
                        ~cls:cls_name ();
                    List.iter
                      (fun d ->
                        if d = 0 then inboxes.(dst) <- (v, m) :: inboxes.(dst)
                        else begin
                          if checking then incr c_inflight;
                          emit_fault ~round:r ~kind:"delay" ~node:v ~dst
                            ~cls:cls_name ();
                          let due = r + d in
                          let cell =
                            match Hashtbl.find_opt delayed due with
                            | Some cell -> cell
                            | None ->
                                let cell = ref [] in
                                Hashtbl.add delayed due cell;
                                cell
                          in
                          cell := (dst, v, m) :: !cell
                        end)
                      delays)
            out
        end
      done;
      if profiling then Obs.Span.leave prof;
      if faulty then begin
        if profiling then Obs.Span.enter prof ~cat:"phase" "deliver";
        (* Messages whose bounded delay expires this round arrive now,
           after the on-time traffic (the sort below interleaves them
           into sender order). *)
        (match Hashtbl.find_opt delayed r with
        | None -> ()
        | Some cell ->
            if checking then
              c_inflight := !c_inflight - List.length !cell;
            List.iter
              (fun (dst, src, m) -> inboxes.(dst) <- (src, m) :: inboxes.(dst))
              (List.rev !cell);
            Hashtbl.remove delayed r);
        (* A node crashed at delivery time loses its whole inbox. *)
        for v = 0 to n - 1 do
          if not (Faults.Plan.alive frun v) then begin
            if checking then
              c_dropped := !c_dropped + List.length inboxes.(v);
            List.iter
              (fun (src, m) ->
                fcounts.Faults.Counts.drops <-
                  fcounts.Faults.Counts.drops + 1;
                emit_fault ~round:r ~kind:"drop" ~node:src ~dst:v
                  ~cls:(Msg_class.to_string (P.classify m)) ())
              (List.rev inboxes.(v));
            inboxes.(v) <- []
          end
        done;
        if profiling then Obs.Span.leave prof
      end;
      if profiling then Obs.Span.enter prof ~cat:"phase" "receive";
      for v = 0 to n - 1 do
        if (not faulty) || Faults.Plan.alive frun v then begin
          let inbox =
            List.stable_sort (fun (a, _) (b, _) -> Dynet.Node_id.compare a b)
              (List.rev inboxes.(v))
          in
          if checking then c_consumed := !c_consumed + List.length inbox;
          states.(v) <-
            P.receive states.(v) ~round:r ~neighbors:(Dynet.Graph.neighbors g v)
              ~inbox
        end
      done;
      if profiling then Obs.Span.leave prof;
      if checking then begin
        if profiling then Obs.Span.enter prof ~cat:"phase" "check";
        Check.connected
          ~what:(Printf.sprintf "round %d: adversary graph connectivity" r)
          g;
        Check.require ~what:"ledger total equals physical sends" (fun () ->
            Ledger.total ledger = !c_sent);
        Check.require ~what:"message-copy conservation" (fun () ->
            Check.conserved ~created:!c_created ~consumed:!c_consumed
              ~dropped:!c_dropped ~in_flight:!c_inflight);
        if profiling then Obs.Span.leave prof
      end;
      let p = sum_progress () in
      Ledger.note_progress ledger p;
      if tracing then
        Obs.Sink.emit obs
          (Obs.Trace.Progress
             { round = r; progress = p; learnings = Ledger.learnings ledger });
      if p > !best_progress then begin
        best_progress := p;
        stagnant := 0
      end
      else begin
        incr stagnant;
        match stall_after with
        | Some w when !stagnant >= w -> stalled := true
        | Some _ | None -> ()
      end;
      timeline :=
        (r, Ledger.total ledger, Ledger.learnings ledger) :: !timeline;
      prev := g;
      traffic := List.rev !round_traffic;
      completed := stop states
    end;
    if profiling then Obs.Span.leave prof
  done;
  if tracing then begin
    Obs.Sink.emit obs
      (Obs.Trace.Run_end
         {
           rounds = !round;
           completed = !completed;
           messages = Ledger.total ledger;
         });
    Obs.Sink.flush obs
  end;
  let outcome =
    match !aborted with
    | Some reason -> Run_result.Aborted reason
    | None ->
        if !completed then Run_result.Completed
        else if !stalled then
          Run_result.Stalled { rounds_without_progress = !stagnant }
        else if !cancelled then
          Run_result.Cancelled
            { achieved = sum_progress (); target = target_progress }
        else
          Run_result.Partial
            { achieved = sum_progress (); target = target_progress }
  in
  ( Run_result.make ~outcome
      ?fault_counts:(if faulty then Some fcounts else None)
      ~rounds:!round ~completed:!completed ~ledger
      ~timeline:(List.rev !timeline) (),
    states )
