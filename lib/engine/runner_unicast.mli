(** Synchronous unicast engine.

    Models the paper's unicast communication (Section 1.3): at the
    beginning of round [r] the adversary fixes the connected round
    graph [G_r]; each node is then informed of the IDs of its round-[r]
    neighbors (the KT1-style assumption the paper makes for unicast)
    and may send a different message to each of them.  Every message to
    a distinct neighbor counts separately.

    The engine enforces the bandwidth constraint that at most one
    {!Msg_class.Token}-class message crosses a directed edge per round
    ("one token can go through an edge per round"); control traffic
    (announcements, requests) may share the edge, as the model allows a
    constant number of tokens plus O(log n) bits per message. *)

module type PROTOCOL = sig
  type state
  type msg

  val classify : msg -> Msg_class.t

  val send :
    state ->
    round:int ->
    neighbors:Dynet.Node_id.t array ->
    state * (Dynet.Node_id.t * msg) list
  (** The node's messages for the round, decided after seeing its
      neighbor IDs.  The returned state lets protocols record what they
      sent (e.g. pending requests in Algorithm 1). *)

  val receive :
    state ->
    round:int ->
    neighbors:Dynet.Node_id.t array ->
    inbox:(Dynet.Node_id.t * msg) list ->
    state
  (** End-of-round delivery; inbox entries in increasing sender order
      (sender order within one sender preserved). *)

  val progress : state -> int
end

val mem_sorted : Dynet.Node_id.t array -> Dynet.Node_id.t -> bool
(** Binary search in a sorted neighbor row — the membership test behind
    the non-neighbor protocol check, shared with the {!Soa} engine's
    sequential replay so both engines reject exactly the same sends. *)

type traffic = (Dynet.Node_id.t * Dynet.Node_id.t * Msg_class.t) list
(** Last round's [(src, dst, class)] sends — what an adaptive adversary
    observed on the wire (e.g. {!Adversary.Request_cutter} deletes the
    edges that carried requests). *)

type 'state adversary =
  round:int ->
  prev:Dynet.Graph.t ->
  states:'state array ->
  traffic:traffic ->
  Dynet.Graph.t

val run :
  (module PROTOCOL with type state = 's and type msg = 'm) ->
  ?init_prev:Dynet.Graph.t ->
  ?obs:Obs.Sink.t ->
  ?faults:Faults.Plan.t ->
  ?prof:Obs.Span.t ->
  ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
  ?target_progress:int ->
  ?stall_after:int ->
  ?cancel:(unit -> bool) ->
  states:'s array ->
  adversary:'s adversary ->
  max_rounds:int ->
  stop:('s array -> bool) ->
  unit ->
  Run_result.t * 's array
(** [stall_after] (default: off) arms the livelock detector of
    {!Runner_broadcast.run}: a run whose global progress sum does not
    increase for [stall_after] consecutive executed rounds stops with
    {!Run_result.Stalled} instead of spinning to the round cap — the
    honest verdict for a deterministic protocol limit-cycling against
    a periodic (looped-trace) schedule.

    [cancel] (default: off) is the cooperative cancellation poll of
    {!Runner_broadcast.run}: polled once per round boundary (including
    before round 1), latching, with completion winning over a cancel
    observed at the same boundary.

    [init_prev] (default: the empty graph [G_0]) seeds the
    topological-change accounting — pass the previous phase's last
    graph when chaining runs so [TC] is not inflated by a phantom
    re-insertion of every edge.

    [on_graph] (default: nothing) is the recorder hook: it is called
    exactly once per executed round with the validated round graph the
    adversary committed to, {e before} any message is sent.  Unlike the
    count-only [Graph_change] trace event it carries the graph itself,
    so a scenario recorder can capture the realized schedule of an
    {e adaptive} adversary and replay it later as an oblivious one.

    [obs] (default {!Obs.Sink.null}: zero overhead, nothing emitted)
    receives the {!Obs.Trace} event stream: an initial round-0
    [Progress], then per executed round [Round_start], [Graph_change],
    one [Send] per unicast message (with its [dst]), and [Progress];
    finally [Run_end] and a sink flush.  Summing [Send] events gives
    [Ledger.total]; summing [Graph_change.added] gives [Ledger.tc].

    [prof] (default {!Obs.Span.null}: one hoisted boolean test per
    site) records hierarchical profiling spans: one [round] span per
    executed round with nested phase children — [faults] (when a plan
    is active), [adversary], [graph] (validation, recorder hook, and
    change accounting), [send], [deliver] (the fault layer's delayed
    and crash-time delivery work), [receive], and [check] (when
    invariants are on) — each carrying wall-clock and allocation; see
    {!Obs.Span}.

    [faults] (default {!Faults.Plan.none}: the clean model, with the
    round loop bit-identical to a build without the fault layer)
    injects message loss / duplication / bounded delay and node
    crash-restart.  Faulty rounds run as: node fates advance (a
    restarting node re-enters with its {e initial} state); crashed
    nodes are skipped in the send phase; each sent message is charged
    to the ledger, then dropped, duplicated, or delayed by the plan;
    messages due this round (on-time or expired delays) are delivered
    except to nodes crashed at delivery time, whose inboxes are
    discarded.  Every fault is emitted as an {!Obs.Trace.Fault} event
    and tallied in the result's [fault_counts].  A delayed message is
    delivered even if its edge has since vanished (delay models
    asynchrony, not routing).

    [target_progress] (e.g. [n*k] for full dissemination) is the
    progress a successful run would reach; a capped run then reports
    [Partial] coverage against it.  If every node is crashed and the
    plan can never restart one, the run stops with [Aborted].
    @raise Engine_error.Adversary_violation on invalid round graphs.
    @raise Engine_error.Protocol_violation on sends to non-neighbors or
    token-bandwidth violations. *)
