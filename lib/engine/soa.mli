(** The mega-scale struct-of-arrays engine.

    A third {!Engine_sig.ENGINE} implementation built for [n = 10^5]:
    token masks live in one contiguous {!Dynet.Plane} (node-major
    Bigarray word plane), adjacency in a delta-gated {!Dynet.Csr}, and
    the round loop shards node space across a {!Shard_pool} of
    long-lived domains with a barrier per phase.

    Strategy per run:

    - broadcast protocols advertising the
      {!Runner_broadcast.plane_spec} capability (and no fault plan) run
      on the plane kernel — allocation-free in steady state, sharded;
    - unicast runs without a fault plan run sharded generically:
      [P.send]/[P.receive] fan out over the pool, with all accounting
      replayed sequentially in node order between the barriers;
    - everything else (fault plans, plane-less broadcast protocols)
      delegates to the sequential fast path unchanged.

    Determinism: workers own contiguous node ranges and write only
    their own plane rows / array slots / staging buffers; cross-shard
    merges happen in ascending shard order.  Reports are bit-identical
    to {!Default} at any shard count — the property the differential
    fuzz harness ({!Fuzz.Diff}) enforces. *)

val name : string
(** ["soa"]. *)

val make : ?shards:int -> ?boundary_bug:bool -> unit -> (module Engine_sig.ENGINE)
(** An engine instance.  [shards] (default 1) is the number of worker
    domains sharing the round work; the engine's [name] is ["soa"] for
    one shard and ["soa-N"] otherwise.  @raise Invalid_argument if
    [shards < 1].

    [boundary_bug] (default false) is the {e seeded} off-by-one used by
    the fuzz harness's mutation smoke test: shard 1's range starts one
    node late, so with two or more (non-empty) shards one node on the
    0/1 boundary is silently skipped.  Never set it outside tests. *)

val engine : ?shards:int -> unit -> (module Engine_sig.ENGINE)
(** {!make} without the test-only knob. *)

val default_engine : (module Engine_sig.ENGINE)
(** [make ()] — single-shard SoA. *)
