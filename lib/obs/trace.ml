type event =
  | Round_start of { round : int }
  | Send of { round : int; src : int; dst : int option; cls : string }
  | Graph_change of { round : int; added : int; removed : int }
  | Progress of { round : int; progress : int; learnings : int }
  | Phase of { name : string; round : int }
  | Fault of {
      round : int;
      kind : string;
      node : int;
      dst : int option;
      cls : string option;
    }
  | Run_end of { rounds : int; completed : bool; messages : int }
  | Diag of { level : string; msg : string }

let to_json = function
  | Round_start { round } ->
      Json.Obj [ ("ev", Json.String "round_start"); ("round", Json.Int round) ]
  | Send { round; src; dst; cls } ->
      let base =
        [ ("ev", Json.String "send"); ("round", Json.Int round);
          ("src", Json.Int src) ]
      in
      let dst_field =
        match dst with None -> [] | Some d -> [ ("dst", Json.Int d) ]
      in
      Json.Obj (base @ dst_field @ [ ("cls", Json.String cls) ])
  | Graph_change { round; added; removed } ->
      Json.Obj
        [ ("ev", Json.String "graph_change"); ("round", Json.Int round);
          ("added", Json.Int added); ("removed", Json.Int removed) ]
  | Progress { round; progress; learnings } ->
      Json.Obj
        [ ("ev", Json.String "progress"); ("round", Json.Int round);
          ("progress", Json.Int progress); ("learnings", Json.Int learnings) ]
  | Phase { name; round } ->
      Json.Obj
        [ ("ev", Json.String "phase"); ("name", Json.String name);
          ("round", Json.Int round) ]
  | Fault { round; kind; node; dst; cls } ->
      let dst_field =
        match dst with None -> [] | Some d -> [ ("dst", Json.Int d) ]
      in
      let cls_field =
        match cls with None -> [] | Some c -> [ ("cls", Json.String c) ]
      in
      Json.Obj
        ([ ("ev", Json.String "fault"); ("round", Json.Int round);
           ("kind", Json.String kind); ("node", Json.Int node) ]
        @ dst_field @ cls_field)
  | Run_end { rounds; completed; messages } ->
      Json.Obj
        [ ("ev", Json.String "run_end"); ("rounds", Json.Int rounds);
          ("completed", Json.Bool completed); ("messages", Json.Int messages) ]
  | Diag { level; msg } ->
      Json.Obj
        [ ("ev", Json.String "diag"); ("level", Json.String level);
          ("msg", Json.String msg) ]

let pp ppf ev = Format.pp_print_string ppf (Json.to_string (to_json ev))
