type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {2 Encoding} *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

(* {2 Parsing} *)

exception Parse_error of int * string

let parse_fail pos msg = raise (Parse_error (pos, msg))

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word value =
    let wl = String.length word in
    if !pos + wl <= len && String.sub s !pos wl = word then begin
      pos := !pos + wl;
      value
    end
    else parse_fail !pos ("expected " ^ word)
  in
  let add_utf8 buf code =
    (* Encode one Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > len then parse_fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then parse_fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= len then parse_fail !pos "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let hi = hex4 () in
               if hi >= 0xD800 && hi <= 0xDBFF then begin
                 (* Surrogate pair: expect \uDC00-\uDFFF next. *)
                 expect '\\';
                 expect 'u';
                 let lo = hex4 () in
                 if lo < 0xDC00 || lo > 0xDFFF then
                   parse_fail !pos "invalid low surrogate";
                 add_utf8 buf
                   (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
               end
               else add_utf8 buf hi
           | c -> parse_fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          loop ()
      | c when Char.code c < 0x20 -> parse_fail !pos "raw control character"
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while
        !pos < len && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        saw := true;
        advance ()
      done;
      if not !saw then parse_fail !pos "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some n -> Int n
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> parse_fail !pos "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> parse_fail !pos "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then parse_fail !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "byte %d: %s" at msg)
  | exception Failure msg -> Error msg

(* {2 Accessors} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
