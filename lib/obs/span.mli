(** Hierarchical profiling spans with wall-clock, allocation deltas,
    and counters.

    Where {!Timer} gives one flat duration per region, a [Span.t]
    profiler records a {e tree} of nested spans — rounds containing
    phases containing engine sub-steps — each carrying its
    wall-clock ([Unix.gettimeofday], same caveats as {!Timer}), its
    allocated words (from {!Gc.quick_stat} deltas:
    [minor + major - promoted]), and optional named counters.

    {2 Cost discipline}

    [null] is a plain constructor, so with profiling off the engines
    pay exactly one hoisted [is_null] test per instrumentation site —
    the same zero-cost pattern as {!Sink.null}.  An active profiler
    appends one record per span into a flat growable array (parent
    links are indices); nothing is re-walked until export.  Each lane
    stores at most [limit] spans (default 500k); beyond that, spans
    are counted in {!dropped} rather than stored, and the Chrome
    export surfaces the drop count in [otherData] so a truncated
    profile is never mistaken for a complete one.

    {2 Lanes and domains}

    A profiler is single-domain, like {!Metrics}.  Parallel code gives
    each domain its own lane via {!worker} (sharing the creator's
    epoch so timestamps align), and folds the lanes back with
    {!absorb} after [Domain.join] — the sanctioned pattern used by
    [Analysis.Sweep]. *)

type t

val null : t
(** The no-op profiler: every operation returns immediately. *)

val is_null : t -> bool

val create : ?limit:int -> ?lane:string -> unit -> t
(** A fresh active profiler whose epoch is the call instant.  [limit]
    bounds stored spans per lane (default 500_000); [lane] names the
    main lane in exports (default ["main"]). *)

val enter : t -> ?cat:string -> string -> unit
(** Open a span as a child of the innermost open span (or as a root).
    [cat] is the Chrome-trace category (default ["span"]). *)

val leave : t -> unit
(** Close the innermost open span, recording duration and allocation
    delta.  An unmatched [leave] is ignored. *)

val with_span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** [enter]/[leave] around a thunk; the span closes even on raise.  On
    {!null} the thunk runs with zero overhead. *)

val add_counter : t -> string -> float -> unit
(** Add [v] to a named counter on the innermost open span (summing
    across calls); a no-op when no span is open. *)

val worker : t -> tid:int -> lane:string -> t
(** A fresh lane sharing this profiler's epoch and limit, for use by
    exactly one domain.  [worker null] is [null].  The caller must
    {!absorb} it after the domain joins for it to appear in exports. *)

val absorb : t -> from:t -> unit
(** Fold a joined {!worker} lane (and anything it absorbed) into this
    profiler.  Call only after the owning domain has joined.  No-op if
    either side is {!null}. *)

val span_count : t -> int
(** Stored spans across all lanes (0 for {!null}). *)

val dropped : t -> int
(** Spans dropped to the per-lane limit, across all lanes. *)

val lane_busy_us : t -> float
(** Sum of this lane's {e root}-span durations in µs — the lane's busy
    wall-clock (children nest inside roots, so roots alone avoid
    double counting).  Ignores absorbed lanes; use on {!worker} lanes
    to compute per-domain utilization. *)

val to_chrome_json : t -> Json.t
(** The profile as Chrome trace-event JSON (loadable by Perfetto /
    [chrome://tracing]): one ["X"] complete event per span with
    [ts]/[dur] in µs since the epoch, one lane per [tid] named by a
    ["thread_name"] metadata event, allocation and counters in
    [args], and totals (including {!dropped}) in [otherData].  Spans
    still open are closed as of the export instant. *)

val to_folded : t -> string
(** The profile as folded-stacks text ([lane;a;b self_µs] per line,
    sorted), the input format of flamegraph tooling.  Self time is a
    span's duration minus its children's; non-positive self times are
    elided. *)

type format = Chrome | Folded

val format_of_path : string -> format
(** [Folded] for [.folded] / [.txt] paths, [Chrome] otherwise. *)

val write : t -> out_channel -> format -> unit
(** Write {!to_chrome_json} (one NDJSON-style line) or {!to_folded} to
    a channel.  Does not flush or close; the channel is the caller's. *)
