let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let xs = require_nonempty "Stats.stddev" xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let minimum xs = List.fold_left min infinity (require_nonempty "Stats.minimum" xs)
let maximum xs =
  List.fold_left max neg_infinity (require_nonempty "Stats.maximum" xs)

let sorted xs = List.sort Float.compare xs

let median xs =
  let xs = sorted (require_nonempty "Stats.median" xs) in
  let arr = Array.of_list xs in
  let len = Array.length arr in
  if len mod 2 = 1 then arr.(len / 2)
  else (arr.((len / 2) - 1) +. arr.(len / 2)) /. 2.

let percentile xs ~p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let xs = sorted (require_nonempty "Stats.percentile" xs) in
  let arr = Array.of_list xs in
  let len = Array.length arr in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int len)) in
  arr.(max 0 (min (len - 1) (rank - 1)))

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Stats.linear_fit: degenerate x-values";
  let b = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. nf in
  (a, b)

let loglog_slope points =
  let usable =
    List.filter_map
      (fun (x, y) -> if x > 0. && y > 0. then Some (log x, log y) else None)
      points
  in
  snd (linear_fit usable)
