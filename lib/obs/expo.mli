(** Prometheus text exposition for a {!Metrics} registry.

    Renders the registry in the Prometheus text format (version
    0.0.4), the groundwork for the eventual serve daemon's scrape
    endpoint — and immediately useful for eyeballing a run's metrics
    with standard tooling:

    - counters become [<name>_total] with a [# TYPE .. counter] line;
    - gauges are emitted as-is;
    - histograms become summaries — [quantile="0.5"/"0.95"/"0.99"]
      series plus [_sum] and [_count] (the registry stores raw
      samples, not fixed buckets, so a summary is the faithful
      rendering).

    Metric names are sanitized to the Prometheus name grammar by
    replacing every byte outside [[a-zA-Z0-9_:]] with an underscore (a
    leading digit is also replaced); an optional [namespace] is
    prefixed as
    [<namespace>_].  Output order is deterministic: counters, gauges,
    then summaries, each sorted by name. *)

val to_buffer : ?namespace:string -> Buffer.t -> Metrics.t -> unit

val to_string : ?namespace:string -> Metrics.t -> string

val write : ?namespace:string -> out_channel -> Metrics.t -> unit
(** Write the exposition to a channel.  Does not flush. *)

val http_response : ?namespace:string -> Metrics.t -> string
(** The exposition wrapped as one complete HTTP/1.0 [200 OK] response
    (correct [Content-Length], [Connection: close]) — everything a
    [GET /metrics] responder needs to write before closing the
    socket. *)
