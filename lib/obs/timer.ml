let now_s () = Unix.gettimeofday ()

type span = { name : string; began : float }

let start name = { name; began = now_s () }
let name span = span.name
let elapsed_s span = Float.max 0. (now_s () -. span.began)

let record ?metrics span =
  let dt = elapsed_s span in
  (match metrics with
  | Some m -> Metrics.observe m span.name dt
  | None -> ());
  dt

let time f =
  let span = start "time" in
  let result = f () in
  (result, elapsed_s span)

let observe_span ?metrics ~name f =
  let span = start name in
  Fun.protect
    ~finally:(fun () -> ignore (record ?metrics span))
    f
