type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Growable sample buffer: amortised O(1) appends into a preallocated
   float array instead of consing a reversed list per observation. *)
type vec = { mutable data : float array; mutable len : int }

let vec_create () = { data = Array.make 16 0.; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * Array.length v.data) 0. in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let vec_to_list v = List.init v.len (fun i -> v.data.(i))

type t = {
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  histograms : (string, vec) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  let old = Option.value (Hashtbl.find_opt t.counters name) ~default:0 in
  Hashtbl.replace t.counters name (old + by)

let counter t name = Option.value (Hashtbl.find_opt t.counters name) ~default:0
let set_gauge t name v = Hashtbl.replace t.gauges name v
let gauge t name = Hashtbl.find_opt t.gauges name

let observe t name v =
  match Hashtbl.find_opt t.histograms name with
  | Some vec -> vec_push vec v
  | None ->
      let vec = vec_create () in
      vec_push vec v;
      Hashtbl.replace t.histograms name vec

let samples t name =
  match Hashtbl.find_opt t.histograms name with
  | Some vec -> vec_to_list vec
  | None -> []

let summarize = function
  | [] -> None
  | xs ->
      Some
        {
          count = List.length xs;
          sum = List.fold_left ( +. ) 0. xs;
          min = Stats.minimum xs;
          max = Stats.maximum xs;
          mean = Stats.mean xs;
          p50 = Stats.percentile xs ~p:50.;
          p95 = Stats.percentile xs ~p:95.;
          p99 = Stats.percentile xs ~p:99.;
        }

let summary t name = summarize (samples t name)

let merge ~into src =
  Hashtbl.iter (fun name by -> if by > 0 then incr into ~by name) src.counters;
  Hashtbl.iter (fun name v -> set_gauge into name v) src.gauges;
  Hashtbl.iter
    (fun name vec ->
      for i = 0 to vec.len - 1 do
        observe into name vec.data.(i)
      done)
    src.histograms

let names t =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq String.compare
    (keys t.counters @ keys t.gauges @ keys t.histograms)

let sorted_fields of_value tbl =
  Hashtbl.fold (fun k v acc -> (k, of_value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters_list t = sorted_fields (fun n -> n) t.counters
let gauges_list t = sorted_fields (fun v -> v) t.gauges

let histogram_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.histograms [])

let summary_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.count); ("sum", Json.Float s.sum);
      ("min", Json.Float s.min); ("max", Json.Float s.max);
      ("mean", Json.Float s.mean); ("p50", Json.Float s.p50);
      ("p95", Json.Float s.p95); ("p99", Json.Float s.p99);
    ]

let to_json t =
  let histogram_fields =
    Hashtbl.fold
      (fun k vec acc ->
        match summarize (vec_to_list vec) with
        | None -> acc
        | Some s -> (k, summary_to_json s) :: acc)
      t.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ("counters", Json.Obj (sorted_fields (fun n -> Json.Int n) t.counters));
      ("gauges", Json.Obj (sorted_fields (fun v -> Json.Float v) t.gauges));
      ("histograms", Json.Obj histogram_fields);
    ]
