type t = {
  name : string;
  completed : bool;
  rounds : int;
  messages : int;
  class_counts : (string * int) list;
  tc : int;
  removals : int;
  learnings : int;
  alpha : float;
  competitive_cost : float;
  max_load : int;
  mean_load : float;
  load_summary : Metrics.summary option;
  timeline : (int * int * int) list;
  extra : (string * Json.t) list;
}

let make ~name ~completed ~rounds ~messages ~class_counts ~tc ~removals
    ~learnings ~alpha ~competitive_cost ~max_load ~mean_load ?load_summary
    ?(timeline = []) ?(extra = []) () =
  {
    name;
    completed;
    rounds;
    messages;
    class_counts;
    tc;
    removals;
    learnings;
    alpha;
    competitive_cost;
    max_load;
    mean_load;
    load_summary;
    timeline;
    extra;
  }

let summary_field = function
  | None -> []
  | Some s -> [ ("load_summary", Metrics.summary_to_json s) ]

let to_json t =
  Json.Obj
    ([
       ("schema", Json.String "dynspread-report/v1");
       ("name", Json.String t.name);
       ("completed", Json.Bool t.completed);
       ("rounds", Json.Int t.rounds);
       ("messages", Json.Int t.messages);
       ( "class_counts",
         Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) t.class_counts) );
       ("tc", Json.Int t.tc);
       ("removals", Json.Int t.removals);
       ("learnings", Json.Int t.learnings);
       ("alpha", Json.Float t.alpha);
       ("competitive_cost", Json.Float t.competitive_cost);
       ("max_load", Json.Int t.max_load);
       ("mean_load", Json.Float t.mean_load);
     ]
    @ summary_field t.load_summary
    @ [
        ( "timeline",
          Json.List
            (List.map
               (fun (r, msgs, progress) ->
                 Json.Obj
                   [
                     ("round", Json.Int r); ("messages", Json.Int msgs);
                     ("progress", Json.Int progress);
                   ])
               t.timeline) );
      ]
    @ t.extra)

let pp ppf t = Format.pp_print_string ppf (Json.to_string (to_json t))
