type t =
  | Null
  | Memory of Trace.event list ref
  | Jsonl of out_channel
  | Multi of t list
  | Custom of (Trace.event -> unit)

let null = Null
let memory () = Memory (ref [])
let is_null = function Null -> true | _ -> false

let rec emit t ev =
  match t with
  | Null -> ()
  | Memory cell -> cell := ev :: !cell
  | Jsonl oc -> Json.to_channel oc (Trace.to_json ev)
  | Multi sinks -> List.iter (fun s -> emit s ev) sinks
  | Custom f -> f ev

let events = function
  | Memory cell -> List.rev !cell
  | Null | Jsonl _ | Multi _ | Custom _ ->
      invalid_arg "Sink.events: not a memory sink"

let rec flush = function
  | Jsonl oc -> Stdlib.flush oc
  | Multi sinks -> List.iter flush sinks
  | Null | Memory _ | Custom _ -> ()
