(* A Jsonl sink buffers complete NDJSON lines and writes them to the
   channel in line-aligned chunks, flushing the channel immediately
   after each chunk.  The stdlib channel buffer therefore never holds
   a partial line between emissions — its auto-flush at an arbitrary
   64KB byte boundary was how aborted runs used to ship torn lines.
   A process killed mid-run loses at most the lines still pending in
   the sink's own buffer; everything already on disk parses.

   Normal exits (including uncaught exceptions) lose nothing: the
   first [jsonl] call installs one [at_exit] hook that drains every
   still-registered stream.  The registry is an [Atomic] so sinks
   created inside sweep worker domains stay domain-safe. *)

type stream = {
  sid : int;
  chan : out_channel;
  pending : Buffer.t;  (* complete lines not yet written *)
}

type t =
  | Null
  | Memory of Trace.event list ref
  | Jsonl of stream
  | Multi of t list
  | Custom of (Trace.event -> unit)

let null = Null
let memory () = Memory (ref [])
let is_null = function Null -> true | _ -> false

(* Write the pending lines as one chunk and flush the channel, so the
   channel buffer is empty again before the next emission. *)
let write_pending s =
  if Buffer.length s.pending > 0 then begin
    Buffer.output_buffer s.chan s.pending;
    Buffer.clear s.pending;
    Stdlib.flush s.chan
  end

let chunk_bytes = 65536

(* {2 The at-exit registry} *)

let live : stream list Atomic.t = Atomic.make []
let hook_installed : bool Atomic.t = Atomic.make false

let rec update f =
  let old = Atomic.get live in
  if not (Atomic.compare_and_set live old (f old)) then update f

let register s =
  if not (Atomic.exchange hook_installed true) then
    at_exit (fun () ->
        List.iter
          (fun s -> try write_pending s with Sys_error _ -> ())
          (Atomic.get live));
  update (fun ss -> s :: ss)

let unregister s =
  update (List.filter (fun s' -> s'.sid <> s.sid))

let next_sid = Atomic.make 0

let jsonl oc =
  let s =
    {
      sid = Atomic.fetch_and_add next_sid 1;
      chan = oc;
      pending = Buffer.create chunk_bytes;
    }
  in
  register s;
  Jsonl s

(* {2 Operations} *)

let rec emit t ev =
  match t with
  | Null -> ()
  | Memory cell -> cell := ev :: !cell
  | Jsonl s ->
      Json.to_buffer s.pending (Trace.to_json ev);
      Buffer.add_char s.pending '\n';
      if Buffer.length s.pending >= chunk_bytes then write_pending s
  | Multi sinks -> List.iter (fun s -> emit s ev) sinks
  | Custom f -> f ev

let events = function
  | Memory cell -> List.rev !cell
  | Null | Jsonl _ | Multi _ | Custom _ ->
      invalid_arg "Sink.events: not a memory sink"

let rec flush = function
  | Jsonl s -> write_pending s
  | Multi sinks -> List.iter flush sinks
  | Null | Memory _ | Custom _ -> ()

let rec close = function
  | Jsonl s ->
      write_pending s;
      unregister s
  | Multi sinks -> List.iter close sinks
  | Null | Memory _ | Custom _ -> ()
