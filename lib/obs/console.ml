(* The sanctioned console path for executables.  dynlint's direct-print
   rule bans ad-hoc [print_*]/[prerr_*] everywhere (libraries AND
   executables) so all run output flows through [Sink] or through
   here: [out] is the stdout results channel (tables, JSON reports),
   [error]/[note] the stderr diagnostics.  Routing them through one
   exit point keeps them greppable and mirrors them into an active
   sink as [Diag] events when one is around. *)

let emit ?sink ~level ~chan msg =
  (match sink with
  | Some s when not (Sink.is_null s) -> Sink.emit s (Trace.Diag { level; msg })
  | _ -> ());
  output_string chan msg;
  output_char chan '\n';
  flush chan

let out ?sink msg = emit ?sink ~level:"out" ~chan:stdout msg
let error ?sink msg = emit ?sink ~level:"error" ~chan:stderr msg
let note ?sink msg = emit ?sink ~level:"note" ~chan:stderr msg
let lines ?sink msgs = List.iter (note ?sink) msgs
