(* The sanctioned stderr path for executables.  dynlint's direct-print
   rule bans ad-hoc [prerr_*] in libraries so all run output flows
   through [Sink]; executables still need a human-facing stderr for
   usage errors and abort notices, and routing those through here keeps
   them greppable and mirrors them into an active sink as [Diag]
   events when one is around. *)

let emit ?sink ~level msg =
  (match sink with
  | Some s when not (Sink.is_null s) -> Sink.emit s (Trace.Diag { level; msg })
  | _ -> ());
  output_string stderr msg;
  output_char stderr '\n';
  flush stderr

let error ?sink msg = emit ?sink ~level:"error" msg
let note ?sink msg = emit ?sink ~level:"note" msg

let lines ?sink msgs = List.iter (note ?sink) msgs
