(** Machine-readable run reports.

    The JSON rendering of one execution's cost accounting — everything
    [Engine.Ledger.pp] prints and more, as data: headline totals,
    per-class message counts, the paper's cost-model quantities
    (Definitions 1.1–1.4: messages, [TC(E)], learnings, the
    α-competitive cost), the per-node load distribution, and the
    per-round timeline.  [Engine.Run_result.to_report] builds one from
    a run; the CLI's [--json] flag prints it. *)

type t = {
  name : string;  (** What ran, e.g. ["single-source/rewiring"]. *)
  completed : bool;
  rounds : int;
  messages : int;  (** Definition 1.1 total. *)
  class_counts : (string * int) list;
      (** Per-{!Engine.Msg_class} totals, in class order. *)
  tc : int;  (** [TC(E)] (Definition 1.2). *)
  removals : int;
  learnings : int;  (** Definition 1.4 token learnings. *)
  alpha : float;
  competitive_cost : float;
      (** [messages − α·TC(E)] (Definition 1.3). *)
  max_load : int;
  mean_load : float;
  load_summary : Metrics.summary option;
      (** Distribution of per-sender message loads. *)
  timeline : (int * int * int) list;
      (** [(round, cumulative messages, cumulative progress)]. *)
  extra : (string * Json.t) list;
      (** Caller extensions (e.g. Algorithm 2's phase breakdown),
          appended verbatim to the object. *)
}

val make :
  name:string ->
  completed:bool ->
  rounds:int ->
  messages:int ->
  class_counts:(string * int) list ->
  tc:int ->
  removals:int ->
  learnings:int ->
  alpha:float ->
  competitive_cost:float ->
  max_load:int ->
  mean_load:float ->
  ?load_summary:Metrics.summary ->
  ?timeline:(int * int * int) list ->
  ?extra:(string * Json.t) list ->
  unit ->
  t

val to_json : t -> Json.t
(** One object; [schema] field is ["dynspread-report/v1"].  The
    timeline becomes a list of [{"round","messages","progress"}]
    objects; [load_summary] is omitted when absent. *)

val pp : Format.formatter -> t -> unit
(** The JSON, compact. *)
