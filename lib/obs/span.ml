(* Hierarchical profiling spans.

   One [state] is one lane: a flat growable array of span records plus
   a stack of open-span indices.  Parent links are array indices, so a
   whole profile is three flat allocations plus one record per span —
   no tree rebuilding on the hot path.  Worker lanes ([worker]) share
   the creator's epoch and are absorbed back after [Domain.join], so a
   parallel sweep's profile reads as one timeline with one lane per
   domain.

   The [Null] constructor is the zero-cost default: every entry point
   matches on it first, and callers hoist [not (is_null prof)] out of
   their loops, mirroring the [Sink.null] discipline. *)

type span = {
  parent : int;  (* index into the lane's span array; -1 for a root *)
  name : string;
  cat : string;
  start_us : float;  (* relative to the lane's epoch *)
  mutable dur_us : float;  (* -1.0 while the span is open *)
  alloc0 : float;  (* allocated words at entry *)
  mutable alloc_words : float;
  mutable counters : (string * float) list;
}

(* Array.make filler; allocated per grow so no mutable record lives at
   the top level (each lane's arrays are single-domain anyway, but the
   domain-safety audit rightly has no way to see that). *)
let dummy () =
  {
    parent = -1;
    name = "";
    cat = "";
    start_us = 0.;
    dur_us = 0.;
    alloc0 = 0.;
    alloc_words = 0.;
    counters = [];
  }

type state = {
  epoch : float;  (* gettimeofday at creation of the root profiler *)
  limit : int;  (* max spans per lane; excess is counted, not stored *)
  tid : int;
  lane : string;
  mutable spans : span array;
  mutable len : int;
  mutable stack : int list;  (* open spans, innermost first; -1 = dropped *)
  mutable dropped : int;
  mutable absorbed : state list;  (* joined worker lanes, absorb order *)
}

type t = Null | Active of state

let null = Null
let is_null = function Null -> true | Active _ -> false
let default_limit = 500_000

let create ?(limit = default_limit) ?(lane = "main") () =
  Active
    {
      epoch = Unix.gettimeofday ();
      limit;
      tid = 1;
      lane;
      spans = [||];
      len = 0;
      stack = [];
      dropped = 0;
      absorbed = [];
    }

let worker t ~tid ~lane =
  match t with
  | Null -> Null
  | Active st ->
      Active
        {
          epoch = st.epoch;
          limit = st.limit;
          tid;
          lane;
          spans = [||];
          len = 0;
          stack = [];
          dropped = 0;
          absorbed = [];
        }

let absorb t ~from =
  match (t, from) with
  | Active st, Active w -> st.absorbed <- st.absorbed @ (w :: w.absorbed)
  | (Null | Active _), (Null | Active _) -> ()

(* {2 The hot path} *)

let now_us st = (Unix.gettimeofday () -. st.epoch) *. 1e6

let alloc_words_now () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let ensure_capacity st =
  if st.len >= Array.length st.spans then begin
    let cap = max 64 (2 * Array.length st.spans) in
    let spans = Array.make cap (dummy ()) in
    Array.blit st.spans 0 spans 0 st.len;
    st.spans <- spans
  end

(* Innermost open span that was actually recorded (skipping dropped
   sentinels); -1 when none. *)
let rec first_real = function
  | [] -> -1
  | i :: tl -> if i >= 0 then i else first_real tl

let enter t ?(cat = "span") name =
  match t with
  | Null -> ()
  | Active st ->
      if st.len >= st.limit then begin
        st.dropped <- st.dropped + 1;
        (* Push a sentinel so the matching [leave] stays paired. *)
        st.stack <- -1 :: st.stack
      end
      else begin
        ensure_capacity st;
        let idx = st.len in
        st.spans.(idx) <-
          {
            parent = first_real st.stack;
            name;
            cat;
            start_us = now_us st;
            dur_us = -1.;
            alloc0 = alloc_words_now ();
            alloc_words = 0.;
            counters = [];
          };
        st.len <- idx + 1;
        st.stack <- idx :: st.stack
      end

let leave t =
  match t with
  | Null -> ()
  | Active st -> (
      match st.stack with
      | [] -> ()  (* unmatched leave: tolerated, like an empty pop *)
      | i :: tl ->
          st.stack <- tl;
          if i >= 0 then begin
            let sp = st.spans.(i) in
            sp.dur_us <- Float.max 0. (now_us st -. sp.start_us);
            sp.alloc_words <- alloc_words_now () -. sp.alloc0
          end)

let with_span t ?cat name f =
  match t with
  | Null -> f ()
  | Active _ ->
      enter t ?cat name;
      Fun.protect ~finally:(fun () -> leave t) f

let add_counter t name v =
  match t with
  | Null -> ()
  | Active st -> (
      match first_real st.stack with
      | -1 -> ()
      | i ->
          let sp = st.spans.(i) in
          sp.counters <-
            (match List.assoc_opt name sp.counters with
            | Some old ->
                (name, old +. v) :: List.remove_assoc name sp.counters
            | None -> (name, v) :: sp.counters))

(* {2 Introspection} *)

let lanes_of st = st :: st.absorbed

let span_count = function
  | Null -> 0
  | Active st -> List.fold_left (fun acc l -> acc + l.len) 0 (lanes_of st)

let dropped = function
  | Null -> 0
  | Active st -> List.fold_left (fun acc l -> acc + l.dropped) 0 (lanes_of st)

let lane_busy_us = function
  | Null -> 0.
  | Active st ->
      (* Sum of root-span durations: nested spans lie inside a root, so
         roots alone measure lane-busy wall-clock without double
         counting. *)
      let busy = ref 0. in
      for i = 0 to st.len - 1 do
        let sp = st.spans.(i) in
        if sp.parent = -1 && sp.dur_us > 0. then busy := !busy +. sp.dur_us
      done;
      !busy

(* {2 Exporters} *)

(* Close any span still open (export can race a run aborted mid-round,
   and the root span is usually still open when the CLI exports). *)
let close_open st =
  let now = now_us st in
  List.iter
    (fun i ->
      if i >= 0 then begin
        let sp = st.spans.(i) in
        if sp.dur_us < 0. then begin
          sp.dur_us <- Float.max 0. (now -. sp.start_us);
          sp.alloc_words <- alloc_words_now () -. sp.alloc0
        end
      end)
    st.stack

let to_chrome_json t =
  match t with
  | Null -> Json.Obj [ ("traceEvents", Json.List []) ]
  | Active st ->
      let lanes = lanes_of st in
      List.iter close_open lanes;
      let events = ref [] in
      let push ev = events := ev :: !events in
      List.iter
        (fun lane ->
          push
            (Json.Obj
               [
                 ("name", Json.String "thread_name");
                 ("ph", Json.String "M");
                 ("pid", Json.Int 1);
                 ("tid", Json.Int lane.tid);
                 ("args", Json.Obj [ ("name", Json.String lane.lane) ]);
               ]);
          for i = 0 to lane.len - 1 do
            let sp = lane.spans.(i) in
            let args =
              ("alloc_words", Json.Float sp.alloc_words)
              :: List.rev_map (fun (k, v) -> (k, Json.Float v)) sp.counters
            in
            push
              (Json.Obj
                 [
                   ("name", Json.String sp.name);
                   ("cat", Json.String sp.cat);
                   ("ph", Json.String "X");
                   ("ts", Json.Float sp.start_us);
                   ("dur", Json.Float (Float.max 0. sp.dur_us));
                   ("pid", Json.Int 1);
                   ("tid", Json.Int lane.tid);
                   ("args", Json.Obj args);
                 ])
          done)
        lanes;
      Json.Obj
        [
          ("traceEvents", Json.List (List.rev !events));
          ("displayTimeUnit", Json.String "ms");
          ( "otherData",
            Json.Obj
              [
                ("spans", Json.Int (span_count t));
                ("dropped", Json.Int (dropped t));
              ] );
        ]

let to_folded t =
  match t with
  | Null -> ""
  | Active st ->
      let lanes = lanes_of st in
      List.iter close_open lanes;
      let agg = Hashtbl.create 256 in
      List.iter
        (fun lane ->
          let child_dur = Array.make (max 1 lane.len) 0. in
          for i = 0 to lane.len - 1 do
            let sp = lane.spans.(i) in
            if sp.parent >= 0 && sp.dur_us > 0. then
              child_dur.(sp.parent) <- child_dur.(sp.parent) +. sp.dur_us
          done;
          let rec path i =
            let sp = lane.spans.(i) in
            if sp.parent = -1 then lane.lane ^ ";" ^ sp.name
            else path sp.parent ^ ";" ^ sp.name
          in
          for i = 0 to lane.len - 1 do
            let sp = lane.spans.(i) in
            if sp.dur_us > 0. then begin
              let self = int_of_float (sp.dur_us -. child_dur.(i)) in
              if self > 0 then begin
                let p = path i in
                let old =
                  Option.value (Hashtbl.find_opt agg p) ~default:0
                in
                Hashtbl.replace agg p (old + self)
              end
            end
          done)
        lanes;
      let lines = Hashtbl.fold (fun p us acc -> (p, us) :: acc) agg [] in
      let lines =
        List.sort (fun (a, _) (b, _) -> String.compare a b) lines
      in
      let buf = Buffer.create 4096 in
      List.iter
        (fun (p, us) ->
          Buffer.add_string buf p;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int us);
          Buffer.add_char buf '\n')
        lines;
      Buffer.contents buf

type format = Chrome | Folded

let format_of_path path =
  if Filename.check_suffix path ".folded" || Filename.check_suffix path ".txt"
  then Folded
  else Chrome

let write t oc = function
  | Chrome -> Json.to_channel oc (to_chrome_json t)
  | Folded -> output_string oc (to_folded t)
