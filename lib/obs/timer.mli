(** Wall-clock spans for the engines' round loops and the experiment
    harness.

    Spans answer "where does simulator time go": each one measures the
    elapsed wall-clock of a named region and can record it into a
    {!Metrics} histogram (in seconds), so p50/p95/p99 per-region
    latencies fall out of {!Metrics.summary}.

    The clock is [Unix.gettimeofday] — the best no-new-dependency
    approximation of a monotonic clock available here (OCaml's stdlib
    has none and the repo policy forbids new opam packages).  Spans are
    clamped to be non-negative, so an NTP step cannot produce negative
    durations; sub-microsecond readings are below its resolution. *)

val now_s : unit -> float
(** Current wall-clock in seconds (arbitrary epoch; use differences). *)

type span

val start : string -> span
(** Begin a named span. *)

val name : span -> string

val elapsed_s : span -> float
(** Seconds since [start], clamped to [>= 0].  The span may be read
    multiple times; it has no stop state. *)

val record : ?metrics:Metrics.t -> span -> float
(** [elapsed_s], additionally observed into [metrics] under the span's
    name when given. *)

val time : (unit -> 'a) -> 'a * float
(** Run a thunk, returning its result and elapsed seconds. *)

val observe_span : ?metrics:Metrics.t -> name:string -> (unit -> 'a) -> 'a
(** Run a thunk inside a span; the duration is recorded into [metrics]
    (when given) even if the thunk raises. *)
