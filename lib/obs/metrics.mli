(** Named counters, gauges, and histograms for the simulation harness.

    A registry of three metric kinds, keyed by name:

    - {e counters} — monotone event counts ([incr]);
    - {e gauges} — last-write-wins instantaneous values ([set_gauge]);
    - {e histograms} — observed samples ([observe]) summarized on
      demand with count/sum/min/max/mean and the p50/p95/p99
      nearest-rank percentiles of {!Stats.percentile} (the same helper
      the experiment shape checks use — Engine.Stats re-exports it).

    Used for per-node load distributions and per-phase wall-clock; the
    registry is single-domain (no locking), like the engines. *)

type t

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0 first.
    @raise Invalid_argument if [by < 0]. *)

val counter : t -> string -> int
(** Current counter value (0 if never incremented). *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

val observe : t -> string -> float -> unit
(** Append one sample to a histogram, creating it if needed. *)

val samples : t -> string -> float list
(** A histogram's samples in observation order ([[]] if unknown). *)

val summary : t -> string -> summary option
(** [None] if the histogram is unknown or empty. *)

val summarize : float list -> summary option
(** The summary of a raw sample list (shared with {!summary}); [None]
    on the empty list. *)

val merge : into:t -> t -> unit
(** Absorb a second registry: counters add, gauges last-write-wins
    (the source's value), histogram samples append in the source's
    observation order.  Used by the parallel sweep runner to fold
    per-task registries into the caller's, in deterministic task
    order, after the domains have joined — the registry itself stays
    single-domain. *)

val names : t -> string list
(** All registered metric names (counters, gauges, histograms),
    sorted, deduplicated. *)

val counters_list : t -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

val gauges_list : t -> (string * float) list
(** Every registered gauge with its value, sorted by name. *)

val histogram_names : t -> string list
(** Every registered histogram name, sorted (per-kind enumeration for
    exposition writers; {!names} merges the three kinds). *)

val summary_to_json : summary -> Json.t

val to_json : t -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name:
    summary}}] with names sorted for stable output. *)
