(** A minimal JSON document type with a hand-rolled encoder and parser.

    The observability layer must stay dependency-free (no new opam
    packages), so this module implements just enough of RFC 8259 to
    write and read back the traces, metrics, and run reports this
    library produces: all seven value kinds, string escaping, and a
    strict recursive-descent parser.  It is not a general-purpose JSON
    library — there is no streaming, no number-precision haggling, and
    duplicate object keys are kept as-is (first one wins in {!member}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) encoding.  Non-finite floats have no JSON
    representation and are encoded as [null]; integral floats are
    printed with a trailing [.0] so they parse back as [Float]. *)

val to_buffer : Buffer.t -> t -> unit

val to_channel : out_channel -> t -> unit
(** [to_string] followed by a newline — one NDJSON line.  Does not
    flush. *)

val of_string : string -> (t, string) result
(** Strict parse of exactly one JSON document (surrounding whitespace
    allowed).  [Error msg] carries a byte offset.  Numbers without
    [./e/E] become [Int]; everything else numeric becomes [Float].
    [\uXXXX] escapes are decoded to UTF-8 (surrogate pairs included). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n] as [Some n]; anything else [None]. *)

val to_float_opt : t -> float option
(** [Float] or [Int] as a float; anything else [None]. *)
