(** Small numerical helpers for experiment sweeps. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for singleton lists.
    @raise Invalid_argument on an empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val median : float list -> float
(** @raise Invalid_argument on an empty list. *)

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p] in [0, 100].
    @raise Invalid_argument on an empty list or [p] out of range. *)

val linear_fit : (float * float) list -> float * float
(** Least-squares fit [y = a + b·x]; returns [(a, b)].
    @raise Invalid_argument with fewer than two points or degenerate
    x-values. *)

val loglog_slope : (float * float) list -> float
(** Slope of the least-squares line through [(log x, log y)]: the
    empirical growth exponent used by the shape checks (e.g. Theorem
    3.8 predicts total messages ∝ k^{1/4} at fixed n).  Points with
    non-positive coordinates are dropped.
    @raise Invalid_argument if fewer than two usable points remain. *)
