(** Human-facing console output for executables.

    Libraries never print (dynlint's direct-print rule); executables
    route output through here instead of raw [print_*]/[prerr_*], so
    every line has one exit point and is mirrored into the active
    {!Sink} as a {!Trace.Diag} event when one is passed.  Results go
    to stdout via {!out}; diagnostics go to stderr via {!error} and
    {!note}. *)

val out : ?sink:Sink.t -> string -> unit
(** Write one line to stdout, flushed; mirrored as a [Diag] event with
    level ["out"].  This is the results channel — tables, JSON
    reports, CSV rows. *)

val error : ?sink:Sink.t -> string -> unit
(** Write one line to stderr, flushed; mirrored as a [Diag] event with
    level ["error"]. *)

val note : ?sink:Sink.t -> string -> unit
(** Same, with level ["note"] (usage text, progress remarks). *)

val lines : ?sink:Sink.t -> string list -> unit
(** [note] each line in order. *)
