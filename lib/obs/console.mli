(** Human-facing stderr for executables.

    Libraries never print (dynlint's direct-print rule); executables
    route usage errors and abort notices through here instead of raw
    [prerr_endline], so every diagnostic has one exit point and is
    mirrored into the active {!Sink} as a {!Trace.Diag} event when one
    is passed. *)

val error : ?sink:Sink.t -> string -> unit
(** Write one line to stderr, flushed; mirrored as a [Diag] event with
    level ["error"]. *)

val note : ?sink:Sink.t -> string -> unit
(** Same, with level ["note"] (usage text, progress remarks). *)

val lines : ?sink:Sink.t -> string list -> unit
(** [note] each line in order. *)
