(** Typed per-round trace events emitted by the simulation engines.

    One event per observable engine action, in engine-loop order.  For
    each executed round the engines emit

    + [Round_start] — the round counter advanced;
    + [Graph_change] — the adversary fixed the round graph; [added]
      and [removed] are [|E⁺_r|] and [|E⁻_r|] versus the previous
      round's graph, so summing [added] over a trace reproduces the
      paper's [TC(E)] (Definition 1.2);
    + one [Send] per {e charged} message — a local broadcast is one
      event with [dst = None] (Definition 1.1 charges it once), a
      unicast message to each distinct neighbor is one event each;
      summing [Send] events reproduces the ledger's message total;
    + [Progress] — end-of-round global progress: [progress] is the sum
      over nodes of tokens known, [learnings] the cumulative token
      learnings (Definition 1.4) since the run began.

    A [Progress] event with [round = 0] reports the initial progress
    before any communication.  [Phase] marks a named algorithm phase
    boundary (e.g. Algorithm 2's random-walk → multi-source hand-off);
    [Run_end] closes the run with its headline totals.

    [Fault] records one fault-layer action (emitted only when a fault
    plan is active): [kind] is ["drop"], ["dup"], ["delay"], ["crash"],
    ["restart"], or ["retransmit"].  For message faults [node] is the
    sender, [dst] the receiver, and [cls] the message class; for node
    faults [node] is the affected node and [dst]/[cls] are absent.
    Summing [drop]-kind events gives the fault ledger's drop count.

    Node ids are plain ints (they are [Dynet.Node_id.t] densely
    numbered [0..n-1]); message classes are their
    [Engine.Msg_class.to_string] names.  Both are kept as primitives so
    this library sits below the engine in the dependency order. *)

type event =
  | Round_start of { round : int }
  | Send of { round : int; src : int; dst : int option; cls : string }
  | Graph_change of { round : int; added : int; removed : int }
  | Progress of { round : int; progress : int; learnings : int }
  | Phase of { name : string; round : int }
  | Fault of {
      round : int;
      kind : string;
      node : int;
      dst : int option;
      cls : string option;
    }
  | Run_end of { rounds : int; completed : bool; messages : int }
  | Diag of { level : string; msg : string }
      (** Out-of-band diagnostics (usage errors, abort notices) routed
          through {!Console} so they land in the machine-readable
          stream alongside the run they interrupted. *)

val to_json : event -> Json.t
(** One flat object per event, discriminated by an ["ev"] field; [Send]
    omits ["dst"] for broadcasts.  This is the JSONL schema documented
    in README.md. *)

val pp : Format.formatter -> event -> unit
(** Debug rendering (the JSON line). *)
