(** Pluggable destinations for {!Trace} events.

    The engines take a sink as an optional parameter defaulting to
    {!null}; hot paths hoist one {!is_null} check out of their loops,
    so with the default sink no event is ever allocated and tracing
    costs nothing.

    {2 Durability of Jsonl sinks}

    A {!Jsonl} sink (built with the {!jsonl} smart constructor)
    guarantees {e line-atomic} output: lines are buffered whole and
    written to the channel in line-aligned chunks, each followed by an
    immediate channel flush.  The stdlib channel buffer never holds a
    partial line between emissions, so a run killed mid-trace loses
    at most the lines still pending in the sink — every line already
    on disk parses.  The first {!jsonl} call installs an [at_exit]
    hook draining all still-open streams, so normal exits (including
    uncaught exceptions reaching the top level) lose nothing even
    without an explicit {!close}. *)

type stream
(** The buffered state behind a {!Jsonl} sink; build one with
    {!jsonl}. *)

type t =
  | Null  (** Discard everything (the default). *)
  | Memory of Trace.event list ref
      (** Accumulate in memory (most recent first; see {!events}). *)
  | Jsonl of stream
      (** One NDJSON line per event, buffered line-atomically (see
          above).  The underlying channel is the caller's to open and
          close; call {!close} (or at least {!flush}) before
          [close_out]. *)
  | Multi of t list  (** Fan out to several sinks in order. *)
  | Custom of (Trace.event -> unit)  (** Arbitrary callback. *)

val null : t
(** {!Null}. *)

val memory : unit -> t
(** A fresh {!Memory} sink. *)

val jsonl : out_channel -> t
(** A fresh {!Jsonl} sink over a channel the caller opened (and will
    close after {!close}).  Registers the stream with the at-exit
    drain hook. *)

val is_null : t -> bool
(** True only for {!Null} (a [Multi []] is not considered null: the
    caller asked for fan-out, however pointless). *)

val emit : t -> Trace.event -> unit

val events : t -> Trace.event list
(** The events a {!Memory} sink received, in emission order.
    @raise Invalid_argument on any other sink. *)

val flush : t -> unit
(** Write any buffered lines and flush the underlying channel
    ({!Jsonl}, recursively through {!Multi}); no-op elsewhere. *)

val close : t -> unit
(** {!flush}, then deregister the stream from the at-exit hook.  Does
    {e not} close the underlying channel (it is the caller's).  Safe
    to call more than once. *)
