(** Pluggable destinations for {!Trace} events.

    The engines take a sink as an optional parameter defaulting to
    {!null}; hot paths hoist one {!is_null} check out of their loops,
    so with the default sink no event is ever allocated and tracing
    costs nothing. *)

type t =
  | Null  (** Discard everything (the default). *)
  | Memory of Trace.event list ref
      (** Accumulate in memory (most recent first; see {!events}). *)
  | Jsonl of out_channel
      (** One NDJSON line per event, written immediately (the channel
          is the caller's to open, flush, and close). *)
  | Multi of t list  (** Fan out to several sinks in order. *)
  | Custom of (Trace.event -> unit)  (** Arbitrary callback. *)

val null : t
(** {!Null}. *)

val memory : unit -> t
(** A fresh {!Memory} sink. *)

val is_null : t -> bool
(** True only for {!Null} (a [Multi []] is not considered null: the
    caller asked for fan-out, however pointless). *)

val emit : t -> Trace.event -> unit

val events : t -> Trace.event list
(** The events a {!Memory} sink received, in emission order.
    @raise Invalid_argument on any other sink. *)

val flush : t -> unit
(** Flush any buffered output ({!Jsonl} channels, recursively through
    {!Multi}); no-op elsewhere. *)
