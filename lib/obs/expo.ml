(* Prometheus text exposition (format version 0.0.4) for a Metrics
   registry.

   Counters gain the conventional [_total] suffix; histograms are
   rendered as summaries (quantile series plus [_sum]/[_count]) since
   the registry keeps raw samples, not fixed buckets.  Metric names
   are sanitized to the Prometheus grammar (letters, digits,
   underscore, colon; no leading digit) by mapping every other byte to
   an underscore. *)

let sanitize name =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  let s =
    String.mapi
      (fun i c -> if (if i = 0 then ok_first c else ok c) then c else '_')
      name
  in
  if String.equal s "" then "_" else s

let number v =
  if Float.is_nan v then "NaN"
  else if Float.equal v Float.infinity then "+Inf"
  else if Float.equal v Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_buffer ?(namespace = "") buf m =
  let prefix =
    if String.equal namespace "" then "" else sanitize namespace ^ "_"
  in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      let p = prefix ^ sanitize name ^ "_total" in
      line "# TYPE %s counter\n" p;
      line "%s %d\n" p v)
    (Metrics.counters_list m);
  List.iter
    (fun (name, v) ->
      let p = prefix ^ sanitize name in
      line "# TYPE %s gauge\n" p;
      line "%s %s\n" p (number v))
    (Metrics.gauges_list m);
  List.iter
    (fun name ->
      match Metrics.summary m name with
      | None -> ()
      | Some s ->
          let p = prefix ^ sanitize name in
          line "# TYPE %s summary\n" p;
          line "%s{quantile=\"0.5\"} %s\n" p (number s.Metrics.p50);
          line "%s{quantile=\"0.95\"} %s\n" p (number s.Metrics.p95);
          line "%s{quantile=\"0.99\"} %s\n" p (number s.Metrics.p99);
          line "%s_sum %s\n" p (number s.Metrics.sum);
          line "%s_count %d\n" p s.Metrics.count)
    (Metrics.histogram_names m)

let to_string ?namespace m =
  let buf = Buffer.create 1024 in
  to_buffer ?namespace buf m;
  Buffer.contents buf

let write ?namespace oc m =
  output_string oc (to_string ?namespace m)

let http_response ?namespace m =
  let body = to_string ?namespace m in
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body
