type rule =
  | Stateless of (int -> Dynet.Graph.t)
  | Markov of (unit -> Dynet.Graph.t) * (int -> Dynet.Graph.t -> Dynet.Graph.t)

type t = {
  n : int;
  rule : rule;
  mutable cache : Dynet.Graph.t array;
  mutable filled : int;
}

let n t = t.n

let ensure_capacity t r =
  let cap = Array.length t.cache in
  if r > cap then begin
    let fresh = Array.make (max r (max 16 (2 * cap))) (Dynet.Graph.empty ~n:t.n) in
    Array.blit t.cache 0 fresh 0 t.filled;
    t.cache <- fresh
  end

let get t r =
  if r < 1 then invalid_arg "Schedule.get: rounds are 1-based";
  ensure_capacity t r;
  while t.filled < r do
    let next = t.filled + 1 in
    let g =
      match t.rule with
      | Stateless f -> f next
      | Markov (init, step) ->
          if next = 1 then init () else step next t.cache.(next - 2)
    in
    t.cache.(next - 1) <- g;
    t.filled <- next
  done;
  t.cache.(r - 1)

let of_fun ~n f = { n; rule = Stateless f; cache = [||]; filled = 0 }

let iterate ~n ~init step =
  { n; rule = Markov (init, step); cache = [||]; filled = 0 }

let stabilized ~sigma base =
  let holder = Dynet.Stability.create ~sigma ~n:base.n in
  (* The stability transform is sequential; driving it from a Markov
     rule guarantees rounds are produced in order exactly once. *)
  iterate ~n:base.n
    ~init:(fun () -> Dynet.Stability.step holder (get base 1))
    (fun r _prev -> Dynet.Stability.step holder (get base r))

let overlay a b =
  if a.n <> b.n then invalid_arg "Schedule.overlay: node counts differ";
  of_fun ~n:a.n (fun r -> Dynet.Graph.union (get a r) (get b r))

let prefix t x =
  Dynet.Dyn_seq.of_graphs (List.init x (fun i -> get t (i + 1)))

let unicast t ~round ~prev:_ ~states:_ ~traffic:_ = get t round
let broadcast t ~round ~prev:_ ~states:_ ~intents:_ = get t round
