(** A weakly adaptive broadcast adversary (footnote 4 of the paper).

    A {e weakly} adaptive adversary knows the algorithm's random
    choices only up to the {e previous} round: here, it observes who
    broadcast in round [r-1] (and what they sent) but must commit to
    round [r]'s graph before seeing round [r]'s choices.  This sits
    strictly between the oblivious adversary (sees nothing) and the
    strongly adaptive one of Section 2 (sees the current round's
    broadcasts before wiring the graph); the E14 bench measures the
    progress each level of adaptivity allows.

    Strategy ({e silent-hub isolation}): wire a star whose hub is a
    node that stayed silent last round (hoping it stays silent, so its
    position at the center wastes nothing), making every recent
    broadcaster a leaf — a leaf's next broadcast reaches one node
    instead of a neighborhood.  Ties are broken randomly from the
    adversary's own seed. *)

val make :
  seed:int -> n:int -> ('state, 'msg) Engine.Runner_broadcast.adversary
(** The returned closure is stateful (it remembers the previous
    round's broadcasters) but never reads the current round's
    [intents] or [states] — the definition of weak adaptivity.
    @raise Invalid_argument if [n < 2]. *)
