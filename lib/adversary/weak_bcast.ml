open Dynet

let make ~seed ~n =
  if n < 2 then invalid_arg "Weak_bcast.make: n must be >= 2";
  let rng = Rng.make ~seed in
  (* Who broadcast in the round before the one being built. *)
  let previous_broadcasters = ref [||] in
  fun ~round:_ ~prev:_ ~states:_ ~intents ->
    let spoke = !previous_broadcasters in
    (* Commit to this round's graph using last round's observations
       only. *)
    let silent =
      List.filter
        (fun v -> v < Array.length spoke && not spoke.(v))
        (List.init n (fun v -> v))
    in
    let hub =
      match silent with
      | [] -> Rng.int rng n
      | candidates -> Rng.pick rng (Array.of_list candidates)
    in
    let edges = ref Edge_set.empty in
    for v = 0 to n - 1 do
      if v <> hub then edges := Edge_set.add_pair hub v !edges
    done;
    (* Only now record the current round's broadcasters, for next
       time: this is the one-round information lag of weak
       adaptivity. *)
    previous_broadcasters := Array.map Option.is_some intents;
    Graph.make ~n !edges
