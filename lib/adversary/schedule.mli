(** Pre-committed (oblivious) dynamic-graph schedules.

    An oblivious adversary (Section 1.3) must commit to the whole
    sequence of round graphs before the execution starts.  A schedule
    is such a commitment: round [r]'s graph is a pure function of the
    schedule's seed and [r], never of the algorithm's behaviour.
    Graphs are generated on demand and memoized, so a schedule behaves
    exactly like a pre-committed infinite sequence while only paying
    for the rounds actually executed.

    Use {!Oblivious} for the concrete schedule families and
    {!unicast}/{!broadcast} to plug a schedule into an engine. *)

type t

val n : t -> int

val get : t -> int -> Dynet.Graph.t
(** [get t r] is the committed graph of round [r] (1-based).  Repeated
    calls return the identical graph.
    @raise Invalid_argument if [r < 1]. *)

val of_fun : n:int -> (int -> Dynet.Graph.t) -> t
(** Stateless rule: round [r]'s graph depends on [r] only.  The rule is
    called at most once per round (results are memoized). *)

val iterate :
  n:int -> init:(unit -> Dynet.Graph.t) -> (int -> Dynet.Graph.t -> Dynet.Graph.t) -> t
(** Markovian rule: round 1 is [init ()], round [r > 1] is
    [rule r g_{r-1}].  Each is computed once, in order, memoized. *)

val stabilized : sigma:int -> t -> t
(** σ-edge-stable view of a schedule (young edges held down, see
    {!Dynet.Stability}); still oblivious since the transformation
    depends only on the underlying committed sequence. *)

val overlay : t -> t -> t
(** Edge-union of two committed schedules, round by round: e.g. a
    static backbone overlaid with a churning extra-edge family.  Still
    oblivious (both inputs are committed).
    @raise Invalid_argument if node counts differ. *)

val prefix : t -> int -> Dynet.Dyn_seq.t
(** The first [x] rounds as a recorded sequence (for offline checks:
    connectivity, TC, σ-stability). *)

val unicast : t -> 'state Engine.Runner_unicast.adversary
(** Adapter ignoring all observed state, as obliviousness demands. *)

val broadcast : t -> ('state, 'msg) Engine.Runner_broadcast.adversary
