open Dynet

let adversary ~seed ~n ~cut_prob =
  if n < 1 then invalid_arg "Request_cutter.adversary: n must be >= 1";
  if cut_prob < 0. || cut_prob > 1. then
    invalid_arg "Request_cutter.adversary: cut_prob must be in [0, 1]";
  let rng = Rng.make ~seed in
  fun ~round ~prev ~states:_ ~traffic ->
    if round = 1 then Graph_gen.random_tree rng ~n
    else begin
      let requested =
        List.fold_left
          (fun acc (src, dst, cls) ->
            match cls with
            | Engine.Msg_class.Request -> Edge_set.add_pair src dst acc
            | Engine.Msg_class.Token | Engine.Msg_class.Completeness
            | Engine.Msg_class.Walk | Engine.Msg_class.Center
            | Engine.Msg_class.Control ->
                acc)
          Edge_set.empty traffic
      in
      let cut = Edge_set.filter (fun _ -> Rng.bernoulli rng cut_prob) requested in
      let surviving = Edge_set.diff (Graph.edges prev) cut in
      let g = Graph.make ~n surviving in
      if Graph.is_connected g then g
      else begin
        (* Reconnect by chaining a random member of each component;
           every added edge is a fresh topological change the ledger
           charges to the adversary. *)
        let uf = Graph.components g in
        let comps = Union_find.components uf in
        let pick_member members =
          let arr = Array.of_list members in
          Rng.pick rng arr
        in
        match comps with
        | [] | [ _ ] -> g
        | first :: rest ->
            let edges =
              fst
                (List.fold_left
                   (fun (acc, prev_rep) comp ->
                     let rep = pick_member comp in
                     (Edge_set.add_pair prev_rep rep acc, rep))
                   (surviving, pick_member first)
                   rest)
            in
            Graph.make ~n edges
      end
    end
