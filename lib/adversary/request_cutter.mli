(** An adaptive unicast adversary that attacks the request/response
    pattern of the Single/Multi-Source algorithms (Section 3.1).

    Theorem 3.1 charges each "wasted" token request — one whose edge
    disappears before the response can cross it — to the adversary's
    own topological changes.  This adversary realizes the worst case:
    it watches the wire, and every edge that carried a
    {!Engine.Msg_class.Request} in the previous round is deleted with
    probability [cut_prob] before the response round; connectivity is
    then patched with fresh random edges (each insertion paying into
    [TC]).

    With [cut_prob = 1] dissemination never completes (the adversary
    pays unbounded [TC] and the run hits its round cap — which is fine:
    the theorem bounds messages {e as a function of} [TC], not time);
    with [cut_prob < 1] runs complete and the measured message total
    minus [TC] stays within the [O(n² + nk)] budget.  Both regimes are
    exercised by the tests and benches. *)

val adversary :
  seed:int -> n:int -> cut_prob:float -> 's Engine.Runner_unicast.adversary
(** @raise Invalid_argument if [n < 1] or [cut_prob ∉ [0, 1]]. *)
