(** Concrete oblivious-adversary families.

    Each constructor commits to a whole topology sequence from a seed.
    Every produced round graph is connected; families differ in how
    much churn (topological change, [TC]) they generate per round —
    from zero ([static]) to Θ(n) per round ([tree_rotator]) — which is
    the control variable of the adversary-competitive experiments.

    The oblivious model is exactly what Theorem 3.8 assumes for
    Algorithm 2; it also subsumes benign environments (e.g. P2P churn)
    for the deterministic algorithms. *)

val static : Dynet.Graph.t -> Schedule.t
(** The same connected graph every round ([TC] = initial edge count).
    @raise Invalid_argument if the graph is disconnected. *)

val fresh_random : seed:int -> n:int -> p:float -> Schedule.t
(** An independent connected [G(n, p)]-plus-tree graph every round:
    heavy churn, no structure persists. *)

val tree_rotator : seed:int -> n:int -> Schedule.t
(** A fresh uniform-ish random spanning tree every round: sparse
    (exactly [n-1] edges) and maximal churn relative to size — the
    harshest benign environment for the request/response protocols. *)

val rewiring : seed:int -> n:int -> extra:int -> rate:float -> Schedule.t
(** A fixed random spanning tree backbone plus [extra] non-tree edges;
    every round, each non-tree edge is independently re-drawn with
    probability [rate].  [rate = 0] is static; [rate = 1] re-draws all
    extras every round.  Churn per round ≈ [rate·extra]. *)

val edge_markovian : seed:int -> n:int -> p_up:float -> p_down:float -> Schedule.t
(** The classic edge-Markovian evolving graph: each absent edge appears
    with probability [p_up], each present edge disappears with
    probability [p_down], independently per round; a random spanning
    tree is overlaid whenever the sample is disconnected (connectivity
    patch-up). *)

val churn_bursts :
  seed:int -> n:int -> period:int -> quiet:Dynet.Graph.t -> Schedule.t
(** [quiet] topology on most rounds, with a completely fresh random
    tree every [period]-th round: models epochal reconfiguration.
    @raise Invalid_argument if [period < 1] or [quiet] is
    disconnected. *)

val all_named : n:int -> seed:int -> (string * Schedule.t) list
(** A representative instance of every family under a stable name, for
    table-driven tests and sweeps. *)
