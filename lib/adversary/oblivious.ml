open Dynet

let require_connected name g =
  if not (Graph.is_connected g) then
    invalid_arg (name ^ ": graph must be connected")

let static g =
  require_connected "Oblivious.static" g;
  Schedule.of_fun ~n:(Graph.n g) (fun _ -> g)

(* Per-round derived rng: independent of how many random bits other
   rounds consume, so the commitment is honest. *)
let round_rng ~seed r = Rng.make ~seed:(seed + (1000003 * r))

let fresh_random ~seed ~n ~p =
  Schedule.of_fun ~n (fun r -> Graph_gen.random_connected (round_rng ~seed r) ~n ~p)

let tree_rotator ~seed ~n =
  Schedule.of_fun ~n (fun r -> Graph_gen.random_tree (round_rng ~seed r) ~n)

let random_non_tree_edge rng ~n tree_edges =
  if n < 3 then None
  else begin
    let rec try_draw attempts =
      if attempts = 0 then None
      else
        let u = Rng.int rng n and v = Rng.int rng n in
        if u = v then try_draw (attempts - 1)
        else
          let e = Edge.make u v in
          if Edge_set.mem e tree_edges then try_draw (attempts - 1) else Some e
    in
    try_draw 32
  end

let rewiring ~seed ~n ~extra ~rate =
  let base_rng = Rng.make ~seed in
  let tree = Graph_gen.random_tree base_rng ~n in
  let tree_edges = Graph.edges tree in
  let draw_extras rng count =
    let rec loop acc remaining =
      if remaining = 0 then acc
      else
        match random_non_tree_edge rng ~n tree_edges with
        | None -> acc
        | Some e -> loop (Edge_set.add e acc) (remaining - 1)
    in
    loop Edge_set.empty count
  in
  let initial = draw_extras (Rng.split base_rng) extra in
  Schedule.iterate ~n
    ~init:(fun () -> Graph.make ~n (Edge_set.union tree_edges initial))
    (fun r prev ->
      let rng = round_rng ~seed:(seed lxor 0x5bd1) r in
      let kept =
        Edge_set.filter
          (fun _ -> not (Rng.bernoulli rng rate))
          (Edge_set.diff (Graph.edges prev) tree_edges)
      in
      let missing = extra - Edge_set.cardinal kept in
      let fresh = draw_extras rng (max 0 missing) in
      Graph.make ~n (Edge_set.union tree_edges (Edge_set.union kept fresh)))

let patch_connected rng ~n edges =
  let g = Graph.make ~n edges in
  if Graph.is_connected g then g
  else
    let tree = Graph_gen.random_tree rng ~n in
    Graph.union g tree

let edge_markovian ~seed ~n ~p_up ~p_down =
  Schedule.iterate ~n
    ~init:(fun () -> Graph_gen.random_tree (Rng.make ~seed) ~n)
    (fun r prev ->
      let rng = round_rng ~seed:(seed lxor 0x193a) r in
      let prev_edges = Graph.edges prev in
      let edges = ref Edge_set.empty in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let present = Edge_set.mem_pair u v prev_edges in
          let next =
            if present then not (Rng.bernoulli rng p_down)
            else Rng.bernoulli rng p_up
          in
          if next then edges := Edge_set.add_pair u v !edges
        done
      done;
      patch_connected rng ~n !edges)

let churn_bursts ~seed ~n ~period ~quiet =
  if period < 1 then invalid_arg "Oblivious.churn_bursts: period must be >= 1";
  require_connected "Oblivious.churn_bursts" quiet;
  if Graph.n quiet <> n then
    invalid_arg "Oblivious.churn_bursts: quiet graph has wrong node count";
  Schedule.of_fun ~n (fun r ->
      if r mod period = 0 then Graph_gen.random_tree (round_rng ~seed r) ~n
      else quiet)

let all_named ~n ~seed =
  [
    ("static-random", static (Graph_gen.random_connected (Rng.make ~seed) ~n ~p:0.1));
    ("static-cycle", static (Graph_gen.cycle ~n));
    ("fresh-random", fresh_random ~seed ~n ~p:0.05);
    ("tree-rotator", tree_rotator ~seed ~n);
    ("rewiring", rewiring ~seed ~n ~extra:n ~rate:0.2);
    ( "edge-markovian",
      edge_markovian ~seed ~n ~p_up:(2. /. float_of_int n) ~p_down:0.3 );
    ( "churn-bursts",
      churn_bursts ~seed ~n ~period:8 ~quiet:(Graph_gen.cycle ~n) );
  ]
