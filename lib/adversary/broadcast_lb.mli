(** The strongly adaptive lower-bound adversary of Section 2.

    This is an executable version of the adversary used to prove
    Theorem 2.3 (the Ω(n²/log²n) amortized-broadcast lower bound).  At
    creation it samples, for every node [v], a set [K'_v] containing
    each of the [k] tokens independently with probability 1/4 (the
    probabilistic-method choice of Lemmas 2.1/2.2).  Then, every round,
    {e after} seeing each node's announced broadcast [i_v(r)] and
    current knowledge [K_v(r-1)] — precisely the power of a strongly
    adaptive adversary — it:

    + computes the {e free} edges: [{u, v}] is free iff
      [i_u(r) ∈ {⊥} ∪ K_v(r-1) ∪ K'_v] and symmetrically, i.e. no
      communication over the edge advances the potential
      [Φ(t) = Σ_v |K_v(t) ∪ K'_v|];
    + emits a spanning forest of the free-edge graph [F(r)] (fewer
      edges than "all free edges", equally free);
    + connects the [ℓ] remaining components with [ℓ - 1] non-free
      edges, the minimum connectivity requires — each adds at most 2 to
      the potential.

    Silent nodes are pairwise free (Lemma 2.2's [B̄] clique), so rounds
    with few broadcasters make no progress at all, which is what forces
    every algorithm to spend Ω(n/log n) broadcasts per productive round.

    Tokens are plain integers [0 .. k-1] here so this module stays
    independent of any particular protocol's state type; the gossip
    layer adapts its states via {!to_engine}. *)

type t

val create : rng:Dynet.Rng.t -> n:int -> k:int -> t
(** Samples the [K'_v] sets.
    @raise Invalid_argument if [n < 1] or [k < 1]. *)

val n : t -> int
val k : t -> int

val in_k_prime : t -> Dynet.Node_id.t -> int -> bool
(** Whether token [i] was sampled into [K'_v]. *)

val k_prime_size : t -> int
(** [Σ_v |K'_v|]; the proof needs this ≤ 0.3nk (holds with probability
    exponentially close to 1). *)

type view = {
  knows : Dynet.Node_id.t -> int -> bool;
      (** Membership in [K_v(r-1)]: the node's knowledge {e before}
          this round's delivery. *)
  chosen : int option array;
      (** [i_v(r)]: the token each node announced it will broadcast
          this round; [None] = silent ([⊥]). *)
}

val next_graph : t -> view -> Dynet.Graph.t
(** The adversary's round graph (always connected).  Also appends one
    entry to {!history}. *)

val history : t -> (int * int) list
(** Per adversary-driven round, oldest first:
    [(broadcasting nodes, components of F(r) after adding free edges)].
    Lemma 2.2 predicts component count 1 whenever broadcasters
    ≤ n/(c·log n); Lemma 2.1 predicts O(log n) always. *)

val phi : t -> knows:(Dynet.Node_id.t -> int -> bool) -> int
(** Current potential [Φ = Σ_v |K_v ∪ K'_v|].  Dissemination is solved
    only when [Φ = n·k]; the adversary caps its growth at
    [O(log n)] per round. *)

val to_engine :
  t ->
  knows:('state -> int -> bool) ->
  token_of:('msg -> int option) ->
  ('state, 'msg) Engine.Runner_broadcast.adversary
(** Adapter for {!Engine.Runner_broadcast.run}: [knows] reads a node
    state's token knowledge, [token_of] extracts the token a broadcast
    message carries ([None] for non-token chatter, treated as [⊥] for
    freeness but still counted as a message by the engine). *)
