open Dynet

type t = {
  n : int;
  k : int;
  (* k_prime.(v).(i) = token i ∈ K'_v *)
  k_prime : bool array array;
  mutable history : (int * int) list;  (* newest first *)
}

let create ~rng ~n ~k =
  if n < 1 then invalid_arg "Broadcast_lb.create: n must be >= 1";
  if k < 1 then invalid_arg "Broadcast_lb.create: k must be >= 1";
  let k_prime =
    Array.init n (fun _ -> Array.init k (fun _ -> Rng.bernoulli rng 0.25))
  in
  { n; k; k_prime; history = [] }

let n t = t.n
let k t = t.k
let in_k_prime t v i = t.k_prime.(v).(i)

let k_prime_size t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 t.k_prime

type view = {
  knows : Node_id.t -> int -> bool;
  chosen : int option array;
}

(* Token i is "covered" at v if learning it would not grow |K_v ∪ K'_v|. *)
let covered t view v i = t.k_prime.(v).(i) || view.knows v i

(* Edge {u,v} is free iff each endpoint's broadcast (if any) is covered
   at the other endpoint. *)
let free t view u v =
  let one_way a b =
    match view.chosen.(a) with None -> true | Some i -> covered t view b i
  in
  one_way u v && one_way v u

let next_graph t view =
  if Array.length view.chosen <> t.n then
    invalid_arg "Broadcast_lb.next_graph: view has wrong node count";
  let uf = Union_find.create t.n in
  let forest = ref Edge_set.empty in
  let connect u v =
    if Union_find.union uf u v then forest := Edge_set.add_pair u v !forest
  in
  (* Silent nodes form a free clique (Lemma 2.2's B̄): a spanning star
     on them suffices. *)
  let silent_hub = ref (-1) in
  let broadcasters = ref [] in
  for v = 0 to t.n - 1 do
    match view.chosen.(v) with
    | None ->
        if !silent_hub < 0 then silent_hub := v else connect !silent_hub v
    | Some _ -> broadcasters := v :: !broadcasters
  done;
  (* Free edges incident to a broadcaster: O(|B|·n) freeness checks. *)
  List.iter
    (fun u ->
      for v = 0 to t.n - 1 do
        if v <> u && not (Union_find.same uf u v) then
          if free t view u v then connect u v
      done)
    !broadcasters;
  let free_components = Union_find.count uf in
  (* Connect the remaining components with the minimum number of
     (non-free) edges: each adds at most 2 token learnings. *)
  let edges =
    match Union_find.representatives uf with
    | [] | [ _ ] -> !forest
    | first :: rest ->
        fst
          (List.fold_left
             (fun (acc, prev) rep -> (Edge_set.add_pair prev rep acc, rep))
             (!forest, first) rest)
  in
  t.history <- (List.length !broadcasters, free_components) :: t.history;
  Graph.make ~n:t.n edges

let history t = List.rev t.history

let phi t ~knows =
  let total = ref 0 in
  for v = 0 to t.n - 1 do
    for i = 0 to t.k - 1 do
      if t.k_prime.(v).(i) || knows v i then incr total
    done
  done;
  !total

let to_engine t ~knows ~token_of ~round:_ ~prev:_ ~states ~intents =
  let view =
    {
      knows = (fun v i -> knows states.(v) i);
      chosen = Array.map (fun m -> Option.bind m token_of) intents;
    }
  in
  next_graph t view
