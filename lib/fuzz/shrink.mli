(** Greedy counterexample minimization.

    Given a failing case and the predicate that makes it fail (for the
    fuzzer: "the two engines still diverge"), [minimize] walks
    structurally smaller candidates and keeps each one that still
    fails, in the order rounds (shortest failing schedule prefix) →
    round cap (halving) → nodes (remove-and-remap, reconnecting any
    round the removal cut) → tokens → edges (single removals that
    keep rounds connected) → faults (drop the plan, then zero each
    field).  The pass cycle repeats to a fixpoint or until [budget]
    predicate evaluations have been spent.

    Every candidate preserves the case invariants — connected rounds,
    [n >= 2], [1 <= s <= min n k] — so the minimum is always a valid,
    replayable case; determinism follows from the predicate's (both
    engines are deterministic functions of the case). *)

type stats = { evaluated : int; accepted : int }

val minimize :
  ?budget:int -> fails:(Case.t -> bool) -> Case.t -> Case.t * stats
(** [budget] defaults to 400 evaluations — generated cases sit well
    under 10 nodes and 12 rounds, where the fixpoint is reached in a
    few dozen. *)
