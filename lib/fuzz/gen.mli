(** Seed-deterministic case generation.

    [case ~seed ~id] is a pure function of its two arguments: the
    campaign seed and the case index map through {!case_seed} to a
    private RNG stream, so a campaign is reproducible case-by-case —
    re-running index 17 alone yields the same case as running the full
    batch, and the shrinker can re-execute a case without touching any
    generator state.

    Generated cases keep every round graph connected (the model's
    standing assumption, checked by {!Case.connected}): base
    topologies come from {!Dynet.Graph_gen}'s connected families and
    local churn only removes edges whose loss keeps the graph
    connected.  Schedules mix stability (hold), churn bursts
    (wholesale redraw — including barbell near-partitions and clique
    heals), and local edge churn.  Fault plans appear on roughly a
    third of cases with rates drawn in hundredths, so specs survive
    the JSON round-trip bit-for-bit. *)

val case_seed : seed:int -> id:int -> int
(** The derived per-case seed (non-negative; spacing [1_000_003]). *)

val case : seed:int -> id:int -> Case.t
(** The [id]-th case of campaign [seed]: [2 <= n <= 10],
    [1 <= k <= 6], algorithm uniform over the three differential
    algorithms, [1 <= s <= min n k] for multi-source, 1–12 round
    graphs, round cap 8–127. *)

val engine_pair :
  seed:int ->
  id:int ->
  (module Engine.Engine_sig.ENGINE) * (module Engine.Engine_sig.ENGINE)
(** The differential pairing for the [id]-th case, drawn from a salted
    stream of the same per-case seed (so the pairing dimension never
    shifts case inputs): [Reference]-vs-[Default] on a quarter of
    draws, [Soa]-vs-[Default] at shard counts 1, 2 and 4 on the rest.
    Campaigns that pass no explicit engines use this, making every
    fuzz run a three-engine differential. *)
