open Dynet.Ops

(* Greedy minimization: each pass proposes structurally smaller
   candidates and keeps the first one the predicate still fails;
   passes run rounds -> cap -> nodes -> tokens -> edges -> faults and
   the whole cycle repeats until a fixpoint (or the evaluation budget
   runs out).  Every candidate preserves the generator's invariants —
   round graphs stay connected, [n >= 2], [1 <= s <= min n k] — so a
   shrunk counterexample is always a valid, replayable case. *)

type stats = { evaluated : int; accepted : int }

let clamp_s c =
  { c with Case.s = max 1 (min c.Case.s (min c.Case.n c.Case.k)) }

(* {2 Candidate transformations} *)

let take l len =
  let rec go acc i = function
    | [] -> List.rev acc
    | _ when i >= len -> List.rev acc
    | x :: tl -> go (x :: acc) (i + 1) tl
  in
  go [] 0 l

(* Remove node [v], remap ids above it down by one, and patch any
   round the removal disconnected back to connectivity. *)
let drop_node (c : Case.t) v =
  if c.Case.n <= 2 then None
  else
    let n' = c.Case.n - 1 in
    let remap u = if u > v then u - 1 else u in
    let rounds =
      List.map
        (fun g ->
          let kept =
            List.filter_map
              (fun e ->
                let a, b = Dynet.Edge.endpoints e in
                if a = v || b = v then None
                else Some (Dynet.Edge.make (remap a) (remap b)))
              (Dynet.Edge_set.to_list (Dynet.Graph.edges g))
          in
          let g' = Dynet.Graph.make ~n:n' (Dynet.Edge_set.of_list kept) in
          if Dynet.Graph.is_connected g' then g'
          else
            Dynet.Graph.make ~n:n'
              (Dynet.Edge_set.union (Dynet.Graph.edges g')
                 (Dynet.Graph.connect_components g')))
        c.Case.rounds
    in
    Some (clamp_s { c with Case.n = n'; rounds })

let drop_token (c : Case.t) =
  if c.Case.k <= 1 then None
  else Some (clamp_s { c with Case.k = c.Case.k - 1 })

(* Every single-edge removal that keeps its round connected. *)
let edge_candidates (c : Case.t) =
  List.concat
    (List.mapi
       (fun i g ->
         List.filter_map
           (fun e ->
             let g' =
               Dynet.Graph.make ~n:c.Case.n
                 (Dynet.Edge_set.remove e (Dynet.Graph.edges g))
             in
             if Dynet.Graph.is_connected g' then
               Some
                 {
                   c with
                   Case.rounds =
                     List.mapi
                       (fun j gj -> if j = i then g' else gj)
                       c.Case.rounds;
                 }
             else None)
           (Dynet.Edge_set.to_list (Dynet.Graph.edges g)))
       c.Case.rounds)

let fault_candidates (c : Case.t) =
  match c.Case.faults with
  | None -> []
  | Some f ->
      let with_f f' = { c with Case.faults = Some f' } in
      { c with Case.faults = None }
      :: List.filter_map
           (fun x -> x)
           [
             (if f.Scenario.Spec.loss > 0. then
                Some (with_f { f with Scenario.Spec.loss = 0. })
              else None);
             (if f.Scenario.Spec.dup > 0. then
                Some (with_f { f with Scenario.Spec.dup = 0. })
              else None);
             (if f.Scenario.Spec.crash > 0. then
                Some (with_f { f with Scenario.Spec.crash = 0. })
              else None);
             (if f.Scenario.Spec.max_delay > 0 then
                Some (with_f { f with Scenario.Spec.max_delay = 0 })
              else None);
           ]

(* {2 The greedy loop} *)

let minimize ?(budget = 400) ~fails case =
  let evaluated = ref 0 in
  let accepted = ref 0 in
  let try_candidate cand =
    if !evaluated >= budget then None
    else begin
      incr evaluated;
      if fails cand then begin
        incr accepted;
        Some cand
      end
      else None
    end
  in
  let first_failing cands =
    let rec go = function
      | [] -> None
      | cand :: rest -> (
          match try_candidate cand with
          | Some c -> Some c
          | None -> go rest)
    in
    go cands
  in
  (* Rounds: the shortest failing prefix (smallest first, so one
     accepted candidate ends the pass at the pass's minimum). *)
  let shrink_rounds (c : Case.t) =
    let len = List.length c.Case.rounds in
    let rec go l =
      if l >= len then c
      else
        match try_candidate { c with Case.rounds = take c.Case.rounds l } with
        | Some c' -> c'
        | None -> go (l + 1)
    in
    go 1
  in
  (* Round cap: repeated halving. *)
  let rec shrink_cap (c : Case.t) =
    match c.Case.max_rounds with
    | None -> c
    | Some m when m <= 1 -> c
    | Some m -> (
        match try_candidate { c with Case.max_rounds = Some (m / 2) } with
        | Some c' -> shrink_cap c'
        | None -> c)
  in
  let rec shrink_nodes (c : Case.t) =
    let rec go v =
      if v < 0 then None
      else
        match drop_node c v with
        | None -> go (v - 1)
        | Some cand -> (
            match try_candidate cand with
            | Some c' -> Some c'
            | None -> go (v - 1))
    in
    match go (c.Case.n - 1) with Some c' -> shrink_nodes c' | None -> c
  in
  let rec shrink_tokens (c : Case.t) =
    match drop_token c with
    | None -> c
    | Some cand -> (
        match try_candidate cand with
        | Some c' -> shrink_tokens c'
        | None -> c)
  in
  let rec shrink_edges (c : Case.t) =
    match first_failing (edge_candidates c) with
    | Some c' -> shrink_edges c'
    | None -> c
  in
  let shrink_faults (c : Case.t) =
    match first_failing (fault_candidates c) with Some c' -> c' | None -> c
  in
  let pass c =
    shrink_faults
      (shrink_edges
         (shrink_tokens (shrink_nodes (shrink_cap (shrink_rounds c)))))
  in
  let rec fix c =
    let before = !accepted in
    let c' = pass c in
    if !accepted = before || !evaluated >= budget then c' else fix c'
  in
  let minimal = fix case in
  (minimal, { evaluated = !evaluated; accepted = !accepted })
