open! Dynet.Ops

(* A standalone copy of the phased-flooding protocol (own state type,
   no code shared with Gossip.Flooding beyond the Payload messages), so
   a seeded bug lives entirely inside this module. *)

type state = {
  k : int;
  phase_len : int;
  catalog : Gossip.Token.t array;
  mask : Dynet.Bitset.t;
  known_count : int;
}

let learn st (tok : Gossip.Token.t) =
  if Dynet.Bitset.mem st.mask tok.uid then st
  else
    {
      st with
      mask = Dynet.Bitset.add tok.uid st.mask;
      known_count = st.known_count + 1;
    }

let init ~instance =
  let n = Gossip.Instance.n instance in
  let k = Gossip.Instance.k instance in
  let phase_len = max 1 n in
  let catalog = Array.make k (Gossip.Token.make ~src:0 ~idx:0 ~uid:0) in
  for v = 0 to n - 1 do
    List.iter
      (fun (tok : Gossip.Token.t) -> catalog.(tok.uid) <- tok)
      (Gossip.Instance.tokens_of instance v)
  done;
  Array.init n (fun v ->
      let st =
        { k; phase_len; catalog; mask = Dynet.Bitset.create k; known_count = 0 }
      in
      List.fold_left learn st (Gossip.Instance.tokens_of instance v))

let all_complete ~k states =
  Array.for_all (fun st -> st.known_count >= k) states

let flooding ~bug : (module Diff.FLOODING) =
  (module struct
    type nonrec state = state

    module P = struct
      type nonrec state = state
      type msg = Gossip.Payload.t

      let classify = Gossip.Payload.classify

      let intent st ~round =
        (* The seeded fault: the buggy phase clock starts at round 0
           instead of round 1, so every phase boundary is crossed one
           round early — the classic off-by-one in token selection. *)
        let phase =
          if bug then round / st.phase_len mod st.k
          else (round - 1) / st.phase_len mod st.k
        in
        if Dynet.Bitset.mem st.mask phase then
          (st, Some (Gossip.Payload.Token_msg st.catalog.(phase)))
        else (st, None)

      let receive st ~round:_ ~inbox =
        List.fold_left
          (fun st (_, msg) ->
            match msg with
            | Gossip.Payload.Token_msg tok -> learn st tok
            | Gossip.Payload.Completeness _ | Gossip.Payload.Request _
            | Gossip.Payload.Walk_msg _ | Gossip.Payload.Center_announce ->
                st)
          st inbox

      let progress st = st.known_count

      (* Deliberately generic: the mutant must exercise the engines'
         ordinary protocol path, not the plane kernel. *)
      let plane = None
    end

    let protocol =
      (module P : Engine.Runner_broadcast.PROTOCOL
        with type state = state
         and type msg = Gossip.Payload.t)

    let init = init
    let all_complete = all_complete
  end : Diff.FLOODING)
