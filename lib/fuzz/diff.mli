(** Running one case through two engines and comparing the outputs.

    The differential property is {e bit identity}: for the same
    {!Case.t}, both engines must produce byte-identical run-report
    JSON (outcome, ledger totals and per-class counts, per-node loads,
    timeline) and byte-identical realized schedules (the [?on_graph]
    round-graph sequence, serialized through {!Scenario.Record}).
    Engine failures are part of the contract too: a typed engine error
    ({!Engine.Engine_error.Protocol_violation},
    [Adversary_violation], {!Check.Check_failed}) must be raised by
    both engines with the same message, or the case is a mismatch.
    Any other exception propagates — it is a harness bug, not a
    divergence. *)

(** What the harness needs from a flooding implementation.  The
    unicast protocols run through the engine-parametric
    {!Gossip.Runners}; flooding is abstracted one step further so
    {!Mutant}'s deliberately broken copies can stand in for the real
    protocol on one side of the comparison. *)
module type FLOODING = sig
  type state

  val protocol :
    (module Engine.Runner_broadcast.PROTOCOL
       with type state = state
        and type msg = Gossip.Payload.t)

  val init : instance:Gossip.Instance.t -> state array
  val all_complete : k:int -> state array -> bool
end

val real_flooding : (module FLOODING)
(** {!Gossip.Flooding} behind the seam (default [phase_len]). *)

type exec = {
  engine : string;  (** The engine's [name]. *)
  report : string;  (** Run-report JSON; [""] when [error] is set. *)
  realized : string;
      (** The realized schedule as [dynspread-trace/v1] text (rounds
          recorded up to the failure point, when [error] is set). *)
  error : string option;
      (** A typed engine failure, tagged and carrying the message. *)
}

val execute :
  engine:(module Engine.Engine_sig.ENGINE) ->
  ?flooding:(module FLOODING) ->
  ?prof:Obs.Span.t ->
  Case.t ->
  exec
(** One run.  Wiring mirrors {!Scenario.Runner} (instance, fault plan,
    {!Scenario.Replay.Loop} schedule, stall window, [n*k] progress
    target); flooding cases call the engine directly through
    [?flooding] (default {!real_flooding}) so a mutant shares every
    line of wiring with the real protocol. *)

val divergence : exec -> exec -> string option
(** [None] iff the two executions agree bit-for-bit: same
    report, same realized schedule, same error (or none).  The
    returned string names which side of the contract broke. *)

val check :
  ?flooding_b:(module FLOODING) ->
  ?prof:Obs.Span.t ->
  engine_a:(module Engine.Engine_sig.ENGINE) ->
  engine_b:(module Engine.Engine_sig.ENGINE) ->
  Case.t ->
  string option
(** Run the case through both engines and compare; [?flooding_b]
    substitutes the flooding implementation on the [b] side only
    (the mutation smoke test's hook). *)
