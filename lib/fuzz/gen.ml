open Dynet.Ops

(* Widely-spaced per-case seeds: cases of one campaign share no RNG
   stream, so dropping a case index (during shrinking, or when
   re-running a subset) never shifts another case's input. *)
let case_seed ~seed ~id = ((seed * 1_000_003) + id) land max_int

(* One connected base topology.  The shapes deliberately cover the
   regimes the engines treat differently: sparse trees (long token
   paths, many rounds), barbells (a single bridge — the near-partition
   regime), cliques (every inbox full), and random graphs between. *)
let base_graph rng ~n =
  match Dynet.Rng.int rng 8 with
  | 0 -> Dynet.Graph_gen.path ~n
  | 1 -> Dynet.Graph_gen.cycle ~n
  | 2 -> Dynet.Graph_gen.star ~n
  | 3 -> if n >= 4 then Dynet.Graph_gen.barbell ~n else Dynet.Graph_gen.path ~n
  | 4 -> Dynet.Graph_gen.random_tree rng ~n
  | 5 -> Dynet.Graph_gen.clique ~n
  | _ ->
      Dynet.Graph_gen.random_connected rng ~n
        ~p:(0.15 +. Dynet.Rng.float rng 0.4)

(* Local churn: drop one edge (if connectivity survives), then try to
   add one absent pair.  Keeps the graph connected by construction. *)
let churn rng g ~n =
  let edges = Dynet.Graph.edges g in
  let g =
    match Dynet.Edge_set.to_list edges with
    | [] -> g
    | l ->
        let e = Dynet.Rng.pick rng (Array.of_list l) in
        let g' = Dynet.Graph.make ~n (Dynet.Edge_set.remove e edges) in
        if Dynet.Graph.is_connected g' then g' else g
  in
  let u = Dynet.Rng.int rng n and v = Dynet.Rng.int rng n in
  if u = v || Dynet.Graph.mem_edge g u v then g
  else Dynet.Graph.make ~n (Dynet.Edge_set.add_pair u v (Dynet.Graph.edges g))

(* A dynamic-adversary program as a round-graph list: each round either
   holds the topology (stability), redraws it wholesale (a churn
   burst / partition-and-heal, when the shapes differ), or churns a
   couple of edges locally. *)
let rounds rng ~n =
  let len = 1 + Dynet.Rng.int rng 12 in
  let cur = ref (base_graph rng ~n) in
  let out = ref [] in
  for _ = 1 to len do
    (match Dynet.Rng.int rng 4 with
    | 0 -> ()
    | 1 -> cur := base_graph rng ~n
    | _ -> cur := churn rng !cur ~n);
    out := !cur :: !out
  done;
  List.rev !out

(* Fault rates are drawn in hundredths so the values survive the
   JSON round-trip of a saved spec bit-for-bit. *)
let pct rng bound = float_of_int (Dynet.Rng.int rng bound) /. 100.

let faults rng : Scenario.Spec.faults option =
  if not (Dynet.Rng.bernoulli rng 0.35) then None
  else
    Some
      {
        Scenario.Spec.loss = pct rng 26;
        dup = pct rng 21;
        crash = (if Dynet.Rng.bool rng then pct rng 9 else 0.);
        restart = float_of_int (25 + Dynet.Rng.int rng 76) /. 100.;
        max_delay = Dynet.Rng.int rng 3;
        fault_seed = None;
      }

(* The differential pairing is a case dimension too: a quarter of the
   corpus runs Reference-vs-Default (the original pseudocode check),
   the rest runs Soa-vs-Default at shard counts 1, 2 and 4 — so every
   campaign exercises the plane kernel, the sharded unicast path, and
   real multi-domain barriers on the same tiny instances.  Drawn from
   a salted stream so adding the dimension shifted no case input. *)
let engine_pair ~seed ~id =
  let rng = Dynet.Rng.make ~seed:(case_seed ~seed ~id lxor 0x50a) in
  match Dynet.Rng.int rng 4 with
  | 0 -> (Engine.Reference.engine, Engine.Default.engine)
  | 1 -> (Engine.Soa.engine (), Engine.Default.engine)
  | 2 -> (Engine.Soa.engine ~shards:2 (), Engine.Default.engine)
  | _ -> (Engine.Soa.engine ~shards:4 (), Engine.Default.engine)

let case ~seed ~id =
  let cseed = case_seed ~seed ~id in
  let rng = Dynet.Rng.make ~seed:cseed in
  let n = 2 + Dynet.Rng.int rng 9 in
  let k = 1 + Dynet.Rng.int rng 6 in
  let algo =
    match Dynet.Rng.int rng 3 with
    | 0 -> Case.Flooding
    | 1 -> Case.Single_source
    | _ -> Case.Multi_source
  in
  let s =
    match algo with
    | Case.Multi_source -> 1 + Dynet.Rng.int rng (min n k)
    | Case.Flooding | Case.Single_source -> 1
  in
  let rounds = rounds rng ~n in
  let faults = faults rng in
  let max_rounds = Some (8 + Dynet.Rng.int rng 120) in
  { Case.id; algo; n; k; s; seed = cseed; max_rounds; faults; rounds }
