open! Dynet.Ops

(* What the differential harness needs from a flooding implementation.
   The real protocol satisfies it ([real_flooding]); [Mutant] provides
   deliberately broken copies for the harness's own smoke test.  The
   single-source and multi-source protocols need no such seam — they
   run through the engine-parametric {!Gossip.Runners}. *)
module type FLOODING = sig
  type state

  val protocol :
    (module Engine.Runner_broadcast.PROTOCOL
       with type state = state
        and type msg = Gossip.Payload.t)

  val init : instance:Gossip.Instance.t -> state array
  val all_complete : k:int -> state array -> bool
end

module Real_flooding = struct
  type state = Gossip.Flooding.state

  let protocol = Gossip.Flooding.protocol
  let init ~instance = Gossip.Flooding.init ~instance ()
  let all_complete = Gossip.Flooding.all_complete
end

let real_flooding = (module Real_flooding : FLOODING)

type exec = {
  engine : string;
  report : string;
  realized : string;
  error : string option;
}

(* Only the engines' own typed failures are caught: a crash of any
   other kind (Invalid_argument, Stack_overflow, …) is a harness or
   generator bug and must propagate, not be folded into a "both sides
   failed identically" pass. *)
let run_caught ~engine_name ~name ~realized f =
  match f () with
  | result ->
      let report =
        Obs.Json.to_string
          (Obs.Report.to_json (Engine.Run_result.to_report ~name result))
      in
      { engine = engine_name; report; realized = realized (); error = None }
  | exception Engine.Engine_error.Protocol_violation m ->
      {
        engine = engine_name;
        report = "";
        realized = realized ();
        error = Some ("protocol-violation: " ^ m);
      }
  | exception Engine.Engine_error.Adversary_violation m ->
      {
        engine = engine_name;
        report = "";
        realized = realized ();
        error = Some ("adversary-violation: " ^ m);
      }
  | exception Check.Check_failed m ->
      {
        engine = engine_name;
        report = "";
        realized = realized ();
        error = Some ("check-failed: " ^ m);
      }

let execute ~engine ?(flooding = real_flooding) ?prof (case : Case.t) =
  let module E = (val engine : Engine.Engine_sig.ENGINE) in
  let n = case.Case.n and k = case.Case.k in
  let instance = Case.instance case in
  let faults = Case.fault_plan case in
  let schedule =
    Scenario.Replay.schedule ~past_end:Scenario.Replay.Loop (Case.to_trace case)
  in
  let recorder = Scenario.Record.create ~n () in
  let on_graph = Scenario.Record.hook recorder in
  let stall_after = Case.stall_after case in
  let realized () =
    Scenario.Trace_io.to_string (Scenario.Record.to_trace recorder)
  in
  run_caught ~engine_name:E.name ~name:(Case.label case) ~realized (fun () ->
      match case.Case.algo with
      | Case.Flooding ->
          (* Direct engine call rather than [Runners.flooding], so the
             real protocol and a mutant share every line of wiring —
             a mutant-only divergence can only come from the protocol
             copy itself. *)
          let (module F : FLOODING) = flooding in
          let max_rounds =
            Option.value case.Case.max_rounds
              ~default:(Gossip.Runners.default_broadcast_cap ~n ~k)
          in
          let result, _ =
            E.Broadcast.run F.protocol ~faults ?prof ~on_graph ~stall_after
              ~target_progress:(n * k)
              ~states:(F.init ~instance)
              ~adversary:(Adversary.Schedule.broadcast schedule)
              ~max_rounds
              ~stop:(F.all_complete ~k)
              ()
          in
          result
      | Case.Single_source ->
          let result, _ =
            Gossip.Runners.single_source ~instance
              ~env:(Gossip.Runners.Oblivious schedule) ~engine
              ?max_rounds:case.Case.max_rounds ~stall_after ~faults ?prof
              ~on_graph ()
          in
          result
      | Case.Multi_source ->
          let result, _ =
            Gossip.Runners.multi_source ~instance
              ~env:(Gossip.Runners.Oblivious schedule) ~engine
              ?max_rounds:case.Case.max_rounds ~stall_after ~faults ?prof
              ~on_graph ()
          in
          result)

let divergence a b =
  match (a.error, b.error) with
  | Some ea, Some eb when not (String.equal ea eb) ->
      Some
        (Printf.sprintf "%s failed with %s; %s failed with %s" a.engine ea
           b.engine eb)
  | Some e, None ->
      Some (Printf.sprintf "%s failed with %s; %s completed" a.engine e
              b.engine)
  | None, Some e ->
      Some (Printf.sprintf "%s completed; %s failed with %s" a.engine
              b.engine e)
  | None, None when not (String.equal a.report b.report) ->
      Some "run reports differ"
  | (Some _ | None), _ ->
      if not (String.equal a.realized b.realized) then
        Some "realized schedules differ"
      else None

let check ?flooding_b ?prof ~engine_a ~engine_b case =
  let a = execute ~engine:engine_a ?prof case in
  let b = execute ~engine:engine_b ?flooding:flooding_b ?prof case in
  divergence a b
