open! Dynet.Ops

type mismatch = {
  case : Case.t;
  shrunk : Case.t;
  detail : string;
  shrink_stats : Shrink.stats;
}

type outcome = { runs : int; mismatches : mismatch list }

let run ?engine_a ?engine_b ?flooding_b ?jobs ?metrics ?prof ?shrink_budget
    ~runs ~seed () =
  let results =
    Analysis.Sweep.map_span ?jobs ?prof ~name:"fuzz"
      (fun ~prof id ->
        let case = Gen.case ~seed ~id in
        (* Pairing per case unless pinned: an explicit engine fixes its
           side and the other defaults to the engine it is checked
           against in the generated pairs. *)
        let engine_a, engine_b =
          match (engine_a, engine_b) with
          | Some a, Some b -> (a, b)
          | Some a, None -> (a, Engine.Default.engine)
          | None, Some b -> (Engine.Reference.engine, b)
          | None, None -> Gen.engine_pair ~seed ~id
        in
        match Diff.check ?flooding_b ~prof ~engine_a ~engine_b case with
        | None -> None
        | Some detail ->
            (* Shrink inside the worker: the predicate re-executes the
               candidate through both engines (unprofiled — hundreds
               of small runs), so minimization of case i overlaps the
               scanning of later cases. *)
            let fails c =
              Option.is_some (Diff.check ?flooding_b ~engine_a ~engine_b c)
            in
            let shrunk, shrink_stats =
              Shrink.minimize ?budget:shrink_budget ~fails case
            in
            Some { case; shrunk; detail; shrink_stats })
      (Array.init runs (fun i -> i))
  in
  let mismatches = List.filter_map (fun x -> x) (Array.to_list results) in
  (* The metrics registry is touched by the calling domain only, after
     the sweep has joined — same discipline as Sweep itself. *)
  (match metrics with
  | None -> ()
  | Some ms ->
      Obs.Metrics.incr ms ~by:runs "fuzz/cases";
      Obs.Metrics.incr ms ~by:(List.length mismatches) "fuzz/mismatches";
      Obs.Metrics.incr ms
        ~by:
          (List.fold_left
             (fun acc m -> acc + m.shrink_stats.Shrink.evaluated)
             0 mismatches)
        "fuzz/shrink_steps");
  { runs; mismatches }

(* {2 Corpus output} *)

let rec mkdir_p dir =
  if
    String.equal dir "" || String.equal dir "." || String.equal dir "/"
    || Sys.file_exists dir
  then ()
  else begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let save_mismatch ~dir m =
  let base = Printf.sprintf "case-%d" m.shrunk.Case.seed in
  let trace_name = base ^ ".trace.jsonl" in
  let spec_name = base ^ ".scenario.json" in
  write_file
    (Filename.concat dir trace_name)
    (Scenario.Trace_io.to_string (Case.to_trace m.shrunk));
  write_file
    (Filename.concat dir spec_name)
    (Obs.Json.to_string
       (Scenario.Spec.to_json (Case.to_spec m.shrunk ~trace_path:trace_name))
    ^ "\n");
  spec_name

let save_corpus ~dir outcome =
  match outcome.mismatches with
  | [] -> []
  | ms ->
      mkdir_p dir;
      List.map (fun m -> save_mismatch ~dir m) ms
