(** Deliberately broken protocol copies — the fuzzer's smoke test.

    A differential fuzzer that never fires proves nothing: the
    mutation smoke test substitutes a protocol copy with a seeded bug
    on one side of the comparison and asserts the campaign finds and
    shrinks it within a bounded budget.

    [flooding ~bug:false] is a faithful standalone copy of
    {!Gossip.Flooding} (a control: it must diff clean against the real
    protocol); [flooding ~bug:true] starts the phase clock at round 0
    instead of round 1, crossing every phase boundary one round early
    — an off-by-one in token selection that diverges only on runs
    long enough to complete a phase. *)

val flooding : bug:bool -> (module Diff.FLOODING)
