(** A fuzz campaign: generate, diff, shrink, save.

    [run ~runs ~seed ()] feeds cases [0 .. runs-1] of campaign [seed]
    (see {!Gen}) through two engines and collects every divergence,
    each minimized by {!Shrink} against the predicate "the engines
    still diverge".  When neither engine is pinned the pairing is a
    generated per-case dimension ({!Gen.engine_pair}): pseudocode
    {!Engine.Reference} against the optimized {!Engine.Default} on a
    quarter of cases, the struct-of-arrays {!Engine.Soa} at shard
    counts 1/2/4 against {!Engine.Default} on the rest.

    Cases run through {!Analysis.Sweep.map_span} ([?jobs]), one case
    per point: each case (and its shrink, which happens inside the
    same worker) depends only on [(seed, id)], so results are
    bit-identical whatever the parallelism, and mismatches come back
    in case order.  [?metrics] receives counters [fuzz/cases],
    [fuzz/mismatches] and [fuzz/shrink_steps] after the sweep joins;
    [?prof] profiles the sweep with one [point] span per case.

    [save_corpus] writes each shrunk counterexample as a replayable
    pair — [case-<seed>.trace.jsonl] ([dynspread-trace/v1]) plus
    [case-<seed>.scenario.json] ([dynspread-scenario/v1] with a trace
    env pointing at the sibling file) — so
    [dynspread scenario run <spec>] and the regression corpus test
    reproduce the divergence directly. *)

type mismatch = {
  case : Case.t;  (** As generated. *)
  shrunk : Case.t;  (** After {!Shrink.minimize}. *)
  detail : string;  (** {!Diff.divergence}'s description. *)
  shrink_stats : Shrink.stats;
}

type outcome = { runs : int; mismatches : mismatch list }

val run :
  ?engine_a:(module Engine.Engine_sig.ENGINE) ->
  ?engine_b:(module Engine.Engine_sig.ENGINE) ->
  ?flooding_b:(module Diff.FLOODING) ->
  ?jobs:int ->
  ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Span.t ->
  ?shrink_budget:int ->
  runs:int ->
  seed:int ->
  unit ->
  outcome
(** [?flooding_b] substitutes the flooding implementation on the [b]
    side (the mutation smoke test); [?shrink_budget] caps predicate
    evaluations per mismatch (default: {!Shrink.minimize}'s).
    Pinning exactly one engine pins the pairing: the other side
    defaults to {!Engine.Default} (for [?engine_a]) or
    {!Engine.Reference} (for [?engine_b]). *)

val save_corpus : dir:string -> outcome -> string list
(** Write every mismatch's shrunk pair under [dir] (created if
    needed), returning the scenario-file basenames written.  Writes
    nothing (and creates nothing) on a clean outcome.
    @raise Sys_error on filesystem failure. *)
