open! Dynet.Ops

type algo = Flooding | Single_source | Multi_source

type t = {
  id : int;
  algo : algo;
  n : int;
  k : int;
  s : int;
  seed : int;
  max_rounds : int option;
  faults : Scenario.Spec.faults option;
  rounds : Dynet.Graph.t list;
}

let algo_name = function
  | Flooding -> "flooding"
  | Single_source -> "single-source"
  | Multi_source -> "multi-source"

let period t = List.length t.rounds

(* The label names engine-independent inputs only, so the two engines'
   reports can be compared byte for byte. *)
let label t =
  Printf.sprintf "fuzz/%s/n=%d/k=%d/s=%d/seed=%d" (algo_name t.algo) t.n t.k
    t.s t.seed

let to_trace t =
  Scenario.Trace_io.of_graphs ~seed:t.seed ~provenance:"fuzz" ~n:t.n t.rounds

(* Both sides below mirror Scenario.Runner exactly — a saved
   counterexample must reproduce through [dynspread scenario run]. *)
let instance t =
  match t.algo with
  | Single_source -> Gossip.Instance.single_source ~n:t.n ~k:t.k ~source:0
  | Flooding | Multi_source ->
      if t.s <= 1 then Gossip.Instance.single_source ~n:t.n ~k:t.k ~source:0
      else
        Gossip.Instance.multi_source
          ~rng:(Dynet.Rng.make ~seed:(t.seed + 1))
          ~n:t.n ~k:t.k
          ~s:(min t.s (min t.n t.k))

let fault_plan t =
  match t.faults with
  | None -> Faults.Plan.none
  | Some f ->
      Faults.Plan.make ~loss:f.loss ~dup:f.dup ~crash:f.crash
        ~restart:f.restart ~max_delay:f.max_delay
        ~seed:(Option.value f.fault_seed ~default:t.seed)
        ()

let stall_after t =
  Scenario.Runner.stall_window ~period:(period t) ~n:t.n ~k:t.k

let spec_algorithm = function
  | Flooding -> Scenario.Spec.Flooding
  | Single_source -> Scenario.Spec.Single_source
  | Multi_source -> Scenario.Spec.Multi_source

let to_spec t ~trace_path : Scenario.Spec.t =
  {
    name = Printf.sprintf "fuzz-%d" t.seed;
    algorithm = spec_algorithm t.algo;
    env = Scenario.Spec.Trace { path = trace_path };
    sigma = 1;
    n = Some t.n;
    k = t.k;
    s = t.s;
    seed = t.seed;
    repeats = 1;
    faults = t.faults;
    max_rounds = t.max_rounds;
  }

let of_spec (spec : Scenario.Spec.t) ~trace =
  let algo =
    match spec.algorithm with
    | Scenario.Spec.Flooding -> Ok Flooding
    | Scenario.Spec.Single_source -> Ok Single_source
    | Scenario.Spec.Multi_source -> Ok Multi_source
    | Scenario.Spec.Oblivious_rw ->
        Error "oblivious-rw is not a differential-fuzz algorithm"
  in
  match algo with
  | Error e -> Error e
  | Ok algo ->
      let n = trace.Scenario.Trace_io.header.n in
      if Scenario.Trace_io.rounds trace < 1 then
        Error "trace has no rounds"
      else
        let rounds =
          List.rev
            (Scenario.Trace_io.fold_graphs trace ~init:[]
               ~f:(fun acc ~round:_ g -> g :: acc))
        in
        Ok
          {
            id = 0;
            algo;
            n;
            k = spec.k;
            s = spec.s;
            seed = spec.seed;
            max_rounds = spec.max_rounds;
            faults = spec.faults;
            rounds;
          }

let connected t =
  List.for_all Dynet.Graph.is_connected t.rounds
