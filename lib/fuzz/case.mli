(** One differential-fuzz test case: the full input of a run, engine
    left out.

    A case is everything both engines are fed identically — algorithm,
    instance shape [(n, k, s)], seed, optional round cap and fault
    plan, and the concrete per-round graph sequence (round 1 first,
    replayed with {!Scenario.Replay.Loop} past the end).  Instance
    construction, fault-plan wiring and the stall window all mirror
    {!Scenario.Runner}, so a saved counterexample reproduces through
    [dynspread scenario run] exactly as it did inside the fuzzer. *)

type algo = Flooding | Single_source | Multi_source

type t = {
  id : int;  (** Position in the campaign; names corpus files. *)
  algo : algo;
  n : int;
  k : int;
  s : int;  (** Source count; meaningful for [Multi_source] only. *)
  seed : int;  (** Seeds the instance assignment and the fault RNG. *)
  max_rounds : int option;  (** [None]: the runners' default caps. *)
  faults : Scenario.Spec.faults option;
  rounds : Dynet.Graph.t list;  (** Round graphs, round 1 first. *)
}

val algo_name : algo -> string
(** The {!Scenario.Spec} algorithm name ("flooding", …). *)

val period : t -> int
(** Number of round graphs (the looped schedule's period). *)

val label : t -> string
(** Report name for both engines' runs — engine-independent by
    construction, so matching runs produce byte-identical reports. *)

val to_trace : t -> Scenario.Trace_io.t
(** The case's schedule as a [dynspread-trace/v1] document
    (provenance ["fuzz"], the case seed as trace seed). *)

val instance : t -> Gossip.Instance.t
(** Token placement, mirroring [Scenario.Runner]: source 0 for
    single-source shapes, a seeded random assignment for [s > 1]. *)

val fault_plan : t -> Faults.Plan.t
(** The case's fault plan ({!Faults.Plan.none} when [faults] is
    [None]); the fault seed defaults to the case seed. *)

val stall_after : t -> int
(** {!Scenario.Runner.stall_window} for the case's period — the
    livelock window both engines run under. *)

val to_spec : t -> trace_path:string -> Scenario.Spec.t
(** The [dynspread-scenario/v1] spec that replays this case against
    the trace saved at [trace_path] (as recorded in the spec's env). *)

val of_spec :
  Scenario.Spec.t -> trace:Scenario.Trace_io.t -> (t, string) result
(** Rebuild a case from a saved spec + trace pair (the corpus format).
    [Error] on [Oblivious_rw] specs (not a differential algorithm) and
    empty traces. *)

val connected : t -> bool
(** Whether every round graph is connected — the generator's
    invariant, checked by tests and the corpus loader. *)
