open Dynet.Ops

type result = {
  centers : int;
  skipped_phase1 : bool;
  phase1_rounds : int;
  phase1_settled : bool;
  phase2_rounds : int;
  completed : bool;
  ledger : Engine.Ledger.t;
  paper_messages : int;
}

let run ~instance ~schedule ~seed ?(const_f = 1.0) ?(const_gamma = 1.0)
    ?(force_rw = false) ?phase1_cap ?phase2_cap ?(obs = Obs.Sink.null)
    ?(prof = Obs.Span.null) () =
  let n = Instance.n instance in
  let k = Instance.k instance in
  let s = Instance.source_count instance in
  let phase1_cap = Option.value phase1_cap ~default:((50 * n) + 1000) in
  let phase2_cap =
    Option.value phase2_cap ~default:((4 * n * k) + (4 * n * n))
  in
  let emit_phase name round =
    if not (Obs.Sink.is_null obs) then
      Obs.Sink.emit obs (Obs.Trace.Phase { name; round })
  in
  let run_multi_source ~inst ~offset ~init_prev ~cap =
    let states = Multi_source.init ~instance:inst () in
    let adversary ~round ~prev:_ ~states:_ ~traffic:_ =
      Adversary.Schedule.get schedule (round + offset)
    in
    Engine.Runner_unicast.run Multi_source.protocol ?init_prev ~obs ~prof
      ~states ~adversary ~max_rounds:cap
      ~stop:(Multi_source.all_complete ~k)
      ()
  in
  let below_threshold =
    (not force_rw) && float_of_int s <= Bounds.source_threshold ~n ()
  in
  if below_threshold then begin
    emit_phase "multi-source" 0;
    let res, _ =
      Obs.Span.with_span prof ~cat:"algo-phase" "multi-source" (fun () ->
          run_multi_source ~inst:instance ~offset:0 ~init_prev:None
            ~cap:phase2_cap)
    in
    {
      centers = s;
      skipped_phase1 = true;
      phase1_rounds = 0;
      phase1_settled = true;
      phase2_rounds = res.Engine.Run_result.rounds;
      completed = res.Engine.Run_result.completed;
      ledger = res.Engine.Run_result.ledger;
      paper_messages =
        Engine.Ledger.total_excluding res.Engine.Run_result.ledger
          [ Engine.Msg_class.Center ];
    }
  end
  else begin
    let rng = Dynet.Rng.make ~seed in
    let f = Bounds.centers_f ~c:const_f ~n ~k () in
    let gamma = Bounds.degree_gamma ~c:const_gamma ~n ~f () in
    let centers = Array.init n (fun _ -> Dynet.Rng.bernoulli rng (f /. float_of_int n)) in
    if not (Array.exists Fun.id centers) then
      centers.(Dynet.Rng.int rng n) <- true;
    let center_count =
      Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 centers
    in
    let states = Rw_phase.init ~instance ~centers ~gamma ~seed:(seed lxor 0x77) in
    let adversary ~round ~prev:_ ~states:_ ~traffic:_ =
      Adversary.Schedule.get schedule round
    in
    emit_phase "random-walk" 0;
    let res1, states =
      Obs.Span.with_span prof ~cat:"algo-phase" "random-walk" (fun () ->
          Engine.Runner_unicast.run Rw_phase.protocol ~obs ~prof ~states
            ~adversary ~max_rounds:phase1_cap ~stop:Rw_phase.settled ())
    in
    let settled = res1.Engine.Run_result.completed in
    (* Hand off: every remaining holder (centers, plus stragglers if the
       cap was hit) becomes a phase-2 source for the tokens it holds. *)
    let assignment = Array.make n [] in
    Array.iteri
      (fun v st ->
        match Rw_phase.holding st with
        | [] -> ()
        | tokens ->
            let tokens =
              List.sort (fun (a : Token.t) b -> Int.compare a.uid b.uid) tokens
            in
            assignment.(v) <-
              List.mapi (fun i tok -> Token.relabel tok ~src:v ~idx:i) tokens)
      states;
    let inst2 = Instance.make ~n ~assignment in
    let last_graph =
      if res1.Engine.Run_result.rounds = 0 then None
      else Some (Adversary.Schedule.get schedule res1.Engine.Run_result.rounds)
    in
    emit_phase "multi-source" res1.Engine.Run_result.rounds;
    let res2, _ =
      Obs.Span.with_span prof ~cat:"algo-phase" "multi-source" (fun () ->
          run_multi_source ~inst:inst2 ~offset:res1.Engine.Run_result.rounds
            ~init_prev:last_graph ~cap:phase2_cap)
    in
    let ledger =
      Engine.Ledger.merge res1.Engine.Run_result.ledger
        res2.Engine.Run_result.ledger
    in
    {
      centers = center_count;
      skipped_phase1 = false;
      phase1_rounds = res1.Engine.Run_result.rounds;
      phase1_settled = settled;
      phase2_rounds = res2.Engine.Run_result.rounds;
      completed = res2.Engine.Run_result.completed;
      ledger;
      paper_messages =
        Engine.Ledger.total_excluding ledger [ Engine.Msg_class.Center ];
    }
  end
