(** Unstructured broadcast heuristics — extra victims for the
    Section-2 lower bound.

    Theorem 2.3 holds for {e every} token-forwarding algorithm.  Beyond
    {!Flooding}, these heuristics probe the bound from different
    angles: talking constantly, randomizing the token choice, or
    staying mostly silent.  Against the lower-bound adversary they all
    pay Ω(n²/log²n) broadcasts per token actually delivered — in
    particular, silence does not help, because rounds with fewer than
    n/(c·log n) broadcasters make zero progress (Lemma 2.2). *)

type policy =
  | Round_robin  (** Cycle deterministically through the known tokens. *)
  | Random_token  (** Broadcast a uniformly random known token. *)
  | Lazy of float
      (** Broadcast (a random known token) only with the given
          probability; otherwise stay silent. *)

type state

val protocol :
  (module Engine.Runner_broadcast.PROTOCOL
     with type state = state
      and type msg = Payload.t)

val init :
  instance:Instance.t -> policy:policy -> seed:int -> unit -> state array
(** @raise Invalid_argument if a [Lazy] probability is outside
    [0, 1]. *)

val knows : state -> int -> bool
val known_count : state -> int
val all_complete : k:int -> state array -> bool
