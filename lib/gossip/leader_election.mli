(** Adversary-competitive leader election — the paper's future-work
    direction, made concrete.

    The conclusion (Section 4) proposes the adversary-competitive
    measure as a lens for other dynamic-network problems, naming leader
    election first.  This protocol is the natural token-style
    formulation: every node starts as a candidate carrying its own id;
    nodes propagate the maximum id they have seen, and a node tells a
    neighbor its current champion only when it has something new to say
    — either its champion improved, or the edge is new and the neighbor
    was never told this value (per-neighbor memory persists across
    churn, like Algorithm 1's announcement sets).

    Message structure mirrors the dissemination analysis: a send is
    chargeable either to a {e champion improvement} at the sender (at
    most n−1 per node over the whole run, O(log n) in expectation for
    random arrival orders) or to an {e edge insertion} (at most one
    catch-up message per direction per insertion, i.e. ≤ 2·TC(E)).
    The E13 bench measures both components against churn.

    Election completes when every node's champion is the global maximum
    id; as with dissemination, the harness detects this omnisciently. *)

type state

val protocol :
  (module Engine.Runner_unicast.PROTOCOL
     with type state = state
      and type msg = Payload.t)

val init : n:int -> state array
(** Node [v]'s candidate id is [v] itself; the rightful leader is
    [n-1]. *)

val champion : state -> Dynet.Node_id.t
(** The highest id this node has seen so far. *)

val improvements : state -> int
(** How many times this node's champion changed (its own id counts as
    the zeroth, unpaid value). *)

val elected : n:int -> state array -> bool
(** Every node's champion is [n-1]. *)
