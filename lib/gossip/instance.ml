open Dynet.Ops

type t = {
  n : int;
  k : int;
  assignment : Token.t list array;
}

let validate n assignment =
  if Array.length assignment <> n then
    invalid_arg "Instance.make: assignment length differs from n";
  let k =
    Array.fold_left (fun acc ts -> acc + List.length ts) 0 assignment
  in
  let seen_uid = Array.make k false in
  Array.iteri
    (fun v ts ->
      List.iteri
        (fun i (tok : Token.t) ->
          if tok.src <> v then
            invalid_arg "Instance.make: token catalogued under wrong source";
          if tok.idx <> i then
            invalid_arg "Instance.make: source token idxs must be 0..k_v-1";
          if tok.uid >= k then invalid_arg "Instance.make: uid out of range";
          if seen_uid.(tok.uid) then
            invalid_arg "Instance.make: duplicate token uid";
          seen_uid.(tok.uid) <- true)
        ts)
    assignment;
  k

let make ~n ~assignment =
  let k = validate n assignment in
  if k < 1 then invalid_arg "Instance.make: at least one token required";
  { n; k; assignment }

let single_source ~n ~k ~source =
  if source < 0 || source >= n then
    invalid_arg "Instance.single_source: source out of range";
  let assignment = Array.make n [] in
  assignment.(source) <-
    List.init k (fun i -> Token.make ~src:source ~idx:i ~uid:i);
  make ~n ~assignment

let multi_source ~rng ~n ~k ~s =
  if s < 1 || s > k || s > n then
    invalid_arg "Instance.multi_source: need 1 <= s <= min k n";
  let source_ids =
    Dynet.Rng.sample_without_replacement rng s n |> Array.of_list
  in
  (* One token to each source, the rest placed uniformly. *)
  let counts = Array.make s 1 in
  for _ = 1 to k - s do
    let j = Dynet.Rng.int rng s in
    counts.(j) <- counts.(j) + 1
  done;
  let assignment = Array.make n [] in
  let uid = ref 0 in
  Array.iteri
    (fun j src ->
      assignment.(src) <-
        List.init counts.(j) (fun i ->
            let tok = Token.make ~src ~idx:i ~uid:!uid in
            incr uid;
            tok))
    source_ids;
  make ~n ~assignment

let one_per_node ~n =
  let assignment =
    Array.init n (fun v -> [ Token.make ~src:v ~idx:0 ~uid:v ])
  in
  make ~n ~assignment

let n t = t.n
let k t = t.k

let sources t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    match t.assignment.(v) with
    | [] -> ()
    | _ :: _ -> acc := v :: !acc
  done;
  !acc

let source_count t = List.length (sources t)
let tokens_of t v = t.assignment.(v)
let k_of t v = List.length t.assignment.(v)

let all_tokens t =
  Array.fold_left (fun acc ts -> acc @ ts) [] t.assignment

let pp ppf t =
  Format.fprintf ppf "instance n=%d k=%d s=%d" t.n t.k (source_count t)
