open Dynet.Ops

module NSet = Dynet.Node_id.Set
module NMap = Dynet.Node_id.Map
module ISet = Set.Make (Int)

module Make (P : Engine.Runner_unicast.PROTOCOL) = struct
  type msg = Data of { seq : int; payload : P.msg } | Ack of { seq : int }

  (* One unacked inner message.  [next_try <= round] means due:
     freshly enqueued entries are due immediately (their first
     transmission is attempt 0), so transmission and retransmission
     share one code path. *)
  type entry = {
    dst : Dynet.Node_id.t;
    payload : P.msg;
    is_token : bool;
    next_try : int;
    rto : int;
    attempts : int;
  }

  type config = {
    rto0 : int;
    backoff : float;
    max_rto : int;
    on_retransmit :
      (round:int -> src:Dynet.Node_id.t -> dst:Dynet.Node_id.t -> unit) option;
  }

  type state = {
    me : Dynet.Node_id.t;
    cfg : config;
    inner : P.state;
    next_seq : int;
    outstanding : (int * entry) list;  (* FIFO by seq *)
    acks : (Dynet.Node_id.t * int) list;  (* queued, oldest first *)
    seen : ISet.t NMap.t;  (* delivered (sender, seq) pairs *)
    retransmits : int;
    acks_sent : int;
  }

  let inner st = st.inner
  let retransmits st = st.retransmits
  let acks_sent st = st.acks_sent

  module Protocol = struct
    type nonrec state = state
    type nonrec msg = msg

    let classify = function
      | Data { payload; _ } -> P.classify payload
      | Ack _ -> Engine.Msg_class.Control

    let send st ~round ~neighbors =
      let inner, out = P.send st.inner ~round ~neighbors in
      let next_seq, fresh =
        List.fold_left
          (fun (seq, acc) (dst, payload) ->
            let is_token =
              match P.classify payload with
              | Engine.Msg_class.Token | Engine.Msg_class.Walk -> true
              | Engine.Msg_class.Completeness | Engine.Msg_class.Request
              | Engine.Msg_class.Center | Engine.Msg_class.Control ->
                  false
            in
            ( seq + 1,
              ( seq,
                {
                  dst;
                  payload;
                  is_token;
                  next_try = round;
                  rto = st.cfg.rto0;
                  attempts = 0;
                } )
              :: acc ))
          (st.next_seq, []) out
      in
      let outstanding = st.outstanding @ List.rev fresh in
      let present =
        Array.fold_left (fun acc w -> NSet.add w acc) NSet.empty neighbors
      in
      (* Acks first: Control class, no bandwidth budget. *)
      let ready_acks, waiting_acks =
        List.partition (fun (dst, _) -> NSet.mem dst present) st.acks
      in
      let ack_msgs = List.map (fun (dst, seq) -> (dst, Ack { seq })) ready_acks in
      (* Data: every due entry whose destination is adjacent, oldest
         first, at most one token-class per destination per round. *)
      let token_used = ref NSet.empty in
      let retransmitted = ref 0 in
      let data_msgs = ref [] in
      let outstanding =
        List.map
          (fun (seq, e) ->
            if
              e.next_try <= round
              && NSet.mem e.dst present
              && not (e.is_token && NSet.mem e.dst !token_used)
            then begin
              if e.is_token then token_used := NSet.add e.dst !token_used;
              if e.attempts > 0 then begin
                incr retransmitted;
                match st.cfg.on_retransmit with
                | Some hook -> hook ~round ~src:st.me ~dst:e.dst
                | None -> ()
              end;
              data_msgs := (e.dst, Data { seq; payload = e.payload }) :: !data_msgs;
              ( seq,
                {
                  e with
                  attempts = e.attempts + 1;
                  next_try = round + e.rto;
                  rto =
                    min st.cfg.max_rto
                      (max (e.rto + 1)
                         (int_of_float (float_of_int e.rto *. st.cfg.backoff)));
                } )
            end
            else (seq, e))
          outstanding
      in
      ( {
          st with
          inner;
          next_seq;
          outstanding;
          acks = waiting_acks;
          retransmits = st.retransmits + !retransmitted;
          acks_sent = st.acks_sent + List.length ack_msgs;
        },
        ack_msgs @ List.rev !data_msgs )

    let receive st ~round ~neighbors ~inbox =
      let st, delivered_rev =
        List.fold_left
          (fun (st, acc) (u, m) ->
            match m with
            | Ack { seq } ->
                ( {
                    st with
                    outstanding =
                      List.filter
                        (fun (s, e) -> not (s = seq && e.dst = u))
                        st.outstanding;
                  },
                  acc )
            | Data { seq; payload } ->
                (* Ack every copy's arrival (a duplicate means the
                   sender may have missed the first ack), but deliver
                   the payload to the inner protocol only once. *)
                let st =
                  if List.mem (u, seq) st.acks then st
                  else { st with acks = st.acks @ [ (u, seq) ] }
                in
                let seen_u =
                  Option.value (NMap.find_opt u st.seen) ~default:ISet.empty
                in
                if ISet.mem seq seen_u then (st, acc)
                else
                  ( { st with seen = NMap.add u (ISet.add seq seen_u) st.seen },
                    (u, payload) :: acc ))
          (st, []) inbox
      in
      let inner =
        P.receive st.inner ~round ~neighbors ~inbox:(List.rev delivered_rev)
      in
      { st with inner }

    let progress st = P.progress st.inner
  end

  let protocol =
    (module Protocol : Engine.Runner_unicast.PROTOCOL
      with type state = state
       and type msg = msg)

  let wrap ?(rto = 2) ?(backoff = 2.) ?(max_rto = 64) ?on_retransmit states =
    if rto < 1 then invalid_arg "Reliable.wrap: rto < 1";
    if backoff < 1. then invalid_arg "Reliable.wrap: backoff < 1";
    if max_rto < rto then invalid_arg "Reliable.wrap: max_rto < rto";
    let cfg = { rto0 = rto; backoff; max_rto; on_retransmit } in
    Array.mapi
      (fun v inner ->
        {
          me = v;
          cfg;
          inner;
          next_seq = 0;
          outstanding = [];
          acks = [];
          seen = NMap.empty;
          retransmits = 0;
          acks_sent = 0;
        })
      states
end
