(** Tokens: the k pieces of information to disseminate.

    A token has two independent identities:

    - [uid] — its immutable global identity in [0 .. k-1].  Correctness
      (Definition 1.2: every node ends up with all [k] tokens) and the
      token-learning count (Definition 1.4) are defined on uids.
    - [(src, idx)] — its {e catalog entry}: which source node is
      responsible for disseminating it and its index among that
      source's tokens.  This is the label the paper's algorithms use:
      the single source labels its tokens [1..k] (Section 3.1), each
      source [x] labels its own [⟨ID_x, i⟩] (Section 3.2), and phase 2
      of Algorithm 2 {e relabels} the tokens under the centers that
      collected them.  Requests and completeness announcements refer to
      catalog entries; the uid rides along as payload. *)

type t = { src : Dynet.Node_id.t; idx : int; uid : int }

val make : src:Dynet.Node_id.t -> idx:int -> uid:int -> t
(** @raise Invalid_argument on negative [idx] or [uid]. *)

val relabel : t -> src:Dynet.Node_id.t -> idx:int -> t
(** Same uid, new catalog entry (phase-2 handoff to a center). *)

val compare : t -> t -> int
(** Orders by catalog entry [(src, idx)]; uid is determined by it
    within one instance. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val uids : Set.t -> int list
(** Sorted distinct uids of a set. *)
