open Dynet.Ops

type result = {
  control_messages : int;
  token_messages : int;
  total_messages : int;
  rounds : int;
  amortized : float;
}

let run ~graph ~instance ~root =
  let n = Dynet.Graph.n graph in
  if n <> Instance.n instance then
    invalid_arg "Spanning_tree_static.run: node counts disagree";
  if root < 0 || root >= n then
    invalid_arg "Spanning_tree_static.run: root out of range";
  if not (Dynet.Graph.is_connected graph) then
    invalid_arg "Spanning_tree_static.run: graph must be connected";
  let k = Instance.k instance in
  let dist = Dynet.Graph.distances graph root in
  let depth = Array.fold_left max 0 dist in
  let m = Dynet.Graph.edge_count graph in
  (* KT0 construction: a probe both ways on every edge, then one join
     message per tree edge. *)
  let control_messages = (2 * m) + (n - 1) in
  let upcast =
    List.fold_left
      (fun acc (tok : Token.t) -> acc + dist.(tok.src))
      0
      (Instance.all_tokens instance)
  in
  let downcast = k * (n - 1) in
  let token_messages = upcast + downcast in
  let total_messages = control_messages + token_messages in
  let rounds = 2 * (depth + k) in
  {
    control_messages;
    token_messages;
    total_messages;
    rounds;
    amortized = float_of_int total_messages /. float_of_int k;
  }
