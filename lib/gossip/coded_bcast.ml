open Dynet.Ops

type msg = { coeffs : Gf2.Vec.t; payload : int }

type state = {
  k : int;
  basis : Gf2.Basis.t;
  rng : Dynet.Rng.t;
}

let payload_of_uid uid =
  (* A fixed odd-multiplier mix: cheap, deterministic, collision-free
     enough for equality checks at simulator scale. *)
  let h = (uid + 1) * 0x9e3779b97f4a7c1 in
  (h lxor (h lsr 29)) land max_int

let rank st = Gf2.Basis.rank st.basis

let decoded ~k st =
  Gf2.Basis.full st.basis
  && Array.for_all Fun.id
       (Array.mapi
          (fun uid payload ->
            match payload with
            | Some p -> p = payload_of_uid uid
            | None -> false)
          (Gf2.Basis.decode st.basis))
  && k = st.k

let all_decoded ~k states = Array.for_all (decoded ~k) states

(* A uniformly random combination of the basis rows (vector and payload
   XORed together consistently); resample a few times to avoid wasting
   the round on the empty combination. *)
let random_packet st =
  let rows = Gf2.Basis.vectors st.basis in
  match rows with
  | [] -> None
  | _ :: _ -> begin
    let combine () =
      List.fold_left
        (fun (v, p) (row, row_payload) ->
          if Dynet.Rng.bool st.rng then (Gf2.Vec.xor v row, p lxor row_payload)
          else (v, p))
        (Gf2.Vec.zero ~dim:st.k, 0)
        rows
    in
    let rec try_nonzero attempts =
      let v, p = combine () in
      if Gf2.Vec.is_zero v && attempts > 0 then try_nonzero (attempts - 1)
      else (v, p)
    in
    let v, p = try_nonzero 3 in
    if Gf2.Vec.is_zero v then None else Some { coeffs = v; payload = p }
  end

module P = struct
  type nonrec state = state
  type nonrec msg = msg

  (* A coded packet carries token content: account it in the Token
     class so E12's message counts compare like with like. *)
  let classify (_ : msg) = Engine.Msg_class.Token

  let intent st ~round:_ = (st, random_packet st)

  let receive st ~round:_ ~inbox =
    List.iter
      (fun (_, { coeffs; payload }) ->
        ignore (Gf2.Basis.insert st.basis coeffs ~payload))
      inbox;
    st

  let progress st = Gf2.Basis.rank st.basis

  (* Coded packets are random GF(2) combinations, not single catalog
     tokens; the plane contract cannot describe them. *)
  let plane = None
end

let protocol =
  (module P : Engine.Runner_broadcast.PROTOCOL
    with type state = state
     and type msg = msg)

let init ~instance ~seed =
  let k = Instance.k instance in
  let master = Dynet.Rng.make ~seed in
  Array.init (Instance.n instance) (fun v ->
      let basis = Gf2.Basis.create ~dim:k in
      List.iter
        (fun (tok : Token.t) ->
          ignore
            (Gf2.Basis.insert basis
               (Gf2.Vec.unit ~dim:k tok.uid)
               ~payload:(payload_of_uid tok.uid)))
        (Instance.tokens_of instance v);
      { k; basis; rng = Dynet.Rng.split master })
