type policy = Round_robin | Random_token | Lazy of float

type state = {
  policy : policy;
  known : Token.t list;  (* newest first *)
  known_uids : Dynet.Node_id.Set.t;  (* uid set; uids are ints *)
  cursor : int;
  rng : Dynet.Rng.t;
}

let knows st uid = Dynet.Node_id.Set.mem uid st.known_uids
let known_count st = Dynet.Node_id.Set.cardinal st.known_uids

let all_complete ~k states =
  Array.for_all (fun st -> known_count st >= k) states

let learn st (tok : Token.t) =
  if knows st tok.uid then st
  else
    {
      st with
      known = tok :: st.known;
      known_uids = Dynet.Node_id.Set.add tok.uid st.known_uids;
    }

let pick_round_robin st =
  match st.known with
  | [] -> (st, None)
  | known ->
      let arr = Array.of_list known in
      let i = st.cursor mod Array.length arr in
      ({ st with cursor = st.cursor + 1 }, Some arr.(i))

let pick_random st =
  match st.known with
  | [] -> (st, None)
  | known -> (st, Some (Dynet.Rng.pick st.rng (Array.of_list known)))

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let intent st ~round:_ =
    let st, choice =
      match st.policy with
      | Round_robin -> pick_round_robin st
      | Random_token -> pick_random st
      | Lazy p ->
          if Dynet.Rng.bernoulli st.rng p then pick_random st else (st, None)
    in
    (st, Option.map (fun tok -> Payload.Token_msg tok) choice)

  let receive st ~round:_ ~inbox =
    List.fold_left
      (fun st (_, msg) ->
        match msg with
        | Payload.Token_msg tok -> learn st tok
        | Payload.Completeness _ | Payload.Request _ | Payload.Walk_msg _
        | Payload.Center_announce ->
            st)
      st inbox

  let progress st = known_count st

  (* Greedy policies broadcast whole-state-dependent choices, not a
     fixed per-phase token, so the SoA plane contract does not hold. *)
  let plane = None
end

let protocol =
  (module P : Engine.Runner_broadcast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ~instance ~policy ~seed () =
  (match policy with
  | Lazy p when p < 0. || p > 1. ->
      invalid_arg "Greedy_bcast.init: lazy probability out of [0, 1]"
  | Lazy _ | Round_robin | Random_token -> ());
  let master = Dynet.Rng.make ~seed in
  Array.init (Instance.n instance) (fun v ->
      let st =
        {
          policy;
          known = [];
          known_uids = Dynet.Node_id.Set.empty;
          cursor = v;  (* desynchronize the round-robin across nodes *)
          rng = Dynet.Rng.split master;
        }
      in
      List.fold_left learn st (Instance.tokens_of instance v))
