(** Random-push gossip — an unstructured unicast baseline.

    Every round, every node holding at least one token sends one
    uniformly random known token to one uniformly random current
    neighbor.  This is the classic push protocol; it is what a naive
    unicast design looks like {e without} the request/response
    structure of Algorithm 1.

    It is correct (on connected dynamic graphs every token eventually
    reaches everyone, with probability 1 against an oblivious
    adversary) but pays for its blindness twice: most pushes deliver
    already-known tokens (no per-pair once-only guarantee, so the exact
    [k(n-1)] token count of Theorem 3.1 is lost), and nothing in its
    cost is chargeable to the adversary — it sends the same volume on a
    perfectly static graph.  The ablation bench quantifies both
    effects. *)

type state

val protocol :
  (module Engine.Runner_unicast.PROTOCOL
     with type state = state
      and type msg = Payload.t)

val init : instance:Instance.t -> seed:int -> state array

val known_count : state -> int
val all_complete : k:int -> state array -> bool
