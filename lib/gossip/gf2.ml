open Dynet.Ops

module Vec = struct
  type t = { dim : int; words : int array }

  let word_bits = 62
  let words_for dim = (dim + word_bits - 1) / word_bits

  let zero ~dim = { dim; words = Array.make (max 1 (words_for dim)) 0 }

  let unit ~dim i =
    if i < 0 || i >= dim then invalid_arg "Gf2.Vec.unit: index out of range";
    let v = zero ~dim in
    v.words.(i / word_bits) <- 1 lsl (i mod word_bits);
    v

  let dim v = v.dim
  let is_zero v = Array.for_all (fun w -> w = 0) v.words

  let get v i =
    if i < 0 || i >= v.dim then invalid_arg "Gf2.Vec.get: index out of range";
    v.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

  let xor a b =
    if a.dim <> b.dim then invalid_arg "Gf2.Vec.xor: dimension mismatch";
    { dim = a.dim; words = Array.mapi (fun i w -> w lxor b.words.(i)) a.words }

  let lowest_set v =
    let rec scan_word i =
      if i >= Array.length v.words then None
      else if v.words.(i) = 0 then scan_word (i + 1)
      else begin
        let w = v.words.(i) in
        let rec scan_bit b =
          if w land (1 lsl b) <> 0 then Some ((i * word_bits) + b)
          else scan_bit (b + 1)
        in
        scan_bit 0
      end
    in
    scan_word 0

  let random rng ~dim =
    let v = zero ~dim in
    (* Random.State.int caps at 2^30; assemble 62-bit words from three
       draws. *)
    let chunk () = Dynet.Rng.int rng (1 lsl 21) in
    for i = 0 to Array.length v.words - 1 do
      v.words.(i) <- (chunk () lsl 42) lor (chunk () lsl 21) lor chunk ()
    done;
    (* Mask the tail so equality is canonical. *)
    let tail = dim mod word_bits in
    if tail > 0 then begin
      let last = Array.length v.words - 1 in
      v.words.(last) <- v.words.(last) land ((1 lsl tail) - 1)
    end;
    v

  let random_combination rng vectors ~dim =
    List.fold_left
      (fun acc v -> if Dynet.Rng.bool rng then xor acc v else acc)
      (zero ~dim) vectors

  let equal a b = a.dim = b.dim && int_array_equal a.words b.words

  let pp ppf v =
    for i = 0 to v.dim - 1 do
      Format.pp_print_char ppf (if get v i then '1' else '0')
    done
end

module Basis = struct
  (* rows.(p) = Some (vector with pivot p, payload) *)
  type t = { dim : int; rows : (Vec.t * int) option array; mutable rank : int }

  let create ~dim = { dim; rows = Array.make (max dim 1) None; rank = 0 }
  let rank t = t.rank

  (* Reduce a (vector, payload) pair against the basis rows. *)
  let reduce t v payload =
    let v = ref v and payload = ref payload in
    let continue_ = ref true in
    while !continue_ do
      match Vec.lowest_set !v with
      | None -> continue_ := false
      | Some p -> (
          match t.rows.(p) with
          | None -> continue_ := false
          | Some (row, row_payload) ->
              v := Vec.xor !v row;
              payload := !payload lxor row_payload)
    done;
    (!v, !payload)

  let insert t v ~payload =
    if Vec.dim v <> t.dim then invalid_arg "Gf2.Basis.insert: dimension mismatch";
    let v, payload = reduce t v payload in
    match Vec.lowest_set v with
    | None -> false
    | Some p ->
        t.rows.(p) <- Some (v, payload);
        t.rank <- t.rank + 1;
        true

  let full t = t.rank = t.dim

  let vectors t =
    Array.to_list t.rows |> List.filter_map Fun.id

  let decode t =
    (* Back-substitute top-down: eliminate every non-pivot coordinate
       from each row, leaving unit vectors. *)
    let result = Array.make t.dim None in
    let cleaned = Array.copy t.rows in
    for p = t.dim - 1 downto 0 do
      match cleaned.(p) with
      | None -> ()
      | Some (row, payload) ->
          let row = ref row and payload = ref payload in
          for q = p + 1 to t.dim - 1 do
            if Vec.get !row q then
              match cleaned.(q) with
              | Some (qrow, qpayload) ->
                  row := Vec.xor !row qrow;
                  payload := !payload lxor qpayload
              | None -> ()
          done;
          cleaned.(p) <- Some (!row, !payload);
          if Vec.equal !row (Vec.unit ~dim:t.dim p) then
            result.(p) <- Some !payload
    done;
    result
end
