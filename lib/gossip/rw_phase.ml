open Dynet.Ops

module Bitset = Dynet.Bitset

type state = {
  me : Dynet.Node_id.t;
  n : int;
  is_center : bool;
  holding : Token.t list;
  nheld : int;  (* cached List.length holding *)
  known_centers : Bitset.t;  (* persists across edge churn *)
  announced : Bitset.t;  (* if center: whom we already told *)
  gamma : float;
  rng : Dynet.Rng.t;
}

let is_center st = st.is_center
let holding st = st.holding

let settled states =
  Array.for_all (fun st -> st.is_center || st.nheld = 0) states

let collected states =
  Array.to_list states
  |> List.filter_map (fun st ->
         if st.is_center then
           Some
             ( st.me,
               List.sort (fun (a : Token.t) b -> Int.compare a.uid b.uid)
                 st.holding )
         else None)

let center_send st ~neighbors =
  let msgs = ref [] in
  let announced = Bitset.copy st.announced in
  Array.iter
    (fun w ->
      if not (Bitset.mem announced w) then begin
        Bitset.set announced w;
        msgs := (w, Payload.Center_announce) :: !msgs
      end)
    neighbors;
  ({ st with announced }, List.rev !msgs)

let high_degree_send st ~neighbors =
  (* Hand one held token to each neighboring center. *)
  let center_neighbors =
    Array.to_list neighbors
    |> List.filter (fun w -> Bitset.mem st.known_centers w)
  in
  let rec pair acc holding centers =
    match (holding, centers) with
    | [], _ | _, [] -> (List.rev acc, holding)
    | tok :: holding, c :: centers ->
        pair ((c, Payload.Walk_msg tok) :: acc) holding centers
  in
  let msgs, left = pair [] st.holding center_neighbors in
  ({ st with holding = left; nheld = st.nheld - List.length msgs }, msgs)

let low_degree_send st ~neighbors =
  let d = Array.length neighbors in
  let move_prob = float_of_int d /. float_of_int st.n in
  (* Transient per-call scratch: which neighbors already carry a token
     this round (one token per edge per round). *)
  let used = Bitset.create st.n in
  let msgs = ref [] in
  let nmsgs = ref 0 in
  let left = ref [] in
  let nleft = ref 0 in
  List.iter
    (fun tok ->
      if d > 0 && Dynet.Rng.bernoulli st.rng move_prob then begin
        let w = neighbors.(Dynet.Rng.int st.rng d) in
        if Bitset.mem used w then begin
          (* Congestion: one token per edge per round; stay passive. *)
          left := tok :: !left;
          incr nleft
        end
        else begin
          Bitset.set used w;
          msgs := (w, Payload.Walk_msg tok) :: !msgs;
          incr nmsgs
        end
      end
      else begin
        (* Virtual self-loop: the walk steps but no message is sent. *)
        left := tok :: !left;
        incr nleft
      end)
    st.holding;
  ({ st with holding = List.rev !left; nheld = !nleft }, List.rev !msgs)

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round:_ ~neighbors =
    if st.is_center then center_send st ~neighbors
    else if st.nheld = 0 then (st, [])
    else if float_of_int (Array.length neighbors) >= st.gamma then
      high_degree_send st ~neighbors
    else low_degree_send st ~neighbors

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (u, msg) ->
        match msg with
        | Payload.Walk_msg tok ->
            { st with holding = tok :: st.holding; nheld = st.nheld + 1 }
        | Payload.Center_announce ->
            { st with known_centers = Bitset.add u st.known_centers }
        | Payload.Token_msg _ | Payload.Completeness _ | Payload.Request _ ->
            st)
      st inbox

  (* Progress for this phase = tokens already parked at centers. *)
  let progress st = if st.is_center then st.nheld else 0
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ~instance ~centers ~gamma ~seed =
  let n = Instance.n instance in
  if Array.length centers <> n then
    invalid_arg "Rw_phase.init: centers array has wrong length";
  if not (Array.exists Fun.id centers) then
    invalid_arg "Rw_phase.init: at least one center required";
  let master = Dynet.Rng.make ~seed in
  Array.init n (fun v ->
      let holding = Instance.tokens_of instance v in
      {
        me = v;
        n;
        is_center = centers.(v);
        holding;
        nheld = List.length holding;
        known_centers = Bitset.create n;
        announced = Bitset.create n;
        gamma;
        rng = Dynet.Rng.split master;
      })
