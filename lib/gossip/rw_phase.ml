module NSet = Dynet.Node_id.Set

type state = {
  me : Dynet.Node_id.t;
  n : int;
  is_center : bool;
  holding : Token.t list;
  known_centers : NSet.t;  (* persists across edge churn *)
  announced : NSet.t;  (* if center: whom we already told *)
  gamma : float;
  rng : Dynet.Rng.t;
}

let is_center st = st.is_center
let holding st = st.holding

let settled states =
  Array.for_all (fun st -> st.is_center || st.holding = []) states

let collected states =
  Array.to_list states
  |> List.filter_map (fun st ->
         if st.is_center then
           Some
             ( st.me,
               List.sort (fun (a : Token.t) b -> Int.compare a.uid b.uid)
                 st.holding )
         else None)

let center_send st ~neighbors =
  let msgs = ref [] in
  let announced = ref st.announced in
  Array.iter
    (fun w ->
      if not (NSet.mem w !announced) then begin
        announced := NSet.add w !announced;
        msgs := (w, Payload.Center_announce) :: !msgs
      end)
    neighbors;
  ({ st with announced = !announced }, List.rev !msgs)

let high_degree_send st ~neighbors =
  (* Hand one held token to each neighboring center. *)
  let center_neighbors =
    Array.to_list neighbors
    |> List.filter (fun w -> NSet.mem w st.known_centers)
  in
  let rec pair acc holding centers =
    match (holding, centers) with
    | [], _ | _, [] -> (List.rev acc, holding)
    | tok :: holding, c :: centers ->
        pair ((c, Payload.Walk_msg tok) :: acc) holding centers
  in
  let msgs, left = pair [] st.holding center_neighbors in
  ({ st with holding = left }, msgs)

let low_degree_send st ~neighbors =
  let d = Array.length neighbors in
  let move_prob = float_of_int d /. float_of_int st.n in
  let used = ref NSet.empty in
  let msgs = ref [] in
  let left = ref [] in
  List.iter
    (fun tok ->
      if d > 0 && Dynet.Rng.bernoulli st.rng move_prob then begin
        let w = neighbors.(Dynet.Rng.int st.rng d) in
        if NSet.mem w !used then
          (* Congestion: one token per edge per round; stay passive. *)
          left := tok :: !left
        else begin
          used := NSet.add w !used;
          msgs := (w, Payload.Walk_msg tok) :: !msgs
        end
      end
      else
        (* Virtual self-loop: the walk steps but no message is sent. *)
        left := tok :: !left)
    st.holding;
  ({ st with holding = List.rev !left }, List.rev !msgs)

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round:_ ~neighbors =
    if st.is_center then center_send st ~neighbors
    else if st.holding = [] then (st, [])
    else if float_of_int (Array.length neighbors) >= st.gamma then
      high_degree_send st ~neighbors
    else low_degree_send st ~neighbors

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (u, msg) ->
        match msg with
        | Payload.Walk_msg tok -> { st with holding = tok :: st.holding }
        | Payload.Center_announce ->
            { st with known_centers = NSet.add u st.known_centers }
        | Payload.Token_msg _ | Payload.Completeness _ | Payload.Request _ ->
            st)
      st inbox

  (* Progress for this phase = tokens already parked at centers. *)
  let progress st = if st.is_center then List.length st.holding else 0
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ~instance ~centers ~gamma ~seed =
  let n = Instance.n instance in
  if Array.length centers <> n then
    invalid_arg "Rw_phase.init: centers array has wrong length";
  if not (Array.exists Fun.id centers) then
    invalid_arg "Rw_phase.init: at least one center required";
  let master = Dynet.Rng.make ~seed in
  Array.init n (fun v ->
      {
        me = v;
        n;
        is_center = centers.(v);
        holding = Instance.tokens_of instance v;
        known_centers = NSet.empty;
        announced = NSet.empty;
        gamma;
        rng = Dynet.Rng.split master;
      })
