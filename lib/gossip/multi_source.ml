module IMap = Map.Make (Int)
module NSet = Dynet.Node_id.Set
module NMap = Dynet.Node_id.Map

type edge_info = { inserted_at : int; contributed : bool }

(* Everything node v tracks about one discovered source x. *)
type per_source = {
  count : int option;  (* k_x, once learned *)
  known : Token.t IMap.t;  (* x's tokens held, by idx *)
  complete : bool;  (* x ∈ I_v *)
  informed : NSet.t;  (* R_v(x) *)
  announcers : NSet.t;  (* S_v(x) *)
}

let fresh_source =
  {
    count = None;
    known = IMap.empty;
    complete = false;
    informed = NSet.empty;
    announcers = NSet.empty;
  }

type source_order = Min_source | Random_source

type state = {
  me : Dynet.Node_id.t;
  source_order : source_order;
  rng : Dynet.Rng.t;
  sources : per_source NMap.t;  (* discovered sources *)
  edges : edge_info NMap.t;
  pending : (Dynet.Node_id.t * Dynet.Node_id.t * int) list;
      (* (neighbor asked, source, idx) sent last round *)
  to_serve : (Dynet.Node_id.t * Dynet.Node_id.t * int) list;
      (* (asker, source, idx) received last round *)
  requests_sent : int;
  announcements_sent : int;
}

let source_info st x =
  Option.value (NMap.find_opt x st.sources) ~default:fresh_source

let update_source st x f = { st with sources = NMap.add x (f (source_info st x)) st.sources }

let known_count st =
  NMap.fold (fun _ ps acc -> acc + IMap.cardinal ps.known) st.sources 0

let complete_wrt st x = (source_info st x).complete

let all_complete ~k states =
  Array.for_all (fun st -> known_count st >= k) states

let requests_sent st = st.requests_sent
let announcements_sent st = st.announcements_sent

let refresh_edges st ~round ~neighbors =
  let edges =
    Array.fold_left
      (fun acc w ->
        match NMap.find_opt w st.edges with
        | Some info -> NMap.add w info acc
        | None -> NMap.add w { inserted_at = round; contributed = false } acc)
      NMap.empty neighbors
  in
  { st with edges }

type category = New | Idle | Contributive

let categorize ~round info =
  if info.inserted_at >= round - 1 then New
  else if info.contributed then Contributive
  else Idle

(* Task 1: announce, per neighbor, the minimum own-complete source the
   neighbor has not heard about from us. *)
let announce_task st ~neighbors =
  let msgs = ref [] in
  let st = ref st in
  Array.iter
    (fun w ->
      let candidate =
        NMap.fold
          (fun x ps best ->
            if ps.complete && not (NSet.mem w ps.informed) then
              match best with Some b when b <= x -> best | _ -> Some x
            else best)
          !st.sources None
      in
      match candidate with
      | None -> ()
      | Some x ->
          let count = Option.get (source_info !st x).count in
          st :=
            update_source !st x (fun ps ->
                { ps with informed = NSet.add w ps.informed });
          st := { !st with announcements_sent = !st.announcements_sent + 1 };
          msgs := (w, Payload.Completeness { source = x; count }) :: !msgs)
    neighbors;
  (!st, List.rev !msgs)

(* Task 2: serve last round's requests, if the asker is still a
   neighbor and we hold the token. *)
let serve_task st ~neighbors =
  let neighbor_set =
    Array.fold_left (fun acc w -> NSet.add w acc) NSet.empty neighbors
  in
  let msgs =
    List.filter_map
      (fun (u, x, idx) ->
        if NSet.mem u neighbor_set then
          match IMap.find_opt idx (source_info st x).known with
          | Some tok -> Some (u, Payload.Token_msg tok)
          | None -> None
        else None)
      st.to_serve
  in
  ({ st with to_serve = [] }, msgs)

(* Task 3: the Single-Source request logic for one incomplete source
   that has announced completeness in our neighborhood — the minimum
   one under the paper's rule, a random one under the ablation. *)
let request_task st ~round ~neighbors =
  let candidates =
    NMap.fold
      (fun x ps acc ->
        if (not ps.complete) && not (NSet.is_empty ps.announcers) then
          x :: acc
        else acc)
      st.sources []
  in
  let target =
    match (st.source_order, candidates) with
    | _, [] -> None
    | Min_source, xs -> Some (List.fold_left min max_int xs)
    | Random_source, xs -> Some (Dynet.Rng.pick st.rng (Array.of_list xs))
  in
  match target with
  | None -> ({ st with pending = [] }, [])
  | Some x ->
      let ps = source_info st x in
      let k_x = Option.get ps.count in
      let neighbor_set =
        Array.fold_left (fun acc w -> NSet.add w acc) NSet.empty neighbors
      in
      let arriving =
        List.filter_map
          (fun (w, x', idx) ->
            if x' = x && NSet.mem w neighbor_set then Some idx else None)
          st.pending
      in
      let missing =
        List.init k_x (fun idx -> idx)
        |> List.filter (fun idx ->
               (not (IMap.mem idx ps.known)) && not (List.mem idx arriving))
      in
      let eligible =
        Array.to_list neighbors
        |> List.filter (fun w -> NSet.mem w ps.announcers)
        |> List.map (fun w -> (w, categorize ~round (NMap.find w st.edges)))
      in
      let in_category c =
        List.filter_map (fun (w, cat) -> if cat = c then Some w else None)
          eligible
      in
      let ordered =
        in_category New @ in_category Idle @ in_category Contributive
      in
      let rec assign acc = function
        | [], _ | _, [] -> List.rev acc
        | idx :: missing, w :: edges ->
            assign ((w, x, idx) :: acc) (missing, edges)
      in
      let requests = assign [] (missing, ordered) in
      let msgs =
        List.map (fun (w, _, idx) -> (w, Payload.Request { source = x; idx }))
          requests
      in
      ( {
          st with
          pending = requests;
          requests_sent = st.requests_sent + List.length requests;
        },
        msgs )

let learn st (tok : Token.t) ~from =
  let x = tok.src in
  let ps = source_info st x in
  if IMap.mem tok.idx ps.known then st
  else begin
    let known = IMap.add tok.idx tok ps.known in
    let complete =
      match ps.count with Some c -> IMap.cardinal known = c | None -> false
    in
    let st = update_source st x (fun ps -> { ps with known; complete }) in
    let edges =
      match NMap.find_opt from st.edges with
      | Some info -> NMap.add from { info with contributed = true } st.edges
      | None -> st.edges
    in
    { st with edges }
  end

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round ~neighbors =
    let st = refresh_edges st ~round ~neighbors in
    let st, announce = announce_task st ~neighbors in
    let st, serve = serve_task st ~neighbors in
    let st, request = request_task st ~round ~neighbors in
    (st, announce @ serve @ request)

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (u, msg) ->
        match msg with
        | Payload.Completeness { source = x; count } ->
            update_source st x (fun ps ->
                (match ps.count with
                | Some c -> assert (c = count)
                | None -> ());
                {
                  ps with
                  count = Some count;
                  announcers = NSet.add u ps.announcers;
                  complete =
                    ps.complete || IMap.cardinal ps.known = count;
                })
        | Payload.Token_msg tok -> learn st tok ~from:u
        | Payload.Request { source = x; idx } ->
            if (source_info st x).complete then
              { st with to_serve = (u, x, idx) :: st.to_serve }
            else st
        | Payload.Walk_msg _ | Payload.Center_announce -> st)
      st inbox

  let progress st = known_count st
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ?(source_order = Min_source) ?(seed = 0) ~instance () =
  let master = Dynet.Rng.make ~seed in
  Array.init (Instance.n instance) (fun v ->
      let base =
        {
          me = v;
          source_order;
          rng = Dynet.Rng.split master;
          sources = NMap.empty;
          edges = NMap.empty;
          pending = [];
          to_serve = [];
          requests_sent = 0;
          announcements_sent = 0;
        }
      in
      match Instance.tokens_of instance v with
      | [] -> base
      | tokens ->
          let known =
            List.fold_left
              (fun acc (tok : Token.t) -> IMap.add tok.idx tok acc)
              IMap.empty tokens
          in
          {
            base with
            sources =
              NMap.add v
                {
                  count = Some (List.length tokens);
                  known;
                  complete = true;
                  informed = NSet.empty;
                  announcers = NSet.empty;
                }
                NMap.empty;
          })
