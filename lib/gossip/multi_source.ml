open Dynet.Ops

module IMap = Map.Make (Int)
module NMap = Dynet.Node_id.Map
module Bitset = Dynet.Bitset

(* Everything node v tracks about one discovered source x. *)
type per_source = {
  count : int option;  (* k_x, once learned *)
  known : Token.t IMap.t;  (* x's tokens held, by idx — kept for serving *)
  kmask : Bitset.t;  (* packed "have idx" bits, capacity = instance k *)
  kcount : int;  (* cached IMap.cardinal known *)
  complete : bool;  (* x ∈ I_v *)
  informed : Bitset.t;  (* R_v(x) *)
  announcers : Bitset.t;  (* S_v(x) *)
}

type source_order = Min_source | Random_source

type state = {
  me : Dynet.Node_id.t;
  n : int;
  cap_k : int;  (* instance-wide token count: capacity of the kmasks *)
  source_order : source_order;
  rng : Dynet.Rng.t;
  sources : per_source NMap.t;  (* discovered sources *)
  total_known : int;  (* cached sum of kcount over sources *)
  edges : Edge_history.t;
  pending : (Dynet.Node_id.t * Dynet.Node_id.t * int) list;
      (* (neighbor asked, source, idx) sent last round *)
  to_serve : (Dynet.Node_id.t * Dynet.Node_id.t * int) list;
      (* (asker, source, idx) received last round *)
  requests_sent : int;
  announcements_sent : int;
}

let fresh_source ~n ~cap_k =
  {
    count = None;
    known = IMap.empty;
    kmask = Bitset.create cap_k;
    kcount = 0;
    complete = false;
    informed = Bitset.create n;
    announcers = Bitset.create n;
  }

let source_info st x =
  match NMap.find_opt x st.sources with
  | Some ps -> ps
  | None -> fresh_source ~n:st.n ~cap_k:st.cap_k

let update_source st x f =
  { st with sources = NMap.add x (f (source_info st x)) st.sources }

let known_count st = st.total_known
let complete_wrt st x = (source_info st x).complete

let all_complete ~k states =
  Array.for_all (fun st -> st.total_known >= k) states

let requests_sent st = st.requests_sent
let announcements_sent st = st.announcements_sent

let refresh_edges st ~round ~neighbors =
  { st with edges = Edge_history.refresh st.edges ~round ~neighbors }

(* Task 1: announce, per neighbor, the minimum own-complete source the
   neighbor has not heard about from us. *)
let announce_task st ~neighbors =
  let msgs = ref [] in
  let st = ref st in
  Array.iter
    (fun w ->
      let candidate =
        NMap.fold
          (fun x ps best ->
            if ps.complete && not (Bitset.mem ps.informed w) then
              match best with Some b when b <= x -> best | _ -> Some x
            else best)
          !st.sources None
      in
      match candidate with
      | None -> ()
      | Some x ->
          let count = Option.get (source_info !st x).count in
          st :=
            update_source !st x (fun ps ->
                { ps with informed = Bitset.add w ps.informed });
          st := { !st with announcements_sent = !st.announcements_sent + 1 };
          msgs := (w, Payload.Completeness { source = x; count }) :: !msgs)
    neighbors;
  (!st, List.rev !msgs)

(* Task 2: serve last round's requests, if the asker is still a
   neighbor and we hold the token. *)
let serve_task st ~neighbors =
  let neighbor_set = Bitset.of_array st.n neighbors in
  let msgs =
    List.filter_map
      (fun (u, x, idx) ->
        if Bitset.mem neighbor_set u then
          match IMap.find_opt idx (source_info st x).known with
          | Some tok -> Some (u, Payload.Token_msg tok)
          | None -> None
        else None)
      st.to_serve
  in
  ({ st with to_serve = [] }, msgs)

(* Task 3: the Single-Source request logic for one incomplete source
   that has announced completeness in our neighborhood — the minimum
   one under the paper's rule, a random one under the ablation. *)
let request_task st ~round ~neighbors =
  let candidates =
    NMap.fold
      (fun x ps acc ->
        if (not ps.complete) && not (Bitset.is_empty ps.announcers) then
          x :: acc
        else acc)
      st.sources []
  in
  let target =
    match (st.source_order, candidates) with
    | _, [] -> None
    | Min_source, xs -> Some (List.fold_left min max_int xs)
    | Random_source, xs -> Some (Dynet.Rng.pick st.rng (Array.of_list xs))
  in
  match target with
  | None -> ({ st with pending = [] }, [])
  | Some x ->
      let ps = source_info st x in
      let k_x = Option.get ps.count in
      let neighbor_set = Bitset.of_array st.n neighbors in
      let arriving =
        List.filter_map
          (fun (w, x', idx) ->
            if x' = x && Bitset.mem neighbor_set w then Some idx else None)
          st.pending
      in
      let eligible =
        Array.to_list neighbors
        |> List.filter (fun w -> Bitset.mem ps.announcers w)
        |> List.map (fun w -> (w, Edge_history.categorize st.edges ~round w))
      in
      let in_category c =
        List.filter_map
          (fun (w, cat) -> if Edge_history.category_equal cat c then Some w else None)
          eligible
      in
      let ordered =
        in_category Edge_history.New
        @ in_category Edge_history.Idle
        @ in_category Edge_history.Contributive
      in
      (* Lazy monotone scan over the missing idxs of source x — same
         pairing as the eager [List.init k_x |> filter] + zip. *)
      let rec next_missing idx =
        let idx = Bitset.next_clear ps.kmask idx in
        if idx >= k_x then None
        else if List.mem idx arriving then next_missing (idx + 1)
        else Some idx
      in
      let rec assign acc idx = function
        | [] -> List.rev acc
        | w :: ws -> (
            match next_missing idx with
            | None -> List.rev acc
            | Some idx -> assign ((w, x, idx) :: acc) (idx + 1) ws)
      in
      let requests = assign [] 0 ordered in
      let msgs =
        List.map (fun (w, _, idx) -> (w, Payload.Request { source = x; idx }))
          requests
      in
      ( {
          st with
          pending = requests;
          requests_sent = st.requests_sent + List.length requests;
        },
        msgs )

let learn st (tok : Token.t) ~from =
  let x = tok.src in
  let ps = source_info st x in
  if Bitset.mem ps.kmask tok.idx then st
  else begin
    let known = IMap.add tok.idx tok ps.known in
    let kmask = Bitset.add tok.idx ps.kmask in
    let kcount = ps.kcount + 1 in
    Check.bitset_cached ~what:"Multi_source: kcount desynced from kmask"
      ~cached:kcount kmask;
    let complete =
      match ps.count with Some c -> kcount = c | None -> false
    in
    let st =
      update_source st x (fun ps -> { ps with known; kmask; kcount; complete })
    in
    {
      st with
      total_known = st.total_known + 1;
      edges = Edge_history.mark_contributed st.edges from;
    }
  end

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round ~neighbors =
    let st = refresh_edges st ~round ~neighbors in
    let st, announce = announce_task st ~neighbors in
    let st, serve = serve_task st ~neighbors in
    let st, request = request_task st ~round ~neighbors in
    (st, announce @ serve @ request)

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (u, msg) ->
        match msg with
        | Payload.Completeness { source = x; count } ->
            update_source st x (fun ps ->
                (match ps.count with
                | Some c -> assert (c = count)
                | None -> ());
                {
                  ps with
                  count = Some count;
                  announcers = Bitset.add u ps.announcers;
                  complete = ps.complete || ps.kcount = count;
                })
        | Payload.Token_msg tok -> learn st tok ~from:u
        | Payload.Request { source = x; idx } ->
            (* At most one queued serve per asker: duplicated or delayed
               requests can land two in one inbox, and serving both next
               round would put two tokens on the same edge — a bandwidth
               violation.  Dropped extras are re-requested, the same
               recovery path as a lost request (single-source gets this
               for free from its assoc-by-neighbor serve loop). *)
            if
              (source_info st x).complete
              && not (List.exists (fun (u', _, _) -> u' = u) st.to_serve)
            then { st with to_serve = (u, x, idx) :: st.to_serve }
            else st
        | Payload.Walk_msg _ | Payload.Center_announce -> st)
      st inbox

  let progress st = st.total_known
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ?(source_order = Min_source) ?(seed = 0) ~instance () =
  let master = Dynet.Rng.make ~seed in
  let n = Instance.n instance in
  let cap_k = Instance.k instance in
  Array.init n (fun v ->
      let base =
        {
          me = v;
          n;
          cap_k;
          source_order;
          rng = Dynet.Rng.split master;
          sources = NMap.empty;
          total_known = 0;
          edges = Edge_history.create ~n;
          pending = [];
          to_serve = [];
          requests_sent = 0;
          announcements_sent = 0;
        }
      in
      match Instance.tokens_of instance v with
      | [] -> base
      | tokens ->
          let known =
            List.fold_left
              (fun acc (tok : Token.t) -> IMap.add tok.idx tok acc)
              IMap.empty tokens
          in
          let kmask = Bitset.create cap_k in
          List.iter (fun (tok : Token.t) -> Bitset.set kmask tok.idx) tokens;
          let kcount = List.length tokens in
          {
            base with
            total_known = kcount;
            sources =
              NMap.add v
                {
                  count = Some kcount;
                  known;
                  kmask;
                  kcount;
                  complete = true;
                  informed = Bitset.create n;
                  announcers = Bitset.create n;
                }
                NMap.empty;
          })
