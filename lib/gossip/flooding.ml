type state = {
  k : int;
  phase_len : int;
  (* tokens by uid; None = not yet known *)
  known : Token.t option array;
  known_count : int;
}

let knows st uid = st.known.(uid) <> None
let known_count st = st.known_count

let all_complete ~k states =
  Array.for_all (fun st -> st.known_count >= k) states

let learn st (tok : Token.t) =
  if st.known.(tok.uid) <> None then st
  else begin
    let known = Array.copy st.known in
    known.(tok.uid) <- Some tok;
    { st with known; known_count = st.known_count + 1 }
  end

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let intent st ~round =
    let phase = (round - 1) / st.phase_len mod st.k in
    match st.known.(phase) with
    | None -> (st, None)
    | Some tok -> (st, Some (Payload.Token_msg tok))

  let receive st ~round:_ ~inbox =
    List.fold_left
      (fun st (_, msg) ->
        match msg with
        | Payload.Token_msg tok -> learn st tok
        | Payload.Completeness _ | Payload.Request _ | Payload.Walk_msg _
        | Payload.Center_announce ->
            st)
      st inbox

  let progress st = st.known_count
end

let protocol =
  (module P : Engine.Runner_broadcast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ~instance ?phase_len () =
  let n = Instance.n instance in
  let k = Instance.k instance in
  let phase_len = Option.value phase_len ~default:(max 1 n) in
  if phase_len < 1 then invalid_arg "Flooding.init: phase_len must be >= 1";
  Array.init n (fun v ->
      let st =
        {
          k;
          phase_len;
          known = Array.make k None;
          known_count = 0;
        }
      in
      List.fold_left learn st (Instance.tokens_of instance v))
