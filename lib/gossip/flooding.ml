type state = {
  k : int;
  phase_len : int;
  (* Full uid -> token catalog, shared (never mutated) by every node's
     state: the instance fixes the token set up front, so per-node
     knowledge is just a packed bitset over uids instead of a
     Token.t option array copied on every learn. *)
  catalog : Token.t array;
  mask : Dynet.Bitset.t;
  known_count : int;
}

let knows st uid = Dynet.Bitset.mem st.mask uid
let known_count st = st.known_count

let all_complete ~k states =
  Array.for_all (fun st -> st.known_count >= k) states

let learn st (tok : Token.t) =
  if Dynet.Bitset.mem st.mask tok.uid then st
  else
    {
      st with
      mask = Dynet.Bitset.add tok.uid st.mask;
      known_count = st.known_count + 1;
    }

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let intent st ~round =
    let phase = (round - 1) / st.phase_len mod st.k in
    if Dynet.Bitset.mem st.mask phase then
      (st, Some (Payload.Token_msg st.catalog.(phase)))
    else (st, None)

  let receive st ~round:_ ~inbox =
    List.fold_left
      (fun st (_, msg) ->
        match msg with
        | Payload.Token_msg tok -> learn st tok
        | Payload.Completeness _ | Payload.Request _ | Payload.Walk_msg _
        | Payload.Center_announce ->
            st)
      st inbox

  let progress st = st.known_count

  (* The SoA capability: phased flooding is exactly the shape the
     plane kernel specializes, and every law in the spec's contract
     holds by construction — [intent] is read-only, [receive] learns
     only the carried token, [progress] is the mask's cardinal, and
     the shared catalog is immutable. *)
  let plane =
    Some
      {
        Engine.Runner_broadcast.width = (fun st -> st.k);
        phase_of = (fun st ~round -> (round - 1) / st.phase_len mod st.k);
        message = (fun st p -> Payload.Token_msg st.catalog.(p));
        mask = (fun st -> st.mask);
        restate =
          (fun st ~mask ~known -> { st with mask; known_count = known });
      }
end

let protocol =
  (module P : Engine.Runner_broadcast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ~instance ?phase_len () =
  let n = Instance.n instance in
  let k = Instance.k instance in
  let phase_len = Option.value phase_len ~default:(max 1 n) in
  if phase_len < 1 then invalid_arg "Flooding.init: phase_len must be >= 1";
  let catalog = Array.make k (Token.make ~src:0 ~idx:0 ~uid:0) in
  for v = 0 to n - 1 do
    List.iter
      (fun (tok : Token.t) -> catalog.(tok.uid) <- tok)
      (Instance.tokens_of instance v)
  done;
  Array.init n (fun v ->
      let st =
        { k; phase_len; catalog; mask = Dynet.Bitset.create k; known_count = 0 }
      in
      List.fold_left learn st (Instance.tokens_of instance v))
