let log2 x = log x /. log 2.
let logn n = Float.max 1. (log2 (float_of_int n))

let flooding_total ~n ~k = float_of_int n ** 2. *. float_of_int k
let flooding_amortized ~n = float_of_int n ** 2.

let lb_total ~n ~k =
  float_of_int n ** 2. *. float_of_int k /. (logn n ** 2.)

let lb_amortized ~n = float_of_int n ** 2. /. (logn n ** 2.)
let lb_rounds ~n ~k = float_of_int n *. float_of_int k /. logn n

let sparse_broadcaster_threshold ?(c = 1.) ~n () =
  float_of_int n /. (c *. logn n)

let single_source_budget ~n ~k =
  (float_of_int n ** 2.) +. (float_of_int n *. float_of_int k)

let multi_source_budget ~n ~k ~s =
  (float_of_int n ** 2. *. float_of_int s)
  +. (float_of_int n *. float_of_int k)

let stable_rounds ~n ~k = float_of_int n *. float_of_int k

let source_threshold ?(c = 1.) ~n () =
  c *. (float_of_int n ** (2. /. 3.)) *. (logn n ** (5. /. 3.))

let centers_f ?(c = 1.) ~n ~k () =
  let raw =
    c *. sqrt (float_of_int n) *. (float_of_int k ** 0.25)
    *. (logn n ** 1.25)
  in
  Float.min (float_of_int n) (Float.max 1. raw)

let degree_gamma ?(c = 1.) ~n ~f () = c *. float_of_int n *. logn n /. f

let walk_length ?(c = 1.) ~n ~f () =
  c *. (float_of_int n ** 4.) *. (logn n ** 5.) /. (f ** 3.)

let rw_total ?(c = 1.) ~n ~k () =
  c *. (float_of_int n ** 2.5) *. (float_of_int k ** 0.25)
  *. (logn n ** 1.25)

let rw_amortized ?(c = 1.) ~n ~k () =
  c *. (float_of_int n ** 2.5) *. (logn n ** 1.25)
  /. (float_of_int k ** 0.75)

type table1_row = {
  label : string;
  k_of_n : n:int -> int;
  amortized_of_n : n:int -> float;
  paper_bound : string;
}

let table1 =
  [
    {
      label = "k = n^(2/3) log^(5/3) n";
      k_of_n =
        (fun ~n ->
          let k =
            int_of_float
              ((float_of_int n ** (2. /. 3.)) *. (logn n ** (5. /. 3.)))
          in
          max 1 (min k ((n * n) - 1)));
      amortized_of_n = (fun ~n -> float_of_int n ** 2.);
      paper_bound = "O(n^2)";
    };
    {
      label = "k = n";
      k_of_n = (fun ~n -> n);
      amortized_of_n =
        (fun ~n -> (float_of_int n ** 1.75) *. (logn n ** 1.25));
      paper_bound = "O(n^(7/4) log^(5/4) n)";
    };
    {
      label = "k = n^(3/2)";
      k_of_n = (fun ~n -> int_of_float (float_of_int n ** 1.5));
      amortized_of_n =
        (fun ~n -> (float_of_int n ** 1.375) *. (logn n ** 1.25));
      paper_bound = "O(n^(11/8) log^(5/4) n)";
    };
    {
      label = "k -> n^2 (k = o(n^2))";
      k_of_n = (fun ~n -> max 1 ((n * n / 2) - 1));
      amortized_of_n = (fun ~n -> float_of_int n *. (logn n ** 1.25));
      paper_bound = "O(n log^(5/4) n)";
    };
  ]
