(** Algorithm 2: Oblivious-Multi-Source-Unicast (Section 3.2.2).

    Against an oblivious adversary, with many sources ([s] above the
    [n^{2/3} log^{5/3} n] threshold) and [k = o(n²)] tokens:

    + {e Phase 1} — every node self-elects as a {e center} with
      probability [f/n] (with [f = n^{1/2} k^{1/4} log^{5/4} n] up to a
      tunable constant); all tokens random-walk until they are owned by
      centers ({!Rw_phase}).
    + {e Phase 2} — the centers, acting as sources of the tokens they
      collected ({!Token.relabel}), run Multi-Source-Unicast.

    Below the source threshold the algorithm is just
    Multi-Source-Unicast (the paper's "Remark").

    Theorem 3.8: total messages O(n^{5/2} k^{1/4} log^{5/4} n), hence
    amortized O(n^{5/2} log^{5/4} n / k^{3/4}) — Table 1's subquadratic
    regime.

    Deviations needed to make the asymptotics executable (recorded in
    DESIGN.md): leading constants of [f] and [γ] are parameters;
    phase 1 ends early once every token has settled (the paper runs a
    fixed ℓ = Θ(k^{1/4} n^{5/2} log^{9/4} n) rounds, astronomically
    conservative at simulable sizes) and is round-capped; if sampling
    elects no center, one uniformly random center is forced (the paper
    has [f ≫ 1] so this is a measure-zero regime for it); if phase 1
    hits its cap, the nodes still holding tokens simply join the
    centers as phase-2 sources, so dissemination remains correct. *)

type result = {
  centers : int;  (** Number of elected centers. *)
  skipped_phase1 : bool;
      (** True when [s] was under the threshold and the run was plain
          Multi-Source-Unicast. *)
  phase1_rounds : int;
  phase1_settled : bool;  (** All tokens reached centers before the cap. *)
  phase2_rounds : int;
  completed : bool;  (** Every node got every token. *)
  ledger : Engine.Ledger.t;  (** Merged over both phases. *)
  paper_messages : int;
      (** Total excluding [Center]-class announcements — the quantity
          Theorem 3.8 bounds. *)
}

val run :
  instance:Instance.t ->
  schedule:Adversary.Schedule.t ->
  seed:int ->
  ?const_f:float ->
  ?const_gamma:float ->
  ?force_rw:bool ->
  ?phase1_cap:int ->
  ?phase2_cap:int ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  result
(** [const_f] and [const_gamma] (default 1.0) scale [f] and [γ];
    [force_rw] (default false) runs both phases even under the source
    threshold; caps default to [50·n + 1000] (phase 1) and
    [4·n·k + 4·n²] (phase 2).

    [obs] (default {!Obs.Sink.null}) is forwarded to both engine runs
    and additionally receives an [Obs.Trace.Phase] marker before each
    phase ([{name = "random-walk"}], then [{name = "multi-source"}]
    carrying the phase-1 round count; a below-threshold run emits only
    the multi-source marker).  Each phase's engine trace restarts its
    round numbering at 1 — the phase markers are the boundaries.

    [prof] (default {!Obs.Span.null}) is likewise forwarded to both
    engine runs; each phase's rounds additionally nest under an
    [algo-phase]-category span named [random-walk] or
    [multi-source]. *)
