type unicast_env =
  | Oblivious of Adversary.Schedule.t
  | Request_cutting of { seed : int; cut_prob : float }

let default_unicast_cap ~n ~k = (4 * n * k) + (4 * n * n) + 64
let default_broadcast_cap ~n ~k = (n * k) + n + 64

let unicast_adversary ~n = function
  | Oblivious schedule -> Adversary.Schedule.unicast schedule
  | Request_cutting { seed; cut_prob } ->
      Adversary.Request_cutter.adversary ~seed ~n ~cut_prob

let single_source ~instance ~env ?max_rounds ?config ?obs () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_unicast_cap ~n ~k)
  in
  let states = Single_source.init ?config ~instance () in
  Engine.Runner_unicast.run Single_source.protocol ?obs ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Single_source.all_complete ~k)
    ()

let multi_source ~instance ~env ?max_rounds ?source_order ?seed ?obs () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_unicast_cap ~n ~k)
  in
  let states = Multi_source.init ?source_order ?seed ~instance () in
  Engine.Runner_unicast.run Multi_source.protocol ?obs ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Multi_source.all_complete ~k)
    ()

let flooding ~instance ~schedule ?phase_len ?max_rounds ?obs () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let states = Flooding.init ~instance ?phase_len () in
  Engine.Runner_broadcast.run Flooding.protocol ?obs ~states
    ~adversary:(Adversary.Schedule.broadcast schedule)
    ~max_rounds
    ~stop:(Flooding.all_complete ~k)
    ()

let token_uid_of_msg = function
  | Payload.Token_msg tok -> Some tok.Token.uid
  | Payload.Completeness _ | Payload.Request _ | Payload.Walk_msg _
  | Payload.Center_announce ->
      None

let flooding_vs_lower_bound ~instance ~seed ?max_rounds ?obs () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let lb =
    Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed) ~n ~k
  in
  let adversary =
    Adversary.Broadcast_lb.to_engine lb ~knows:Flooding.knows
      ~token_of:token_uid_of_msg
  in
  let states = Flooding.init ~instance () in
  let result, states =
    Engine.Runner_broadcast.run Flooding.protocol ?obs ~states ~adversary
      ~max_rounds
      ~stop:(Flooding.all_complete ~k)
      ()
  in
  (result, states, lb)

let greedy_vs_lower_bound ~instance ~policy ~seed ?max_rounds ?obs () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let lb =
    Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:(seed lxor 0x3c)) ~n ~k
  in
  let adversary =
    Adversary.Broadcast_lb.to_engine lb ~knows:Greedy_bcast.knows
      ~token_of:token_uid_of_msg
  in
  let states = Greedy_bcast.init ~instance ~policy ~seed () in
  let result, states =
    Engine.Runner_broadcast.run Greedy_bcast.protocol ?obs ~states ~adversary
      ~max_rounds
      ~stop:(Greedy_bcast.all_complete ~k)
      ()
  in
  (result, states, lb)

let random_push ~instance ~env ~seed ?max_rounds ?obs () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(4 * default_unicast_cap ~n ~k)
  in
  let states = Random_push.init ~instance ~seed in
  Engine.Runner_unicast.run Random_push.protocol ?obs ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Random_push.all_complete ~k)
    ()

let leader_election ~n ~env ?max_rounds ?obs () =
  let max_rounds = Option.value max_rounds ~default:((8 * n * n) + 64) in
  let states = Leader_election.init ~n in
  Engine.Runner_unicast.run Leader_election.protocol ?obs ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Leader_election.elected ~n)
    ()

let coded_broadcast ~instance ~schedule ~seed ?max_rounds ?obs () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let states = Coded_bcast.init ~instance ~seed in
  Engine.Runner_broadcast.run Coded_bcast.protocol ?obs ~states
    ~adversary:(Adversary.Schedule.broadcast schedule)
    ~max_rounds
    ~stop:(Coded_bcast.all_decoded ~k)
    ()

let oblivious_rw = Oblivious_rw.run
