type unicast_env =
  | Oblivious of Adversary.Schedule.t
  | Request_cutting of { seed : int; cut_prob : float }

let default_unicast_cap ~n ~k = (4 * n * k) + (4 * n * n) + 64
let default_broadcast_cap ~n ~k = (n * k) + n + 64

let unicast_adversary ~n = function
  | Oblivious schedule -> Adversary.Schedule.unicast schedule
  | Request_cutting { seed; cut_prob } ->
      Adversary.Request_cutter.adversary ~seed ~n ~cut_prob

let single_source ~instance ~env ?(engine = Engine.Default.engine)
    ?max_rounds ?stall_after ?cancel ?config ?faults ?obs ?prof ?on_graph () =
  let module E = (val engine : Engine.Engine_sig.ENGINE) in
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_unicast_cap ~n ~k)
  in
  let states = Single_source.init ?config ~instance () in
  E.Unicast.run Single_source.protocol ?obs ?faults ?prof ?on_graph
    ?stall_after ?cancel
    ~target_progress:(n * k) ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Single_source.all_complete ~k)
    ()

let multi_source ~instance ~env ?(engine = Engine.Default.engine) ?max_rounds
    ?stall_after ?cancel ?source_order ?seed ?faults ?obs ?prof ?on_graph () =
  let module E = (val engine : Engine.Engine_sig.ENGINE) in
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_unicast_cap ~n ~k)
  in
  let states = Multi_source.init ?source_order ?seed ~instance () in
  E.Unicast.run Multi_source.protocol ?obs ?faults ?prof ?on_graph
    ?stall_after ?cancel
    ~target_progress:(n * k) ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Multi_source.all_complete ~k)
    ()

(* {2 Reliable (ack + retransmit) variants} *)

module Reliable_single = Reliable.Make ((val Single_source.protocol))
module Reliable_multi = Reliable.Make ((val Multi_source.protocol))

(* Wire the wrapper's retransmit hook into the trace stream and tally
   wrapper activity into the run's fault counts, so degraded runs
   report their self-healing work alongside the faults it masked. *)
let reliable_obs_hook obs =
  match obs with
  | None -> None
  | Some sink when Obs.Sink.is_null sink -> None
  | Some sink ->
      Some
        (fun ~round ~src ~dst ->
          Obs.Sink.emit sink
            (Obs.Trace.Fault
               { round; kind = "retransmit"; node = src; dst = Some dst;
                 cls = None }))

let note_retransmits (result : Engine.Run_result.t) ~retransmits =
  (match result.Engine.Run_result.fault_counts with
  | Some c -> c.Faults.Counts.retransmits <- retransmits
  | None -> ());
  result

let reliable_single_source ~instance ~env ?max_rounds ?config ?rto ?backoff
    ?faults ?obs ?prof () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(2 * default_unicast_cap ~n ~k)
  in
  let states =
    Reliable_single.wrap ?rto ?backoff
      ?on_retransmit:(reliable_obs_hook obs)
      (Single_source.init ?config ~instance ())
  in
  let result, states =
    Engine.Runner_unicast.run Reliable_single.protocol ?obs ?faults ?prof
      ~target_progress:(n * k) ~states
      ~adversary:(unicast_adversary ~n env)
      ~max_rounds
      ~stop:(fun sts ->
        Single_source.all_complete ~k (Array.map Reliable_single.inner sts))
      ()
  in
  let retransmits =
    Array.fold_left (fun acc st -> acc + Reliable_single.retransmits st) 0
      states
  in
  ( note_retransmits result ~retransmits,
    Array.map Reliable_single.inner states,
    retransmits )

let reliable_multi_source ~instance ~env ?max_rounds ?source_order ?seed ?rto
    ?backoff ?faults ?obs ?prof () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(2 * default_unicast_cap ~n ~k)
  in
  let states =
    Reliable_multi.wrap ?rto ?backoff
      ?on_retransmit:(reliable_obs_hook obs)
      (Multi_source.init ?source_order ?seed ~instance ())
  in
  let result, states =
    Engine.Runner_unicast.run Reliable_multi.protocol ?obs ?faults ?prof
      ~target_progress:(n * k) ~states
      ~adversary:(unicast_adversary ~n env)
      ~max_rounds
      ~stop:(fun sts ->
        Multi_source.all_complete ~k (Array.map Reliable_multi.inner sts))
      ()
  in
  let retransmits =
    Array.fold_left (fun acc st -> acc + Reliable_multi.retransmits st) 0
      states
  in
  ( note_retransmits result ~retransmits,
    Array.map Reliable_multi.inner states,
    retransmits )

let flooding ~instance ~schedule ?(engine = Engine.Default.engine) ?phase_len
    ?max_rounds ?stall_after ?cancel ?faults ?obs ?prof ?on_graph () =
  let module E = (val engine : Engine.Engine_sig.ENGINE) in
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let states = Flooding.init ~instance ?phase_len () in
  E.Broadcast.run Flooding.protocol ?obs ?faults ?prof ?on_graph ?stall_after
    ?cancel
    ~target_progress:(n * k) ~states
    ~adversary:(Adversary.Schedule.broadcast schedule)
    ~max_rounds
    ~stop:(Flooding.all_complete ~k)
    ()

let token_uid_of_msg = function
  | Payload.Token_msg tok -> Some tok.Token.uid
  | Payload.Completeness _ | Payload.Request _ | Payload.Walk_msg _
  | Payload.Center_announce ->
      None

let flooding_vs_lower_bound ~instance ~seed ?max_rounds ?obs ?prof () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let lb =
    Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed) ~n ~k
  in
  let adversary =
    Adversary.Broadcast_lb.to_engine lb ~knows:Flooding.knows
      ~token_of:token_uid_of_msg
  in
  let states = Flooding.init ~instance () in
  let result, states =
    Engine.Runner_broadcast.run Flooding.protocol ?obs ?prof ~states
      ~adversary
      ~max_rounds
      ~stop:(Flooding.all_complete ~k)
      ()
  in
  (result, states, lb)

let greedy_vs_lower_bound ~instance ~policy ~seed ?max_rounds ?obs ?prof () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let lb =
    Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:(seed lxor 0x3c)) ~n ~k
  in
  let adversary =
    Adversary.Broadcast_lb.to_engine lb ~knows:Greedy_bcast.knows
      ~token_of:token_uid_of_msg
  in
  let states = Greedy_bcast.init ~instance ~policy ~seed () in
  let result, states =
    Engine.Runner_broadcast.run Greedy_bcast.protocol ?obs ?prof ~states
      ~adversary
      ~max_rounds
      ~stop:(Greedy_bcast.all_complete ~k)
      ()
  in
  (result, states, lb)

let random_push ~instance ~env ~seed ?max_rounds ?faults ?obs ?prof () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(4 * default_unicast_cap ~n ~k)
  in
  let states = Random_push.init ~instance ~seed in
  Engine.Runner_unicast.run Random_push.protocol ?obs ?faults ?prof
    ~target_progress:(n * k) ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Random_push.all_complete ~k)
    ()

let leader_election ~n ~env ?max_rounds ?faults ?obs ?prof () =
  let max_rounds = Option.value max_rounds ~default:((8 * n * n) + 64) in
  let states = Leader_election.init ~n in
  Engine.Runner_unicast.run Leader_election.protocol ?obs ?faults ?prof
    ~target_progress:n ~states
    ~adversary:(unicast_adversary ~n env)
    ~max_rounds
    ~stop:(Leader_election.elected ~n)
    ()

let coded_broadcast ~instance ~schedule ~seed ?max_rounds ?faults ?obs ?prof
    () =
  let n = Instance.n instance and k = Instance.k instance in
  let max_rounds =
    Option.value max_rounds ~default:(default_broadcast_cap ~n ~k)
  in
  let states = Coded_bcast.init ~instance ~seed in
  Engine.Runner_broadcast.run Coded_bcast.protocol ?obs ?faults ?prof
    ~target_progress:(n * k) ~states
    ~adversary:(Adversary.Schedule.broadcast schedule)
    ~max_rounds
    ~stop:(Coded_bcast.all_decoded ~k)
    ()

let oblivious_rw = Oblivious_rw.run
