(** Reliable-delivery wrapper: acks, retransmits, exponential backoff.

    [Make (P)] turns any unicast {!Engine.Runner_unicast.PROTOCOL}
    into one that tolerates the message faults of {!Faults.Plan} —
    loss, duplication, and bounded delay — by the classic ARQ recipe:

    - every inner message is wrapped as [Data] with a per-sender
      sequence number and kept outstanding until the destination acks
      it; acks are [Control]-class messages, queued in [receive] and
      sent the next round the destination is a neighbor;
    - an unacked message is retransmitted once its per-message timeout
      (initially [rto] rounds) expires and the destination is again a
      neighbor; each transmission multiplies the timeout by [backoff]
      (capped at [max_rto]) so a dead path backs off instead of
      flooding;
    - receivers deduplicate on [(sender, seq)], so the inner protocol
      sees each inner message {e exactly once} per incarnation however
      often the wire duplicated or the wrapper retransmitted it;
    - the engine's one-token-per-edge-per-round budget is respected:
      at most one [Token]/[Walk]-class data message is (re)sent to a
      given destination per round, oldest outstanding first; the rest
      wait a round.

    The wrapper masks {e message} faults.  Crash-restart faults reset
    a node to its initial wrapper state (empty outstanding set, fresh
    sequence numbers), so a restarted sender can reuse sequence
    numbers its peers already saw — delivery is then best-effort for
    the new incarnation.  DESIGN.md "Faults" records this limit.

    Under a loss rate ≤ 0.2 on 3-edge-stable schedules this completes
    Single/Multi-Source-Unicast runs that the bare protocols fail
    (the EXPERIMENTS.md robustness-tax sweep quantifies the message
    inflation paid for it). *)

module Make (P : Engine.Runner_unicast.PROTOCOL) : sig
  type msg
  (** [Data] (wrapped inner message, classified as its payload) or
      [Ack] ([Control] class). *)

  type state

  val protocol :
    (module Engine.Runner_unicast.PROTOCOL
       with type state = state
        and type msg = msg)

  val wrap :
    ?rto:int ->
    ?backoff:float ->
    ?max_rto:int ->
    ?on_retransmit:(round:int -> src:Dynet.Node_id.t -> dst:Dynet.Node_id.t -> unit) ->
    P.state array ->
    state array
  (** Wrap the inner initial states.  [rto] (default 2 rounds — one
      round for delivery plus one for the ack) is the initial
      retransmit timeout, [backoff] (default 2.) the per-transmission
      multiplier, [max_rto] (default 64) the timeout cap.
      [on_retransmit] fires once per retransmission (the runners use
      it to emit [Obs.Trace.Fault {kind = "retransmit"}] events).
      @raise Invalid_argument if [rto < 1], [backoff < 1.], or
      [max_rto < rto]. *)

  val inner : state -> P.state
  (** The wrapped protocol state (stop predicates and assertions look
      through the wrapper). *)

  val retransmits : state -> int
  (** Lifetime retransmissions this node performed. *)

  val acks_sent : state -> int
  (** Lifetime acks this node sent. *)
end
