open Dynet.Ops

module IMap = Map.Make (Int)
module Bitset = Dynet.Bitset

type priority = Paper_priority | Reversed_priority | No_priority
type config = { priority : priority; dedup_pending : bool }

let default_config = { priority = Paper_priority; dedup_pending = true }

type state = {
  me : Dynet.Node_id.t;
  config : config;
  source : Dynet.Node_id.t;
  k : int option;  (* learned from the first completeness announcement *)
  known : Token.t IMap.t;  (* by idx — kept for serving requests *)
  kmask : Bitset.t;  (* packed "have idx" bits, capacity = instance k *)
  kcount : int;  (* cached IMap.cardinal known *)
  complete : bool;
  informed : Bitset.t;  (* R_v: whom I told about my completeness *)
  known_complete : Bitset.t;  (* S_v: who told me about theirs *)
  edges : Edge_history.t;
  pending : (Dynet.Node_id.t * int) list;  (* requests sent last round *)
  to_serve : (Dynet.Node_id.t * int) list;  (* requests received last round *)
  requests_sent : int;
}

let is_complete st = st.complete
let known_count st = st.kcount

let all_complete ~k states =
  Array.for_all (fun st -> st.kcount >= k) states

let requests_sent st = st.requests_sent

let refresh_edges st ~round ~neighbors =
  { st with edges = Edge_history.refresh st.edges ~round ~neighbors }

let complete_send st ~neighbors =
  let msgs = ref [] in
  let informed = Bitset.copy st.informed in
  let k = Option.get st.k in
  Array.iter
    (fun w ->
      if not (Bitset.mem informed w) then begin
        Bitset.set informed w;
        msgs := (w, Payload.Completeness { source = st.source; count = k }) :: !msgs
      end
      else
        match List.assoc_opt w st.to_serve with
        | Some idx ->
            let tok = IMap.find idx st.known in
            msgs := (w, Payload.Token_msg tok) :: !msgs
        | None -> ())
    neighbors;
  ({ st with informed; to_serve = []; pending = [] }, List.rev !msgs)

let incomplete_send st ~round ~neighbors =
  match st.k with
  | None -> ({ st with pending = []; to_serve = [] }, [])
  | Some k ->
      let neighbor_set = Bitset.of_array (Bitset.capacity st.informed) neighbors in
      (* Tokens requested last round whose edge survived will arrive at
         the end of this round; do not re-request them (Algorithm 1's
         redundancy avoidance — ablatable). *)
      let arriving =
        if not st.config.dedup_pending then []
        else
          List.filter_map
            (fun (w, idx) ->
              if Bitset.mem neighbor_set w then Some idx else None)
            st.pending
      in
      (* Eligible edges lead to known-complete neighbors; the paper's
         priority order is new > idle > contributive. *)
      let eligible =
        Array.to_list neighbors
        |> List.filter (fun w -> Bitset.mem st.known_complete w)
        |> List.map (fun w -> (w, Edge_history.categorize st.edges ~round w))
      in
      let in_category c =
        List.filter_map
          (fun (w, cat) -> if Edge_history.category_equal cat c then Some w else None)
          eligible
      in
      let ordered =
        match st.config.priority with
        | Paper_priority ->
            in_category Edge_history.New
            @ in_category Edge_history.Idle
            @ in_category Edge_history.Contributive
        | Reversed_priority ->
            in_category Edge_history.Contributive
            @ in_category Edge_history.Idle
            @ in_category Edge_history.New
        | No_priority -> List.map fst eligible
      in
      (* Walk the missing idxs lazily off the knowledge bitset instead
         of materialising [List.init k |> filter]: the scan advances
         monotonically, so pairing with the ordered edges reproduces
         the eager zip exactly. *)
      let rec next_missing idx =
        let idx = Bitset.next_clear st.kmask idx in
        if idx >= k then None
        else if List.mem idx arriving then next_missing (idx + 1)
        else Some idx
      in
      let rec assign acc idx = function
        | [] -> List.rev acc
        | w :: ws -> (
            match next_missing idx with
            | None -> List.rev acc
            | Some idx -> assign ((w, idx) :: acc) (idx + 1) ws)
      in
      let requests = assign [] 0 ordered in
      let msgs =
        List.map
          (fun (w, idx) -> (w, Payload.Request { source = st.source; idx }))
          requests
      in
      ( {
          st with
          pending = requests;
          to_serve = [];
          requests_sent = st.requests_sent + List.length requests;
        },
        msgs )

let learn st (tok : Token.t) ~from ~k_hint =
  if Bitset.mem st.kmask tok.idx then st
  else begin
    let known = IMap.add tok.idx tok st.known in
    let kmask = Bitset.add tok.idx st.kmask in
    let kcount = st.kcount + 1 in
    Check.bitset_cached ~what:"Single_source: kcount desynced from kmask"
      ~cached:kcount kmask;
    let edges = Edge_history.mark_contributed st.edges from in
    let k = match st.k with Some _ as k -> k | None -> k_hint in
    let complete = match k with Some k -> kcount = k | None -> false in
    { st with known; kmask; kcount; edges; k; complete }
  end

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round ~neighbors =
    let st = refresh_edges st ~round ~neighbors in
    if st.complete then complete_send st ~neighbors
    else incomplete_send st ~round ~neighbors

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (u, msg) ->
        match msg with
        | Payload.Completeness { source = _; count } ->
            let st =
              { st with known_complete = Bitset.add u st.known_complete }
            in
            (match st.k with
            | Some k ->
                assert (k = count);
                st
            | None -> { st with k = Some count })
        | Payload.Token_msg tok -> learn st tok ~from:u ~k_hint:None
        | Payload.Request { source = _; idx } ->
            if st.complete then { st with to_serve = (u, idx) :: st.to_serve }
            else st
        | Payload.Walk_msg _ | Payload.Center_announce -> st)
      st inbox

  let progress st = st.kcount
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ?(config = default_config) ~instance () =
  (match Instance.sources instance with
  | [ _ ] -> ()
  | _ -> invalid_arg "Single_source.init: instance must have exactly one source");
  let source = List.hd (Instance.sources instance) in
  let n = Instance.n instance in
  let k = Instance.k instance in
  Array.init n (fun v ->
      let base =
        {
          me = v;
          config;
          source;
          k = None;
          known = IMap.empty;
          kmask = Bitset.create k;
          kcount = 0;
          complete = false;
          informed = Bitset.create n;
          known_complete = Bitset.create n;
          edges = Edge_history.create ~n;
          pending = [];
          to_serve = [];
          requests_sent = 0;
        }
      in
      if v = source then
        let tokens = Instance.tokens_of instance v in
        let known =
          List.fold_left
            (fun acc (tok : Token.t) -> IMap.add tok.idx tok acc)
            IMap.empty tokens
        in
        let kmask = Bitset.create k in
        List.iter (fun (tok : Token.t) -> Bitset.set kmask tok.idx) tokens;
        {
          base with
          k = Some k;
          known;
          kmask;
          kcount = List.length tokens;
          complete = true;
        }
      else base)
