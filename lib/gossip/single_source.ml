module IMap = Map.Make (Int)
module NSet = Dynet.Node_id.Set
module NMap = Dynet.Node_id.Map

(* Per-adjacent-edge history, kept only for currently present edges.
   [inserted_at] is the round the current presence run started (as
   observed locally); [contributed] records whether a new token crossed
   the edge since that insertion. *)
type edge_info = { inserted_at : int; contributed : bool }

type priority = Paper_priority | Reversed_priority | No_priority
type config = { priority : priority; dedup_pending : bool }

let default_config = { priority = Paper_priority; dedup_pending = true }

type state = {
  me : Dynet.Node_id.t;
  config : config;
  source : Dynet.Node_id.t;
  k : int option;  (* learned from the first completeness announcement *)
  known : Token.t IMap.t;  (* by idx *)
  complete : bool;
  informed : NSet.t;  (* R_v: whom I told about my completeness *)
  known_complete : NSet.t;  (* S_v: who told me about theirs *)
  edges : edge_info NMap.t;
  pending : (Dynet.Node_id.t * int) list;  (* requests sent last round *)
  to_serve : (Dynet.Node_id.t * int) list;  (* requests received last round *)
  requests_sent : int;
}

let is_complete st = st.complete
let known_count st = IMap.cardinal st.known

let all_complete ~k states =
  Array.for_all (fun st -> known_count st >= k) states

let requests_sent st = st.requests_sent

(* Refresh the edge map against this round's neighbor set: departed
   edges are forgotten (a re-insertion starts a fresh run), arrivals
   are stamped with the current round. *)
let refresh_edges st ~round ~neighbors =
  let edges =
    Array.fold_left
      (fun acc w ->
        match NMap.find_opt w st.edges with
        | Some info -> NMap.add w info acc
        | None -> NMap.add w { inserted_at = round; contributed = false } acc)
      NMap.empty neighbors
  in
  { st with edges }

type category = New | Idle | Contributive

let categorize ~round info =
  if info.inserted_at >= round - 1 then New
  else if info.contributed then Contributive
  else Idle

let complete_send st ~neighbors =
  let msgs = ref [] in
  let informed = ref st.informed in
  let k = Option.get st.k in
  Array.iter
    (fun w ->
      if not (NSet.mem w !informed) then begin
        informed := NSet.add w !informed;
        msgs := (w, Payload.Completeness { source = st.source; count = k }) :: !msgs
      end
      else
        match List.assoc_opt w st.to_serve with
        | Some idx ->
            let tok = IMap.find idx st.known in
            msgs := (w, Payload.Token_msg tok) :: !msgs
        | None -> ())
    neighbors;
  ({ st with informed = !informed; to_serve = []; pending = [] }, List.rev !msgs)

let incomplete_send st ~round ~neighbors =
  match st.k with
  | None -> ({ st with pending = []; to_serve = [] }, [])
  | Some k ->
      let neighbor_set =
        Array.fold_left (fun acc w -> NSet.add w acc) NSet.empty neighbors
      in
      (* Tokens requested last round whose edge survived will arrive at
         the end of this round; do not re-request them (Algorithm 1's
         redundancy avoidance — ablatable). *)
      let arriving =
        if not st.config.dedup_pending then []
        else
          List.filter_map
            (fun (w, idx) ->
              if NSet.mem w neighbor_set then Some idx else None)
            st.pending
      in
      let missing =
        List.init k (fun idx -> idx)
        |> List.filter (fun idx ->
               (not (IMap.mem idx st.known)) && not (List.mem idx arriving))
      in
      (* Eligible edges lead to known-complete neighbors; the paper's
         priority order is new > idle > contributive. *)
      let eligible =
        Array.to_list neighbors
        |> List.filter (fun w -> NSet.mem w st.known_complete)
        |> List.map (fun w -> (w, categorize ~round (NMap.find w st.edges)))
      in
      let in_category c =
        List.filter_map (fun (w, cat) -> if cat = c then Some w else None)
          eligible
      in
      let ordered =
        match st.config.priority with
        | Paper_priority ->
            in_category New @ in_category Idle @ in_category Contributive
        | Reversed_priority ->
            in_category Contributive @ in_category Idle @ in_category New
        | No_priority -> List.map fst eligible
      in
      let rec assign acc = function
        | [], _ | _, [] -> List.rev acc
        | idx :: missing, w :: edges -> assign ((w, idx) :: acc) (missing, edges)
      in
      let requests = assign [] (missing, ordered) in
      let msgs =
        List.map
          (fun (w, idx) -> (w, Payload.Request { source = st.source; idx }))
          requests
      in
      ( {
          st with
          pending = requests;
          to_serve = [];
          requests_sent = st.requests_sent + List.length requests;
        },
        msgs )

let learn st (tok : Token.t) ~from ~k_hint =
  if IMap.mem tok.idx st.known then st
  else begin
    let known = IMap.add tok.idx tok st.known in
    let edges =
      match NMap.find_opt from st.edges with
      | Some info -> NMap.add from { info with contributed = true } st.edges
      | None -> st.edges
    in
    let k = match st.k with Some _ as k -> k | None -> k_hint in
    let complete =
      match k with Some k -> IMap.cardinal known = k | None -> false
    in
    { st with known; edges; k; complete }
  end

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round ~neighbors =
    let st = refresh_edges st ~round ~neighbors in
    if st.complete then complete_send st ~neighbors
    else incomplete_send st ~round ~neighbors

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (u, msg) ->
        match msg with
        | Payload.Completeness { source = _; count } ->
            let st =
              { st with known_complete = NSet.add u st.known_complete }
            in
            (match st.k with
            | Some k ->
                assert (k = count);
                st
            | None -> { st with k = Some count })
        | Payload.Token_msg tok -> learn st tok ~from:u ~k_hint:None
        | Payload.Request { source = _; idx } ->
            if st.complete then { st with to_serve = (u, idx) :: st.to_serve }
            else st
        | Payload.Walk_msg _ | Payload.Center_announce -> st)
      st inbox

  let progress st = known_count st
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ?(config = default_config) ~instance () =
  (match Instance.sources instance with
  | [ _ ] -> ()
  | _ -> invalid_arg "Single_source.init: instance must have exactly one source");
  let source = List.hd (Instance.sources instance) in
  let k = Instance.k instance in
  Array.init (Instance.n instance) (fun v ->
      let base =
        {
          me = v;
          config;
          source;
          k = None;
          known = IMap.empty;
          complete = false;
          informed = NSet.empty;
          known_complete = NSet.empty;
          edges = NMap.empty;
          pending = [];
          to_serve = [];
          requests_sent = 0;
        }
      in
      if v = source then
        let known =
          List.fold_left
            (fun acc (tok : Token.t) -> IMap.add tok.idx tok acc)
            IMap.empty
            (Instance.tokens_of instance v)
        in
        { base with k = Some k; known; complete = true }
      else base)
