(** The concrete wire messages shared by all protocols in this library.

    Every message fits the model's budget — a constant number of tokens
    plus [O(log n)] additional bits (Section 1.3):
    token payloads carry one token; announcements and requests carry
    one identifier and one integer. *)

type t =
  | Token_msg of Token.t
      (** A token copy (dissemination) — type 1 of Theorem 3.1. *)
  | Completeness of { source : Dynet.Node_id.t; count : int }
      (** "I am complete with respect to [source], which owns [count]
          tokens" — type 2.  Carrying [count] is how non-source nodes
          learn how many tokens to request; [O(log n)] bits for
          polynomially many tokens. *)
  | Request of { source : Dynet.Node_id.t; idx : int }
      (** "Send me token [idx] of [source]" — type 3. *)
  | Walk_msg of Token.t
      (** A token moving (not copying) one random-walk step
          (Algorithm 2, phase 1). *)
  | Center_announce
      (** "I am a center" (Algorithm 2); see {!Engine.Msg_class.Center}
          for how it is accounted. *)

val classify : t -> Engine.Msg_class.t

val bits : n:int -> k:int -> t -> int
(** Size of the message in bits under the model of Section 1.3: ids
    and counters cost [⌈log₂ n⌉] / [⌈log₂ k⌉] bits, a token payload
    costs [token_bits] (a modelling constant, default 64 — "token
    contents"; the model allows any constant number of tokens per
    message).  Used by the bit-complexity comparisons (e.g. E12, where
    network coding wins rounds but pays k-bit coefficient vectors). *)

val token_bits : int
(** The modelled payload size of one token (64). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
