(** One-call experiment runners: protocol × adversary × instance.

    This is the library's front door.  Each function wires a protocol
    to an adversary and an instance, picks sound default round caps
    (generous multiples of the paper's proved round bounds), runs the
    engine, and returns the {!Engine.Run_result.t} plus the final node
    states for inspection.

    Every runner forwards an optional [?obs] event sink to the engine
    (default {!Obs.Sink.null}, costing nothing); pass
    {!Obs.Sink.Memory} or {!Obs.Sink.Jsonl} to capture the per-round
    {!Obs.Trace} stream.

    Every runner also forwards an optional [?prof] span profiler to
    the engine (default {!Obs.Span.null}, costing one hoisted boolean
    test); pass an {!Obs.Span.create}d profiler to capture
    hierarchical round/phase spans — see the engine docs for the span
    tree.

    Runners on the schedule-driven engines likewise forward an
    optional [?faults] plan (default {!Faults.Plan.none}, costing
    nothing): pass a {!Faults.Plan.make} to inject message loss /
    duplication / delay and node crash-restart.  Each such runner
    declares its full-dissemination progress target to the engine, so
    capped runs come back as [Partial] with a coverage fraction
    instead of a bare failure bit.  The lower-bound runners
    ({!flooding_vs_lower_bound}, {!greedy_vs_lower_bound}) model a
    worst-case {e adversary}, not a faulty {e environment}, and take
    no fault plan.

    The workhorse runners ({!single_source}, {!multi_source},
    {!flooding}) also forward the engines' [?on_graph] recorder hook,
    so {!Scenario.Record} (in [lib/scenario]) can capture the realized
    round-graph sequence of any run — including adaptive environments
    like the request-cutter — into a replayable trace.

    The workhorse runners are additionally {e engine-parametric}: the
    optional [?engine] (default {!Engine.Default.engine}) selects the
    {!Engine.Engine_sig.ENGINE} implementation that executes the run —
    pass {!Engine.Reference.engine} for the pseudocode-faithful
    baseline the differential fuzzer checks against.  They also
    forward the engines' [?stall_after] livelock window, which
    {!Scenario.Runner} arms on looped-trace environments so a
    deterministic protocol limit-cycling against a periodic schedule
    reports [Stalled] instead of spinning to its round cap, and the
    engines' [?cancel] cooperative-cancellation poll, which the serve
    scheduler uses to stop a running job at the next round boundary
    with a [Cancelled] outcome. *)

type unicast_env =
  | Oblivious of Adversary.Schedule.t
      (** A pre-committed topology schedule. *)
  | Request_cutting of { seed : int; cut_prob : float }
      (** The adaptive {!Adversary.Request_cutter}. *)

val default_unicast_cap : n:int -> k:int -> int
(** [4nk + 4n² + 64]: well above the O(nk) bound of Theorems 3.4/3.6,
    with slack for unstable schedules. *)

val default_broadcast_cap : n:int -> k:int -> int
(** [nk + n + 64]: above flooding's nk guarantee. *)

val single_source :
  instance:Instance.t ->
  env:unicast_env ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  ?max_rounds:int ->
  ?stall_after:int ->
  ?cancel:(unit -> bool) ->
  ?config:Single_source.config ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
  unit ->
  Engine.Run_result.t * Single_source.state array
(** Algorithm 1 ([config] defaults to the paper's behaviour; the other
    configurations exist for the ablation bench).
    @raise Invalid_argument on multi-source instances. *)

val multi_source :
  instance:Instance.t ->
  env:unicast_env ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  ?max_rounds:int ->
  ?stall_after:int ->
  ?cancel:(unit -> bool) ->
  ?source_order:Multi_source.source_order ->
  ?seed:int ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
  unit ->
  Engine.Run_result.t * Multi_source.state array
(** [source_order] defaults to the paper's min-source rule; the random
    alternative exists for the ablation bench. *)

val reliable_single_source :
  instance:Instance.t ->
  env:unicast_env ->
  ?max_rounds:int ->
  ?config:Single_source.config ->
  ?rto:int ->
  ?backoff:float ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Engine.Run_result.t * Single_source.state array * int
(** Algorithm 1 wrapped in {!Reliable.Make}: completes under message
    loss / duplication / delay that the bare protocol does not
    survive.  Returns the {e inner} protocol states and the total
    retransmission count (also folded into the result's fault counts
    when a plan was active).  The default round cap is doubled — the
    wrapper trades rounds and messages for delivery guarantees. *)

val reliable_multi_source :
  instance:Instance.t ->
  env:unicast_env ->
  ?max_rounds:int ->
  ?source_order:Multi_source.source_order ->
  ?seed:int ->
  ?rto:int ->
  ?backoff:float ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Engine.Run_result.t * Multi_source.state array * int
(** Multi-Source-Unicast wrapped in {!Reliable.Make}; see
    {!reliable_single_source}. *)

val flooding :
  instance:Instance.t ->
  schedule:Adversary.Schedule.t ->
  ?engine:(module Engine.Engine_sig.ENGINE) ->
  ?phase_len:int ->
  ?max_rounds:int ->
  ?stall_after:int ->
  ?cancel:(unit -> bool) ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  ?on_graph:(round:int -> Dynet.Graph.t -> unit) ->
  unit ->
  Engine.Run_result.t * Flooding.state array
(** Phased flooding against an oblivious schedule. *)

val flooding_vs_lower_bound :
  instance:Instance.t ->
  seed:int ->
  ?max_rounds:int ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Engine.Run_result.t * Flooding.state array * Adversary.Broadcast_lb.t
(** Phased flooding against the Section-2 strongly adaptive adversary.
    The returned adversary exposes its per-round history and the
    potential function for the E2/E3 experiments. *)

val greedy_vs_lower_bound :
  instance:Instance.t ->
  policy:Greedy_bcast.policy ->
  seed:int ->
  ?max_rounds:int ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Engine.Run_result.t * Greedy_bcast.state array * Adversary.Broadcast_lb.t
(** An unstructured broadcast heuristic against the same adversary.
    These generally do {e not} complete within any polynomial cap —
    the interesting output is messages spent per learning achieved. *)

val random_push :
  instance:Instance.t ->
  env:unicast_env ->
  seed:int ->
  ?max_rounds:int ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Engine.Run_result.t * Random_push.state array
(** The unstructured push baseline (ablation: what the
    request/response structure of Algorithm 1 buys). *)

val leader_election :
  n:int ->
  env:unicast_env ->
  ?max_rounds:int ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Engine.Run_result.t * Leader_election.state array
(** Max-id leader election under the adversary-competitive lens (the
    paper's Section-4 direction); stops when everyone agrees on the
    leader. *)

val coded_broadcast :
  instance:Instance.t ->
  schedule:Adversary.Schedule.t ->
  seed:int ->
  ?max_rounds:int ->
  ?faults:Faults.Plan.t ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Engine.Run_result.t * Coded_bcast.state array
(** Network-coding gossip (not token-forwarding; see {!Coded_bcast}).
    Stops when every node has decoded all k tokens. *)

val oblivious_rw :
  instance:Instance.t ->
  schedule:Adversary.Schedule.t ->
  seed:int ->
  ?const_f:float ->
  ?const_gamma:float ->
  ?force_rw:bool ->
  ?phase1_cap:int ->
  ?phase2_cap:int ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Span.t ->
  unit ->
  Oblivious_rw.result
(** Algorithm 2 (re-exported from {!Oblivious_rw.run}). *)
