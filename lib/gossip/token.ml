type t = { src : Dynet.Node_id.t; idx : int; uid : int }

let make ~src ~idx ~uid =
  if idx < 0 then invalid_arg "Token.make: negative idx";
  if uid < 0 then invalid_arg "Token.make: negative uid";
  { src; idx; uid }

let relabel t ~src ~idx = make ~src ~idx ~uid:t.uid

let compare a b =
  let c = Dynet.Node_id.compare a.src b.src in
  if c <> 0 then c else Int.compare a.idx b.idx

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "tok(%a.%d#%d)" Dynet.Node_id.pp t.src t.idx t.uid

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)

let uids s =
  Set.fold (fun t acc -> t.uid :: acc) s []
  |> List.sort_uniq Int.compare
