open Dynet.Ops

type t = { src : Dynet.Node_id.t; idx : int; uid : int }

let make ~src ~idx ~uid =
  if idx < 0 then invalid_arg "Token.make: negative idx";
  if uid < 0 then invalid_arg "Token.make: negative uid";
  { src; idx; uid }

let relabel t ~src ~idx = make ~src ~idx ~uid:t.uid

let compare a b =
  let c = Dynet.Node_id.compare a.src b.src in
  if c <> 0 then c else Int.compare a.idx b.idx

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "tok(%a.%d#%d)" Dynet.Node_id.pp t.src t.idx t.uid

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)

let uids s =
  (* Preallocated array + in-place sort/dedup instead of a consed list
     fed to sort_uniq. *)
  match Set.cardinal s with
  | 0 -> []
  | card ->
      let a = Array.make card 0 in
      let i = ref 0 in
      Set.iter
        (fun t ->
          a.(!i) <- t.uid;
          incr i)
        s;
      Array.sort Int.compare a;
      let out = ref [] in
      for j = card - 1 downto 0 do
        if j = card - 1 || a.(j) <> a.(j + 1) then out := a.(j) :: !out
      done;
      !out
