(** Per-node adjacent-edge history on the fast path.

    Algorithm 1 (and its multi-source extension) classifies each
    currently present incident edge as {e new} (inserted this round or
    last), {e contributive} (a new token crossed it since insertion) or
    {e idle}.  The original representation was a [Node_id.Map] of
    records rebuilt every round; this packs the same information into
    a flat [born] array ([-1] = absent, otherwise the round the
    current presence run started) plus a contribution bitset.

    Values are persistent from the protocol's point of view: {!refresh}
    and {!mark_contributed} return fresh values (or the input when
    nothing changes), never mutating state reachable from an engine
    crash-restart snapshot. *)

type t

type category = New | Idle | Contributive

val category_equal : category -> category -> bool

val create : n:int -> t
(** No edges present. *)

val refresh : t -> round:int -> neighbors:Dynet.Node_id.t array -> t
(** Reconcile with this round's neighbor set: departed edges are
    forgotten (a re-insertion starts a fresh run), arrivals are stamped
    with [round], surviving edges keep their insertion round and
    contribution flag. *)

val mark_contributed : t -> Dynet.Node_id.t -> t
(** Record that a new token crossed the edge to the given neighbor.
    No-op (returns the input) if the edge is not currently present or
    already marked. *)

val categorize : t -> round:int -> Dynet.Node_id.t -> category
(** Category of a currently present edge.  Only meaningful for nodes
    in the current neighbor set (i.e. after {!refresh} this round). *)
