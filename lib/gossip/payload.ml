open Dynet.Ops

type t =
  | Token_msg of Token.t
  | Completeness of { source : Dynet.Node_id.t; count : int }
  | Request of { source : Dynet.Node_id.t; idx : int }
  | Walk_msg of Token.t
  | Center_announce

let token_bits = 64

let bits_of_int x = max 1 (int_of_float (ceil (log (float_of_int (max 2 x)) /. log 2.)))

let bits ~n ~k = function
  | Token_msg _ ->
      (* catalog entry (source id + index) + payload *)
      bits_of_int n + bits_of_int k + token_bits
  | Completeness _ -> bits_of_int n + bits_of_int k
  | Request _ -> bits_of_int n + bits_of_int k
  | Walk_msg _ -> bits_of_int n + bits_of_int k + token_bits
  | Center_announce -> 1

let classify = function
  | Token_msg _ -> Engine.Msg_class.Token
  | Completeness _ -> Engine.Msg_class.Completeness
  | Request _ -> Engine.Msg_class.Request
  | Walk_msg _ -> Engine.Msg_class.Walk
  | Center_announce -> Engine.Msg_class.Center

let pp ppf = function
  | Token_msg tok -> Format.fprintf ppf "token %a" Token.pp tok
  | Completeness { source; count } ->
      Format.fprintf ppf "complete(%a,k=%d)" Dynet.Node_id.pp source count
  | Request { source; idx } ->
      Format.fprintf ppf "request(%a.%d)" Dynet.Node_id.pp source idx
  | Walk_msg tok -> Format.fprintf ppf "walk %a" Token.pp tok
  | Center_announce -> Format.fprintf ppf "center"

let equal a b =
  match (a, b) with
  | Token_msg x, Token_msg y | Walk_msg x, Walk_msg y -> Token.equal x y
  | Completeness a, Completeness b -> a.source = b.source && a.count = b.count
  | Request a, Request b -> a.source = b.source && a.idx = b.idx
  | Center_announce, Center_announce -> true
  | ( (Token_msg _ | Completeness _ | Request _ | Walk_msg _ | Center_announce),
      _ ) ->
      false
