(** The static-network baseline of Section 1.

    On a static graph, token dissemination costs O(n² + nk) messages —
    O(n²) to build a spanning tree without prior neighbor knowledge
    (KT0; [34] shows Ω(n²) is unavoidable on dense graphs) and O(nk) to
    pipeline the tokens over tree edges — i.e. O(n²/k + n) amortized,
    which is the optimal O(n) once k = Ω(n).  This is the yardstick the
    paper's dynamic-network results are measured against.

    The execution is computed directly on the (static) graph rather
    than via the round engines:

    - tree construction: a BFS tree from the root; every node sends one
      probe to each neighbor and one join/ack per tree edge, charged as
      [2m + (n-1)] [Control] messages;
    - upcast: each token travels from its initial holder to the root
      along tree paths — [depth(holder)] token messages each;
    - downcast: each token is forwarded once over every tree edge —
      [n-1] token messages each;
    - rounds: the pipelined schedule [O(D + k)] for each direction,
      reported as [2·(D + k)] with [D] the BFS depth. *)

type result = {
  control_messages : int;  (** Tree-construction cost. *)
  token_messages : int;  (** Upcast + downcast token copies. *)
  total_messages : int;
  rounds : int;
  amortized : float;  (** [total_messages / k]. *)
}

val run :
  graph:Dynet.Graph.t -> instance:Instance.t -> root:Dynet.Node_id.t -> result
(** @raise Invalid_argument if the graph is disconnected, node counts
    disagree, or the root is out of range. *)
