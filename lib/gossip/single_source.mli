(** Algorithm 1: Single-Source-Unicast (Section 3.1).

    All [k] tokens start at one source, which labels them [0..k-1].
    Only complete nodes (holding all [k] tokens, Definition 3.1) ever
    send tokens.  The protocol has three message types, matching the
    accounting of Theorem 3.1:

    - {e completeness announcements}: a complete node informs each
      neighbor of its completeness at most once over the whole
      execution (both sides remember across edge deletions);
      announcements carry [k], which is how non-source nodes learn what
      to ask for.  ≤ n(n-1) in total.
    - {e token requests}: each incomplete node that knows complete
      neighbors assigns {e distinct} missing-token requests, one per
      eligible edge, prioritizing edges as {e new} (inserted this round
      or the previous one) > {e idle} > {e contributive} (a new token
      crossed it since its last insertion).  A request whose edge
      survives into the next round is answered there, so a token
      request is wasted only when the adversary deletes its edge —
      hence ≤ O(nk) + TC(E) requests.
    - {e tokens}: sent only in response to a request from the previous
      round, so each node receives each token exactly once: ≤ nk.

    Together: 1-adversary-competitive message complexity O(n² + nk)
    (Theorem 3.1); on 3-edge-stable dynamic graphs the run completes
    within O(nk) rounds (Theorem 3.4).

    The [rounds ≤ O(nk)] bound needs the priority order new > idle >
    contributive exactly as stated — see Lemmas 3.2/3.3 (futile rounds
    destroy idle edges). *)

type state

(** How an incomplete node orders its eligible edges when assigning
    token requests.  {!Paper_priority} is Algorithm 1's order; the
    other two exist for ablation: Lemmas 3.2/3.3 derive the O(nk) round
    bound from this order, and the ablation bench shows what happens
    without it. *)
type priority =
  | Paper_priority  (** new > idle > contributive (Algorithm 1). *)
  | Reversed_priority  (** contributive > idle > new. *)
  | No_priority  (** neighbor-id order, categories ignored. *)

type config = {
  priority : priority;
  dedup_pending : bool;
      (** Algorithm 1's "avoid sending redundant token requests": do
          not re-request a token whose response is already in flight.
          Disabling it (ablation) causes duplicate token deliveries,
          breaking the exact [k(n-1)] type-1 count. *)
}

val default_config : config
(** The paper's algorithm: [Paper_priority], dedup on. *)

val protocol :
  (module Engine.Runner_unicast.PROTOCOL
     with type state = state
      and type msg = Payload.t)

val init : ?config:config -> instance:Instance.t -> unit -> state array
(** @raise Invalid_argument unless the instance has exactly one
    source. *)

val is_complete : state -> bool
val known_count : state -> int
val all_complete : k:int -> state array -> bool

val requests_sent : state -> int
(** Lifetime count of requests this node sent (test instrumentation
    for the Theorem 3.1 type-3 bound). *)
