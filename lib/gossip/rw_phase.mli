(** Phase 1 of Algorithm 2: random walks gathering the tokens at the
    centers (Section 3.2.2).

    Every token performs a lazy random walk on the virtual [n]-regular
    multigraph obtained by padding each node's degree with self-loops:
    at a {e low-degree} node [v] (degree [< γ]), each held token moves
    to a uniformly random neighbor with probability [deg(v)/n] and
    stays put otherwise (a self-loop step — free, it costs no message).
    At most one token crosses an edge per round in a given direction
    (the bandwidth constraint); tokens that lose the edge lottery are
    passive for the round.  A {e high-degree} node (degree [≥ γ],
    [γ = n·log n / f]) instead hands held tokens directly to its
    neighboring centers, one per center per round — with [f] uniformly
    random centers, a node of degree [≥ γ] has a center neighbor w.h.p.

    Tokens {e move} rather than copy, so token instances are conserved:
    at any time each uid is held by exactly one node (an invariant the
    test-suite checks).  A token that reaches a center stops: centers
    never forward.

    Centers announce themselves to each newly met neighbor once; these
    [Center]-class messages are accounted separately (the paper does
    not charge for them; under the adversary-competitive measure they
    are dominated by [TC]). *)

type state

val protocol :
  (module Engine.Runner_unicast.PROTOCOL
     with type state = state
      and type msg = Payload.t)

val init :
  instance:Instance.t ->
  centers:bool array ->
  gamma:float ->
  seed:int ->
  state array
(** [centers.(v)] marks node [v] a center; [gamma] is the high-degree
    threshold.
    @raise Invalid_argument if the array length differs from [n] or no
    node is a center (a walk could then never stop). *)

val is_center : state -> bool

val holding : state -> Token.t list
(** Tokens currently held (walking, or owned if a center). *)

val settled : state array -> bool
(** Whether every token has reached a center. *)

val collected : state array -> (Dynet.Node_id.t * Token.t list) list
(** Per-center token holdings (phase 2's sources), increasing node
    order; tokens in uid order. *)
