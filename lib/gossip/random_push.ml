open Dynet.Ops

type state = {
  known : Token.t list;
  known_uids : Dynet.Node_id.Set.t;  (* uids are plain ints *)
  rng : Dynet.Rng.t;
}

let known_count st = Dynet.Node_id.Set.cardinal st.known_uids

let all_complete ~k states =
  Array.for_all (fun st -> known_count st >= k) states

let learn st (tok : Token.t) =
  if Dynet.Node_id.Set.mem tok.uid st.known_uids then st
  else
    {
      st with
      known = tok :: st.known;
      known_uids = Dynet.Node_id.Set.add tok.uid st.known_uids;
    }

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round:_ ~neighbors =
    match st.known with
    | [] -> (st, [])
    | known when Array.length neighbors = 0 -> ignore known; (st, [])
    | known ->
        let tok = Dynet.Rng.pick st.rng (Array.of_list known) in
        let w = Dynet.Rng.pick st.rng neighbors in
        (st, [ (w, Payload.Token_msg tok) ])

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (_, msg) ->
        match msg with
        | Payload.Token_msg tok -> learn st tok
        | Payload.Completeness _ | Payload.Request _ | Payload.Walk_msg _
        | Payload.Center_announce ->
            st)
      st inbox

  let progress st = known_count st
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ~instance ~seed =
  let master = Dynet.Rng.make ~seed in
  Array.init (Instance.n instance) (fun v ->
      let st =
        {
          known = [];
          known_uids = Dynet.Node_id.Set.empty;
          rng = Dynet.Rng.split master;
        }
      in
      List.fold_left learn st (Instance.tokens_of instance v))
