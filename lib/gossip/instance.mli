(** k-token dissemination problem instances (Definition 1.2).

    An instance fixes the node count and the initial placement of the
    [k] distinct tokens.  Tokens are identified by uids [0..k-1] and
    initially catalogued under the node that holds them (the
    {e sources}, [a_1 < a_2 < ... < a_s] in the paper's notation). *)

type t

val make : n:int -> assignment:Token.t list array -> t
(** [assignment.(v)] is node [v]'s initial token list.  Validates: the
    array has length [n]; uids are exactly [0 .. k-1] with no
    duplicates; each token's catalog [src] is the node holding it and
    the [idx]s of each source are exactly [0 .. k_src - 1].
    @raise Invalid_argument otherwise. *)

val single_source : n:int -> k:int -> source:Dynet.Node_id.t -> t
(** All [k] tokens at one node (Section 3.1's special case). *)

val multi_source :
  rng:Dynet.Rng.t -> n:int -> k:int -> s:int -> t
(** [k] tokens split over [s] distinct uniformly chosen sources, every
    source getting at least one token, the remainder spread uniformly.
    @raise Invalid_argument unless [1 <= s <= min k n]. *)

val one_per_node : n:int -> t
(** The n-gossip instance: node [v] starts with exactly token [v] —
    the "important special case" of the paper's open problems. *)

val n : t -> int
val k : t -> int

val sources : t -> Dynet.Node_id.t list
(** Nodes with at least one initial token, increasing order. *)

val source_count : t -> int

val tokens_of : t -> Dynet.Node_id.t -> Token.t list
(** Initial tokens of a node (idx order). *)

val k_of : t -> Dynet.Node_id.t -> int
(** Number of initial tokens of a node. *)

val all_tokens : t -> Token.t list
(** All [k] tokens, catalog order. *)

val pp : Format.formatter -> t -> unit
