(** Random linear network-coding gossip (over GF(2)) — the
    non-token-forwarding alternative the paper contrasts against.

    Section 1.2 recalls that the Ω(nk/log n) round lower bound (and
    hence this paper's Ω(n²/log²n) amortized-broadcast bound) applies
    only to {e token-forwarding} algorithms, and that network coding
    [Haeupler; Haeupler–Karger] solves k-gossip in O(n + k) rounds on
    the same adversarial model when tokens are large enough for the
    coefficient vectors to ride along (Ω(n log n) bits).

    This module implements the simplest such scheme: every node keeps
    the span of the coded packets it has received (incremental GF(2)
    elimination, {!Gf2.Basis}); each round it broadcasts a uniformly
    random combination of its basis rows.  A node is done when its
    basis reaches full rank k and decoding reproduces every token
    payload.

    Each coded packet carries a k-bit coefficient vector, deliberately
    breaking the O(log n)-bits-per-message budget of token forwarding —
    that is precisely the trade the paper points at, and the E12 bench
    measures the round-complexity gap it buys. *)

type state

type msg = { coeffs : Gf2.Vec.t; payload : int }

val payload_of_uid : int -> int
(** Deterministic pseudo-payload of token [uid] (so decoding is a real
    check, not rank bookkeeping). *)

val protocol :
  (module Engine.Runner_broadcast.PROTOCOL
     with type state = state
      and type msg = msg)

val init : instance:Instance.t -> seed:int -> state array

val rank : state -> int

val decoded : k:int -> state -> bool
(** Full rank {e and} every decoded payload matches
    {!payload_of_uid}. *)

val all_decoded : k:int -> state array -> bool
