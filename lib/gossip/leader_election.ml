open Dynet.Ops

module NMap = Dynet.Node_id.Map

type state = {
  me : Dynet.Node_id.t;
  champion : Dynet.Node_id.t;
  told : Dynet.Node_id.t NMap.t;
      (* per neighbor: the champion value we last sent them (persists
         across edge churn, so re-meetings cost nothing when nothing
         changed) *)
  improvements : int;
}

let champion st = st.champion
let improvements st = st.improvements

let elected ~n states =
  Array.for_all (fun st -> st.champion = n - 1) states

(* The champion rides in a Completeness payload: it is the same kind of
   O(log n)-bit control announcement, and classifying it as such keeps
   the ledger comparable with the dissemination protocols. *)
let announce champion = Payload.Completeness { source = champion; count = 0 }

module P = struct
  type nonrec state = state
  type msg = Payload.t

  let classify = Payload.classify

  let send st ~round:_ ~neighbors =
    let msgs = ref [] in
    let told = ref st.told in
    Array.iter
      (fun w ->
        let stale =
          match NMap.find_opt w !told with
          | Some c -> c <> st.champion
          | None -> true
        in
        if stale then begin
          told := NMap.add w st.champion !told;
          msgs := (w, announce st.champion) :: !msgs
        end)
      neighbors;
    ({ st with told = !told }, List.rev !msgs)

  let receive st ~round:_ ~neighbors:_ ~inbox =
    List.fold_left
      (fun st (_, msg) ->
        match msg with
        | Payload.Completeness { source = candidate; count = _ } ->
            if candidate > st.champion then
              {
                st with
                champion = candidate;
                improvements = st.improvements + 1;
              }
            else st
        | Payload.Token_msg _ | Payload.Request _ | Payload.Walk_msg _
        | Payload.Center_announce ->
            st)
      st inbox

  let progress st = if st.champion >= 0 then 1 else 0
end

let protocol =
  (module P : Engine.Runner_unicast.PROTOCOL
    with type state = state
     and type msg = Payload.t)

let init ~n =
  Array.init n (fun v ->
      { me = v; champion = v; told = NMap.empty; improvements = 0 })
