(** Multi-Source-Unicast (Section 3.2.1).

    Tokens start at [s] source nodes [a_1 < ... < a_s]; each source
    labels its own tokens [⟨ID_x, i⟩] and is complete with respect to
    itself at time 0.  Every node [v] maintains, per source [x]:
    [R_v(x)] (whom it told about its own x-completeness), [S_v(x)] (who
    told it), and [I_v] (the sources it is complete w.r.t.).  Each
    round, every node runs three tasks in parallel:

    + {e announce}: to each neighbor [w], the completeness of the
      {e minimum} source [x ∈ I_v] with [w ∉ R_v(x)] (at most one
      announcement per edge per round, each (v, w, x) triple at most
      once ever — ≤ n²s in total);
    + {e serve}: answer last round's token requests;
    + {e request}: pick the minimum source [x ∉ I_v] with
      [S_v(x) ≠ ∅] and run the Single-Source request logic for [x]
      alone (new > idle > contributive edge priority).

    The min-source priority means the network effectively runs the
    Single-Source algorithm for source [a_1], then [a_2], etc., giving
    the O(nk) round bound on 3-edge-stable graphs (Theorem 3.6) and
    1-adversary-competitive message complexity O(n²s + nk)
    (Theorem 3.5).

    This protocol is also phase 2 of Algorithm 2, with the centers
    acting as sources of the tokens they collected (see
    {!Oblivious_rw}); that is why {!init} accepts any instance rather
    than insisting the catalog sources equal the token origins. *)

type state

(** How a node picks which source to request from next.  {!Min_source}
    is the paper's rule: all nodes prioritize the minimum incomplete
    source, so the network completes sources one at a time and inherits
    the Single-Source round bound (Theorem 3.6's proof).
    {!Random_source} is the ablation: each node picks independently at
    random among its incomplete announced sources — still correct, but
    the sequencing argument is lost. *)
type source_order = Min_source | Random_source

val protocol :
  (module Engine.Runner_unicast.PROTOCOL
     with type state = state
      and type msg = Payload.t)

val init :
  ?source_order:source_order -> ?seed:int -> instance:Instance.t -> unit ->
  state array
(** [source_order] defaults to the paper's {!Min_source}; [seed]
    (default 0) only matters for {!Random_source}. *)

val known_count : state -> int
(** Distinct tokens known (initial + learned). *)

val complete_wrt : state -> Dynet.Node_id.t -> bool
(** Whether the node is complete w.r.t. the given source. *)

val all_complete : k:int -> state array -> bool

val requests_sent : state -> int
val announcements_sent : state -> int
