(** Closed-form bounds from the paper, for side-by-side reporting.

    Logarithms are base 2 throughout (the constant factor is absorbed
    by the tunable leading constants; only the {e shape} matters for
    the reproduction).  All functions clamp the log terms below at 1 so
    small [n] stay finite. *)

val log2 : float -> float

val logn : int -> float
(** [max 1 (log₂ n)]. *)

(* {2 Section 2 — local broadcast} *)

val flooding_total : n:int -> k:int -> float
(** Naive-flooding upper bound [n²k]. *)

val flooding_amortized : n:int -> float
(** [n²]. *)

val lb_total : n:int -> k:int -> float
(** Theorem 2.3 lower bound [n²k / log²n]. *)

val lb_amortized : n:int -> float
(** [n² / log²n]. *)

val lb_rounds : n:int -> k:int -> float
(** The Ω(nk/log n) round bound of [26, 30]. *)

val sparse_broadcaster_threshold : ?c:float -> n:int -> unit -> float
(** Lemma 2.2's [n / (c·log n)]: with at most this many broadcasters,
    the free edges form a single component (no progress possible).
    Default [c = 1]. *)

(* {2 Section 3 — unicast} *)

val single_source_budget : n:int -> k:int -> float
(** Theorem 3.1's 1-adversary-competitive budget [n² + nk]. *)

val multi_source_budget : n:int -> k:int -> s:int -> float
(** Theorem 3.5's [n²s + nk]. *)

val stable_rounds : n:int -> k:int -> float
(** Theorems 3.4/3.6's O(nk) round bound on 3-edge-stable graphs. *)

(* {2 Algorithm 2 parameters and bounds (Theorem 3.8)} *)

val source_threshold : ?c:float -> n:int -> unit -> float
(** [c · n^{2/3} log^{5/3} n]: below this many sources, plain
    Multi-Source-Unicast is already the better algorithm. *)

val centers_f : ?c:float -> n:int -> k:int -> unit -> float
(** [f = c · n^{1/2} k^{1/4} log^{5/4} n], clamped to [[1, n]]. *)

val degree_gamma : ?c:float -> n:int -> f:float -> unit -> float
(** [γ = c · n·log n / f]: the high/low degree threshold. *)

val walk_length : ?c:float -> n:int -> f:float -> unit -> float
(** [L = c · n⁴ log⁵ n / f³]: actual steps per walk for a
    w.h.p. center hit. *)

val rw_total : ?c:float -> n:int -> k:int -> unit -> float
(** Total messages [c · n^{5/2} k^{1/4} log^{5/4} n]. *)

val rw_amortized : ?c:float -> n:int -> k:int -> unit -> float
(** Amortized [c · n^{5/2} log^{5/4} n / k^{3/4}]. *)

(* {2 Table 1} *)

type table1_row = {
  label : string;  (** The paper's k-regime label. *)
  k_of_n : n:int -> int;  (** Concrete k for a given n. *)
  amortized_of_n : n:int -> float;  (** The paper's amortized bound. *)
  paper_bound : string;  (** The bound as printed in Table 1. *)
}

val table1 : table1_row list
(** The four rows of Table 1:
    k = n^{2/3}log^{5/3}n → O(n²);
    k = n → O(n^{7/4}log^{5/4}n);
    k = n^{3/2} → O(n^{11/8}log^{5/4}n);
    k = n² (capped below n² as k = o(n²)) → O(n·log^{5/4}n). *)
