module Bitset = Dynet.Bitset

type t = {
  born : int array;  (* -1 = absent; else round the presence run started *)
  contrib : Bitset.t;
}

type category = New | Idle | Contributive

let category_equal a b =
  match (a, b) with
  | New, New | Idle, Idle | Contributive, Contributive -> true
  | (New | Idle | Contributive), _ -> false

let create ~n = { born = Array.make n (-1); contrib = Bitset.create n }

let refresh t ~round ~neighbors =
  let n = Array.length t.born in
  let born = Array.make n (-1) in
  let contrib = Bitset.create n in
  Array.iter
    (fun w ->
      match t.born.(w) with
      | -1 -> born.(w) <- round
      | b ->
          born.(w) <- b;
          if Bitset.mem t.contrib w then Bitset.set contrib w)
    neighbors;
  { born; contrib }

let mark_contributed t w =
  if t.born.(w) < 0 || Bitset.mem t.contrib w then t
  else { t with contrib = Bitset.add w t.contrib }

let categorize t ~round w =
  if t.born.(w) >= round - 1 then New
  else if Bitset.mem t.contrib w then Contributive
  else Idle
