(** Phased naive flooding — the local-broadcast upper bound.

    The paper's O(n²) amortized-broadcast upper bound ("each node
    broadcasts each token for n rounds", Section 1): the execution is
    divided into [k] phases of [n] rounds; during phase [i] every node
    that knows token [i] (by uid) broadcasts it in every round.

    Because every round graph is connected, any cut between knowers and
    non-knowers of token [i] is crossed by some edge whose knowing
    endpoint is broadcasting [i] — so at least one new node learns
    token [i] per phase round, and [n] rounds per phase suffice {e even
    against the strongly adaptive adversary}.  Total: ≤ n rounds × n
    broadcasters × k phases = n²k messages, i.e. O(n²) amortized.

    Like the paper's naive algorithm, this assumes the global token
    labelling [0..k-1] and [k] are common knowledge. *)

type state

val protocol :
  (module Engine.Runner_broadcast.PROTOCOL
     with type state = state
      and type msg = Payload.t)

val init : instance:Instance.t -> ?phase_len:int -> unit -> state array
(** Initial states; [phase_len] defaults to [n]. *)

val knows : state -> int -> bool
(** Whether the node knows the token with the given uid (used by the
    lower-bound adversary adapter and by tests). *)

val known_count : state -> int

val all_complete : k:int -> state array -> bool
(** Stop predicate: every node knows all [k] uids. *)
