(** GF(2) vectors and incremental Gaussian elimination.

    Substrate for the network-coding gossip comparison
    ({!Coded_bcast}).  A coded packet's coefficient vector lives in
    GF(2)^k; a node can decode all k tokens exactly when the vectors it
    has received span the full space.  {!Basis} maintains a row-echelon
    basis incrementally: each insertion is O(k²/w) bit operations
    (w = word size), which is fine at simulator scale. *)

module Vec : sig
  type t
  (** A fixed-dimension bit vector over GF(2). *)

  val zero : dim:int -> t
  val unit : dim:int -> int -> t
  (** [unit ~dim i] has a single 1 at coordinate [i].
      @raise Invalid_argument if [i] is out of range. *)

  val dim : t -> int
  val is_zero : t -> bool
  val get : t -> int -> bool
  val xor : t -> t -> t
  (** @raise Invalid_argument on dimension mismatch. *)

  val lowest_set : t -> int option
  (** Index of the least-significant 1 bit, if any. *)

  val random : Dynet.Rng.t -> dim:int -> t
  (** Uniform vector (each coordinate an independent fair bit). *)

  val random_combination : Dynet.Rng.t -> t list -> dim:int -> t
  (** XOR of a uniformly random subset of the given vectors (the RLNC
      recombination step over GF(2)). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Basis : sig
  type t
  (** A set of linearly independent vectors in row-echelon form, each
      carrying a payload word (the XOR of the corresponding token
      payloads, so decoding is checkable, not just rank-counting). *)

  val create : dim:int -> t

  val rank : t -> int

  val insert : t -> Vec.t -> payload:int -> bool
  (** Reduce the vector against the basis; if it is independent, add
      it (and the correspondingly reduced payload) and return [true];
      return [false] if it was in the span. *)

  val full : t -> bool
  (** [rank = dim]: every token is decodable. *)

  val vectors : t -> (Vec.t * int) list
  (** Current rows with payloads (ascending pivot order). *)

  val decode : t -> int option array
  (** After full rank: [decode t].(i) = Some (payload of token i),
      obtained by back-substitution to the identity; [None] entries
      where rank is missing. *)
end
