(* dynspread — command-line front end.

   Subcommands mirror the experiment index in DESIGN.md:

     dynspread run         one protocol x environment x instance run
     dynspread experiments the paper's tables/figures (all or by id)
     dynspread table1      just E1
     dynspread lowerbound  just E2 (+E3)
     dynspread competitive just E4/E5/E6
     dynspread sweep       size sweeps of one protocol x environment
     dynspread scenario    record / import / validate / run declarative
                           scenario workloads (lib/scenario)
     dynspread serve       long-running gossip daemon: scenario jobs over
                           a streaming rpc socket (lib/serve)
     dynspread submit      client for `serve`: submit specs, stream back
                           reports byte-identical to `scenario run`

   Every command is deterministic in --seed.  `run` and `sweep` take
   --trace FILE.jsonl (per-round event trace, NDJSON) and --json
   (machine-readable run report on stdout); see README "Observability"
   for the schemas. *)

open Cmdliner

(* {2 Shared arguments} *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let k_arg default =
  Arg.(
    value & opt int default & info [ "k" ] ~docv:"K" ~doc:"Number of tokens.")

let s_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "sources" ] ~docv:"S" ~doc:"Number of source nodes.")

let csv_arg =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Emit tables as CSV instead of aligned text.")

let jobs_arg =
  Arg.(
    value
    & opt int (Analysis.Sweep.recommended_jobs ())
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Domains to fan experiment sweep points over (E1/E4/E7); \
           results are bit-identical for every value. Default: the \
           machine's recommended domain count.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the per-round event trace to $(docv) as JSONL (one \
           JSON object per engine event: round_start, graph_change, \
           send, progress, phase, run_end).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print a machine-readable JSON run report to stdout instead \
           of the human-readable summary.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Enable the runtime invariant layer (ledger conservation, \
           cached bitset counts, per-round connectivity). Dev-profile \
           builds only: release builds compile the checks out and \
           ignore this flag. An invariant failure aborts with exit \
           code 3.")

(* {2 Engine selection}

   Shared by `run` and `scenario run`.  Reports are engine-independent
   (the differential fuzz harness enforces bit identity), so the flag
   only changes wall-clock and memory layout. *)

type engine_choice = Eng_fastpath | Eng_reference | Eng_soa

let engine_conv =
  Arg.enum
    [ ("fastpath", Eng_fastpath); ("reference", Eng_reference);
      ("soa", Eng_soa) ]

let engine_arg =
  Arg.(
    value & opt engine_conv Eng_fastpath
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,fastpath) (the default optimized \
           sequential engine), $(b,reference) (the pseudocode engine), \
           or $(b,soa) (the mega-scale struct-of-arrays engine: Bigarray \
           word planes, CSR adjacency, and intra-run Domain sharding — \
           see $(b,--shards)). Run reports are bit-identical across \
           engines; only wall-clock changes.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"SHARDS"
        ~doc:
          "Worker domains for the $(b,soa) engine's intra-run node-space \
           sharding (>= 1). Results are bit-identical for every shard \
           count. Only meaningful with $(b,--engine soa).")

let print_table ~csv t =
  if csv then (
    Obs.Console.out (Analysis.Table.to_csv t);
    Obs.Console.out "")
  else Obs.Console.out (Analysis.Table.render t)

(* {2 Fault-injection flags}

   Shared by `run`: all default to "no faults", and all-zero rates
   compile to [Faults.Plan.none], the identity. *)

let loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P"
        ~doc:"Drop each transmitted message with probability $(docv).")

let dup_arg =
  Arg.(
    value & opt float 0.
    & info [ "dup-rate" ] ~docv:"P"
        ~doc:"Duplicate each surviving message with probability $(docv).")

let crash_arg =
  Arg.(
    value & opt float 0.
    & info [ "crash-rate" ] ~docv:"P"
        ~doc:
          "Crash each live node (full state loss) with per-round \
           probability $(docv).")

let restart_arg =
  Arg.(
    value & opt float 0.25
    & info [ "restart-rate" ] ~docv:"P"
        ~doc:
          "Restart each crashed node (from its initial state) with \
           per-round probability $(docv).")

let max_delay_arg =
  Arg.(
    value & opt int 0
    & info [ "max-delay" ] ~docv:"R"
        ~doc:
          "Delay each surviving message by a uniform 0..$(docv) rounds.")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the fault plan's random streams (default: --seed), \
           so the same topology can be replayed under different fault \
           trajectories.")

let reliable_arg =
  Arg.(
    value & flag
    & info [ "reliable" ]
        ~doc:
          "Wrap the unicast protocol in the ack/retransmit reliability \
           wrapper (single-source and multi-source only).")

(* Numeric-flag validation, bench/main.exe style: error line, usage,
   exit 2 — cmdliner's own failures keep their usual exit code, this
   path is for values that parse but make no sense. *)
let flags_usage () =
  Obs.Console.lines
    [
      "usage: --loss/--dup-rate/--crash-rate/--restart-rate take a \
       probability in [0, 1];";
      "       --max-delay takes a round count >= 0; --seed/--fault-seed \
       take a seed >= 0";
    ]

let bad_flag fmt =
  Printf.ksprintf
    (fun msg ->
      Obs.Console.error ("error: " ^ msg);
      flags_usage ();
      exit 2)
    fmt

let validate_prob ~flag p =
  if not (Float.is_finite p && p >= 0. && p <= 1.) then
    bad_flag "--%s %g is not a probability in [0, 1]" flag p

let validate_seed ~flag s = if s < 0 then bad_flag "--%s %d is negative" flag s

let fault_plan ~loss ~dup ~crash ~restart ~max_delay ~fault_seed ~seed =
  validate_prob ~flag:"loss" loss;
  validate_prob ~flag:"dup-rate" dup;
  validate_prob ~flag:"crash-rate" crash;
  validate_prob ~flag:"restart-rate" restart;
  if max_delay < 0 then bad_flag "--max-delay %d is negative" max_delay;
  validate_seed ~flag:"seed" seed;
  Option.iter (validate_seed ~flag:"fault-seed") fault_seed;
  Faults.Plan.make ~loss ~dup ~crash ~restart ~max_delay
    ~seed:(Option.value fault_seed ~default:seed)
    ()

(* [None] means "the default fastpath engine" — callers use it to tell
   an explicit engine request apart from the default, since a few run
   shapes (reliable wrapper, oblivious-rw, lower-bound) are not
   engine-parametric. *)
let resolve_engine ~engine ~shards =
  if shards < 1 then bad_flag "--shards %d must be >= 1" shards;
  (match engine with
  | Eng_soa -> ()
  | _ ->
      if shards > 1 then
        bad_flag "--shards %d applies to --engine soa only" shards);
  match engine with
  | Eng_fastpath -> None
  | Eng_reference -> Some Engine.Reference.engine
  | Eng_soa -> Some (Engine.Soa.engine ~shards ())

(* Run [f] with a JSONL sink on --trace FILE, the null sink otherwise.
   [Obs.Sink.close] drains the sink's line buffer before the channel
   goes away, so an abnormal exit never leaves a torn trailing line.
   The close is registered [at_exit] as well as in the [finally]:
   [Stdlib.exit] from a signal handler runs at_exit callbacks but not
   Fun.protect finalizers, and a SIGINT-ed run should still leave a
   well-formed trace of the rounds that happened. *)
let with_trace trace f =
  match trace with
  | None -> f Obs.Sink.null
  | Some path -> (
      match open_out path with
      | exception Sys_error msg ->
          `Error (false, "cannot open trace file: " ^ msg)
      | oc ->
          let sink = Obs.Sink.jsonl oc in
          let closed = ref false in
          let close () =
            if not !closed then begin
              closed := true;
              Obs.Sink.close sink;
              close_out oc
            end
          in
          at_exit close;
          Fun.protect ~finally:close (fun () -> f sink))

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Write a hierarchical span profile (round/phase spans, sweep \
           worker lanes) to $(docv). A $(b,.json) path gets Chrome \
           trace-event JSON (load it in Perfetto or chrome://tracing); a \
           $(b,.folded) or $(b,.txt) path gets folded stacks for flame-graph \
           tools.")

(* Run [f] with an active profiler on --profile FILE, the null profiler
   otherwise.  The profile is written in the [finally], so a run aborted
   by an engine violation still leaves a loadable file covering the
   rounds that did execute.  Like [with_trace], the write is also
   registered [at_exit] (guarded so it happens once) for the
   signal-handler [Stdlib.exit] path. *)
let with_profile profile f =
  match profile with
  | None -> f Obs.Span.null
  | Some path ->
      let prof = Obs.Span.create () in
      let written = ref false in
      let write () =
        if not !written then begin
          written := true;
          match open_out path with
          | exception Sys_error msg ->
              Obs.Console.error ("cannot open profile file: " ^ msg)
          | oc ->
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  Obs.Span.write prof oc (Obs.Span.format_of_path path))
        end
      in
      at_exit write;
      Fun.protect ~finally:write (fun () -> f prof)

(* Satellite of the serve PR: long-running commands (serve,
   experiments, fuzz) exit 130 on SIGINT/SIGTERM instead of dying with
   the default disposition — [Stdlib.exit] runs the at_exit drains
   above, so traces and profiles survive an interrupt. *)
let exit_130 = Sys.Signal_handle (fun _ -> Stdlib.exit 130)

let install_signal sg behavior =
  match Sys.set_signal sg behavior with
  | () -> ()
  | exception Invalid_argument _ -> ()
  | exception Sys_error _ -> ()

let exit_on_signals () =
  install_signal Sys.sigint exit_130;
  install_signal Sys.sigterm exit_130

(* {2 run} *)

type protocol_choice = Flooding | Single | Multi | Rw

let protocol_conv =
  Arg.enum
    [ ("flooding", Flooding); ("single-source", Single);
      ("multi-source", Multi); ("oblivious-rw", Rw) ]

let protocol_name = function
  | Flooding -> "flooding"
  | Single -> "single-source"
  | Multi -> "multi-source"
  | Rw -> "oblivious-rw"

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv Single
    & info [ "protocol"; "algo" ] ~docv:"PROTOCOL"
        ~doc:
          "One of $(b,flooding), $(b,single-source), $(b,multi-source), \
           $(b,oblivious-rw).")

type env_choice =
  | Env_static
  | Env_rotator
  | Env_rewiring
  | Env_markovian
  | Env_fresh
  | Env_cutter
  | Env_lb

let env_conv =
  Arg.enum
    [
      ("static", Env_static); ("tree-rotator", Env_rotator);
      ("rewiring", Env_rewiring); ("edge-markovian", Env_markovian);
      ("fresh-random", Env_fresh); ("request-cutter", Env_cutter);
      ("lower-bound", Env_lb);
    ]

let env_name = function
  | Env_static -> "static"
  | Env_rotator -> "tree-rotator"
  | Env_rewiring -> "rewiring"
  | Env_markovian -> "edge-markovian"
  | Env_fresh -> "fresh-random"
  | Env_cutter -> "request-cutter"
  | Env_lb -> "lower-bound"

let env_arg =
  Arg.(
    value & opt env_conv Env_rewiring
    & info [ "env" ] ~docv:"ENV"
        ~doc:
          "Environment: $(b,static), $(b,tree-rotator), $(b,rewiring), \
           $(b,edge-markovian), $(b,fresh-random), $(b,request-cutter) \
           (adaptive, unicast only), or $(b,lower-bound) (the Section-2 \
           strongly adaptive adversary, flooding only).")

let sigma_arg =
  Arg.(
    value & opt int 3
    & info [ "sigma" ] ~docv:"SIGMA"
        ~doc:"Edge-stability enforced on oblivious environments (>= 1).")

let schedule_of_env ~env ~seed ~n ~sigma =
  let stable s =
    if sigma <= 1 then s else Adversary.Schedule.stabilized ~sigma s
  in
  match env with
  | Env_static ->
      Some
        (Adversary.Oblivious.static
           (Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed) ~n ~p:0.15))
  | Env_rotator -> Some (stable (Adversary.Oblivious.tree_rotator ~seed ~n))
  | Env_rewiring ->
      Some
        (stable (Adversary.Oblivious.rewiring ~seed ~n ~extra:n ~rate:0.25))
  | Env_markovian ->
      Some
        (stable
           (Adversary.Oblivious.edge_markovian ~seed ~n
              ~p_up:(2. /. float_of_int n) ~p_down:0.3))
  | Env_fresh -> Some (Adversary.Oblivious.fresh_random ~seed ~n ~p:0.25)
  | Env_cutter | Env_lb -> None

let timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:
          "After the summary, dump the per-round learning curve as CSV \
           (round,messages,learnings) for plotting.")

let print_json_report report =
  Obs.Console.out (Obs.Json.to_string (Obs.Report.to_json report))

let report_run ?(timeline = false) ?(json = false) ?retransmits ~name ~n ~k
    (result : Engine.Run_result.t) =
  let ledger = result.ledger in
  if json then
    print_json_report
      (Engine.Run_result.to_report ~name
         ~extra:
           ([
              ( "amortized_per_token",
                Obs.Json.Float (Engine.Ledger.amortized ledger ~k) );
              ( "budget_n2_nk",
                Obs.Json.Float (Gossip.Bounds.single_source_budget ~n ~k) );
            ]
           @
           match retransmits with
           | None -> []
           | Some r -> [ ("retransmits", Obs.Json.Int r) ])
         result)
  else begin
    Obs.Console.out (Format.asprintf "@[<v>%a@]" Engine.Run_result.pp result);
    Obs.Console.out
      (Printf.sprintf "amortized per token: %.2f"
         (Engine.Ledger.amortized ledger ~k));
    Obs.Console.out
      (Printf.sprintf
         "adversary-competitive (alpha=1): %.0f  [budget n^2+nk = %.0f]"
         (Engine.Ledger.competitive_cost ledger ~alpha:1.)
         (Gossip.Bounds.single_source_budget ~n ~k));
    Obs.Console.out
      (Printf.sprintf "per-node load: max %d, mean %.1f"
         (Engine.Ledger.max_load ledger)
         (Engine.Ledger.mean_load ledger));
    (match retransmits with
    | None -> ()
    | Some r ->
        Obs.Console.out
          (Printf.sprintf "reliability wrapper: %d retransmissions" r));
    if timeline then begin
      Obs.Console.out "";
      Obs.Console.out "round,messages,learnings";
      List.iter
        (fun (r, msgs, learned) ->
          Obs.Console.out (Printf.sprintf "%d,%d,%d" r msgs learned))
        result.timeline
    end
  end

(* Algorithm 2 returns its own result record, not a Run_result; wrap
   its merged ledger so the JSON report path is uniform. *)
let rw_report ~name ~k (r : Gossip.Oblivious_rw.result) =
  let as_run_result =
    Engine.Run_result.make
      ~rounds:(r.Gossip.Oblivious_rw.phase1_rounds + r.Gossip.Oblivious_rw.phase2_rounds)
      ~completed:r.Gossip.Oblivious_rw.completed
      ~ledger:r.Gossip.Oblivious_rw.ledger ~timeline:[] ()
  in
  Engine.Run_result.to_report ~name
    ~extra:
      [
        ("centers", Obs.Json.Int r.Gossip.Oblivious_rw.centers);
        ("skipped_phase1", Obs.Json.Bool r.Gossip.Oblivious_rw.skipped_phase1);
        ("phase1_rounds", Obs.Json.Int r.Gossip.Oblivious_rw.phase1_rounds);
        ("phase1_settled", Obs.Json.Bool r.Gossip.Oblivious_rw.phase1_settled);
        ("phase2_rounds", Obs.Json.Int r.Gossip.Oblivious_rw.phase2_rounds);
        ("paper_messages", Obs.Json.Int r.Gossip.Oblivious_rw.paper_messages);
        ( "amortized_per_token",
          Obs.Json.Float
            (float_of_int r.Gossip.Oblivious_rw.paper_messages
            /. float_of_int k) );
      ]
    as_run_result

let run_cmd =
  let doc = "Run one protocol in one environment and print the cost ledger." in
  let run protocol env n k s sigma seed loss dup crash restart max_delay
      fault_seed reliable timeline trace profile json check engine shards =
    Check.set_enabled check;
    let eng_opt = resolve_engine ~engine ~shards in
    let faults =
      fault_plan ~loss ~dup ~crash ~restart ~max_delay ~fault_seed ~seed
    in
    let faulty = not (Faults.Plan.is_none faults) in
    let name = protocol_name protocol ^ "/" ^ env_name env in
    with_trace trace @@ fun obs ->
    with_profile profile @@ fun prof ->
    let instance =
      match protocol with
      | Single -> Gossip.Instance.single_source ~n ~k ~source:0
      | Flooding | Multi | Rw ->
          if s <= 1 then Gossip.Instance.single_source ~n ~k ~source:0
          else
            Gossip.Instance.multi_source
              ~rng:(Dynet.Rng.make ~seed:(seed + 1))
              ~n ~k ~s:(min s (min n k))
    in
    let run_unicast envv =
      match (protocol, reliable) with
      | Single, true ->
          let result, _, rt =
            Gossip.Runners.reliable_single_source ~instance ~env:envv ~faults
              ~obs ~prof ()
          in
          (result, Some rt)
      | Single, false ->
          ( fst
              (Gossip.Runners.single_source ~instance ~env:envv
                 ?engine:eng_opt ~faults ~obs ~prof ()),
            None )
      | (Multi | Flooding | Rw), true ->
          let result, _, rt =
            Gossip.Runners.reliable_multi_source ~instance ~env:envv ~faults
              ~obs ~prof ()
          in
          (result, Some rt)
      | (Multi | Flooding | Rw), false ->
          ( fst
              (Gossip.Runners.multi_source ~instance ~env:envv
                 ?engine:eng_opt ~faults ~obs ~prof ()),
            None )
    in
    match (protocol, env) with
    | _, _ when reliable && Option.is_some eng_opt ->
        `Error
          (false,
           "--engine selects the engine-parametric protocols' engine; the \
            --reliable wrapper runs on the fastpath engine only")
    | Rw, _ when Option.is_some eng_opt ->
        `Error
          (false, "oblivious-rw is not engine-parametric; drop --engine")
    | Flooding, Env_lb when Option.is_some eng_opt ->
        `Error
          (false,
           "the lower-bound adversary run is not engine-parametric; drop \
            --engine")
    | (Flooding | Rw), _ when reliable ->
        `Error
          (false,
           "--reliable wraps a unicast protocol: use single-source or \
            multi-source")
    | Rw, _ when faulty ->
        `Error
          (false,
           "oblivious-rw does not take a fault plan yet; drop the fault flags")
    | Flooding, Env_lb when faulty ->
        `Error
          (false,
           "the lower-bound adversary models worst-case scheduling, not \
            faults; drop the fault flags")
    | (Single | Multi), Env_cutter ->
        let envv =
          Gossip.Runners.Request_cutting { seed; cut_prob = 0.7 }
        in
        let result, rt = run_unicast envv in
        report_run ~timeline ~json ?retransmits:rt ~name ~n ~k result;
        `Ok ()
    | Flooding, Env_lb ->
        let result, _, lb =
          Gossip.Runners.flooding_vs_lower_bound ~instance ~seed ~obs ~prof ()
        in
        report_run ~timeline ~json ~name ~n ~k result;
        if not json then begin
          let history = Adversary.Broadcast_lb.history lb in
          let max_c = List.fold_left (fun a (_, c) -> max a c) 0 history in
          Obs.Console.out
            (Printf.sprintf
               "lower-bound adversary: max free components %d (log n = %.1f)"
               max_c (Gossip.Bounds.logn n))
        end;
        `Ok ()
    | _, (Env_cutter | Env_lb) ->
        `Error
          (false,
           "request-cutter needs a unicast protocol; lower-bound needs \
            flooding")
    | _, _ -> (
        match schedule_of_env ~env ~seed ~n ~sigma with
        | None -> `Error (false, "unsupported environment")
        | Some schedule -> (
            match protocol with
            | Flooding ->
                let result, _ =
                  Gossip.Runners.flooding ~instance ~schedule ?engine:eng_opt
                    ~faults ~obs ~prof ()
                in
                report_run ~timeline ~json ~name ~n ~k result;
                `Ok ()
            | Single | Multi ->
                let result, rt =
                  run_unicast (Gossip.Runners.Oblivious schedule)
                in
                report_run ~timeline ~json ?retransmits:rt ~name ~n ~k result;
                `Ok ()
            | Rw ->
                let r =
                  Gossip.Runners.oblivious_rw ~instance ~schedule ~seed
                    ~const_f:0.05 ~force_rw:true ~obs ~prof ()
                in
                if json then print_json_report (rw_report ~name ~k r)
                else begin
                  Obs.Console.out
                    (Format.asprintf
                       "@[<v>algorithm 2: centers=%d phase1=%d rounds \
                        (settled: %b) phase2=%d rounds completed=%b@ %a@]"
                       r.Gossip.Oblivious_rw.centers
                       r.Gossip.Oblivious_rw.phase1_rounds
                       r.Gossip.Oblivious_rw.phase1_settled
                       r.Gossip.Oblivious_rw.phase2_rounds
                       r.Gossip.Oblivious_rw.completed Engine.Ledger.pp
                       r.Gossip.Oblivious_rw.ledger);
                  Obs.Console.out
                    (Printf.sprintf "paper messages (sans center chatter): %d"
                       r.Gossip.Oblivious_rw.paper_messages)
                end;
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ protocol_arg $ env_arg $ n_arg 24 $ k_arg 48 $ s_arg
        $ sigma_arg $ seed_arg $ loss_arg $ dup_arg $ crash_arg $ restart_arg
        $ max_delay_arg $ fault_seed_arg $ reliable_arg $ timeline_arg
        $ trace_arg $ profile_arg $ json_arg $ check_arg $ engine_arg
        $ shards_arg))

(* {2 experiments} *)

let experiment_names =
  [
    ("e0", `E0); ("e1", `E1); ("e2", `E2); ("e3", `E3); ("e4", `E4);
    ("e6", `E6); ("e7", `E7); ("e8", `E8); ("e9", `E9); ("e10", `E10);
    ("e11", `E11); ("e12", `E12); ("e13", `E13); ("e14", `E14);
    ("e15", `E15); ("e16", `E16); ("e17", `E17); ("e18", `E18);
  ]

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:
          "After the tables, print each experiment's wall-clock (from \
           the observability layer's per-experiment spans).")

let experiments_cmd =
  let doc =
    "Regenerate the paper's tables and figures (DESIGN.md experiments)."
  in
  let which =
    Arg.(
      value
      & pos_all (Arg.enum experiment_names) []
      & info [] ~docv:"ID"
          ~doc:
            "Experiment ids (e0 e1 ... e18); default: all.")
  in
  let run ids csv seed jobs timings profile check =
    Check.set_enabled check;
    exit_on_signals ();
    let metrics = if timings then Some (Obs.Metrics.create ()) else None in
    let selected =
      match ids with [] -> List.map snd experiment_names | _ :: _ -> ids
    in
    with_profile profile @@ fun prof ->
    List.iter
      (fun id ->
        let table =
          match id with
          | `E0 -> Analysis.Experiments.environments ?metrics ~seed ()
          | `E1 -> Analysis.Experiments.table1 ~jobs ?metrics ~prof ~seed ()
          | `E2 -> Analysis.Experiments.lower_bound ?metrics ~seed ()
          | `E3 -> Analysis.Experiments.free_edges ?metrics ~seed ()
          | `E4 -> Analysis.Experiments.single_source ~jobs ?metrics ~prof ~seed ()
          | `E6 -> Analysis.Experiments.multi_source ?metrics ~seed ()
          | `E7 -> Analysis.Experiments.rw_scaling ~jobs ?metrics ~prof ~seed ()
          | `E8 -> Analysis.Experiments.static_baseline ?metrics ~seed ()
          | `E9 -> Analysis.Experiments.time_vs_messages ?metrics ~seed ()
          | `E10 -> Analysis.Experiments.ablation ?metrics ~seed ()
          | `E11 -> Analysis.Experiments.rw_tradeoff ?metrics ~seed ()
          | `E12 -> Analysis.Experiments.coding_gap ?metrics ~seed ()
          | `E13 -> Analysis.Experiments.leader_election ?metrics ~seed ()
          | `E14 -> Analysis.Experiments.adaptivity ?metrics ~seed ()
          | `E15 -> Analysis.Experiments.robustness_loss ?metrics ~seed ()
          | `E16 -> Analysis.Experiments.robustness_crash ?metrics ~seed ()
          | `E17 -> Scenario.Experiment.real_trace ~jobs ?metrics ~seed ()
          | `E18 -> Analysis.Experiments.mega ?metrics ~seed ()
        in
        print_table ~csv table)
      selected;
    match metrics with
    | None -> ()
    | Some m ->
        print_table ~csv
          (Analysis.Table.make ~title:"experiment wall-clock"
             ~columns:[ "experiment"; "seconds" ]
             (List.filter_map
                (fun name ->
                  match Obs.Metrics.summary m name with
                  | Some s -> Some [ name; Printf.sprintf "%.3f" s.Obs.Metrics.sum ]
                  | None -> None)
                (Obs.Metrics.names m)))
  in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const run $ which $ csv_arg $ seed_arg $ jobs_arg $ timings_arg
      $ profile_arg $ check_arg)

(* {2 focused shortcuts} *)

let table1_cmd =
  let doc = "E1: the paper's Table 1 (Algorithm 2's amortized complexity)." in
  let ns =
    Arg.(
      value
      & opt (list int) [ 24; 32 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Node counts to sweep.")
  in
  let run ns csv seed jobs =
    print_table ~csv (Analysis.Experiments.table1 ~ns ~jobs ~seed ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc)
    Term.(const run $ ns $ csv_arg $ seed_arg $ jobs_arg)

let lowerbound_cmd =
  let doc = "E2+E3: the Section-2 local-broadcast lower bound." in
  let ns =
    Arg.(
      value
      & opt (list int) [ 16; 24; 32 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Node counts to sweep.")
  in
  let run ns csv seed =
    print_table ~csv (Analysis.Experiments.lower_bound ~ns ~seed ());
    print_table ~csv (Analysis.Experiments.free_edges ~seed ())
  in
  Cmd.v (Cmd.info "lowerbound" ~doc) Term.(const run $ ns $ csv_arg $ seed_arg)

let competitive_cmd =
  let doc =
    "E4/E5/E6: adversary-competitive accounting of the unicast algorithms."
  in
  let run csv seed =
    print_table ~csv (Analysis.Experiments.single_source ~seed ());
    print_table ~csv (Analysis.Experiments.multi_source ~seed ())
  in
  Cmd.v (Cmd.info "competitive" ~doc) Term.(const run $ csv_arg $ seed_arg)

(* {2 sweep} *)

let sweep_cmd =
  let doc =
    "Sweep node counts for one protocol x environment; one table row per \
     size (use --csv or --json for machine-readable output)."
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 8; 16; 32; 64 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Node counts to sweep.")
  in
  let k_factor_arg =
    Arg.(
      value & opt int 2
      & info [ "k-factor" ] ~docv:"F" ~doc:"Tokens per size: k = F * n.")
  in
  let run protocol env sizes k_factor sigma seed csv trace json =
    with_trace trace @@ fun obs ->
    let rows = ref [] in
    let reports = ref [] in
    let ok = ref true in
    List.iter
      (fun n ->
        let k = max 1 (k_factor * n) in
        let run_one () =
          match (protocol, env) with
          | (Single | Multi), Env_cutter ->
              let envv =
                Gossip.Runners.Request_cutting { seed; cut_prob = 0.7 }
              in
              let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
              Some
                (match protocol with
                | Single ->
                    fst
                      (Gossip.Runners.single_source ~instance ~env:envv ~obs ())
                | Multi | Flooding | Rw ->
                    fst
                      (Gossip.Runners.multi_source ~instance ~env:envv ~obs ()))
          | _, (Env_cutter | Env_lb) -> None
          | _, _ -> (
              match schedule_of_env ~env ~seed:(seed + n) ~n ~sigma with
              | None -> None
              | Some schedule -> (
                  match protocol with
                  | Flooding ->
                      let instance = Gossip.Instance.one_per_node ~n in
                      Some
                        (fst
                           (Gossip.Runners.flooding ~instance ~schedule ~obs ()))
                  | Single ->
                      let instance =
                        Gossip.Instance.single_source ~n ~k ~source:0
                      in
                      Some
                        (fst
                           (Gossip.Runners.single_source ~instance
                              ~env:(Gossip.Runners.Oblivious schedule) ~obs ()))
                  | Multi ->
                      let instance =
                        Gossip.Instance.multi_source
                          ~rng:(Dynet.Rng.make ~seed:(seed + n))
                          ~n ~k ~s:(min n k)
                      in
                      Some
                        (fst
                           (Gossip.Runners.multi_source ~instance
                              ~env:(Gossip.Runners.Oblivious schedule) ~obs ()))
                  | Rw -> None))
        in
        match run_one () with
        | None -> ok := false
        | Some result ->
            let ledger = result.Engine.Run_result.ledger in
            let k_used =
              match protocol with Flooding -> n | Single | Multi | Rw -> k
            in
            let name =
              Printf.sprintf "%s/%s/n=%d" (protocol_name protocol)
                (env_name env) n
            in
            reports :=
              Engine.Run_result.to_report ~name
                ~extra:
                  [
                    ("n", Obs.Json.Int n); ("k", Obs.Json.Int k_used);
                    ( "amortized_per_token",
                      Obs.Json.Float (Engine.Ledger.amortized ledger ~k:k_used)
                    );
                  ]
                result
              :: !reports;
            rows :=
              [
                string_of_int n;
                string_of_int k_used;
                (if result.Engine.Run_result.completed then "yes" else "NO");
                string_of_int result.Engine.Run_result.rounds;
                Analysis.Table.fint (Engine.Ledger.total ledger);
                Analysis.Table.fint (Engine.Ledger.tc ledger);
                Analysis.Table.ffloat (Engine.Ledger.amortized ledger ~k:k_used);
                Analysis.Table.ffloat
                  (Engine.Ledger.amortized_competitive ledger ~alpha:1.
                     ~k:k_used);
              ]
              :: !rows)
      sizes;
    if not !ok then
      `Error (false, "this protocol/environment combination cannot be swept")
    else if json then begin
      Obs.Console.out
        (Obs.Json.to_string
           (Obs.Json.List
              (List.rev_map Obs.Report.to_json !reports)));
      `Ok ()
    end
    else begin
      print_table ~csv
        (Analysis.Table.make ~title:"size sweep"
           ~columns:
             [ "n"; "k"; "done"; "rounds"; "messages"; "TC"; "amortized";
               "amortized (comp.)" ]
           (List.rev !rows));
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      ret
        (const run $ protocol_arg $ env_arg $ sizes_arg $ k_factor_arg
        $ sigma_arg $ seed_arg $ csv_arg $ trace_arg $ json_arg))

(* {2 scenario} *)

(* Scenario validation failures are invocation problems, same bucket
   as bad flags: every message to stderr, exit 2. *)
let spec_errors path errs =
  Obs.Console.error (Printf.sprintf "error: %s is not a valid scenario spec:" path);
  Obs.Console.lines (List.map (fun e -> "  - " ^ e) errs);
  exit 2

let load_spec path =
  match Scenario.Spec.load path with
  | Ok spec -> spec
  | Error errs -> spec_errors path errs

let output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write (NDJSON).")

let scenario_run_cmd =
  let doc =
    "Execute a scenario spec: one JSON run report per repeat, one per line \
     on stdout."
  in
  let spec_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Scenario spec file (JSON).")
  in
  let run path jobs profile check engine shards =
    Check.set_enabled check;
    let engine = resolve_engine ~engine ~shards in
    let spec = load_spec path in
    with_profile profile @@ fun prof ->
    match
      Scenario.Runner.run ~jobs ~base_dir:(Filename.dirname path) ~prof
        ?engine spec
    with
    | Error e ->
        Obs.Console.error ("error: " ^ e);
        exit 2
    | Ok reports ->
        Array.iter
          (fun r ->
            Obs.Console.out (Obs.Json.to_string (Obs.Report.to_json r)))
          reports
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ spec_pos $ jobs_arg $ profile_arg $ check_arg $ engine_arg
      $ shards_arg)

let scenario_record_cmd =
  let doc =
    "Record a spec's built-in oblivious environment (at the spec's seed) \
     into a replayable trace file."
  in
  let spec_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC" ~doc:"Scenario spec file (JSON).")
  in
  let rounds_arg =
    Arg.(
      value & opt int 0
      & info [ "rounds" ] ~docv:"R"
          ~doc:
            "Rounds to record. Default (0): the spec's max_rounds if set, \
             else the algorithm's full default round cap — guaranteeing the \
             trace covers any replayed run of the same spec bit-for-bit.")
  in
  let run path out rounds =
    let spec = load_spec path in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          Obs.Console.error ("error: " ^ m);
          exit 2)
        fmt
    in
    let n =
      match spec.Scenario.Spec.n with
      | Some n -> n
      | None -> fail "%s: recording needs an explicit n" path
    in
    if rounds < 0 then fail "--rounds %d is negative" rounds;
    let rounds =
      if rounds > 0 then rounds
      else
        match spec.Scenario.Spec.max_rounds with
        | Some r -> r
        | None -> (
            match spec.Scenario.Spec.algorithm with
            | Scenario.Spec.Flooding ->
                Gossip.Runners.default_broadcast_cap ~n ~k:spec.Scenario.Spec.k
            | Scenario.Spec.Single_source | Scenario.Spec.Multi_source ->
                Gossip.Runners.default_unicast_cap ~n ~k:spec.Scenario.Spec.k
            | Scenario.Spec.Oblivious_rw ->
                (* phase-1 + phase-2 default caps of Algorithm 2 *)
                (50 * n) + 1000 + (4 * n * spec.Scenario.Spec.k) + (4 * n * n))
    in
    match
      Scenario.Runner.builtin_schedule ~env:spec.Scenario.Spec.env
        ~sigma:spec.Scenario.Spec.sigma ~n ~seed:spec.Scenario.Spec.seed
    with
    | None ->
        fail
          "%s: only the built-in oblivious environments can be recorded here \
           (traces are already recorded; the request-cutter is adaptive — \
           capture its realized schedule with the library's Record wrappers)"
          path
    | Some schedule -> (
        let trace =
          Scenario.Record.of_schedule ~seed:spec.Scenario.Spec.seed
            ~provenance:
              ("oblivious:" ^ Scenario.Spec.env_family spec.Scenario.Spec.env)
            ~rounds schedule
        in
        match Scenario.Trace_io.save out trace with
        | Ok () ->
            Obs.Console.note
              (Printf.sprintf "recorded %d rounds of %s (n=%d, seed=%d) to %s"
                 rounds
                 (Scenario.Spec.env_family spec.Scenario.Spec.env)
                 n spec.Scenario.Spec.seed out)
        | Error e ->
            Obs.Console.error ("error: " ^ e);
            exit 1)
  in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(const run $ spec_pos $ output_arg $ rounds_arg)

let scenario_import_cmd =
  let doc =
    "Import a contact-sequence CSV (t,u,v[,duration] lines, # comments) \
     into a round-bucketed trace file."
  in
  let csv_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CSV" ~doc:"Contact-sequence file.")
  in
  let bucket_arg =
    Arg.(
      value & opt float 20.
      & info [ "bucket" ] ~docv:"SECONDS"
          ~doc:"Time-bucket length: contacts within one bucket form one round.")
  in
  let no_repair_arg =
    Arg.(
      value & flag
      & info [ "no-repair" ]
          ~doc:
            "Keep disconnected rounds as-is instead of adding the minimal \
             connecting edges (the engines will then reject the trace at \
             run time).")
  in
  let run path out bucket no_repair =
    if not (Float.is_finite bucket && bucket > 0.) then begin
      Obs.Console.error
        (Printf.sprintf "error: --bucket %g is not a positive duration" bucket);
      exit 2
    end;
    match Scenario.Contacts.import_file ~bucket ~repair:(not no_repair) path with
    | Error e ->
        Obs.Console.error ("error: " ^ e);
        exit 2
    | Ok (trace, st) -> (
        match Scenario.Trace_io.save out trace with
        | Ok () ->
            Obs.Console.lines
              [
                Printf.sprintf "imported %s -> %s" path out;
                Printf.sprintf
                  "  %d contacts -> %d nodes, %d rounds (%d empty buckets \
                   skipped)"
                  st.Scenario.Contacts.contacts st.Scenario.Contacts.nodes
                  st.Scenario.Contacts.imported_rounds
                  st.Scenario.Contacts.empty_buckets;
                Printf.sprintf
                  "  normalized: %d self-loops dropped, %d duplicates \
                   collapsed, %d out-of-order rows"
                  st.Scenario.Contacts.self_loops
                  st.Scenario.Contacts.duplicates
                  st.Scenario.Contacts.out_of_order;
                Printf.sprintf
                  "  connectivity repair: %d rounds patched with %d edges"
                  st.Scenario.Contacts.repaired_rounds
                  st.Scenario.Contacts.repaired_edges;
              ]
        | Error e ->
            Obs.Console.error ("error: " ^ e);
            exit 1)
  in
  Cmd.v
    (Cmd.info "import" ~doc)
    Term.(const run $ csv_pos $ output_arg $ bucket_arg $ no_repair_arg)

let scenario_validate_cmd =
  let doc =
    "Validate scenario specs and trace files (sniffed by their schema \
     field); exit 2 if any file has a problem."
  in
  let files_pos =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Spec or trace files.")
  in
  (* Sniff by the leading document's "schema" field: a spec file is one
     (possibly multi-line) JSON object, a trace file is NDJSON whose
     first line is the header. *)
  let schema_of path =
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
        let content =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let first_doc =
          match Obs.Json.of_string content with
          | Ok j -> Some j
          | Error _ -> (
              match String.index_opt content '\n' with
              | None -> None
              | Some i -> (
                  match Obs.Json.of_string (String.sub content 0 i) with
                  | Ok j -> Some j
                  | Error _ -> None))
        in
        (match first_doc with
        | Some j -> (
            match Obs.Json.member "schema" j with
            | Some (Obs.Json.String s) -> Ok s
            | _ -> Error "leading JSON document has no \"schema\" field")
        | None -> Error "not JSON/NDJSON (cannot read a schema field)")
  in
  let run files =
    let failed = ref false in
    let problem path msgs =
      failed := true;
      Obs.Console.error (Printf.sprintf "%s: INVALID" path);
      Obs.Console.lines (List.map (fun m -> "  - " ^ m) msgs)
    in
    List.iter
      (fun path ->
        match schema_of path with
        | Error e -> problem path [ e ]
        | Ok s when String.equal s Scenario.Spec.schema_name -> (
            match Scenario.Spec.load path with
            | Error errs -> problem path errs
            | Ok spec ->
                Obs.Console.note
                  (Printf.sprintf "%s: valid scenario spec (%s, %s env%s)"
                     path
                     (Scenario.Spec.algorithm_name spec.Scenario.Spec.algorithm)
                     (Scenario.Spec.env_family spec.Scenario.Spec.env)
                     (match spec.Scenario.Spec.n with
                     | Some n -> Printf.sprintf ", n=%d" n
                     | None -> "")))
        | Ok s when String.equal s Scenario.Trace_io.schema_name -> (
            match Scenario.Trace_io.load path with
            | Error e -> problem path [ e ]
            | Ok trace -> (
                match Scenario.Trace_io.validate trace with
                | Error e -> problem path [ e ]
                | Ok st -> (
                    match st.Scenario.Trace_io.first_disconnected with
                    | Some r ->
                        problem path
                          [
                            Printf.sprintf
                              "round %d is disconnected — the engines will \
                               reject this trace; re-import without \
                               --no-repair"
                              r;
                          ]
                    | None ->
                        Obs.Console.note
                          (Printf.sprintf
                             "%s: valid trace (n=%d, %d rounds, TC=%d, max \
                              %d edges/round)"
                             path trace.Scenario.Trace_io.header.n
                             st.Scenario.Trace_io.stat_rounds
                             st.Scenario.Trace_io.stat_tc
                             st.Scenario.Trace_io.stat_max_edges))))
        | Ok s ->
            problem path
              [
                Printf.sprintf
                  "unknown schema %S (expected %S or %S)" s
                  Scenario.Spec.schema_name Scenario.Trace_io.schema_name;
              ])
      files;
    if !failed then exit 2
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ files_pos)

(* {2 fuzz} *)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: run randomly generated scenario cases through a \
     pair of engines (by default a generated per-case pairing: the \
     pseudocode reference engine or the sharded SoA engine against the \
     optimized fastpath engine) and require byte-identical run reports and \
     realized schedules. Each divergence is shrunk to a minimal case and \
     saved to the corpus directory as a replayable trace + scenario spec \
     pair. Exit 0 when all cases agree, 1 on any mismatch, 2 on bad flags."
  in
  let runs_arg =
    Arg.(
      value & opt int 256
      & info [ "runs" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "fuzz-corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Directory for shrunk counterexamples (created on the first \
             mismatch; untouched on a clean run).")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt int 400
      & info [ "shrink-budget" ] ~docv:"B"
          ~doc:
            "Maximum shrink-predicate evaluations (each one run of both \
             engines) per counterexample.")
  in
  let engines_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("generated", `Generated); ("reference", `Reference);
               ("soa", `Soa 1); ("soa-2", `Soa 2); ("soa-4", `Soa 4);
             ])
          `Generated
      & info [ "engines" ] ~docv:"PAIRING"
          ~doc:
            "Engine pairing: $(b,generated) (default) draws a per-case \
             pairing — reference or SoA at shard counts 1/2/4, each \
             against the fastpath engine; $(b,reference), $(b,soa), \
             $(b,soa-2) or $(b,soa-4) pin that engine against the \
             fastpath engine on every case.")
  in
  let run runs seed corpus jobs shrink_budget json profile check engines =
    Check.set_enabled check;
    exit_on_signals ();
    if runs < 1 then bad_flag "--runs %d must be >= 1" runs;
    validate_seed ~flag:"seed" seed;
    if shrink_budget < 1 then
      bad_flag "--shrink-budget %d must be >= 1" shrink_budget;
    if jobs < 1 then bad_flag "--jobs %d must be >= 1" jobs;
    let metrics = Obs.Metrics.create () in
    let engine_a =
      match engines with
      | `Generated -> None
      | `Reference -> Some Engine.Reference.engine
      | `Soa shards -> Some (Engine.Soa.engine ~shards ())
    in
    with_profile profile @@ fun prof ->
    let outcome =
      Fuzz.Campaign.run ?engine_a ~jobs ~metrics ~prof ~shrink_budget ~runs
        ~seed ()
    in
    let saved = Fuzz.Campaign.save_corpus ~dir:corpus outcome in
    let mismatches = outcome.Fuzz.Campaign.mismatches in
    if json then
      Obs.Console.out
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("cases", Obs.Json.Int runs); ("seed", Obs.Json.Int seed);
                ("mismatches", Obs.Json.Int (List.length mismatches));
                ( "shrink_steps",
                  Obs.Json.Int (Obs.Metrics.counter metrics "fuzz/shrink_steps")
                );
                ( "corpus",
                  Obs.Json.List
                    (List.map
                       (fun f ->
                         Obs.Json.String (Filename.concat corpus f))
                       saved) );
              ]))
    else begin
      Obs.Console.note
        (Printf.sprintf "fuzz: %d cases, seed %d: %d mismatch(es)" runs seed
           (List.length mismatches));
      List.iter2
        (fun (m : Fuzz.Campaign.mismatch) spec_file ->
          Obs.Console.error
            (Printf.sprintf
               "mismatch: case %d (%s, n=%d k=%d s=%d): %s — shrunk to n=%d \
                %d round(s), saved as %s"
               m.Fuzz.Campaign.case.Fuzz.Case.id
               (Fuzz.Case.algo_name m.Fuzz.Campaign.case.Fuzz.Case.algo)
               m.Fuzz.Campaign.case.Fuzz.Case.n
               m.Fuzz.Campaign.case.Fuzz.Case.k
               m.Fuzz.Campaign.case.Fuzz.Case.s m.Fuzz.Campaign.detail
               m.Fuzz.Campaign.shrunk.Fuzz.Case.n
               (Fuzz.Case.period m.Fuzz.Campaign.shrunk)
               (Filename.concat corpus spec_file)))
        mismatches saved
    end;
    match mismatches with [] -> () | _ :: _ -> exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ runs_arg $ seed_arg $ corpus_arg $ jobs_arg
      $ shrink_budget_arg $ json_arg $ profile_arg $ check_arg $ engines_arg)

let scenario_cmd =
  let doc =
    "Declarative scenario workloads: record built-in environments as \
     traces, import real contact data, validate, and run."
  in
  Cmd.group
    (Cmd.info "scenario" ~doc)
    [
      scenario_run_cmd; scenario_record_cmd; scenario_import_cmd;
      scenario_validate_cmd;
    ]

(* {2 serve / submit}

   The long-running daemon and its client.  `serve` owns a persistent
   Domain pool behind a unix-domain (or TCP) socket speaking
   dynspread-rpc/v1 (NDJSON frames, see DESIGN.md); `submit` sends
   specs, streams reports back byte-identical to `scenario run`, and
   maps outcomes onto the usual exit codes (0 completed, 1 cancelled,
   3 failed, 2 for IO/protocol/validation problems). *)

let parse_hostport ~flag s =
  let fail () = bad_flag "--%s %S is not HOST:PORT" flag s in
  match String.rindex_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      let host = if String.equal host "" then "127.0.0.1" else host in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> (host, p)
      | Some _ | None -> fail ())

let socket_arg =
  Arg.(
    value & opt string "dynspread.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain rpc socket path (an empty string disables the \
           unix listener).")

let serve_cmd =
  let doc =
    "Run the gossip daemon: accept scenario submissions over a streaming \
     NDJSON rpc socket, schedule them over a persistent domain pool."
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:"Also accept rpc sessions over TCP.")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Answer HTTP $(b,GET /metrics) (Prometheus text format, \
             namespace $(b,dynspread_serve)) on 127.0.0.1:$(docv).")
  in
  let workers_arg =
    Arg.(
      value
      & opt int (Analysis.Sweep.recommended_jobs ())
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Worker domains in the job pool (spawned once, reused across \
             jobs). Default: the machine's recommended domain count.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 128
      & info [ "queue-cap" ] ~docv:"Q"
          ~doc:
            "Bounded admission queue: submissions beyond $(docv) pending \
             jobs are rejected with an explicit backpressure frame instead \
             of queued without limit.")
  in
  let run socket listen metrics_port workers queue_cap check =
    Check.set_enabled check;
    if workers < 1 then bad_flag "--workers %d must be >= 1" workers;
    if queue_cap < 1 then bad_flag "--queue-cap %d must be >= 1" queue_cap;
    let listen = Option.map (parse_hostport ~flag:"listen") listen in
    let socket = if String.equal socket "" then None else Some socket in
    (match (socket, listen) with
    | None, None -> bad_flag "serve needs --socket PATH or --listen HOST:PORT"
    | Some _, _ | _, Some _ -> ());
    let metrics =
      Option.map
        (fun p ->
          if p < 0 || p > 65535 then
            bad_flag "--metrics-port %d is out of range" p;
          ("127.0.0.1", p))
        metrics_port
    in
    (* First signal: flip [stop], the event loop cancels every job at
       its next round boundary, flushes terminal frames, and [run]
       returns [`Signalled].  Second signal: stop waiting, exit 130
       now (at_exit drains still run). *)
    let stop = Atomic.make 0 in
    install_signal Sys.sigpipe Sys.Signal_ignore;
    let graceful =
      Sys.Signal_handle
        (fun _ -> if Atomic.fetch_and_add stop 1 >= 1 then Stdlib.exit 130)
    in
    install_signal Sys.sigint graceful;
    install_signal Sys.sigterm graceful;
    (match socket with
    | Some path ->
        Obs.Console.note
          (Printf.sprintf "serve: rpc on %s (%d worker(s), queue cap %d)"
             path workers queue_cap)
    | None -> ());
    (match listen with
    | Some (h, p) -> Obs.Console.note (Printf.sprintf "serve: rpc on %s:%d" h p)
    | None -> ());
    (match metrics with
    | Some (h, p) ->
        Obs.Console.note
          (Printf.sprintf "serve: metrics on http://%s:%d/metrics" h p)
    | None -> ());
    match
      Serve.Server.run
        { Serve.Server.socket; listen; metrics; workers; queue_cap; stop }
    with
    | `Completed -> ()
    | `Signalled -> exit 130
    | exception Serve.Server.Startup_error msg ->
        Obs.Console.error ("error: " ^ msg);
        exit 2
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ listen_arg $ metrics_port_arg $ workers_arg
      $ queue_cap_arg $ check_arg)

let submit_cmd =
  let doc =
    "Submit scenario specs to a running serve daemon and stream the \
     reports back (byte-identical to $(b,dynspread scenario run))."
  in
  let specs_pos =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SPEC"
          ~doc:"Scenario spec files (JSON), submitted in order.")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Reach the daemon over TCP instead of the unix socket.")
  in
  let events_arg =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:
            "Stream the job's dynspread-trace/v1 events to stderr while \
             it runs (reports stay on stdout).")
  in
  let status_arg =
    Arg.(
      value & flag
      & info [ "status" ] ~doc:"Print the daemon's job table and exit.")
  in
  let job_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "job" ] ~docv:"N" ~doc:"Restrict $(b,--status) to one job.")
  in
  let cancel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cancel" ] ~docv:"N" ~doc:"Cancel job N and exit.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the daemon to drain its queue and exit.")
  in
  let tag_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tag" ] ~docv:"TAG"
          ~doc:
            "Correlation tag echoed in the daemon's accepted/rejected \
             frames. Default: the spec file's basename.")
  in
  let abs_dir path =
    let d = Filename.dirname path in
    if Filename.is_relative d then Filename.concat (Sys.getcwd ()) d else d
  in
  let run specs socket connect engine shards events status job cancel_id
      shutdown_flag tag =
    install_signal Sys.sigpipe Sys.Signal_ignore;
    exit_on_signals ();
    if shards < 1 then bad_flag "--shards %d must be >= 1" shards;
    (match engine with
    | Eng_soa -> ()
    | Eng_fastpath | Eng_reference ->
        if shards > 1 then
          bad_flag "--shards %d applies to --engine soa only" shards);
    let engine_name =
      match engine with
      | Eng_fastpath -> None
      | Eng_reference -> Some "reference"
      | Eng_soa -> Some "soa"
    in
    let shards_opt =
      match engine with
      | Eng_soa -> Some shards
      | Eng_fastpath | Eng_reference -> None
    in
    let target =
      match connect with
      | Some hp ->
          let host, port = parse_hostport ~flag:"connect" hp in
          Serve.Client.Tcp (host, port)
      | None ->
          if String.equal socket "" then
            bad_flag "submit needs --socket PATH or --connect HOST:PORT"
          else Serve.Client.Unix_path socket
    in
    let io_guard f =
      match f () with
      | v -> v
      | exception Serve.Client.Io_error msg ->
          Obs.Console.error ("error: " ^ msg);
          exit 2
    in
    let c = io_guard (fun () -> Serve.Client.connect target) in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    io_guard @@ fun () ->
    if shutdown_flag then begin
      Serve.Client.shutdown c;
      Obs.Console.note "daemon is draining"
    end
    else
      match cancel_id with
      | Some jid -> (
          match Serve.Client.cancel c ~job:jid with
          | Ok was ->
              Obs.Console.note
                (Printf.sprintf "job %d cancelled (was %s)" jid was)
          | Error reason ->
              Obs.Console.error ("error: " ^ reason);
              exit 2)
      | None ->
          if status then begin
            let jobs, depth, running = Serve.Client.status c ?job () in
            List.iter
              (fun (v : Serve.Rpc.job_view) ->
                Obs.Console.out
                  (Printf.sprintf "%d\t%s\t%s\t%d" v.Serve.Rpc.job
                     v.Serve.Rpc.name v.Serve.Rpc.state v.Serve.Rpc.reports))
              jobs;
            Obs.Console.note
              (Printf.sprintf "queued %d, running %d" depth running)
          end
          else begin
            (match specs with
            | [] -> bad_flag "submit needs at least one SPEC file"
            | _ :: _ -> ());
            let worst = ref 0 in
            List.iter
              (fun path ->
                let raw =
                  match
                    In_channel.with_open_bin path In_channel.input_all
                  with
                  | s -> s
                  | exception Sys_error msg ->
                      Obs.Console.error
                        (Printf.sprintf "error: cannot read %s: %s" path msg);
                      exit 2
                in
                let spec_json =
                  match Obs.Json.of_string raw with
                  | Ok j -> j
                  | Error e ->
                      Obs.Console.error
                        (Printf.sprintf "error: %s is not JSON: %s" path e);
                      exit 2
                in
                let sub =
                  {
                    Serve.Rpc.tag =
                      (match tag with
                      | Some _ -> tag
                      | None -> Some (Filename.basename path));
                    spec = spec_json;
                    base_dir = Some (abs_dir path);
                    engine = engine_name;
                    shards = shards_opt;
                    events;
                  }
                in
                match
                  Serve.Client.submit_await c sub
                    ~on_event:(fun line -> Obs.Console.note line)
                    ~on_report:(fun _ line -> Obs.Console.out line)
                with
                | Error reason ->
                    Obs.Console.error
                      (Printf.sprintf "error: %s: %s" path reason);
                    exit 2
                | Ok fin -> (
                    match fin.Serve.Client.outcome with
                    | "completed" -> ()
                    | "cancelled" ->
                        Obs.Console.note
                          (Printf.sprintf
                             "%s: job %d cancelled after %d report(s)" path
                             fin.Serve.Client.job fin.Serve.Client.reports);
                        if !worst < 1 then worst := 1
                    | "failed" ->
                        Obs.Console.error
                          (Printf.sprintf "%s: job %d failed: %s" path
                             fin.Serve.Client.job
                             (Option.value fin.Serve.Client.reason
                                ~default:"unknown failure"));
                        worst := 3
                    | other ->
                        Obs.Console.error
                          (Printf.sprintf
                             "%s: job %d ended in unknown state %S" path
                             fin.Serve.Client.job other);
                        worst := 3))
              specs;
            if !worst > 0 then exit !worst
          end
  in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      const run $ specs_pos $ socket_arg $ connect_arg $ engine_arg
      $ shards_arg $ events_arg $ status_arg $ job_arg $ cancel_arg
      $ shutdown_arg $ tag_arg)

let main_cmd =
  let doc =
    "information spreading in adversarial dynamic networks (Ahmadi et al., \
     ICDCS 2019)"
  in
  let info = Cmd.info "dynspread" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      run_cmd; experiments_cmd; table1_cmd; lowerbound_cmd; competitive_cmd;
      sweep_cmd; scenario_cmd; fuzz_cmd; serve_cmd; submit_cmd;
    ]

(* The engine's violation exceptions mean a protocol or adversary
   broke the model mid-run — a bug in what was wired together, not in
   the user's invocation.  Catch them at the command boundary and turn
   them into a one-line diagnostic with a distinct exit code (3, vs
   cmdliner's own codes for CLI misuse). *)
let () =
  (* [~catch:false]: cmdliner's default handler would swallow these as
     "internal error" backtraces before the matches below could run. *)
  match Cmd.eval ~catch:false main_cmd with
  | code -> exit code
  | exception Engine.Engine_error.Protocol_violation msg ->
      Obs.Console.error ("dynspread: protocol violation: " ^ msg);
      exit 3
  | exception Engine.Engine_error.Adversary_violation msg ->
      Obs.Console.error ("dynspread: adversary violation: " ^ msg);
      exit 3
  | exception Check.Check_failed msg ->
      Obs.Console.error ("dynspread: invariant check failed: " ^ msg);
      exit 3
  (* Asking a finite recorded schedule for a round it does not have is
     an invocation problem (the trace is too short for the run), not a
     model violation — same exit bucket as bad flags and invalid
     specs. *)
  | exception Engine.Engine_error.Schedule_exhausted { round; available } ->
      Obs.Console.error
        (Printf.sprintf
           "dynspread: trace exhausted: round %d requested but only %d \
            rounds recorded"
           round available);
      exit 2
