(* The Section-2 lower bound, live: the strongly adaptive adversary
   samples its K'_v sets, then each round inspects every node's
   announced broadcast, keeps all "free" edges (over which nothing new
   can be learned) and spends the minimum number of non-free edges on
   connectivity.  Rounds with few broadcasters make zero progress
   (Lemma 2.2: the free edges alone are connected); no round makes more
   than O(log n) progress (Lemma 2.1).

   Run with: dune exec examples/adversarial_demo.exe *)

let describe name (result : Engine.Run_result.t) lb ~k ~n =
  let ledger = result.ledger in
  let learnings = Engine.Ledger.learnings ledger in
  let total = Engine.Ledger.total ledger in
  (* Cost per fully disseminated token-equivalent: messages per
     learning, scaled by the n-1 learnings a token needs. *)
  let per_token =
    if learnings = 0 then Float.infinity
    else float_of_int total /. float_of_int learnings *. float_of_int (n - 1)
  in
  let history = Adversary.Broadcast_lb.history lb in
  let max_components =
    List.fold_left (fun acc (_, c) -> max acc c) 0 history
  in
  let silent_blocked =
    List.filter
      (fun (b, c) ->
        float_of_int b <= Gossip.Bounds.sparse_broadcaster_threshold ~n ()
        && c = 1)
      history
    |> List.length
  in
  Format.printf
    "%-14s %8s %6d rounds %9d msgs  %8.0f per-token  (floor %.0f)@." name
    (if result.completed then "done" else "capped")
    result.rounds total per_token
    (Gossip.Bounds.lb_amortized ~n);
  Format.printf
    "               learnings %d/%d; free-component max %d (log n = %.0f);@.\
    \               %d sparse rounds had a single free component (no progress)@."
    learnings
    (k * (n - 1))
    max_components (Gossip.Bounds.logn n) silent_blocked

let () =
  let n = 32 in
  let instance = Gossip.Instance.one_per_node ~n in
  let k = Gossip.Instance.k instance in
  Format.printf
    "Strongly adaptive adversary vs three broadcast strategies (n = k = %d)@.@."
    n;
  let result, _, lb =
    Gossip.Runners.flooding_vs_lower_bound ~instance ~seed:3 ()
  in
  describe "flooding" result lb ~k ~n;
  let result, _, lb =
    Gossip.Runners.greedy_vs_lower_bound ~instance
      ~policy:Gossip.Greedy_bcast.Random_token ~seed:4 ~max_rounds:(n * k) ()
  in
  describe "random-token" result lb ~k ~n;
  let result, _, lb =
    Gossip.Runners.greedy_vs_lower_bound ~instance
      ~policy:(Gossip.Greedy_bcast.Lazy 0.15) ~seed:5 ~max_rounds:(n * k) ()
  in
  describe "lazy (p=0.15)" result lb ~k ~n;
  Format.printf
    "@.Every strategy pays at least the n^2/log^2 n floor per token actually@.\
     delivered; staying silent only starves progress (Lemma 2.2).@."
