(* Quickstart: disseminate k tokens from one source through a churning
   dynamic network with Algorithm 1 (Single-Source-Unicast), and read
   the cost ledger.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let n = 32 and k = 64 in

  (* The problem: k tokens, all starting at node 0 (Definition 1.2,
     single-source special case). *)
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in

  (* The environment: an oblivious adversary that keeps a random tree
     backbone and rewires a fifth of the extra edges every round, with
     a 3-edge-stability guarantee (Theorems 3.4/3.6's assumption). *)
  let schedule =
    Adversary.Schedule.stabilized ~sigma:3
      (Adversary.Oblivious.rewiring ~seed:42 ~n ~extra:n ~rate:0.2)
  in

  (* Run Algorithm 1 until every node holds every token. *)
  let result, _states =
    Gossip.Runners.single_source ~instance
      ~env:(Gossip.Runners.Oblivious schedule) ()
  in

  let ledger = result.Engine.Run_result.ledger in
  Format.printf "@[<v>%a@]@." Engine.Run_result.pp result;
  Format.printf "amortized messages per token: %.1f (n = %d)@."
    (Engine.Ledger.amortized ledger ~k)
    n;
  Format.printf "adversary-competitive cost (alpha = 1): %.0f vs budget %.0f@."
    (Engine.Ledger.competitive_cost ledger ~alpha:1.)
    (Gossip.Bounds.single_source_budget ~n ~k)
