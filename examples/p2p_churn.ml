(* P2P overlay under churn: every peer publishes a batch of updates
   (multi-source gossip).  Compares plain message complexity with the
   adversary-competitive accounting (Definition 1.3) across increasingly
   hostile environments, including the adaptive request-cutter.

   Run with: dune exec examples/p2p_churn.exe *)

let run_env name env instance =
  let n = Gossip.Instance.n instance in
  let k = Gossip.Instance.k instance in
  let s = Gossip.Instance.source_count instance in
  let result, _ = Gossip.Runners.multi_source ~instance ~env () in
  let ledger = result.Engine.Run_result.ledger in
  Format.printf
    "%-18s %9s %7d rounds %8d msgs %6d TC %10.0f competitive (budget %.0f)@."
    name
    (if result.Engine.Run_result.completed then "done" else "CAPPED")
    result.Engine.Run_result.rounds
    (Engine.Ledger.total ledger)
    (Engine.Ledger.tc ledger)
    (Engine.Ledger.competitive_cost ledger ~alpha:1.)
    (Gossip.Bounds.multi_source_budget ~n ~k ~s)

let () =
  let n = 24 in
  let peers_with_updates = 6 in
  let k = 48 in
  let rng = Dynet.Rng.make ~seed:7 in
  let instance =
    Gossip.Instance.multi_source ~rng ~n ~k ~s:peers_with_updates
  in
  Format.printf "P2P overlay: %d peers, %d publishers, %d updates@.@." n
    peers_with_updates k;
  let stable sched = Adversary.Schedule.stabilized ~sigma:3 sched in
  run_env "static overlay"
    (Gossip.Runners.Oblivious
       (Adversary.Oblivious.static
          (Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed:11) ~n
             ~p:0.15)))
    instance;
  run_env "mild churn"
    (Gossip.Runners.Oblivious
       (stable (Adversary.Oblivious.rewiring ~seed:12 ~n ~extra:n ~rate:0.1)))
    instance;
  run_env "heavy churn"
    (Gossip.Runners.Oblivious
       (stable (Adversary.Oblivious.tree_rotator ~seed:13 ~n)))
    instance;
  run_env "request cutter"
    (Gossip.Runners.Request_cutting { seed = 14; cut_prob = 0.5 })
    instance;
  Format.printf
    "@.The competitive column stays near the O(n^2 s + nk) budget no matter@.\
     how much the environment churns: every extra message the protocol had@.\
     to send is matched by a topology change the adversary had to make.@."
