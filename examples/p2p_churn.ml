(* P2P overlay under churn, driven by a declarative scenario file.

   Peers publish batches of updates (multi-source gossip) over an
   overlay whose edges rewire every round.  The whole workload
   — algorithm, environment, instance shape, fault plan, seeds, repeats
   — lives in p2p_churn.scenario.json next to this file; the code only
   loads the spec, runs it through Scenario.Runner (the same path as
   `dynspread scenario run`), and prints the cost accounting.

   Edit the JSON and re-run to explore: no recompilation needed.

   Run with: dune exec examples/p2p_churn.exe *)

(* Fallback when the binary runs from a directory that does not have
   the spec file in sight: byte-for-byte the shipped spec. *)
let embedded_spec =
  {json|{ "schema": "dynspread-scenario/v1",
  "name": "p2p-churn",
  "algorithm": "multi-source",
  "env": { "family": "rewiring", "rate": 0.25 },
  "n": 16, "k": 24, "s": 4,
  "seed": 11, "repeats": 3 }
|json}

let load_spec () =
  let candidates =
    [ "examples/p2p_churn.scenario.json"; "p2p_churn.scenario.json" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> (path, Scenario.Spec.load path)
  | None -> ("<embedded>", Scenario.Spec.of_string embedded_spec)

let () =
  let origin, spec = load_spec () in
  let spec =
    match spec with
    | Ok spec -> spec
    | Error errs ->
        Format.eprintf "@[<v>invalid scenario spec (%s):@ %a@]@." origin
          (Format.pp_print_list Format.pp_print_string)
          errs;
        exit 2
  in
  let n = Option.value spec.Scenario.Spec.n ~default:0 in
  let k = spec.Scenario.Spec.k in
  Format.printf
    "P2P overlay (%s):@.%d peers, %d publishers, %d updates, %s env@.@."
    origin n spec.Scenario.Spec.s k
    (Scenario.Spec.env_family spec.Scenario.Spec.env);
  let reports =
    match Scenario.Runner.run spec with
    | Ok reports -> reports
    | Error e ->
        Format.eprintf "scenario failed: %s@." e;
        exit 2
  in
  let budget =
    Gossip.Bounds.multi_source_budget ~n ~k ~s:spec.Scenario.Spec.s
  in
  Array.iter
    (fun (r : Obs.Report.t) ->
      Format.printf
        "%-28s %6s %5d rounds %6d msgs %5d TC %8.0f competitive (budget \
         %.0f)@."
        r.Obs.Report.name
        (if r.Obs.Report.completed then "done" else "CAPPED")
        r.Obs.Report.rounds r.Obs.Report.messages r.Obs.Report.tc
        r.Obs.Report.competitive_cost budget)
    reports;
  Format.printf
    "@.The competitive column stays near the O(n^2 s + nk) budget however@.\
     much the overlay churns: every extra message the protocol had@.\
     to send is matched by a topology change the adversary had to@.\
     make.  Edit %s and re-run to explore.@."
    (if String.equal origin "<embedded>" then "examples/p2p_churn.scenario.json"
     else origin)
