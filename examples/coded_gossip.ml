(* The token-forwarding barrier, live (Section 1.2 of the paper).

   Token-forwarding algorithms cannot beat Omega(nk/log n) rounds (and
   Omega(n^2/log^2 n) amortized broadcasts) against a strongly adaptive
   adversary.  Network coding is exempt: nodes broadcast random GF(2)
   combinations of what they know, and everyone decodes once their
   received packets reach full rank - O(n + k) rounds, at the price of
   k-bit coefficient vectors per message.

   Run with: dune exec examples/coded_gossip.exe *)

let () =
  Format.printf
    "n-gossip, identical fresh-random dynamic networks, same seeds:@.@.";
  Format.printf "%4s  %18s  %18s  %8s@." "n" "flooding (rounds)"
    "coding (rounds)" "speedup";
  List.iter
    (fun n ->
      let instance = Gossip.Instance.one_per_node ~n in
      let schedule seed = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.25 in
      let flood, _ =
        Gossip.Runners.flooding ~instance ~schedule:(schedule n) ()
      in
      let coded, states =
        Gossip.Runners.coded_broadcast ~instance ~schedule:(schedule n)
          ~seed:(n * 3) ()
      in
      assert (Gossip.Coded_bcast.all_decoded ~k:n states);
      Format.printf "%4d  %18d  %18d  %7.1fx@." n
        flood.Engine.Run_result.rounds coded.Engine.Run_result.rounds
        (float_of_int flood.Engine.Run_result.rounds
        /. float_of_int coded.Engine.Run_result.rounds))
    [ 12; 16; 24; 32; 48 ];
  Format.printf
    "@.Every coded run fully decodes (checked against the real payloads).@.\
     The catch: each coded packet carries a k-bit coefficient vector, far@.\
     beyond the O(log n) bits a token-forwarding message may use - which@.\
     is exactly why the paper's lower bounds do not apply to coding.@."
