(* Wireless sensor network: n sensors each hold one reading (n-gossip)
   and communicate by local radio broadcast.  Phased flooding spreads
   all readings in <= n*k rounds at O(n^2) amortized broadcasts — and
   Theorem 2.3 says no token-forwarding algorithm can beat
   n^2/log^2 n amortized against a worst-case adaptive environment, so
   flooding is already within a polylog of optimal.

   Run with: dune exec examples/sensor_flood.exe *)

let () =
  let n = 24 in
  let instance = Gossip.Instance.one_per_node ~n in
  let k = Gossip.Instance.k instance in
  Format.printf "Sensor field: %d sensors, one reading each (k = %d)@.@." n k;
  let environments =
    [
      ( "static field",
        Adversary.Oblivious.static
          (Dynet.Graph_gen.random_regularish (Dynet.Rng.make ~seed:5) ~n ~d:4)
      );
      ("mobile sensors", Adversary.Oblivious.fresh_random ~seed:6 ~n ~p:0.08);
      ("single corridor", Adversary.Oblivious.static (Dynet.Graph_gen.path ~n));
    ]
  in
  List.iter
    (fun (name, schedule) ->
      let result, _ = Gossip.Runners.flooding ~instance ~schedule () in
      let ledger = result.Engine.Run_result.ledger in
      Format.printf
        "%-16s %9s %6d rounds %8d broadcasts  amortized %7.1f per reading@."
        name
        (if result.Engine.Run_result.completed then "done" else "CAPPED")
        result.Engine.Run_result.rounds
        (Engine.Ledger.total ledger)
        (Engine.Ledger.amortized ledger ~k))
    environments;
  Format.printf
    "@.Bounds for n = %d: flooding upper n^2 = %.0f, adversarial floor@.\
     n^2/log^2 n = %.1f (Theorem 2.3).  See adversarial_demo.exe for the@.\
     floor being enforced by the strongly adaptive adversary.@."
    n
    (Gossip.Bounds.flooding_amortized ~n)
    (Gossip.Bounds.lb_amortized ~n)
