(* Tests for the fast-path substrate: packed bitsets checked against a
   reference [Set.Make (Int)] on random operation sequences, the
   int-keyed edge table and incremental graph deltas checked against
   Edge_set algebra, the stability wrapper's physical graph reuse, and
   the deterministic parallel sweep runner. *)

open Dynet
module ISet = Set.Make (Int)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {2 Bitset vs Set.Make(Int) on random op sequences} *)

type op = Set of int | Unset of int | Add of int | Remove of int

let op_gen ~cap =
  QCheck.Gen.(
    int_bound (cap - 1) >>= fun i ->
    oneofl [ Set i; Unset i; Add i; Remove i ])

let pp_op = function
  | Set i -> Printf.sprintf "set %d" i
  | Unset i -> Printf.sprintf "unset %d" i
  | Add i -> Printf.sprintf "add %d" i
  | Remove i -> Printf.sprintf "remove %d" i

let ops_arb ~cap =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_bound 120) (op_gen ~cap))

(* Replay one op on both representations; [Add]/[Remove] exercise the
   persistent copy-on-write path, [Set]/[Unset] the in-place one. *)
let replay cap ops =
  List.fold_left
    (fun (bs, ref_set) op ->
      match op with
      | Set i ->
          let bs = Bitset.copy bs in
          Bitset.set bs i;
          (bs, ISet.add i ref_set)
      | Unset i ->
          let bs = Bitset.copy bs in
          Bitset.unset bs i;
          (bs, ISet.remove i ref_set)
      | Add i -> (Bitset.add i bs, ISet.add i ref_set)
      | Remove i -> (Bitset.remove i bs, ISet.remove i ref_set))
    (Bitset.create cap, ISet.empty)
    ops

let cap = 150 (* > 2 words, so word boundaries are crossed *)

let prop_bitset_matches_reference =
  QCheck.Test.make ~name:"bitset: random ops match Set.Make(Int)" ~count:300
    (ops_arb ~cap) (fun ops ->
      let bs, ref_set = replay cap ops in
      Bitset.to_list bs = ISet.elements ref_set
      && Bitset.cardinal bs = ISet.cardinal ref_set
      && Bitset.is_empty bs = ISet.is_empty ref_set
      && List.for_all (fun i -> Bitset.mem bs i = ISet.mem i ref_set)
           (List.init cap Fun.id))

let prop_bitset_algebra_matches_reference =
  QCheck.Test.make ~name:"bitset: union/inter/diff match Set.Make(Int)"
    ~count:300
    (QCheck.pair (ops_arb ~cap) (ops_arb ~cap))
    (fun (ops_a, ops_b) ->
      let a, ra = replay cap ops_a in
      let b, rb = replay cap ops_b in
      Bitset.to_list (Bitset.union a b) = ISet.elements (ISet.union ra rb)
      && Bitset.to_list (Bitset.inter a b) = ISet.elements (ISet.inter ra rb)
      && Bitset.to_list (Bitset.diff a b) = ISet.elements (ISet.diff ra rb)
      && Bitset.subset a b = ISet.subset ra rb
      && Bitset.equal a b = ISet.equal ra rb)

let prop_bitset_scans_match_reference =
  QCheck.Test.make ~name:"bitset: next_set/next_clear match reference"
    ~count:300 (ops_arb ~cap) (fun ops ->
      let bs, ref_set = replay cap ops in
      let next_set_ref i =
        match ISet.find_first_opt (fun j -> j >= i) ref_set with
        | Some j -> j
        | None -> cap
      in
      let rec next_clear_ref i =
        if i >= cap then cap
        else if ISet.mem i ref_set then next_clear_ref (i + 1)
        else i
      in
      List.for_all
        (fun i ->
          Bitset.next_set bs i = next_set_ref i
          && Bitset.next_clear bs i = next_clear_ref i)
        (List.init cap Fun.id))

let test_bitset_persistent_sharing () =
  let a = Bitset.create 80 in
  let b = Bitset.add 63 a in
  check Alcotest.bool "input untouched by add" false (Bitset.mem a 63);
  (* dynlint: allow physical-eq — the assertion is that the no-op path
     returns the input unchanged, which is a physical-identity claim *)
  check Alcotest.bool "no-op add returns input" true (Bitset.add 63 b == b);
  check Alcotest.bool "no-op remove returns input" true
    (* dynlint: allow physical-eq — same physical-identity claim *)
    (Bitset.remove 5 b == b);
  let c = Bitset.remove 63 b in
  check Alcotest.bool "input untouched by remove" true (Bitset.mem b 63);
  check Alcotest.bool "removed in copy" false (Bitset.mem c 63)

(* {2 Edge_table / Graph incremental adjacency} *)

let graph_of_pairs n pairs =
  let t = Edge_table.create ~n () in
  List.iter (fun (u, v) -> if u <> v then Edge_table.add_pair t u v) pairs;
  Graph.of_table t

let pairs_arb n =
  QCheck.make
    ~print:(fun ps ->
      String.concat ", "
        (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) ps))
    QCheck.Gen.(
      list_size (int_bound 60)
        (pair (int_bound (n - 1)) (int_bound (n - 1))))

let prop_of_table_matches_make =
  QCheck.Test.make ~name:"graph: of_table ≡ make over Edge_set" ~count:200
    (pairs_arb 20) (fun pairs ->
      let n = 20 in
      let g = graph_of_pairs n pairs in
      let eset =
        List.fold_left
          (fun acc (u, v) ->
            if u = v then acc else Edge_set.add (Edge.make u v) acc)
          Edge_set.empty pairs
      in
      let g' = Graph.make ~n eset in
      Graph.same_edges g g'
      && Edge_set.equal (Graph.edges g) (Graph.edges g')
      && List.for_all
           (fun v -> Graph.neighbors g v = Graph.neighbors g' v)
           (List.init n Fun.id))

let prop_delta_counts_match_set_diff =
  QCheck.Test.make ~name:"graph: delta_counts ≡ Edge_set.diff cardinals"
    ~count:200
    (QCheck.pair (pairs_arb 16) (pairs_arb 16))
    (fun (ps_a, ps_b) ->
      let a = graph_of_pairs 16 ps_a and b = graph_of_pairs 16 ps_b in
      let inserted, removed = Graph.delta_counts ~prev:a ~cur:b in
      inserted
      = Edge_set.cardinal (Edge_set.diff (Graph.edges b) (Graph.edges a))
      && removed
         = Edge_set.cardinal (Edge_set.diff (Graph.edges a) (Graph.edges b)))

let prop_incident_edges_match_filter =
  QCheck.Test.make ~name:"graph: incident_edges ≡ Edge_set filter" ~count:200
    (pairs_arb 16) (fun pairs ->
      let n = 16 in
      let g = graph_of_pairs n pairs in
      List.for_all
        (fun v ->
          let fast = Edge_set.of_list (Graph.incident_edges g v) in
          let slow =
            Edge_set.filter (fun e -> Edge.incident e v) (Graph.edges g)
          in
          Edge_set.equal fast slow)
        (List.init n Fun.id))

let test_edge_table_basics () =
  let t = Edge_table.create ~n:6 () in
  Edge_table.add_pair t 4 1;
  Edge_table.add_pair t 1 4 (* canonical dup *);
  Edge_table.add_pair t 0 5;
  check Alcotest.int "cardinal dedups" 2 (Edge_table.cardinal t);
  check Alcotest.bool "mem either direction" true (Edge_table.mem_pair t 1 4);
  check (Alcotest.array Alcotest.int) "sorted keys in Edge.compare order"
    [| Edge_table.key ~n:6 0 5; Edge_table.key ~n:6 1 4 |]
    (Edge_table.sorted_keys t);
  Alcotest.check_raises "self-loop rejected"
    (Invalid_argument "Edge_table.key: self-loop") (fun () ->
      ignore (Edge_table.key ~n:6 3 3))

(* {2 Stability: physical reuse of unchanged rounds} *)

let test_stability_reuses_unchanged_graph () =
  let n = 8 in
  let proposal = graph_of_pairs n [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let st = Stability.create ~sigma:3 ~n in
  let g1 = Stability.step st proposal in
  let g2 = Stability.step st proposal in
  let g3 = Stability.step st proposal in
  check Alcotest.bool "same edges as proposal" true
    (Graph.same_edges g1 proposal);
  (* dynlint: allow physical-eq — Stability's contract is physical
     reuse of the held-down graph; == is exactly what is under test *)
  check Alcotest.bool "round 2 physically reused" true (g1 == g2);
  (* dynlint: allow physical-eq — same Stability reuse contract *)
  check Alcotest.bool "round 3 physically reused" true (g2 == g3);
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "delta of reused graph is (0, 0)" (0, 0)
    (Graph.delta_counts ~prev:g1 ~cur:g2);
  (* After sigma rounds the edge has aged out, so a change both breaks
     the physical streak and is allowed to drop it. *)
  let changed = graph_of_pairs n [ (0, 1); (1, 2); (2, 3); (4, 5) ] in
  let g4 = Stability.step st changed in
  (* dynlint: allow physical-eq — asserts the streak broke, i.e. the
     step did NOT physically reuse the previous graph *)
  check Alcotest.bool "changed round is a fresh graph" false (g3 == g4);
  check Alcotest.bool "aged edge may be dropped" false (Graph.mem_edge g4 3 4);
  (* A one-round-old edge, by contrast, is held down against a
     proposal that drops it. *)
  let st2 = Stability.create ~sigma:3 ~n in
  let h1 = Stability.step st2 proposal in
  let h2 = Stability.step st2 changed in
  check Alcotest.bool "proposal adopted" true (Graph.mem_edge h1 3 4);
  check Alcotest.bool "young edge held down" true (Graph.mem_edge h2 3 4);
  check Alcotest.bool "new edge still inserted" true (Graph.mem_edge h2 4 5)

(* {2 Sweep: deterministic parallel map} *)

let test_sweep_map_order_independent_of_jobs () =
  let points = Array.init 257 Fun.id in
  let f i = (i * i) - (3 * i) in
  let seq = Analysis.Sweep.map ~jobs:1 f points in
  List.iter
    (fun jobs ->
      check (Alcotest.array Alcotest.int)
        (Printf.sprintf "jobs=%d matches sequential" jobs)
        seq
        (Analysis.Sweep.map ~jobs f points))
    [ 2; 4; 7 ]

let test_sweep_raises_first_failure_by_index () =
  let points = [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  let f i = if i >= 3 then failwith (Printf.sprintf "point %d" i) else i in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d reports lowest failing point" jobs)
        (Failure "point 3")
        (fun () -> ignore (Analysis.Sweep.map ~jobs f points)))
    [ 1; 4 ]

let test_sweep_map_timed_records_per_point () =
  let metrics = Obs.Metrics.create () in
  let out =
    Analysis.Sweep.map_timed ~jobs:4 ~metrics ~name:"sweep/test-point"
      (fun i -> i + 1)
      (Array.init 10 Fun.id)
  in
  check (Alcotest.array Alcotest.int) "results in input order"
    (Array.init 10 (fun i -> i + 1))
    out;
  match Obs.Metrics.summary metrics "sweep/test-point" with
  | None -> Alcotest.fail "no per-point histogram recorded"
  | Some s ->
      check Alcotest.int "one sample per point" 10 s.Obs.Metrics.count;
      check Alcotest.bool "durations non-negative" true (s.Obs.Metrics.min >= 0.)

(* The tentpole guarantee: the experiment sweeps produce bit-identical
   tables — message counts included — whatever [jobs] is. *)
let test_sweep_experiments_deterministic_across_jobs () =
  let seed = 2024 in
  let csv_of tables = String.concat "\n" (List.map Analysis.Table.to_csv tables) in
  let run jobs =
    csv_of
      [
        Analysis.Experiments.table1 ~ns:[ 12 ] ~jobs ~seed ();
        Analysis.Experiments.single_source ~ns:[ 10 ] ~jobs ~seed ();
        Analysis.Experiments.rw_scaling ~n:10 ~ks:[ 10; 20 ] ~jobs ~seed ();
      ]
  in
  let seq = run 1 in
  check Alcotest.string "jobs=4 tables bit-identical to jobs=1" seq (run 4);
  check Alcotest.string "jobs=3 tables bit-identical to jobs=1" seq (run 3)

let suite =
  [
    qcheck prop_bitset_matches_reference;
    qcheck prop_bitset_algebra_matches_reference;
    qcheck prop_bitset_scans_match_reference;
    Alcotest.test_case "bitset: persistent add/remove sharing" `Quick
      test_bitset_persistent_sharing;
    qcheck prop_of_table_matches_make;
    qcheck prop_delta_counts_match_set_diff;
    qcheck prop_incident_edges_match_filter;
    Alcotest.test_case "edge_table: dedup, order, validation" `Quick
      test_edge_table_basics;
    Alcotest.test_case "stability: unchanged rounds reuse the graph" `Quick
      test_stability_reuses_unchanged_graph;
    Alcotest.test_case "sweep: map independent of jobs" `Quick
      test_sweep_map_order_independent_of_jobs;
    Alcotest.test_case "sweep: first failure by index" `Quick
      test_sweep_raises_first_failure_by_index;
    Alcotest.test_case "sweep: map_timed records per-point wall time" `Quick
      test_sweep_map_timed_records_per_point;
    Alcotest.test_case "sweep: experiment tables identical across jobs" `Slow
      test_sweep_experiments_deterministic_across_jobs;
  ]
