(* Tests for the weakly adaptive broadcast adversary (footnote 4) and
   the adversary-hierarchy experiment built on it. *)

let check = Alcotest.check

let dummy_intents n = Array.make n (None : int option)

let test_weak_always_connected () =
  let n = 12 in
  let adv = Adversary.Weak_bcast.make ~seed:1 ~n in
  let prev = ref (Dynet.Graph.empty ~n) in
  for round = 1 to 20 do
    let intents =
      Array.init n (fun v -> if (v + round) mod 3 = 0 then Some v else None)
    in
    let g = adv ~round ~prev:!prev ~states:(Array.make n ()) ~intents in
    Alcotest.check Alcotest.bool
      (Printf.sprintf "round %d connected" round)
      true (Dynet.Graph.is_connected g);
    Alcotest.check Alcotest.int
      (Printf.sprintf "round %d is a star" round)
      (n - 1) (Dynet.Graph.edge_count g);
    prev := g
  done

let test_weak_hub_avoids_recent_broadcasters () =
  let n = 10 in
  let adv = Adversary.Weak_bcast.make ~seed:2 ~n in
  (* Round 1: nodes 0..4 broadcast. *)
  let intents1 = Array.init n (fun v -> if v < 5 then Some v else None) in
  ignore
    (adv ~round:1 ~prev:(Dynet.Graph.empty ~n) ~states:(Array.make n ())
       ~intents:intents1);
  (* Round 2: whatever happens now, the hub must be one of 5..9 (the
     silent nodes of round 1).  The hub is the unique max-degree node
     of the star. *)
  let g2 =
    adv ~round:2 ~prev:(Dynet.Graph.empty ~n) ~states:(Array.make n ())
      ~intents:(dummy_intents n)
  in
  let hub = ref (-1) in
  for v = 0 to n - 1 do
    if Dynet.Graph.degree g2 v = n - 1 then hub := v
  done;
  check Alcotest.bool "hub was silent in round 1" true (!hub >= 5)

let test_weak_is_deterministic_given_seed () =
  let n = 8 in
  let run () =
    let adv = Adversary.Weak_bcast.make ~seed:3 ~n in
    List.init 6 (fun r ->
        let intents =
          Array.init n (fun v -> if (v + r) mod 2 = 0 then Some v else None)
        in
        let g =
          adv ~round:(r + 1) ~prev:(Dynet.Graph.empty ~n)
            ~states:(Array.make n ()) ~intents
        in
        Dynet.Edge_set.to_list (Dynet.Graph.edges g))
  in
  check Alcotest.bool "same seed, same graphs" true (run () = run ())

let test_weak_rejects_tiny_n () =
  Alcotest.check_raises "n >= 2"
    (Invalid_argument "Weak_bcast.make: n must be >= 2") (fun () ->
      let _ : (unit, unit) Engine.Runner_broadcast.adversary =
        Adversary.Weak_bcast.make ~seed:1 ~n:1
      in
      ())

let test_adaptivity_hierarchy_experiment () =
  let t = Analysis.Experiments.adaptivity ~n:20 ~budget:20 ~seed:5 () in
  let rendered = Analysis.Table.render t in
  check Alcotest.bool "hierarchy holds" true
    (not (Astring.String.is_infix ~affix:"FAIL" rendered));
  check Alcotest.int "six rows (2 policies x 3 adversaries)" 6
    (List.length (Analysis.Table.rows t))

let suite =
  [
    ("weak adversary: connected stars", `Quick, test_weak_always_connected);
    ("weak adversary: hub avoids recent broadcasters", `Quick,
     test_weak_hub_avoids_recent_broadcasters);
    ("weak adversary: deterministic", `Quick, test_weak_is_deterministic_given_seed);
    ("weak adversary: validation", `Quick, test_weak_rejects_tiny_n);
    ("adaptivity hierarchy experiment", `Quick,
     test_adaptivity_hierarchy_experiment);
  ]
