(* Tests for Algorithm 2: the random-walk gather phase (token
   conservation, settlement) and the full two-phase pipeline. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let dense_schedule ~seed ~n = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.3

(* {2 Rw_phase} *)

let centers_array ~n marked =
  let a = Array.make n false in
  List.iter (fun v -> a.(v) <- true) marked;
  a

let run_phase1 ~instance ~centers ~gamma ~seed ~schedule ~cap =
  let states = Gossip.Rw_phase.init ~instance ~centers ~gamma ~seed in
  Engine.Runner_unicast.run Gossip.Rw_phase.protocol ~states
    ~adversary:(Adversary.Schedule.unicast schedule)
    ~max_rounds:cap ~stop:Gossip.Rw_phase.settled ()

let all_held_uids states =
  Array.to_list states
  |> List.concat_map (fun st ->
         Gossip.Rw_phase.holding st
         |> List.map (fun t -> t.Gossip.Token.uid))
  |> List.sort Int.compare

let test_rw_phase_conserves_tokens () =
  let n = 20 and k = 15 in
  let rng = Dynet.Rng.make ~seed:3 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:8 in
  let centers = centers_array ~n [ 2; 11; 17 ] in
  let schedule = dense_schedule ~seed:4 ~n in
  (* Sample conservation at several horizons (including mid-flight). *)
  List.iter
    (fun cap ->
      let _, states =
        run_phase1 ~instance ~centers ~gamma:1000. ~seed:5 ~schedule ~cap
      in
      Alcotest.check (Alcotest.list Alcotest.int)
        (Printf.sprintf "uids intact after <=%d rounds" cap)
        (List.init k Fun.id) (all_held_uids states))
    [ 1; 5; 25; 400 ]

let test_rw_phase_settles_on_dense_graphs () =
  let n = 24 and k = 12 in
  let rng = Dynet.Rng.make ~seed:6 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:6 in
  let centers = centers_array ~n [ 0; 7; 13; 19 ] in
  let schedule = dense_schedule ~seed:7 ~n in
  let result, states =
    run_phase1 ~instance ~centers ~gamma:1000. ~seed:8 ~schedule ~cap:20000
  in
  check Alcotest.bool "settled" true result.Engine.Run_result.completed;
  check Alcotest.bool "all tokens at centers" true
    (Gossip.Rw_phase.settled states);
  (* Everything collected is owned by a center and sums to k. *)
  let collected = Gossip.Rw_phase.collected states in
  let total = List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 collected in
  check Alcotest.int "k tokens collected" k total

let test_rw_phase_tokens_stop_at_centers () =
  (* A center that starts with tokens keeps them: zero walk messages
     when the only tokens are at centers. *)
  let n = 10 and k = 4 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:5 in
  let centers = centers_array ~n [ 5 ] in
  let schedule = dense_schedule ~seed:9 ~n in
  let result, states =
    run_phase1 ~instance ~centers ~gamma:1000. ~seed:10 ~schedule ~cap:50
  in
  check Alcotest.bool "immediately settled" true
    result.Engine.Run_result.completed;
  check Alcotest.int "no walk messages" 0
    (Engine.Ledger.count result.Engine.Run_result.ledger Engine.Msg_class.Walk);
  check Alcotest.int "center still holds k" k
    (List.length (Gossip.Rw_phase.holding states.(5)))

let test_rw_phase_high_degree_handoff () =
  (* gamma = 0 forces the high-degree branch everywhere: tokens go
     straight to known center neighbors.  On a static star with the hub
     as source and a leaf center, the token must take hub -> center
     after the center announcement round. *)
  let n = 6 and k = 3 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let centers = centers_array ~n [ 3 ] in
  let schedule =
    Adversary.Oblivious.static (Dynet.Graph_gen.star ~n)
  in
  let result, states =
    run_phase1 ~instance ~centers ~gamma:0. ~seed:11 ~schedule ~cap:50
  in
  check Alcotest.bool "settled" true result.Engine.Run_result.completed;
  check Alcotest.int "center holds all" k
    (List.length (Gossip.Rw_phase.holding states.(3)));
  (* One walk message per token, no random detours. *)
  check Alcotest.int "walk messages = k" k
    (Engine.Ledger.count result.Engine.Run_result.ledger Engine.Msg_class.Walk)

let test_rw_phase_center_announcement_budget () =
  let n = 16 and k = 8 in
  let rng = Dynet.Rng.make ~seed:12 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:4 in
  let centers = centers_array ~n [ 1; 9 ] in
  let schedule = dense_schedule ~seed:13 ~n in
  let result, _ =
    run_phase1 ~instance ~centers ~gamma:1000. ~seed:14 ~schedule ~cap:5000
  in
  (* Each center announces to each other node at most once. *)
  check Alcotest.bool "center announcements <= centers * (n-1)" true
    (Engine.Ledger.count result.Engine.Run_result.ledger Engine.Msg_class.Center
    <= 2 * (n - 1))

let test_rw_phase_requires_a_center () =
  let instance = Gossip.Instance.single_source ~n:4 ~k:2 ~source:0 in
  Alcotest.check_raises "no centers rejected"
    (Invalid_argument "Rw_phase.init: at least one center required") (fun () ->
      ignore
        (Gossip.Rw_phase.init ~instance ~centers:(Array.make 4 false)
           ~gamma:10. ~seed:1))

let prop_rw_phase_conservation_random =
  QCheck.Test.make ~name:"rw phase: token conservation on random runs"
    ~count:15
    (QCheck.triple (QCheck.int_range 6 20) (QCheck.int_range 2 15)
       QCheck.small_nat)
    (fun (n, k, seed) ->
      let k = min k n in
      let rng = Dynet.Rng.make ~seed in
      let instance =
        Gossip.Instance.multi_source ~rng ~n ~k ~s:(max 1 (k / 2))
      in
      let centers = Array.make n false in
      centers.(seed mod n) <- true;
      centers.((seed + 3) mod n) <- true;
      let schedule = dense_schedule ~seed:(seed + 17) ~n in
      let _, states =
        run_phase1 ~instance ~centers ~gamma:(float_of_int (n / 2)) ~seed
          ~schedule ~cap:60
      in
      all_held_uids states = List.init k Fun.id)

(* {2 Full Algorithm 2} *)

let test_oblivious_rw_full_pipeline () =
  let n = 24 and k = 20 in
  let rng = Dynet.Rng.make ~seed:20 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:10 in
  let schedule = dense_schedule ~seed:21 ~n in
  let r =
    Gossip.Runners.oblivious_rw ~instance ~schedule ~seed:22 ~const_f:0.15
      ~force_rw:true ()
  in
  check Alcotest.bool "completed" true r.Gossip.Oblivious_rw.completed;
  check Alcotest.bool "phase 1 ran" false r.Gossip.Oblivious_rw.skipped_phase1;
  check Alcotest.bool "phase 1 settled" true r.Gossip.Oblivious_rw.phase1_settled;
  check Alcotest.bool "at least one center" true
    (r.Gossip.Oblivious_rw.centers >= 1);
  (* Learnings across both phases reach full dissemination. *)
  check Alcotest.bool "ledger has walk and token traffic" true
    (Engine.Ledger.count r.Gossip.Oblivious_rw.ledger Engine.Msg_class.Token > 0);
  check Alcotest.bool "paper messages exclude center chatter" true
    (r.Gossip.Oblivious_rw.paper_messages
    <= Engine.Ledger.total r.Gossip.Oblivious_rw.ledger)

let test_oblivious_rw_threshold_skips_phase1 () =
  (* Few sources: the paper's Remark says run Multi-Source directly. *)
  let n = 16 and k = 12 in
  let rng = Dynet.Rng.make ~seed:30 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:2 in
  let schedule = dense_schedule ~seed:31 ~n in
  let r = Gossip.Runners.oblivious_rw ~instance ~schedule ~seed:32 () in
  check Alcotest.bool "phase 1 skipped" true r.Gossip.Oblivious_rw.skipped_phase1;
  check Alcotest.bool "completed" true r.Gossip.Oblivious_rw.completed;
  check Alcotest.int "no walk messages" 0
    (Engine.Ledger.count r.Gossip.Oblivious_rw.ledger Engine.Msg_class.Walk)

let test_oblivious_rw_capped_phase1_still_completes () =
  (* Even if phase 1 can't settle (cap 1 round), stragglers become
     phase-2 sources and dissemination still completes. *)
  let n = 18 and k = 14 in
  let rng = Dynet.Rng.make ~seed:40 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:7 in
  let schedule = dense_schedule ~seed:41 ~n in
  let r =
    Gossip.Runners.oblivious_rw ~instance ~schedule ~seed:42 ~const_f:0.1
      ~force_rw:true ~phase1_cap:1 ()
  in
  check Alcotest.bool "phase 1 did not settle" false
    r.Gossip.Oblivious_rw.phase1_settled;
  check Alcotest.bool "still completed" true r.Gossip.Oblivious_rw.completed

let test_oblivious_rw_deterministic () =
  let n = 20 and k = 16 in
  let rng = Dynet.Rng.make ~seed:50 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:8 in
  let run () =
    let schedule = dense_schedule ~seed:51 ~n in
    let r =
      Gossip.Runners.oblivious_rw ~instance ~schedule ~seed:52 ~const_f:0.2
        ~force_rw:true ()
    in
    ( Engine.Ledger.total r.Gossip.Oblivious_rw.ledger,
      r.Gossip.Oblivious_rw.phase1_rounds,
      r.Gossip.Oblivious_rw.phase2_rounds )
  in
  let a = run () and b = run () in
  check
    (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "reproducible" a b

let prop_oblivious_rw_random =
  QCheck.Test.make ~name:"algorithm 2: completes on random dense envs"
    ~count:10
    (QCheck.pair (QCheck.int_range 10 24) QCheck.small_nat)
    (fun (n, seed) ->
      let k = n in
      let rng = Dynet.Rng.make ~seed:(seed + 60) in
      let instance =
        Gossip.Instance.multi_source ~rng ~n ~k ~s:(max 2 (n / 2))
      in
      let schedule = dense_schedule ~seed:(seed + 61) ~n in
      let r =
        Gossip.Runners.oblivious_rw ~instance ~schedule ~seed:(seed + 62)
          ~const_f:0.2 ~force_rw:true ()
      in
      r.Gossip.Oblivious_rw.completed)

let suite =
  [
    ("rw phase: token conservation", `Quick, test_rw_phase_conserves_tokens);
    ("rw phase: settles on dense graphs", `Quick,
     test_rw_phase_settles_on_dense_graphs);
    ("rw phase: tokens stop at centers", `Quick,
     test_rw_phase_tokens_stop_at_centers);
    ("rw phase: high-degree handoff", `Quick, test_rw_phase_high_degree_handoff);
    ("rw phase: center announcement budget", `Quick,
     test_rw_phase_center_announcement_budget);
    ("rw phase: requires a center", `Quick, test_rw_phase_requires_a_center);
    qcheck prop_rw_phase_conservation_random;
    ("algorithm 2: full pipeline", `Quick, test_oblivious_rw_full_pipeline);
    ("algorithm 2: source threshold", `Quick,
     test_oblivious_rw_threshold_skips_phase1);
    ("algorithm 2: capped phase 1 still completes", `Quick,
     test_oblivious_rw_capped_phase1_still_completes);
    ("algorithm 2: deterministic", `Quick, test_oblivious_rw_deterministic);
    qcheck prop_oblivious_rw_random;
  ]
