(* dynlint itself: one positive and one negative fixture per rule,
   waiver parsing in all its accepted shapes, the domain-safety audit
   on a fixture tree with an injected racy ref, and the regression that
   the shipped tree is violation-free (the same scan `dune build @lint`
   gates on). *)

open Lintcore

let check = Alcotest.check
let rules vs = List.map (fun (v : Rules.violation) -> v.Rules.rule) vs

let lint ~id content = rules (Driver.lint_source ~id content)

(* {2 Per-file rules on fixture snippets} *)

let test_poly_compare () =
  check
    Alcotest.(list string)
    "bare = in a strict lib" [ "poly-compare" ]
    (lint ~id:"lib/dynet/fixture.ml" "let f a b = a = b\n");
  check
    Alcotest.(list string)
    "open Ops satisfies the discipline" []
    (lint ~id:"lib/dynet/fixture.ml" "open Ops\n\nlet f a b = a = b\n");
  check
    Alcotest.(list string)
    "open Dynet.Ops satisfies it outside dynet" []
    (lint ~id:"lib/gossip/fixture.ml" "open Dynet.Ops\n\nlet f a b = a <> b\n");
  check
    Alcotest.(list string)
    "Stdlib.( = ) reaches around the shadow" [ "poly-compare" ]
    (lint ~id:"lib/engine/fixture.ml"
       "open Dynet.Ops\n\nlet f a b = Stdlib.( = ) a b\n");
  check
    Alcotest.(list string)
    "Hashtbl.hash is polymorphic too" [ "poly-compare" ]
    (lint ~id:"lib/dynet/fixture.ml" "open Ops\n\nlet h x = Hashtbl.hash x\n");
  check
    Alcotest.(list string)
    "non-strict libraries may compare freely" []
    (lint ~id:"lib/obs/fixture.ml" "let f a b = compare a b\n")

let test_physical_eq () =
  check
    Alcotest.(list string)
    "== outside the allowlist" [ "physical-eq" ]
    (lint ~id:"lib/obs/fixture.ml" "let f a b = a == b\n");
  check
    Alcotest.(list string)
    "!= too" [ "physical-eq" ]
    (lint ~id:"test/fixture.ml" "let f a b = a != b\n");
  check
    Alcotest.(list string)
    "Stability's reuse check is allowlisted" []
    (lint ~id:"lib/dynet/stability.ml" "open Ops\n\nlet f a b = a == b\n")

let test_obj_magic () =
  check
    Alcotest.(list string)
    "Obj.magic is never fine" [ "obj-magic" ]
    (lint ~id:"lib/obs/fixture.ml" "let f x = Obj.magic x\n");
  check
    Alcotest.(list string)
    "Obj.repr is not flagged" []
    (lint ~id:"lib/obs/fixture.ml" "let f x = Obj.repr x\n")

let test_catch_all_try () =
  check
    Alcotest.(list string)
    "try ... with _ ->" [ "catch-all-try" ]
    (lint ~id:"lib/obs/fixture.ml" "let f g = try g () with _ -> 0\n");
  check
    Alcotest.(list string)
    "matching a specific exception is fine" []
    (lint ~id:"lib/obs/fixture.ml" "let f g = try g () with Not_found -> 0\n")

let test_direct_print () =
  check
    Alcotest.(list string)
    "print_endline in a library" [ "direct-print" ]
    (lint ~id:"lib/analysis/fixture.ml" "let f () = print_endline \"x\"\n");
  check
    Alcotest.(list string)
    "Printf.printf in a library" [ "direct-print" ]
    (lint ~id:"lib/gossip/fixture.ml"
       "open Dynet.Ops\n\nlet f n = Printf.printf \"%d\" n\n");
  check
    Alcotest.(list string)
    "executables route output through Obs.Console" [ "direct-print" ]
    (lint ~id:"bin/fixture.ml" "let f () = print_endline \"x\"\n");
  check
    Alcotest.(list string)
    "lib/obs is the output layer" []
    (lint ~id:"lib/obs/fixture.ml" "let f () = prerr_endline \"x\"\n")

let test_syntax_error () =
  check
    Alcotest.(list string)
    "unparsable file" [ "syntax" ]
    (lint ~id:"lib/obs/fixture.ml" "let f = (\n")

(* {2 Waivers} *)

let test_waiver_applies () =
  List.iter
    (fun dash ->
      check
        Alcotest.(list string)
        (Printf.sprintf "waiver with %S dash" dash)
        []
        (lint ~id:"lib/obs/fixture.ml"
           (Printf.sprintf
              "(* dynlint: allow physical-eq %s caches share structure *)\n\
               let f a b = a == b\n"
              dash)))
    [ "\xe2\x80\x94"; "--"; "-" ]

let test_waiver_same_line () =
  check
    Alcotest.(list string)
    "waiver on the flagged line" []
    (lint ~id:"lib/obs/fixture.ml"
       "let f a b = a == b (* dynlint: allow physical-eq -- identity test *)\n")

let test_waiver_wrong_rule () =
  check
    Alcotest.(list string)
    "waiver for another rule does not apply, and is stale"
    [ "physical-eq"; "stale-waiver" ]
    (lint ~id:"lib/obs/fixture.ml"
       "(* dynlint: allow obj-magic -- wrong rule *)\nlet f a b = a == b\n")

let test_waiver_out_of_range () =
  check
    Alcotest.(list string)
    "waiver two lines above does not reach"
    [ "physical-eq"; "stale-waiver" ]
    (lint ~id:"lib/obs/fixture.ml"
       "(* dynlint: allow physical-eq -- too far up *)\n\n\
        let f a b = a == b\n")

let test_stale_waiver () =
  check
    Alcotest.(list string)
    "allow waiver matching nothing" [ "stale-waiver" ]
    (lint ~id:"lib/obs/fixture.ml"
       "(* dynlint: allow physical-eq -- nothing here *)\nlet f x = x\n")

let test_bad_waivers () =
  check
    Alcotest.(list string)
    "unknown rule name" [ "bad-waiver" ]
    (lint ~id:"lib/obs/fixture.ml"
       "(* dynlint: allow no-such-rule -- hm *)\nlet f x = x\n");
  check
    Alcotest.(list string)
    "missing reason" [ "bad-waiver" ]
    (lint ~id:"lib/obs/fixture.ml"
       "(* dynlint: allow physical-eq *)\nlet f x = x\n");
  check
    Alcotest.(list string)
    "empty reason" [ "bad-waiver" ]
    (lint ~id:"lib/obs/fixture.ml"
       "(* dynlint: allow physical-eq -- *)\nlet f x = x\n");
  check
    Alcotest.(list string)
    "not a waiver form at all" [ "bad-waiver" ]
    (lint ~id:"lib/obs/fixture.ml"
       "(* dynlint: please ignore this file *)\nlet f x = x\n");
  check
    Alcotest.(list string)
    "ordinary comments are not waivers" []
    (lint ~id:"lib/obs/fixture.ml" "(* a comment about dynlint *)\nlet f x = x\n")

(* {2 Callgraph rules: hot-alloc, unsafe-index, shard-ownership}

   Each rule gets the same trio: a caught violation, a valid waiver
   (claimed, silent), and a stale waiver (unclaimed, reported). *)

let test_hot_alloc () =
  check
    Alcotest.(list string)
    "allocation directly in a hot function" [ "hot-alloc" ]
    (lint ~id:"lib/dynet/fixture.ml" "let hot x = (x, x) [@@dynlint.hot]\n");
  check
    Alcotest.(list string)
    "allocation reached transitively" [ "hot-alloc" ]
    (lint ~id:"lib/dynet/fixture.ml"
       "let box x = Some x\nlet hot x = box x [@@dynlint.hot]\n");
  check
    Alcotest.(list string)
    "allocation-free hot path passes" []
    (lint ~id:"lib/dynet/fixture.ml"
       "let add x y = x + y\nlet hot x = add x 1 [@@dynlint.hot]\n");
  check
    Alcotest.(list string)
    "allocation off every hot path passes" []
    (lint ~id:"lib/dynet/fixture.ml"
       "let box x = Some x\nlet hot x = x + 1 [@@dynlint.hot]\nlet g = box\n")

let test_hot_alloc_waivers () =
  check
    Alcotest.(list string)
    "alloc_ok cuts the hot path and is claimed" []
    (lint ~id:"lib/dynet/fixture.ml"
       "let box x = Some x [@@dynlint.alloc_ok \"boxed by design\"]\n\
        let hot x = box x [@@dynlint.hot]\n");
  check
    Alcotest.(list string)
    "alloc_ok off every hot path is stale" [ "stale-waiver" ]
    (lint ~id:"lib/dynet/fixture.ml"
       "let box x = Some x [@@dynlint.alloc_ok \"never on a hot path\"]\n\
        let hot x = x + 1 [@@dynlint.hot]\n")

let test_unsafe_index () =
  check
    Alcotest.(list string)
    "unguarded unsafe_get in the audited scope" [ "unsafe-index" ]
    (lint ~id:"lib/dynet/fixture.ml" "let f a i = Array.unsafe_get a i\n");
  check
    Alcotest.(list string)
    "for-loop counter is a visible guard" []
    (lint ~id:"lib/dynet/fixture.ml"
       "let sum a =\n\
       \  let s = ref 0 in\n\
       \  for i = 0 to Array.length a - 1 do\n\
       \    s := !s + Array.unsafe_get a i\n\
       \  done;\n\
       \  !s\n");
  check
    Alcotest.(list string)
    "if-comparison is a visible guard" []
    (lint ~id:"lib/dynet/fixture.ml"
       "open Ops\n\n\
        let get a i = if i < Array.length a then Array.unsafe_get a i else 0\n");
  check
    Alcotest.(list string)
    "outside the audited scope" []
    (lint ~id:"lib/obs/fixture.ml" "let f a i = Array.unsafe_get a i\n")

let test_unsafe_index_waivers () =
  check
    Alcotest.(list string)
    "unsafe_ok waives the site" []
    (lint ~id:"lib/dynet/fixture.ml"
       "let f a i = Array.unsafe_get a i\n\
       \  [@@dynlint.unsafe_ok \"caller contract: i is in bounds\"]\n");
  check
    Alcotest.(list string)
    "unsafe_ok with nothing to waive is stale" [ "stale-waiver" ]
    (lint ~id:"lib/dynet/fixture.ml"
       "let f a i = a.(i) [@@dynlint.unsafe_ok \"plain checked access\"]\n")

let test_shard_ownership () =
  check
    Alcotest.(list string)
    "write outside the span" [ "shard-ownership" ]
    (lint ~id:"lib/engine/fixture.ml"
       "let go pool (out : int array) =\n\
       \  Engine.Shard_pool.run pool (fun ~shard:_ ~lo:_ ~hi:_ -> out.(0) <- 1)\n");
  check
    Alcotest.(list string)
    "span-indexed writes are owned" []
    (lint ~id:"lib/engine/fixture.ml"
       "let go pool (out : int array) =\n\
       \  Engine.Shard_pool.run pool (fun ~shard:_ ~lo ~hi ->\n\
       \      for i = lo to hi - 1 do\n\
       \        out.(i) <- 0\n\
       \      done)\n");
  check
    Alcotest.(list string)
    "job-local state is owned" []
    (lint ~id:"lib/engine/fixture.ml"
       "let go pool =\n\
       \  Engine.Shard_pool.run pool (fun ~shard:_ ~lo ~hi ->\n\
       \      let acc = ref 0 in\n\
       \      for i = lo to hi - 1 do\n\
       \        acc := !acc + i\n\
       \      done;\n\
       \      ignore !acc)\n")

let test_shard_ownership_waivers () =
  check
    Alcotest.(list string)
    "comment waiver silences the write" []
    (lint ~id:"lib/engine/fixture.ml"
       "let go pool (out : int array) =\n\
       \  Engine.Shard_pool.run pool (fun ~shard:_ ~lo:_ ~hi:_ ->\n\
       \      (* dynlint: allow shard-ownership -- single writer by contract *)\n\
       \      out.(0) <- 1)\n");
  check
    Alcotest.(list string)
    "unused shard-ownership waiver is stale" [ "stale-waiver" ]
    (lint ~id:"lib/engine/fixture.ml"
       "let go pool (out : int array) =\n\
       \  Engine.Shard_pool.run pool (fun ~shard:_ ~lo ~hi ->\n\
       \      (* dynlint: allow shard-ownership -- nothing to waive *)\n\
       \      for i = lo to hi - 1 do\n\
       \        out.(i) <- 0\n\
       \      done)\n")

(* {2 Fixture trees: missing-mli and the domain-safety audit} *)

let with_fixture_tree files f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ()) "dynlint_fixture"
  in
  let lib = Filename.concat root "lib" in
  if Sys.file_exists lib then
    Array.iter
      (fun e -> Sys.remove (Filename.concat lib e))
      (Sys.readdir lib)
  else begin
    if not (Sys.file_exists root) then Sys.mkdir root 0o755;
    Sys.mkdir lib 0o755
  end;
  List.iter
    (fun (name, content) ->
      let oc = open_out (Filename.concat lib name) in
      output_string oc content;
      close_out oc)
    files;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat lib e))
        (Sys.readdir lib);
      Sys.rmdir lib;
      Sys.rmdir root)
    (fun () -> f lib)

let test_missing_mli () =
  with_fixture_tree
    [ ("bare.ml", "let x = 1\n"); ("good.ml", "let x = 1\n");
      ("good.mli", "val x : int\n") ]
    (fun lib ->
      let report = Driver.run [ lib ] in
      check
        Alcotest.(list (pair string string))
        "only the interface-less module is flagged"
        [ ("lib/bare.ml", "missing-mli") ]
        (List.map
           (fun (v : Rules.violation) -> (v.Rules.id, v.Rules.rule))
           report.Driver.violations))

(* The audit scenario from the issue: a top-level ref in a module
   reachable from a Sweep.map worker closure must be flagged; the same
   state in an unreachable module must not; a domain-safe waiver
   silences it. *)
let domain_fixture ~waived =
  [
    ( "sweepuser.ml",
      "let go xs = Analysis.Sweep.map (fun x -> Helper.calc x) xs\n" );
    ("sweepuser.mli", "val go : int list -> int list\n");
    ( "helper.ml",
      if waived then
        "(* dynlint: domain-safe -- written once before any spawn *)\n\
         let cache = ref 0\n\n\
         let calc x = x + !cache\n"
      else "let cache = ref 0\n\nlet calc x = x + !cache\n" );
    ("helper.mli", "val cache : int ref\n\nval calc : int -> int\n");
    (* Same shape, but nothing reaches it from a Sweep call site. *)
    ("loner.ml", "let cache = ref 0\n\nlet calc x = x + !cache\n");
    ("loner.mli", "val cache : int ref\n\nval calc : int -> int\n");
  ]

let test_domain_safety_flags_reachable_ref () =
  with_fixture_tree (domain_fixture ~waived:false) (fun lib ->
      let report = Driver.run [ lib ] in
      check
        Alcotest.(list (pair string string))
        "the reachable ref is the one violation"
        [ ("lib/helper.ml", "domain-safety") ]
        (List.map
           (fun (v : Rules.violation) -> (v.Rules.id, v.Rules.rule))
           report.Driver.violations);
      check Alcotest.bool "root is in the reachable set" true
        (List.mem "lib/sweepuser.ml" report.Driver.sweep_reachable);
      check Alcotest.bool "helper is in the reachable set" true
        (List.mem "lib/helper.ml" report.Driver.sweep_reachable);
      check Alcotest.bool "loner is not" false
        (List.mem "lib/loner.ml" report.Driver.sweep_reachable))

let test_domain_safety_waiver () =
  with_fixture_tree (domain_fixture ~waived:true) (fun lib ->
      let report = Driver.run [ lib ] in
      check
        Alcotest.(list string)
        "domain-safe waiver silences the audit" [] (rules report.Driver.violations))

let test_domain_safety_mutable_kinds () =
  (* Each classic shared-state shape is caught at top level but
     tolerated under a [fun]. *)
  List.iter
    (fun (label, toplevel, delayed) ->
      with_fixture_tree
        [
          ( "sweepuser.ml",
            "let go xs = Analysis.Sweep.map (fun x -> Helper.calc x) xs\n" );
          ("sweepuser.mli", "val go : int list -> int list\n");
          ("helper.ml", toplevel);
          ("helper.mli", "val calc : int -> int\n");
        ]
        (fun lib ->
          check
            Alcotest.(list string)
            (label ^ " at top level") [ "domain-safety" ]
            (rules (Driver.run [ lib ]).Driver.violations));
      with_fixture_tree
        [
          ( "sweepuser.ml",
            "let go xs = Analysis.Sweep.map (fun x -> Helper.calc x) xs\n" );
          ("sweepuser.mli", "val go : int list -> int list\n");
          ("helper.ml", delayed);
          ("helper.mli", "val calc : int -> int\n");
        ]
        (fun lib ->
          check
            Alcotest.(list string)
            (label ^ " under a fun") []
            (rules (Driver.run [ lib ]).Driver.violations)))
    [
      ( "Hashtbl.create",
        "let t = Hashtbl.create 8\n\nlet calc x = Hashtbl.hash t + x\n",
        "let calc x =\n  let t = Hashtbl.create 8 in\n  Hashtbl.length t + x\n"
      );
      ( "lazy",
        "let v = lazy 1\n\nlet calc x = x + Lazy.force v\n",
        "let calc x =\n  let v = lazy 1 in\n  x + Lazy.force v\n" );
      ( "array literal",
        "let a = [| 0 |]\n\nlet calc x = x + a.(0)\n",
        "let calc x =\n  let a = [| 0 |] in\n  x + a.(0)\n" );
      (* Observability state is single-domain by contract: a profiler
         lane or metrics registry shared from the top level races. *)
      ( "Obs.Span.create",
        "let p = Obs.Span.create ()\n\nlet calc x = Obs.Span.span_count p + x\n",
        "let calc x =\n        \  let p = Obs.Span.create () in\n        \  Obs.Span.span_count p + x\n" );
      ( "Obs.Metrics.create",
        "let m = Obs.Metrics.create ()\n\n         let calc x = Obs.Metrics.counter m \"c\" + x\n",
        "let calc x =\n        \  let m = Obs.Metrics.create () in\n        \  Obs.Metrics.counter m \"c\" + x\n" );
    ];
  (* Atomic is the sanctioned shared primitive: a top-level Atomic.t
     passes the audit without a waiver. *)
  with_fixture_tree
    [
      ( "sweepuser.ml",
        "let go xs = Analysis.Sweep.map (fun x -> Helper.calc x) xs\n" );
      ("sweepuser.mli", "val go : int list -> int list\n");
      ("helper.ml", "let a = Atomic.make 0\n\nlet calc x = x + Atomic.get a\n");
      ("helper.mli", "val a : int Atomic.t\n\nval calc : int -> int\n");
    ]
    (fun lib ->
      check
        Alcotest.(list string)
        "top-level Atomic passes" []
        (rules (Driver.run [ lib ]).Driver.violations))

(* [map_span] call sites hold worker closures exactly like [map]'s,
   so they root the reachability walk too. *)
let test_domain_safety_map_span_is_root () =
  with_fixture_tree
    [
      ( "sweepuser.ml",
        "let go xs =\n        \  Analysis.Sweep.map_span ~name:\"t\"\n        \    (fun ~prof:_ x -> Helper.calc x)\n        \    xs\n" );
      ("sweepuser.mli", "val go : int array -> int array\n");
      ("helper.ml", "let cache = ref 0\n\nlet calc x = x + !cache\n");
      ("helper.mli", "val cache : int ref\n\nval calc : int -> int\n");
    ]
    (fun lib ->
      check
        Alcotest.(list string)
        "a map_span call site roots the audit" [ "domain-safety" ]
        (rules (Driver.run [ lib ]).Driver.violations))

(* The SoA engine's shard jobs run on pool domains exactly like Sweep
   point closures, so [Shard_pool.run]/[create]/[with_pool] call sites
   root the reachability walk the same way. *)
let test_domain_safety_shard_pool_is_root () =
  with_fixture_tree
    [
      ( "pooluser.ml",
        "let go spans =\n\
        \  Engine.Shard_pool.with_pool ~spans (fun pool ->\n\
        \      Engine.Shard_pool.run pool (fun ~shard:_ ~lo ~hi ->\n\
        \          ignore (Helper.calc (hi - lo))))\n" );
      ("pooluser.mli", "val go : (int * int) array -> unit\n");
      ("helper.ml", "let cache = ref 0\n\nlet calc x = x + !cache\n");
      ("helper.mli", "val cache : int ref\n\nval calc : int -> int\n");
    ]
    (fun lib ->
      check
        Alcotest.(list string)
        "a Shard_pool call site roots the audit" [ "domain-safety" ]
        (rules (Driver.run [ lib ]).Driver.violations))

(* {2 The committed bad-fixture tree}

   The same seeded violations CI's smoke step greps for: if a dynlint
   change stops catching any of them, this fails before the workflow
   does. *)

let test_bad_fixture_tree () =
  let report = Driver.run [ "../lint/fixtures/bad/lib" ] in
  check
    Alcotest.(list (pair string string))
    "every seeded violation is caught"
    [
      ("lib/dynet/hot_fixture.ml", "hot-alloc");
      ("lib/dynet/hot_fixture.ml", "hot-alloc");
      ("lib/dynet/stale_fixture.ml", "stale-waiver");
      ("lib/dynet/stale_fixture.ml", "stale-waiver");
      ("lib/dynet/unsafe_fixture.ml", "unsafe-index");
      ("lib/engine/shard_fixture.ml", "shard-ownership");
    ]
    (List.sort compare
       (List.map
          (fun (v : Rules.violation) -> (v.Rules.id, v.Rules.rule))
          report.Driver.violations))

(* {2 Regression: the shipped tree is violation-free} *)

let test_shipped_tree_clean () =
  let report = Driver.run [ "../lib"; "../bin"; "../bench"; "../test" ] in
  check
    Alcotest.(list string)
    "dynlint on the shipped tree" []
    (List.map
       (fun (v : Rules.violation) ->
         Format.asprintf "%a" Driver.pp_violation v)
       report.Driver.violations);
  check Alcotest.bool "scanned a real number of files" true
    (report.Driver.files_scanned > 100);
  (* The callgraph pass must actually see the annotated kernel: hot
     roots across Plane/Csr/Bitset/Soa, the audited unsafe_* sites
     (every one guarded or waived), and the SoA shard jobs. *)
  let stats = report.Driver.stats in
  check Alcotest.bool "hot roots seeded across the kernel" true
    (stats.Driver.hot_roots >= 20);
  check Alcotest.bool "unsafe sites audited" true
    (stats.Driver.unsafe_sites >= 20);
  check Alcotest.int "every unsafe site is guarded or waived"
    stats.Driver.unsafe_sites
    (stats.Driver.unsafe_guarded + stats.Driver.unsafe_waived);
  check Alcotest.bool "the SoA shard jobs are analyzed" true
    (List.length stats.Driver.shard_jobs >= 6);
  (* The Sweep audit must actually cover the experiment stack. *)
  List.iter
    (fun id ->
      check Alcotest.bool (id ^ " sweep-reachable") true
        (List.mem id report.Driver.sweep_reachable))
    [ "lib/analysis/sweep.ml"; "lib/gossip/single_source.ml";
      "lib/engine/runner_unicast.ml"; "lib/fuzz/campaign.ml";
      "lib/fuzz/diff.ml"; "lib/engine/reference.ml"; "lib/engine/soa.ml";
      "lib/engine/shard_pool.ml"; "lib/dynet/plane.ml"; "lib/dynet/csr.ml" ]

let suite =
  [
    Alcotest.test_case "poly-compare rule" `Quick test_poly_compare;
    Alcotest.test_case "physical-eq rule" `Quick test_physical_eq;
    Alcotest.test_case "obj-magic rule" `Quick test_obj_magic;
    Alcotest.test_case "catch-all-try rule" `Quick test_catch_all_try;
    Alcotest.test_case "direct-print rule" `Quick test_direct_print;
    Alcotest.test_case "syntax errors are violations" `Quick test_syntax_error;
    Alcotest.test_case "waiver dash forms" `Quick test_waiver_applies;
    Alcotest.test_case "waiver on the same line" `Quick test_waiver_same_line;
    Alcotest.test_case "waiver for wrong rule" `Quick test_waiver_wrong_rule;
    Alcotest.test_case "waiver out of range" `Quick test_waiver_out_of_range;
    Alcotest.test_case "stale waiver" `Quick test_stale_waiver;
    Alcotest.test_case "malformed waivers" `Quick test_bad_waivers;
    Alcotest.test_case "hot-alloc rule" `Quick test_hot_alloc;
    Alcotest.test_case "hot-alloc waivers" `Quick test_hot_alloc_waivers;
    Alcotest.test_case "unsafe-index rule" `Quick test_unsafe_index;
    Alcotest.test_case "unsafe-index waivers" `Quick test_unsafe_index_waivers;
    Alcotest.test_case "shard-ownership rule" `Quick test_shard_ownership;
    Alcotest.test_case "shard-ownership waivers" `Quick
      test_shard_ownership_waivers;
    Alcotest.test_case "bad fixture tree trips every rule" `Quick
      test_bad_fixture_tree;
    Alcotest.test_case "missing-mli" `Quick test_missing_mli;
    Alcotest.test_case "domain-safety: reachable ref" `Quick
      test_domain_safety_flags_reachable_ref;
    Alcotest.test_case "domain-safety: waiver" `Quick test_domain_safety_waiver;
    Alcotest.test_case "domain-safety: map_span roots" `Quick
      test_domain_safety_map_span_is_root;
    Alcotest.test_case "domain-safety: shard-pool roots" `Quick
      test_domain_safety_shard_pool_is_root;
    Alcotest.test_case "domain-safety: mutable kinds" `Quick
      test_domain_safety_mutable_kinds;
    Alcotest.test_case "shipped tree is clean" `Quick test_shipped_tree_clean;
  ]
