(* Tests for the observability layer: the JSON codec, the event sinks,
   the metrics registry, timers, and the engine's trace emission (the
   invariants the CLI acceptance check relies on: Send events sum to
   Ledger.total, Graph_change additions sum to TC). *)

let check = Alcotest.check

(* {2 Json} *)

let roundtrip v =
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("bool", Obs.Json.Bool true);
        ("int", Obs.Json.Int (-42));
        ("float", Obs.Json.Float 1.5);
        ("integral_float", Obs.Json.Float 3.);
        ("escape", Obs.Json.String "a\"b\\c\nd\te\x01f");
        ("unicode", Obs.Json.String "héllo — κόσμε");
        ("list", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.String "x" ]);
        ("nested", Obs.Json.Obj [ ("k", Obs.Json.List []) ]);
      ]
  in
  check Alcotest.bool "value survives encode/parse" true (roundtrip v = v)

let test_json_integral_float_stays_float () =
  (* 3.0 must encode as "3.0", not "3", or it reparses as Int. *)
  check Alcotest.bool "3.0 reparses as Float" true
    (roundtrip (Obs.Json.Float 3.) = Obs.Json.Float 3.)

let test_json_nonfinite_is_null () =
  check Alcotest.string "nan encodes as null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check Alcotest.string "inf encodes as null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parse_errors () =
  let bad s =
    match Obs.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "trailing garbage" true (bad "{} x");
  check Alcotest.bool "unterminated string" true (bad {|"abc|});
  check Alcotest.bool "bare word" true (bad "flase");
  check Alcotest.bool "empty input" true (bad "");
  check Alcotest.bool "lone surrogate" true (bad {|"\ud800"|})

let test_json_member () =
  let v = Obs.Json.Obj [ ("a", Obs.Json.Int 1); ("b", Obs.Json.Null) ] in
  check Alcotest.bool "present" true
    (Obs.Json.member "a" v = Some (Obs.Json.Int 1));
  check Alcotest.bool "missing" true (Obs.Json.member "z" v = None);
  check Alcotest.bool "non-object" true
    (Obs.Json.member "a" (Obs.Json.Int 3) = None)

(* {2 Sinks} *)

let test_null_sink_is_free () =
  check Alcotest.bool "null is null" true (Obs.Sink.is_null Obs.Sink.null);
  check Alcotest.bool "memory is not" false
    (Obs.Sink.is_null (Obs.Sink.memory ()));
  (* emitting into the null sink is a no-op, not an error *)
  Obs.Sink.emit Obs.Sink.null (Obs.Trace.Round_start { round = 1 });
  Obs.Sink.flush Obs.Sink.null

let test_memory_sink_orders_events () =
  let sink = Obs.Sink.memory () in
  let evs =
    [
      Obs.Trace.Round_start { round = 1 };
      Obs.Trace.Send { round = 1; src = 0; dst = Some 1; cls = "token" };
      Obs.Trace.Run_end { rounds = 1; completed = true; messages = 1 };
    ]
  in
  List.iter (Obs.Sink.emit sink) evs;
  check Alcotest.bool "events in emission order" true
    (Obs.Sink.events sink = evs);
  Alcotest.check_raises "events on non-memory sink"
    (Invalid_argument "Sink.events: not a memory sink") (fun () ->
      ignore (Obs.Sink.events Obs.Sink.null))

let test_multi_and_custom_sinks () =
  let seen = ref 0 in
  let mem = Obs.Sink.memory () in
  let sink = Obs.Sink.Multi [ mem; Obs.Sink.Custom (fun _ -> incr seen) ] in
  Obs.Sink.emit sink (Obs.Trace.Phase { name = "p"; round = 0 });
  Obs.Sink.emit sink (Obs.Trace.Round_start { round = 1 });
  check Alcotest.int "custom saw both" 2 !seen;
  check Alcotest.int "memory saw both" 2 (List.length (Obs.Sink.events mem))

(* {2 Engine trace emission}

   Run the gossip single-source protocol with a Memory sink and check
   the stream against the ledger — the same invariants `dynspread run
   --trace --json` is specified to satisfy. *)

let traced_run () =
  let n = 10 and k = 15 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let schedule =
    Adversary.Schedule.stabilized ~sigma:2
      (Adversary.Oblivious.rewiring ~seed:5 ~n ~extra:n ~rate:0.25)
  in
  let sink = Obs.Sink.memory () in
  let result, _ =
    Gossip.Runners.single_source ~instance
      ~env:(Gossip.Runners.Oblivious schedule) ~obs:sink ()
  in
  (result, Obs.Sink.events sink)

let test_trace_send_count_matches_ledger () =
  let result, events = traced_run () in
  let sends =
    List.length
      (List.filter
         (function Obs.Trace.Send _ -> true | _ -> false)
         events)
  in
  check Alcotest.int "send events = ledger total"
    (Engine.Ledger.total result.Engine.Run_result.ledger)
    sends

let test_trace_graph_changes_match_tc () =
  let result, events = traced_run () in
  let added, removed =
    List.fold_left
      (fun (a, r) -> function
        | Obs.Trace.Graph_change { added; removed; _ } ->
            (a + added, r + removed)
        | _ -> (a, r))
      (0, 0) events
  in
  check Alcotest.int "sum of added = TC"
    (Engine.Ledger.tc result.Engine.Run_result.ledger)
    added;
  check Alcotest.int "sum of removed = removals"
    (Engine.Ledger.removals result.Engine.Run_result.ledger)
    removed

let test_trace_round_structure () =
  let result, events = traced_run () in
  (* First event: the round-0 Progress snapshot; last: Run_end with the
     run's totals; rounds count and numbering match the result. *)
  (match events with
  | Obs.Trace.Progress { round = 0; _ } :: _ -> ()
  | _ -> Alcotest.fail "trace must open with a round-0 Progress");
  (match List.rev events with
  | Obs.Trace.Run_end { rounds; completed; messages } :: _ ->
      check Alcotest.int "run_end rounds" result.Engine.Run_result.rounds
        rounds;
      check Alcotest.bool "run_end completed"
        result.Engine.Run_result.completed completed;
      check Alcotest.int "run_end messages"
        (Engine.Ledger.total result.Engine.Run_result.ledger)
        messages
  | _ -> Alcotest.fail "trace must close with Run_end");
  let starts =
    List.filter_map
      (function Obs.Trace.Round_start { round } -> Some round | _ -> None)
      events
  in
  check Alcotest.int "one Round_start per round"
    result.Engine.Run_result.rounds (List.length starts);
  check Alcotest.bool "rounds numbered 1.." true
    (starts = List.init (List.length starts) (fun i -> i + 1));
  (* Within the stream, every Send of round r comes after Round_start r
     (events stay in engine-loop order). *)
  let ordered, _ =
    List.fold_left
      (fun (ok, cur) ev ->
        match ev with
        | Obs.Trace.Round_start { round } -> (ok && round = cur + 1, round)
        | Obs.Trace.Send { round; _ }
        | Obs.Trace.Graph_change { round; _ } ->
            (ok && round = cur, cur)
        | _ -> (ok, cur))
      (true, 0) events
  in
  check Alcotest.bool "per-round events follow their Round_start" true ordered

let test_jsonl_sink_lines_parse () =
  let path = Filename.temp_file "dynspread_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Obs.Sink.jsonl oc in
      let n = 8 in
      let instance = Gossip.Instance.single_source ~n ~k:8 ~source:0 in
      let schedule =
        Adversary.Oblivious.static
          (Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed:1) ~n
             ~p:0.3)
      in
      (let result, _ =
         Gossip.Runners.single_source ~instance
           ~env:(Gossip.Runners.Oblivious schedule)
           ~obs:sink ()
       in
       ignore result);
      Obs.Sink.close sink;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check Alcotest.bool "trace is non-empty" true (lines <> []);
      List.iter
        (fun line ->
          match Obs.Json.of_string line with
          | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
          | Ok v ->
              if Obs.Json.member "ev" v = None then
                Alcotest.failf "line lacks \"ev\" discriminator: %S" line)
        lines)

(* {2 Metrics} *)

let test_metrics_counters_and_gauges () =
  let m = Obs.Metrics.create () in
  check Alcotest.int "unknown counter is 0" 0 (Obs.Metrics.counter m "x");
  Obs.Metrics.incr m "x";
  Obs.Metrics.incr m ~by:4 "x";
  check Alcotest.int "counter accumulates" 5 (Obs.Metrics.counter m "x");
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Obs.Metrics.incr m ~by:(-1) "x");
  check Alcotest.bool "unknown gauge" true (Obs.Metrics.gauge m "g" = None);
  Obs.Metrics.set_gauge m "g" 1.5;
  Obs.Metrics.set_gauge m "g" 2.5;
  check Alcotest.bool "gauge is last write" true
    (Obs.Metrics.gauge m "g" = Some 2.5)

let test_metrics_histogram_summary () =
  let m = Obs.Metrics.create () in
  check Alcotest.bool "empty histogram" true
    (Obs.Metrics.summary m "h" = None);
  List.iter
    (fun x -> Obs.Metrics.observe m "h" (float_of_int x))
    (List.init 100 (fun i -> i + 1));
  match Obs.Metrics.summary m "h" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
      check Alcotest.int "count" 100 s.Obs.Metrics.count;
      check (Alcotest.float 1e-9) "sum" 5050. s.Obs.Metrics.sum;
      check (Alcotest.float 1e-9) "min" 1. s.Obs.Metrics.min;
      check (Alcotest.float 1e-9) "max" 100. s.Obs.Metrics.max;
      check (Alcotest.float 1e-9) "mean" 50.5 s.Obs.Metrics.mean;
      check (Alcotest.float 1e-9) "p50" 50. s.Obs.Metrics.p50;
      check (Alcotest.float 1e-9) "p95" 95. s.Obs.Metrics.p95;
      check (Alcotest.float 1e-9) "p99" 99. s.Obs.Metrics.p99

let test_metrics_to_json_parses () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "sends";
  Obs.Metrics.set_gauge m "alpha" 1.;
  Obs.Metrics.observe m "latency" 0.25;
  let j = Obs.Metrics.to_json m in
  check Alcotest.bool "registry JSON round-trips" true
    (Obs.Json.of_string (Obs.Json.to_string j) = Ok j)

(* {2 Timer} *)

let test_timer_records_span () =
  let m = Obs.Metrics.create () in
  let x = Obs.Timer.observe_span ~metrics:m ~name:"work" (fun () -> 7) in
  check Alcotest.int "body result returned" 7 x;
  (* span recorded even when the body raises *)
  (try
     Obs.Timer.observe_span ~metrics:m ~name:"work" (fun () ->
         failwith "boom")
   with Failure _ -> ());
  match Obs.Metrics.summary m "work" with
  | None -> Alcotest.fail "span not recorded"
  | Some s ->
      check Alcotest.int "both spans recorded" 2 s.Obs.Metrics.count;
      check Alcotest.bool "non-negative" true (s.Obs.Metrics.min >= 0.)

(* {2 Report} *)

let test_report_matches_ledger () =
  (* The `run --json` smoke test, without the process boundary: build
     the report from a real run and check its fields against the
     ledger. *)
  let result, _ = traced_run () in
  let ledger = result.Engine.Run_result.ledger in
  let report = Engine.Run_result.to_report ~name:"smoke" result in
  check Alcotest.int "messages" (Engine.Ledger.total ledger)
    report.Obs.Report.messages;
  check Alcotest.int "tc" (Engine.Ledger.tc ledger) report.Obs.Report.tc;
  check Alcotest.int "learnings"
    (Engine.Ledger.learnings ledger)
    report.Obs.Report.learnings;
  check Alcotest.int "class counts sum to total"
    (Engine.Ledger.total ledger)
    (List.fold_left (fun acc (_, c) -> acc + c) 0
       report.Obs.Report.class_counts);
  check Alcotest.int "max load" (Engine.Ledger.max_load ledger)
    report.Obs.Report.max_load;
  let j = Obs.Report.to_json report in
  check Alcotest.bool "schema field" true
    (Obs.Json.member "schema" j
    = Some (Obs.Json.String "dynspread-report/v1"));
  check Alcotest.bool "report JSON round-trips" true
    (match Obs.Json.of_string (Obs.Json.to_string j) with
    | Ok j' -> Obs.Json.member "messages" j' = Obs.Json.member "messages" j
    | Error _ -> false)

let test_null_sink_matches_traced_run () =
  (* Tracing must be purely observational: the same seeded run with and
     without a sink produces the same ledger. *)
  let run obs =
    let n = 10 and k = 15 in
    let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
    let schedule =
      Adversary.Schedule.stabilized ~sigma:2
        (Adversary.Oblivious.rewiring ~seed:5 ~n ~extra:n ~rate:0.25)
    in
    let result, _ =
      Gossip.Runners.single_source ~instance
        ~env:(Gossip.Runners.Oblivious schedule) ?obs ()
    in
    result
  in
  let plain = run None and traced = run (Some (Obs.Sink.memory ())) in
  check Alcotest.int "same rounds" plain.Engine.Run_result.rounds
    traced.Engine.Run_result.rounds;
  check Alcotest.int "same messages"
    (Engine.Ledger.total plain.Engine.Run_result.ledger)
    (Engine.Ledger.total traced.Engine.Run_result.ledger);
  check Alcotest.int "same tc"
    (Engine.Ledger.tc plain.Engine.Run_result.ledger)
    (Engine.Ledger.tc traced.Engine.Run_result.ledger)

(* {2 Phase markers (Algorithm 2)} *)

let test_rw_phase_markers () =
  let n = 12 and k = 12 in
  let instance =
    Gossip.Instance.multi_source ~rng:(Dynet.Rng.make ~seed:2) ~n ~k ~s:n
  in
  let schedule = Adversary.Oblivious.fresh_random ~seed:2 ~n ~p:0.3 in
  let sink = Obs.Sink.memory () in
  let r =
    Gossip.Runners.oblivious_rw ~instance ~schedule ~seed:2 ~const_f:0.05
      ~force_rw:true ~obs:sink ()
  in
  check Alcotest.bool "completed" true r.Gossip.Oblivious_rw.completed;
  let phases =
    List.filter_map
      (function Obs.Trace.Phase { name; _ } -> Some name | _ -> None)
      (Obs.Sink.events sink)
  in
  check
    (Alcotest.list Alcotest.string)
    "both phases marked, in order" [ "random-walk"; "multi-source" ] phases

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json integral floats stay floats", `Quick,
     test_json_integral_float_stays_float);
    ("json non-finite floats", `Quick, test_json_nonfinite_is_null);
    ("json parse errors", `Quick, test_json_parse_errors);
    ("json member", `Quick, test_json_member);
    ("null sink is free", `Quick, test_null_sink_is_free);
    ("memory sink orders events", `Quick, test_memory_sink_orders_events);
    ("multi and custom sinks", `Quick, test_multi_and_custom_sinks);
    ("trace send count = ledger total", `Quick,
     test_trace_send_count_matches_ledger);
    ("trace graph changes = TC", `Quick, test_trace_graph_changes_match_tc);
    ("trace round structure", `Quick, test_trace_round_structure);
    ("jsonl sink lines parse", `Quick, test_jsonl_sink_lines_parse);
    ("metrics counters and gauges", `Quick, test_metrics_counters_and_gauges);
    ("metrics histogram summary", `Quick, test_metrics_histogram_summary);
    ("metrics json parses", `Quick, test_metrics_to_json_parses);
    ("timer records spans", `Quick, test_timer_records_span);
    ("report matches ledger", `Quick, test_report_matches_ledger);
    ("tracing is observation-only", `Quick,
     test_null_sink_matches_traced_run);
    ("algorithm 2 phase markers", `Quick, test_rw_phase_markers);
  ]
