(* Tests for the differential fuzzer: generator determinism and
   validity, spec/trace round-trips of generated cases, clean
   differential batches (reference vs fastpath), the mutation smoke
   test (a seeded off-by-one must be found and shrunk small), the
   engines' stall detector agreeing bit-for-bit, and the committed
   regression corpus under test/corpus/. *)

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m = 0 || go 0

let trace_string c = Scenario.Trace_io.to_string (Fuzz.Case.to_trace c)

(* {2 Generator} *)

let test_gen_deterministic () =
  List.iter
    (fun id ->
      let a = Fuzz.Gen.case ~seed:0 ~id and b = Fuzz.Gen.case ~seed:0 ~id in
      check Alcotest.string
        (Printf.sprintf "case %d: same schedule on regeneration" id)
        (trace_string a) (trace_string b);
      check Alcotest.string
        (Printf.sprintf "case %d: same label on regeneration" id)
        (Fuzz.Case.label a) (Fuzz.Case.label b))
    [ 0; 1; 17; 99 ];
  (* Different ids draw from disjoint streams: spot-check they differ
     somewhere (labels carry the derived seed). *)
  check Alcotest.bool "ids derive distinct case seeds" false
    (String.equal
       (Fuzz.Case.label (Fuzz.Gen.case ~seed:0 ~id:0))
       (Fuzz.Case.label (Fuzz.Gen.case ~seed:0 ~id:1)))

let test_gen_valid () =
  for id = 0 to 149 do
    let c = Fuzz.Gen.case ~seed:9 ~id in
    let msg fmt = Printf.sprintf ("case %d: " ^^ fmt) id in
    check Alcotest.bool (msg "every round connected") true
      (Fuzz.Case.connected c);
    check Alcotest.bool (msg "n in range") true
      (c.Fuzz.Case.n >= 2 && c.Fuzz.Case.n <= 10);
    check Alcotest.bool (msg "k in range") true
      (c.Fuzz.Case.k >= 1 && c.Fuzz.Case.k <= 6);
    check Alcotest.bool (msg "s in range") true
      (c.Fuzz.Case.s >= 1
      && c.Fuzz.Case.s <= min c.Fuzz.Case.n c.Fuzz.Case.k);
    check Alcotest.bool (msg "at least one round") true
      (Fuzz.Case.period c >= 1);
    match Scenario.Trace_io.validate (Fuzz.Case.to_trace c) with
    | Error e -> Alcotest.failf "case %d: invalid trace: %s" id e
    | Ok stats ->
        check Alcotest.(option int) (msg "no disconnected round") None
          stats.Scenario.Trace_io.first_disconnected
  done

let test_spec_roundtrip () =
  for id = 0 to 39 do
    let c = Fuzz.Gen.case ~seed:5 ~id in
    let spec = Fuzz.Case.to_spec c ~trace_path:"t.jsonl" in
    match Scenario.Spec.of_json (Scenario.Spec.to_json spec) with
    | Error errs ->
        Alcotest.failf "case %d: spec does not round-trip: %s" id
          (String.concat "; " errs)
    | Ok spec' -> (
        match Fuzz.Case.of_spec spec' ~trace:(Fuzz.Case.to_trace c) with
        | Error e -> Alcotest.failf "case %d: of_spec failed: %s" id e
        | Ok c' ->
            let report case =
              (Fuzz.Diff.execute ~engine:Engine.Default.engine case)
                .Fuzz.Diff.report
            in
            check Alcotest.string
              (Printf.sprintf "case %d: rebuilt case runs identically" id)
              (report c) (report c'))
  done

let test_engine_pair () =
  (* The pairing dimension is part of the case stream: deterministic
     per (seed, id), b-side always the fastpath engine, and all four
     a-sides drawn within a small window. *)
  let name_of (module E : Engine.Engine_sig.ENGINE) = E.name in
  let seen = Hashtbl.create 8 in
  for id = 0 to 99 do
    let a, b = Fuzz.Gen.engine_pair ~seed:0 ~id in
    let a', b' = Fuzz.Gen.engine_pair ~seed:0 ~id in
    check Alcotest.(pair string string)
      (Printf.sprintf "case %d: same pairing on regeneration" id)
      (name_of a, name_of b)
      (name_of a', name_of b');
    check Alcotest.string
      (Printf.sprintf "case %d: checked against the fastpath engine" id)
      Engine.Default.name (name_of b);
    Hashtbl.replace seen (name_of a) ()
  done;
  List.iter
    (fun a ->
      check Alcotest.bool (a ^ " drawn within 100 cases") true
        (Hashtbl.mem seen a))
    [ Engine.Reference.name; "soa"; "soa-2"; "soa-4" ]

(* {2 The differential property} *)

let test_differential_batch () =
  let metrics = Obs.Metrics.create () in
  let outcome = Fuzz.Campaign.run ~jobs:2 ~metrics ~runs:60 ~seed:1 () in
  check Alcotest.int "no mismatches between reference and fastpath" 0
    (List.length outcome.Fuzz.Campaign.mismatches);
  check Alcotest.int "metrics: cases" 60
    (Obs.Metrics.counter metrics "fuzz/cases");
  check Alcotest.int "metrics: mismatches" 0
    (Obs.Metrics.counter metrics "fuzz/mismatches")

let test_mutant_control () =
  let outcome =
    Fuzz.Campaign.run
      ~flooding_b:(Fuzz.Mutant.flooding ~bug:false)
      ~jobs:2 ~runs:40 ~seed:2 ()
  in
  check Alcotest.int "the faithful protocol copy diffs clean" 0
    (List.length outcome.Fuzz.Campaign.mismatches)

let test_mutation_smoke () =
  let metrics = Obs.Metrics.create () in
  let mutant = Fuzz.Mutant.flooding ~bug:true in
  let outcome =
    Fuzz.Campaign.run ~flooding_b:mutant ~jobs:2 ~metrics ~shrink_budget:200
      ~runs:60 ~seed:0 ()
  in
  check Alcotest.bool "the seeded off-by-one is found within 60 cases" true
    (outcome.Fuzz.Campaign.mismatches <> []);
  check Alcotest.bool "shrinking spent work" true
    (Obs.Metrics.counter metrics "fuzz/shrink_steps" > 0);
  List.iter
    (fun (m : Fuzz.Campaign.mismatch) ->
      let sh = m.Fuzz.Campaign.shrunk in
      let id = m.Fuzz.Campaign.case.Fuzz.Case.id in
      check Alcotest.bool
        (Printf.sprintf "case %d: shrunk to at most 8 rounds" id)
        true
        (Fuzz.Case.period sh <= 8);
      check Alcotest.bool
        (Printf.sprintf "case %d: shrunk to at most 8 nodes" id)
        true (sh.Fuzz.Case.n <= 8);
      (match Scenario.Trace_io.validate (Fuzz.Case.to_trace sh) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "case %d: shrunk trace invalid: %s" id e);
      check Alcotest.bool
        (Printf.sprintf "case %d: shrunk case still diverges under the mutant"
           id)
        true
        (Option.is_some
           (Fuzz.Diff.check ~flooding_b:mutant
              ~engine_a:Engine.Reference.engine
              ~engine_b:Engine.Default.engine sh));
      check Alcotest.bool
        (Printf.sprintf "case %d: shrunk case agrees without the mutant" id)
        true
        (Option.is_none
           (Fuzz.Diff.check ~engine_a:Engine.Reference.engine
              ~engine_b:Engine.Default.engine sh)))
    outcome.Fuzz.Campaign.mismatches

let test_soa_boundary_mutant () =
  (* The sharded engine's seeded mutant: shard 1's span starts one
     node late, silently dropping one node on the 0/1 boundary.  The
     campaign (Default pinned on the a-side against the buggy soa-2)
     must find it and shrink the counterexamples small. *)
  let metrics = Obs.Metrics.create () in
  let buggy = Engine.Soa.make ~shards:2 ~boundary_bug:true () in
  let outcome =
    Fuzz.Campaign.run ~engine_a:Engine.Default.engine ~engine_b:buggy ~jobs:2
      ~metrics ~shrink_budget:200 ~runs:40 ~seed:6 ()
  in
  check Alcotest.bool
    "the shard-boundary off-by-one is found within 40 cases" true
    (outcome.Fuzz.Campaign.mismatches <> []);
  check Alcotest.bool "shrinking spent work" true
    (Obs.Metrics.counter metrics "fuzz/shrink_steps" > 0);
  List.iter
    (fun (m : Fuzz.Campaign.mismatch) ->
      let sh = m.Fuzz.Campaign.shrunk in
      let id = m.Fuzz.Campaign.case.Fuzz.Case.id in
      check Alcotest.bool
        (Printf.sprintf "case %d: shrunk to at most 8 nodes / 8 rounds" id)
        true
        (sh.Fuzz.Case.n <= 8 && Fuzz.Case.period sh <= 8);
      check Alcotest.bool
        (Printf.sprintf
           "case %d: shrunk case still diverges under the boundary bug" id)
        true
        (Option.is_some
           (Fuzz.Diff.check ~engine_a:Engine.Default.engine ~engine_b:buggy
              sh));
      check Alcotest.bool
        (Printf.sprintf "case %d: shrunk case agrees with the clean soa-2"
           id)
        true
        (Option.is_none
           (Fuzz.Diff.check ~engine_a:Engine.Default.engine
              ~engine_b:(Engine.Soa.engine ~shards:2 ())
              sh)))
    outcome.Fuzz.Campaign.mismatches

let test_corpus_saving () =
  let mutant = Fuzz.Mutant.flooding ~bug:true in
  let outcome =
    Fuzz.Campaign.run ~flooding_b:mutant ~jobs:2 ~shrink_budget:200 ~runs:30
      ~seed:0 ()
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "dynspread-fuzz-test"
  in
  let saved = Fuzz.Campaign.save_corpus ~dir outcome in
  check Alcotest.bool "something was saved" true (saved <> []);
  List.iter
    (fun spec_name ->
      let spec_path = Filename.concat dir spec_name in
      match Scenario.Spec.load spec_path with
      | Error errs ->
          Alcotest.failf "%s: saved spec invalid: %s" spec_name
            (String.concat "; " errs)
      | Ok spec -> (
          let trace_path =
            match spec.Scenario.Spec.env with
            | Scenario.Spec.Trace { path } -> Filename.concat dir path
            | _ -> Alcotest.failf "%s: saved spec has no trace env" spec_name
          in
          match Scenario.Trace_io.load trace_path with
          | Error e ->
              Alcotest.failf "%s: saved trace invalid: %s" spec_name e
          | Ok trace -> (
              match Fuzz.Case.of_spec spec ~trace with
              | Error e ->
                  Alcotest.failf "%s: of_spec failed: %s" spec_name e
              | Ok c ->
                  (* The real engines agree on the saved case — the
                     divergence needed the mutant. *)
                  check
                    Alcotest.(option string)
                    (spec_name ^ ": replays clean through both engines") None
                    (Fuzz.Diff.check ~engine_a:Engine.Reference.engine
                       ~engine_b:Engine.Default.engine c))))
    saved

(* {2 Stall detection} *)

module Idle = struct
  type state = unit
  type msg = Gossip.Payload.t

  let classify = Gossip.Payload.classify
  let intent st ~round:_ = (st, None)
  let receive st ~round:_ ~inbox:_ = st
  let progress _ = 0
  let plane = None
end

let test_stalled_engines_agree () =
  let protocol =
    (module Idle : Engine.Runner_broadcast.PROTOCOL
      with type state = unit
       and type msg = Gossip.Payload.t)
  in
  let run engine =
    let module E = (val engine : Engine.Engine_sig.ENGINE) in
    let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.cycle ~n:4) in
    let result, _ =
      E.Broadcast.run protocol ~stall_after:5
        ~states:(Array.make 4 ())
        ~adversary:(Adversary.Schedule.broadcast schedule)
        ~max_rounds:100
        ~stop:(fun _ -> false)
        ()
    in
    result
  in
  let ra = run Engine.Reference.engine and rb = run Engine.Default.engine in
  (match ra.Engine.Run_result.outcome with
  | Engine.Run_result.Stalled { rounds_without_progress } ->
      check Alcotest.int "stalled after the window" 5 rounds_without_progress
  | _ -> Alcotest.fail "reference engine did not report Stalled");
  check Alcotest.int "stalled at round = window" 5 ra.Engine.Run_result.rounds;
  check Alcotest.string "both engines report the stall identically"
    (Obs.Json.to_string
       (Obs.Report.to_json (Engine.Run_result.to_report ra)))
    (Obs.Json.to_string
       (Obs.Report.to_json (Engine.Run_result.to_report rb)))

(* {2 The committed corpus} *)

let corpus_dir = "corpus"

let test_corpus_regression () =
  let entries =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scenario.json")
    |> List.sort String.compare
  in
  check Alcotest.bool "corpus is non-empty" true (entries <> []);
  let saw_stalled = ref false in
  List.iter
    (fun spec_name ->
      let spec =
        match Scenario.Spec.load (Filename.concat corpus_dir spec_name) with
        | Ok s -> s
        | Error errs ->
            Alcotest.failf "%s: %s" spec_name (String.concat "; " errs)
      in
      let trace_path =
        match spec.Scenario.Spec.env with
        | Scenario.Spec.Trace { path } -> Filename.concat corpus_dir path
        | _ -> Alcotest.failf "%s: corpus spec has no trace env" spec_name
      in
      let trace =
        match Scenario.Trace_io.load trace_path with
        | Ok t -> t
        | Error e -> Alcotest.failf "%s: %s" spec_name e
      in
      let c =
        match Fuzz.Case.of_spec spec ~trace with
        | Ok c -> c
        | Error e -> Alcotest.failf "%s: %s" spec_name e
      in
      let a = Fuzz.Diff.execute ~engine:Engine.Reference.engine c in
      let b = Fuzz.Diff.execute ~engine:Engine.Default.engine c in
      check
        Alcotest.(option string)
        (spec_name ^ ": both engines agree") None (Fuzz.Diff.divergence a b);
      if contains a.Fuzz.Diff.report "\"outcome\":\"stalled\"" then
        saw_stalled := true)
    entries;
  check Alcotest.bool
    "the corpus covers the livelock corner (a stalled outcome)" true
    !saw_stalled

let suite =
  [
    Alcotest.test_case "gen: deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "gen: valid cases" `Quick test_gen_valid;
    Alcotest.test_case "gen: spec round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "gen: engine pairing dimension" `Quick
      test_engine_pair;
    Alcotest.test_case "diff: 60-case batch clean" `Quick
      test_differential_batch;
    Alcotest.test_case "mutant: faithful copy diffs clean" `Quick
      test_mutant_control;
    Alcotest.test_case "mutant: off-by-one found and shrunk" `Quick
      test_mutation_smoke;
    Alcotest.test_case "mutant: shard boundary found and shrunk" `Quick
      test_soa_boundary_mutant;
    Alcotest.test_case "corpus: save and reload" `Quick test_corpus_saving;
    Alcotest.test_case "engines: stall detector agrees" `Quick
      test_stalled_engines_agree;
    Alcotest.test_case "corpus: committed regressions replay clean" `Quick
      test_corpus_regression;
  ]
