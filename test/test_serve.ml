(* The serve subsystem: NDJSON framing, rpc codecs, cooperative
   cancellation at the engine seam, scheduler semantics (fairness,
   backpressure, cancel in every state, pool-size independence), and
   an in-process daemon driven end to end over its unix socket. *)

let check = Alcotest.check

(* {2 Helpers} *)

let spec_string ?(name = "serve-flood") ?(n = 16) ?(k = 6) ?(seed = 7)
    ?(repeats = 2) () =
  Printf.sprintf
    {|{ "schema": "dynspread-scenario/v1", "name": "%s",
        "algorithm": "flooding",
        "env": { "family": "rewiring", "rate": 0.25 },
        "n": %d, "k": %d, "seed": %d, "repeats": %d }|}
    name n k seed repeats

let spec_of_string s =
  match Scenario.Spec.of_string s with
  | Ok spec -> spec
  | Error es -> Alcotest.failf "spec invalid: %s" (String.concat "; " es)

let json_of s =
  match Obs.Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparsable json: %s" e

let prepared_of ?base_dir s : Scenario.Runner.prepared =
  match Scenario.Runner.prepare ?base_dir (spec_of_string s) with
  | Ok p -> p
  | Error e -> Alcotest.failf "prepare failed: %s" e

let report_line r = Obs.Json.to_string (Obs.Report.to_json r)

let report_field line name =
  match Obs.Json.member name (json_of line) with
  | Some v -> v
  | None -> Alcotest.failf "report lacks %S: %s" name line

let report_outcome line =
  match report_field line "outcome" with
  | Obs.Json.String s -> s
  | _ -> Alcotest.failf "non-string outcome: %s" line

let report_int line name =
  match Obs.Json.to_int (report_field line name) with
  | Some n -> n
  | None -> Alcotest.failf "non-int %S: %s" name line

let wait_until ?(timeout = 20.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

(* {2 Frame splitter} *)

let test_frame_reassembly () =
  let sp = Serve.Frame.splitter () in
  let feed chunk =
    match Serve.Frame.feed sp chunk with
    | Ok frames -> frames
    | Error e -> Alcotest.failf "feed failed: %s" e
  in
  check (Alcotest.list Alcotest.string) "partial frame" [] (feed {|{"a"|});
  check
    (Alcotest.list Alcotest.string)
    "two frames close" [ {|{"a":1}|}; {|{"b":2}|} ]
    (feed ":1}\n{\"b\":2}\n{");
  check Alcotest.int "pending bytes" 1 (Serve.Frame.pending sp);
  check
    (Alcotest.list Alcotest.string)
    "crlf stripped" [ {|{"c":3}|} ]
    (feed "\"c\":3}\r\n");
  check
    (Alcotest.list Alcotest.string)
    "empty lines dropped" [ {|{"d":4}|} ]
    (feed "\n\n{\"d\":4}\n\n")

let test_frame_poison () =
  let sp = Serve.Frame.splitter ~max_frame:8 () in
  (match Serve.Frame.feed sp "0123456789abcdef" with
  | Ok _ -> Alcotest.fail "oversize frame accepted"
  | Error _ -> ());
  match Serve.Frame.feed sp "{}\n" with
  | Ok _ -> Alcotest.fail "poisoned splitter recovered"
  | Error _ -> ()

(* {2 Rpc codec} *)

let test_rpc_roundtrip () =
  let sub =
    {
      Serve.Rpc.tag = Some "t1";
      spec = json_of (spec_string ());
      base_dir = Some "/tmp";
      engine = Some "soa";
      shards = Some 2;
      events = true;
    }
  in
  let requests =
    [
      Serve.Rpc.Submit sub;
      Serve.Rpc.Status { job = Some 3 };
      Serve.Rpc.Status { job = None };
      Serve.Rpc.Cancel { job = 7 };
      Serve.Rpc.Subscribe { job = 7; events = false };
      Serve.Rpc.Shutdown;
      Serve.Rpc.Ping;
    ]
  in
  List.iter
    (fun r ->
      let line = Serve.Rpc.request_to_line r in
      match Serve.Rpc.request_of_line line with
      | Ok r' -> check Alcotest.bool ("request " ^ line) true (r = r')
      | Error e -> Alcotest.failf "request did not round-trip: %s" e)
    requests;
  let responses =
    [
      Serve.Rpc.Accepted { job = 1; tag = Some "t"; queue_depth = 2 };
      Serve.Rpc.Rejected { tag = None; reason = "queue full"; queue_depth = 9 };
      Serve.Rpc.Error { reason = "bad frame" };
      Serve.Rpc.Status_view
        {
          jobs =
            [ { Serve.Rpc.job = 1; name = "x"; state = "running"; reports = 0 } ];
          queue_depth = 1;
          running = 1;
        };
      Serve.Rpc.Cancel_ok { job = 4; was = "queued" };
      Serve.Rpc.Subscribed { job = 4; events = true };
      Serve.Rpc.Event { job = 4; line = {|{"round":1}|} };
      Serve.Rpc.Report { job = 4; index = 0; line = {|{"rounds":3}|} };
      Serve.Rpc.Done
        { job = 4; outcome = "failed"; reports = 1; reason = Some "boom" };
      Serve.Rpc.Shutting_down;
      Serve.Rpc.Pong;
    ]
  in
  List.iter
    (fun r ->
      let line = Serve.Rpc.response_to_line r in
      match Serve.Rpc.response_of_line line with
      | Ok r' -> check Alcotest.bool ("response " ^ line) true (r = r')
      | Error e -> Alcotest.failf "response did not round-trip: %s" e)
    responses

let test_rpc_rejects () =
  let bad =
    [
      {|{"op":"ping"}|} (* missing version *);
      {|{"rpc":"dynspread-rpc/v0","op":"ping"}|} (* wrong version *);
      {|{"rpc":"dynspread-rpc/v1","op":"warp"}|} (* unknown op *);
      {|[1,2,3]|} (* not an object *);
      {|not json|};
    ]
  in
  List.iter
    (fun line ->
      match Serve.Rpc.request_of_line line with
      | Ok _ -> Alcotest.failf "accepted bad frame: %s" line
      | Error _ -> ())
    bad

(* {2 Cancellation at the engine seam} *)

let engines =
  [
    ("fastpath", None);
    ("reference", Some Engine.Reference.engine);
    ("soa", Some (Engine.Soa.engine ~shards:1 ()));
  ]

let test_cancel_before_start () =
  List.iter
    (fun (tag, engine) ->
      let p = prepared_of (spec_string ~n:32 ~k:4 ()) in
      let line =
        report_line
          (Scenario.Runner.run_repeat ?engine p ~seed:p.seeds.(0)
             ~cancel:(fun () -> true))
      in
      check Alcotest.string (tag ^ ": outcome") "cancelled"
        (report_outcome line);
      check Alcotest.int (tag ^ ": zero rounds") 0 (report_int line "rounds"))
    engines

(* Cancel after [polls] round-boundary checks; coverage at the later
   cut must dominate the earlier one (the informed set only grows). *)
let cancelled_after ?engine p polls =
  let c = ref 0 in
  let cancel () =
    incr c;
    !c > polls
  in
  report_line (Scenario.Runner.run_repeat ?engine p ~seed:p.seeds.(0) ~cancel)

let test_cancel_mid_run () =
  List.iter
    (fun (tag, engine) ->
      let p = prepared_of (spec_string ~n:256 ~k:4 ()) in
      let full =
        report_line (Scenario.Runner.run_repeat ?engine p ~seed:p.seeds.(0))
      in
      let full_rounds = report_int full "rounds" in
      check Alcotest.bool (tag ^ ": run outlasts the cut") true
        (full_rounds > 3);
      let early = cancelled_after ?engine p 2 in
      let late = cancelled_after ?engine p 4 in
      check Alcotest.string (tag ^ ": early cancelled") "cancelled"
        (report_outcome early);
      check Alcotest.string (tag ^ ": late cancelled") "cancelled"
        (report_outcome late);
      check Alcotest.bool
        (tag ^ ": partial rounds")
        true
        (report_int late "rounds" < full_rounds);
      let a_early = report_int early "achieved"
      and a_late = report_int late "achieved"
      and target = report_int late "target" in
      check Alcotest.bool (tag ^ ": some coverage") true (a_early >= 1);
      check Alcotest.bool (tag ^ ": monotone coverage") true
        (a_early <= a_late && a_late <= target))
    engines

let test_cancel_completion_wins () =
  let p = prepared_of (spec_string ~n:16 ~k:4 ()) in
  (* A poll that never fires: the run must complete normally. *)
  let line =
    report_line
      (Scenario.Runner.run_repeat p ~seed:p.seeds.(0) ~cancel:(fun () -> false))
  in
  check Alcotest.string "completed" "completed" (report_outcome line)

(* {2 Scheduler} *)

let with_sched ?(workers = 2) ?(queue_cap = 128) f =
  let m = Mutex.create () in
  let log = ref [] in
  let notify n =
    Mutex.lock m;
    log := n :: !log;
    Mutex.unlock m
  in
  let dump () =
    Mutex.lock m;
    let l = List.rev !log in
    Mutex.unlock m;
    l
  in
  let sched = Serve.Scheduler.create ~workers ~queue_cap ~notify () in
  (* [`Cancel] flags any still-running blocker so teardown is prompt;
     tests that care about completion wait for their [Finished]
     notifications before returning. *)
  Fun.protect
    ~finally:(fun () -> Serve.Scheduler.shutdown ~mode:`Cancel sched)
    (fun () -> f sched dump)

let admit ?(client = 1) sched prepared =
  match
    Serve.Scheduler.submit sched ~client ~name:"t" ~prepared ~events:false ()
  with
  | Serve.Scheduler.Admitted { job; _ } -> job
  | Serve.Scheduler.Refused { reason; _ } ->
      Alcotest.failf "unexpected refusal: %s" reason

let finished dump job =
  List.find_map
    (function
      | Serve.Scheduler.Finished { job = j; outcome; reports } when j = job ->
          Some (outcome, reports)
      | _ -> None)
    (dump ())

let wait_finished dump job =
  wait_until
    (Printf.sprintf "job %d to finish" job)
    (fun () -> finished dump job <> None);
  match finished dump job with
  | Some f -> f
  | None -> assert false

let job_reports dump job =
  List.filter_map
    (function
      | Serve.Scheduler.Report { job = j; index; line } when j = job ->
          Some (index, line)
      | _ -> None)
    (dump ())

(* A long job the tests park on one worker: hundreds of repeats of a
   small instance, so it occupies the pool for seconds if left alone
   but stops at the next boundary once cancelled. *)
let blocker_spec = spec_string ~name:"blocker" ~n:128 ~k:4 ~repeats:2000 ()

let wait_running sched job =
  wait_until
    (Printf.sprintf "job %d to start" job)
    (fun () ->
      match Serve.Scheduler.job_state sched job with
      | Some ("running", _) -> true
      | _ -> false)

let test_sched_pool_size_independent () =
  let p = prepared_of (spec_string ~name:"indep" ~n:24 ~k:6 ~repeats:3 ()) in
  let expected =
    Array.to_list
      (Array.mapi
         (fun i seed -> (i, report_line (Scenario.Runner.run_repeat p ~seed)))
         p.seeds)
  in
  let via ~workers =
    with_sched ~workers (fun sched dump ->
        let job = admit sched p in
        let outcome, reports = wait_finished dump job in
        check Alcotest.string "outcome" "completed"
          (Serve.Scheduler.outcome_name outcome);
        check Alcotest.int "report count" 3 reports;
        job_reports dump job)
  in
  let lines = Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string) in
  check lines "1 worker matches run_repeat" expected (via ~workers:1);
  check lines "3 workers match run_repeat" expected (via ~workers:3)

let test_sched_cancel_queued () =
  with_sched ~workers:1 (fun sched dump ->
      let blocker = admit sched (prepared_of blocker_spec) in
      wait_running sched blocker;
      let victim = admit sched (prepared_of (spec_string ~name:"victim" ())) in
      (match Serve.Scheduler.cancel sched victim with
      | Some was -> check Alcotest.string "was queued" "queued" was
      | None -> Alcotest.fail "victim unknown to the scheduler");
      (* Unblock the worker so it reaches the cancelled entry. *)
      ignore (Serve.Scheduler.cancel sched blocker);
      let outcome, reports = wait_finished dump victim in
      check Alcotest.string "victim cancelled" "cancelled"
        (Serve.Scheduler.outcome_name outcome);
      check Alcotest.int "zero reports" 0 reports;
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
        "no report lines" [] (job_reports dump victim))

let test_sched_cancel_finished_noop () =
  with_sched ~workers:1 (fun sched dump ->
      let job = admit sched (prepared_of (spec_string ~repeats:1 ())) in
      let outcome, reports = wait_finished dump job in
      check Alcotest.string "completed" "completed"
        (Serve.Scheduler.outcome_name outcome);
      (match Serve.Scheduler.cancel sched job with
      | Some was -> check Alcotest.string "found completed" "completed" was
      | None -> Alcotest.fail "job unknown to the scheduler");
      match Serve.Scheduler.job_state sched job with
      | Some (state, n) ->
          check Alcotest.string "state untouched" "completed" state;
          check Alcotest.int "reports untouched" reports n
      | None -> Alcotest.fail "job vanished")

let test_sched_backpressure () =
  with_sched ~workers:1 ~queue_cap:1 (fun sched _dump ->
      let blocker = admit sched (prepared_of blocker_spec) in
      wait_running sched blocker;
      let queued = admit sched (prepared_of (spec_string ())) in
      (match
         Serve.Scheduler.submit sched ~client:1 ~name:"t"
           ~prepared:(prepared_of (spec_string ()))
           ~events:false ()
       with
      | Serve.Scheduler.Refused { reason; queue_depth } ->
          check Alcotest.bool "reason is not empty" true
            (String.length reason > 0);
          check Alcotest.int "depth at cap" 1 queue_depth
      | Serve.Scheduler.Admitted _ ->
          Alcotest.fail "admission above the queue cap");
      ignore (Serve.Scheduler.cancel sched queued);
      ignore (Serve.Scheduler.cancel sched blocker))

let test_sched_fair_rotation () =
  with_sched ~workers:1 (fun sched dump ->
      let blocker = admit ~client:0 sched (prepared_of blocker_spec) in
      wait_running sched blocker;
      let small name = prepared_of (spec_string ~name ~repeats:1 ()) in
      let a1 = admit ~client:1 sched (small "a1") in
      let a2 = admit ~client:1 sched (small "a2") in
      let b1 = admit ~client:2 sched (small "b1") in
      let b2 = admit ~client:2 sched (small "b2") in
      ignore (Serve.Scheduler.cancel sched blocker);
      List.iter (fun j -> ignore (wait_finished dump j)) [ a1; a2; b1; b2 ];
      let started =
        List.filter_map
          (function
            | Serve.Scheduler.Started { job } -> Some job | _ -> None)
          (dump ())
      in
      (* Client 1's backlog of two must not run before client 2 gets
         a turn: the rotation alternates 1, 2, 1, 2. *)
      check
        (Alcotest.list Alcotest.int)
        "round-robin across clients"
        [ blocker; a1; b1; a2; b2 ]
        started)

(* {2 The daemon end to end} *)

let sock_path () =
  let f = Filename.temp_file "dynspread-serve" ".sock" in
  Sys.remove f;
  f

let with_server ?(workers = 2) ?(queue_cap = 128) f =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let path = sock_path () in
  let stop = Atomic.make 0 in
  let config =
    {
      Serve.Server.socket = Some path;
      listen = None;
      metrics = None;
      workers;
      queue_cap;
      stop;
    }
  in
  let d = Domain.spawn (fun () -> Serve.Server.run config) in
  Fun.protect
    ~finally:(fun () ->
      (* Prefer the rpc drain; fall back to the signal path (the loop
         polls [stop] on its select tick). *)
      (try
         let c = Serve.Client.connect (Serve.Client.Unix_path path) in
         Serve.Client.shutdown c;
         Serve.Client.close c
       with Serve.Client.Io_error _ -> Atomic.set stop 1);
      ignore (Domain.join d))
    (fun () ->
      wait_until "the daemon socket" (fun () -> Sys.file_exists path);
      f path)

let connect path = Serve.Client.connect (Serve.Client.Unix_path path)

let submit_frame ?tag ?base_dir ?(events = false) raw =
  {
    Serve.Rpc.tag;
    spec = json_of raw;
    base_dir;
    engine = None;
    shards = None;
    events;
  }

let test_server_byte_identity () =
  let raw = spec_string ~name:"e2e" ~n:16 ~k:8 ~repeats:3 () in
  let expected =
    match Scenario.Runner.run (spec_of_string raw) with
    | Ok rs -> Array.to_list (Array.map report_line rs)
    | Error e -> Alcotest.failf "direct run failed: %s" e
  in
  with_server (fun path ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let got = ref [] in
          match
            Serve.Client.submit_await c (submit_frame raw)
              ~on_event:(fun _ -> ())
              ~on_report:(fun _ line -> got := line :: !got)
          with
          | Error e -> Alcotest.failf "submit failed: %s" e
          | Ok (fin : Serve.Client.finished) ->
              check Alcotest.string "outcome" "completed" fin.outcome;
              check Alcotest.int "report count" 3 fin.reports;
              check
                (Alcotest.list Alcotest.string)
                "byte-identical to scenario run" expected (List.rev !got)))

let test_server_pipelined_submits () =
  with_server ~workers:4 (fun path ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let total = 64 in
          for i = 1 to total do
            Serve.Client.send c
              (Serve.Rpc.Submit
                 (submit_frame ~tag:(string_of_int i)
                    (spec_string
                       ~name:(Printf.sprintf "burst-%d" i)
                       ~n:8 ~k:4 ~seed:i ~repeats:1 ())))
          done;
          let accepted = ref 0 and completed = ref 0 and done_ = ref 0 in
          while !done_ < total do
            match Serve.Client.recv c with
            | Serve.Rpc.Accepted _ -> incr accepted
            | Serve.Rpc.Done { outcome; _ } ->
                incr done_;
                if outcome = "completed" then incr completed
            | Serve.Rpc.Report _ | Serve.Rpc.Event _ -> ()
            | Serve.Rpc.Rejected { reason; _ } ->
                Alcotest.failf "burst submit rejected: %s" reason
            | Serve.Rpc.Error { reason } ->
                Alcotest.failf "protocol error: %s" reason
            | _ -> ()
          done;
          check Alcotest.int "all accepted" total !accepted;
          check Alcotest.int "all completed" total !completed))

let test_server_backpressure () =
  with_server ~workers:1 ~queue_cap:1 (fun path ->
      let a = connect path and b = connect path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (Serve.Rpc.Submit (submit_frame blocker_spec));
          let blocker =
            match Serve.Client.recv a with
            | Serve.Rpc.Accepted { job; _ } -> job
            | r ->
                Alcotest.failf "expected accepted, got %s"
                  (Serve.Rpc.response_to_line r)
          in
          wait_until "the blocker to start" (fun () ->
              match Serve.Client.status b ~job:blocker () with
              | [ v ], _, _ -> v.Serve.Rpc.state = "running"
              | _ -> false);
          Serve.Client.send a
            (Serve.Rpc.Submit (submit_frame (spec_string ~name:"q1" ())));
          Serve.Client.send a
            (Serve.Rpc.Submit (submit_frame (spec_string ~name:"q2" ())));
          let rec next_admission () =
            match Serve.Client.recv a with
            | Serve.Rpc.Accepted { job; _ } -> Ok job
            | Serve.Rpc.Rejected { reason; queue_depth; _ } ->
                Error (reason, queue_depth)
            | Serve.Rpc.Report _ | Serve.Rpc.Event _ | Serve.Rpc.Done _ ->
                next_admission ()
            | r ->
                Alcotest.failf "unexpected frame: %s"
                  (Serve.Rpc.response_to_line r)
          in
          let queued =
            match next_admission () with
            | Ok job -> job
            | Error (reason, _) ->
                Alcotest.failf "first queued submit refused: %s" reason
          in
          (match next_admission () with
          | Error (reason, queue_depth) ->
              check Alcotest.bool "reason is not empty" true
                (String.length reason > 0);
              check Alcotest.int "depth at cap" 1 queue_depth
          | Ok _ -> Alcotest.fail "admission above the queue cap");
          ignore (Serve.Client.cancel b ~job:queued);
          ignore (Serve.Client.cancel b ~job:blocker)))

let test_server_cancel_mid_run () =
  with_server ~workers:1 (fun path ->
      let a = connect path and b = connect path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          Serve.Client.send a (Serve.Rpc.Submit (submit_frame blocker_spec));
          let job =
            match Serve.Client.recv a with
            | Serve.Rpc.Accepted { job; _ } -> job
            | r ->
                Alcotest.failf "expected accepted, got %s"
                  (Serve.Rpc.response_to_line r)
          in
          wait_until "the job to start" (fun () ->
              match Serve.Client.status b ~job () with
              | [ v ], _, _ -> v.Serve.Rpc.state = "running"
              | _ -> false);
          (match Serve.Client.cancel b ~job with
          | Ok was -> check Alcotest.string "was running" "running" was
          | Error e -> Alcotest.failf "cancel refused: %s" e);
          let rec await () =
            match Serve.Client.recv a with
            | Serve.Rpc.Done { outcome; reports; _ } -> (outcome, reports)
            | Serve.Rpc.Report _ | Serve.Rpc.Event _ -> await ()
            | r ->
                Alcotest.failf "unexpected frame: %s"
                  (Serve.Rpc.response_to_line r)
          in
          let outcome, reports = await () in
          check Alcotest.string "cancelled" "cancelled" outcome;
          check Alcotest.bool "partial reports" true (reports < 2000)))

let test_server_cancel_unknown_job () =
  with_server (fun path ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.cancel c ~job:999 with
          | Error reason ->
              check Alcotest.bool "diagnostic names the job" true
                (String.length reason > 0)
          | Ok was -> Alcotest.failf "cancelled a phantom job (was %s)" was))

let test_server_malformed_frame () =
  with_server (fun path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          let line = "{\"nope\":1}\n" in
          ignore (Unix.write_substring fd line 0 (String.length line));
          let buf = Buffer.create 256 in
          let b = Bytes.create 1 in
          let rec read_reply () =
            match Unix.read fd b 0 1 with
            | 0 -> Buffer.contents buf
            | _ ->
                if Bytes.get b 0 = '\n' then Buffer.contents buf
                else begin
                  Buffer.add_char buf (Bytes.get b 0);
                  read_reply ()
                end
          in
          (match Serve.Rpc.response_of_line (read_reply ()) with
          | Ok (Serve.Rpc.Error { reason }) ->
              check Alcotest.bool "diagnostic mentions the protocol" true
                (String.length reason > 0)
          | Ok r ->
              Alcotest.failf "expected an error frame, got %s"
                (Serve.Rpc.response_to_line r)
          | Error e -> Alcotest.failf "unparsable reply: %s" e);
          (* A malformed frame is answered, not hung up on: the same
             session must still serve well-formed requests. *)
          let ping = Serve.Rpc.request_to_line Serve.Rpc.Ping ^ "\n" in
          Buffer.clear buf;
          ignore (Unix.write_substring fd ping 0 (String.length ping));
          match Serve.Rpc.response_of_line (read_reply ()) with
          | Ok Serve.Rpc.Pong -> ()
          | Ok r ->
              Alcotest.failf "expected pong after the error, got %s"
                (Serve.Rpc.response_to_line r)
          | Error e -> Alcotest.failf "unparsable pong: %s" e))

let test_server_corpus_replay () =
  let raw =
    In_channel.with_open_bin
      (Filename.concat "corpus" "faulty-flooding.scenario.json")
      In_channel.input_all
  in
  let expected =
    match Scenario.Runner.run ~base_dir:"corpus" (spec_of_string raw) with
    | Ok rs -> Array.to_list (Array.map report_line rs)
    | Error e -> Alcotest.failf "direct run failed: %s" e
  in
  with_server (fun path ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let got = ref [] in
          match
            Serve.Client.submit_await c
              (submit_frame ~base_dir:"corpus" raw)
              ~on_event:(fun _ -> ())
              ~on_report:(fun _ line -> got := line :: !got)
          with
          | Error e -> Alcotest.failf "submit failed: %s" e
          | Ok (fin : Serve.Client.finished) ->
              check Alcotest.string "outcome" "completed" fin.outcome;
              check
                (Alcotest.list Alcotest.string)
                "corpus bytes identical through the daemon" expected
                (List.rev !got)))

let test_bind_unix_stale_vs_live () =
  let path = sock_path () in
  let live = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind live (Unix.ADDR_UNIX path);
  Unix.listen live 8;
  (match Serve.Server.bind_unix path with
  | exception Serve.Server.Startup_error _ -> ()
  | fd ->
      Unix.close fd;
      Alcotest.fail "bound over a live daemon");
  (* Close without unlinking: the path is now a stale socket and must
     be reclaimed. *)
  Unix.close live;
  check Alcotest.bool "stale path survives" true (Sys.file_exists path);
  let fd = Serve.Server.bind_unix path in
  Unix.close fd;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "frame: chunk reassembly" `Quick test_frame_reassembly;
    Alcotest.test_case "frame: oversize poisons" `Quick test_frame_poison;
    Alcotest.test_case "rpc: codecs round-trip" `Quick test_rpc_roundtrip;
    Alcotest.test_case "rpc: bad frames rejected" `Quick test_rpc_rejects;
    Alcotest.test_case "cancel: before start, every engine" `Quick
      test_cancel_before_start;
    Alcotest.test_case "cancel: mid-run partial coverage" `Quick
      test_cancel_mid_run;
    Alcotest.test_case "cancel: completion wins" `Quick
      test_cancel_completion_wins;
    Alcotest.test_case "scheduler: reports independent of pool size" `Quick
      test_sched_pool_size_independent;
    Alcotest.test_case "scheduler: cancel while queued" `Quick
      test_sched_cancel_queued;
    Alcotest.test_case "scheduler: cancel after completion" `Quick
      test_sched_cancel_finished_noop;
    Alcotest.test_case "scheduler: bounded-queue backpressure" `Quick
      test_sched_backpressure;
    Alcotest.test_case "scheduler: fair rotation across clients" `Quick
      test_sched_fair_rotation;
    Alcotest.test_case "server: reports byte-identical" `Quick
      test_server_byte_identity;
    Alcotest.test_case "server: 64 pipelined submits" `Quick
      test_server_pipelined_submits;
    Alcotest.test_case "server: backpressure rejection" `Quick
      test_server_backpressure;
    Alcotest.test_case "server: cancel mid-run" `Quick
      test_server_cancel_mid_run;
    Alcotest.test_case "server: cancel unknown job" `Quick
      test_server_cancel_unknown_job;
    Alcotest.test_case "server: malformed frame" `Quick
      test_server_malformed_frame;
    Alcotest.test_case "server: corpus replay byte-identical" `Quick
      test_server_corpus_replay;
    Alcotest.test_case "server: stale socket reclaimed, live refused" `Quick
      test_bind_unix_stale_vs_live;
  ]
