(* Tests for the mega-scale SoA engine stack: shard-range geometry
   and the Shard_pool barrier protocol, the delta-gated CSR adjacency,
   byte-identical reports against the fastpath engine across
   topologies / algorithms / shard counts, the seeded shard-boundary
   mutant being observable, and the allocation-free steady state of
   the plane round loop. *)

let check = Alcotest.check

let report r =
  Obs.Json.to_string (Obs.Report.to_json (Engine.Run_result.to_report r))

let soa_engines =
  [
    ("soa", Engine.Soa.engine ());
    ("soa-2", Engine.Soa.engine ~shards:2 ());
    ("soa-4", Engine.Soa.engine ~shards:4 ());
  ]

(* {2 Shard ranges} *)

let test_ranges_geometry () =
  List.iter
    (fun (n, shards, align) ->
      let label fmt =
        Printf.sprintf ("n=%d shards=%d align=%d: " ^^ fmt) n shards align
      in
      let spans = Engine.Shard_pool.ranges ~n ~shards ~align () in
      check Alcotest.int (label "one span per shard") shards
        (Array.length spans);
      let pos = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          check Alcotest.int (label "spans are contiguous") !pos lo;
          check Alcotest.bool (label "span is ordered") true (lo <= hi);
          check Alcotest.bool (label "span is clamped to n") true (hi <= n);
          if hi < n then
            check Alcotest.int (label "interior boundary is aligned") 0
              (hi mod align);
          pos := hi)
        spans;
      check Alcotest.int (label "spans cover [0, n)") n !pos)
    [
      (10, 1, 1); (10, 3, 1); (7, 4, 1); (0, 3, 1); (1, 8, 1);
      (100, 4, Dynet.Bitset.bpw); (5, 8, Dynet.Bitset.bpw);
      (1000, 7, Dynet.Bitset.bpw); (124, 2, Dynet.Bitset.bpw);
    ]

let test_pool_owns_every_index () =
  let n = 103 in
  let spans = Engine.Shard_pool.ranges ~n ~shards:4 () in
  let owner = Array.make n (-1) in
  let passes = Array.make 4 0 in
  Engine.Shard_pool.with_pool ~spans (fun pool ->
      check Alcotest.int "pool shard count" 4 (Engine.Shard_pool.shards pool);
      Engine.Shard_pool.run pool (fun ~shard ~lo ~hi ->
          for i = lo to hi - 1 do
            owner.(i) <- shard
          done);
      (* A second barrier round trip through the same pool: the wakeup /
         done-count protocol must rearm. *)
      Engine.Shard_pool.run pool (fun ~shard ~lo:_ ~hi:_ ->
          passes.(shard) <- passes.(shard) + 1));
  Array.iteri
    (fun i s ->
      if s < 0 then Alcotest.failf "index %d never owned by any shard" i;
      let lo, hi = spans.(s) in
      if not (lo <= i && i < hi) then
        Alcotest.failf "index %d written by shard %d outside [%d, %d)" i s lo
          hi)
    owner;
  Array.iteri
    (fun s p ->
      check Alcotest.int
        (Printf.sprintf "shard %d ran the second barrier exactly once" s)
        1 p)
    passes

let test_pool_lowest_failure_wins () =
  let spans = Engine.Shard_pool.ranges ~n:40 ~shards:4 () in
  match
    Engine.Shard_pool.with_pool ~spans (fun pool ->
        Engine.Shard_pool.run pool (fun ~shard ~lo:_ ~hi:_ ->
            if shard >= 2 then failwith (string_of_int shard)))
  with
  | () -> Alcotest.fail "worker failure did not propagate"
  | exception Failure s ->
      check Alcotest.string "lowest failing shard re-raised first" "2" s

(* {2 CSR adjacency} *)

let sorted_row csr v =
  let out = ref [] in
  Dynet.Csr.iter_row csr v (fun w -> out := w :: !out);
  List.sort compare !out

let test_csr_matches_graph () =
  let n = 23 in
  let rng = Dynet.Rng.make ~seed:11 in
  let g = Dynet.Graph_gen.random_connected rng ~n ~p:0.2 in
  let csr = Dynet.Csr.create ~n in
  check Alcotest.bool "first update repacks" true (Dynet.Csr.update csr g);
  check Alcotest.int "entries = 2 x edges"
    (2 * Dynet.Graph.edge_count g)
    (Dynet.Csr.entries csr);
  for v = 0 to n - 1 do
    let expect =
      Dynet.Graph.neighbors g v |> Array.to_list |> List.sort compare
    in
    check
      Alcotest.(list int)
      (Printf.sprintf "node %d: CSR row equals graph adjacency" v)
      expect (sorted_row csr v);
    check Alcotest.int
      (Printf.sprintf "node %d: degree agrees" v)
      (Dynet.Graph.degree g v) (Dynet.Csr.degree csr v)
  done

let test_csr_delta_gated () =
  let n = 16 in
  let g = Dynet.Graph_gen.cycle ~n in
  let csr = Dynet.Csr.create ~n in
  check Alcotest.bool "initial repack" true (Dynet.Csr.update csr g);
  check Alcotest.int "one rebuild" 1 (Dynet.Csr.rebuilds csr);
  (* Same physical graph — the Stability fast path. *)
  check Alcotest.bool "same physical graph served for free" false
    (Dynet.Csr.update csr g);
  (* Structurally identical but physically fresh graph — the
     delta-counts gate. *)
  let g' = Dynet.Graph.make ~n (Dynet.Graph.edges g) in
  check Alcotest.bool "structurally unchanged graph served for free" false
    (Dynet.Csr.update csr g');
  check Alcotest.int "still one rebuild" 1 (Dynet.Csr.rebuilds csr);
  (* Real churn repacks and the rows follow. *)
  let h = Dynet.Graph_gen.star ~n in
  check Alcotest.bool "churn repacks" true (Dynet.Csr.update csr h);
  check Alcotest.int "two rebuilds" 2 (Dynet.Csr.rebuilds csr);
  check Alcotest.int "hub degree after repack" (n - 1)
    (Dynet.Csr.degree csr 0)

(* {2 Plane copy-on-write fences} *)

let expect_invalid_arg label f =
  match f () with
  | _ -> Alcotest.fail (label ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_plane_extract_is_detached () =
  (* The word-plane boundary is always crossed by copying: an
     extracted row must not alias the plane, or later in-place round
     updates would rewrite supposedly immutable protocol state. *)
  let p = Dynet.Plane.create ~rows:3 ~width:100 in
  Dynet.Plane.set p 1 7;
  Dynet.Plane.set p 1 63;
  let bs = Dynet.Plane.extract_row p 1 in
  check Alcotest.int "extracted cardinal" 2 (Dynet.Bitset.cardinal bs);
  Dynet.Plane.set p 1 8;
  Dynet.Plane.row_clear p 1;
  check Alcotest.bool "plane mutation invisible to the extracted copy" true
    (Dynet.Bitset.mem bs 7 && Dynet.Bitset.mem bs 63
    && Dynet.Bitset.cardinal bs = 2);
  let bs' = Dynet.Bitset.add 99 bs in
  check Alcotest.bool "persistent add on the copy leaves the plane clear"
    false
    (Dynet.Plane.mem p 1 99 || Dynet.Bitset.mem bs 99);
  check Alcotest.bool "the added element landed in the new value" true
    (Dynet.Bitset.mem bs' 99)

let test_bitset_store_word_pad_hygiene () =
  (* Writing a full machine word into the last (partial) word of a
     bitset must mask the pad bits, or popcounts and equality drift
     once planes exchange whole words. *)
  let width = 10 in
  let bs = Dynet.Bitset.create width in
  Dynet.Bitset.store_word bs 0 (-1);
  check Alcotest.int "pad bits masked on store" width
    (Dynet.Bitset.cardinal bs);
  let p = Dynet.Plane.create ~rows:2 ~width in
  Dynet.Plane.load_row p 0 bs;
  check Alcotest.int "plane row popcount agrees" width
    (Dynet.Plane.row_popcount p 0);
  check Alcotest.bool "round-trips through extract_row" true
    (Dynet.Bitset.equal bs (Dynet.Plane.extract_row p 0));
  expect_invalid_arg "width-mismatched load_row" (fun () ->
      Dynet.Plane.load_row p 0 (Dynet.Bitset.create (width + 1)))

let test_plane_sub_is_fenced () =
  let p = Dynet.Plane.create ~rows:6 ~width:40 in
  let slice = Dynet.Plane.sub p ~row:2 ~rows:2 in
  check Alcotest.int "slice row count" 2 (Dynet.Plane.rows slice);
  Dynet.Plane.set slice 0 5;
  check Alcotest.bool "slice writes land in the parent row" true
    (Dynet.Plane.mem p 2 5);
  Dynet.Plane.set p 4 9;
  check Alcotest.bool "slice reads see the shared storage" true
    (Dynet.Plane.mem slice 1 0 = false && Dynet.Plane.mem slice 0 5);
  expect_invalid_arg "slice cannot reach a sibling row" (fun () ->
      Dynet.Plane.mem slice 2 0);
  expect_invalid_arg "slice cannot write past its window" (fun () ->
      Dynet.Plane.set slice 3 0)

let test_plane_pool_siblings_isolated () =
  let pool = Dynet.Plane.Pool.create () in
  let a = Dynet.Plane.Pool.alloc pool ~rows:3 ~width:70 in
  let b = Dynet.Plane.Pool.alloc pool ~rows:2 ~width:70 in
  for r = 0 to 2 do
    for i = 0 to 69 do
      Dynet.Plane.set a r i
    done
  done;
  for r = 0 to 1 do
    check Alcotest.int
      (Printf.sprintf "sibling row %d untouched by a's saturation" r)
      0
      (Dynet.Plane.row_popcount b r)
  done;
  Dynet.Plane.set b 1 69;
  check Alcotest.bool "a's last row unaffected by b's write" true
    (Dynet.Plane.row_popcount a 2 = 70);
  Dynet.Plane.Pool.reset pool;
  let c = Dynet.Plane.Pool.alloc pool ~rows:3 ~width:70 in
  for r = 0 to 2 do
    check Alcotest.int
      (Printf.sprintf "post-reset plane row %d comes back zeroed" r)
      0
      (Dynet.Plane.row_popcount c r)
  done

(* {2 Byte-identical reports against the fastpath engine} *)

let test_flooding_identical () =
  let n = 33 in
  let instance = Gossip.Instance.single_source ~n ~k:5 ~source:0 in
  List.iter
    (fun (sname, schedule) ->
      let baseline, _ =
        Gossip.Runners.flooding ~instance ~schedule
          ~engine:Engine.Default.engine ()
      in
      List.iter
        (fun (ename, engine) ->
          let r, _ = Gossip.Runners.flooding ~instance ~schedule ~engine () in
          check Alcotest.string
            (Printf.sprintf "%s on %s matches the fastpath report" ename
               sname)
            (report baseline) (report r))
        soa_engines)
    (Adversary.Oblivious.all_named ~n ~seed:3)

let test_unicast_identical () =
  let n = 21 in
  let envs =
    [
      ( "rewiring",
        Gossip.Runners.Oblivious
          (Adversary.Oblivious.rewiring ~seed:5 ~n ~extra:3 ~rate:0.3) );
      ( "request-cutting",
        Gossip.Runners.Request_cutting { seed = 9; cut_prob = 0.25 } );
    ]
  in
  List.iter
    (fun (envname, env) ->
      let single = Gossip.Instance.single_source ~n ~k:4 ~source:0 in
      let multi = Gossip.Instance.one_per_node ~n in
      let base_s, _ =
        Gossip.Runners.single_source ~instance:single ~env
          ~engine:Engine.Default.engine ()
      in
      let base_m, _ =
        Gossip.Runners.multi_source ~instance:multi ~env
          ~engine:Engine.Default.engine ()
      in
      List.iter
        (fun (ename, engine) ->
          let r_s, _ =
            Gossip.Runners.single_source ~instance:single ~env ~engine ()
          in
          check Alcotest.string
            (Printf.sprintf "single-source/%s under %s matches fastpath"
               envname ename)
            (report base_s) (report r_s);
          let r_m, _ =
            Gossip.Runners.multi_source ~instance:multi ~env ~engine ()
          in
          check Alcotest.string
            (Printf.sprintf "multi-source/%s under %s matches fastpath"
               envname ename)
            (report base_m) (report r_m))
        soa_engines)
    envs

let test_faulty_runs_delegate_identically () =
  (* With a fault plan active the SoA engine hands the run to the
     sequential fastpath kernels, so faulty reports stay identical
     too. *)
  let n = 12 in
  let instance = Gossip.Instance.single_source ~n ~k:3 ~source:0 in
  let schedule = Adversary.Oblivious.fresh_random ~seed:4 ~n ~p:0.4 in
  let faults = Faults.Plan.make ~seed:7 ~loss:0.1 () in
  let base, _ =
    Gossip.Runners.flooding ~instance ~schedule ~faults
      ~engine:Engine.Default.engine ()
  in
  List.iter
    (fun (ename, engine) ->
      let r, _ =
        Gossip.Runners.flooding ~instance ~schedule ~faults ~engine ()
      in
      check Alcotest.string
        (Printf.sprintf "faulty flooding under %s matches fastpath" ename)
        (report base) (report r))
    soa_engines

let test_boundary_mutant_observable () =
  (* The seeded off-by-one (shard 1 starts one node late) must change
     behaviour — it is the fuzz harness's detection canary, so a
     silently-absorbed mutant would mean the harness tests nothing. *)
  let n = 10 in
  let instance = Gossip.Instance.single_source ~n ~k:3 ~source:0 in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n) in
  let clean, _ =
    Gossip.Runners.flooding ~instance ~schedule
      ~engine:(Engine.Soa.engine ~shards:2 ())
      ()
  in
  let buggy, _ =
    Gossip.Runners.flooding ~instance ~schedule
      ~engine:(Engine.Soa.make ~shards:2 ~boundary_bug:true ())
      ()
  in
  check Alcotest.bool "the boundary mutant changes the report" false
    (String.equal (report clean) (report buggy))

(* {2 Steady-state allocation}

   Differential minor-heap measurement shared by the three allocation
   tests below: run the same configuration twice — once for 100
   rounds, once for 1100 — and charge the difference to the extra
   1000 rounds, so setup, teardown and the common prefix cancel out.
   The result's timeline is one [(round, total, learnings)] entry per
   round by contract, materialised in one burst after the loop; its
   cost is measured the same way and subtracted, so the figure
   isolates the round loop itself.  [Gc.minor_words] counts the
   calling domain only, which is exactly the coordinating domain the
   multi-shard tests want to pin (shard 0 always runs there). *)

let per_round_minor_words engine ~instance ~graph =
  let adversary ~round:_ ~prev:_ ~states:_ ~intents:_ = graph in
  let module E = (val engine : Engine.Engine_sig.ENGINE) in
  let minor_words rounds =
    let go () =
      ignore
        (E.Broadcast.run Gossip.Flooding.protocol
           ~states:(Gossip.Flooding.init ~instance ())
           ~adversary ~max_rounds:rounds
           ~stop:(fun _ -> false)
           ())
    in
    go ();
    (* warm-up *)
    Gc.full_major ();
    let before = Gc.minor_words () in
    go ();
    Gc.minor_words () -. before
  in
  let timeline_words rounds =
    Gc.full_major ();
    let before = Gc.minor_words () in
    ignore
      (Sys.opaque_identity (List.init rounds (fun i -> (i + 1, i, i))));
    Gc.minor_words () -. before
  in
  let short = minor_words 100 and long = minor_words 1100 in
  let tshort = timeline_words 100 and tlong = timeline_words 1100 in
  (long -. short -. (tlong -. tshort)) /. 1000.

let test_round_loop_allocation_free () =
  (* A one-per-node instance on a small cycle saturates within a few
     dozen rounds; with [stop] never firing, every round after that is
     pure steady state (everyone broadcasts, nobody learns): the plane
     kernel must not allocate on the minor heap per round. *)
  let n = 8 in
  let per_round =
    per_round_minor_words (Engine.Soa.engine ())
      ~instance:(Gossip.Instance.one_per_node ~n)
      ~graph:(Dynet.Graph_gen.cycle ~n)
  in
  if per_round > 0.25 then
    Alcotest.failf
      "steady-state flooding rounds allocate %.2f minor words/round beyond \
       the timeline"
      per_round

let test_multi_shard_merge_allocation_free () =
  (* The same saturated steady state at shards = 4 (spans are
     unaligned, so even n = 8 splits into four real two-node shards):
     the measurement now also covers the barrier round trips and the
     ascending-shard staging-row merge between phases, none of which
     may allocate per round on the coordinating domain. *)
  let n = 8 in
  let per_round =
    per_round_minor_words
      (Engine.Soa.engine ~shards:4 ())
      ~instance:(Gossip.Instance.one_per_node ~n)
      ~graph:(Dynet.Graph_gen.cycle ~n)
  in
  if per_round > 0.25 then
    Alcotest.failf
      "multi-shard steady-state rounds allocate %.2f minor words/round on \
       the coordinating domain"
      per_round

let test_push_path_allocation_bounded () =
  (* A single source on a long path spreads one node per round, so
     every measured round keeps the broadcaster count under n/4 and
     the engine picks the push-side delivery (push_job, staging-row
     merge, apply_job) instead of pull.  The push path can never be
     learning-free — a connected round with an uninformed node always
     teaches one (any cut has a crossing edge) — so its sanctioned
     budget is that one learning's allocation: the restated node
     state plus [Plane.extract_row]'s detached mask, a small constant.
     A regression that allocates per node or per edge inside the
     delivery jobs shows up thousands of words over this bound at
     n = 4600. *)
  let n = 4600 in
  List.iter
    (fun shards ->
      let per_round =
        per_round_minor_words
          (Engine.Soa.engine ~shards ())
          ~instance:(Gossip.Instance.single_source ~n ~k:1 ~source:0)
          ~graph:(Dynet.Graph_gen.path ~n)
      in
      if per_round > 64. then
        Alcotest.failf
          "push-path rounds at shards=%d allocate %.1f minor words/round; \
           the budget is one learning's restate + extracted row (a small \
           constant)"
          shards per_round)
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "ranges: contiguous, aligned, clamped" `Quick
      test_ranges_geometry;
    Alcotest.test_case "pool: every index owned, barrier rearms" `Quick
      test_pool_owns_every_index;
    Alcotest.test_case "pool: lowest-shard failure wins" `Quick
      test_pool_lowest_failure_wins;
    Alcotest.test_case "csr: rows match graph adjacency" `Quick
      test_csr_matches_graph;
    Alcotest.test_case "csr: delta-gated rebuilds" `Quick
      test_csr_delta_gated;
    Alcotest.test_case "plane: extract_row is detached" `Quick
      test_plane_extract_is_detached;
    Alcotest.test_case "plane: store_word pad hygiene" `Quick
      test_bitset_store_word_pad_hygiene;
    Alcotest.test_case "plane: sub slices are fenced" `Quick
      test_plane_sub_is_fenced;
    Alcotest.test_case "plane: pool siblings isolated" `Quick
      test_plane_pool_siblings_isolated;
    Alcotest.test_case "soa: flooding byte-identical at shards 1/2/4" `Quick
      test_flooding_identical;
    Alcotest.test_case "soa: unicast byte-identical at shards 1/2/4" `Quick
      test_unicast_identical;
    Alcotest.test_case "soa: faulty runs delegate identically" `Quick
      test_faulty_runs_delegate_identically;
    Alcotest.test_case "soa: boundary mutant is observable" `Quick
      test_boundary_mutant_observable;
    Alcotest.test_case "soa: round loop allocation-free" `Quick
      test_round_loop_allocation_free;
    Alcotest.test_case "soa: multi-shard merge allocation-free" `Quick
      test_multi_shard_merge_allocation_free;
    Alcotest.test_case "soa: push path allocation bounded" `Quick
      test_push_path_allocation_bounded;
  ]
