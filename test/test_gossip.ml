(* Unit tests for tokens, instances, payloads, bounds formulas, and the
   static spanning-tree baseline. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {2 Token} *)

let test_token_make_and_relabel () =
  let t = Gossip.Token.make ~src:3 ~idx:2 ~uid:7 in
  check Alcotest.int "uid" 7 t.Gossip.Token.uid;
  let r = Gossip.Token.relabel t ~src:5 ~idx:0 in
  check Alcotest.int "uid preserved" 7 r.Gossip.Token.uid;
  check Alcotest.int "src changed" 5 r.Gossip.Token.src;
  check Alcotest.int "idx changed" 0 r.Gossip.Token.idx;
  Alcotest.check_raises "negative idx"
    (Invalid_argument "Token.make: negative idx") (fun () ->
      ignore (Gossip.Token.make ~src:0 ~idx:(-1) ~uid:0))

let test_token_ordering_by_catalog () =
  let a = Gossip.Token.make ~src:1 ~idx:5 ~uid:99 in
  let b = Gossip.Token.make ~src:2 ~idx:0 ~uid:0 in
  check Alcotest.bool "source-major order" true (Gossip.Token.compare a b < 0);
  let c = Gossip.Token.make ~src:1 ~idx:6 ~uid:0 in
  check Alcotest.bool "idx-minor order" true (Gossip.Token.compare a c < 0)

let test_token_set_uids () =
  let s =
    Gossip.Token.Set.of_list
      [
        Gossip.Token.make ~src:0 ~idx:0 ~uid:4;
        Gossip.Token.make ~src:1 ~idx:0 ~uid:2;
        Gossip.Token.make ~src:2 ~idx:0 ~uid:4;
      ]
  in
  check (Alcotest.list Alcotest.int) "sorted distinct uids" [ 2; 4 ]
    (Gossip.Token.uids s)

(* {2 Instance} *)

let test_instance_single_source () =
  let inst = Gossip.Instance.single_source ~n:6 ~k:4 ~source:2 in
  check Alcotest.int "n" 6 (Gossip.Instance.n inst);
  check Alcotest.int "k" 4 (Gossip.Instance.k inst);
  check (Alcotest.list Alcotest.int) "sources" [ 2 ] (Gossip.Instance.sources inst);
  check Alcotest.int "source holds k" 4 (Gossip.Instance.k_of inst 2);
  check Alcotest.int "others hold none" 0 (Gossip.Instance.k_of inst 0);
  check Alcotest.int "all tokens" 4
    (List.length (Gossip.Instance.all_tokens inst))

let test_instance_one_per_node () =
  let inst = Gossip.Instance.one_per_node ~n:5 in
  check Alcotest.int "k = n" 5 (Gossip.Instance.k inst);
  check Alcotest.int "s = n" 5 (Gossip.Instance.source_count inst);
  List.iter
    (fun v ->
      match Gossip.Instance.tokens_of inst v with
      | [ tok ] ->
          Alcotest.check Alcotest.int "uid = node" v tok.Gossip.Token.uid
      | _ -> Alcotest.fail "expected one token")
    (List.init 5 Fun.id)

let test_instance_multi_source_shape () =
  let rng = Dynet.Rng.make ~seed:5 in
  let inst = Gossip.Instance.multi_source ~rng ~n:20 ~k:37 ~s:6 in
  check Alcotest.int "k" 37 (Gossip.Instance.k inst);
  check Alcotest.int "s sources" 6 (Gossip.Instance.source_count inst);
  List.iter
    (fun v ->
      Alcotest.check Alcotest.bool "every source has a token" true
        (Gossip.Instance.k_of inst v >= 1))
    (Gossip.Instance.sources inst)

let test_instance_validation () =
  Alcotest.check_raises "bad s"
    (Invalid_argument "Instance.multi_source: need 1 <= s <= min k n")
    (fun () ->
      ignore
        (Gossip.Instance.multi_source ~rng:(Dynet.Rng.make ~seed:1) ~n:4 ~k:3
           ~s:5));
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Instance.single_source: source out of range") (fun () ->
      ignore (Gossip.Instance.single_source ~n:4 ~k:3 ~source:9));
  (* Duplicate uid rejected. *)
  let bad =
    [|
      [ Gossip.Token.make ~src:0 ~idx:0 ~uid:0 ];
      [ Gossip.Token.make ~src:1 ~idx:0 ~uid:0 ];
    |]
  in
  Alcotest.check_raises "duplicate uid"
    (Invalid_argument "Instance.make: duplicate token uid") (fun () ->
      ignore (Gossip.Instance.make ~n:2 ~assignment:bad))

let prop_multi_source_uids_partition =
  QCheck.Test.make ~name:"instance: uids are exactly 0..k-1" ~count:50
    (QCheck.triple (QCheck.int_range 2 24) (QCheck.int_range 1 40)
       (QCheck.int_range 1 10))
    (fun (n, k, s) ->
      let s = min s (min k n) in
      let rng = Dynet.Rng.make ~seed:(n + k + s) in
      let inst = Gossip.Instance.multi_source ~rng ~n ~k ~s in
      let uids =
        Gossip.Instance.all_tokens inst
        |> List.map (fun t -> t.Gossip.Token.uid)
        |> List.sort Int.compare
      in
      uids = List.init k Fun.id)

(* {2 Payload classification} *)

let test_payload_classify () =
  let tok = Gossip.Token.make ~src:0 ~idx:0 ~uid:0 in
  let open Gossip.Payload in
  check Alcotest.string "token" "token"
    (Engine.Msg_class.to_string (classify (Token_msg tok)));
  check Alcotest.string "completeness" "completeness"
    (Engine.Msg_class.to_string (classify (Completeness { source = 0; count = 1 })));
  check Alcotest.string "request" "request"
    (Engine.Msg_class.to_string (classify (Request { source = 0; idx = 0 })));
  check Alcotest.string "walk" "walk"
    (Engine.Msg_class.to_string (classify (Walk_msg tok)));
  check Alcotest.string "center" "center"
    (Engine.Msg_class.to_string (classify Center_announce))

let test_payload_bits () =
  let n = 256 and k = 1024 in
  let tok = Gossip.Token.make ~src:0 ~idx:0 ~uid:0 in
  let open Gossip.Payload in
  (* id = 8 bits, index = 10 bits, payload = token_bits *)
  check Alcotest.int "token message" (8 + 10 + token_bits)
    (bits ~n ~k (Token_msg tok));
  check Alcotest.int "walk message" (8 + 10 + token_bits)
    (bits ~n ~k (Walk_msg tok));
  check Alcotest.int "announcement" 18
    (bits ~n ~k (Completeness { source = 0; count = 5 }));
  check Alcotest.int "request" 18 (bits ~n ~k (Request { source = 0; idx = 3 }));
  check Alcotest.int "center flag" 1 (bits ~n ~k Center_announce);
  (* All control messages respect the O(log n + log k) budget; only
     token payloads add the constant token size. *)
  check Alcotest.bool "control fits the small-message budget" true
    (bits ~n ~k (Request { source = 0; idx = 0 }) <= 2 * (8 + 10))

let test_payload_equal_and_pp () =
  let tok = Gossip.Token.make ~src:1 ~idx:2 ~uid:3 in
  let open Gossip.Payload in
  check Alcotest.bool "token equal" true (equal (Token_msg tok) (Token_msg tok));
  check Alcotest.bool "token/walk distinct" false
    (equal (Token_msg tok) (Walk_msg tok));
  check Alcotest.bool "announcements compare fields" false
    (equal
       (Completeness { source = 1; count = 2 })
       (Completeness { source = 1; count = 3 }));
  check Alcotest.string "request pp" "request(v1.2)"
    (Format.asprintf "%a" pp (Request { source = 1; idx = 2 }));
  check Alcotest.string "token pp" "token tok(v1.2#3)"
    (Format.asprintf "%a" pp (Token_msg tok))

(* {2 Bounds formulas} *)

let test_bounds_monotonicity () =
  check Alcotest.bool "lb below flooding" true
    (Gossip.Bounds.lb_amortized ~n:64 < Gossip.Bounds.flooding_amortized ~n:64);
  check Alcotest.bool "single-source grows with k" true
    (Gossip.Bounds.single_source_budget ~n:32 ~k:64
    < Gossip.Bounds.single_source_budget ~n:32 ~k:128);
  check Alcotest.bool "multi-source grows with s" true
    (Gossip.Bounds.multi_source_budget ~n:32 ~k:64 ~s:2
    < Gossip.Bounds.multi_source_budget ~n:32 ~k:64 ~s:8);
  check Alcotest.bool "rw amortized decreases in k" true
    (Gossip.Bounds.rw_amortized ~n:128 ~k:128 ()
    > Gossip.Bounds.rw_amortized ~n:128 ~k:1024 ())

let test_bounds_table1_shape () =
  (* The paper's Table 1: amortized bounds strictly improve as k grows,
     and the k >= n regimes are subquadratic.  The ordering is
     asymptotic (row 2 beats row 1 only once n^(1/4) > log^(5/4) n), so
     evaluate the closed forms at a large n; simulations at reachable n
     compare against the formulas, not the ordering. *)
  let n = 1 lsl 30 in
  let rows = Gossip.Bounds.table1 in
  let values = List.map (fun r -> r.Gossip.Bounds.amortized_of_n ~n) rows in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.int "four regimes" 4 (List.length rows);
  check Alcotest.bool "amortized improves with k" true
    (strictly_decreasing values);
  let quadratic = float_of_int (n * n) in
  List.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.check Alcotest.bool "subquadratic for k >= n" true
          (v < quadratic))
    values

let test_bounds_k_of_n_in_range () =
  List.iter
    (fun row ->
      List.iter
        (fun n ->
          let k = row.Gossip.Bounds.k_of_n ~n in
          Alcotest.check Alcotest.bool
            (Printf.sprintf "%s: 1 <= k < n^2 at n=%d" row.Gossip.Bounds.label n)
            true
            (k >= 1 && k < n * n))
        [ 8; 16; 32; 64; 128 ])
    Gossip.Bounds.table1

let test_bounds_rw_params () =
  let n = 256 and k = 1024 in
  let f = Gossip.Bounds.centers_f ~n ~k () in
  check Alcotest.bool "f clamped to [1, n]" true
    (f >= 1. && f <= float_of_int n);
  let gamma = Gossip.Bounds.degree_gamma ~n ~f () in
  check Alcotest.bool "gamma positive" true (gamma > 0.);
  check Alcotest.bool "walk length positive" true
    (Gossip.Bounds.walk_length ~n ~f () > 0.)

let test_bounds_logn_clamps () =
  check (Alcotest.float 1e-9) "logn 1 clamps to 1" 1. (Gossip.Bounds.logn 1);
  check (Alcotest.float 1e-9) "logn 2 clamps to 1" 1. (Gossip.Bounds.logn 2);
  check (Alcotest.float 1e-9) "log2 1024" 10. (Gossip.Bounds.log2 1024.)

(* {2 Static spanning-tree baseline} *)

let test_static_baseline_single_source () =
  let n = 16 and k = 64 in
  let graph = Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed:2) ~n ~p:0.2 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let r = Gossip.Spanning_tree_static.run ~graph ~instance ~root:0 in
  (* Tokens start at the root: upcast is free, downcast is k(n-1). *)
  check Alcotest.int "token messages" (k * (n - 1))
    r.Gossip.Spanning_tree_static.token_messages;
  check Alcotest.int "control = 2m + n - 1"
    ((2 * Dynet.Graph.edge_count graph) + n - 1)
    r.Gossip.Spanning_tree_static.control_messages;
  check Alcotest.bool "amortized close to n for k >> n" true
    (r.Gossip.Spanning_tree_static.amortized < 2. *. float_of_int n)

let test_static_baseline_amortized_optimal_at_large_k () =
  let n = 24 in
  let graph = Dynet.Graph_gen.clique ~n in
  (* Even on a clique (worst construction cost), large k amortizes the
     n^2 away: the intro's O(n^2/k + n) -> O(n). *)
  let small =
    Gossip.Spanning_tree_static.run ~graph
      ~instance:(Gossip.Instance.single_source ~n ~k:2 ~source:0)
      ~root:0
  in
  let large =
    Gossip.Spanning_tree_static.run ~graph
      ~instance:(Gossip.Instance.single_source ~n ~k:(8 * n * n) ~source:0)
      ~root:0
  in
  check Alcotest.bool "small k dominated by construction" true
    (small.Gossip.Spanning_tree_static.amortized > float_of_int (n * n) /. 4.);
  check Alcotest.bool "large k near optimal" true
    (large.Gossip.Spanning_tree_static.amortized < 1.5 *. float_of_int n)

let test_static_baseline_multi_source_upcast () =
  let n = 8 in
  let graph = Dynet.Graph_gen.path ~n in
  let instance = Gossip.Instance.one_per_node ~n in
  let r = Gossip.Spanning_tree_static.run ~graph ~instance ~root:0 in
  (* Upcast on a path rooted at 0: node v is at depth v, total 0+1+...+7;
     downcast: k(n-1). *)
  check Alcotest.int "token messages" (28 + (n * (n - 1)))
    r.Gossip.Spanning_tree_static.token_messages

let test_static_baseline_validation () =
  let instance = Gossip.Instance.one_per_node ~n:4 in
  Alcotest.check_raises "disconnected rejected"
    (Invalid_argument "Spanning_tree_static.run: graph must be connected")
    (fun () ->
      ignore
        (Gossip.Spanning_tree_static.run ~graph:(Dynet.Graph.empty ~n:4)
           ~instance ~root:0))

let suite =
  [
    ("token make/relabel", `Quick, test_token_make_and_relabel);
    ("token catalog ordering", `Quick, test_token_ordering_by_catalog);
    ("token set uids", `Quick, test_token_set_uids);
    ("instance single source", `Quick, test_instance_single_source);
    ("instance one per node", `Quick, test_instance_one_per_node);
    ("instance multi source", `Quick, test_instance_multi_source_shape);
    ("instance validation", `Quick, test_instance_validation);
    qcheck prop_multi_source_uids_partition;
    ("payload classification", `Quick, test_payload_classify);
    ("payload bit sizes", `Quick, test_payload_bits);
    ("payload equality and printing", `Quick, test_payload_equal_and_pp);
    ("bounds monotonicity", `Quick, test_bounds_monotonicity);
    ("bounds table-1 shape", `Quick, test_bounds_table1_shape);
    ("bounds table-1 k ranges", `Quick, test_bounds_k_of_n_in_range);
    ("bounds rw parameters", `Quick, test_bounds_rw_params);
    ("bounds log clamps", `Quick, test_bounds_logn_clamps);
    ("static baseline single source", `Quick, test_static_baseline_single_source);
    ("static baseline large-k optimality", `Quick,
     test_static_baseline_amortized_optimal_at_large_k);
    ("static baseline multi-source upcast", `Quick,
     test_static_baseline_multi_source_upcast);
    ("static baseline validation", `Quick, test_static_baseline_validation);
  ]
