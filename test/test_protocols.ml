(* End-to-end protocol tests: correctness (Definition 1.2: everyone
   ends with every token) across the protocol × environment matrix, and
   the message/round bound assertions of Theorems 3.1 and 3.4–3.6. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let stable sched = Adversary.Schedule.stabilized ~sigma:3 sched

let environments ~n ~seed =
  [
    ( "static-random",
      Gossip.Runners.Oblivious
        (Adversary.Oblivious.static
           (Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed) ~n ~p:0.15))
    );
    ("static-path",
     Gossip.Runners.Oblivious (Adversary.Oblivious.static (Dynet.Graph_gen.path ~n)));
    ("static-star",
     Gossip.Runners.Oblivious (Adversary.Oblivious.static (Dynet.Graph_gen.star ~n)));
    ( "rotator-3stable",
      Gossip.Runners.Oblivious
        (stable (Adversary.Oblivious.tree_rotator ~seed:(seed + 1) ~n)) );
    ( "rewiring-3stable",
      Gossip.Runners.Oblivious
        (stable
           (Adversary.Oblivious.rewiring ~seed:(seed + 2) ~n ~extra:n ~rate:0.3))
    );
    ( "markovian-3stable",
      Gossip.Runners.Oblivious
        (stable
           (Adversary.Oblivious.edge_markovian ~seed:(seed + 3) ~n
              ~p_up:(2. /. float_of_int n) ~p_down:0.4)) );
    ( "cutter-50",
      Gossip.Runners.Request_cutting { seed = seed + 4; cut_prob = 0.5 } );
  ]

(* {2 Single-source correctness matrix} *)

let test_single_source_matrix () =
  let n = 16 and k = 24 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:3 in
  List.iter
    (fun (name, env) ->
      let result, states = Gossip.Runners.single_source ~instance ~env () in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: completed" name)
        true result.Engine.Run_result.completed;
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: all nodes complete" name)
        true
        (Array.for_all Gossip.Single_source.is_complete states);
      (* Each node receives each token exactly once (type-1 bound). *)
      Alcotest.check Alcotest.int
        (Printf.sprintf "%s: token messages = k(n-1)" name)
        (k * (n - 1))
        (Engine.Ledger.count result.Engine.Run_result.ledger
           Engine.Msg_class.Token);
      (* Completeness announcements: at most one per ordered pair. *)
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: announcements <= n(n-1)" name)
        true
        (Engine.Ledger.count result.Engine.Run_result.ledger
           Engine.Msg_class.Completeness
        <= n * (n - 1));
      (* Learnings are exactly k(n-1). *)
      Alcotest.check Alcotest.int
        (Printf.sprintf "%s: learnings" name)
        (k * (n - 1))
        (Engine.Ledger.learnings result.Engine.Run_result.ledger))
    (environments ~n ~seed:100)

(* Theorem 3.1: requests <= (tokens delivered) + (edge deletions), so
   total <= O(n^2 + nk) + TC with an explicit constant. *)
let test_single_source_competitive_bound () =
  let n = 20 and k = 40 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  List.iter
    (fun (name, env) ->
      let result, _ = Gossip.Runners.single_source ~instance ~env () in
      let ledger = result.Engine.Run_result.ledger in
      let requests = Engine.Ledger.count ledger Engine.Msg_class.Request in
      let tokens = Engine.Ledger.count ledger Engine.Msg_class.Token in
      let removals = Engine.Ledger.removals ledger in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: requests <= tokens + deletions" name)
        true
        (requests <= tokens + removals);
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: competitive cost within 2x budget" name)
        true
        (Engine.Ledger.competitive_cost ledger ~alpha:1.
        <= 2. *. Gossip.Bounds.single_source_budget ~n ~k))
    (environments ~n ~seed:200)

(* Theorem 3.4: O(nk) rounds on 3-edge-stable graphs.  The proof's
   constant is small; we assert 2nk + O(n). *)
let test_single_source_round_bound_when_stable () =
  List.iter
    (fun (n, k, seed) ->
      let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
      let env =
        Gossip.Runners.Oblivious
          (stable (Adversary.Oblivious.tree_rotator ~seed ~n))
      in
      let result, _ = Gossip.Runners.single_source ~instance ~env () in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "n=%d k=%d: rounds <= 2nk + 2n" n k)
        true
        (result.Engine.Run_result.completed
        && result.Engine.Run_result.rounds <= (2 * n * k) + (2 * n)))
    [ (8, 8, 1); (12, 20, 2); (16, 8, 3); (20, 30, 4) ]

let test_single_source_rejects_multi_source_instance () =
  let rng = Dynet.Rng.make ~seed:5 in
  let instance = Gossip.Instance.multi_source ~rng ~n:8 ~k:8 ~s:2 in
  Alcotest.check_raises "multi-source rejected"
    (Invalid_argument "Single_source.init: instance must have exactly one source")
    (fun () -> ignore (Gossip.Single_source.init ~instance ()))

let test_single_source_trivial_cases () =
  (* k = 1 and n = 2: smallest possible instances. *)
  let instance = Gossip.Instance.single_source ~n:2 ~k:1 ~source:0 in
  let env =
    Gossip.Runners.Oblivious
      (Adversary.Oblivious.static (Dynet.Graph_gen.path ~n:2))
  in
  let result, states = Gossip.Runners.single_source ~instance ~env () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "both complete" true
    (Array.for_all Gossip.Single_source.is_complete states);
  check Alcotest.int "one token message" 1
    (Engine.Ledger.count result.Engine.Run_result.ledger Engine.Msg_class.Token)

let prop_single_source_random_envs =
  QCheck.Test.make ~name:"single-source: completes on random stable envs"
    ~count:25
    (QCheck.triple (QCheck.int_range 4 20) (QCheck.int_range 1 25) QCheck.small_nat)
    (fun (n, k, seed) ->
      let instance = Gossip.Instance.single_source ~n ~k ~source:(seed mod n) in
      let env =
        Gossip.Runners.Oblivious
          (stable
             (Adversary.Oblivious.rewiring ~seed ~n ~extra:(n / 2) ~rate:0.4))
      in
      let result, states = Gossip.Runners.single_source ~instance ~env () in
      result.Engine.Run_result.completed
      && Array.for_all Gossip.Single_source.is_complete states
      && Engine.Ledger.count result.Engine.Run_result.ledger
           Engine.Msg_class.Token
         = k * (n - 1))

(* {2 Multi-source correctness matrix} *)

let test_multi_source_matrix () =
  let n = 16 and k = 24 and s = 5 in
  let rng = Dynet.Rng.make ~seed:77 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s in
  List.iter
    (fun (name, env) ->
      let result, states = Gossip.Runners.multi_source ~instance ~env () in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: completed" name)
        true result.Engine.Run_result.completed;
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: everyone knows k tokens" name)
        true
        (Array.for_all (fun st -> Gossip.Multi_source.known_count st = k) states);
      (* Tokens: each non-initial (node, token) pair delivered once. *)
      Alcotest.check Alcotest.int
        (Printf.sprintf "%s: token messages" name)
        ((n * k) - k)
        (Engine.Ledger.count result.Engine.Run_result.ledger
           Engine.Msg_class.Token);
      (* Announcements: one per (node, neighbor, source) triple max. *)
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: announcements <= n^2 s" name)
        true
        (Engine.Ledger.count result.Engine.Run_result.ledger
           Engine.Msg_class.Completeness
        <= n * n * s))
    (environments ~n ~seed:300)

let test_multi_source_single_source_degenerate () =
  (* s = 1 multi-source behaves like single-source. *)
  let n = 12 and k = 16 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:4 in
  let env =
    Gossip.Runners.Oblivious
      (stable (Adversary.Oblivious.tree_rotator ~seed:9 ~n))
  in
  let result, states = Gossip.Runners.multi_source ~instance ~env () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "all complete wrt the source" true
    (Array.for_all (fun st -> Gossip.Multi_source.complete_wrt st 4) states)

let test_multi_source_round_bound_when_stable () =
  List.iter
    (fun (n, k, s, seed) ->
      let rng = Dynet.Rng.make ~seed in
      let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s in
      let env =
        Gossip.Runners.Oblivious
          (stable (Adversary.Oblivious.tree_rotator ~seed:(seed * 3) ~n))
      in
      let result, _ = Gossip.Runners.multi_source ~instance ~env () in
      (* Theorem 3.6's O(nk); generous constant covering per-source
         handover slack. *)
      Alcotest.check Alcotest.bool
        (Printf.sprintf "n=%d k=%d s=%d: rounds <= 3nk + 2n" n k s)
        true
        (result.Engine.Run_result.completed
        && result.Engine.Run_result.rounds <= (3 * n * k) + (2 * n)))
    [ (10, 12, 3, 1); (14, 20, 5, 2); (12, 12, 12, 3) ]

let test_multi_source_n_gossip () =
  (* The open problem's special case: one token per node. *)
  let n = 14 in
  let instance = Gossip.Instance.one_per_node ~n in
  let env =
    Gossip.Runners.Oblivious
      (stable (Adversary.Oblivious.rewiring ~seed:8 ~n ~extra:n ~rate:0.2))
  in
  let result, states = Gossip.Runners.multi_source ~instance ~env () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "everyone knows everything" true
    (Array.for_all (fun st -> Gossip.Multi_source.known_count st = n) states)

let prop_multi_source_random =
  QCheck.Test.make ~name:"multi-source: completes on random stable envs"
    ~count:20
    (QCheck.quad (QCheck.int_range 4 16) (QCheck.int_range 2 20)
       (QCheck.int_range 1 6) QCheck.small_nat)
    (fun (n, k, s, seed) ->
      let s = min s (min k n) in
      let rng = Dynet.Rng.make ~seed:(seed + 1) in
      let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s in
      let env =
        Gossip.Runners.Oblivious
          (stable (Adversary.Oblivious.tree_rotator ~seed:(seed + 2) ~n))
      in
      let result, states = Gossip.Runners.multi_source ~instance ~env () in
      result.Engine.Run_result.completed
      && Array.for_all
           (fun st -> Gossip.Multi_source.known_count st = k)
           states)

(* {2 Flooding} *)

let test_flooding_matrix () =
  let n = 12 in
  let instance = Gossip.Instance.one_per_node ~n in
  let k = n in
  List.iter
    (fun (name, schedule) ->
      let result, states = Gossip.Runners.flooding ~instance ~schedule () in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: completed" name)
        true result.Engine.Run_result.completed;
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: everyone knows all" name)
        true
        (Array.for_all (fun st -> Gossip.Flooding.known_count st = k) states);
      (* Upper bound: at most n broadcasts per round, nk rounds. *)
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: <= n^2 k broadcasts" name)
        true
        (Engine.Ledger.total result.Engine.Run_result.ledger <= n * n * k);
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: <= nk rounds" name)
        true
        (result.Engine.Run_result.rounds <= n * k))
    (Adversary.Oblivious.all_named ~n ~seed:55)

let test_flooding_single_source_phases () =
  let n = 10 and k = 5 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n) in
  let result, _ = Gossip.Runners.flooding ~instance ~schedule () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  (* On a static path each token needs n-1 rounds of its phase. *)
  check Alcotest.bool "finishes within k phases" true
    (result.Engine.Run_result.rounds <= n * k)

let test_flooding_against_lower_bound_completes () =
  (* Flooding completes even against the strongly adaptive adversary:
     any knowers/non-knowers cut is crossed in a connected graph. *)
  let n = 16 in
  let instance = Gossip.Instance.one_per_node ~n in
  let result, states, _ =
    Gossip.Runners.flooding_vs_lower_bound ~instance ~seed:12 ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "everyone knows all" true
    (Array.for_all (fun st -> Gossip.Flooding.known_count st = n) states)

let test_lower_bound_enforces_floor () =
  (* Theorem 2.3's shape: against the adversary, flooding's amortized
     cost is >= the n^2/log^2 n floor (and of course >= the trivial n). *)
  let n = 24 in
  let instance = Gossip.Instance.one_per_node ~n in
  let result, _, _ =
    Gossip.Runners.flooding_vs_lower_bound ~instance ~seed:21 ()
  in
  let amortized =
    Engine.Ledger.amortized result.Engine.Run_result.ledger ~k:n
  in
  check Alcotest.bool "amortized >= lb floor" true
    (amortized >= Gossip.Bounds.lb_amortized ~n);
  check Alcotest.bool "amortized <= flooding upper" true
    (amortized <= Gossip.Bounds.flooding_amortized ~n)

let test_lower_bound_component_history () =
  (* Lemma 2.1's shape: free-edge components stay O(log n) small. *)
  let n = 24 in
  let instance = Gossip.Instance.one_per_node ~n in
  let _, _, lb = Gossip.Runners.flooding_vs_lower_bound ~instance ~seed:31 () in
  let history = Adversary.Broadcast_lb.history lb in
  check Alcotest.bool "non-empty history" true (history <> []);
  let max_components =
    List.fold_left (fun acc (_, c) -> max acc c) 0 history
  in
  check Alcotest.bool "components stay O(log n)" true
    (float_of_int max_components <= 4. *. Gossip.Bounds.logn n)

let test_greedy_policies_progress_against_lb () =
  (* The heuristics never beat the floor either; with a finite cap they
     pay at least lb_amortized per token-equivalent delivered. *)
  let n = 16 in
  let instance = Gossip.Instance.one_per_node ~n in
  List.iter
    (fun (name, policy) ->
      let result, _, _ =
        Gossip.Runners.greedy_vs_lower_bound ~instance ~policy ~seed:41
          ~max_rounds:(n * n) ()
      in
      let ledger = result.Engine.Run_result.ledger in
      let learnings = Engine.Ledger.learnings ledger in
      if learnings > 0 then begin
        let per_token =
          float_of_int (Engine.Ledger.total ledger)
          /. float_of_int learnings
          *. float_of_int (n - 1)
        in
        Alcotest.check Alcotest.bool
          (Printf.sprintf "%s: >= floor" name)
          true
          (per_token >= Gossip.Bounds.lb_amortized ~n)
      end)
    [
      ("round-robin", Gossip.Greedy_bcast.Round_robin);
      ("random-token", Gossip.Greedy_bcast.Random_token);
      ("lazy-0.3", Gossip.Greedy_bcast.Lazy 0.3);
    ]

(* {2 Ablation variants and the push baseline} *)

let ablation_configs =
  [
    ("no-dedup",
     { Gossip.Single_source.priority = Gossip.Single_source.Paper_priority;
       dedup_pending = false });
    ("reversed-prio",
     { Gossip.Single_source.priority = Gossip.Single_source.Reversed_priority;
       dedup_pending = true });
    ("no-prio",
     { Gossip.Single_source.priority = Gossip.Single_source.No_priority;
       dedup_pending = true });
  ]

let test_ablation_variants_still_correct () =
  let n = 14 and k = 20 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  List.iter
    (fun (name, config) ->
      List.iter
        (fun (env_name, env) ->
          let result, states =
            Gossip.Runners.single_source ~instance ~env ~config ()
          in
          Alcotest.check Alcotest.bool
            (Printf.sprintf "%s/%s: completed and correct" name env_name)
            true
            (result.Engine.Run_result.completed
            && Array.for_all Gossip.Single_source.is_complete states))
        [
          ( "rotator",
            Gossip.Runners.Oblivious
              (stable (Adversary.Oblivious.tree_rotator ~seed:5 ~n)) );
          ( "cutter",
            Gossip.Runners.Request_cutting { seed = 6; cut_prob = 0.5 } );
        ])
    ablation_configs

let test_no_dedup_duplicates_tokens () =
  (* Without pending-request dedup, the exact k(n-1) token count of
     Theorem 3.1 is lost under churn: duplicates appear. *)
  let n = 14 and k = 20 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let env = Gossip.Runners.Request_cutting { seed = 7; cut_prob = 0.6 } in
  let tokens config =
    let result, _ = Gossip.Runners.single_source ~instance ~env ~config () in
    Engine.Ledger.count result.Engine.Run_result.ledger Engine.Msg_class.Token
  in
  let paper = tokens Gossip.Single_source.default_config in
  let ablated =
    tokens
      { Gossip.Single_source.priority = Gossip.Single_source.Paper_priority;
        dedup_pending = false }
  in
  check Alcotest.int "paper: exactly k(n-1)" (k * (n - 1)) paper;
  check Alcotest.bool "no-dedup: duplicates" true (ablated > paper)

let test_random_push_completes_and_overpays () =
  let n = 12 and k = 12 in
  let instance = Gossip.Instance.one_per_node ~n in
  let env =
    Gossip.Runners.Oblivious
      (Adversary.Oblivious.static
         (Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed:8) ~n ~p:0.3))
  in
  let result, states = Gossip.Runners.random_push ~instance ~env ~seed:9 () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "everyone knows everything" true
    (Array.for_all (fun st -> Gossip.Random_push.known_count st = k) states);
  (* Pushes are blind: strictly more token messages than the k(n-1)
     floor the request/response design achieves exactly. *)
  check Alcotest.bool "more than k(n-1) token messages" true
    (Engine.Ledger.count result.Engine.Run_result.ledger Engine.Msg_class.Token
    > k * (n - 1))

let test_random_push_deterministic () =
  let n = 10 in
  let instance = Gossip.Instance.one_per_node ~n in
  let run () =
    let env =
      Gossip.Runners.Oblivious
        (Adversary.Oblivious.fresh_random ~seed:11 ~n ~p:0.3)
    in
    let result, _ = Gossip.Runners.random_push ~instance ~env ~seed:12 () in
    Engine.Ledger.total result.Engine.Run_result.ledger
  in
  check Alcotest.int "reproducible" (run ()) (run ())

(* {2 Determinism} *)

let test_runs_are_reproducible () =
  let n = 12 and k = 16 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let run () =
    let env =
      Gossip.Runners.Oblivious
        (stable (Adversary.Oblivious.tree_rotator ~seed:123 ~n))
    in
    let result, _ = Gossip.Runners.single_source ~instance ~env () in
    ( result.Engine.Run_result.rounds,
      Engine.Ledger.total result.Engine.Run_result.ledger )
  in
  let a = run () and b = run () in
  check (Alcotest.pair Alcotest.int Alcotest.int) "identical runs" a b

let test_multi_source_random_order_correct () =
  (* The source-order ablation: random order forfeits Theorem 3.6's
     sequencing proof but stays correct, and token delivery stays
     exactly once per (node, token). *)
  let n = 14 and k = 21 in
  let rng = Dynet.Rng.make ~seed:91 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:7 in
  let env =
    Gossip.Runners.Oblivious
      (stable (Adversary.Oblivious.tree_rotator ~seed:92 ~n))
  in
  let result, states =
    Gossip.Runners.multi_source ~instance ~env
      ~source_order:Gossip.Multi_source.Random_source ~seed:93 ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "everyone knows k" true
    (Array.for_all (fun st -> Gossip.Multi_source.known_count st = k) states);
  check Alcotest.int "tokens delivered once"
    ((n * k) - k)
    (Engine.Ledger.count result.Engine.Run_result.ledger Engine.Msg_class.Token)

(* Theorem 3.1's request accounting, property-tested across random
   instances, seeds, and churn levels: wasted requests never exceed the
   adversary's deletions. *)
let prop_requests_charged_to_deletions =
  QCheck.Test.make
    ~name:"single-source: requests <= tokens + deletions (Thm 3.1)" ~count:20
    (QCheck.quad (QCheck.int_range 4 18) (QCheck.int_range 1 30)
       (QCheck.int_range 0 80) QCheck.bool)
    (fun (n, k, seed, use_cutter) ->
      let instance = Gossip.Instance.single_source ~n ~k ~source:(seed mod n) in
      let env =
        if use_cutter then
          Gossip.Runners.Request_cutting { seed; cut_prob = 0.6 }
        else
          Gossip.Runners.Oblivious
            (stable (Adversary.Oblivious.tree_rotator ~seed ~n))
      in
      let result, _ = Gossip.Runners.single_source ~instance ~env () in
      let ledger = result.Engine.Run_result.ledger in
      result.Engine.Run_result.completed
      && Engine.Ledger.count ledger Engine.Msg_class.Request
         <= Engine.Ledger.count ledger Engine.Msg_class.Token
            + Engine.Ledger.removals ledger
      && Engine.Ledger.removals ledger <= Engine.Ledger.tc ledger)

(* The footnote-5 invariant on every schedule family: deletions never
   exceed insertions when starting from the empty graph. *)
let prop_removals_bounded_by_tc =
  QCheck.Test.make ~name:"every family: removals <= TC (footnote 5)" ~count:30
    (QCheck.pair (QCheck.int_range 4 20) QCheck.small_nat)
    (fun (n, seed) ->
      Adversary.Oblivious.all_named ~n ~seed
      |> List.for_all (fun (_, sched) ->
             let seq = Adversary.Schedule.prefix sched 15 in
             Dynet.Dyn_seq.total_removals seq <= Dynet.Dyn_seq.tc seq))

let test_result_and_ledger_pp_smoke () =
  let instance = Gossip.Instance.single_source ~n:6 ~k:3 ~source:0 in
  let env =
    Gossip.Runners.Oblivious
      (Adversary.Oblivious.static (Dynet.Graph_gen.cycle ~n:6))
  in
  let result, _ = Gossip.Runners.single_source ~instance ~env () in
  let rendered = Format.asprintf "%a" Engine.Run_result.pp result in
  check Alcotest.bool "pp mentions completion" true
    (Astring.String.is_infix ~affix:"completed" rendered);
  check Alcotest.bool "pp mentions the token class" true
    (Astring.String.is_infix ~affix:"token=" rendered)

(* A moderate-scale soak run exercising all three unicast protocols on
   one larger instance; catches accidental quadratic blowups in the
   protocol state handling that small tests would hide. *)
let test_moderate_scale_soak () =
  let n = 48 and k = 96 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let env =
    Gossip.Runners.Oblivious
      (stable (Adversary.Oblivious.rewiring ~seed:77 ~n ~extra:n ~rate:0.3))
  in
  let result, states = Gossip.Runners.single_source ~instance ~env () in
  check Alcotest.bool "single-source completes at scale" true
    (result.Engine.Run_result.completed
    && Array.for_all Gossip.Single_source.is_complete states);
  let rng = Dynet.Rng.make ~seed:78 in
  let instance = Gossip.Instance.multi_source ~rng ~n ~k ~s:12 in
  let result, states = Gossip.Runners.multi_source ~instance ~env () in
  check Alcotest.bool "multi-source completes at scale" true
    (result.Engine.Run_result.completed
    && Array.for_all (fun st -> Gossip.Multi_source.known_count st = k) states);
  let r =
    Gossip.Runners.oblivious_rw ~instance
      ~schedule:(Adversary.Oblivious.fresh_random ~seed:79 ~n ~p:0.2)
      ~seed:80 ~const_f:0.05 ~force_rw:true ()
  in
  check Alcotest.bool "algorithm 2 completes at scale" true
    r.Gossip.Oblivious_rw.completed

let suite =
  [
    ("single-source: env matrix", `Quick, test_single_source_matrix);
    ("single-source: Theorem 3.1 bound", `Quick,
     test_single_source_competitive_bound);
    ("single-source: Theorem 3.4 rounds", `Quick,
     test_single_source_round_bound_when_stable);
    ("single-source: rejects multi-source", `Quick,
     test_single_source_rejects_multi_source_instance);
    ("single-source: trivial cases", `Quick, test_single_source_trivial_cases);
    qcheck prop_single_source_random_envs;
    ("multi-source: env matrix", `Quick, test_multi_source_matrix);
    ("multi-source: s=1 degenerates", `Quick,
     test_multi_source_single_source_degenerate);
    ("multi-source: Theorem 3.6 rounds", `Quick,
     test_multi_source_round_bound_when_stable);
    ("multi-source: n-gossip", `Quick, test_multi_source_n_gossip);
    ("multi-source: random source order stays correct", `Quick,
     test_multi_source_random_order_correct);
    qcheck prop_multi_source_random;
    ("flooding: env matrix", `Quick, test_flooding_matrix);
    ("flooding: single-source phases", `Quick, test_flooding_single_source_phases);
    ("flooding: completes vs adaptive adversary", `Quick,
     test_flooding_against_lower_bound_completes);
    ("lower bound: amortized floor", `Quick, test_lower_bound_enforces_floor);
    ("lower bound: component history", `Quick, test_lower_bound_component_history);
    ("lower bound: greedy victims pay the floor", `Quick,
     test_greedy_policies_progress_against_lb);
    ("ablation variants stay correct", `Quick,
     test_ablation_variants_still_correct);
    ("ablation: no-dedup duplicates tokens", `Quick,
     test_no_dedup_duplicates_tokens);
    ("random push completes and overpays", `Quick,
     test_random_push_completes_and_overpays);
    ("random push deterministic", `Quick, test_random_push_deterministic);
    ("determinism", `Quick, test_runs_are_reproducible);
    qcheck prop_requests_charged_to_deletions;
    qcheck prop_removals_bounded_by_tc;
    ("result/ledger pretty-printing", `Quick, test_result_and_ledger_pp_smoke);
    ("moderate-scale soak", `Slow, test_moderate_scale_soak);
  ]
