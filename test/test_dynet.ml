(* Unit and property tests for the dynamic-graph substrate. *)

open Dynet

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {2 Node_id / Edge} *)

let test_node_id_basics () =
  check Alcotest.int "of_int round-trips" 7 (Node_id.to_int (Node_id.of_int 7));
  check Alcotest.bool "equal" true (Node_id.equal 3 3);
  check (Alcotest.list Alcotest.int) "all" [ 0; 1; 2 ] (Node_id.all ~n:3);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Node_id.of_int: negative identifier") (fun () ->
      ignore (Node_id.of_int (-1)))

let test_edge_canonical () =
  let e = Edge.make 5 2 in
  check (Alcotest.pair Alcotest.int Alcotest.int) "canonical order" (2, 5)
    (Edge.endpoints e);
  check Alcotest.bool "equal regardless of direction" true
    (Edge.equal (Edge.make 2 5) (Edge.make 5 2));
  check Alcotest.int "other" 5 (Edge.other e 2);
  check Alcotest.int "other, reversed" 2 (Edge.other e 5);
  check Alcotest.bool "incident" true (Edge.incident e 5);
  check Alcotest.bool "not incident" false (Edge.incident e 3)

let test_edge_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Edge.make: self-loop")
    (fun () -> ignore (Edge.make 4 4))

let test_edge_other_rejects_stranger () =
  Alcotest.check_raises "stranger"
    (Invalid_argument "Edge.other: node not incident to edge") (fun () ->
      ignore (Edge.other (Edge.make 1 2) 3))

(* {2 Edge_set} *)

let edge_gen =
  QCheck.Gen.(
    map2
      (fun a b -> if a = b then Edge.make a (b + 1) else Edge.make a b)
      (int_bound 20) (int_bound 20))

let edge_arb = QCheck.make ~print:(Format.asprintf "%a" Edge.pp) edge_gen

let edge_list_arb = QCheck.list_of_size QCheck.Gen.(int_bound 30) edge_arb

let prop_edge_set_union_diff =
  QCheck.Test.make ~name:"edge_set: (a ∪ b) \\ b ⊆ a" ~count:200
    (QCheck.pair edge_list_arb edge_list_arb)
    (fun (la, lb) ->
      let a = Edge_set.of_list la and b = Edge_set.of_list lb in
      Edge_set.subset (Edge_set.diff (Edge_set.union a b) b) a)

let prop_edge_set_inter_subset =
  QCheck.Test.make ~name:"edge_set: a ∩ b ⊆ a and ⊆ b" ~count:200
    (QCheck.pair edge_list_arb edge_list_arb)
    (fun (la, lb) ->
      let a = Edge_set.of_list la and b = Edge_set.of_list lb in
      let i = Edge_set.inter a b in
      Edge_set.subset i a && Edge_set.subset i b)

let prop_edge_set_cardinal =
  QCheck.Test.make ~name:"edge_set: |a| + |b| = |a ∪ b| + |a ∩ b|" ~count:200
    (QCheck.pair edge_list_arb edge_list_arb)
    (fun (la, lb) ->
      let a = Edge_set.of_list la and b = Edge_set.of_list lb in
      Edge_set.cardinal a + Edge_set.cardinal b
      = Edge_set.cardinal (Edge_set.union a b)
        + Edge_set.cardinal (Edge_set.inter a b))

let test_edge_set_incident () =
  let s = Edge_set.of_list [ Edge.make 0 1; Edge.make 1 2; Edge.make 2 3 ] in
  check Alcotest.int "incident_to 1" 2 (List.length (Edge_set.incident_to 1 s));
  check Alcotest.int "incident_to 3" 1 (List.length (Edge_set.incident_to 3 s));
  check Alcotest.int "incident_to 9" 0 (List.length (Edge_set.incident_to 9 s))

(* {2 Union_find} *)

let test_union_find_basics () =
  let uf = Union_find.create 5 in
  check Alcotest.int "initial components" 5 (Union_find.count uf);
  check Alcotest.bool "union merges" true (Union_find.union uf 0 1);
  check Alcotest.bool "re-union is no-op" false (Union_find.union uf 1 0);
  check Alcotest.int "count after one union" 4 (Union_find.count uf);
  check Alcotest.bool "same" true (Union_find.same uf 0 1);
  check Alcotest.bool "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  check Alcotest.int "chained" 2 (Union_find.count uf);
  check Alcotest.bool "transitively same" true (Union_find.same uf 0 3)

let test_union_find_components () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 3 4);
  let comps = Union_find.components uf in
  check Alcotest.int "three components" 3 (List.length comps);
  let sizes = List.map List.length comps |> List.sort Int.compare in
  check (Alcotest.list Alcotest.int) "sizes" [ 1; 2; 3 ] sizes;
  check Alcotest.int "representatives" 3
    (List.length (Union_find.representatives uf))

let test_union_find_copy_isolated () =
  let uf = Union_find.create 4 in
  ignore (Union_find.union uf 0 1);
  let clone = Union_find.copy uf in
  ignore (Union_find.union clone 2 3);
  check Alcotest.int "original untouched" 3 (Union_find.count uf);
  check Alcotest.int "clone advanced" 2 (Union_find.count clone)

let prop_union_find_count_matches_representatives =
  QCheck.Test.make ~name:"union_find: count = |representatives|" ~count:100
    (QCheck.list_of_size
       QCheck.Gen.(int_bound 40)
       (QCheck.pair (QCheck.int_bound 19) (QCheck.int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter
        (fun (a, b) -> if a <> b then ignore (Union_find.union uf a b))
        pairs;
      Union_find.count uf = List.length (Union_find.representatives uf))

(* {2 Graph} *)

let test_graph_adjacency_sorted () =
  let g =
    Graph.make ~n:5
      (Edge_set.of_list [ Edge.make 0 4; Edge.make 0 2; Edge.make 0 1 ])
  in
  check (Alcotest.array Alcotest.int) "sorted neighbors" [| 1; 2; 4 |]
    (Graph.neighbors g 0);
  check Alcotest.int "degree" 3 (Graph.degree g 0);
  check Alcotest.int "max degree" 3 (Graph.max_degree g);
  check Alcotest.bool "mem_edge" true (Graph.mem_edge g 2 0);
  check Alcotest.bool "no self edge" false (Graph.mem_edge g 0 0)

let test_graph_rejects_out_of_range () =
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Graph.make: edge endpoint 5 out of range (n=4)")
    (fun () ->
      ignore (Graph.make ~n:4 (Edge_set.singleton (Edge.make 2 5))))

let test_graph_bfs_path () =
  let g = Graph_gen.path ~n:6 in
  let dist = Graph.distances g 0 in
  check (Alcotest.array Alcotest.int) "path distances" [| 0; 1; 2; 3; 4; 5 |]
    dist;
  check Alcotest.int "diameter" 5 (Graph.diameter g);
  check Alcotest.int "eccentricity of middle" 3 (Graph.eccentricity g 2);
  let parents = Graph.bfs_tree g 0 in
  check Alcotest.bool "root has no parent" true (parents.(0) = None);
  check Alcotest.bool "chain parents" true (parents.(3) = Some 2)

let test_graph_components () =
  let g =
    Graph.make ~n:6 (Edge_set.of_list [ Edge.make 0 1; Edge.make 2 3 ])
  in
  check Alcotest.int "components" 4 (Graph.component_count g);
  check Alcotest.bool "not connected" false (Graph.is_connected g);
  let extra = Graph.connect_components g in
  check Alcotest.int "minimum connectors" 3 (Edge_set.cardinal extra);
  let joined = Graph.union g (Graph.make ~n:6 extra) in
  check Alcotest.bool "now connected" true (Graph.is_connected joined)

let test_graph_empty_connected_conventions () =
  check Alcotest.bool "single node is connected" true
    (Graph.is_connected (Graph.empty ~n:1));
  check Alcotest.bool "empty node set is connected" true
    (Graph.is_connected (Graph.empty ~n:0));
  check Alcotest.bool "two isolated nodes are not" false
    (Graph.is_connected (Graph.empty ~n:2))

let test_graph_spanning_forest () =
  let g = Graph_gen.clique ~n:6 in
  let forest = Graph.spanning_forest g in
  check Alcotest.int "tree size" 5 (Edge_set.cardinal forest);
  check Alcotest.bool "forest spans" true
    (Graph.is_connected (Graph.make ~n:6 forest))

let test_graph_diameter_disconnected_raises () =
  Alcotest.check_raises "diameter of disconnected"
    (Invalid_argument "Graph.diameter: disconnected graph") (fun () ->
      ignore (Graph.diameter (Graph.empty ~n:3)))

(* {2 Graph generators} *)

let sizes = [ 1; 2; 3; 5; 8; 17; 32 ]

let test_generators_connected () =
  List.iter
    (fun (name, gen) ->
      List.iter
        (fun n ->
          let g = gen (Rng.make ~seed:(n * 31)) ~n in
          Alcotest.check Alcotest.bool
            (Printf.sprintf "%s n=%d connected" name n)
            true (Graph.is_connected g);
          Alcotest.check Alcotest.int
            (Printf.sprintf "%s n=%d node count" name n)
            n (Graph.n g))
        sizes)
    Graph_gen.all_named

let test_specific_shapes () =
  check Alcotest.int "path edges" 9 (Graph.edge_count (Graph_gen.path ~n:10));
  check Alcotest.int "cycle edges" 10 (Graph.edge_count (Graph_gen.cycle ~n:10));
  check Alcotest.int "star edges" 9 (Graph.edge_count (Graph_gen.star ~n:10));
  check Alcotest.int "clique edges" 45
    (Graph.edge_count (Graph_gen.clique ~n:10));
  check Alcotest.int "star hub degree" 9
    (Graph.degree (Graph_gen.star ~n:10) 0);
  check Alcotest.int "tree edges" 15
    (Graph.edge_count (Graph_gen.random_tree (Rng.make ~seed:1) ~n:16));
  check Alcotest.int "barbell bridge" 2
    (Graph.component_count
       (Graph.make ~n:10
          (Edge_set.remove (Edge.make 4 5)
             (Graph.edges (Graph_gen.barbell ~n:10)))))

let test_grid_and_hypercube_shapes () =
  (* 3x3 grid: 12 edges, diameter 4. *)
  let g = Graph_gen.grid ~n:9 in
  check Alcotest.int "grid edges" 12 (Graph.edge_count g);
  check Alcotest.int "grid diameter" 4 (Graph.diameter g);
  (* Ragged grid keeps exactly n nodes connected. *)
  let g7 = Graph_gen.grid ~n:7 in
  check Alcotest.bool "ragged grid connected" true (Graph.is_connected g7);
  (* Q3: 12 edges, every degree 3, diameter 3. *)
  let h = Graph_gen.hypercube ~n:8 in
  check Alcotest.int "hypercube edges" 12 (Graph.edge_count h);
  check Alcotest.int "hypercube diameter" 3 (Graph.diameter h);
  for v = 0 to 7 do
    Alcotest.check Alcotest.int "cube degree" 3 (Graph.degree h v)
  done;
  (* Non-power-of-two: leftovers hang off the cube. *)
  let h10 = Graph_gen.hypercube ~n:10 in
  check Alcotest.bool "padded hypercube connected" true (Graph.is_connected h10);
  check Alcotest.int "padded node count" 10 (Graph.n h10)

let prop_random_tree_is_tree =
  QCheck.Test.make ~name:"random_tree: n-1 edges and connected" ~count:60
    (QCheck.int_range 2 60)
    (fun n ->
      let g = Graph_gen.random_tree (Rng.make ~seed:n) ~n in
      Graph.edge_count g = n - 1 && Graph.is_connected g)

let prop_random_connected_connected =
  QCheck.Test.make ~name:"random_connected: connected for any p" ~count:60
    (QCheck.pair (QCheck.int_range 2 40) (QCheck.float_bound_inclusive 1.))
    (fun (n, p) ->
      Graph.is_connected (Graph_gen.random_connected (Rng.make ~seed:n) ~n ~p))

let prop_regularish_degree_bounds =
  QCheck.Test.make ~name:"random_regularish: degrees within [2, d+2]"
    ~count:40
    (QCheck.pair (QCheck.int_range 4 40) (QCheck.int_range 2 6))
    (fun (n, d) ->
      let g = Graph_gen.random_regularish (Rng.make ~seed:(n + d)) ~n ~d in
      let ok = ref true in
      for v = 0 to n - 1 do
        let deg = Graph.degree g v in
        if deg < 1 || deg > d + 2 then ok := false
      done;
      !ok && Graph.is_connected g)

(* {2 Dyn_seq} *)

let test_dyn_seq_deltas_and_tc () =
  let g1 = Graph.make ~n:4 (Edge_set.of_list [ Edge.make 0 1; Edge.make 1 2; Edge.make 2 3 ]) in
  let g2 = Graph.make ~n:4 (Edge_set.of_list [ Edge.make 0 1; Edge.make 1 3; Edge.make 2 3 ]) in
  let g3 = g1 in
  let seq = Dyn_seq.of_graphs [ g1; g2; g3 ] in
  check Alcotest.int "length" 3 (Dyn_seq.length seq);
  check Alcotest.int "round-1 insertions = its edges" 3
    (Edge_set.cardinal (Dyn_seq.insertions seq 1));
  check Alcotest.int "round-2 insertions" 1
    (Edge_set.cardinal (Dyn_seq.insertions seq 2));
  check Alcotest.int "round-2 removals" 1
    (Edge_set.cardinal (Dyn_seq.removals seq 2));
  check Alcotest.int "tc" 5 (Dyn_seq.tc seq);
  check Alcotest.int "removals total" 2 (Dyn_seq.total_removals seq);
  check Alcotest.bool "removals <= tc" true
    (Dyn_seq.total_removals seq <= Dyn_seq.tc seq);
  check Alcotest.bool "all rounds connected" true (Dyn_seq.all_connected seq)

let test_dyn_seq_stability_predicate () =
  let e01 = Edge.make 0 1 and e12 = Edge.make 1 2 and e02 = Edge.make 0 2 in
  let tri = Graph.make ~n:3 (Edge_set.of_list [ e01; e12; e02 ]) in
  let no02 = Graph.make ~n:3 (Edge_set.of_list [ e01; e12 ]) in
  (* e02 present exactly one round in the middle: 1-stable only. *)
  let seq = Dyn_seq.of_graphs [ no02; tri; no02; no02 ] in
  check Alcotest.bool "1-stable" true (Dyn_seq.is_sigma_stable seq ~sigma:1);
  check Alcotest.bool "not 2-stable" false (Dyn_seq.is_sigma_stable seq ~sigma:2);
  (* Two consecutive rounds: 2-stable but not 3-stable. *)
  let seq2 = Dyn_seq.of_graphs [ no02; tri; tri; no02; no02 ] in
  check Alcotest.bool "2-stable" true (Dyn_seq.is_sigma_stable seq2 ~sigma:2);
  check Alcotest.bool "not 3-stable" false (Dyn_seq.is_sigma_stable seq2 ~sigma:3);
  (* A run truncated by the end of the recording is accepted. *)
  let seq3 = Dyn_seq.of_graphs [ no02; no02; tri ] in
  check Alcotest.bool "open run accepted" true
    (Dyn_seq.is_sigma_stable seq3 ~sigma:3)

let test_dyn_seq_rejects_mixed_sizes () =
  Alcotest.check_raises "node counts disagree"
    (Invalid_argument "Dyn_seq.of_graphs: node counts disagree") (fun () ->
      ignore (Dyn_seq.of_graphs [ Graph.empty ~n:3; Graph.empty ~n:4 ]))

(* {2 Stability transformer} *)

let random_proposals ~seed ~n ~rounds =
  List.init rounds (fun r ->
      Graph_gen.random_tree (Rng.make ~seed:(seed + r)) ~n)

let test_stability_enforces_sigma () =
  let proposals = random_proposals ~seed:9 ~n:12 ~rounds:30 in
  List.iter
    (fun sigma ->
      let out = Stability.transform ~sigma proposals in
      let seq = Dyn_seq.of_graphs out in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "sigma=%d holds" sigma)
        true
        (Dyn_seq.is_sigma_stable seq ~sigma);
      Alcotest.check Alcotest.bool
        (Printf.sprintf "sigma=%d keeps connectivity" sigma)
        true (Dyn_seq.all_connected seq))
    [ 1; 2; 3; 5 ]

let test_stability_superset_of_proposal () =
  let proposals = random_proposals ~seed:21 ~n:10 ~rounds:20 in
  let out = Stability.transform ~sigma:3 proposals in
  List.iter2
    (fun prop actual ->
      Alcotest.check Alcotest.bool "proposal ⊆ actual" true
        (Edge_set.subset (Graph.edges prop) (Graph.edges actual)))
    proposals out

let test_stability_sigma_one_is_identity () =
  let proposals = random_proposals ~seed:33 ~n:8 ~rounds:12 in
  let out = Stability.transform ~sigma:1 proposals in
  List.iter2
    (fun prop actual ->
      Alcotest.check Alcotest.bool "identity" true
        (Edge_set.equal (Graph.edges prop) (Graph.edges actual)))
    proposals out

(* {2 Graph_metrics} *)

let test_metrics_degree_stats () =
  let s = Graph_metrics.degree_stats (Graph_gen.star ~n:8) in
  check Alcotest.int "min" 1 s.Graph_metrics.min_degree;
  check Alcotest.int "max" 7 s.Graph_metrics.max_degree;
  check (Alcotest.float 1e-9) "mean = 2m/n" 1.75 s.Graph_metrics.mean_degree

let test_metrics_clustering () =
  check (Alcotest.float 1e-9) "clique fully clustered" 1.
    (Graph_metrics.clustering_coefficient (Graph_gen.clique ~n:6));
  check (Alcotest.float 1e-9) "tree has no triangles" 0.
    (Graph_metrics.clustering_coefficient (Graph_gen.star ~n:6));
  let triangle_plus_tail =
    Graph.make ~n:4
      (Edge_set.of_list
         [ Edge.make 0 1; Edge.make 1 2; Edge.make 0 2; Edge.make 2 3 ])
  in
  (* Nodes 0 and 1: coefficient 1; node 2: 1/3; node 3: degree 1 -> 0. *)
  check (Alcotest.float 1e-9) "mixed graph" ((1. +. 1. +. (1. /. 3.)) /. 4.)
    (Graph_metrics.clustering_coefficient triangle_plus_tail)

let test_metrics_mean_distance () =
  check (Alcotest.float 1e-9) "clique distance 1" 1.
    (Graph_metrics.mean_distance (Graph_gen.clique ~n:5));
  (* Path 0-1-2: distances 1,2,1,1,2,1 over 6 ordered pairs. *)
  check (Alcotest.float 1e-9) "path of 3" (8. /. 6.)
    (Graph_metrics.mean_distance (Graph_gen.path ~n:3))

let test_metrics_churn () =
  let g = Graph_gen.cycle ~n:8 in
  let static_seq = Dyn_seq.of_graphs [ g; g; g; g ] in
  let c = Graph_metrics.churn_stats static_seq in
  check Alcotest.int "tc = first round" 8 c.Graph_metrics.tc;
  check (Alcotest.float 1e-9) "no steady churn" 0.
    c.Graph_metrics.insertions_per_round;
  check (Alcotest.float 1e-9) "zero turnover" 0. c.Graph_metrics.turnover;
  let rotating =
    Dyn_seq.of_graphs
      (List.init 6 (fun r -> Graph_gen.random_tree (Rng.make ~seed:r) ~n:8))
  in
  let c2 = Graph_metrics.churn_stats rotating in
  check Alcotest.bool "rotation churns" true
    (c2.Graph_metrics.turnover > 0.3)

(* {2 Export} *)

let test_export_dot () =
  let dot = Export.to_dot ~name:"demo" (Graph_gen.path ~n:3) in
  check Alcotest.bool "header" true
    (String.length dot > 0 && String.sub dot 0 10 = "graph demo");
  check Alcotest.bool "edge 0--1" true
    (Astring.String.is_infix ~affix:"0 -- 1;" dot);
  check Alcotest.bool "edge 1--2" true
    (Astring.String.is_infix ~affix:"1 -- 2;" dot);
  check Alcotest.bool "no 0--2" false
    (Astring.String.is_infix ~affix:"0 -- 2;" dot)

let test_export_seq_csv () =
  let g1 = Graph_gen.path ~n:3 and g2 = Graph_gen.cycle ~n:3 in
  let csv = Export.seq_to_csv (Dyn_seq.of_graphs [ g1; g2 ]) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "header + 2 rounds" 3 (List.length lines);
  check Alcotest.string "round 1" "1,2,2,0,true" (List.nth lines 1);
  check Alcotest.string "round 2" "2,3,1,0,true" (List.nth lines 2)

(* {2 Rng} *)

let test_rng_determinism () =
  let a = Rng.make ~seed:5 and b = Rng.make ~seed:5 in
  let da = List.init 20 (fun _ -> Rng.int a 1000) in
  let db = List.init 20 (fun _ -> Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" da db

let test_rng_split_independence () =
  let parent = Rng.make ~seed:5 in
  let child = Rng.split parent in
  let child_draws = List.init 5 (fun _ -> Rng.int child 1000) in
  (* Replaying the parent gives the same child. *)
  let parent2 = Rng.make ~seed:5 in
  let child2 = Rng.split parent2 in
  let child2_draws = List.init 5 (fun _ -> Rng.int child2 1000) in
  check (Alcotest.list Alcotest.int) "split deterministic" child_draws
    child2_draws

let test_rng_permutation () =
  let p = Rng.permutation (Rng.make ~seed:3) 50 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let prop_rng_sample_without_replacement =
  QCheck.Test.make ~name:"rng: sample_without_replacement distinct sorted"
    ~count:100
    (QCheck.pair (QCheck.int_range 0 30) (QCheck.int_range 30 60))
    (fun (m, n) ->
      let s = Rng.sample_without_replacement (Rng.make ~seed:(m + n)) m n in
      List.length s = m
      && List.for_all (fun x -> x >= 0 && x < n) s
      && List.sort_uniq Int.compare s = s)

let prop_rng_bernoulli_extremes =
  QCheck.Test.make ~name:"rng: bernoulli extremes" ~count:50 QCheck.int
    (fun seed ->
      let rng = Rng.make ~seed in
      (not (Rng.bernoulli rng 0.)) && Rng.bernoulli rng 1.)

let suite =
  [
    ("node_id basics", `Quick, test_node_id_basics);
    ("edge canonical form", `Quick, test_edge_canonical);
    ("edge rejects self-loops", `Quick, test_edge_rejects_self_loop);
    ("edge other rejects strangers", `Quick, test_edge_other_rejects_stranger);
    ("edge_set incident_to", `Quick, test_edge_set_incident);
    qcheck prop_edge_set_union_diff;
    qcheck prop_edge_set_inter_subset;
    qcheck prop_edge_set_cardinal;
    ("union_find basics", `Quick, test_union_find_basics);
    ("union_find components", `Quick, test_union_find_components);
    ("union_find copy isolation", `Quick, test_union_find_copy_isolated);
    qcheck prop_union_find_count_matches_representatives;
    ("graph adjacency sorted", `Quick, test_graph_adjacency_sorted);
    ("graph rejects out-of-range", `Quick, test_graph_rejects_out_of_range);
    ("graph bfs on path", `Quick, test_graph_bfs_path);
    ("graph components & connectors", `Quick, test_graph_components);
    ("graph connectivity conventions", `Quick,
     test_graph_empty_connected_conventions);
    ("graph spanning forest", `Quick, test_graph_spanning_forest);
    ("graph diameter raises when disconnected", `Quick,
     test_graph_diameter_disconnected_raises);
    ("all generators connected at all sizes", `Quick, test_generators_connected);
    ("generator shapes", `Quick, test_specific_shapes);
    ("grid and hypercube shapes", `Quick, test_grid_and_hypercube_shapes);
    qcheck prop_random_tree_is_tree;
    qcheck prop_random_connected_connected;
    qcheck prop_regularish_degree_bounds;
    ("dyn_seq deltas and TC", `Quick, test_dyn_seq_deltas_and_tc);
    ("dyn_seq sigma-stability predicate", `Quick,
     test_dyn_seq_stability_predicate);
    ("dyn_seq rejects mixed sizes", `Quick, test_dyn_seq_rejects_mixed_sizes);
    ("stability transform enforces sigma", `Quick, test_stability_enforces_sigma);
    ("stability output contains proposal", `Quick,
     test_stability_superset_of_proposal);
    ("stability sigma=1 is identity", `Quick, test_stability_sigma_one_is_identity);
    ("metrics: degree stats", `Quick, test_metrics_degree_stats);
    ("metrics: clustering", `Quick, test_metrics_clustering);
    ("metrics: mean distance", `Quick, test_metrics_mean_distance);
    ("metrics: churn", `Quick, test_metrics_churn);
    ("export: dot", `Quick, test_export_dot);
    ("export: sequence csv", `Quick, test_export_seq_csv);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng split determinism", `Quick, test_rng_split_independence);
    ("rng permutation", `Quick, test_rng_permutation);
    qcheck prop_rng_sample_without_replacement;
    qcheck prop_rng_bernoulli_extremes;
  ]
